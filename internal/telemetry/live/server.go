package live

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
)

// Check is one pluggable health/readiness probe. It receives the probe
// request's context (so a hung dependency cannot wedge the handler past the
// client's deadline) and returns nil when healthy.
type Check func(ctx context.Context) error

// Server is the live introspection endpoint set over one telemetry
// Recorder. Zero-dependency (stdlib only), embeddable two ways: Start/
// Shutdown run it on its own listener (the CLIs' -debug-addr), or Handler
// mounts the same routes inside another process's HTTP server (gofmmd's
// admin port, ROADMAP item 1).
//
// Endpoints:
//
//	GET  /metrics            Prometheus text exposition (0.0.4)
//	GET  /healthz            liveness + registered health checks
//	GET  /readyz             readiness flag + registered ready checks
//	GET  /debug/vars         cmdline, memstats, goroutines, metrics snapshot
//	GET  /debug/pprof/*      stdlib profiling endpoints
//	GET  /debug/spans        completed spans as NDJSON (?replay=N&limit=K)
//	POST /debug/flightrecord flight-recorder dump as JSON
type Server struct {
	rec    *telemetry.Recorder
	flight *telemetry.FlightRecorder
	mux    *http.ServeMux
	feed   *spanFeed

	checkMu      sync.Mutex
	healthChecks map[string]Check // guarded by checkMu
	readyChecks  map[string]Check // guarded by checkMu
	ready        atomic.Bool

	lifeMu sync.Mutex
	srv    *http.Server  // guarded by lifeMu
	ln     net.Listener  // guarded by lifeMu
	done   chan struct{} // guarded by lifeMu
}

// Option configures a Server at construction.
type Option func(*Server)

// WithFlightRecorder attaches a flight recorder so POST /debug/flightrecord
// has a ring to dump and GET /debug/spans?replay=N has history to replay.
func WithFlightRecorder(f *telemetry.FlightRecorder) Option {
	return func(s *Server) { s.flight = f }
}

// New builds a Server over rec (which may be nil: every endpoint still
// answers, exposing empty telemetry). The server subscribes to the
// recorder's span-end feed immediately; spans completed before the first
// /debug/spans client connects are only visible via ?replay= when a flight
// recorder is attached.
func New(rec *telemetry.Recorder, opts ...Option) *Server {
	s := &Server{
		rec:          rec,
		feed:         newSpanFeed(),
		healthChecks: map[string]Check{},
		readyChecks:  map[string]Check{},
	}
	for _, o := range opts {
		o(s)
	}
	s.ready.Store(true)
	rec.OnSpanEnd(s.feed.publish)

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/spans", s.handleSpans)
	mux.HandleFunc("/debug/flightrecord", s.handleFlightRecord)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Handler returns the route set for mounting inside another server.
func (s *Server) Handler() http.Handler { return s.mux }

// AddHealthCheck registers a liveness probe under name (replacing any
// previous check of that name).
func (s *Server) AddHealthCheck(name string, c Check) {
	s.checkMu.Lock()
	s.healthChecks[name] = c
	s.checkMu.Unlock()
}

// AddReadyCheck registers a readiness probe under name.
func (s *Server) AddReadyCheck(name string, c Check) {
	s.checkMu.Lock()
	s.readyChecks[name] = c
	s.checkMu.Unlock()
}

// SetReady flips the coarse readiness flag consulted by /readyz before the
// registered checks run. Servers start ready; a CLI run flips it off while
// compressing so load balancers (or CI probes) can tell warm-up from serving.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Start listens on addr (host:port; port 0 picks a free port) and serves in
// a background goroutine until Shutdown. Call Addr to learn the bound
// address.
func (s *Server) Start(addr string) error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.ln != nil {
		return fmt.Errorf("live: server already started on %s: %w",
			s.ln.Addr(), resilience.ErrInvalidInput)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("live: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	s.done = make(chan struct{})
	go func(srv *http.Server, ln net.Listener, done chan struct{}) {
		defer close(done)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			if l := s.rec.Logger(); l != nil {
				l.Error("live server exited", "err", err.Error())
			}
		}
	}(s.srv, ln, s.done)
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server: in-flight requests get until ctx
// expires, live span subscribers are disconnected, and the serve goroutine
// is reaped. Safe to call without a prior Start (no-op) and safe to call
// twice.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lifeMu.Lock()
	srv, done := s.srv, s.done
	s.srv, s.ln = nil, nil
	s.lifeMu.Unlock()
	s.feed.close() // wakes /debug/spans streamers so Shutdown is not stuck on them
	if srv == nil {
		return nil
	}
	err := srv.Shutdown(ctx)
	<-done
	if err != nil {
		return fmt.Errorf("live: shutdown: %w", err)
	}
	return nil
}

// handleIndex lists the endpoints (text/plain, for humans with curl).
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `gofmm live introspection
  GET  /metrics            Prometheus text exposition
  GET  /healthz            liveness
  GET  /readyz             readiness
  GET  /debug/vars         process + telemetry snapshot (JSON)
  GET  /debug/pprof/       profiling index
  GET  /debug/spans        completed spans, NDJSON (?replay=N&limit=K)
  POST /debug/flightrecord flight-recorder dump (JSON)
`)
}

// handleMetrics renders the Prometheus exposition from a fresh snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.rec.Counter("live.scrapes").Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := telemetry.WritePrometheus(w, s.rec.Snapshot()); err != nil {
		// Headers are gone; all we can do is log.
		if l := s.rec.Logger(); l != nil {
			l.Warn("metrics scrape failed", "err", err.Error())
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.runChecks(w, r, s.snapshotChecks(true), true)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.runChecks(w, r, s.snapshotChecks(false), s.ready.Load())
}

// snapshotChecks copies the health (or, for health=false, readiness) check
// map under the lock so probes run unlocked.
func (s *Server) snapshotChecks(health bool) map[string]Check {
	s.checkMu.Lock()
	defer s.checkMu.Unlock()
	m := s.readyChecks
	if health {
		m = s.healthChecks
	}
	out := make(map[string]Check, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// runChecks executes the probes with the request context and writes a
// plain-text verdict: 200 "ok" plus one line per check, or 503 when the
// base condition is false or any check fails.
func (s *Server) runChecks(w http.ResponseWriter, r *http.Request, checks map[string]Check, base bool) {
	ctx := r.Context()
	type result struct {
		name string
		err  error
	}
	results := make([]result, 0, len(checks))
	failed := !base
	for _, name := range sortedCheckNames(checks) {
		err := checks[name](ctx)
		if err != nil {
			failed = true
		}
		results = append(results, result{name, err})
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if failed {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	if !base {
		fmt.Fprintln(w, "not ready")
	} else if failed {
		fmt.Fprintln(w, "unhealthy")
	} else {
		fmt.Fprintln(w, "ok")
	}
	for _, res := range results {
		if res.err != nil {
			fmt.Fprintf(w, "fail %s: %s\n", res.name, res.err)
		} else {
			fmt.Fprintf(w, "ok   %s\n", res.name)
		}
	}
}

func sortedCheckNames(m map[string]Check) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// handleVars serves an expvar-style JSON document: process identity, memory
// statistics, goroutine count, and the full telemetry snapshot.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	doc := map[string]any{
		"cmdline":    os.Args,
		"goroutines": runtime.NumGoroutine(),
		"memstats":   ms,
		"telemetry":  s.rec.Snapshot(),
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		if l := s.rec.Logger(); l != nil {
			l.Warn("debug/vars encode failed", "err", err.Error())
		}
	}
}

// handleSpans streams completed spans as NDJSON. ?replay=N first emits the
// last N spans from the flight recorder's ring (when one is attached), then
// the stream goes live; ?limit=K closes the response after K events total —
// the knob that makes the endpoint usable from curl and CI without a
// timeout. The connection also closes when the client goes away or the
// server shuts down.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	replay, err := queryInt(r, "replay")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	emit := func(ev telemetry.SpanEvent) bool {
		if encErr := enc.Encode(ev); encErr != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		sent++
		return limit <= 0 || sent < limit
	}
	if replay > 0 {
		for _, ev := range s.flight.RecentSpans(replay) {
			if !emit(ev) {
				return
			}
		}
	}
	id, ch := s.feed.subscribe(256)
	if id >= 0 {
		defer s.feed.unsubscribe(id)
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !emit(ev) {
				return
			}
		}
	}
}

// queryInt parses a non-negative integer query parameter (0 when absent).
func queryInt(r *http.Request, key string) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("live: bad %s=%q: want non-negative integer: %w",
			key, raw, resilience.ErrInvalidInput)
	}
	return n, nil
}

// handleFlightRecord answers POST with a full flight-recorder dump as JSON.
// The request is itself recorded as a span (trace ID from the X-Trace-Id
// header when the caller sets one), so the dump action appears in the very
// history it captures.
func (s *Server) handleFlightRecord(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed (use POST)", http.StatusMethodNotAllowed)
		return
	}
	if s.flight == nil {
		http.Error(w, "no flight recorder attached", http.StatusNotFound)
		return
	}
	sp := s.rec.StartSpan("live.flightrecord")
	defer sp.End()
	sp.SetTraceIDFromContext(
		telemetry.ContextWithTraceID(r.Context(), r.Header.Get("X-Trace-Id")))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := s.flight.WriteDump(w, "manual"); err != nil {
		if l := s.rec.Logger(); l != nil {
			l.Warn("flight dump request failed", "err", err.Error())
		}
	}
}
