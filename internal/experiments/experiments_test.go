package experiments

import (
	"io"
	"strings"
	"testing"

	"gofmm/internal/core"
)

// The experiment drivers run the real pipeline; these tests use tiny sizes
// and verify structural invariants of the returned rows (counts, labels,
// sane values) plus the paper-shape assertions that are stable even at
// smoke scale.

func TestGetProblemAndRun(t *testing.T) {
	p := GetProblem("K05", 200, 1)
	res := Run(p, core.Config{
		LeafSize: 32, MaxRank: 32, Tol: 1e-5, Kappa: 8, Budget: 0.1,
		Distance: core.Angle, Exec: core.Sequential, Seed: 1, CacheBlocks: true,
	}, 4, 1)
	if res.Case != "K05" || res.N != 200 {
		t.Fatalf("row labels wrong: %+v", res)
	}
	if res.Eps < 0 || res.Eps > 1 {
		t.Fatalf("eps out of range: %g", res.Eps)
	}
	if res.CompressS <= 0 || res.EvalS <= 0 || res.AvgRank <= 0 {
		t.Fatalf("timings/rank missing: %+v", res)
	}
}

func TestGetProblemUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GetProblem("NOPE", 100, 1)
}

func TestDenseKernelMatchesOracle(t *testing.T) {
	p := GetProblem("K09", 50, 2)
	M := DenseKernel(p)
	for i := 0; i < 50; i += 7 {
		for j := 0; j < 50; j += 11 {
			// The bulk path evaluates inner products with a GEMM whose
			// summation order differs from At's dot product: allow rounding.
			d := M.At(i, j) - p.K.At(i, j)
			if d > 1e-12 || d < -1e-12 {
				t.Fatalf("DenseKernel mismatch at (%d,%d): %g", i, j, d)
			}
		}
	}
}

func TestFig1Rows(t *testing.T) {
	rows := Fig1(io.Discard, []int{128, 256}, []int{8}, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Experiment != "fig1" || r.EvalS <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
	}
}

func TestFig4Rows(t *testing.T) {
	rows := Fig4(io.Discard, []int{1}, 256, 1)
	// 2 cases × 3 schemes × 1 worker count.
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	schemes := map[string]bool{}
	for _, r := range rows {
		schemes[r.Scheme] = true
		if r.Eps > 0.1 {
			t.Fatalf("scheme %s eps %g", r.Scheme, r.Eps)
		}
	}
	if len(schemes) != 3 {
		t.Fatalf("schemes seen: %v", schemes)
	}
	// All schemes must agree on accuracy (same work, different order).
	for _, c := range []string{"COVTYPE-12%", "K02-3%"} {
		var eps []float64
		for _, r := range rows {
			if r.Case == c {
				eps = append(eps, r.Eps)
			}
		}
		for i := 1; i < len(eps); i++ {
			if eps[i] != eps[0] {
				t.Fatalf("%s: schemes disagree on eps: %v", c, eps)
			}
		}
	}
}

func TestFig5CoversAllMatrices(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows := Fig5(io.Discard, 144, 1)
	cases := map[string]int{}
	for _, r := range rows {
		cases[r.Case]++
	}
	if len(cases) != 24 {
		t.Fatalf("covered %d matrices, want 24", len(cases))
	}
	// K13/K14 and G01–G03 get extra settings.
	for _, name := range []string{"K13", "K14", "G01", "G02", "G03"} {
		if cases[name] != 3 {
			t.Fatalf("%s has %d settings, want 3", name, cases[name])
		}
	}
}

func TestFig6FMMBeatsOrMatchesHSSAtSameRank(t *testing.T) {
	rows := Fig6(io.Discard, 512, 1)
	byKey := map[string]Result{}
	for _, r := range rows {
		byKey[r.Case+"/"+r.Scheme] = r
	}
	// With the same rank, adding direct evaluations can only help accuracy
	// (up to sampling noise; allow 2×).
	for _, c := range []string{"K02", "COVTYPE"} {
		hss := byKey[c+"/HSS s=32"]
		fmm := byKey[c+"/FMM s=32 10%"]
		if fmm.Eps > 2*hss.Eps {
			t.Fatalf("%s: FMM (%g) much worse than HSS (%g) at equal rank", c, fmm.Eps, hss.Eps)
		}
	}
}

func TestFig7DistanceBeatsRandomOnGraph(t *testing.T) {
	rows := Fig7(io.Discard, 256, 1)
	byKey := map[string]Result{}
	geoCount := 0
	for _, r := range rows {
		byKey[r.Case+"/"+r.Scheme] = r
		if r.Scheme == "geometric" {
			geoCount++
		}
	}
	// G03 has no coordinates: no geometric row for it.
	if _, ok := byKey["G03/geometric"]; ok {
		t.Fatal("G03 should not have a geometric run")
	}
	if byKey["G03/angle"].Eps > byKey["G03/random"].Eps {
		t.Fatalf("angle (%g) should beat random (%g) on G03",
			byKey["G03/angle"].Eps, byKey["G03/random"].Eps)
	}
}

func TestTable3AllCodesRun(t *testing.T) {
	rows := Table3(io.Discard, 256, 1)
	codes := map[string]int{}
	for _, r := range rows {
		codes[r.Scheme]++
	}
	for _, c := range []string{"HODLR", "STRUMPACK", "GOFMM"} {
		if codes[c] != 6 {
			t.Fatalf("%s ran %d times, want 6", c, codes[c])
		}
	}
}

func TestTable4PairsRows(t *testing.T) {
	rows := Table4(io.Discard, []int{256}, 1)
	if len(rows) != 8 { // 2 matrices × 1 size × 2 tols × 2 codes
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		if rows[i].Scheme != "ASKIT" || rows[i+1].Scheme != "GOFMM" {
			t.Fatalf("row pairing broken at %d: %s/%s", i, rows[i].Scheme, rows[i+1].Scheme)
		}
		if rows[i].Case != rows[i+1].Case {
			t.Fatal("pair case mismatch")
		}
	}
}

func TestTable5ArchsIdenticalAccuracy(t *testing.T) {
	rows := Table5(io.Discard, 256, 1)
	byCase := map[string][]Result{}
	for _, r := range rows {
		byCase[r.Case] = append(byCase[r.Case], r)
	}
	if len(byCase) != 7 {
		t.Fatalf("cases = %d", len(byCase))
	}
	for c, rs := range byCase {
		if len(rs) != 4 {
			t.Fatalf("%s has %d arch rows", c, len(rs))
		}
		for _, r := range rs[1:] {
			if r.Eps != rs[0].Eps {
				t.Fatalf("%s: architectures disagree on eps: %g vs %g", c, r.Eps, rs[0].Eps)
			}
		}
	}
}

func TestHeaderAndCells(t *testing.T) {
	var sb strings.Builder
	header(&sb, "a", "b")
	cell(&sb, "%d", 42)
	endRow(&sb)
	out := sb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "42") {
		t.Fatalf("formatting broken: %q", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("rows: %q", out)
	}
}

func TestScalingRowsAndGrowth(t *testing.T) {
	rows := Scaling(io.Discard, []int{128, 256}, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].N != 2*rows[0].N {
		t.Fatal("sizes not doubling")
	}
}
