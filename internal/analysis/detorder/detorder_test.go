package detorder_test

import (
	"testing"

	"gofmm/internal/analysis/analyzertest"
	"gofmm/internal/analysis/detorder"
)

func TestDetOrder(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), detorder.Analyzer, "detorder")
}
