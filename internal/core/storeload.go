package core

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"gofmm/internal/linalg"
	"gofmm/internal/plan"
	"gofmm/internal/store"
	"gofmm/internal/telemetry"
	"gofmm/internal/tree"
	"gofmm/internal/workspace"
)

// Loading a compressed operator from the on-disk store. Two disciplines:
//
//   - LoadFrom with Mmap maps the file read-only and binds every constant
//     matrix as a column-major view straight into the mapping — zero copies
//     of arena data, first matvec limited by page faults, the mapping held
//     until ReleaseStore. Any mmap failure (unsupported platform, filesystem
//     without mmap, misaligned file) falls back to the portable path.
//   - The portable path reads the file into memory and, when the host can
//     reinterpret little-endian IEEE floats in place, still binds views into
//     that buffer; otherwise (big-endian hosts) it decodes by copy.
//
// Either way the container is validated section-by-section (magic, bounds,
// alignment, sha256 checksums) by internal/store before a byte of payload is
// parsed, and the payload parser bounds every allocation by the bytes
// actually present — the hardened untrusted-input discipline of ReadFrom.

// LoadOptions configures LoadFrom. The zero value is a sequentialish
// portable load: no mmap, Dynamic executor with one worker, no pooling, no
// telemetry.
type LoadOptions struct {
	// Mmap requests the zero-copy mapped load. On failure of any kind the
	// load silently falls back to the portable path; StoreInfo.Mapped reports
	// which one served.
	Mmap bool
	// Exec and NumWorkers seed the returned operator's executor config.
	Exec       ExecMode
	NumWorkers int
	// Workspace and Telemetry attach the evaluation scratch pool and the
	// metrics recorder, as in Config.
	Workspace *workspace.Pool
	Telemetry *telemetry.Recorder
}

// StoreInfo describes how a load was served.
type StoreInfo struct {
	// Mapped is true when the operator evaluates out of a read-only mmap.
	Mapped bool
	// Bytes is the store file size.
	Bytes int64
	// HasPlan reports whether a compiled plan was persisted and reinstalled.
	HasPlan bool
	// PlanDigest is the hex digest of the reinstalled plan ("" without one).
	PlanDigest string
}

// LoadFrom opens an operator store written by SaveTo and reconstructs the
// operator. The result carries no entry oracle (HasOracle is false): Matvec,
// Matmat and the persisted compiled plan work immediately, while paths that
// must sample fresh entries return ErrNoOracle until AttachOracle provides
// one. Close the returned operator's backing file with ReleaseStore when it
// leaves service.
func LoadFrom(path string, opts LoadOptions) (*Hierarchical, *StoreInfo, error) {
	var f *store.File
	var err error
	if opts.Mmap {
		f, err = store.OpenMmap(path)
		if err != nil {
			f, err = store.Open(path)
		}
	} else {
		f, err = store.Open(path)
	}
	if err != nil {
		return nil, nil, err
	}
	h, info, err := decodeStore(f, opts)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	opts.Telemetry.Counter("store.loads").Add(1)
	if info.Mapped {
		opts.Telemetry.Counter("store.mmap_hits").Add(1)
	}
	return h, info, nil
}

// arenaFloats64 views (or on big-endian hosts decodes) a float64 arena
// section. copied reports whether the data was copied out of the section.
func arenaFloats64(b []byte) ([]float64, bool, error) {
	if len(b)%8 != 0 {
		return nil, false, fmt.Errorf("%w: f64 arena length %d", ErrBadFormat, len(b))
	}
	if len(b) == 0 {
		return nil, false, nil
	}
	if v, err := store.Float64s(b); err == nil {
		//gofmmlint:ignore mmaplife sanctioned ownership transfer: the caller stores the view behind Hierarchical.backing, which keeps the mapping open until ReleaseStore
		return v, false, nil
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, true, nil
}

// arenaFloats32 is arenaFloats64 for the single-precision arena.
func arenaFloats32(b []byte) ([]float32, bool, error) {
	if len(b)%4 != 0 {
		return nil, false, fmt.Errorf("%w: f32 arena length %d", ErrBadFormat, len(b))
	}
	if len(b) == 0 {
		return nil, false, nil
	}
	if v, err := store.Float32s(b); err == nil {
		//gofmmlint:ignore mmaplife sanctioned ownership transfer: the caller stores the view behind Hierarchical.backing, which keeps the mapping open until ReleaseStore
		return v, false, nil
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, true, nil
}

// decodeStore parses a validated store container into an operator.
func decodeStore(f *store.File, opts LoadOptions) (*Hierarchical, *StoreInfo, error) {
	metab, ok := f.Section(store.SecMeta)
	if !ok {
		return nil, nil, fmt.Errorf("%w: store missing meta section", ErrBadFormat)
	}
	topob, ok := f.Section(store.SecTopo)
	if !ok {
		return nil, nil, fmt.Errorf("%w: store missing topo section", ErrBadFormat)
	}
	planb, _ := f.Section(store.SecPlan) // absent plan == no plan
	a64b, _ := f.Section(store.SecArena64)
	a32b, _ := f.Section(store.SecArena32)

	// --- meta ---
	mr := newSecReader("meta", metab)
	if v := mr.i64(); mr.err() == nil && v != storePayloadVersion {
		return nil, nil, fmt.Errorf("%w: store payload version %d (want %d)", ErrBadFormat, v, storePayloadVersion)
	}
	n := mr.dim()
	leaf := mr.dim()
	maxRank := mr.dim()
	kappa := mr.dim()
	sampleRows := mr.dim()
	seed := mr.i64()
	dist := mr.i64()
	tol := mr.f64()
	budget := mr.f64()
	cacheBlocks := mr.boolean()
	cacheSingle := mr.boolean()
	if err := mr.finish(); err != nil {
		return nil, nil, err
	}
	if n <= 0 {
		return nil, nil, fmt.Errorf("%w: dimension %d", ErrBadFormat, n)
	}
	if leaf < 1 || leaf > n {
		return nil, nil, fmt.Errorf("%w: leaf size %d for dimension %d", ErrBadFormat, leaf, n)
	}
	if dist < 0 || dist > int64(RandomPerm) {
		return nil, nil, fmt.Errorf("%w: distance %d", ErrBadFormat, dist)
	}
	if math.IsNaN(tol) || math.IsInf(tol, 0) || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, nil, fmt.Errorf("%w: non-finite tolerance or budget", ErrBadFormat)
	}

	// --- arenas ---
	f64, cp64, err := arenaFloats64(a64b)
	if err != nil {
		return nil, nil, err
	}
	f32, cp32, err := arenaFloats32(a32b)
	if err != nil {
		return nil, nil, err
	}
	mapped := f.Mapped() && !cp64 && !cp32

	// --- topo: matrix table ---
	tr := newSecReader("topo", topob)
	numRecs := tr.dim()
	if tr.err() == nil && (numRecs < 0 || numRecs > tr.remaining()/32) {
		return nil, nil, fmt.Errorf("%w: matrix table of %d records in %d bytes", ErrBadFormat, numRecs, tr.remaining())
	}
	mats64 := make([]*linalg.Matrix, numRecs)
	mats32 := make([]*linalg.Matrix32, numRecs)
	for i := 0; i < numRecs && tr.err() == nil; i++ {
		prec, rows, cols, off := tr.i64(), tr.i64(), tr.i64(), tr.i64()
		if tr.err() != nil {
			break
		}
		if rows < 0 || rows > maxSerialDim || cols < 0 || cols > maxSerialDim || off < 0 {
			return nil, nil, fmt.Errorf("%w: matrix record %d: %d×%d at %d", ErrBadFormat, i, rows, cols, off)
		}
		elems := rows * cols // ≤ 2^62, no overflow
		switch prec {
		case 8:
			if off%8 != 0 || off/8+elems > int64(len(f64)) {
				return nil, nil, fmt.Errorf("%w: matrix record %d overruns f64 arena", ErrBadFormat, i)
			}
			if elems == 0 {
				mats64[i] = linalg.NewMatrix(int(rows), int(cols))
			} else {
				mats64[i] = linalg.FromColumnMajor(int(rows), int(cols), f64[off/8:off/8+elems])
			}
		case 4:
			if off%4 != 0 || off/4+elems > int64(len(f32)) {
				return nil, nil, fmt.Errorf("%w: matrix record %d overruns f32 arena", ErrBadFormat, i)
			}
			if elems == 0 {
				mats32[i] = linalg.NewMatrix32(int(rows), int(cols))
			} else {
				mats32[i] = linalg.FromColumnMajor32(int(rows), int(cols), f32[off/4:off/4+elems])
			}
		default:
			return nil, nil, fmt.Errorf("%w: matrix record %d precision %d", ErrBadFormat, i, prec)
		}
	}
	ref64 := func(v int64) *linalg.Matrix {
		if v == -1 {
			return nil
		}
		if v < 0 || v >= int64(numRecs) || mats64[v] == nil {
			tr.failf("f64 matrix ref %d invalid", v)
			return nil
		}
		return mats64[v]
	}
	ref32 := func(v int64) *linalg.Matrix32 {
		if v == -1 {
			return nil
		}
		if v < 0 || v >= int64(numRecs) || mats32[v] == nil {
			tr.failf("f32 matrix ref %d invalid", v)
			return nil
		}
		return mats32[v]
	}

	// --- topo: permutation and tree ---
	perm := tr.ints(n)
	if err := tr.err(); err != nil {
		return nil, nil, err
	}
	if len(perm) != n {
		return nil, nil, fmt.Errorf("%w: permutation length %d for dimension %d", ErrBadFormat, len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if seen[p] {
			return nil, nil, fmt.Errorf("%w: duplicate index %d in permutation", ErrBadFormat, p)
		}
		seen[p] = true
	}
	t := tree.FromPermutation(perm, leaf)
	numNodes := tr.dim()
	if tr.err() == nil && numNodes != len(t.Nodes) {
		return nil, nil, fmt.Errorf("%w: %d nodes for tree of %d", ErrBadFormat, numNodes, len(t.Nodes))
	}

	// --- topo: per-node state ---
	h := &Hierarchical{
		K: noOracle{n: n},
		Cfg: Config{
			LeafSize: leaf, MaxRank: maxRank, Tol: tol, Kappa: kappa,
			Budget: budget, Distance: Distance(dist), CacheBlocks: cacheBlocks,
			CacheSingle: cacheSingle, SampleRows: sampleRows, Seed: seed,
			Exec: opts.Exec, NumWorkers: max(opts.NumWorkers, 1),
			Workspace: opts.Workspace, Telemetry: opts.Telemetry,
		},
		Tree: t,
	}
	h.nodes = make([]node, len(t.Nodes))
	readRefList64 := func(count int) []*linalg.Matrix {
		if !tr.boolean() || tr.err() != nil {
			return nil
		}
		out := make([]*linalg.Matrix, count)
		for k := range out {
			out[k] = ref64(tr.i64())
			if out[k] == nil && tr.err() == nil {
				tr.failf("nil matrix in cache list")
			}
		}
		return out
	}
	readRefList32 := func(count int) []*linalg.Matrix32 {
		if !tr.boolean() || tr.err() != nil {
			return nil
		}
		out := make([]*linalg.Matrix32, count)
		for k := range out {
			out[k] = ref32(tr.i64())
			if out[k] == nil && tr.err() == nil {
				tr.failf("nil matrix in cache list")
			}
		}
		return out
	}
	for id := range h.nodes {
		if tr.err() != nil {
			break
		}
		nd := &h.nodes[id]
		nd.skel = tr.ints(n)
		nd.proj = ref64(tr.i64())
		nd.near = tr.ints(len(t.Nodes))
		nd.far = tr.ints(len(t.Nodes))
		nd.denseFallback = tr.boolean()
		nd.cacheNear = readRefList64(len(nd.near))
		nd.cacheFar = readRefList64(len(nd.far))
		nd.cacheNear32 = readRefList32(len(nd.near))
		nd.cacheFar32 = readRefList32(len(nd.far))
	}
	if err := tr.finish(); err != nil {
		return nil, nil, err
	}

	// --- plan ---
	info := &StoreInfo{Mapped: mapped, Bytes: f.Size()}
	if len(planb) > 0 {
		p, err := decodeStorePlan(planb, t, mats64, mats32)
		if err != nil {
			return nil, nil, err
		}
		if p != nil {
			if p.N() != n {
				return nil, nil, fmt.Errorf("%w: plan dimension %d for operator %d", ErrBadFormat, p.N(), n)
			}
			h.evalPlan.Store(p)
			h.Cfg.CompilePlan = true
			info.HasPlan = true
			info.PlanDigest = p.DigestHex()
		}
	}

	h.backing = f
	h.finishStats()
	return h, info, nil
}

// decodeStorePlan parses the plan section and reassembles the compiled
// schedule, verifying the persisted digest against the reassembled plan's.
func decodeStorePlan(b []byte, t *tree.Tree, mats64 []*linalg.Matrix, mats32 []*linalg.Matrix32) (*plan.Plan, error) {
	r := newSecReader("plan", b)
	if !r.boolean() {
		if err := r.finish(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	pn := r.dim()
	arenaRows := r.dim()
	numOps := r.dim()
	// An op record is at least 105 bytes; bound the slice allocation.
	if r.err() == nil && (numOps < 0 || numOps > r.remaining()/105) {
		r.failf("%d ops in %d bytes", numOps, r.remaining())
	}
	if err := r.err(); err != nil {
		return nil, err
	}
	readRef := func() plan.Ref {
		return plan.Ref{
			Base: r.dim(), Sub: r.dim(), Rows: r.dim(), Span: r.dim(),
		}
	}
	ops := make([]plan.Op, 0, numOps)
	for i := 0; i < numOps && r.err() == nil; i++ {
		var op plan.Op
		op.Kind = plan.OpKind(r.dim())
		op.TransA = r.boolean()
		op.Beta = r.f64()
		aRef := r.i64()
		a32Ref := r.i64()
		op.B = readRef()
		op.C = readRef()
		if aRef != -1 {
			if aRef < 0 || aRef >= int64(len(mats64)) || mats64[aRef] == nil {
				r.failf("op %d: f64 operand ref %d invalid", i, aRef)
				break
			}
			op.A = mats64[aRef]
		}
		if a32Ref != -1 {
			if a32Ref < 0 || a32Ref >= int64(len(mats32)) || mats32[a32Ref] == nil {
				r.failf("op %d: f32 operand ref %d invalid", i, a32Ref)
				break
			}
			op.A32 = mats32[a32Ref]
		}
		switch sel := r.i64(); sel {
		case idxNone:
		case idxPerm:
			op.Idx = t.Perm
		case idxIPerm:
			op.Idx = t.IPerm
		case idxInline:
			op.Idx = r.ints(maxSerialDim)
		default:
			r.failf("op %d: index selector %d", i, sel)
		}
		ops = append(ops, op)
	}
	numStages := r.dim()
	// A stage record is at least 17 bytes.
	if r.err() == nil && (numStages < 0 || numStages > r.remaining()/17) {
		r.failf("%d stages in %d bytes", numStages, r.remaining())
	}
	specs := make([]plan.StageSpec, 0, max(numStages, 0))
	for s := 0; s < numStages && r.err() == nil; s++ {
		var spec plan.StageSpec
		spec.Name = string(r.blob(256))
		spec.Parallel = r.boolean()
		numTasks := r.dim()
		if r.err() == nil && (numTasks < 0 || numTasks > r.remaining()/16) {
			r.failf("stage %d: %d tasks in %d bytes", s, numTasks, r.remaining())
		}
		for k := 0; k < numTasks && r.err() == nil; k++ {
			spec.Tasks = append(spec.Tasks, [2]int{r.dim(), r.dim()})
		}
		specs = append(specs, spec)
	}
	storedDigest := r.blob(32)
	if r.err() == nil && len(storedDigest) != 32 {
		r.failf("digest length %d", len(storedDigest))
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	p, err := plan.Reassemble(pn, arenaRows, ops, specs)
	if err != nil {
		return nil, err
	}
	if d := p.Digest(); string(d[:]) != string(storedDigest) {
		return nil, fmt.Errorf("%w: plan digest mismatch: stored %s, reassembled %s",
			ErrBadFormat, hex.EncodeToString(storedDigest), p.DigestHex())
	}
	return p, nil
}
