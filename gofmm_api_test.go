package gofmm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/krylov"
	"gofmm/testmat"
)

// Compile-time checks: the public types satisfy the krylov contracts.
var (
	_ krylov.Operator       = (*Hierarchical)(nil)
	_ krylov.Preconditioner = (*Factorization)(nil)
)

func TestFactorThroughPublicAPI(t *testing.T) {
	p, err := testmat.Generate("K02", 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	H, err := Compress(p.K, Config{
		LeafSize: 64, MaxRank: 64, Tol: 1e-9, Budget: 0,
		Distance: Angle, Exec: Sequential, Seed: 1, CacheBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	F, err := Factor(H)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b := linalg.GaussianMatrix(rng, p.K.Dim(), 2)
	x := F.Solve(b)
	back := H.Matvec(x)
	if d := linalg.RelFrobDiff(back, b); d > 1e-8 {
		t.Fatalf("Factor/Solve inconsistent with Matvec: %g", d)
	}
}

func TestFactorRejectsFMMMode(t *testing.T) {
	p, err := testmat.Generate("K05", 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	H, err := Compress(p.K, Config{
		LeafSize: 64, MaxRank: 32, Tol: 1e-5, Budget: 0.2,
		Distance: Angle, Exec: Sequential, Seed: 1, CacheBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Factor(H); !errors.Is(err, ErrNotHSS) {
		t.Fatalf("expected ErrNotHSS, got %v", err)
	}
}

func TestSaveLoadThroughPublicAPI(t *testing.T) {
	p, err := testmat.Generate("K09", 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	H, err := Compress(p.K, Config{
		LeafSize: 64, MaxRank: 32, Tol: 1e-6, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 2, CacheBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(H, &buf); err != nil {
		t.Fatal(err)
	}
	H2, err := Load(&buf, p.K)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	W := linalg.GaussianMatrix(rng, p.K.Dim(), 2)
	if !linalg.EqualApprox(H.Matvec(W), H2.Matvec(W), 0) {
		t.Fatal("loaded form gives a different matvec")
	}
}

func TestCountingThroughPublicAPI(t *testing.T) {
	p, err := testmat.Generate("K10", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounting(p.K)
	if _, err := Compress(c, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-5, Budget: 0.05,
		Distance: Kernel, Exec: Sequential, Seed: 3, CacheBlocks: true,
	}); err != nil {
		t.Fatal(err)
	}
	if c.Count() == 0 {
		t.Fatal("no entries counted during compression")
	}
	// At N=200 the per-leaf constants dominate (the scaling test lives in
	// internal/core); just bound the blow-up.
	if c.Count() >= int64(200*200*10) {
		t.Fatalf("compression touched %d entries (10× N²)", c.Count())
	}
}

func TestKrylovOverCompressedOperator(t *testing.T) {
	// End-to-end: CG over the compressed matvec preconditioned by the
	// hierarchical factorization of the same operator converges instantly.
	p, err := testmat.Generate("K02", 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	H, err := Compress(p.K, Config{
		LeafSize: 64, MaxRank: 64, Tol: 1e-10, Budget: 0,
		Distance: Angle, Exec: Sequential, Seed: 1, CacheBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	F, err := Factor(H)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b := make([]float64, p.K.Dim())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, res, err := krylov.CG(H, F, b, 1e-10, 10)
	if err != nil {
		t.Fatalf("preconditioned CG failed: %v (res %+v)", err, res)
	}
	if res.Iterations > 2 {
		t.Fatalf("exact preconditioner took %d iterations", res.Iterations)
	}
	evs := krylov.Lanczos(H, 10, 5)
	if evs[0] <= 0 {
		t.Fatalf("largest Ritz value %g for an SPD operator", evs[0])
	}
}

func TestDistributeThroughPublicAPI(t *testing.T) {
	p, err := testmat.Generate("K05", 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	H, err := Compress(p.K, Config{
		LeafSize: 64, MaxRank: 32, Tol: 1e-6, Budget: 0.1,
		Distance: Angle, Exec: Sequential, Seed: 5, CacheBlocks: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	M, err := Distribute(H, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	W := linalg.GaussianMatrix(rng, p.K.Dim(), 2)
	want := H.Matvec(W)
	got, err := M.Matvec(W)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.RelFrobDiff(got, want); d > 1e-12 {
		t.Fatalf("distributed differs by %g", d)
	}
	if M.Stats.Messages == 0 || M.Stats.Bytes == 0 {
		t.Fatalf("no communication recorded: %+v", M.Stats)
	}
}
