// Package core implements GOFMM (geometry-oblivious fast multipole method),
// the primary contribution of the paper: hierarchical low-rank compression
// K ≈ D + S + UV of an arbitrary dense SPD matrix using only sampled matrix
// entries, and the O(N)/O(N log N) matrix-vector evaluation on the
// compressed form.
//
// The compression pipeline follows Algorithm 2.2 of the paper:
//
//	(1–3) iterative randomized-tree all-nearest-neighbor search
//	(4)   metric ball tree build (kernel/angle/geometric distance)
//	(5–7) near and far interaction lists (LeafNear, FindFar, MergeFar)
//	(8–9) nested skeletonization (SKEL) and interpolation coefficients (COEF)
//	(10–11) optional caching of near blocks K_βα and far blocks K_β̃α̃
//
// and the evaluation follows Algorithm 2.7: N2S (nodes to skeletons), S2S
// (skeletons to skeletons), S2N (skeletons to nodes) and L2L (leaves to
// leaves). Both phases can run sequentially, level-by-level with barriers,
// or out-of-order on the task runtime in internal/sched with HEFT or FIFO
// dispatch.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gofmm/internal/ann"
	"gofmm/internal/linalg"
	"gofmm/internal/plan"
	"gofmm/internal/resilience"
	"gofmm/internal/sched"
	"gofmm/internal/store"
	"gofmm/internal/telemetry"
	"gofmm/internal/tree"
	"gofmm/internal/workspace"
)

// SPD is the minimal access GOFMM requires from the input matrix: its
// dimension and an entry oracle. Every structural decision (permutation,
// pruning, sampling) is derived from these entries alone.
type SPD interface {
	Dim() int
	At(i, j int) float64
}

// Bulk is an optional fast path for gathering submatrices K[I, J]. Dense
// matrices copy; kernel matrices evaluate blocks with a GEMM-style 2-norm
// expansion (the trick the paper uses on memory-limited platforms).
type Bulk interface {
	Submatrix(I, J []int, dst *linalg.Matrix)
}

// Gather fills dst (len(I)×len(J)) with K[I, J], using the Bulk fast path
// when available.
func Gather(K SPD, I, J []int, dst *linalg.Matrix) {
	if dst.Rows != len(I) || dst.Cols != len(J) {
		panic("core: Gather destination shape mismatch")
	}
	if b, ok := K.(Bulk); ok {
		b.Submatrix(I, J, dst)
		return
	}
	for c, j := range J {
		col := dst.Col(c)
		for r, i := range I {
			col[r] = K.At(i, j)
		}
	}
}

// NewGathered allocates and fills K[I, J].
func NewGathered(K SPD, I, J []int) *linalg.Matrix {
	dst := linalg.NewMatrix(len(I), len(J))
	Gather(K, I, J, dst)
	return dst
}

// Distance selects how index-to-index distances are defined (§2.1). Kernel
// and Angle are the geometry-oblivious Gram-space distances; Geometric
// requires coordinates; Lexicographic and Random define no distance at all
// (no neighbors, HSS-only — the Figure 7 baselines).
type Distance int

const (
	// Angle is the Gram angle distance 1 − K²ij/(Kii·Kjj) (the default).
	Angle Distance = iota
	// Kernel is the Gram ℓ₂ distance Kii + Kjj − 2Kij.
	Kernel
	// Geometric is the point distance ‖xi − xj‖; requires Config.Points.
	Geometric
	// Lexicographic keeps the input order (no permutation, no neighbors).
	Lexicographic
	// RandomPerm permutes uniformly at random (no neighbors).
	RandomPerm
)

func (d Distance) String() string {
	switch d {
	case Angle:
		return "angle"
	case Kernel:
		return "kernel"
	case Geometric:
		return "geometric"
	case Lexicographic:
		return "lexicographic"
	case RandomPerm:
		return "random"
	}
	return fmt.Sprintf("Distance(%d)", int(d))
}

// HasNeighbors reports whether the distance supports neighbor search (and
// therefore FMM-style sparse corrections and importance sampling).
func (d Distance) HasNeighbors() bool {
	return d == Angle || d == Kernel || d == Geometric
}

// ExecMode selects the parallel execution strategy for both compression and
// evaluation, matching the three schemes compared in Figure 4.
type ExecMode int

const (
	// Dynamic is the task runtime with HEFT scheduling and work stealing.
	Dynamic ExecMode = iota
	// LevelByLevel synchronizes with a barrier after every tree level.
	LevelByLevel
	// TaskDepend uses the task DAG with a plain FIFO queue (omp task depend).
	TaskDepend
	// Sequential runs single-threaded recursive traversals (reference).
	Sequential
)

func (e ExecMode) String() string {
	switch e {
	case Dynamic:
		return "dynamic"
	case LevelByLevel:
		return "level-by-level"
	case TaskDepend:
		return "task-depend"
	case Sequential:
		return "sequential"
	}
	return fmt.Sprintf("ExecMode(%d)", int(e))
}

// DegradeMode selects how compression responds when a node's sampled
// off-diagonal block cannot reach Tol at MaxRank — the numerical failure
// mode of the interpolative decomposition.
type DegradeMode int

const (
	// DegradeTruncate accepts the rank-MaxRank approximation and moves on
	// (the historical behavior; the miss is recorded in telemetry).
	DegradeTruncate DegradeMode = iota
	// DegradeDense falls back to exact storage for the failing node: all
	// candidate columns become the skeleton with identity interpolation.
	// Costlier but never less accurate than requested; the node is flagged
	// in Inspect and counted in Stats.DenseFallbacks.
	DegradeDense
	// DegradeStrict fails the whole compression with ErrTolerance.
	DegradeStrict
)

func (d DegradeMode) String() string {
	switch d {
	case DegradeTruncate:
		return "truncate"
	case DegradeDense:
		return "dense"
	case DegradeStrict:
		return "strict"
	}
	return fmt.Sprintf("DegradeMode(%d)", int(d))
}

// Config collects GOFMM's tuning parameters; zero values choose the paper's
// defaults (m=256, s=m, τ=1e-5, κ=32, 3% budget, angle distance).
type Config struct {
	// LeafSize is m, the leaf node size of the partition tree.
	LeafSize int
	// MaxRank is s, the maximum skeleton size per node.
	MaxRank int
	// Tol is τ, the adaptive-rank tolerance: skeletonization stops once the
	// estimated σ_{s+1} of the sampled off-diagonal block falls below
	// Tol·σ₁.
	Tol float64
	// Kappa is κ, the number of nearest neighbors per index.
	Kappa int
	// Budget bounds the sparse correction: |Near(β)| ≤ Budget·(N/m)
	// (Eq. 6). Budget 0 yields an HSS approximation (S = 0).
	Budget float64
	// Distance selects the index distance (default Angle).
	Distance Distance
	// Points holds coordinates as columns of a d×N matrix; required for
	// Geometric, optional otherwise.
	Points *linalg.Matrix
	// NumWorkers sets the worker-pool size (default 1); ignored when
	// WorkerSpecs is non-nil.
	NumWorkers int
	// WorkerSpecs optionally describes a heterogeneous pool (Table 5's
	// CPU+device configurations).
	WorkerSpecs []sched.WorkerSpec
	// Exec selects the execution strategy (default Dynamic).
	Exec ExecMode
	// CacheBlocks caches near blocks K_βα and far blocks K_β̃α̃ during
	// compression (tasks Kba and SKba); evaluation then avoids re-gathering.
	CacheBlocks bool
	// CacheSingle stores the cached blocks in float32 (half the memory, the
	// paper's single-precision storage regime); accumulation stays float64.
	CacheSingle bool
	// CompilePlan lowers the four-pass traversal into a flat execution plan
	// at the end of CompressCtx (see CompilePlanCtx); Matvec/Matmat then
	// replay the compiled schedule instead of re-walking the tree. The tree
	// interpreter remains reachable through InterpMatvecCtx/InterpMatmatCtx.
	CompilePlan bool
	// SampleRows bounds the number of importance-sampled rows used per
	// skeletonization (default 4·MaxRank + LeafSize).
	SampleRows int
	// ANNIters caps the neighbor-search iterations (default 10).
	ANNIters int
	// ANNRecall, when positive, switches the neighbor search to the paper's
	// stopping rule: iterate until the sampled recall reaches this target
	// (the paper uses 0.8). Zero keeps the cheaper update-rate heuristic.
	ANNRecall float64
	// Seed makes all randomized components deterministic.
	Seed int64
	// NoSymmetrize skips the near-list symmetrization step. GOFMM always
	// symmetrizes (its K̃ is symmetric by construction); the ASKIT baseline
	// sets this.
	NoSymmetrize bool
	// CaptureTrace records the task execution trace of Dynamic/TaskDepend
	// runs into LastTrace (timings, worker placement) for analysis.
	CaptureTrace bool
	// Telemetry, when non-nil, records phase spans, oracle/flop counters,
	// skeleton-rank histograms and scheduler task events into the attached
	// recorder. Nil disables all recording; every instrumentation point is a
	// no-op on a nil recorder, so the hot paths carry no conditionals.
	Telemetry *telemetry.Recorder
	// Chaos, when non-nil and enabled, injects deterministic faults (task
	// failures during skeletonization, oracle poisoning, message loss in
	// dist) to exercise the recovery paths. Nil disables all injection.
	Chaos *resilience.Chaos
	// Degrade selects what happens when a node cannot reach Tol at MaxRank
	// (default DegradeTruncate, the historical behavior).
	Degrade DegradeMode
	// StallTimeout arms the scheduler watchdog for Dynamic/TaskDepend runs:
	// if no task completes for this long while work remains, CompressCtx
	// fails with ErrStalled naming the stuck frontier. 0 disables.
	StallTimeout time.Duration
	// Workspace, when non-nil, supplies the per-call scratch of Matvec (and
	// of the HSS and dist layers that inherit this Config) from a size-classed
	// buffer pool instead of the allocator, so steady-state evaluation traffic
	// stops churning the GC. Nil keeps the historical allocate-per-call
	// behavior. The pool is safe for concurrent use across evaluations.
	Workspace *workspace.Pool
}

// withDefaults fills in unset fields.
func (c Config) withDefaults(n int) Config {
	if c.LeafSize <= 0 {
		c.LeafSize = 256
	}
	if c.LeafSize > n {
		c.LeafSize = n
	}
	if c.MaxRank <= 0 {
		c.MaxRank = c.LeafSize
	}
	if c.Tol <= 0 {
		c.Tol = 1e-5
	}
	if c.Kappa <= 0 {
		c.Kappa = 32
	}
	if c.NumWorkers <= 0 {
		c.NumWorkers = 1
	}
	if c.SampleRows <= 0 {
		c.SampleRows = 4*c.MaxRank + c.LeafSize
	}
	if c.ANNIters <= 0 {
		c.ANNIters = 10
	}
	return c
}

// node holds the per-tree-node state of the compressed representation.
type node struct {
	skel []int          // skeleton indices α̃ (original matrix indices)
	proj *linalg.Matrix // P_α̃α (leaf) or P_α̃[l̃r̃] (interior); nil for root
	near []int          // near node IDs (leaves only, includes self)
	far  []int          // far node IDs (after MergeFar)
	// denseFallback marks a node whose sampled block could not reach Tol at
	// MaxRank: all candidate columns were kept as the skeleton with identity
	// interpolation (exact but uncompressed — graceful degradation).
	denseFallback bool

	cacheNear []*linalg.Matrix // K_βα per near α (optional)
	cacheFar  []*linalg.Matrix // K_β̃α̃ per far α (optional)
	// Single-precision variants used when Config.CacheSingle is set.
	cacheNear32 []*linalg.Matrix32
	cacheFar32  []*linalg.Matrix32
}

// Stats aggregates cost accounting for the experiment harness.
//
// Deprecated-ish: with Config.Telemetry attached, Stats is a derived view of
// the telemetry span tree and metric registry (same clock, same numbers —
// see Recorder.Snapshot for the structured form). The fields are kept so
// existing callers and the experiment harness keep working unchanged.
type Stats struct {
	// Times in seconds.
	ANNTime, TreeTime, ListsTime, SkelTime, CacheTime float64
	// CompressTime is the total of the above; EvalTime is the last Matvec.
	CompressTime, EvalTime float64
	// PlanTime is the cost of the last CompilePlanCtx lowering (seconds).
	PlanTime float64
	// Flops spent in each phase (approximate, following Table 2).
	CompressFlops, EvalFlops float64
	// AvgRank is the mean skeleton size over non-root nodes.
	AvgRank float64
	// MaxNear is the largest near-list length; DirectFrac is the fraction
	// of the N² matrix evaluated directly by L2L.
	MaxNear    int
	DirectFrac float64
	// ANNRecallProxy is the final neighbor-list update rate (lower means
	// converged).
	ANNRecallProxy float64
	// DenseFallbacks counts nodes that missed Tol at MaxRank and degraded to
	// dense (identity-interpolation) storage.
	DenseFallbacks int
}

// Hierarchical is the compressed H-matrix representation K̃ = D + S + UV.
type Hierarchical struct {
	K    SPD
	Cfg  Config
	Tree *tree.Tree
	// Neighbors holds the κ-nearest-neighbor lists (nil for distances
	// without neighbors).
	Neighbors *ann.List
	nodes     []node
	// Stats aggregates compression- and evaluation-cost counters. The
	// compression fields are written once, before Compress returns; the
	// last-evaluation fields are rewritten by every replay, so concurrent
	// readers must go through LastEval.
	// guarded by statsMu for EvalTime, EvalFlops
	Stats Stats
	// LastTrace holds the most recent traced task execution. It is
	// populated when Config.CaptureTrace is set or a Telemetry recorder is
	// attached (the recorder's TaskEvents carry the same executions plus
	// queue-wait and steal-origin detail).
	LastTrace []sched.Event

	compressFlops, evalFlops int64 // atomic counters

	// statsMu serializes the "last evaluation" writes into Stats
	// (EvalTime/EvalFlops). One Hierarchical legitimately serves many
	// concurrent MatvecCtx/MatmatCtx replays; the cost fields are
	// last-writer-wins by contract, but the writes themselves must not race.
	statsMu sync.Mutex

	// evalPlan is the installed compiled evaluation schedule (nil while
	// evaluation runs through the tree interpreter); planMu serializes
	// compilation so concurrent CompilePlanCtx calls lower at most once.
	evalPlan atomic.Pointer[plan.Plan]
	planMu   sync.Mutex

	errMu sync.Mutex
	// tolErr is the first StrictTolerance miss (checked after skeletonize).
	// guarded by errMu
	tolErr error

	// backing is the operator-store file this representation was loaded from
	// (nil for compressed-in-memory operators). When the file is memory-mapped,
	// the node caches and plan constants are zero-copy views into it, so it
	// must stay open for the operator's lifetime; ReleaseStore closes it.
	backing *store.File
}

// recordToleranceMiss remembers the first strict-mode tolerance failure
// (skeletonization tasks run concurrently; CompressCtx surfaces it after the
// phase drains).
func (h *Hierarchical) recordToleranceMiss(err error) {
	h.errMu.Lock()
	if h.tolErr == nil {
		h.tolErr = err
	}
	h.errMu.Unlock()
}

// toleranceErr returns the recorded strict-mode failure, if any.
func (h *Hierarchical) toleranceErr() error {
	h.errMu.Lock()
	defer h.errMu.Unlock()
	return h.tolErr
}

// N returns the matrix dimension.
func (h *Hierarchical) N() int { return h.K.Dim() }

// Rank returns the skeleton size of tree node id.
func (h *Hierarchical) Rank(id int) int { return len(h.nodes[id].skel) }

// NearList and FarList expose the interaction lists (for tests/inspection).
func (h *Hierarchical) NearList(id int) []int { return h.nodes[id].near }
func (h *Hierarchical) FarList(id int) []int  { return h.nodes[id].far }

// DenseFallbacks returns the IDs of nodes that missed the tolerance at
// MaxRank and degraded to dense (identity-interpolation) storage.
func (h *Hierarchical) DenseFallbacks() []int {
	var ids []int
	for id := range h.nodes {
		if h.nodes[id].denseFallback {
			ids = append(ids, id)
		}
	}
	return ids
}

// engine constructs a sched engine for the configured pool.
func (c *Config) engine(policy sched.Policy) *sched.Engine {
	specs := c.WorkerSpecs
	if specs == nil {
		specs = sched.Homogeneous(c.NumWorkers)
	}
	eng := sched.NewEngine(policy, specs)
	// Scheduler health events (watchdog, deadlock, retries) flow into the
	// same structured log as the telemetry layer's span/crash records.
	eng.SetLogger(c.Telemetry.Logger())
	return eng
}

// workerCount returns the effective pool size.
func (c *Config) workerCount() int {
	if c.WorkerSpecs != nil {
		return len(c.WorkerSpecs)
	}
	return c.NumWorkers
}

// Proj returns a copy of node id's interpolation matrix (P_α̃α for leaves,
// P_α̃[l̃r̃] for interior nodes; nil for the root), for conversions and
// inspection.
func (h *Hierarchical) Proj(id int) *linalg.Matrix {
	if h.nodes[id].proj == nil {
		return nil
	}
	return h.nodes[id].proj.Clone()
}

// Skeleton returns a copy of node id's skeleton indices α̃.
func (h *Hierarchical) Skeleton(id int) []int {
	return append([]int(nil), h.nodes[id].skel...)
}

// StoreMapped reports whether this operator serves evaluations zero-copy out
// of a memory-mapped operator-store file (LoadFrom with Mmap). False for
// compressed-in-memory operators and for copying (portable) loads.
func (h *Hierarchical) StoreMapped() bool {
	return h.backing != nil && h.backing.Mapped()
}

// ReleaseStore closes the backing operator-store file, unmapping it when it
// was memory-mapped. After ReleaseStore the operator must not be evaluated if
// it was mapped — its block caches and plan constants were views into the
// mapping. No-op (nil error) for operators without a backing store.
func (h *Hierarchical) ReleaseStore() error {
	if h.backing == nil {
		return nil
	}
	f := h.backing
	h.backing = nil
	return f.Close()
}

// IsHSS reports whether the compressed form has no sparse correction
// (every leaf is near only itself), i.e. S = 0 in K̃ = D + S + UV.
func (h *Hierarchical) IsHSS() bool {
	for _, beta := range h.Tree.Leaves() {
		near := h.nodes[beta].near
		if len(near) != 1 || near[0] != beta {
			return false
		}
	}
	return true
}
