// Package suite is the registry the gofmmlint drivers share: which
// analyzers exist, which import paths each applies to, and how
// `//gofmmlint:ignore` suppressions are honored. Keeping this in one place
// means the standalone driver, the `go vet -vettool` unitchecker mode, and
// CI cannot drift apart on what "the lint suite" means.
package suite

import (
	"go/token"
	"sort"
	"strings"

	"gofmm/internal/analysis/ctxcheck"
	"gofmm/internal/analysis/detorder"
	"gofmm/internal/analysis/errtaxonomy"
	"gofmm/internal/analysis/framework"
	"gofmm/internal/analysis/load"
	"gofmm/internal/analysis/lockguard"
	"gofmm/internal/analysis/mmaplife"
	"gofmm/internal/analysis/refcount"
	"gofmm/internal/analysis/scopecheck"
	"gofmm/internal/analysis/spancheck"
	"gofmm/internal/analysis/unsafeview"
)

// Entry pairs an analyzer with the import paths it is meant for.
type Entry struct {
	Analyzer  *framework.Analyzer
	AppliesTo func(importPath string) bool
}

// All returns the registered suite in stable order.
//
//   - scopecheck, spancheck: pooling and span contracts hold everywhere —
//     including internal/telemetry/live, whose HTTP handlers produce spans.
//   - ctxcheck: context discipline is an internal/ convention; cmd/ mains
//     legitimately start at context.Background. internal/telemetry/live is
//     covered: handlers must thread the request context (r.Context()) into
//     ctx-aware calls, never mint fresh roots. internal/serve likewise: the
//     deadline-propagation contract (X-Deadline-Ms → evaluation context)
//     only holds if no handler path mints a fresh root.
//   - detorder: bit-identical determinism is promised by the numeric
//     packages (core, linalg, hss, tree, plan — compiled replays must be
//     bit-identical across runs and worker counts), not by tooling or
//     telemetry.
//   - errtaxonomy: internal/ except resilience (it defines the taxonomy),
//     telemetry proper (the import cycle resilience→telemetry forbids
//     wrapping), and analysis itself (lint infrastructure, not library
//     surface). internal/telemetry/live is carved back in: it sits outside
//     the cycle (live→resilience is fine) and its exported Start/Shutdown
//     return boundary errors that must carry the taxonomy. internal/serve
//     falls under the default internal/ rule: its 429-vs-503 status mapping
//     dispatches on errors.Is, so every error it returns must wrap a
//     sentinel.
//   - lockguard: `// guarded by` annotations are a repo-wide contract;
//     the analyzer is inert in packages that carry none.
//   - mmaplife: view-escape discipline applies everywhere except
//     internal/store itself, whose view constructors must hand the view
//     out (its callers own the mapping lifetime).
//   - refcount: the acquire/release protocols it understands live in
//     internal/serve; applying it there keeps golden-style stub types in
//     other packages from accidentally matching.
//   - unsafeview: the allowlist is the point — it must see every package.
func All() []Entry {
	return []Entry{
		{scopecheck.Analyzer, everywhere},
		{spancheck.Analyzer, everywhere},
		{ctxcheck.Analyzer, underAny("gofmm/internal/")},
		{detorder.Analyzer, underAny(
			"gofmm/internal/core", "gofmm/internal/linalg",
			"gofmm/internal/hss", "gofmm/internal/tree",
			"gofmm/internal/plan")},
		{errtaxonomy.Analyzer, func(path string) bool {
			if !strings.HasPrefix(path, "gofmm/internal/") {
				return false
			}
			if underAny("gofmm/internal/telemetry/live")(path) {
				return true
			}
			return !underAny("gofmm/internal/resilience", "gofmm/internal/telemetry",
				"gofmm/internal/analysis")(path)
		}},
		{lockguard.Analyzer, everywhere},
		{mmaplife.Analyzer, func(path string) bool {
			return path != "gofmm/internal/store"
		}},
		{refcount.Analyzer, underAny("gofmm/internal/serve")},
		{unsafeview.Analyzer, everywhere},
	}
}

func everywhere(string) bool { return true }

// underAny matches each prefix exactly or as a path parent.
func underAny(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == strings.TrimSuffix(p, "/") || strings.HasPrefix(path, strings.TrimSuffix(p, "/")+"/") {
				return true
			}
		}
		return false
	}
}

// A Finding is one diagnostic that survived filtering, located for output.
type Finding struct {
	Analyzer   string
	Position   token.Position
	Diagnostic framework.Diagnostic
}

// Run applies every registered analyzer whose filter accepts pkg and
// returns the surviving findings in file/line order. Diagnostics on a line
// carrying (or directly below) a matching `//gofmmlint:ignore <analyzer>
// <reason>` comment are dropped. The reason is mandatory: a directive
// without one suppresses nothing and is itself reported (analyzer
// "suppression") — an unexplained suppression is just a violation with
// better camouflage.
func Run(pkg *load.Package) ([]Finding, error) {
	ignores, out := ignoreIndex(pkg)
	for _, e := range All() {
		if !e.AppliesTo(pkg.ImportPath) {
			continue
		}
		pass := &framework.Pass{
			Analyzer:  e.Analyzer,
			Fset:      pkg.Fset,
			Syntax:    pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := e.Analyzer.Name
		pass.Report = func(d framework.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if ignores.suppressed(name, pos) {
				return
			}
			out = append(out, Finding{Analyzer: name, Position: pos, Diagnostic: d})
		}
		if err := e.Analyzer.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ignoreDirective is the `//gofmmlint:ignore <analyzer|all> <reason>` form.
const ignoreDirective = "//gofmmlint:ignore"

type ignoreSet map[string]map[int]map[string]bool // file → line → analyzers

// ignoreIndex collects the well-formed directives and, as findings, the
// malformed ones: a directive must name an analyzer (or `all`) AND give a
// non-empty reason to suppress anything.
func ignoreIndex(pkg *load.Package) (ignoreSet, []Finding) {
	set := ignoreSet{}
	var bad []Finding
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignoreDirective))
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "suppression",
						Position: pos,
						Diagnostic: framework.Diagnostic{
							Pos: c.Pos(),
							Message: "gofmmlint:ignore directive without a reason suppresses nothing; " +
								"write `//gofmmlint:ignore <analyzer> <why this is sanctioned>`",
						},
					})
					continue
				}
				if set[pos.Filename] == nil {
					set[pos.Filename] = map[int]map[string]bool{}
				}
				if set[pos.Filename][pos.Line] == nil {
					set[pos.Filename][pos.Line] = map[string]bool{}
				}
				set[pos.Filename][pos.Line][fields[0]] = true
			}
		}
	}
	return set, bad
}

// suppressed honors a directive on the diagnostic's own line (trailing
// comment) or the line directly above it.
func (s ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		if as := lines[l]; as != nil && (as[analyzer] || as["all"]) {
			return true
		}
	}
	return false
}
