package framework

import "go/ast"

// Parents maps every node of a subtree to its syntactic parent, letting
// analyzers ask "what statement/expression encloses this call?" without
// threading an inspection stack everywhere.
type Parents map[ast.Node]ast.Node

// BuildParents indexes root.
func BuildParents(root ast.Node) Parents {
	p := Parents{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			p[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return p
}

// EnclosingStmt returns the innermost statement containing n (or nil).
func (p Parents) EnclosingStmt(n ast.Node) ast.Stmt {
	for cur := n; cur != nil; cur = p[cur] {
		if s, ok := cur.(ast.Stmt); ok {
			return s
		}
	}
	return nil
}

// Enclosing returns the nearest ancestor of n (inclusive) for which match
// returns true.
func (p Parents) Enclosing(n ast.Node, match func(ast.Node) bool) ast.Node {
	for cur := n; cur != nil; cur = p[cur] {
		if match(cur) {
			return cur
		}
	}
	return nil
}
