package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
)

// --- validateOracle properties ------------------------------------------

type funcOracle struct {
	n int
	f func(i, j int) float64
}

func (o funcOracle) Dim() int            { return o.n }
func (o funcOracle) At(i, j int) float64 { return o.f(i, j) }

// TestValidateOraclePropertyBadMatrices: for every seed, each class of
// broken oracle — NaN entries, Inf entries, gross asymmetry, negative
// diagonals — must be rejected with ErrBadOracle.
func TestValidateOraclePropertyBadMatrices(t *testing.T) {
	classes := map[string]funcOracle{
		"nan": {64, func(i, j int) float64 {
			if i == j {
				return 1
			}
			return math.NaN()
		}},
		"inf": {64, func(i, j int) float64 {
			if i == j {
				return 1
			}
			return math.Inf(1)
		}},
		"asymmetric": {64, func(i, j int) float64 {
			if i == j {
				return 1
			}
			if i < j {
				return 1
			}
			return 2
		}},
		"negative diagonal": {64, func(i, j int) float64 {
			if i == j {
				return -1
			}
			return 0
		}},
	}
	for name, o := range classes {
		prop := func(seed int64) bool {
			err := validateOracle(o, seed)
			return errors.Is(err, ErrBadOracle)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s oracle: %v", name, err)
		}
	}
}

// TestValidateOraclePropertyGoodMatrices: genuine SPD matrices pass for
// every seed.
func TestValidateOraclePropertyGoodMatrices(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(56)
		K := linalg.RandomSPD(rng, n, 10)
		return validateOracle(denseSPD{K}, seed) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// --- chaos: oracle poisoning --------------------------------------------

func TestCompressPoisonedOracleRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	K := linalg.RandomSPD(rng, 128, 64)
	chaos := resilience.NewChaos(resilience.ChaosConfig{Seed: 7, OraclePoison: 0.5}, nil)
	_, err := Compress(denseSPD{K}, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-5, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 1, Chaos: chaos,
	})
	if !errors.Is(err, ErrBadOracle) {
		t.Fatalf("expected ErrBadOracle from a poisoned oracle, got %v", err)
	}
	if chaos.Injected()["oracle_poison"] == 0 {
		t.Fatal("no poison injections recorded")
	}
}

// --- chaos: task failure + retry through Compress ------------------------

func TestCompressWithTaskFailureInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	K := linalg.RandomSPD(rng, 256, 96)
	for _, exec := range []ExecMode{Dynamic, TaskDepend} {
		rec := telemetry.New()
		chaos := resilience.NewChaos(resilience.ChaosConfig{Seed: 3, TaskFail: 0.2}, rec)
		h, err := Compress(denseSPD{K}, Config{
			LeafSize: 32, MaxRank: 24, Tol: 1e-6, Budget: 0.1,
			Distance: Kernel, Exec: exec, NumWorkers: 4, Seed: 2,
			Chaos: chaos, Telemetry: rec, CacheBlocks: true,
		})
		if err != nil {
			t.Fatalf("exec %v: compression under 20%% task failure should recover: %v", exec, err)
		}
		injected := chaos.Injected()["task_fail"]
		if injected == 0 {
			t.Fatalf("exec %v: no task failures injected — chaos not wired in", exec)
		}
		retried := rec.Counter("sched.task_retries").Value()
		if retried != injected {
			t.Fatalf("exec %v: %d injected failures but %d recorded retries", exec, injected, retried)
		}
		// Injected failures are retried before the task body runs, so the
		// chaos run must produce the same compression as a clean run.
		clean, err := Compress(denseSPD{K}, Config{
			LeafSize: 32, MaxRank: 24, Tol: 1e-6, Budget: 0.1,
			Distance: Kernel, Exec: exec, NumWorkers: 4, Seed: 2,
			CacheBlocks: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		W := linalg.GaussianMatrix(rng, 256, 2)
		if !linalg.EqualApprox(h.Matvec(W), clean.Matvec(W), 0) {
			t.Fatalf("exec %v: chaos run diverged from the clean run", exec)
		}
	}
}

// --- graceful degradation -----------------------------------------------

// degradeConfig is a setup whose off-diagonal blocks are essentially
// full-rank, so MaxRank 8 cannot reach Tol 1e-12 and the degradation
// policy decides the outcome.
func degradeConfig(exec ExecMode, mode DegradeMode) Config {
	return Config{
		LeafSize: 32, MaxRank: 8, Tol: 1e-12, Budget: 0,
		Distance: Kernel, Exec: exec, Seed: 4, Degrade: mode,
	}
}

func TestDegradeDenseFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	K := linalg.RandomSPD(rng, 128, 128)
	rec := telemetry.New()
	cfg := degradeConfig(Sequential, DegradeDense)
	cfg.Telemetry = rec
	h, err := Compress(denseSPD{K}, cfg)
	if err != nil {
		t.Fatalf("DegradeDense must not fail the compression: %v", err)
	}
	fb := h.DenseFallbacks()
	if len(fb) == 0 {
		t.Fatal("full-rank problem at MaxRank 8 should have produced dense fallbacks")
	}
	if h.Stats.DenseFallbacks != len(fb) {
		t.Fatalf("Stats.DenseFallbacks=%d but %d nodes flagged", h.Stats.DenseFallbacks, len(fb))
	}
	if got := rec.Counter("compress.dense_fallback").Value(); got != int64(len(fb)) {
		t.Fatalf("telemetry counter %d != %d flagged nodes", got, len(fb))
	}
	if !strings.Contains(h.StructureString(), "dense-fallback nodes:") {
		t.Fatal("StructureString does not flag the degraded nodes")
	}
	// The fallback stores the blocks exactly, so the result must be more
	// accurate than the truncating default.
	ht, err := Compress(denseSPD{K}, degradeConfig(Sequential, DegradeTruncate))
	if err != nil {
		t.Fatal(err)
	}
	W := linalg.GaussianMatrix(rng, 128, 2)
	exact := ExactMatvec(denseSPD{K}, W)
	errDense := linalg.RelFrobDiff(h.Matvec(W), exact)
	errTrunc := linalg.RelFrobDiff(ht.Matvec(W), exact)
	if errDense > errTrunc {
		t.Fatalf("dense fallback (%g) should not be less accurate than truncation (%g)", errDense, errTrunc)
	}
}

func TestDegradeStrictReturnsErrTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	K := linalg.RandomSPD(rng, 128, 128)
	for _, exec := range []ExecMode{Sequential, LevelByLevel, Dynamic} {
		cfg := degradeConfig(exec, DegradeStrict)
		cfg.NumWorkers = 2
		if _, err := Compress(denseSPD{K}, cfg); !errors.Is(err, resilience.ErrTolerance) {
			t.Fatalf("exec %v: expected ErrTolerance, got %v", exec, err)
		}
	}
}

// --- ctx-aware API boundary behavior ------------------------------------

func TestCompressCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	K := linalg.RandomSPD(rng, 128, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompressCtx(ctx, denseSPD{K}, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-5, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 5,
	})
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("expected ErrCancelled, got %v", err)
	}
}

func TestMatvecCtxRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	K := linalg.RandomSPD(rng, 96, 48)
	h, err := Compress(denseSPD{K}, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-5, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.MatvecCtx(context.Background(), nil); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("nil W: expected ErrInvalidInput, got %v", err)
	}
	wrong := linalg.NewMatrix(95, 2)
	if _, err := h.MatvecCtx(context.Background(), wrong); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("wrong dims: expected ErrInvalidInput, got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	W := linalg.GaussianMatrix(rng, 96, 2)
	if _, err := h.MatvecCtx(ctx, W); !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("cancelled ctx: expected ErrCancelled, got %v", err)
	}
}

// TestCompressInvalidInputsNoPanic: nil and empty oracles come back as
// typed errors through the public entry point, never a panic.
func TestCompressInvalidInputsNoPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped Compress: %v", r)
		}
	}()
	if _, err := Compress(nil, Config{}); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("nil oracle: %v", err)
	}
	if _, err := Compress(funcOracle{0, nil}, Config{}); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("empty oracle: %v", err)
	}
}
