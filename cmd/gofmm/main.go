// Command gofmm mirrors the paper's artifact driver (run_gofmm_*): it
// generates (or loads) an SPD test matrix, runs the iterative neighbor
// search, the metric-tree compression and the fast matvec, then reports
// runtime, total flops and the accuracy ε₂ of the first 10 entries plus the
// average over 100 sampled entries — the same output contract as §5.6 of
// the paper.
//
// Usage:
//
//	gofmm -matrix K02 -n 1024 -m 128 -s 128 -tol 1e-5 -k 32 \
//	      -budget 0.03 -dist angle -exec dynamic -workers 4 -r 16
//
// -matrix accepts any of the problems in internal/spdmat (K02–K18, G01–G05,
// COVTYPE, HIGGS, MNIST).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/dist"
	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/spdmat"
	"gofmm/internal/telemetry"
	"gofmm/internal/telemetry/live"
	"gofmm/internal/workspace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gofmm: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the driver with the given arguments, writing the report to
// out (separated from main for testability).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gofmm", flag.ContinueOnError)
	var (
		matrix    = fs.String("matrix", "K02", "problem name ("+strings.Join(spdmat.Names(), ", ")+")")
		n         = fs.Int("n", 1024, "matrix dimension (grid problems round down)")
		m         = fs.Int("m", 128, "leaf size")
		s         = fs.Int("s", 128, "maximum rank")
		tol       = fs.Float64("tol", 1e-5, "adaptive tolerance τ")
		kappa     = fs.Int("k", 32, "number of nearest neighbors κ")
		budget    = fs.Float64("budget", 0.03, "direct-evaluation budget (0 = HSS)")
		distName  = fs.String("dist", "angle", "distance: angle|kernel|geometric|lexicographic|random")
		exec      = fs.String("exec", "dynamic", "executor: dynamic|level|taskdep|seq")
		workers   = fs.Int("workers", 4, "worker pool size")
		r         = fs.Int("r", 16, "number of right-hand sides")
		seed      = fs.Int64("seed", 1, "RNG seed")
		nocache   = fs.Bool("nocache", false, "disable near/far block caching")
		pool      = fs.Bool("pool", false, "pool evaluation/solve scratch buffers (workspace.* counters)")
		structure = fs.Bool("structure", false, "print the leaf-level block structure (Figure 2 style)")
		dotFile   = fs.String("dot", "", "write the evaluation dependency DAG (Figure 3) to this file in DOT format")
		saveFile  = fs.String("save", "", "serialize the compressed form to this file after compression")
		storeFile = fs.String("store", "", "write a gofmm.store/v1 operator store (flat arena + compiled plan, servable by gofmmd -store-dir) to this file after compression")
		loadFile  = fs.String("load", "", "load a previously saved compression instead of compressing")
		traceFile = fs.String("trace", "", "write a Chrome trace-event JSON (load in Perfetto / chrome://tracing) to this file")
		metrics   = fs.String("metrics", "", "write the telemetry metrics snapshot (counters, histograms, spans) as JSON to this file")
		report    = fs.Bool("report", false, "print the telemetry phase/metric report after the run")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")

		debugAddr   = fs.String("debug-addr", "", "serve the live introspection endpoints (/metrics Prometheus exposition, /healthz, /readyz, /debug/vars, /debug/pprof, /debug/spans NDJSON, POST /debug/flightrecord) on this address for the run's duration; shut down gracefully on completion or SIGINT")
		debugLinger = fs.Duration("debug-linger", 0, "keep the -debug-addr server up this long after the run completes (so CI or a human can scrape post-run metrics); SIGINT ends the linger early")
		flightDir   = fs.String("flight-dir", "", "enable the flight recorder and write automatic crash dumps (panic/stall/deadlock post-mortems, schema gofmm.flight/v1) into this directory")
		logDest     = fs.String("log", "", "write structured JSON logs (span completions, chaos injections, scheduler health, crashes) to this file, or '-' for stderr")

		batch       = fs.Int("batch", 0, "serve the r right-hand sides as this many concurrent clients through a coalescing BatchEvaluator (0 = direct block evaluation)")
		batchWindow = fs.Duration("batch-window", 250*time.Microsecond, "BatchEvaluator coalescing window (max delay before a flush)")
		batchMax    = fs.Int("batch-max", 32, "BatchEvaluator maximum columns per flush")

		ranks   = fs.Int("ranks", 0, "run the matvec on a P-rank simulated distributed machine (0 = shared memory)")
		timeout = fs.Duration("timeout", 0, "overall deadline for compression and evaluation (0 = none)")
		degrade = fs.String("degrade", "truncate", "tolerance-miss policy: truncate|dense|strict")

		chaosSeed   = fs.Int64("chaos-seed", 1, "deterministic fault-injection seed")
		chaosTask   = fs.Float64("chaos-task-fail", 0, "probability a scheduled task fails and is retried")
		chaosDrop   = fs.Float64("chaos-msg-drop", 0, "probability a simulated-MPI message is dropped in flight")
		chaosCorr   = fs.Float64("chaos-msg-corrupt", 0, "probability a message fails the receiver checksum")
		chaosDelay  = fs.Float64("chaos-msg-delay", 0, "probability a message is delayed")
		chaosPoison = fs.Float64("chaos-oracle-poison", 0, "probability an oracle entry reads as NaN")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		fmt.Fprintf(out, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	chaosEnabled := *chaosTask > 0 || *chaosDrop > 0 || *chaosCorr > 0 ||
		*chaosDelay > 0 || *chaosPoison > 0
	var rec *telemetry.Recorder
	if *traceFile != "" || *metrics != "" || *report || chaosEnabled ||
		*debugAddr != "" || *flightDir != "" || *logDest != "" {
		rec = telemetry.New()
	}
	if *logDest != "" {
		lw := io.Writer(os.Stderr)
		if *logDest != "-" {
			f, ferr := os.Create(*logDest)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			lw = f
		}
		rec.SetLogger(slog.New(slog.NewJSONHandler(lw,
			&slog.HandlerOptions{Level: slog.LevelDebug})))
	}
	var flight *telemetry.FlightRecorder
	if *debugAddr != "" || *flightDir != "" {
		flight = telemetry.NewFlightRecorder(rec, 512)
		if *flightDir != "" {
			flight.SetDumpDir(*flightDir)
			fmt.Fprintf(out, "flight recorder armed: crash dumps land in %s\n", *flightDir)
		}
	}
	var chaos *resilience.Chaos
	if chaosEnabled {
		chaos = resilience.NewChaos(resilience.ChaosConfig{
			Seed: *chaosSeed, TaskFail: *chaosTask, MsgDrop: *chaosDrop,
			MsgCorrupt: *chaosCorr, MsgDelayProb: *chaosDelay, OraclePoison: *chaosPoison,
		}, rec)
		fmt.Fprintf(out, "chaos: seed %d, task-fail %g, msg-drop %g, msg-corrupt %g, msg-delay %g, oracle-poison %g\n",
			*chaosSeed, *chaosTask, *chaosDrop, *chaosCorr, *chaosDelay, *chaosPoison)
	}
	// SIGINT cancels the run's context: evaluation aborts with a typed
	// cancellation error and the debug server (if any) shuts down cleanly.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var srv *live.Server
	if *debugAddr != "" {
		srv = live.New(rec, live.WithFlightRecorder(flight))
		if err := srv.Start(*debugAddr); err != nil {
			return err
		}
		srv.SetReady(false) // not ready until compression completes
		fmt.Fprintf(out, "live introspection on http://%s/ (metrics, healthz, readyz, debug/spans, debug/pprof, debug/flightrecord)\n", srv.Addr())
		defer func() {
			if *debugLinger > 0 {
				fmt.Fprintf(out, "debug server lingering %s on http://%s/ (SIGINT to stop)\n",
					*debugLinger, srv.Addr())
				select {
				case <-time.After(*debugLinger):
				case <-ctx.Done():
				}
			}
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if serr := srv.Shutdown(sctx); serr != nil {
				log.Printf("debug server shutdown: %v", serr)
			}
		}()
		defer srv.SetReady(true) // the run is over: linger-time probes succeed
	}

	p, err := spdmat.Generate(*matrix, *n, *seed)
	if err != nil {
		return err
	}
	dim := p.K.Dim()
	fmt.Fprintf(out, "matrix %s: %s (N = %d)\n", p.Name, p.Desc, dim)

	cfg := core.Config{
		LeafSize: *m, MaxRank: *s, Tol: *tol, Kappa: *kappa, Budget: *budget,
		NumWorkers: *workers, Seed: *seed, CacheBlocks: !*nocache,
		Points: p.Points, Telemetry: rec, Chaos: chaos,
	}
	var ws *workspace.Pool
	if *pool {
		ws = workspace.New()
		ws.AttachTelemetry(rec)
		cfg.Workspace = ws
	}
	switch *degrade {
	case "truncate":
		cfg.Degrade = core.DegradeTruncate
	case "dense":
		cfg.Degrade = core.DegradeDense
	case "strict":
		cfg.Degrade = core.DegradeStrict
	default:
		return fmt.Errorf("unknown degrade policy %q", *degrade)
	}
	switch *distName {
	case "angle":
		cfg.Distance = core.Angle
	case "kernel":
		cfg.Distance = core.Kernel
	case "geometric":
		cfg.Distance = core.Geometric
	case "lexicographic":
		cfg.Distance = core.Lexicographic
	case "random":
		cfg.Distance = core.RandomPerm
	default:
		return fmt.Errorf("unknown distance %q", *distName)
	}
	switch *exec {
	case "dynamic":
		cfg.Exec = core.Dynamic
	case "level":
		cfg.Exec = core.LevelByLevel
	case "taskdep":
		cfg.Exec = core.TaskDepend
	case "seq":
		cfg.Exec = core.Sequential
	default:
		return fmt.Errorf("unknown executor %q", *exec)
	}

	var h *core.Hierarchical
	if *loadFile != "" {
		f, ferr := os.Open(*loadFile)
		if ferr != nil {
			return ferr
		}
		h, err = core.ReadFrom(f, p.K)
		f.Close()
		if err != nil {
			return err
		}
		h.Cfg.Exec = cfg.Exec
		h.Cfg.NumWorkers = cfg.NumWorkers
		h.Cfg.Telemetry = cfg.Telemetry
		h.Cfg.Workspace = cfg.Workspace
		fmt.Fprintf(out, "loaded compressed form from %s\n", *loadFile)
	} else {
		h, err = core.CompressCtx(ctx, p.K, cfg)
		if err != nil {
			return err
		}
	}
	if *saveFile != "" {
		f, ferr := os.Create(*saveFile)
		if ferr != nil {
			return ferr
		}
		if _, err := h.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved compressed form to %s\n", *saveFile)
	}
	if *storeFile != "" {
		// Compile first so the store carries the replayable plan and a
		// loaded operator serves without recompiling.
		if _, err := h.CompilePlanCtx(ctx); err != nil {
			return err
		}
		nb, err := h.SaveTo(*storeFile)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d-byte operator store to %s\n", nb, *storeFile)
	}
	if *structure {
		fmt.Fprintln(out, "block structure ('#' dense/near, letters = far level):")
		fmt.Fprint(out, h.StructureString())
	}
	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			return err
		}
		if err := h.EvalGraphDOT(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote evaluation DAG to %s\n", *dotFile)
	}
	if srv != nil {
		srv.SetReady(true) // compressed form is in memory: the operator can serve
	}
	st := h.Stats
	fmt.Fprintf(out, "compression: %.3fs (ann %.3fs, tree %.3fs, lists %.3fs, skel %.3fs, cache %.3fs)\n",
		st.CompressTime, st.ANNTime, st.TreeTime, st.ListsTime, st.SkelTime, st.CacheTime)
	fmt.Fprintf(out, "  total %.2f GFLOP, %.2f GFLOPS | avg rank %.1f | max near %d | direct %.2f%%\n",
		st.CompressFlops/1e9, st.CompressFlops/st.CompressTime/1e9, st.AvgRank, st.MaxNear, 100*st.DirectFrac)

	if fb := h.Stats.DenseFallbacks; fb > 0 {
		fmt.Fprintf(out, "graceful degradation: %d nodes stored dense (missed tol %g at rank %d)\n",
			fb, *tol, *s)
	}

	rng := rand.New(rand.NewSource(*seed + 7))
	W := linalg.GaussianMatrix(rng, dim, *r)
	var U *linalg.Matrix
	if *ranks > 0 {
		machine, derr := dist.DistributeCtx(ctx, h, *ranks)
		if derr != nil {
			return derr
		}
		machine.Chaos = chaos
		machine.Telemetry = rec
		t0 := time.Now()
		U, err = machine.MatvecCtx(ctx, W)
		if err != nil {
			return err
		}
		cs := machine.Stats
		fmt.Fprintf(out, "distributed evaluation (%d ranks, %d rhs): %.4fs, %d messages, %d bytes\n",
			*ranks, *r, time.Since(t0).Seconds(), cs.Messages, cs.Bytes)
		if cs.Retries > 0 || cs.Drops > 0 {
			fmt.Fprintf(out, "  message faults: %d dropped, %d retries, %d bytes redelivered\n",
				cs.Drops, cs.Retries, cs.RedeliveredBytes)
		}
	} else if *batch > 0 {
		// Batch-serving demo: the r right-hand sides arrive as concurrent
		// single-vector requests from *batch clients; the evaluator coalesces
		// them into Matmat flushes. Results are scattered back into U so the
		// accuracy report below covers the batched path.
		ev := h.NewBatchEvaluator(core.BatchOptions{MaxBatch: *batchMax, MaxDelay: *batchWindow})
		U = linalg.NewMatrix(dim, *r)
		cols := make(chan int)
		errCh := make(chan error, *batch)
		t0 := time.Now()
		for c := 0; c < *batch; c++ {
			go func() {
				for j := range cols {
					w := linalg.NewMatrix(dim, 1)
					copy(w.Col(0), W.Col(j))
					u, rerr := ev.Matvec(ctx, w)
					if rerr != nil {
						errCh <- rerr
						return
					}
					copy(U.Col(j), u.Col(0))
				}
				errCh <- nil
			}()
		}
		for j := 0; j < *r; j++ {
			cols <- j
		}
		close(cols)
		for c := 0; c < *batch; c++ {
			if cerr := <-errCh; cerr != nil {
				ev.Close()
				return cerr
			}
		}
		ev.Close()
		bs := ev.Stats()
		fmt.Fprintf(out, "batched evaluation (%d clients, %d rhs): %.4fs, %d requests in %d flushes (%.1f req/flush)\n",
			*batch, *r, time.Since(t0).Seconds(), bs.Requests, bs.Flushes,
			float64(bs.Requests)/float64(max(bs.Flushes, 1)))
	} else {
		U, err = h.MatvecCtx(ctx, W)
		if err != nil {
			return err
		}
		evalS, evalFlops := h.LastEval()
		fmt.Fprintf(out, "evaluation (%d rhs): %.4fs, %.2f GFLOP, %.2f GFLOPS\n",
			*r, evalS, evalFlops/1e9, evalFlops/evalS/1e9)
	}

	if ws != nil {
		s := ws.Stats()
		fmt.Fprintf(out, "workspace pool: %d hits, %d misses, %d returns, %.1f MB reused\n",
			s.Hits, s.Misses, s.Returns, float64(s.BytesReused)/1e6)
	}

	entry := h.EntryErrors(W, U, 10)
	fmt.Fprintf(out, "per-entry relative error (first 10): ")
	for _, e := range entry {
		fmt.Fprintf(out, "%.1e ", e)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "sampled relative error ε₂ (100 rows): %.3e\n", h.SampleRelErr(W, U, 100, *seed+9))

	if chaos != nil {
		inj := chaos.Injected()
		fmt.Fprintf(out, "chaos summary: %d task failures, %d msg drops, %d msg corruptions, %d msg delays, %d poisoned reads\n",
			inj["task_fail"], inj["msg_drop"], inj["msg_corrupt"], inj["msg_delay"], inj["oracle_poison"])
		fmt.Fprintf(out, "  recovered: %d task retries, %d message retries\n",
			rec.Counter("sched.task_retries").Value(), rec.Counter("dist.msg.retries").Value())
	}

	if *traceFile != "" {
		if err := writeFileWith(*traceFile, rec.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote Chrome trace to %s\n", *traceFile)
	}
	if *metrics != "" {
		if err := writeFileWith(*metrics, rec.WriteMetricsJSON); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics snapshot to %s\n", *metrics)
	}
	if *report {
		fmt.Fprint(out, rec.Report())
	}
	return nil
}

// writeFileWith creates path and streams write(f) into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
