package mmaplife_test

import (
	"testing"

	"gofmm/internal/analysis/analyzertest"
	"gofmm/internal/analysis/mmaplife"
)

func TestMmapLife(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), mmaplife.Analyzer, "mmaplife")
}
