package spdmat

import (
	"fmt"
	"math"
	"math/rand"

	"gofmm/internal/linalg"
)

// Machine-learning kernel problems. The paper's COVTYPE (54-D), HIGGS
// (28-D) and MNIST (780-D) datasets are not available offline, so synthetic
// Gaussian-mixture point clouds of matching dimensionality (and, for MNIST,
// low intrinsic dimension) feed the same Gaussian-kernel construction. The
// kernel matrices are evaluated on the fly through the 2-norm expansion.

// mixturePoints draws n points from k Gaussian clusters in dim dimensions.
// intrinsic < dim embeds the clusters in a random low-dimensional subspace
// plus small ambient noise (an MNIST-like manifold structure).
func mixturePoints(rng *rand.Rand, dim, n, k, intrinsic int, sep float64) *linalg.Matrix {
	if intrinsic <= 0 || intrinsic > dim {
		intrinsic = dim
	}
	basis := linalg.GaussianMatrix(rng, dim, intrinsic) // columns ~ subspace
	centers := linalg.GaussianMatrix(rng, intrinsic, k)
	centers.Scale(sep)
	X := linalg.NewMatrix(dim, n)
	z := make([]float64, intrinsic)
	for i := 0; i < n; i++ {
		c := i % k
		for q := range z {
			z[q] = centers.At(q, c) + rng.NormFloat64()
		}
		col := X.Col(i)
		linalg.Gemv(false, 1, basis, z, 0, col)
		if intrinsic < dim {
			for q := range col {
				col[q] += 0.05 * rng.NormFloat64()
			}
		}
	}
	return X
}

// mlKernel assembles one ML-style Gaussian kernel problem.
func mlKernel(name string, dim, n, clusters, intrinsic int, h float64, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	X := mixturePoints(rng, dim, n, clusters, intrinsic, 2)
	// Normalize to unit average norm so bandwidths match the paper's scale.
	var ss float64
	for i := 0; i < n; i++ {
		ss += linalg.Dot(X.Col(i), X.Col(i))
	}
	scale := 1 / math.Sqrt(ss/float64(n))
	X.Scale(scale)
	k := NewKernel(X, Gauss, h, ridgeFor(1))
	return &Problem{
		Name:   name,
		Desc:   fmt.Sprintf("Gaussian kernel (h=%g) over synthetic %d-D, %d-cluster point cloud", h, dim, clusters),
		K:      k,
		Points: X,
	}
}

// Covtype is a COVTYPE-like 54-D Gaussian kernel matrix.
func Covtype(n int, h float64, seed int64) *Problem {
	return mlKernel("COVTYPE", 54, n, 7, 54, h, seed)
}

// Higgs is a HIGGS-like 28-D Gaussian kernel matrix.
func Higgs(n int, h float64, seed int64) *Problem {
	return mlKernel("HIGGS", 28, n, 2, 28, h, seed)
}

// Mnist is an MNIST-like 780-D Gaussian kernel matrix with intrinsic
// dimension ≈ 12.
func Mnist(n int, h float64, seed int64) *Problem {
	return mlKernel("MNIST", 780, n, 10, 12, h, seed)
}
