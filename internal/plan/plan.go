// Package plan compiles the four-pass GOFMM evaluation traversal
// (N2S/S2S/S2N/L2L) into a flat, replayable execution plan: an ordered
// slice of op records with pre-resolved offsets into one contiguous
// workspace arena, grouped into barrier-separated stages whose tasks are
// output-disjoint by construction. Compiling once at compress time and
// replaying per evaluation removes the per-matvec tree walk, the task-DAG
// rebuild and the per-node scratch churn of the interpreter — the
// model-based-execution split of MatRox and PBBFMM3D applied to GOFMM.
//
// The package is deliberately oblivious to trees and kernels: internal/core
// lowers its traversal through the Builder, and the plan only knows about
// arena regions, constant operands (interpolation bases and cached blocks)
// and GEMM shapes. The tree interpreter in internal/core remains the
// reference path and the test oracle for every compiled plan.
//
// Replay guarantees:
//
//   - Every task writes a region no other task of its stage touches, and
//     stages are separated by barriers, so parallel replay is race-free and
//     bit-identical to sequential replay for any worker count.
//   - Every arena region is written before it is read (the builder's
//     lowering discipline, checked by Build), so the arena is never zeroed
//     between replays.
package plan

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
)

// Ref locates a buffer inside the plan's arena. The arena is a single
// []float64 holding column-major regions that all share the replay's RHS
// count r: a region of Span rows starts at float offset Base·r and holds
// Span·r floats. A Ref addresses the Rows-row slice starting Sub rows into
// that region (stride Span), which lets sibling skeleton-weight buffers
// alias the parent's stacked N2S input without any copy op.
type Ref struct {
	Base int // row offset of the enclosing region within the arena
	Sub  int // row offset of the view within the region
	Rows int // rows of the view
	Span int // total rows of the region (the view's column stride)
}

// valid reports whether the ref addresses a well-formed slice of an arena
// with arenaRows total rows.
func (f Ref) valid(arenaRows int) bool {
	return f.Base >= 0 && f.Sub >= 0 && f.Rows >= 0 && f.Span >= f.Sub+f.Rows &&
		f.Base+f.Span <= arenaRows
}

// OpKind enumerates the replayable operation records.
type OpKind uint8

const (
	// OpGather permutes the external input into an arena region:
	// arena[C][k,:] = W[Idx[k],:].
	OpGather OpKind = iota
	// OpGemm is C = A·B + Beta·C with A a constant operand (an
	// interpolation basis or a cached kernel block, optionally float32) and
	// B, C arena regions. Beta is 0 (overwrite) or 1 (accumulate).
	OpGemm
	// OpCopy overwrites arena region C with arena region B.
	OpCopy
	// OpAdd accumulates arena region B into arena region C.
	OpAdd
	// OpZero clears arena region C.
	OpZero
	// OpScatter permutes an arena region into the external output:
	// U[k,:] = arena[B][Idx[k],:].
	OpScatter
)

func (k OpKind) String() string {
	switch k {
	case OpGather:
		return "gather"
	case OpGemm:
		return "gemm"
	case OpCopy:
		return "copy"
	case OpAdd:
		return "add"
	case OpZero:
		return "zero"
	case OpScatter:
		return "scatter"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one replayable operation record. Exactly one of A/A32 is set for
// OpGemm; Idx is set for OpGather/OpScatter.
type Op struct {
	Kind   OpKind
	TransA bool
	Beta   float64
	A      *linalg.Matrix   // constant float64 operand (OpGemm)
	A32    *linalg.Matrix32 // constant float32 operand (OpGemm, mixed precision)
	B, C   Ref
	Idx    []int // permutation (OpGather/OpScatter)
}

// flopsPerCol returns the op's flop cost per RHS column, matching the
// interpreter's accounting (2·m·k per GEMM column; moves are free).
func (o *Op) flopsPerCol() float64 {
	if o.Kind != OpGemm {
		return 0
	}
	if o.A32 != nil {
		return 2 * float64(o.A32.Rows) * float64(o.A32.Cols)
	}
	return 2 * float64(o.A.Rows) * float64(o.A.Cols)
}

// gemmShape returns a batching signature for single-GEMM tasks: tasks with
// equal signatures are the "same shape" the batcher may group into one
// dispatch unit. ok is false for non-GEMM ops.
func (o *Op) gemmShape() (sig [4]int, ok bool) {
	if o.Kind != OpGemm {
		return sig, false
	}
	tag, rows, cols := 1, 0, 0
	if o.A32 != nil {
		tag, rows, cols = 2, o.A32.Rows, o.A32.Cols
	} else {
		rows, cols = o.A.Rows, o.A.Cols
	}
	trans := 0
	if o.TransA {
		trans = 1
	}
	beta := 0
	if o.Beta != 0 {
		beta = 1
	}
	return [4]int{tag<<2 | trans<<1 | beta, rows, cols, o.B.Rows}, true
}

// task is a contiguous op range [Lo, Hi) executed in order by one worker.
type task struct {
	Lo, Hi int
	// batched marks a task formed by grouping ≥2 same-shape single-GEMM
	// node tasks into one dispatch unit.
	batched bool
}

// Stage is a barrier-separated group of tasks. Tasks within a stage write
// disjoint arena regions (the builder's contract), so a parallel stage may
// run its tasks in any order or interleaving.
type Stage struct {
	Name     string
	Parallel bool
	tasks    []task
}

// NumTasks returns the stage's dispatch-unit count after batching.
func (s *Stage) NumTasks() int { return len(s.tasks) }

// batchLimit caps how many same-shape GEMMs merge into one dispatch unit:
// enough to amortize dispatch, small enough to keep parallel stages
// load-balanced at typical worker counts.
const batchLimit = 8

// Builder assembles a Plan. The lowering in internal/core drives it:
// allocate regions, open stages, emit ops inside tasks, Build.
type Builder struct {
	n         int
	arenaRows int
	ops       []Op
	stages    []Stage
	inStage   bool
	taskLo    int // op index where the open task began, -1 when closed
	err       error
}

// NewBuilder starts a plan for an operator of dimension n (external input
// and output are n×r).
func NewBuilder(n int) *Builder {
	return &Builder{n: n, taskLo: -1}
}

// Alloc reserves a region of rows arena rows and returns its row offset.
func (b *Builder) Alloc(rows int) int {
	if rows < 0 {
		b.fail("Alloc(%d)", rows)
		return 0
	}
	off := b.arenaRows
	b.arenaRows += rows
	return off
}

// Region is shorthand for a Ref covering a whole freshly allocated region.
func (b *Builder) Region(rows int) Ref {
	return Ref{Base: b.Alloc(rows), Sub: 0, Rows: rows, Span: rows}
}

// BeginStage opens a new barrier-separated stage. Parallel stages promise
// output-disjoint tasks.
func (b *Builder) BeginStage(name string, parallel bool) {
	b.closeTask()
	b.stages = append(b.stages, Stage{Name: name, Parallel: parallel})
	b.inStage = true
}

// BeginTask opens a new task in the current stage; ops emitted until the
// next BeginTask/BeginStage/Build belong to it.
func (b *Builder) BeginTask() {
	if !b.inStage {
		b.fail("BeginTask outside a stage")
		return
	}
	b.closeTask()
	b.taskLo = len(b.ops)
}

// closeTask files the open task, dropping empty ones.
func (b *Builder) closeTask() {
	if b.taskLo >= 0 && len(b.ops) > b.taskLo {
		st := &b.stages[len(b.stages)-1]
		st.tasks = append(st.tasks, task{Lo: b.taskLo, Hi: len(b.ops)})
	}
	b.taskLo = -1
}

// emit appends an op to the open task.
func (b *Builder) emit(op Op) {
	if b.taskLo < 0 {
		b.fail("op %s emitted outside a task", op.Kind)
		return
	}
	b.ops = append(b.ops, op)
}

// Gather emits arena[dst] = W[idx, :]: one index per destination row, each
// addressing a row of the n-row external input.
func (b *Builder) Gather(idx []int, dst Ref) {
	if len(idx) != dst.Rows {
		b.fail("Gather: %d indices into %d rows", len(idx), dst.Rows)
		return
	}
	for _, v := range idx {
		if v < 0 || v >= b.n {
			b.fail("Gather: index %d outside the %d-row input", v, b.n)
			return
		}
	}
	b.emit(Op{Kind: OpGather, Idx: idx, C: dst})
}

// Scatter emits U = arena[src][idx, :]: one index per row of the n-row
// external output, each addressing a row of the source view.
func (b *Builder) Scatter(src Ref, idx []int) {
	if len(idx) != b.n {
		b.fail("Scatter: %d indices for the %d-row output", len(idx), b.n)
		return
	}
	for _, v := range idx {
		if v < 0 || v >= src.Rows {
			b.fail("Scatter: index %d outside the %d-row source", v, src.Rows)
			return
		}
	}
	b.emit(Op{Kind: OpScatter, Idx: idx, B: src})
}

// Gemm emits arena[dst] = op(A)·arena[src] + beta·arena[dst] with a
// constant float64 operand. beta must be 0 or 1.
func (b *Builder) Gemm(transA bool, A *linalg.Matrix, src, dst Ref, beta float64) {
	if A == nil {
		b.fail("Gemm: nil constant operand")
		return
	}
	m, k := A.Rows, A.Cols
	if transA {
		m, k = k, m
	}
	if src.Rows != k || dst.Rows != m || (beta != 0 && beta != 1) {
		b.fail("Gemm: op(A %v) with B %d rows, C %d rows, beta %g", transA, src.Rows, dst.Rows, beta)
		return
	}
	b.emit(Op{Kind: OpGemm, TransA: transA, A: A, B: src, C: dst, Beta: beta})
}

// GemmMixed emits the float32-constant variant (no transpose form exists,
// matching the interpreter's use of cached single-precision blocks).
func (b *Builder) GemmMixed(A *linalg.Matrix32, src, dst Ref, beta float64) {
	if A == nil || src.Rows != A.Cols || dst.Rows != A.Rows || (beta != 0 && beta != 1) {
		b.fail("GemmMixed: A with B %d rows, C %d rows, beta %g", src.Rows, dst.Rows, beta)
		return
	}
	b.emit(Op{Kind: OpGemm, A32: A, B: src, C: dst, Beta: beta})
}

// Copy emits arena[dst] = arena[src].
func (b *Builder) Copy(src, dst Ref) {
	if src.Rows != dst.Rows {
		b.fail("Copy: %d rows into %d rows", src.Rows, dst.Rows)
		return
	}
	b.emit(Op{Kind: OpCopy, B: src, C: dst})
}

// Add emits arena[dst] += arena[src].
func (b *Builder) Add(src, dst Ref) {
	if src.Rows != dst.Rows {
		b.fail("Add: %d rows into %d rows", src.Rows, dst.Rows)
		return
	}
	b.emit(Op{Kind: OpAdd, B: src, C: dst})
}

// Zero emits arena[dst] = 0.
func (b *Builder) Zero(dst Ref) {
	b.emit(Op{Kind: OpZero, C: dst})
}

// fail records the first lowering error; Build reports it.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("%w: plan: %s", resilience.ErrInvalidInput, fmt.Sprintf(format, args...))
	}
}

// Build validates the lowered schedule, groups same-shape GEMM runs into
// batched dispatch units, seals the digest and returns the immutable Plan.
func (b *Builder) Build() (*Plan, error) {
	b.closeTask()
	if b.err != nil {
		return nil, b.err
	}
	for i := range b.ops {
		op := &b.ops[i]
		needB := op.Kind == OpGemm || op.Kind == OpCopy || op.Kind == OpAdd || op.Kind == OpScatter
		needC := op.Kind != OpScatter
		if needB && !op.B.valid(b.arenaRows) {
			return nil, fmt.Errorf("%w: plan: op %d (%s) reads invalid ref %+v",
				resilience.ErrInvalidInput, i, op.Kind, op.B)
		}
		if needC && !op.C.valid(b.arenaRows) {
			return nil, fmt.Errorf("%w: plan: op %d (%s) writes invalid ref %+v",
				resilience.ErrInvalidInput, i, op.Kind, op.C)
		}
	}
	p := &Plan{
		n:         b.n,
		arenaRows: b.arenaRows,
		ops:       b.ops,
		stages:    b.stages,
	}
	for i := range p.ops {
		p.flopsPerCol += p.ops[i].flopsPerCol()
	}
	p.batchGemms()
	p.digest = p.computeDigest()
	return p, nil
}

// Plan is a compiled, immutable evaluation schedule. It is safe for
// concurrent replay from any number of goroutines: each Execute binds its
// own arena.
type Plan struct {
	n         int
	arenaRows int
	ops       []Op
	stages    []Stage

	flopsPerCol  float64
	batchedGemms int
	gemmBatches  int
	digest       [sha256.Size]byte

	// states caches replay bindings per RHS width (see replay.go).
	statesMu sync.Mutex
	states   map[int]*sync.Pool // guarded by statesMu
}

// batchGemms merges runs of consecutive single-GEMM tasks with identical
// shapes into one dispatch unit (up to batchLimit per unit). Tasks stay
// output-disjoint — merging only coarsens dispatch, never reorders ops.
func (p *Plan) batchGemms() {
	for si := range p.stages {
		st := &p.stages[si]
		merged := st.tasks[:0]
		i := 0
		for i < len(st.tasks) {
			t := st.tasks[i]
			sig, ok := p.taskShape(t)
			if !ok {
				merged = append(merged, t)
				i++
				continue
			}
			j := i + 1
			for j < len(st.tasks) && j-i < batchLimit {
				nt := st.tasks[j]
				nsig, nok := p.taskShape(nt)
				if !nok || nsig != sig || nt.Lo != st.tasks[j-1].Hi {
					break
				}
				j++
			}
			if j-i >= 2 {
				group := task{Lo: t.Lo, Hi: st.tasks[j-1].Hi, batched: true}
				merged = append(merged, group)
				p.batchedGemms += j - i
				p.gemmBatches++
			} else {
				merged = append(merged, t)
			}
			i = j
		}
		st.tasks = merged
	}
}

// taskShape returns the batching signature of a single-GEMM task.
func (p *Plan) taskShape(t task) (sig [4]int, ok bool) {
	if t.Hi-t.Lo != 1 {
		return sig, false
	}
	return p.ops[t.Lo].gemmShape()
}

// N returns the operator dimension the plan evaluates.
func (p *Plan) N() int { return p.n }

// ArenaRows returns the arena height in rows; a replay with r right-hand
// sides binds ArenaRows·r floats.
func (p *Plan) ArenaRows() int { return p.arenaRows }

// ArenaFloats returns the arena size in floats for r right-hand sides.
func (p *Plan) ArenaFloats(r int) int { return p.arenaRows * r }

// NumOps returns the total op-record count.
func (p *Plan) NumOps() int { return len(p.ops) }

// NumStages returns the barrier count of the schedule.
func (p *Plan) NumStages() int { return len(p.stages) }

// NumTasks returns the total dispatch-unit count after batching.
func (p *Plan) NumTasks() int {
	total := 0
	for i := range p.stages {
		total += len(p.stages[i].tasks)
	}
	return total
}

// BatchedGemms returns how many GEMM ops were folded into multi-op batched
// dispatch units.
func (p *Plan) BatchedGemms() int { return p.batchedGemms }

// GemmBatches returns the number of batched dispatch units.
func (p *Plan) GemmBatches() int { return p.gemmBatches }

// FlopsPerCol returns the flop cost of one replay per RHS column.
func (p *Plan) FlopsPerCol() float64 { return p.flopsPerCol }

// Stages exposes the stage descriptors (read-only) for inspection.
func (p *Plan) Stages() []Stage { return p.stages }

// Ops exposes the op records (read-only) for inspection and tests.
func (p *Plan) Ops() []Op { return p.ops }

// Digest returns the SHA-256 over the plan's structure: op kinds, shapes,
// arena offsets, permutations, stage and task boundaries — everything that
// determines the replay schedule, and nothing that depends on block values.
// Two compressions with the same seed and configuration produce
// byte-identical digests.
func (p *Plan) Digest() [sha256.Size]byte { return p.digest }

// DigestHex returns Digest as a hex string.
func (p *Plan) DigestHex() string {
	d := p.digest
	return hex.EncodeToString(d[:])
}

// String summarizes the plan for logs and debug output.
func (p *Plan) String() string {
	return fmt.Sprintf("plan{n=%d ops=%d stages=%d tasks=%d batched=%d arena=%d rows digest=%s}",
		p.n, len(p.ops), len(p.stages), p.NumTasks(), p.batchedGemms, p.arenaRows, p.DigestHex()[:12])
}

// computeDigest hashes the structural schedule.
func (p *Plan) computeDigest() [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wf := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	h.Write([]byte("gofmm-plan-v1"))
	wi(p.n)
	wi(p.arenaRows)
	wi(len(p.ops))
	for i := range p.ops {
		op := &p.ops[i]
		tag := int(op.Kind) << 3
		if op.TransA {
			tag |= 1
		}
		if op.A32 != nil {
			tag |= 2
		}
		if op.Beta != 0 {
			tag |= 4
		}
		wi(tag)
		switch {
		case op.A != nil:
			wi(op.A.Rows)
			wi(op.A.Cols)
		case op.A32 != nil:
			wi(op.A32.Rows)
			wi(op.A32.Cols)
		}
		wi(op.B.Base)
		wi(op.B.Sub)
		wi(op.B.Rows)
		wi(op.B.Span)
		wi(op.C.Base)
		wi(op.C.Sub)
		wi(op.C.Rows)
		wi(op.C.Span)
		wi(len(op.Idx))
		for _, v := range op.Idx {
			wi(v)
		}
	}
	wi(len(p.stages))
	for si := range p.stages {
		st := &p.stages[si]
		h.Write([]byte(st.Name))
		par := 0
		if st.Parallel {
			par = 1
		}
		wi(par)
		wi(len(st.tasks))
		for _, t := range st.tasks {
			wi(t.Lo)
			wi(t.Hi)
		}
	}
	wf(p.flopsPerCol)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
