// Operator store: compress once, persist the operator to a gofmm.store/v1
// file, and reload it mmap-backed — no oracle, no recompression, first
// matvec in milliseconds, bit-identical to the operator that was saved.
//
//	go run ./examples/operatorstore [-n 4096]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"gofmm"
	"gofmm/testmat"
)

func main() {
	n := flag.Int("n", 4096, "problem size")
	flag.Parse()
	log.SetFlags(0)

	p, err := testmat.Generate("K02", *n, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %s (N = %d)\n", p.Name, p.K.Dim())

	// Compress from the entry oracle and compile the evaluation plan — the
	// slow path a store file exists to amortize. CacheBlocks is what makes
	// the operator self-contained: the near/far blocks land in the file, so
	// loading needs no oracle at all.
	t0 := time.Now()
	H, err := gofmm.Compress(p.K, gofmm.Config{
		LeafSize: 128, MaxRank: 128, Tol: 1e-5, Budget: 0.03,
		Distance: gofmm.Angle, NumWorkers: 4, CacheBlocks: true, CompilePlan: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	compressT := time.Since(t0)

	dir, err := os.MkdirTemp("", "gofmm-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "operator.store")
	nb, err := H.SaveTo(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed in %.2fs, saved %.1f MB store\n",
		compressT.Seconds(), float64(nb)/(1<<20))

	// Reload. The arena is mapped read-only: skeleton bases, projections
	// and cached blocks serve straight from the page cache, zero-copy. The
	// loaded operator has no oracle — matvec/matmat run entirely from the
	// persisted state, and the compiled plan rides along (the digest check
	// proves the replay schedule survived the round trip).
	t0 = time.Now()
	H2, info, err := gofmm.LoadOperator(path, gofmm.LoadOptions{Mmap: true, NumWorkers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer H2.ReleaseStore()
	fmt.Printf("loaded in %.1fms (mapped=%v, plan=%v)  →  %.0f× faster than compressing\n",
		time.Since(t0).Seconds()*1e3, info.Mapped, info.HasPlan,
		compressT.Seconds()/time.Since(t0).Seconds())

	// The loaded operator is the saved operator, bit for bit.
	rng := rand.New(rand.NewSource(2))
	W := gofmm.NewMatrix(p.K.Dim(), 1)
	for i := 0; i < p.K.Dim(); i++ {
		W.Set(i, 0, rng.NormFloat64())
	}
	u1 := H.Matvec(W).Col(0)
	u2 := H2.Matvec(W).Col(0)
	maxDiff := 0.0
	for i := range u1 {
		maxDiff = math.Max(maxDiff, math.Abs(u1[i]-u2[i]))
	}
	fmt.Printf("matvec max |in-memory − loaded| = %g (want exactly 0)\n", maxDiff)
	if maxDiff != 0 {
		log.Fatal("loaded operator is not bit-identical")
	}
	fmt.Println("ok: serve this file with `gofmmd -store-dir` for zero-copy hot-swappable serving")
}
