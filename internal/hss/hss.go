// Package hss implements the STRUMPACK-like baseline of Table 3: a
// hierarchically semi-separable (HSS) approximation built from a global
// random sketch (Martinsson's randomized HSS compression, the algorithm
// STRUMPACK's black-box dense path uses). Like STRUMPACK's dense mode it
// keeps the lexicographic ordering and pays an honest O(N²·r) for the
// sketch Y = K·Ω when no fast multiply is available — exactly the cost
// asymmetry the paper's Table 3 demonstrates against GOFMM's O(N log N)
// sampling-based compression. The subsequent matvec is O(N·r).
package hss

import (
	"math/rand"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/telemetry"
	"gofmm/internal/tree"
	"gofmm/internal/workspace"
)

// Oracle is the matrix access HSS compression needs: entries (for selected
// blocks) and nothing else; the sketch is computed from entries too.
type Oracle interface {
	Dim() int
	At(i, j int) float64
}

// bulk is the optional block-gather fast path (structurally core.Bulk).
type bulk interface {
	Submatrix(I, J []int, dst *linalg.Matrix)
}

func gather(K Oracle, I, J []int) *linalg.Matrix {
	dst := linalg.NewMatrix(len(I), len(J))
	if b, ok := K.(bulk); ok {
		b.Submatrix(I, J, dst)
		return dst
	}
	for c, j := range J {
		col := dst.Col(c)
		for r, i := range I {
			col[r] = K.At(i, j)
		}
	}
	return dst
}

// Config tunes the compression.
type Config struct {
	LeafSize int
	// Rank is the target HSS rank of the sketch; Oversample adds columns to
	// Ω for robustness (default 10).
	Rank, Oversample int
	// Tol is the interpolative-decomposition truncation tolerance.
	Tol  float64
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.LeafSize <= 0 {
		c.LeafSize = 256
	}
	if c.Rank <= 0 {
		c.Rank = 128
	}
	if c.Oversample <= 0 {
		c.Oversample = 10
	}
	if c.Tol <= 0 {
		c.Tol = 1e-8
	}
	return c
}

// node holds the per-node HSS data.
type node struct {
	skel []int          // global skeleton row indices
	E    *linalg.Matrix // row-interpolation basis (rows×s, identity on skel)
	B    *linalg.Matrix // coupling K(skel_l, skel_r) at interior nodes
	D    *linalg.Matrix // dense diagonal block at leaves
}

// HSS is the compressed representation.
type HSS struct {
	Cfg   Config
	Tree  *tree.Tree
	nodes []node
	n     int
	// Perm/IPerm map tree positions to original indices when the tree is a
	// permuted (metric) tree; nil means the identity (lexicographic) order.
	Perm, IPerm []int

	CompressTime, SketchTime, EvalTime float64
	MaxRankSeen                        int

	// Telemetry records factor/solve phase spans; nil disables recording.
	// FromGOFMM inherits it from the source operator's Config.Telemetry.
	Telemetry *telemetry.Recorder
	// Workspace, when non-nil, pools the transient scratch of Factor/Solve
	// (Schur-solve intermediates, stacked right-hand sides). Persistent
	// factors and returned solutions are never pooled. FromGOFMM inherits it
	// from the source operator's Config.Workspace.
	Workspace *workspace.Pool
}

// skelSize returns the skeleton size of node id (0 for the root).
func (h *HSS) skelSize(id int) int {
	if h.nodes[id].E == nil {
		return len(h.nodes[id].skel)
	}
	return h.nodes[id].E.Cols
}

// Compress builds the HSS form of K.
func Compress(K Oracle, cfg Config) *HSS {
	cfg = cfg.withDefaults()
	n := K.Dim()
	h := &HSS{Cfg: cfg, n: n}
	start := time.Now()
	h.Tree = tree.Build(n, cfg.LeafSize, nil) // lexicographic order
	h.nodes = make([]node, len(h.Tree.Nodes))

	// Global sketch Y = K·Ω — the O(N²·r) step.
	t0 := time.Now()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := cfg.Rank + cfg.Oversample
	Omega := linalg.GaussianMatrix(rng, n, p)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	Y := linalg.NewMatrix(n, p)
	const blk = 512
	for lo := 0; lo < n; lo += blk {
		hi := min(lo+blk, n)
		block := gather(K, all[lo:hi], all)
		yv := Y.View(lo, 0, hi-lo, p)
		linalg.Gemm(false, false, 1, block, Omega, 0, yv)
	}
	h.SketchTime = time.Since(t0).Seconds()

	// Bottom-up compression. redOmega[id] holds the *projected* test matrix
	// E_τᵀ·Ω_τ (recursively E_αᵀ·[redΩ_l; redΩ_r]) — the nested column-basis
	// image of Ω, which is what the sibling-correction
	// K(skel_l, I_r)·Ω_r ≈ B_{lr}·(E_rᵀ Ω_r) requires. redS[id] holds the
	// reduced sample rows Z[sel,:].
	redOmega := make([]*linalg.Matrix, len(h.Tree.Nodes))
	redS := make([]*linalg.Matrix, len(h.Tree.Nodes))
	h.Tree.PostOrder(func(nd *tree.Node) {
		id := nd.ID
		if id == 0 {
			if h.Tree.IsLeaf(0) {
				// Degenerate single-leaf tree: store K densely.
				h.nodes[0].D = gather(K, all, all)
			} else {
				// Root: only the coupling between its children is needed.
				l, r := h.Tree.Left(0), h.Tree.Right(0)
				h.nodes[0].B = gather(K, h.nodes[l].skel, h.nodes[r].skel)
			}
			return
		}
		var Z *linalg.Matrix
		var rows []int // global indices corresponding to Z's rows
		var omegaIn *linalg.Matrix
		if h.Tree.IsLeaf(id) {
			rows = append([]int(nil), h.Tree.Indices(id)...)
			Z = Y.RowsGather(rows)
			D := gather(K, rows, rows)
			omegaIn = Omega.RowsGather(rows)
			linalg.Gemm(false, false, -1, D, omegaIn, 1, Z)
			h.nodes[id].D = D
		} else {
			l, r := h.Tree.Left(id), h.Tree.Right(id)
			B := gather(K, h.nodes[l].skel, h.nodes[r].skel)
			h.nodes[id].B = B
			Sl := redS[l].Clone()
			linalg.Gemm(false, false, -1, B, redOmega[r], 1, Sl)
			Sr := redS[r].Clone()
			linalg.Gemm(true, false, -1, B, redOmega[l], 1, Sr)
			rows = append(append([]int(nil), h.nodes[l].skel...), h.nodes[r].skel...)
			Z = linalg.NewMatrix(len(rows), p)
			Z.View(0, 0, Sl.Rows, p).CopyFrom(Sl)
			Z.View(Sl.Rows, 0, Sr.Rows, p).CopyFrom(Sr)
			omegaIn = linalg.NewMatrix(redOmega[l].Rows+redOmega[r].Rows, p)
			omegaIn.View(0, 0, redOmega[l].Rows, p).CopyFrom(redOmega[l])
			omegaIn.View(redOmega[l].Rows, 0, redOmega[r].Rows, p).CopyFrom(redOmega[r])
			redS[l], redOmega[l] = nil, nil
			redS[r], redOmega[r] = nil, nil
		}
		// Row interpolative decomposition: Z ≈ E·Z[sel,:].
		id2 := linalg.InterpDecomp(Z.Transposed(), h.Cfg.Tol, h.Cfg.Rank)
		E := id2.Coef.Transposed()
		sel := id2.Skel
		skel := make([]int, len(sel))
		for k, s := range sel {
			skel[k] = rows[s]
		}
		h.nodes[id].E = E
		h.nodes[id].skel = skel
		redS[id] = Z.RowsGather(sel)
		redOmega[id] = linalg.MatMul(true, false, E, omegaIn)
		if len(skel) > h.MaxRankSeen {
			h.MaxRankSeen = len(skel)
		}
	})
	h.CompressTime = time.Since(start).Seconds()
	return h
}

// AvgRank reports the mean skeleton size over non-root nodes.
func (h *HSS) AvgRank() float64 {
	total, cnt := 0, 0
	for id := 1; id < len(h.nodes); id++ {
		total += len(h.nodes[id].skel)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return float64(total) / float64(cnt)
}

// Matvec computes K̃·W in O(N·r) per right-hand side.
func (h *HSS) Matvec(W *linalg.Matrix) *linalg.Matrix {
	start := time.Now()
	t := h.Tree
	if h.Perm != nil {
		W = W.RowsGather(h.Perm)
	}
	r := W.Cols
	up := make([]*linalg.Matrix, len(t.Nodes))   // x̃
	down := make([]*linalg.Matrix, len(t.Nodes)) // ỹ
	// Upward pass: x̃_τ = Eᵀ·x_τ (leaf) or Eᵀ·[x̃_l; x̃_r].
	t.PostOrder(func(nd *tree.Node) {
		id := nd.ID
		if id == 0 {
			return
		}
		E := h.nodes[id].E
		var in *linalg.Matrix
		if t.IsLeaf(id) {
			in = W.View(nd.Lo, 0, nd.Size(), r)
		} else {
			l, rr := t.Left(id), t.Right(id)
			in = linalg.NewMatrix(up[l].Rows+up[rr].Rows, r)
			in.View(0, 0, up[l].Rows, r).CopyFrom(up[l])
			in.View(up[l].Rows, 0, up[rr].Rows, r).CopyFrom(up[rr])
		}
		out := linalg.NewMatrix(E.Cols, r)
		linalg.Gemm(true, false, 1, E, in, 0, out)
		up[id] = out
	})
	// Coupling: at every interior node, ỹ_l += B x̃_r, ỹ_r += Bᵀ x̃_l.
	for id := range t.Nodes {
		if t.IsLeaf(id) {
			continue
		}
		B := h.nodes[id].B
		l, rr := t.Left(id), t.Right(id)
		if down[l] == nil {
			down[l] = linalg.NewMatrix(h.skelSize(l), r)
		}
		if down[rr] == nil {
			down[rr] = linalg.NewMatrix(h.skelSize(rr), r)
		}
		linalg.Gemm(false, false, 1, B, up[rr], 1, down[l])
		linalg.Gemm(true, false, 1, B, up[l], 1, down[rr])
	}
	// Downward pass and diagonal blocks.
	out := linalg.NewMatrix(W.Rows, r)
	t.PreOrder(func(nd *tree.Node) {
		id := nd.ID
		if id == 0 {
			return
		}
		y := down[id]
		if y == nil {
			return
		}
		E := h.nodes[id].E
		contrib := linalg.NewMatrix(E.Rows, r)
		linalg.Gemm(false, false, 1, E, y, 0, contrib)
		if t.IsLeaf(id) {
			out.View(nd.Lo, 0, nd.Size(), r).AddScaled(1, contrib)
		} else {
			l, rr := t.Left(id), t.Right(id)
			sl := h.skelSize(l)
			if down[l] == nil {
				down[l] = linalg.NewMatrix(sl, r)
			}
			down[l].AddScaled(1, contrib.View(0, 0, sl, r))
			if down[rr] == nil {
				down[rr] = linalg.NewMatrix(contrib.Rows-sl, r)
			}
			down[rr].AddScaled(1, contrib.View(sl, 0, contrib.Rows-sl, r))
		}
	})
	for _, leaf := range t.Leaves() {
		nd := &t.Nodes[leaf]
		D := h.nodes[leaf].D
		wv := W.View(nd.Lo, 0, nd.Size(), r)
		ov := out.View(nd.Lo, 0, nd.Size(), r)
		linalg.Gemm(false, false, 1, D, wv, 1, ov)
	}
	if h.IPerm != nil {
		out = out.RowsGather(h.IPerm)
	}
	h.EvalTime = time.Since(start).Seconds()
	return out
}
