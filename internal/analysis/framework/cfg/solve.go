package cfg

import "go/ast"

// A Fact is one lattice element of a client analysis. Facts are treated as
// immutable values: Transfer and Merge must return fresh facts (or shared
// unmodified ones), never mutate their arguments in place — the solver
// aliases facts freely across blocks.
type Fact any

// An Analysis supplies the lattice and transfer functions of one forward
// dataflow problem. Termination requires the usual monotone-framework
// contract: Merge is commutative/associative/idempotent and the lattice has
// finite height (set-union or set-intersection over program identifiers
// both qualify).
type Analysis interface {
	// EntryFact is the fact holding at function entry.
	EntryFact() Fact
	// Transfer pushes a fact across one node (a statement, or a branch
	// condition expression).
	Transfer(f Fact, n ast.Node) Fact
	// Merge joins the facts of two converging paths.
	Merge(a, b Fact) Fact
	// Equal reports lattice equality (the solver's fixpoint test).
	Equal(a, b Fact) bool
}

// A BranchAnalysis additionally refines facts along conditional edges:
// after Transfer runs on the condition itself, TransferBranch sees the
// condition once with branch=true (the taken edge) and once with
// branch=false. Analyses that bind meaning to conditions — "acquire
// succeeded", "err != nil" — implement this; others get the unrefined fact
// on both edges.
type BranchAnalysis interface {
	Analysis
	TransferBranch(f Fact, cond ast.Expr, branch bool) Fact
}

// A Result carries the solved facts. Blocks (and their nodes) unreachable
// from Entry have no facts: In/Before/After return (nil, false) for them.
type Result struct {
	in     map[*Block]Fact
	before map[ast.Node]Fact
	after  map[ast.Node]Fact
}

// In returns the fact at block entry.
func (r *Result) In(b *Block) (Fact, bool) {
	f, ok := r.in[b]
	return f, ok
}

// Before returns the fact immediately before node n executes. n must be a
// node the graph carries (a block-level statement or branch condition) —
// sub-expressions inherit their statement's fact.
func (r *Result) Before(n ast.Node) (Fact, bool) {
	f, ok := r.before[n]
	return f, ok
}

// After returns the fact immediately after node n.
func (r *Result) After(n ast.Node) (Fact, bool) {
	f, ok := r.after[n]
	return f, ok
}

// Exit returns the fact at the synthetic exit block of g — the merge over
// every return, explicit panic, and fall-off path.
func (r *Result) Exit(g *Graph) (Fact, bool) {
	return r.In(g.Exit)
}

// Solve runs the worklist algorithm on g for a. It terminates at the least
// fixpoint under the Analysis contract and then materializes per-node
// before/after facts in one final pass.
func Solve(g *Graph, a Analysis) *Result {
	ba, hasBranch := a.(BranchAnalysis)
	in := map[*Block]Fact{g.Entry: a.EntryFact()}

	// edgeFact computes the fact flowing out of b along successor edge i,
	// given the fact after b's last node.
	edgeFact := func(b *Block, out Fact, i int) Fact {
		if hasBranch && b.Cond != nil && i < 2 {
			return ba.TransferBranch(out, b.Cond, i == 0)
		}
		return out
	}

	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := in[b]
		for _, n := range b.Nodes {
			out = a.Transfer(out, n)
		}
		for i, succ := range b.Succs {
			f := edgeFact(b, out, i)
			cur, ok := in[succ]
			if ok {
				f = a.Merge(cur, f)
			}
			if !ok || !a.Equal(cur, f) {
				in[succ] = f
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}

	res := &Result{in: in, before: map[ast.Node]Fact{}, after: map[ast.Node]Fact{}}
	for _, b := range g.Blocks {
		f, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			res.before[n] = f
			f = a.Transfer(f, n)
			res.after[n] = f
		}
	}
	return res
}
