// Package telemetry is the observability layer of the repository: a
// dependency-free hierarchical span tracer, a registry of named metrics
// (counters, gauges, histograms), and exporters for the three consumers the
// paper's evaluation implies —
//
//   - a Chrome trace-event JSON file (loadable in Perfetto / about:tracing)
//     with one track per scheduler worker plus a "phases" track for the
//     algorithm-level spans, the Figure 4 worker-timeline picture;
//   - a human-readable Report() tree with per-phase percentages, the §4
//     "where does the time go" breakdown (ANN vs tree vs skeletonization vs
//     the four matvec passes);
//   - a stable machine-readable RunRecord for benchmark trajectories
//     (BENCH_*.json).
//
// Everything hangs off a *Recorder. A nil *Recorder is a valid no-op: every
// method on a nil Recorder, Span, Counter, Gauge or Histogram returns
// immediately, so instrumented code needs no conditionals and pays only a
// nil check when telemetry is disabled.
package telemetry

import (
	"sync"
	"time"
)

// Recorder collects spans, task events and metrics for one run. All methods
// are safe for concurrent use and safe on a nil receiver (no-ops).
type Recorder struct {
	now   func() time.Time
	epoch time.Time

	mu     sync.Mutex
	roots  []*Span
	events []TaskEvent

	metricsMu sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
}

// New returns an empty Recorder whose clock starts now.
func New() *Recorder { return newRecorder(time.Now) }

// newRecorder allows tests to inject a deterministic clock.
func newRecorder(now func() time.Time) *Recorder {
	return &Recorder{
		now:      now,
		epoch:    now(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Since returns the time elapsed since the recorder was created (its trace
// epoch). Zero on a nil recorder.
func (r *Recorder) Since() time.Duration {
	if r == nil {
		return 0
	}
	return r.now().Sub(r.epoch)
}

// Span is one timed interval of the run, nestable into a tree. Spans are
// created with StartSpan and closed with End; a Span may parent concurrent
// child spans from multiple goroutines.
type Span struct {
	rec      *Recorder
	name     string
	start    time.Duration // offset from the recorder epoch
	dur      time.Duration
	ended    bool
	children []*Span
}

// StartSpan opens a root-level span. Returns nil on a nil recorder.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{rec: r, name: name, start: r.Since()}
	r.mu.Lock()
	r.roots = append(r.roots, s)
	r.mu.Unlock()
	return s
}

// StartSpan opens a child span under s. Returns nil on a nil span.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{rec: s.rec, name: name, start: s.rec.Since()}
	s.rec.mu.Lock()
	s.children = append(s.children, c)
	s.rec.mu.Unlock()
	return c
}

// AddChild records an already-measured interval [start, end] (offsets from
// the recorder epoch) as a completed child span — used to attach phase
// aggregates reconstructed from out-of-order task traces.
func (s *Span) AddChild(name string, start, end time.Duration) *Span {
	if s == nil {
		return nil
	}
	if end < start {
		end = start
	}
	c := &Span{rec: s.rec, name: name, start: start, dur: end - start, ended: true}
	s.rec.mu.Lock()
	s.children = append(s.children, c)
	s.rec.mu.Unlock()
	return c
}

// End closes the span and returns its duration. Ending a span twice keeps
// the first measurement; End on a nil span returns 0.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := s.rec.Since() - s.start
	s.rec.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = d
	}
	d = s.dur
	s.rec.mu.Unlock()
	return d
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TaskEvent is one task execution on a scheduler worker, as exported by the
// task runtime. Times are offsets from the recorder epoch.
type TaskEvent struct {
	// Name is the task label (e.g. "N2S(12)").
	Name string
	// Worker is the executing worker index (one Chrome-trace track each).
	Worker int
	// Start/Dur bound the task body's execution.
	Start, Dur time.Duration
	// Wait is the time the task spent on a ready queue before executing.
	Wait time.Duration
	// StolenFrom is the worker whose queue the task was stolen from, or -1.
	StolenFrom int
}

// AddTaskEvents appends worker-level task events (no-op on nil).
func (r *Recorder) AddTaskEvents(evs []TaskEvent) {
	if r == nil || len(evs) == 0 {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, evs...)
	r.mu.Unlock()
}

// TaskEvents returns a copy of the recorded task events.
func (r *Recorder) TaskEvents() []TaskEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TaskEvent(nil), r.events...)
}
