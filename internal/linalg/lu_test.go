package linalg

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	n := 30
	A := GaussianMatrix(rng, n, n)
	X := GaussianMatrix(rng, n, 4)
	B := MatMul(false, false, A, X)
	f, err := LUFactor(A)
	if err != nil {
		t.Fatal(err)
	}
	f.Solve(B)
	if d := RelFrobDiff(B, X); d > 1e-9 {
		t.Fatalf("LU solve error %g", d)
	}
}

func TestLUSingular(t *testing.T) {
	A := NewMatrix(3, 3)
	A.Set(0, 0, 1)
	A.Set(1, 1, 1) // column 2 is zero
	if _, err := LUFactor(A); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero on the first diagonal entry forces a row swap.
	A := FromRows([][]float64{{0, 1}, {1, 0}})
	f, err := LUFactor(A)
	if err != nil {
		t.Fatal(err)
	}
	B := FromRows([][]float64{{3}, {5}})
	f.Solve(B)
	if B.At(0, 0) != 5 || B.At(1, 0) != 3 {
		t.Fatalf("pivoted solve wrong: %v", B.Data)
	}
}

func TestLUProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		A := GaussianMatrix(rng, n, n)
		X := GaussianMatrix(rng, n, 2)
		B := MatMul(false, false, A, X)
		lu, err := LUFactor(A)
		if err != nil {
			return false // Gaussian matrices are a.s. nonsingular
		}
		lu.Solve(B)
		return RelFrobDiff(B, X) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
