package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Report renders the span tree as indented text with durations and
// percentages (relative to each root span), followed by the recorded
// metrics — the terminal version of the paper's per-phase time breakdown.
// A nil recorder reports "telemetry disabled".
func (r *Recorder) Report() string {
	if r == nil {
		return "telemetry disabled\n"
	}
	snap := r.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry report (wall %.3fs)\n", snap.WallSeconds)
	for _, root := range snap.Spans {
		total := root.Seconds
		if total <= 0 {
			total = snap.WallSeconds
		}
		writeSpanTree(&b, root, 0, total)
	}
	writeMetricsReport(&b, snap)
	return b.String()
}

func writeSpanTree(b *strings.Builder, s SpanStat, depth int, total float64) {
	pct := 0.0
	if total > 0 {
		pct = 100 * s.Seconds / total
	}
	name := strings.Repeat("  ", depth) + s.Name
	fmt.Fprintf(b, "  %-34s %10.3fs %6.1f%%\n", name, s.Seconds, pct)
	for _, c := range s.Children {
		writeSpanTree(b, c, depth+1, total)
	}
	// Account for time not covered by children ("other") when it is visible.
	if len(s.Children) > 0 {
		covered := 0.0
		for _, c := range s.Children {
			covered += c.Seconds
		}
		if rest := s.Seconds - covered; rest > 0.0005 && total > 0 {
			fmt.Fprintf(b, "  %-34s %10.3fs %6.1f%%\n",
				strings.Repeat("  ", depth+1)+"(other)", rest, 100*rest/total)
		}
	}
}

func writeMetricsReport(b *strings.Builder, snap Snapshot) {
	if len(snap.Counters) > 0 {
		fmt.Fprintf(b, "  counters:\n")
		for _, name := range sortedKeys(snap.Counters) {
			fmt.Fprintf(b, "    %-34s %d\n", name, snap.Counters[name])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintf(b, "  gauges:\n")
		for _, name := range sortedKeys(snap.Gauges) {
			fmt.Fprintf(b, "    %-34s %g\n", name, snap.Gauges[name])
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintf(b, "  histograms:\n")
		for _, name := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[name]
			fmt.Fprintf(b, "    %-34s n=%d mean=%.1f min=%g max=%g p50=%g p95=%g p99=%g\n",
				name, h.Count, h.Mean, h.Min, h.Max,
				h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
