package core

import (
	"context"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/internal/workspace"
)

// planConfig is a small compressible fixture config exercising near+far
// lists, adaptive ranks and the dynamic executor.
func planConfig() Config {
	return Config{
		LeafSize: 32, MaxRank: 48, Tol: 1e-5, Kappa: 8, Budget: 0.05,
		Distance: Angle, Exec: Sequential, Seed: 7, CacheBlocks: true,
	}
}

// TestCompiledPlanMatchesInterpreter is the lowering smoke test: the
// compiled replay must reproduce the tree interpreter to near machine
// precision on the same operator, across caching regimes (cached float64,
// cached float32, uncached) and RHS widths.
func TestCompiledPlanMatchesInterpreter(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"cached", func(c *Config) {}},
		{"cached32", func(c *Config) { c.CacheSingle = true }},
		{"uncached", func(c *Config) { c.CacheBlocks = false }},
		{"hss", func(c *Config) { c.Budget = 0 }},
		{"pooled", func(c *Config) { c.Workspace = workspace.New() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := planConfig()
			tc.mut(&cfg)
			h, _ := compressGauss(t, 384, cfg)
			p, err := h.CompilePlan()
			if err != nil {
				t.Fatal(err)
			}
			if h.Plan() != p {
				t.Fatal("Plan() does not return the installed plan")
			}
			rng := rand.New(rand.NewSource(11))
			for _, r := range []int{1, 3, 8} {
				W := linalg.GaussianMatrix(rng, 384, r)
				ref, err := h.InterpMatmatCtx(context.Background(), W)
				if err != nil {
					t.Fatal(err)
				}
				got, err := h.MatmatCtx(context.Background(), W)
				if err != nil {
					t.Fatal(err)
				}
				if d := linalg.RelFrobDiff(got, ref); d > 1e-13 {
					t.Fatalf("r=%d: compiled replay differs from interpreter by %g", r, d)
				}
			}
		})
	}
}

// TestCompiledPlanParallelReplayBitIdentical pins the replay determinism
// contract at the core layer: sequential replay and worker-pool replay of
// the same plan produce the exact same bits.
func TestCompiledPlanParallelReplayBitIdentical(t *testing.T) {
	cfg := planConfig()
	h, _ := compressGauss(t, 384, cfg)
	if _, err := h.CompilePlan(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	W := linalg.GaussianMatrix(rng, 384, 4)
	seq, err := h.MatmatCtx(context.Background(), W)
	if err != nil {
		t.Fatal(err)
	}
	h.Cfg.Exec = Dynamic
	h.Cfg.NumWorkers = 8
	par, err := h.MatmatCtx(context.Background(), W)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < seq.Cols; j++ {
		a, b := seq.Col(j), par.Col(j)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("replay differs at (%d,%d): %v vs %v", i, j, a[i], b[i])
			}
		}
	}
}

// TestCompileViaConfigAndDropPlan covers the Config.CompilePlan compress
// hook and the DropPlan escape hatch.
func TestCompileViaConfigAndDropPlan(t *testing.T) {
	cfg := planConfig()
	cfg.CompilePlan = true
	h, _ := compressGauss(t, 256, cfg)
	if h.Plan() == nil {
		t.Fatal("Config.CompilePlan did not install a plan during Compress")
	}
	if h.Stats.PlanTime < 0 {
		t.Fatal("negative PlanTime")
	}
	h.DropPlan()
	if h.Plan() != nil {
		t.Fatal("DropPlan left the plan installed")
	}
}

// TestEvaluatorReplaysPlan checks the Evaluator delegation: with a plan
// installed the evaluator is a thin replay handle that agrees with the
// interpreter-backed evaluator to 1e-13 (the replay uses beta-0 writes
// where the interpreter zeroes then accumulates) and is bit-identical to
// itself across replays.
func TestEvaluatorReplaysPlan(t *testing.T) {
	cfg := planConfig()
	cfg.Workspace = workspace.New()
	h, _ := compressGauss(t, 256, cfg)
	rng := rand.New(rand.NewSource(13))
	W := linalg.GaussianMatrix(rng, 256, 2)
	ref := h.NewEvaluator(2)
	want := ref.Matvec(W)
	ref.Close()
	if _, err := h.CompilePlan(); err != nil {
		t.Fatal(err)
	}
	ev := h.NewEvaluator(2)
	defer ev.Close()
	got := linalg.NewMatrix(256, 2)
	ev.MatvecInto(W, got)
	if d := linalg.RelFrobDiff(got, want); d > 1e-13 {
		t.Fatalf("plan-backed evaluator differs from interpreter evaluator by %g", d)
	}
	// Replays must be bit-identical to each other.
	again := linalg.NewMatrix(256, 2)
	ev.MatvecInto(W, again)
	for j := 0; j < 2; j++ {
		a, b := got.Col(j), again.Col(j)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("evaluator replay not bit-identical at (%d,%d)", i, j)
			}
		}
	}
}
