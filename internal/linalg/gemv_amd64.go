//go:build amd64 && !purego

package linalg

// AVX2+FMA GEMV micro-kernels, gated on the same haveFMAKernel probe as the
// GEMM tile kernel. All three operate on column-major storage addressed
// directly (base pointer + column stride in elements) and process exactly
// m rows, which callers round down to a multiple of 4; the ragged row tail
// is handled in Go.

// gemvCols8F64 accumulates y[0:m] += Σ_j coef[j]·a[j·lda : j·lda+m] over
// eight consecutive columns. Requires haveFMAKernel and m % 4 == 0.
//
//go:noescape
func gemvCols8F64(m int, a *float64, lda int, coef *float64, y *float64)

// gemvCols8F32 is gemvCols8F64 for float32 column storage: each 4-lane load
// is widened with VCVTPS2PD so the accumulation stays in float64, matching
// the scalar mixed-precision contract. Requires haveFMAKernel and m % 4 == 0.
//
//go:noescape
func gemvCols8F32(m int, a *float32, lda int, coef *float64, y *float64)

// gemvDots4F64 computes four column dot products
// dst[j] = a[j·lda : j·lda+m] · x[0:m] for j = 0..3 — the transposed-GEMV
// building block. Requires haveFMAKernel and m % 4 == 0.
//
//go:noescape
func gemvDots4F64(m int, a *float64, lda int, x *float64, dst *float64)
