package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// lowRankPlusNoise returns an m×n matrix with numerical rank ≈ r.
func lowRankPlusNoise(rng *rand.Rand, m, n, r int, noise float64) *Matrix {
	U := GaussianMatrix(rng, m, r)
	V := GaussianMatrix(rng, r, n)
	A := MatMul(false, false, U, V)
	if noise > 0 {
		E := GaussianMatrix(rng, m, n)
		A.AddScaled(noise, E)
	}
	return A
}

func TestQRCPReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	A := GaussianMatrix(rng, 30, 18)
	f := QRColumnPivot(A, 0, 0)
	if f.Rank != 18 {
		t.Fatalf("full-rank Gaussian: rank = %d, want 18", f.Rank)
	}
	Q := f.FormQ()
	R := f.R()
	QR := MatMul(false, false, Q, R)
	AP := A.ColsGather(f.Piv)
	if d := RelFrobDiff(QR, AP); d > 1e-12 {
		t.Fatalf("‖QR − AP‖/‖AP‖ = %g", d)
	}
	// Q orthonormal.
	QtQ := MatMul(true, false, Q, Q)
	if d := RelFrobDiff(QtQ, Eye(18)); d > 1e-12 {
		t.Fatalf("QᵀQ deviates from I by %g", d)
	}
	// R diagonal decreasing in magnitude (pivoting invariant).
	for k := 1; k < f.Rank; k++ {
		if math.Abs(R.At(k, k)) > math.Abs(R.At(k-1, k-1))+1e-12 {
			t.Fatalf("pivot magnitudes not decreasing at %d: %g > %g", k, R.At(k, k), R.At(k-1, k-1))
		}
	}
}

func TestQRCPAdaptiveRank(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	A := lowRankPlusNoise(rng, 60, 40, 7, 0)
	f := QRColumnPivot(A, 1e-10, 0)
	if f.Rank != 7 {
		t.Fatalf("detected rank %d, want 7", f.Rank)
	}
	// With noise at 1e-6 and tolerance 1e-4 the detected rank stays 7.
	B := lowRankPlusNoise(rng, 60, 40, 7, 1e-8)
	g := QRColumnPivot(B, 1e-4, 0)
	if g.Rank != 7 {
		t.Fatalf("noisy rank %d, want 7", g.Rank)
	}
}

func TestQRCPMaxRankCap(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	A := GaussianMatrix(rng, 30, 30)
	f := QRColumnPivot(A, 0, 5)
	if f.Rank != 5 {
		t.Fatalf("rank = %d, want cap 5", f.Rank)
	}
	if f.ResidNorm <= 0 {
		t.Fatal("expected positive residual estimate when truncated")
	}
}

func TestQRCPZeroMatrix(t *testing.T) {
	A := NewMatrix(10, 6)
	f := QRColumnPivot(A, 1e-10, 0)
	if f.Rank != 0 {
		t.Fatalf("zero matrix rank = %d", f.Rank)
	}
}

func TestInterpDecompExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	A := lowRankPlusNoise(rng, 40, 25, 6, 0)
	id := InterpDecomp(A, 1e-12, 0)
	if len(id.Skel) != 6 {
		t.Fatalf("skeleton size %d, want 6", len(id.Skel))
	}
	// A ≈ A[:, skel] · Coef.
	Askel := A.ColsGather(id.Skel)
	Arec := MatMul(false, false, Askel, id.Coef)
	if d := RelFrobDiff(Arec, A); d > 1e-9 {
		t.Fatalf("ID reconstruction error %g", d)
	}
	// Coef restricted to skeleton columns is the identity.
	for k, j := range id.Skel {
		for i := 0; i < len(id.Skel); i++ {
			want := 0.0
			if i == k {
				want = 1
			}
			if math.Abs(id.Coef.At(i, j)-want) > 1e-12 {
				t.Fatalf("Coef[:,skel] not identity at (%d,%d)", i, k)
			}
		}
	}
}

func TestInterpDecompTruncationErrorTracksTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	// Geometric decay of singular values.
	n := 50
	U := QRColumnPivot(GaussianMatrix(rng, n, n), 0, 0).FormQ()
	V := QRColumnPivot(GaussianMatrix(rng, n, n), 0, 0).FormQ()
	d := make([]float64, n)
	for i := range d {
		d[i] = math.Pow(0.5, float64(i))
	}
	UD := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		copy(UD.Col(j), U.Col(j))
		Scal(d[j], UD.Col(j))
	}
	A := MatMul(false, true, UD, V)
	for _, tol := range []float64{1e-2, 1e-5, 1e-8} {
		id := InterpDecomp(A, tol, 0)
		Arec := MatMul(false, false, A.ColsGather(id.Skel), id.Coef)
		err := RelFrobDiff(Arec, A)
		// ID error is bounded by a modest polynomial factor over tol.
		if err > tol*100 {
			t.Fatalf("tol %g: ID error %g too large (rank %d)", tol, err, len(id.Skel))
		}
	}
}

func TestInterpDecompPropertySkeletonSubset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 10+rng.Intn(30), 5+rng.Intn(25)
		r := 1 + rng.Intn(min(m, n))
		A := lowRankPlusNoise(rng, m, n, r, 0)
		id := InterpDecomp(A, 1e-10, 0)
		seen := map[int]bool{}
		for _, j := range id.Skel {
			if j < 0 || j >= n || seen[j] {
				return false // out of range or duplicated skeleton column
			}
			seen[j] = true
		}
		Arec := MatMul(false, false, A.ColsGather(id.Skel), id.Coef)
		return RelFrobDiff(Arec, A) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
