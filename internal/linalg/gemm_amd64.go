//go:build amd64 && !purego

package linalg

// haveFMAKernel reports whether the AVX2+FMA assembly micro-kernel is
// usable on this CPU. Go is built with GOAMD64=v1 by default, so the
// baseline compiler output is SSE2 scalar code; the hand-written kernel
// needs AVX2 (for 4-wide f64 vectors and VBROADCASTSD) and FMA, and the OS
// must have enabled YMM state saving (OSXSAVE + XCR0 bits 1:2).
var haveFMAKernel = detectFMAKernel()

func detectFMAKernel() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		cpuidFMA     = 1 << 12 // CPUID.1:ECX
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
		cpuidAVX2    = 1 << 5 // CPUID.(7,0):EBX
	)
	_, _, c, _ := cpuidex(1, 0)
	if c&cpuidFMA == 0 || c&cpuidOSXSAVE == 0 || c&cpuidAVX == 0 {
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	if b&cpuidAVX2 == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	return xcr0&6 == 6 // OS saves XMM and YMM state
}

//go:noescape
func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// gemmKernel8x6 computes an 8×6 tile C += A·B over packed micro-panels:
// a holds kc consecutive 8-vectors (one per k step), b holds kc consecutive
// 6-vectors, c points at C[0,0] of the tile and ldc is C's column stride in
// elements. Requires haveFMAKernel and kc ≥ 1.
//
//go:noescape
func gemmKernel8x6(kc int, a, b []float64, c *float64, ldc int)
