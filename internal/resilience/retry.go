package resilience

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"
)

// Backoff is a bounded exponential-backoff retry policy with deterministic
// jitter. The zero value is usable: withDefaults fills in a policy suited to
// the simulated-MPI router (tiny base delay, a handful of attempts).
type Backoff struct {
	// Base is the delay before the first retry (default 50µs).
	Base time.Duration
	// Max caps the per-retry delay after exponential growth (default 5ms).
	Max time.Duration
	// Factor multiplies the delay per retry (default 2).
	Factor float64
	// MaxRetries bounds the number of retries after the initial attempt
	// (default 8).
	MaxRetries int
	// JitterSeed seeds the deterministic jitter (±25% of the delay).
	JitterSeed int64
	// FullJitter switches the jitter model from ±25% around the
	// exponential delay to a uniform draw in [0, delay) — the AWS
	// "full jitter" scheme, which decorrelates a thundering herd of
	// clients retrying against one overloaded server far better than
	// narrow-band jitter does. Still deterministic in (JitterSeed, site,
	// attempt).
	FullJitter bool
}

// WithDefaults returns the policy with unset fields filled in.
func (b Backoff) WithDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Microsecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Millisecond
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.MaxRetries <= 0 {
		b.MaxRetries = 8
	}
	return b
}

// Delay returns the backoff before retry attempt (0-based):
// Base·Factor^attempt capped at Max, then jittered deterministically from
// (JitterSeed, site, attempt) — by ±25% around the exponential delay, or
// uniformly over [0, delay) when FullJitter is set.
func (b Backoff) Delay(site string, attempt int) time.Duration {
	b = b.WithDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt && d < float64(b.Max); i++ {
		d *= b.Factor
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", site, attempt, b.JitterSeed)
	frac := float64(h.Sum64()%1024) / 1024
	if b.FullJitter {
		// Uniform over [0, d).
		return time.Duration(d * frac)
	}
	// Map the hash to a jitter factor in [0.75, 1.25).
	return time.Duration(d * (0.75 + 0.5*frac))
}

// Retry runs op until it succeeds, the context dies, or the retry budget is
// exhausted. op receives the 0-based attempt number. It returns the number
// of attempts made and the final error (nil on success; the last op error
// wrapped in ErrTaskFailed on exhaustion; an ErrCancelled/ErrTimeout
// wrapper when the context ends the loop).
//
// When a failed attempt's error carries a WithRetryAfter hint (a server
// saying exactly when capacity returns — the 503 + Retry-After path of the
// serving layer), the hint is honored as a floor on the next delay: Retry
// waits max(backoff delay, hint), even past Backoff.Max. The policy's own
// delay still applies when the hint is shorter, so jitter keeps herds
// decorrelated.
func Retry(ctx context.Context, b Backoff, site string, op func(attempt int) error) (int, error) {
	b = b.WithDefaults()
	var last error
	for attempt := 0; attempt <= b.MaxRetries; attempt++ {
		if err := FromContext(ctx); err != nil {
			return attempt, err
		}
		if last = op(attempt); last == nil {
			return attempt + 1, nil
		}
		if attempt < b.MaxRetries {
			d := b.Delay(site, attempt)
			if hint, ok := RetryAfterHint(last); ok && hint > d {
				d = hint
			}
			sleepCtx(ctx, d)
		}
	}
	return b.MaxRetries + 1, fmt.Errorf("%w: %s: %w", ErrTaskFailed, site, last)
}

// sleepCtx sleeps for d or until the context is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
