package linalg

import "sync"

// Blocked, register-tiled GEMM.
//
// The kernel follows the classic three-level blocking scheme (Goto/BLIS):
// op(B) is packed kc×nc at a time into column micro-panels of width gemmNR,
// op(A) is packed mc×kc at a time into row micro-panels of height gemmMR,
// and an mr×nr micro-kernel runs over the packed panels with the C tile held
// in registers. Packing makes both transpose variants free (the packers read
// strided, the micro-kernel never does), keeps the A block resident in L2
// and the active B micro-panel in L1, and folds alpha into the packed B so
// the inner loop is pure multiply-add.
//
// On amd64 with AVX2+FMA (detected at startup) full 8×6 tiles are computed
// by a hand-written assembly micro-kernel holding the tile in 12 YMM
// accumulators; edge tiles and other platforms use a portable Go kernel over
// the same packed panels. Matrices smaller than gemmPackedMNK skip packing
// entirely and run serial register-blocked loops (axpy-style for op(A) = A,
// dot-style for op(A) = Aᵀ) that allocate nothing.

const (
	gemmMR = 8 // micro-tile rows (two 4-wide vectors)
	gemmNR = 6 // micro-tile columns (12 accumulators = 12 YMM registers)
	gemmKC = 256
	gemmMC = 128  // A block: gemmMC×gemmKC ≈ 256 KiB, sized for L2
	gemmNC = 1536 // B block: gemmKC×gemmNC upper bound, sized for L3

	// gemmPackedMNK is the m·n·k product above which the packed path engages;
	// below it the packing traffic is not amortized. The threshold is tuned
	// for the batched-evaluation shapes (m, k ≈ skeleton size 32–128, n = the
	// RHS block width): with edge tiles padded through the FMA kernel, packing
	// pays for itself down to roughly 48×16×48.
	gemmPackedMNK = 16 * 1024
)

// panelPool recycles packing buffers across Gemm calls (pointers so that
// Put does not allocate).
var panelPool = sync.Pool{New: func() any { return new([]float64) }}

func getPanel(n int) *[]float64 {
	p := panelPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putPanel(p *[]float64) { panelPool.Put(p) }

// Gemm computes C = alpha*op(A)*op(B) + beta*C where op is identity or
// transpose. It is the workhorse behind both the dense baseline ("SGEMM" in
// the paper's Figure 1) and all block operations inside GOFMM.
func Gemm(transA, transB bool, alpha float64, A, B *Matrix, beta float64, C *Matrix) {
	m, k := A.Rows, A.Cols
	if transA {
		m, k = A.Cols, A.Rows
	}
	kb, n := B.Rows, B.Cols
	if transB {
		kb, n = B.Cols, B.Rows
	}
	if k != kb || C.Rows != m || C.Cols != n {
		panic("linalg: Gemm dimension mismatch")
	}
	if beta != 1 {
		if beta == 0 {
			C.Zero()
		} else {
			C.Scale(beta)
		}
	}
	if alpha == 0 || m == 0 || n == 0 || k == 0 {
		return
	}
	// Packing only pays off when the n edge is at least one full micro-tile
	// (thin right-hand sides would waste up to ⅔ of every 8×6 tile on
	// zero-padding) and the flop count amortizes the packing traffic.
	if m >= gemmMR && n >= gemmNR && k >= 4 && m*n*k >= gemmPackedMNK {
		gemmPacked(transA, transB, alpha, A, B, C, m, n, k)
		return
	}
	if transA {
		gemmSmallT(alpha, A, B, C, m, n, k, transB)
	} else {
		gemmSmallN(alpha, A, B, C, n, k, transB)
	}
}

// --- packed path ---------------------------------------------------------

func gemmPacked(transA, transB bool, alpha float64, A, B, C *Matrix, m, n, k int) {
	for jc := 0; jc < n; jc += gemmNC {
		ncb := min(gemmNC, n-jc)
		bPanels := (ncb + gemmNR - 1) / gemmNR
		for pc := 0; pc < k; pc += gemmKC {
			kcb := min(gemmKC, k-pc)
			bp := getPanel(bPanels * gemmNR * kcb)
			packB(transB, alpha, B, pc, jc, kcb, ncb, *bp)
			nic := (m + gemmMC - 1) / gemmMC
			if nic > 1 && workers() > 1 {
				jcv, pcv, kcv, ncv := jc, pc, kcb, ncb // capture copies for the closure
				parallelFor(nic, 1, func(lo, hi int) {
					gemmMacro(transA, A, C, *bp, pcv, jcv, kcv, ncv, lo, hi, m)
				})
			} else {
				gemmMacro(transA, A, C, *bp, pc, jc, kcb, ncb, 0, nic, m)
			}
			putPanel(bp)
		}
	}
}

// gemmMacro processes A blocks [icLo, icHi) of the mc-grid against the
// packed B block bp, packing each A block into a per-call panel.
func gemmMacro(transA bool, A, C *Matrix, bp []float64, pc, jc, kcb, ncb, icLo, icHi, m int) {
	ap := getPanel(gemmMC * kcb)
	for ib := icLo; ib < icHi; ib++ {
		ic := ib * gemmMC
		if ic >= m {
			break
		}
		mcb := min(gemmMC, m-ic)
		packA(transA, A, pc, ic, kcb, mcb, *ap)
		mPanels := (mcb + gemmMR - 1) / gemmMR
		for jr := 0; jr < ncb; jr += gemmNR {
			nrb := min(gemmNR, ncb-jr)
			bpan := bp[(jr/gemmNR)*gemmNR*kcb:]
			for pi := 0; pi < mPanels; pi++ {
				apan := (*ap)[pi*gemmMR*kcb:]
				mrb := min(gemmMR, mcb-pi*gemmMR)
				cOff := (jc+jr)*C.Stride + ic + pi*gemmMR
				switch {
				case mrb == gemmMR && nrb == gemmNR && haveFMAKernel:
					gemmKernel8x6(kcb, apan, bpan, &C.Data[cOff], C.Stride)
				case haveFMAKernel:
					// Edge tile: both panels are zero-padded to full size, so
					// run the FMA kernel into a scratch tile and accumulate
					// the live mrb×nrb corner — far cheaper than the scalar
					// kernel for any non-trivial kc.
					var tile [gemmMR * gemmNR]float64
					gemmKernel8x6(kcb, apan, bpan, &tile[0], gemmMR)
					for j := 0; j < nrb; j++ {
						col := C.Data[cOff+j*C.Stride : cOff+j*C.Stride+mrb]
						tj := tile[j*gemmMR:]
						for q := range col {
							col[q] += tj[q]
						}
					}
				default:
					gemmKernelGeneric(kcb, apan, bpan, C.Data[cOff:], C.Stride, mrb, nrb)
				}
			}
		}
	}
	putPanel(ap)
}

// packA packs op(A)[ic:ic+mcb, pc:pc+kcb] into gemmMR-row micro-panels:
// panel pi holds rows [pi·mr, pi·mr+mr) as kcb consecutive mr-vectors,
// zero-padded so the micro-kernel never branches on the row edge.
func packA(transA bool, A *Matrix, pc, ic, kcb, mcb int, ap []float64) {
	panels := (mcb + gemmMR - 1) / gemmMR
	for pi := 0; pi < panels; pi++ {
		ir := pi * gemmMR
		rows := min(gemmMR, mcb-ir)
		dst := ap[pi*gemmMR*kcb : (pi+1)*gemmMR*kcb]
		if !transA {
			for kk := 0; kk < kcb; kk++ {
				src := A.Data[(pc+kk)*A.Stride+ic+ir:]
				d := dst[kk*gemmMR : kk*gemmMR+gemmMR]
				for q := 0; q < rows; q++ {
					d[q] = src[q]
				}
				for q := rows; q < gemmMR; q++ {
					d[q] = 0
				}
			}
			continue
		}
		// op(A)[i, kk] = A[kk, i]: column ic+ir+q of A is contiguous over kk.
		for q := 0; q < rows; q++ {
			src := A.Data[(ic+ir+q)*A.Stride+pc:]
			for kk := 0; kk < kcb; kk++ {
				dst[kk*gemmMR+q] = src[kk]
			}
		}
		for q := rows; q < gemmMR; q++ {
			for kk := 0; kk < kcb; kk++ {
				dst[kk*gemmMR+q] = 0
			}
		}
	}
}

// packB packs alpha*op(B)[pc:pc+kcb, jc:jc+ncb] into gemmNR-column
// micro-panels (kcb consecutive nr-vectors each, zero-padded on the column
// edge), folding alpha so the micro-kernel is a pure multiply-add.
func packB(transB bool, alpha float64, B *Matrix, pc, jc, kcb, ncb int, bp []float64) {
	panels := (ncb + gemmNR - 1) / gemmNR
	for qi := 0; qi < panels; qi++ {
		jr := qi * gemmNR
		cols := min(gemmNR, ncb-jr)
		dst := bp[qi*gemmNR*kcb : (qi+1)*gemmNR*kcb]
		if !transB {
			for t := 0; t < cols; t++ {
				src := B.Data[(jc+jr+t)*B.Stride+pc:]
				for kk := 0; kk < kcb; kk++ {
					dst[kk*gemmNR+t] = alpha * src[kk]
				}
			}
			for t := cols; t < gemmNR; t++ {
				for kk := 0; kk < kcb; kk++ {
					dst[kk*gemmNR+t] = 0
				}
			}
			continue
		}
		// op(B)[kk, j] = B[j, kk]: row pc+kk of B is contiguous over j.
		for kk := 0; kk < kcb; kk++ {
			src := B.Data[(pc+kk)*B.Stride+jc+jr:]
			d := dst[kk*gemmNR : kk*gemmNR+gemmNR]
			for t := 0; t < cols; t++ {
				d[t] = alpha * src[t]
			}
			for t := cols; t < gemmNR; t++ {
				d[t] = 0
			}
		}
	}
}

// gemmKernelGeneric is the portable micro-kernel: it computes the full
// (zero-padded) mr×nr tile into a stack buffer and accumulates the live
// mrb×nrb corner into C. cd is C.Data from the tile origin; ldc its stride.
func gemmKernelGeneric(kc int, a, b []float64, cd []float64, ldc, mrb, nrb int) {
	var acc [gemmMR * gemmNR]float64
	for kk := 0; kk < kc; kk++ {
		av := a[kk*gemmMR : kk*gemmMR+gemmMR]
		bv := b[kk*gemmNR : kk*gemmNR+gemmNR]
		for j := 0; j < gemmNR; j++ {
			bj := bv[j]
			if bj == 0 {
				continue
			}
			aj := acc[j*gemmMR : j*gemmMR+gemmMR]
			for q := 0; q < gemmMR; q++ {
				aj[q] += av[q] * bj
			}
		}
	}
	for j := 0; j < nrb; j++ {
		col := cd[j*ldc : j*ldc+mrb]
		aj := acc[j*gemmMR:]
		for q := range col {
			col[q] += aj[q]
		}
	}
}

// --- small path ----------------------------------------------------------

// gemmSmallN computes C += alpha*A*op(B) serially with the 4×4
// register-blocked axpy kernel (columns of A are walked contiguously). It
// allocates nothing.
func gemmSmallN(alpha float64, A, B, C *Matrix, n, k int, transB bool) {
	m := A.Rows
	bd := B.Data
	rs, cs := 1, B.Stride // op(B)[kk, j] = bd[kk*rs+j*cs]
	if transB {
		rs, cs = B.Stride, 1
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		c0, c1, c2, c3 := C.Col(j), C.Col(j+1), C.Col(j+2), C.Col(j+3)
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			a0, a1, a2, a3 := A.Col(kk), A.Col(kk+1), A.Col(kk+2), A.Col(kk+3)
			var b [4][4]float64
			for p := 0; p < 4; p++ {
				off := (kk + p) * rs
				b[p][0] = alpha * bd[off+j*cs]
				b[p][1] = alpha * bd[off+(j+1)*cs]
				b[p][2] = alpha * bd[off+(j+2)*cs]
				b[p][3] = alpha * bd[off+(j+3)*cs]
			}
			for i := 0; i < m; i++ {
				av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
				c0[i] += av0*b[0][0] + av1*b[1][0] + av2*b[2][0] + av3*b[3][0]
				c1[i] += av0*b[0][1] + av1*b[1][1] + av2*b[2][1] + av3*b[3][1]
				c2[i] += av0*b[0][2] + av1*b[1][2] + av2*b[2][2] + av3*b[3][2]
				c3[i] += av0*b[0][3] + av1*b[1][3] + av2*b[2][3] + av3*b[3][3]
			}
		}
		for ; kk < k; kk++ {
			a0 := A.Col(kk)
			off := kk * rs
			b0 := alpha * bd[off+j*cs]
			b1 := alpha * bd[off+(j+1)*cs]
			b2 := alpha * bd[off+(j+2)*cs]
			b3 := alpha * bd[off+(j+3)*cs]
			for i := 0; i < m; i++ {
				av := a0[i]
				c0[i] += av * b0
				c1[i] += av * b1
				c2[i] += av * b2
				c3[i] += av * b3
			}
		}
	}
	for ; j < n; j++ {
		cj := C.Col(j)
		for kk := 0; kk < k; kk++ {
			Axpy(alpha*bd[kk*rs+j*cs], A.Col(kk), cj)
		}
	}
}

// gemmSmallT computes C += alpha*Aᵀ*op(B) serially as dot products — column
// i of A is exactly row i of op(A) and is contiguous, so no transpose is
// ever materialized. It allocates nothing.
func gemmSmallT(alpha float64, A, B, C *Matrix, m, n, k int, transB bool) {
	bd := B.Data
	for j := 0; j < n; j++ {
		cj := C.Col(j)
		if !transB {
			bj := bd[j*B.Stride : j*B.Stride+k]
			for i := 0; i < m; i++ {
				cj[i] += alpha * Dot(A.Col(i)[:k], bj)
			}
			continue
		}
		// op(B) column j is row j of B, strided.
		for i := 0; i < m; i++ {
			ai := A.Col(i)
			var s float64
			for kk := 0; kk < k; kk++ {
				s += ai[kk] * bd[kk*B.Stride+j]
			}
			cj[i] += alpha * s
		}
	}
}
