package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gofmm/internal/linalg"
	"gofmm/internal/plan"
	"gofmm/internal/resilience"
	"gofmm/internal/store"
)

// Saving a compressed operator into the on-disk store (gofmm.store/v1).
// Unlike the v2 io.Writer stream (WriteTo), the store packs every constant
// matrix — interpolation bases, cached near/far blocks in both precisions,
// and the compiled plan's gathered operands — into one contiguous
// 64-byte-aligned arena per precision, addressed by a flat table of
// (precision, rows, cols, offset) records. A loader can therefore map the
// file and bind matrix headers directly over the mapping: zero copies, no
// pointer fixups, first matvec bounded by page-cache faults rather than by
// decompression.

// storeAlign64 rounds n up to the store's 64-byte arena alignment.
func storeAlign64(n int64) int64 {
	return (n + store.Align - 1) &^ (store.Align - 1)
}

// matTable assigns every distinct constant matrix a record in the arena of
// its precision. Deduplication is by pointer: the compiled plan references
// the same cached blocks the nodes hold, and aliased operands must stay
// aliased after a round trip (one arena slot, many refs).
type matTable struct {
	recs  []matRec
	src64 []*linalg.Matrix   // parallel to recs; nil for f32 records
	src32 []*linalg.Matrix32 // parallel to recs; nil for f64 records
	idx64 map[*linalg.Matrix]int
	idx32 map[*linalg.Matrix32]int
	// Bytes used so far in each precision's arena.
	size64, size32 int64
}

func newMatTable() *matTable {
	return &matTable{
		idx64: make(map[*linalg.Matrix]int),
		idx32: make(map[*linalg.Matrix32]int),
	}
}

// ref64 returns the table index of m, adding a record on first sight.
// A nil matrix encodes as -1.
func (mt *matTable) ref64(m *linalg.Matrix) int64 {
	if m == nil {
		return -1
	}
	if i, ok := mt.idx64[m]; ok {
		return int64(i)
	}
	off := storeAlign64(mt.size64)
	mt.size64 = off + int64(m.Rows)*int64(m.Cols)*8
	i := len(mt.recs)
	mt.recs = append(mt.recs, matRec{prec: 8, rows: int64(m.Rows), cols: int64(m.Cols), off: off})
	mt.src64 = append(mt.src64, m)
	mt.src32 = append(mt.src32, nil)
	mt.idx64[m] = i
	return int64(i)
}

// ref32 is ref64 for single-precision matrices.
func (mt *matTable) ref32(m *linalg.Matrix32) int64 {
	if m == nil {
		return -1
	}
	if i, ok := mt.idx32[m]; ok {
		return int64(i)
	}
	off := storeAlign64(mt.size32)
	mt.size32 = off + int64(m.Rows)*int64(m.Cols)*4
	i := len(mt.recs)
	mt.recs = append(mt.recs, matRec{prec: 4, rows: int64(m.Rows), cols: int64(m.Cols), off: off})
	mt.src64 = append(mt.src64, nil)
	mt.src32 = append(mt.src32, m)
	mt.idx32[m] = i
	return int64(i)
}

// pack materializes the two arenas: little-endian column-major float data at
// each record's offset, zero padding in the alignment gaps.
func (mt *matTable) pack() (arena64, arena32 []byte) {
	arena64 = make([]byte, mt.size64)
	arena32 = make([]byte, mt.size32)
	for i, rec := range mt.recs {
		if m := mt.src64[i]; m != nil {
			out := arena64[rec.off:]
			k := 0
			for j := 0; j < m.Cols; j++ {
				for _, v := range m.Col(j) {
					binary.LittleEndian.PutUint64(out[k*8:], math.Float64bits(v))
					k++
				}
			}
		}
		if m := mt.src32[i]; m != nil {
			out := arena32[rec.off:]
			k := 0
			for j := 0; j < m.Cols; j++ {
				for _, v := range m.Col(j) {
					binary.LittleEndian.PutUint32(out[k*4:], math.Float32bits(v))
					k++
				}
			}
		}
	}
	return arena64, arena32
}

// sameIndexSlice reports whether a and b are the same backing slice (the
// compiled plan's gather/scatter index lists alias Tree.Perm/IPerm; the
// store records the aliasing instead of the list).
func sameIndexSlice(a, b []int) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// Index-list selectors for plan gather/scatter ops.
const (
	idxNone   = 0 // no index list
	idxPerm   = 1 // Tree.Perm
	idxIPerm  = 2 // Tree.IPerm
	idxInline = 3 // stored inline
)

// storeSections encodes the representation into the store's section set.
func (h *Hierarchical) storeSections() ([]store.Section, error) {
	if h.Tree == nil || len(h.nodes) == 0 {
		return nil, fmt.Errorf("%w: cannot save an uncompressed operator", resilience.ErrInvalidInput)
	}
	n := h.K.Dim()
	mt := newMatTable()

	// Walk nodes in id order so arena layout is deterministic: proj first,
	// then each cache list in near/far order, float64 before float32.
	type nodeRefs struct {
		proj                             int64
		near64, far64, near32f, far32f   []int64
		hasN64, hasF64, hasN32f, hasF32f bool
	}
	refs := make([]nodeRefs, len(h.nodes))
	for id := range h.nodes {
		nd := &h.nodes[id]
		r := &refs[id]
		r.proj = mt.ref64(nd.proj)
		if nd.cacheNear != nil {
			r.hasN64 = true
			for _, m := range nd.cacheNear {
				r.near64 = append(r.near64, mt.ref64(m))
			}
		}
		if nd.cacheFar != nil {
			r.hasF64 = true
			for _, m := range nd.cacheFar {
				r.far64 = append(r.far64, mt.ref64(m))
			}
		}
		if nd.cacheNear32 != nil {
			r.hasN32f = true
			for _, m := range nd.cacheNear32 {
				r.near32f = append(r.near32f, mt.ref32(m))
			}
		}
		if nd.cacheFar32 != nil {
			r.hasF32f = true
			for _, m := range nd.cacheFar32 {
				r.far32f = append(r.far32f, mt.ref32(m))
			}
		}
	}

	// Plan constants after node matrices (compile-time gathered operands that
	// never lived on a node get their slots here; shared ones dedupe away).
	p := h.evalPlan.Load()
	var opARefs, opA32Refs []int64
	if p != nil {
		for _, op := range p.Ops() {
			opARefs = append(opARefs, mt.ref64(op.A))
			opA32Refs = append(opA32Refs, mt.ref32(op.A32))
		}
	}

	// meta section.
	var meta secWriter
	c := h.Cfg
	meta.i64(storePayloadVersion)
	meta.i64(int64(n))
	meta.i64(int64(c.LeafSize))
	meta.i64(int64(c.MaxRank))
	meta.i64(int64(c.Kappa))
	meta.i64(int64(c.SampleRows))
	meta.i64(c.Seed)
	meta.i64(int64(c.Distance))
	meta.f64(c.Tol)
	meta.f64(c.Budget)
	meta.boolean(c.CacheBlocks)
	meta.boolean(c.CacheSingle)

	// topo section: matrix table, permutation, per-node lists and refs.
	var topo secWriter
	topo.i64(int64(len(mt.recs)))
	for _, rec := range mt.recs {
		topo.i64(rec.prec)
		topo.i64(rec.rows)
		topo.i64(rec.cols)
		topo.i64(rec.off)
	}
	topo.ints(h.Tree.Perm)
	topo.i64(int64(len(h.nodes)))
	writeRefList := func(has bool, list []int64) {
		topo.boolean(has)
		if has {
			for _, v := range list {
				topo.i64(v)
			}
		}
	}
	for id := range h.nodes {
		nd := &h.nodes[id]
		r := &refs[id]
		topo.ints(nd.skel)
		topo.i64(r.proj)
		topo.ints(nd.near)
		topo.ints(nd.far)
		topo.boolean(nd.denseFallback)
		writeRefList(r.hasN64, r.near64)
		writeRefList(r.hasF64, r.far64)
		writeRefList(r.hasN32f, r.near32f)
		writeRefList(r.hasF32f, r.far32f)
	}

	// plan section: op stream, stage schedule, digest.
	var ps secWriter
	ps.boolean(p != nil)
	if p != nil {
		ps.i64(int64(p.N()))
		ps.i64(int64(p.ArenaRows()))
		ops := p.Ops()
		ps.i64(int64(len(ops)))
		writeRef := func(f plan.Ref) {
			ps.i64(int64(f.Base))
			ps.i64(int64(f.Sub))
			ps.i64(int64(f.Rows))
			ps.i64(int64(f.Span))
		}
		for i, op := range ops {
			ps.i64(int64(op.Kind))
			ps.boolean(op.TransA)
			ps.f64(op.Beta)
			ps.i64(opARefs[i])
			ps.i64(opA32Refs[i])
			writeRef(op.B)
			writeRef(op.C)
			switch {
			case len(op.Idx) == 0:
				ps.i64(idxNone)
			case sameIndexSlice(op.Idx, h.Tree.Perm):
				ps.i64(idxPerm)
			case sameIndexSlice(op.Idx, h.Tree.IPerm):
				ps.i64(idxIPerm)
			default:
				ps.i64(idxInline)
				ps.ints(op.Idx)
			}
		}
		specs := p.StageSpecs()
		ps.i64(int64(len(specs)))
		for _, s := range specs {
			ps.blob([]byte(s.Name))
			ps.boolean(s.Parallel)
			ps.i64(int64(len(s.Tasks)))
			for _, t := range s.Tasks {
				ps.i64(int64(t[0]))
				ps.i64(int64(t[1]))
			}
		}
		d := p.Digest()
		ps.blob(d[:])
	}

	arena64, arena32 := mt.pack()
	return []store.Section{
		{Kind: store.SecMeta, Data: meta.b},
		{Kind: store.SecTopo, Data: topo.b},
		{Kind: store.SecPlan, Data: ps.b},
		{Kind: store.SecArena64, Data: arena64},
		{Kind: store.SecArena32, Data: arena32},
	}, nil
}

// WriteStore writes the operator in store format (gofmm.store/v1) to w.
// The store carries strictly more than the v2 stream: single-precision
// cached blocks and the installed compiled plan survive the round trip, and
// the layout supports the zero-copy mmap load path of LoadFrom.
func (h *Hierarchical) WriteStore(w io.Writer) (int64, error) {
	sections, err := h.storeSections()
	if err != nil {
		return 0, err
	}
	return store.Write(w, sections)
}

// SaveTo atomically writes the operator to path in store format and returns
// the file size. See WriteStore for the format and LoadFrom for loading.
func (h *Hierarchical) SaveTo(path string) (int64, error) {
	sections, err := h.storeSections()
	if err != nil {
		return 0, err
	}
	return store.WriteFile(path, sections)
}
