package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-matrix", "K10", "-n", "200", "-m", "32", "-s", "32", "-r", "2", "-exec", "seq"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"matrix K10", "compression:", "evaluation (2 rhs)", "sampled relative error"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStructureFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-matrix", "G03", "-n", "128", "-m", "32", "-s", "32", "-r", "1",
		"-budget", "0.3", "-structure", "-exec", "seq"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "block structure") {
		t.Fatalf("structure block missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "#") {
		t.Fatal("structure grid missing dense marker")
	}
}

func TestRunAllDistancesAndExecutors(t *testing.T) {
	for _, dist := range []string{"angle", "kernel", "lexicographic", "random"} {
		var sb strings.Builder
		if err := run([]string{"-matrix", "K09", "-n", "128", "-m", "32", "-s", "16",
			"-r", "1", "-dist", dist, "-exec", "level", "-workers", "2"}, &sb); err != nil {
			t.Fatalf("dist %s: %v", dist, err)
		}
	}
	for _, ex := range []string{"dynamic", "level", "taskdep", "seq"} {
		var sb strings.Builder
		if err := run([]string{"-matrix", "K09", "-n", "128", "-m", "32", "-s", "16",
			"-r", "1", "-exec", ex}, &sb); err != nil {
			t.Fatalf("exec %s: %v", ex, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-matrix", "NOPE"}, &sb); err == nil {
		t.Fatal("expected error for unknown matrix")
	}
	if err := run([]string{"-dist", "NOPE", "-n", "64"}, &sb); err == nil {
		t.Fatal("expected error for unknown distance")
	}
	if err := run([]string{"-exec", "NOPE", "-n", "64"}, &sb); err == nil {
		t.Fatal("expected error for unknown executor")
	}
	// Geometric distance on a problem without points must fail cleanly.
	if err := run([]string{"-matrix", "G01", "-n", "64", "-dist", "geometric"}, &sb); err == nil {
		t.Fatal("expected error for geometric distance without points")
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/k.gofmm"
	var sb strings.Builder
	if err := run([]string{"-matrix", "K09", "-n", "128", "-m", "32", "-s", "16",
		"-r", "1", "-exec", "seq", "-save", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "saved compressed form") {
		t.Fatalf("save message missing:\n%s", sb.String())
	}
	sb.Reset()
	if err := run([]string{"-matrix", "K09", "-n", "128", "-m", "32", "-s", "16",
		"-r", "1", "-exec", "seq", "-load", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "loaded compressed form") {
		t.Fatalf("load message missing:\n%s", sb.String())
	}
}

func TestRunTelemetryFlags(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.json")
	var sb strings.Builder
	err := run([]string{"-matrix", "K10", "-n", "200", "-m", "32", "-s", "32", "-r", "2",
		"-workers", "2", "-trace", trace, "-metrics", metrics, "-report"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"wrote Chrome trace", "wrote metrics snapshot", "compress", "counters:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Both artifacts must be valid JSON with the expected top-level shape.
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	data, err = os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if snap["schema"] != "gofmm.telemetry/v1" {
		t.Fatalf("metrics schema = %v", snap["schema"])
	}
}
