package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/tree"
)

// Evaluator owns reusable evaluation workspaces for repeated matvecs with a
// fixed number of right-hand sides — the iterative-solver workload (CG,
// block Krylov, Monte Carlo sampling) where per-call allocation would
// otherwise dominate at small r.
type Evaluator struct {
	h  *Hierarchical
	r  int
	st *evalState
}

// NewEvaluator prepares workspaces for Matvec calls with r right-hand sides.
func (h *Hierarchical) NewEvaluator(r int) *Evaluator {
	n := h.K.Dim()
	t := h.Tree
	st := &evalState{
		r:     r,
		Wt:    linalg.NewMatrix(n, r),
		Unear: linalg.NewMatrix(n, r),
		Ufar:  linalg.NewMatrix(n, r),
		skelW: make([]*linalg.Matrix, len(t.Nodes)),
		skelU: make([]*linalg.Matrix, len(t.Nodes)),
		down:  make([]*linalg.Matrix, len(t.Nodes)),
	}
	// Pre-size the per-node buffers from the known skeleton ranks.
	for id := range t.Nodes {
		s := len(h.nodes[id].skel)
		if h.nodes[id].proj != nil {
			st.skelW[id] = linalg.NewMatrix(h.nodes[id].proj.Rows, r)
		}
		if s > 0 {
			st.skelU[id] = linalg.NewMatrix(s, r)
		}
		if !t.IsLeaf(id) && h.nodes[id].proj != nil {
			st.down[id] = linalg.NewMatrix(h.nodes[id].proj.Cols, r)
		}
	}
	return &Evaluator{h: h, r: r, st: st}
}

// Matvec computes U ≈ K·W into a fresh output using the pre-allocated
// workspaces. W must have exactly the configured number of columns.
func (e *Evaluator) Matvec(W *linalg.Matrix) *linalg.Matrix {
	h := e.h
	n := h.K.Dim()
	if W.Rows != n || W.Cols != e.r {
		panic(fmt.Sprintf("core: Evaluator.Matvec with %d×%d input, want %d×%d", W.Rows, W.Cols, n, e.r))
	}
	start := time.Now()
	t := h.Tree
	st := e.st
	// Reset workspaces in place (column-wise gather for cache locality).
	for c := 0; c < e.r; c++ {
		src := W.Col(c)
		dst := st.Wt.Col(c)
		for pos, orig := range t.Perm {
			dst[pos] = src[orig]
		}
	}
	st.Unear.Zero()
	st.Ufar.Zero()
	for id := range t.Nodes {
		if st.skelU[id] != nil {
			st.skelU[id].Zero()
		}
	}
	// The kernels overwrite skelW/down (Gemm with beta 0), but s2s/s2n rely
	// on skelU being zeroed (done above) and on the "nil means absent"
	// convention, so run a sequential evaluation with a zero-filled variant:
	// s2s accumulates into the pre-zeroed skelU via a small shim below.
	t.PostOrder(func(nd *tree.Node) { h.n2sInto(st, nd.ID) })
	for id := range t.Nodes {
		h.s2sInto(st, id)
	}
	t.PreOrder(func(nd *tree.Node) { h.s2nInto(st, nd.ID) })
	for _, beta := range t.Leaves() {
		h.l2l(st, beta)
	}
	st.Ufar.AddScaled(1, st.Unear)
	U := st.Ufar.RowsGather(t.IPerm)
	h.Stats.EvalTime = time.Since(start).Seconds()
	h.Stats.EvalFlops = float64(atomic.LoadInt64(&h.evalFlops))
	return U
}

// n2sInto is n2s with a pre-allocated output buffer.
func (h *Hierarchical) n2sInto(st *evalState, id int) {
	nd := &h.nodes[id]
	if nd.proj == nil || st.skelW[id] == nil {
		return
	}
	t := h.Tree
	out := st.skelW[id]
	if t.IsLeaf(id) {
		tn := &t.Nodes[id]
		wview := st.Wt.View(tn.Lo, 0, tn.Size(), st.r)
		linalg.Gemm(false, false, 1, nd.proj, wview, 0, out)
	} else {
		wl := st.skelW[t.Left(id)]
		wr := st.skelW[t.Right(id)]
		stacked := stackRows(wl, wr, st.r)
		linalg.Gemm(false, false, 1, nd.proj, stacked, 0, out)
	}
	h.addEvalFlops(2 * float64(out.Rows) * float64(nd.proj.Cols) * float64(st.r))
}

// s2sInto accumulates into the pre-zeroed skelU buffer.
func (h *Hierarchical) s2sInto(st *evalState, id int) {
	nd := &h.nodes[id]
	if len(nd.far) == 0 || st.skelU[id] == nil {
		return
	}
	acc := st.skelU[id]
	for k, alpha := range nd.far {
		wa := st.skelW[alpha]
		if wa == nil || wa.Rows == 0 {
			continue
		}
		if nd.cacheFar32 != nil {
			b := nd.cacheFar32[k]
			linalg.GemmMixed(1, b, wa, 1, acc)
			h.addEvalFlops(2 * float64(b.Rows) * float64(b.Cols) * float64(st.r))
			continue
		}
		var block *linalg.Matrix
		if nd.cacheFar != nil {
			block = nd.cacheFar[k]
		} else {
			block = NewGathered(h.K, nd.skel, h.nodes[alpha].skel)
		}
		linalg.Gemm(false, false, 1, block, wa, 1, acc)
		h.addEvalFlops(2 * float64(block.Rows) * float64(block.Cols) * float64(st.r))
	}
}

// s2nInto is s2n with pre-allocated down buffers.
func (h *Hierarchical) s2nInto(st *evalState, id int) {
	t := h.Tree
	nd := &h.nodes[id]
	if p := t.Parent(id); p >= 0 && st.down[p] != nil {
		ls := len(h.nodes[t.Left(p)].skel)
		var part *linalg.Matrix
		if id == t.Left(p) {
			part = st.down[p].View(0, 0, ls, st.r)
		} else {
			part = st.down[p].View(ls, 0, st.down[p].Rows-ls, st.r)
		}
		if part.Rows > 0 && st.skelU[id] != nil {
			st.skelU[id].AddScaled(1, part)
		}
	}
	u := st.skelU[id]
	if u == nil || u.Rows == 0 || nd.proj == nil {
		return
	}
	if t.IsLeaf(id) {
		tn := &t.Nodes[id]
		uview := st.Ufar.View(tn.Lo, 0, tn.Size(), st.r)
		linalg.Gemm(true, false, 1, nd.proj, u, 1, uview)
		h.addEvalFlops(2 * float64(nd.proj.Rows) * float64(tn.Size()) * float64(st.r))
	} else if st.down[id] != nil {
		linalg.Gemm(true, false, 1, nd.proj, u, 0, st.down[id])
		h.addEvalFlops(2 * float64(nd.proj.Rows) * float64(nd.proj.Cols) * float64(st.r))
	}
}
