package experiments

import (
	"io"

	"gofmm/internal/core"
)

// Fig7 reproduces Figure 7 (#9–#12): the permutation study. Five orderings —
// Lexicographic, Random, Kernel 2-norm, Angle, and Geometric — are compared
// by accuracy (ε₂) and average skeleton rank on four problems. Lexicographic
// and Random define no distance, so they run as HSS with uniform sampling;
// the distance-based schemes use κ=32 neighbors and a 3% budget. G03 (a
// graph Laplacian inverse) has no coordinates, so its Geometric column is
// impossible — exactly the case motivating geometry-obliviousness.
func Fig7(w io.Writer, n int, seed int64) []Result {
	cases := []string{"K05", "K12", "COVTYPE", "G03"}
	type scheme struct {
		label string
		dist  core.Distance
	}
	schemes := []scheme{
		{"lexicographic", core.Lexicographic},
		{"random", core.RandomPerm},
		{"kernel", core.Kernel},
		{"angle", core.Angle},
		{"geometric", core.Geometric},
	}
	header(w, "case", "permutation", "eps2", "avg-rank", "compress(s)")
	var out []Result
	for _, name := range cases {
		p := GetProblem(name, n, seed)
		for _, s := range schemes {
			if s.dist == core.Geometric && p.Points == nil {
				cell(w, "%s", name)
				cell(w, "%s", s.label)
				cell(w, "%s", "n/a (no coordinates)")
				endRow(w)
				continue
			}
			budget := 0.03
			if !s.dist.HasNeighbors() {
				budget = 0
			}
			res := Run(p, core.Config{
				LeafSize: 64, MaxRank: 128, Tol: 1e-7, Kappa: 32,
				Budget: budget, Distance: s.dist, Exec: core.Dynamic,
				NumWorkers: 2, CacheBlocks: true, Seed: seed,
			}, 16, seed)
			res.Experiment = "fig7"
			res.Scheme = s.label
			out = append(out, res)
			cell(w, "%s", name)
			cell(w, "%s", s.label)
			cell(w, "%.1e", res.Eps)
			cell(w, "%.1f", res.AvgRank)
			cell(w, "%.3f", res.CompressS)
			endRow(w)
		}
	}
	return out
}
