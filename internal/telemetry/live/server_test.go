package live

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
)

// get issues a request against the in-process handler (no sockets) and
// returns the recorded response.
func get(s *Server, method, target string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest(method, target, nil))
	return rr
}

func TestMetricsEndpoint(t *testing.T) {
	rec := telemetry.New()
	rec.Counter("batch.flushes").Add(3)
	rec.Histogram("matvec.latency_ms").Observe(2.5)
	s := New(rec)

	rr := get(s, http.MethodGet, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"gofmm_batch_flushes_total 3",
		`gofmm_matvec_latency_ms{quantile="0.5"}`,
		"gofmm_matvec_latency_ms_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	// Scrapes are themselves counted, so the next scrape must show it.
	if body2 := get(s, http.MethodGet, "/metrics").Body.String(); !strings.Contains(body2, "gofmm_live_scrapes_total 2") {
		t.Fatalf("scrape counter missing:\n%s", body2)
	}
	if rr := get(s, http.MethodPost, "/metrics"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d", rr.Code)
	}
}

// TestConcurrentRegistrationDuringScrape hammers the recorder with 64
// goroutines registering fresh metrics while scrapes run — the -race gate
// for the snapshot/exposition path.
func TestConcurrentRegistrationDuringScrape(t *testing.T) {
	rec := telemetry.New()
	s := New(rec)
	const goroutines = 64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec.Counter(fmt.Sprintf("c.%d.%d", g, i)).Add(1)
				rec.Gauge(fmt.Sprintf("g.%d", g)).Set(float64(i))
				rec.Histogram(fmt.Sprintf("h.%d", g)).Observe(float64(i + 1))
				sp := rec.StartSpan(fmt.Sprintf("span.%d", g))
				sp.SetAttr(telemetry.AttrTraceID, telemetry.NewTraceID())
				sp.End()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if rr := get(s, http.MethodGet, "/metrics"); rr.Code != http.StatusOK {
					t.Errorf("scrape under load: %d", rr.Code)
					return
				}
			}
		}
	}()
	// Wait for the writers, then stop the scraper.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	body := get(s, http.MethodGet, "/metrics").Body.String()
	if !strings.Contains(body, "gofmm_c_0_49_total 1") {
		t.Fatal("registered counter missing from final scrape")
	}
}

func TestHealthzReadyz(t *testing.T) {
	s := New(telemetry.New())
	if rr := get(s, http.MethodGet, "/healthz"); rr.Code != http.StatusOK ||
		!strings.HasPrefix(rr.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rr.Code, rr.Body.String())
	}
	if rr := get(s, http.MethodGet, "/readyz"); rr.Code != http.StatusOK {
		t.Fatalf("readyz = %d", rr.Code)
	}

	s.SetReady(false)
	if rr := get(s, http.MethodGet, "/readyz"); rr.Code != http.StatusServiceUnavailable ||
		!strings.HasPrefix(rr.Body.String(), "not ready") {
		t.Fatalf("readyz after SetReady(false) = %d %q", rr.Code, rr.Body.String())
	}
	s.SetReady(true)

	s.AddHealthCheck("disk", func(ctx context.Context) error { return nil })
	s.AddHealthCheck("oracle", func(ctx context.Context) error {
		return fmt.Errorf("%w: oracle poisoned", resilience.ErrTolerance)
	})
	rr := get(s, http.MethodGet, "/healthz")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("failing check → %d", rr.Code)
	}
	body := rr.Body.String()
	if !strings.Contains(body, "fail oracle") || !strings.Contains(body, "ok   disk") {
		t.Fatalf("per-check lines missing:\n%s", body)
	}
	// Checks receive the request context.
	s.AddReadyCheck("ctx", func(ctx context.Context) error {
		if ctx == nil {
			return errors.New("nil ctx")
		}
		return nil
	})
	if rr := get(s, http.MethodGet, "/readyz"); rr.Code != http.StatusOK {
		t.Fatalf("readyz with ctx check = %d %q", rr.Code, rr.Body.String())
	}
}

func TestSpansReplayNDJSON(t *testing.T) {
	rec := telemetry.New()
	flight := telemetry.NewFlightRecorder(rec, 32)
	s := New(rec, WithFlightRecorder(flight))

	for i := 0; i < 5; i++ {
		sp := rec.StartSpan(fmt.Sprintf("op%d", i))
		sp.SetAttr(telemetry.AttrTraceID, fmt.Sprintf("%016d", i))
		sp.End()
	}
	rr := get(s, http.MethodGet, "/debug/spans?replay=3&limit=3")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var names []string
	sc := bufio.NewScanner(rr.Body)
	for sc.Scan() {
		var ev telemetry.SpanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		names = append(names, ev.Name)
	}
	if len(names) != 3 || names[0] != "op2" || names[2] != "op4" {
		t.Fatalf("replayed %v, want [op2 op3 op4]", names)
	}

	if rr := get(s, http.MethodGet, "/debug/spans?limit=nope"); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad limit → %d", rr.Code)
	}
	if rr := get(s, http.MethodGet, "/debug/spans?replay=-2"); rr.Code != http.StatusBadRequest {
		t.Fatalf("negative replay → %d", rr.Code)
	}
}

func TestSpansLiveStream(t *testing.T) {
	rec := telemetry.New()
	s := New(rec)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	pr, pw := io.Pipe()
	req := httptest.NewRequest(http.MethodGet, "/debug/spans?limit=2", nil).WithContext(ctx)
	rr := &streamRecorder{header: http.Header{}, w: pw}
	served := make(chan struct{})
	go func() {
		defer close(served)
		defer pw.Close()
		s.Handler().ServeHTTP(rr, req)
	}()
	// Give the handler a moment to subscribe, then complete two spans.
	time.Sleep(20 * time.Millisecond)
	rec.StartSpan("live1").End()
	rec.StartSpan("live2").End()

	sc := bufio.NewScanner(pr)
	var got []string
	for sc.Scan() {
		var ev telemetry.SpanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line: %v", err)
		}
		got = append(got, ev.Name)
	}
	<-served
	if len(got) != 2 || got[0] != "live1" || got[1] != "live2" {
		t.Fatalf("streamed %v", got)
	}
}

// streamRecorder is a minimal flushing ResponseWriter backed by a pipe so
// the streaming handler's writes are observable before it returns.
type streamRecorder struct {
	header http.Header
	w      io.Writer
}

func (s *streamRecorder) Header() http.Header         { return s.header }
func (s *streamRecorder) WriteHeader(int)             {}
func (s *streamRecorder) Write(p []byte) (int, error) { return s.w.Write(p) }
func (s *streamRecorder) Flush()                      {}

func TestFlightRecordEndpoint(t *testing.T) {
	rec := telemetry.New()
	flight := telemetry.NewFlightRecorder(rec, 16)
	s := New(rec, WithFlightRecorder(flight))

	rec.StartSpan("before").End()
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/debug/flightrecord", nil)
	req.Header.Set("X-Trace-Id", "aaaabbbbccccdddd")
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var d telemetry.FlightDump
	if err := json.Unmarshal(rr.Body.Bytes(), &d); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if d.Schema != telemetry.FlightDumpSchema || d.Reason != "manual" {
		t.Fatalf("dump header = %q/%q", d.Schema, d.Reason)
	}
	if len(d.Spans) == 0 || d.Spans[0].Name != "before" {
		t.Fatalf("dump spans = %+v", d.Spans)
	}
	// The dump request itself becomes a span carrying the header trace ID.
	found := false
	for _, ev := range flight.RecentSpans(0) {
		if ev.Name == "live.flightrecord" && ev.TraceID == "aaaabbbbccccdddd" {
			found = true
		}
	}
	if !found {
		t.Fatal("flightrecord span with X-Trace-Id not recorded")
	}

	if rr := get(s, http.MethodGet, "/debug/flightrecord"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET → %d", rr.Code)
	}
	if rr := get(New(telemetry.New()), http.MethodPost, "/debug/flightrecord"); rr.Code != http.StatusNotFound {
		t.Fatalf("no recorder → %d", rr.Code)
	}
}

func TestIndexAndVars(t *testing.T) {
	s := New(telemetry.New())
	rr := get(s, http.MethodGet, "/")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "/metrics") {
		t.Fatalf("index = %d %q", rr.Code, rr.Body.String())
	}
	if rr := get(s, http.MethodGet, "/nope"); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown path → %d", rr.Code)
	}
	rr = get(s, http.MethodGet, "/debug/vars")
	var doc struct {
		Goroutines int                `json:"goroutines"`
		Telemetry  telemetry.Snapshot `json:"telemetry"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("vars not JSON: %v", err)
	}
	if doc.Goroutines <= 0 || doc.Telemetry.Schema == "" {
		t.Fatalf("vars doc = %+v", doc)
	}
	if rr := get(s, http.MethodGet, "/debug/pprof/cmdline"); rr.Code != http.StatusOK {
		t.Fatalf("pprof cmdline → %d", rr.Code)
	}
}

func TestStartShutdownLifecycle(t *testing.T) {
	rec := telemetry.New()
	s := New(rec)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Skipf("cannot bind localhost in this environment: %v", err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatal("Addr empty after Start")
	}
	if err := s.Start(addr); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("double Start = %v", err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP = %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
}

func TestFeedDropOnSlowSubscriber(t *testing.T) {
	f := newSpanFeed()
	id, ch := f.subscribe(2)
	for i := 0; i < 10; i++ {
		f.publish(telemetry.SpanEvent{Name: fmt.Sprintf("e%d", i)})
	}
	// Only the buffer's worth arrives; the rest were dropped, not blocked on.
	if len(ch) != 2 {
		t.Fatalf("buffered %d, want 2", len(ch))
	}
	f.unsubscribe(id)
	if _, ok := <-ch; ok {
		// one queued event is fine; drain until close
		for range ch {
		}
	}
	f.close()
	if id2, ch2 := f.subscribe(1); id2 != -1 {
		t.Fatal("subscribe after close must refuse")
	} else if _, ok := <-ch2; ok {
		t.Fatal("post-close channel must be closed")
	}
}
