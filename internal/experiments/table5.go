package experiments

import (
	"io"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
	"gofmm/internal/sched"
)

// Table5 reproduces Table 5 (#27–#46): GOFMM across "architectures". The
// paper's four platforms map to worker-pool configurations (see DESIGN.md):
//
//	ARM   → 1 plain worker (a small, slow node)
//	CPU   → 4 homogeneous workers
//	CPU+GPU → 4 workers + 1 fat accelerator worker (8× speed estimate,
//	          4 nested slots, batches of 8, no stealing — §2.3's device)
//	KNL   → 8 thin workers (many-core, weaker per-core)
//
// Rows report ε₂, compression and evaluation time, and achieved GFLOPS, so
// the paper's observation — GEMM-heavy tasks (L2L) belong on the fat
// worker, small-rank tasks (N2S/S2N) on plain cores — can be read off the
// scheduling outcome.
func Table5(w io.Writer, n int, seed int64) []Result {
	archs := []struct {
		name  string
		specs []sched.WorkerSpec
	}{
		{"ARM-like", sched.Homogeneous(1)},
		{"CPU", sched.Homogeneous(4)},
		{"CPU+ACC", append(sched.Homogeneous(4),
			sched.WorkerSpec{Speed: 8, Slots: 4, Batch: 8, NoSteal: true, Accelerator: true})},
		{"KNL-like", sched.Homogeneous(8)},
	}
	cases := []struct {
		prob    string
		m, s, r int
		budget  float64
	}{
		{"MNIST", 128, 64, 64, 0.05},
		{"COVTYPE", 128, 128, 128, 0.12},
		{"HIGGS", 128, 64, 128, 0.003},
		{"K02", 128, 128, 128, 0.03},
		{"K15", 128, 128, 128, 0.10},
		{"G03", 64, 128, 128, 0.03},
		{"G04", 128, 128, 128, 0.03},
	}
	header(w, "case", "arch", "eps2", "compress(s)", "GFs", "eval(s)", "GFs", "L2L@acc")
	var out []Result
	for _, c := range cases {
		p := GetProblem(c.prob, n, seed)
		for _, a := range archs {
			cfg := core.Config{
				LeafSize: c.m, MaxRank: c.s, Tol: 1e-5, Kappa: 32,
				Budget: c.budget, Distance: core.Angle, Exec: core.Dynamic,
				WorkerSpecs: a.specs, CacheBlocks: true, Seed: seed,
				CaptureTrace: a.name == "CPU+ACC",
			}
			res, placed := runTraced(p, cfg, c.r, seed)
			res.Experiment = "table5"
			res.Scheme = a.name
			out = append(out, res)
			cell(w, "%s", c.prob)
			cell(w, "%s", a.name)
			cell(w, "%.1e", res.Eps)
			cell(w, "%.3f", res.CompressS)
			cell(w, "%.2f", res.CompressGF)
			cell(w, "%.4f", res.EvalS)
			cell(w, "%.2f", res.EvalGF)
			if a.name == "CPU+ACC" {
				cell(w, "%.0f%%", 100*placed)
			} else {
				cell(w, "%s", "-")
			}
			endRow(w)
		}
	}
	return out
}

// runTraced runs the workload and, when tracing is on, reports the fraction
// of L2L tasks placed on accelerator workers — the paper's #45 observation
// ("we enforce our scheduler to schedule L2L tasks to the GPU").
func runTraced(p Problem, cfg core.Config, r int, seed int64) (Result, float64) {
	if !cfg.CaptureTrace {
		return Run(p, cfg, r, seed), 0
	}
	if cfg.Points == nil {
		cfg.Points = p.Points
	}
	h, err := core.Compress(p.K, cfg)
	if err != nil {
		panic(err)
	}
	res := Run(p, cfg, r, seed) // timing row from a clean run
	// Placement from a traced evaluation of the same compression.
	W := linalg.GaussianMatrix(randNew(seed), p.K.Dim(), r)
	h.Matvec(W)
	accel := map[int]bool{}
	for wIdx, spec := range cfg.WorkerSpecs {
		if spec.Accelerator {
			accel[wIdx] = true
		}
	}
	l2l, on := 0, 0
	for _, ev := range h.LastTrace {
		if len(ev.Task.Label) >= 3 && ev.Task.Label[:3] == "L2L" {
			l2l++
			if accel[ev.Worker] {
				on++
			}
		}
	}
	if l2l == 0 {
		return res, 0
	}
	return res, float64(on) / float64(l2l)
}
