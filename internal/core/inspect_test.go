package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"gofmm/internal/linalg"
)

func TestCountingSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	K := linalg.RandomSPD(rng, 20, 10)
	c := NewCounting(denseSPD{K})
	if c.Dim() != 20 {
		t.Fatal("Dim wrong")
	}
	if c.At(3, 4) != K.At(3, 4) {
		t.Fatal("At forwards wrong value")
	}
	dst := linalg.NewMatrix(2, 3)
	c.Submatrix([]int{0, 1}, []int{2, 3, 4}, dst)
	if dst.At(1, 2) != K.At(1, 4) {
		t.Fatal("Submatrix forwards wrong value")
	}
	if c.Count() != 1+6 {
		t.Fatalf("count = %d, want 7", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("reset failed")
	}
}

// TestCompressionTouchesSubquadraticEntries verifies the headline
// complexity claim: compression touches O(N log N) matrix entries, not
// O(N²). Doubling N must grow the count by far less than 4×.
func TestCompressionTouchesSubquadraticEntries(t *testing.T) {
	counts := map[int]float64{}
	for _, n := range []int{512, 1024, 2048} {
		rng := rand.New(rand.NewSource(111))
		X := linalg.GaussianMatrix(rng, 3, n)
		Kd, _ := gaussKernelMatrix(rng, n, 0.8)
		_ = X
		c := NewCounting(denseSPD{Kd})
		_, err := Compress(c, Config{
			LeafSize: 64, MaxRank: 32, Tol: 1e-4, Kappa: 8, Budget: 0.05,
			Distance: Kernel, Exec: Sequential, Seed: 5, CacheBlocks: true,
			SampleRows: 96, ANNIters: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		counts[n] = float64(c.Count())
		// At small N the per-leaf constants dominate, so only the largest
		// size must already be clearly below N².
		if n >= 2048 && counts[n] >= 0.75*float64(n)*float64(n) {
			t.Fatalf("N=%d: compression touched %g ≈ N² entries", n, counts[n])
		}
	}
	r1 := counts[1024] / counts[512]
	r2 := counts[2048] / counts[1024]
	if r1 > 3.2 || r2 > 3.2 {
		t.Fatalf("entry counts grow too fast: 512→1024 ×%.2f, 1024→2048 ×%.2f (quadratic would be ×4)", r1, r2)
	}
}

// TestCompressionRatioImprovesWithN: the compressed form needs O(N log N)
// storage, so its fraction of the dense 8N² must drop as N grows.
func TestCompressionRatioImprovesWithN(t *testing.T) {
	ratio := map[int]float64{}
	for _, n := range []int{512, 2048} {
		rng := rand.New(rand.NewSource(112))
		Kd, _ := gaussKernelMatrix(rng, n, 0.8)
		h, err := Compress(denseSPD{Kd}, Config{
			LeafSize: 64, MaxRank: 32, Tol: 1e-4, Kappa: 8, Budget: 0.05,
			Distance: Kernel, Exec: Sequential, Seed: 6, CacheBlocks: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ratio[n] = h.CompressionRatio()
		if h.CompressedBytes() <= 0 {
			t.Fatal("no bytes accounted")
		}
	}
	if ratio[2048] >= ratio[512] {
		t.Fatalf("compression ratio did not improve with N: %v", ratio)
	}
	if ratio[2048] > 0.5 {
		t.Fatalf("N=2048 still needs %.0f%% of dense storage", 100*ratio[2048])
	}
}

func TestStructureStringHSS(t *testing.T) {
	// Budget 0 on 4 leaves: diagonal '#', siblings 'b' (level-2 pairs),
	// cousins 'a' (level-1 pair).
	h, _ := compressGauss(t, 128, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-3, Kappa: 4, Budget: 0,
		Distance: Kernel, Exec: Sequential, Seed: 9,
	})
	got := strings.TrimSpace(h.StructureString())
	want := strings.TrimSpace(`
#baa
b#aa
aa#b
aab#`)
	if got != want {
		t.Fatalf("structure =\n%s\nwant\n%s", got, want)
	}
}

func TestStructureStringCoversEverything(t *testing.T) {
	h, _ := compressGauss(t, 256, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-3, Kappa: 8, Budget: 0.3,
		Distance: Kernel, Exec: Sequential, Seed: 10,
	})
	s := h.StructureString()
	if strings.ContainsRune(s, '.') {
		t.Fatalf("uncovered blocks in structure:\n%s", s)
	}
	// Diagonal must be dense.
	rows := strings.Split(strings.TrimSpace(s), "\n")
	for i, row := range rows {
		if row[i] != '#' {
			t.Fatalf("diagonal block %d not dense:\n%s", i, s)
		}
	}
}

func TestStructureSymmetric(t *testing.T) {
	h, _ := compressGauss(t, 256, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-3, Kappa: 8, Budget: 0.2,
		Distance: Angle, Exec: Sequential, Seed: 11,
	})
	rows := strings.Split(strings.TrimSpace(h.StructureString()), "\n")
	for i := range rows {
		for j := range rows {
			if rows[i][j] != rows[j][i] {
				t.Fatalf("structure not symmetric at (%d,%d):\n%s", i, j, h.StructureString())
			}
		}
	}
	if math.IsNaN(h.Stats.AvgRank) {
		t.Fatal("stats NaN")
	}
}

// TestNearEntriesExactInCompressedOperator checks a sharp structural
// invariant: entries (i, j) whose leaves are near each other are represented
// *exactly* in K̃ (they live in D or S, never in UV).
func TestNearEntriesExactInCompressedOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	n := 200
	Kd, _ := gaussKernelMatrix(rng, n, 0.8)
	h, err := Compress(denseSPD{Kd}, Config{
		LeafSize: 16, MaxRank: 8, Tol: 1e-2, Kappa: 8, Budget: 0.2,
		Distance: Kernel, Exec: Sequential, Seed: 12, CacheBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// K̃'s columns via identity matvec (small n).
	Kt := h.Matvec(linalg.Eye(n))
	tr := h.Tree
	for j := 0; j < n; j += 13 {
		leafJ := tr.LeafOfIndex(j)
		for _, alpha := range h.NearList(leafJ) {
			for _, i := range tr.Indices(alpha) {
				if math.Abs(Kt.At(i, j)-Kd.At(i, j)) > 1e-12 {
					t.Fatalf("near entry (%d,%d) not exact: %g vs %g",
						i, j, Kt.At(i, j), Kd.At(i, j))
				}
			}
		}
	}
}

func TestEvalGraphDOT(t *testing.T) {
	h, _ := compressGauss(t, 128, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-3, Kappa: 4, Budget: 0,
		Distance: Kernel, Exec: Sequential, Seed: 13,
	})
	var sb strings.Builder
	if err := h.EvalGraphDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph tasks", "N2S(", "S2S(", "S2N(", "L2L("} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q", want)
		}
	}
	// The DAG must contain at least one edge per interior node.
	if strings.Count(out, "->") < 6 {
		t.Fatalf("suspiciously few edges:\n%s", out)
	}
}
