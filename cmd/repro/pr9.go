package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/experiments"
	"gofmm/internal/linalg"
	"gofmm/internal/telemetry"
	"gofmm/internal/workspace"
)

// pr9Bench measures the PR 9 on-disk operator store: the time from a cold
// start to the first served matvec, compressing from the oracle versus
// mmap-loading a previously saved store file. The headline gate metric is
// store_x_speedup (the mmap load must reach its first matvec ≥10× faster
// than Compress+CompilePlan), with store_mapped confirming the arena was
// actually mapped (no copy at load) and store_allocs_per_op confirming the
// loaded operator's steady state allocates no more than the in-memory plan
// replay it is byte-for-byte equivalent to.
func pr9Bench(w io.Writer, n int, seed int64, rec *telemetry.Recorder) *telemetry.RunRecord {
	rr := telemetry.NewRunRecord("pr9")
	rr.Params["n"] = n
	rr.Params["seed"] = seed

	p := experiments.GetProblem("K02", n, seed)
	// The serving-shaped regime from pr8Bench: leaf 64, f32 cached blocks,
	// compiled plan — the configuration a store file exists to persist.
	cfg := core.Config{
		LeafSize: 64, MaxRank: 64, Tol: 1e-5, Kappa: 32, Budget: 0.03,
		Distance: core.Angle, Exec: core.Dynamic, NumWorkers: 4, Seed: seed,
		CacheBlocks: true, CacheSingle: true, Workspace: workspace.New(), Telemetry: rec,
	}
	dim := p.K.Dim()
	rng := rand.New(rand.NewSource(seed))
	W := linalg.GaussianMatrix(rng, dim, 1)
	ctx := context.Background()

	// Cold start A: oracle → compressed operator → compiled plan → first
	// matvec. This is what a restarting daemon pays without a store file.
	t0 := time.Now()
	h, err := core.CompressCtx(ctx, p.K, cfg)
	if err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	if _, err := h.CompilePlanCtx(ctx); err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	want, err := h.MatvecCtx(ctx, W)
	if err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	compressPath := time.Since(t0)
	rr.Metrics["compress_to_first_matvec_ms"] = compressPath.Seconds() * 1e3

	dir, err := os.MkdirTemp("", "gofmm-pr9-")
	if err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "pr9.store")
	t0 = time.Now()
	nb, err := h.SaveTo(path)
	if err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	rr.Metrics["save_ms"] = time.Since(t0).Seconds() * 1e3
	rr.Metrics["store_bytes"] = float64(nb)

	// Cold start B: store file → mapped operator → first matvec. The load
	// verifies section checksums, rebuilds the tree and reassembles the
	// plan, but moves no arena bytes: the blocks serve straight from the
	// page cache (warm here — the file was just written — matching a
	// daemon restart, the scenario the store exists for).
	t0 = time.Now()
	h2, info, err := core.LoadFrom(path, core.LoadOptions{Mmap: true, NumWorkers: 4, Telemetry: rec})
	if err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	got, err := h2.MatvecCtx(ctx, W)
	if err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	storePath := time.Since(t0)
	rr.Metrics["store_to_first_matvec_ms"] = storePath.Seconds() * 1e3
	rr.Metrics["store_mapped"] = 0
	if info.Mapped {
		rr.Metrics["store_mapped"] = 1
	}
	speedup := compressPath.Seconds() / storePath.Seconds()
	rr.Metrics["store_x_speedup"] = speedup
	identical := 0.0
	if linalg.EqualApprox(want, got, 0) {
		identical = 1
	}
	rr.Metrics["bit_identical"] = identical

	fmt.Fprintf(w, "cold start to first matvec at n=%d:\n", dim)
	fmt.Fprintf(w, "  compress+compile  %10.1f ms\n", compressPath.Seconds()*1e3)
	fmt.Fprintf(w, "  mmap load         %10.1f ms   (%d-byte store, mapped=%v)\n",
		storePath.Seconds()*1e3, nb, info.Mapped)
	fmt.Fprintf(w, "  speedup           %10.1fx   (bit-identical result: %v)\n",
		speedup, identical == 1)

	// Cold start C (reference only): the portable read path — same
	// validation, arena copied instead of mapped.
	t0 = time.Now()
	h3, info3, err := core.LoadFrom(path, core.LoadOptions{Mmap: false, NumWorkers: 4})
	if err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	if _, err := h3.MatvecCtx(ctx, W); err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	portablePath := time.Since(t0)
	rr.Metrics["portable_to_first_matvec_ms"] = portablePath.Seconds() * 1e3
	fmt.Fprintf(w, "  portable load     %10.1f ms   (mapped=%v)\n",
		portablePath.Seconds()*1e3, info3.Mapped)
	if err := h3.ReleaseStore(); err != nil {
		fmt.Fprintln(w, err)
	}

	// Steady state: the mapped operator must allocate no more per matvec
	// than the in-memory plan replay — zero arena copies means the only
	// allocations left are the output matrix and replay scratch, which the
	// two share exactly.
	allocsPer := func(h *core.Hierarchical, loops int) float64 {
		if _, err := h.MatvecCtx(ctx, W); err != nil { // warm pools outside the window
			panic(err)
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < loops; i++ {
			if _, err := h.MatvecCtx(ctx, W); err != nil {
				panic(err)
			}
		}
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs-m0.Mallocs) / float64(loops)
	}
	planAllocs := allocsPer(h, 32)
	storeAllocs := allocsPer(h2, 32)
	rr.Metrics["plan_allocs_per_op"] = planAllocs
	rr.Metrics["store_allocs_per_op"] = storeAllocs
	fmt.Fprintf(w, "allocs/op at r=1: in-memory replay %.1f, mapped store %.1f\n",
		planAllocs, storeAllocs)

	if err := h2.ReleaseStore(); err != nil {
		fmt.Fprintln(w, err)
	}
	return rr
}
