//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// OpenMmap maps a store file read-only and validates it in place. The
// returned File's sections are views into the shared mapping: loading costs
// one page-table setup plus the checksum pass (which doubles as page-cache
// warmup), and the float arenas are served zero-copy until Close unmaps.
// Validation failures unmap before returning, so an error never leaks a
// mapping.
func OpenMmap(path string) (*File, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, fmt.Errorf("%w: %d-byte file is shorter than the %d-byte header",
			ErrBadStore, size, headerSize)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("%w: %d bytes exceeds the address space", ErrBadStore, size)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	f, err := Decode(data)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, err
	}
	f.mapped = true
	return f, nil
}

// unmap releases the mapping backing a mapped File.
func (f *File) unmap() error {
	data := f.data
	f.data = nil
	f.sections = nil
	return syscall.Munmap(data)
}
