package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FlightRecorder keeps a bounded in-memory ring of the most recent span
// completions and errors so that when a run panics, stalls or deadlocks
// there is a post-mortem to read: the crash funnel (Recorder.ReportCrash)
// records the error and — when a dump directory is configured — writes the
// whole ring plus a metrics snapshot to disk as JSON. The live debug server
// also dumps on demand (POST /debug/flightrecord) and replays the ring on
// GET /debug/spans?replay=N.
//
// The recorder is cheap enough to leave on: recording a span is one mutex
// acquisition and a slot write, no allocation beyond the event itself.
type FlightRecorder struct {
	rec *Recorder

	// The rings and dump bookkeeping below are all guarded by mu.
	mu      sync.Mutex
	spans   []SpanEvent   // guarded by mu (circular, len == cap once full)
	next    int           // guarded by mu (next slot to overwrite)
	wrapped bool          // guarded by mu
	errs    []FlightError // guarded by mu (circular, same discipline)
	errNext int           // guarded by mu
	errWrap bool          // guarded by mu
	dumpDir string        // guarded by mu
	dumpSeq int           // guarded by mu
}

// flightErrKeep bounds the error ring (errors are rarer and more precious
// than spans, so the bound is fixed rather than configurable).
const flightErrKeep = 64

// FlightError is one recorded failure: a recovered panic, a stall-watchdog
// fire, a provable deadlock, or anything else routed through ReportCrash.
type FlightError struct {
	Label     string  `json:"label"`
	TraceID   string  `json:"trace_id,omitempty"`
	Error     string  `json:"error"`
	AtSeconds float64 `json:"at_seconds"`
}

// FlightDumpSchema identifies the flight-recorder dump JSON layout.
const FlightDumpSchema = "gofmm.flight/v1"

// FlightDump is the serialized post-mortem: the span and error rings
// (oldest first) plus a full metrics snapshot taken at dump time.
type FlightDump struct {
	Schema string `json:"schema"`
	// Reason labels what triggered the dump ("panic", "manual", ...).
	Reason  string        `json:"reason,omitempty"`
	Spans   []SpanEvent   `json:"spans,omitempty"`
	Errors  []FlightError `json:"errors,omitempty"`
	Metrics Snapshot      `json:"metrics"`
}

// NewFlightRecorder creates a flight recorder retaining the last n span
// completions (n < 16 is raised to 16), subscribes it to the recorder's
// span-end feed, and attaches it so ReportCrash reaches it. Returns nil on
// a nil recorder — like every telemetry handle, a nil *FlightRecorder is a
// valid no-op.
func NewFlightRecorder(rec *Recorder, n int) *FlightRecorder {
	if rec == nil {
		return nil
	}
	if n < 16 {
		n = 16
	}
	f := &FlightRecorder{
		rec:   rec,
		spans: make([]SpanEvent, n),
		errs:  make([]FlightError, flightErrKeep),
	}
	rec.OnSpanEnd(f.recordSpan)
	rec.attachFlight(f)
	return f
}

// SetDumpDir enables automatic crash dumps into dir (created on first
// dump). Empty disables. Nil-safe.
func (f *FlightRecorder) SetDumpDir(dir string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.dumpDir = dir
	f.mu.Unlock()
}

// recordSpan appends a completed span to the ring (the OnSpanEnd observer).
func (f *FlightRecorder) recordSpan(ev SpanEvent) {
	f.mu.Lock()
	f.spans[f.next] = ev
	f.next++
	if f.next == len(f.spans) {
		f.next = 0
		f.wrapped = true
	}
	f.mu.Unlock()
}

// RecordError appends a failure to the error ring. Nil-safe.
func (f *FlightRecorder) RecordError(label, traceID string, err error) {
	if f == nil || err == nil {
		return
	}
	fe := FlightError{
		Label:     label,
		TraceID:   traceID,
		Error:     err.Error(),
		AtSeconds: f.rec.Since().Seconds(),
	}
	f.mu.Lock()
	f.errs[f.errNext] = fe
	f.errNext++
	if f.errNext == len(f.errs) {
		f.errNext = 0
		f.errWrap = true
	}
	f.mu.Unlock()
}

// RecentSpans returns up to n of the most recent span completions, oldest
// first (all of them when n ≤ 0). Nil-safe.
func (f *FlightRecorder) RecentSpans(n int) []SpanEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	all := ringSlice(f.spans, f.next, f.wrapped)
	f.mu.Unlock()
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// Errors returns the recorded failures, oldest first. Nil-safe.
func (f *FlightRecorder) Errors() []FlightError {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return ringSlice(f.errs, f.errNext, f.errWrap)
}

// ringSlice linearizes a circular buffer into oldest-first order.
func ringSlice[T any](ring []T, next int, wrapped bool) []T {
	if !wrapped {
		return append([]T(nil), ring[:next]...)
	}
	out := make([]T, 0, len(ring))
	out = append(out, ring[next:]...)
	return append(out, ring[:next]...)
}

// Dump assembles the current post-mortem. Reason labels the trigger.
// Nil-safe (returns a schema-tagged empty dump).
func (f *FlightRecorder) Dump(reason string) FlightDump {
	d := FlightDump{Schema: FlightDumpSchema, Reason: reason}
	if f == nil {
		d.Metrics = (*Recorder)(nil).Snapshot()
		return d
	}
	d.Spans = f.RecentSpans(0)
	d.Errors = f.Errors()
	d.Metrics = f.rec.Snapshot()
	return d
}

// WriteDump writes the dump as indented JSON.
func (f *FlightRecorder) WriteDump(w io.Writer, reason string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f.Dump(reason)); err != nil {
		return fmt.Errorf("telemetry: encode flight dump: %w", err)
	}
	return nil
}

// DumpToFile writes the dump to path, creating parent directories.
func (f *FlightRecorder) DumpToFile(path, reason string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("telemetry: flight dump dir: %w", err)
	}
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: create flight dump: %w", err)
	}
	if err := f.WriteDump(file, reason); err != nil {
		file.Close()
		return err
	}
	if err := file.Close(); err != nil {
		return fmt.Errorf("telemetry: close flight dump: %w", err)
	}
	return nil
}

// autoDump writes a crash dump when a dump directory is configured. Dump
// files are numbered within the process (flight-0001.panic.json, ...) so
// successive crashes never overwrite each other. Failures to write are
// reported through the logger (never panic inside the crash path).
func (f *FlightRecorder) autoDump(reason string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	dir := f.dumpDir
	f.dumpSeq++
	seq := f.dumpSeq
	f.mu.Unlock()
	if dir == "" {
		return
	}
	name := fmt.Sprintf("flight-%04d.%s.json", seq, SanitizeMetricName(reason))
	path := filepath.Join(dir, name)
	if err := f.DumpToFile(path, reason); err != nil {
		if l := f.rec.Logger(); l != nil {
			l.Error("flight dump failed", "path", path, "err", err.Error())
		}
		return
	}
	if l := f.rec.Logger(); l != nil {
		l.Error("flight dump written", "path", path, "reason", reason)
	}
}
