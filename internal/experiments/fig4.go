package experiments

import (
	"io"

	"gofmm/internal/core"
)

// Fig4 reproduces Figure 4 (#1–#4): strong scaling of the three parallel
// schemes — the dynamic HEFT runtime ("wall-clock" in the figure),
// level-by-level traversals, and omp-task-depend-style FIFO scheduling —
// for both compression and evaluation, on a COVTYPE-like Gaussian kernel
// (12% budget, the compute-bound case #1/#2) and a K02-like operator
// (3% budget, low average rank, the memory-bound case #3/#4).
//
// On a single-core host the worker sweep measures scheduling overhead
// rather than parallel speedup; the scheme comparison (dynamic ≤
// level-by-level, dynamic ≤ FIFO) is the preserved shape.
func Fig4(w io.Writer, workers []int, n int, seed int64) []Result {
	cases := []struct {
		name   string
		prob   string
		m      int
		budget float64
	}{
		{"COVTYPE-12%", "COVTYPE", 128, 0.12},
		{"K02-3%", "K02", 128, 0.03},
	}
	schemes := []struct {
		name string
		mode core.ExecMode
	}{
		{"dynamic", core.Dynamic},
		{"level-by-level", core.LevelByLevel},
		{"taskdep", core.TaskDepend},
	}
	header(w, "case", "scheme", "workers", "compress(s)", "eval(s)", "eps2", "avg-rank")
	var out []Result
	for _, c := range cases {
		p := GetProblem(c.prob, n, seed)
		// Warm-up run: the first compression after generating a large dense
		// problem pays for page faults and GC of the generation scratch,
		// which would otherwise be misattributed to the first scheme.
		Run(p, core.Config{
			LeafSize: c.m, MaxRank: c.m, Tol: 1e-5, Kappa: 32,
			Budget: c.budget, Distance: core.Angle, Exec: core.Sequential,
			NumWorkers: 1, CacheBlocks: true, Seed: seed,
		}, 8, seed)
		for _, s := range schemes {
			for _, nw := range workers {
				res := Run(p, core.Config{
					LeafSize: c.m, MaxRank: c.m, Tol: 1e-5, Kappa: 32,
					Budget: c.budget, Distance: core.Angle, Exec: s.mode,
					NumWorkers: nw, CacheBlocks: true, Seed: seed,
				}, 64, seed)
				res.Experiment = "fig4"
				res.Case = c.name
				res.Scheme = s.name
				res.Workers = nw
				out = append(out, res)
				cell(w, "%s", c.name)
				cell(w, "%s", s.name)
				cell(w, "%d", nw)
				cell(w, "%.3f", res.CompressS)
				cell(w, "%.4f", res.EvalS)
				cell(w, "%.1e", res.Eps)
				cell(w, "%.1f", res.AvgRank)
				endRow(w)
			}
		}
	}
	return out
}
