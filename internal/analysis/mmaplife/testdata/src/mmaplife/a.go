package mmaplife

import "store"

type holder struct {
	cache []float64
	raw   []byte
}

var global []float64

func borrowIsFine(f *store.File) float64 {
	b, _ := f.Section(store.SecArena64)
	v, err := store.Float64s(b)
	if err != nil {
		return 0
	}
	return sum(v) // ok: passing a view down the stack borrows it
}

func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

func copyIsFine(b []byte) []float64 {
	v, err := store.Float64s(b)
	if err != nil {
		return nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out // ok: the copy owns its memory
}

func returnsView(b []byte) []float64 {
	v, err := store.Float64s(b)
	if err != nil {
		return nil
	}
	return v // want `returning a store view`
}

func returnsSlicedView(b []byte) []float64 {
	v, _ := store.Float64s(b)
	return v[1:3] // want `returning a store view`
}

func returnsSection(f *store.File) []byte {
	b, _ := f.Section(store.SecMeta)
	return b // want `returning a store view`
}

func storesField(h *holder, b []byte) {
	v, err := store.Float64s(b)
	if err != nil {
		return
	}
	h.cache = v // want `storing a store view into a field`
}

func storesGlobal(b []byte) {
	v, _ := store.Float64s(b)
	global = v // want `storing a store view into a package-level variable`
}

func sendsView(ch chan []float64, b []byte) {
	v, _ := store.Float64s(b)
	ch <- v // want `sending a store view over a channel`
}

func goroutineCapture(b []byte) {
	v, _ := store.Float64s(b)
	go func() {
		sum(v) // want `goroutine captures store view v`
	}()
}

func goroutineArg(b []byte) {
	v, _ := store.Float64s(b)
	go consume(v) // want `passing a store view to a goroutine`
}

func consume([]float64) {}

func compositeLit(b []byte) {
	v, _ := store.Float64s(b)
	_ = holder{cache: v} // want `building a composite literal around a store view`
}

func killOnReassign(b []byte) []float64 {
	v, _ := store.Float64s(b)
	sum(v)
	v = make([]float64, 4)
	return v // ok: reassigned to owned memory before escaping
}

func branchTaint(b []byte, useView bool) []float64 {
	var v []float64
	if useView {
		v, _ = store.Float64s(b)
	} else {
		v = make([]float64, 8)
	}
	return v // want `returning a store view`
}

func scalarLoadIsFine(b []byte) float64 {
	v, _ := store.Float64s(b)
	return v[0] // ok: a float is a copy, not a window
}
