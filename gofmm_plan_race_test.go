package gofmm

// Concurrency wall for compiled plan replays. One compiled plan serves many
// in-flight requests at once — each replay checks a private arena binding
// out of a per-width pool — so the contract under fire is: concurrent
// replays through every public entry point (MatvecCtx, MatmatCtx, and the
// coalescing BatchEvaluator) return exactly the bits a quiet same-width
// replay returns (any cross-request arena aliasing would corrupt them;
// the batch lane, whose flush width is timing-dependent and width picks
// the kernel, gets the 1e-13 cross-width tolerance instead), a
// mid-flight cancellation surfaces as a typed error without poisoning the
// shared plan, an injected replay panic stays contained to its own
// request, and the storm leaves no goroutine behind. Run with -race; the
// schedule pressure of 64 goroutines against a handful of pooled arena
// bindings is the point.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
	"gofmm/internal/plan"
)

func TestPlanConcurrentReplayStorm(t *testing.T) {
	const (
		n          = 256
		goroutines = 64
		iters      = 6
		wide       = 4
	)
	K := randomSPD(n, 909)
	cfg := Config{
		LeafSize: 32, MaxRank: 48, Tol: 1e-5, Kappa: 8, Budget: 0.05,
		Distance: core.Angle, Exec: core.Dynamic, NumWorkers: 4, Seed: 11,
		CacheBlocks: true, Workspace: NewWorkspacePool(), CompilePlan: true,
	}
	h, err := Compress(NewDense(K), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := h.Plan()
	if p == nil {
		t.Fatal("CompilePlan did not install a plan")
	}

	// Distinct per-slot inputs with golden outputs taken before the storm;
	// replay is bit-deterministic, so every concurrent result must
	// reproduce its golden exactly — one arena slice shared between two
	// in-flight requests would trip this immediately.
	rng := rand.New(rand.NewSource(14))
	inputs := make([]*Matrix, goroutines)
	golden := make([]*Matrix, goroutines)
	for g := range inputs {
		inputs[g] = linalg.GaussianMatrix(rng, n, 1)
		u, err := h.MatvecCtx(context.Background(), inputs[g])
		if err != nil {
			t.Fatal(err)
		}
		golden[g] = u
	}
	X := linalg.GaussianMatrix(rng, n, wide)
	goldenWide, err := h.MatmatCtx(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}

	// The leak baseline is read after the goldens so any lazily started
	// executor machinery is already accounted for.
	before := runtime.NumGoroutine()
	be := h.NewBatchEvaluator(BatchOptions{})

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		failures  []string
		cancelled int
	)
	fail := func(msg string) {
		mu.Lock()
		failures = append(failures, msg)
		mu.Unlock()
	}

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g == 0 {
				// The injected-panic lane: one replay of the shared plan is
				// made to blow up through the chaos hook. The panic must
				// surface on this request alone — every other lane keeps
				// verifying golden bits against the same plan object.
				var site string
				func() {
					defer func() {
						if r := recover(); r == nil {
							fail("injected replay fault did not panic")
						}
					}()
					U := linalg.NewMatrix(n, 1)
					_ = p.Execute(context.Background(), inputs[0], U, plan.ExecOptions{
						Workers: 2,
						Inject:  func(s string) bool { site = s; return true },
					})
				}()
				if site != "plan.replay" {
					fail("inject consulted site " + site)
				}
				return
			}
			for it := 0; it < iters; it++ {
				switch g % 4 {
				case 1:
					// Direct batched path through the shared plan.
					U, err := h.MatmatCtx(context.Background(), X)
					if err != nil {
						fail("MatmatCtx: " + err.Error())
						return
					}
					if !bitIdentical(U, goldenWide) {
						fail("concurrent MatmatCtx diverged from golden bits")
						return
					}
				case 2:
					// Coalescing evaluator: requests from many goroutines
					// merge into Matmat flushes, each caller gets its column.
					// Flush width depends on arrival timing, and width picks
					// the kernel (fused GEMV at 1, GEMM otherwise), so the
					// contract here is cross-width agreement to 1e-13 — a
					// cross-request arena overlap would hand this caller some
					// other request's column and miss by many orders more.
					U, err := be.Matvec(context.Background(), inputs[g])
					if err != nil {
						fail("BatchEvaluator.Matvec: " + err.Error())
						return
					}
					scale := linalg.Nrm2(golden[g].Col(0)) + 1
					if d := maxAbsDiff(U.Col(0), golden[g].Col(0)); d > 1e-13*scale {
						fail("batched replay diverged from golden beyond cross-width tolerance")
						return
					}
				case 3:
					// Mid-flight cancellation: fire the context while the
					// replay runs. Either outcome is legal — a typed
					// cancellation, or a completed (then bit-exact) result —
					// but never a wrong answer and never a poisoned plan.
					ctx, cancel := context.WithCancel(context.Background())
					go func() {
						time.Sleep(time.Duration(50+g) * time.Microsecond)
						cancel()
					}()
					U, err := h.MatvecCtx(ctx, inputs[g])
					cancel()
					if err != nil {
						if !errors.Is(err, ErrCancelled) {
							fail("cancelled replay returned wrong taxonomy: " + err.Error())
							return
						}
						mu.Lock()
						cancelled++
						mu.Unlock()
					} else if !bitIdentical(U, golden[g]) {
						fail("replay that outran cancellation diverged from golden bits")
						return
					}
				default:
					U, err := h.MatvecCtx(context.Background(), inputs[g])
					if err != nil {
						fail("MatvecCtx: " + err.Error())
						return
					}
					if !bitIdentical(U, golden[g]) {
						fail("concurrent MatvecCtx diverged from golden bits")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	be.Close()

	for _, msg := range failures {
		t.Error(msg)
	}
	t.Logf("storm done: %d goroutines × %d iters, %d replays cancelled mid-flight", goroutines, iters, cancelled)

	// After a panic, cancellations and the storm, the plan must still
	// replay the golden bits on a quiet call.
	if U, err := h.MatvecCtx(context.Background(), inputs[1]); err != nil || !bitIdentical(U, golden[1]) {
		t.Fatalf("plan poisoned by the storm (err=%v)", err)
	}

	// Zero goroutine leaks: everything the storm and the evaluator spawned
	// must wind down (allow the runtime a moment to retire them).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before storm, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
