// Package sched is the self-contained shared-memory task runtime of §2.3:
// algorithm phases are expressed as DAGs of tasks whose dependencies are
// discovered at runtime by symbolic traversals (built by the callers), and
// executed by one of three engines:
//
//   - Dynamic: the paper's in-house runtime — a HEFT (Heterogeneous Earliest
//     Finish Time) dispatcher that assigns each newly-ready task to the
//     worker queue with the smallest estimated finish time, plus work
//     stealing for when the cost model mispredicts.
//   - TaskDepend: emulates OpenMP's `omp task depend` — the same DAG but a
//     single FIFO ready queue, no cost model, no stealing.
//   - Level-by-level: the classic traversal with a barrier per tree level
//     (RunLevels), the baseline the paper improves upon.
//
// Workers are goroutines. A WorkerSpec carries a relative Speed (used only
// by the HEFT estimate), a Slots count for nested parallelism (the paper's
// "each worker can use more than one physical core ... or employ a device"),
// a Batch size (accelerators consume up to 8 tasks per dispatch), and a
// NoSteal flag (stealing is disabled for accelerator workers so the device
// never idles waiting on stolen scraps).
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gofmm/internal/resilience"
)

// ErrSelfDependency is recorded by AddDep for a task depending on itself —
// a graph that could never run. The error is also remembered on the Graph so
// RunCtx refuses to execute it even if the caller ignored the return value.
var ErrSelfDependency = errors.New("sched: self dependency")

// Ctx is passed to every task body; it identifies the executing worker so
// compute kernels can exploit nested parallelism on fat workers.
type Ctx struct {
	Worker int
	Spec   WorkerSpec
}

// Task is one schedulable unit. Create tasks through Graph.Add.
type Task struct {
	ID    int
	Label string
	Cost  float64 // estimated work, arbitrary units consistent across tasks
	Run   func(ctx *Ctx)
	// Affinity pins the task to a specific worker index (HEFT policy only;
	// -1 means any worker). Pinned tasks are never stolen — this is the
	// paper's "enforce our scheduler to schedule L2L tasks to the GPU".
	Affinity int

	succ  []*Task
	nprec int32 // remaining unfinished predecessors

	// Tracing bookkeeping (written under Engine.mu when tracing is on).
	readyAt    time.Time // when the task was dispatched to a ready queue
	stolenFrom int       // queue the task was stolen from, or -1

	// Resilience bookkeeping (written under Engine.mu).
	attempts int  // failed execution attempts so far
	done     bool // body completed successfully
}

// Graph is a DAG of tasks built by symbolic execution of an algorithm phase.
type Graph struct {
	tasks []*Task
	edges int
	err   error // first construction error (e.g. self dependency)
}

// NewGraph returns an empty DAG.
func NewGraph() *Graph { return &Graph{} }

// Add registers a task with an estimated cost and body and returns it.
func (g *Graph) Add(label string, cost float64, run func(ctx *Ctx)) *Task {
	t := &Task{ID: len(g.tasks), Label: label, Cost: cost, Run: run, Affinity: -1, stolenFrom: -1}
	g.tasks = append(g.tasks, t)
	return t
}

// AddDep records that after cannot start until before finishes (a RAW edge
// in the paper's data-flow analysis). Duplicate edges are permitted and
// counted; self-edges are rejected with ErrSelfDependency, which is also
// remembered on the graph so a later Run refuses to execute it.
func (g *Graph) AddDep(before, after *Task) error {
	if before == nil || after == nil {
		err := fmt.Errorf("%w: nil task", ErrSelfDependency)
		if g.err == nil {
			g.err = err
		}
		return err
	}
	if before == after {
		err := fmt.Errorf("%w: task %q", ErrSelfDependency, after.Label)
		if g.err == nil {
			g.err = err
		}
		return err
	}
	before.succ = append(before.succ, after)
	atomic.AddInt32(&after.nprec, 1)
	g.edges++
	return nil
}

// Err returns the first construction error recorded on the graph, if any.
func (g *Graph) Err() error { return g.err }

// Size returns the number of tasks; Edges the number of dependency edges.
func (g *Graph) Size() int  { return len(g.tasks) }
func (g *Graph) Edges() int { return g.edges }

// WorkerSpec describes one worker of a (possibly heterogeneous) pool.
type WorkerSpec struct {
	// Speed is the relative throughput used by the HEFT finish-time
	// estimate; 1 is a baseline CPU core.
	Speed float64
	// Slots is the nested parallelism available to task bodies (≥ 1).
	Slots int
	// Batch is how many ready tasks the worker consumes per dispatch
	// (accelerators use up to 8 to amortize launch latency).
	Batch int
	// NoSteal disables work stealing for this worker.
	NoSteal bool
	// Accelerator marks the worker as a throughput device; callers use it
	// to pin GEMM-heavy tasks (see Task.Affinity).
	Accelerator bool
}

// DefaultWorker is a plain CPU worker.
var DefaultWorker = WorkerSpec{Speed: 1, Slots: 1, Batch: 1}

// Homogeneous returns p identical CPU workers.
func Homogeneous(p int) []WorkerSpec {
	specs := make([]WorkerSpec, p)
	for i := range specs {
		specs[i] = DefaultWorker
	}
	return specs
}

// Policy selects the dispatch strategy of Engine.
type Policy int

const (
	// HEFT assigns ready tasks to the worker with the earliest estimated
	// finish time and enables work stealing (the paper's dynamic runtime).
	HEFT Policy = iota
	// FIFO uses a single shared ready queue with no cost model and no
	// stealing (the `omp task depend` emulation).
	FIFO
)

func (p Policy) String() string {
	switch p {
	case HEFT:
		return "heft"
	case FIFO:
		return "fifo"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Engine executes task graphs over a worker pool.
type Engine struct {
	specs  []WorkerSpec
	policy Policy

	mu      sync.Mutex
	cond    *sync.Cond
	queues  [][]*Task // guarded by mu (per-worker for HEFT; queues[0] shared for FIFO)
	backlog []float64 // guarded by mu (estimated queued work per worker, HEFT)
	pending int       // guarded by mu (tasks not yet finished)

	// Resilience state.
	curGraph    *Graph // guarded by mu
	running     int    // guarded by mu (tasks currently inside exec)
	completions int64  // guarded by mu (tasks finished this Run; watchdog progress signal)
	retries     int64  // guarded by mu (failed attempts redelivered this Run)
	cancelled   bool   // guarded by mu (stop dispatching; workers drain and exit)
	runErr      error  // guarded by mu (first fatal error of the Run)

	// Resilience configuration (set before Run).
	failTask       func(label string) bool     // fault-injection hook (may be nil)
	maxTaskRetries int                         // redeliveries per task (default 8)
	stallTimeout   time.Duration               // watchdog; 0 disables
	logger         atomic.Pointer[slog.Logger] // health-event sink (may be empty)

	// trace support
	traceOn  bool
	clock    int64
	trace    []Event
	runStart time.Time
	runWall  time.Duration
	maxDepth int // deepest ready queue observed during the Run
}

// Event records one task execution for tests and the tracing tools.
type Event struct {
	Task   *Task
	Worker int
	Start  int64         // logical clock at dequeue
	End    int64         // logical clock at completion
	Dur    time.Duration // wall-clock execution time of the task body
	// WallStart is the wall-clock offset of the task body's start relative
	// to the Run's start (so traces from one Run share a time base).
	WallStart time.Duration
	// QueueWait is how long the task sat on a ready queue between becoming
	// ready (all predecessors done) and starting execution.
	QueueWait time.Duration
	// StolenFrom is the worker whose queue the task was stolen from, or -1
	// when the task ran on the worker it was dispatched to.
	StolenFrom int
}

// NewEngine builds an engine over the given worker pool.
func NewEngine(policy Policy, specs []WorkerSpec) *Engine {
	if len(specs) == 0 {
		specs = Homogeneous(1)
	}
	for i := range specs {
		if specs[i].Speed <= 0 {
			specs[i].Speed = 1
		}
		if specs[i].Slots < 1 {
			specs[i].Slots = 1
		}
		if specs[i].Batch < 1 {
			specs[i].Batch = 1
		}
	}
	e := &Engine{specs: specs, policy: policy, maxTaskRetries: 8}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// EnableTrace turns on event recording (Run resets the trace).
func (e *Engine) EnableTrace() { e.traceOn = true }

// SetFaultInjector installs a chaos hook consulted before every task
// execution attempt; returning true fails the attempt (the engine
// redelivers the task, up to the retry budget). Pass nil to disable.
func (e *Engine) SetFaultInjector(f func(label string) bool) { e.failTask = f }

// SetMaxTaskRetries bounds redeliveries per task (n ≤ 0 restores the
// default of 8).
func (e *Engine) SetMaxTaskRetries(n int) {
	if n <= 0 {
		n = 8
	}
	e.maxTaskRetries = n
}

// SetStallTimeout arms the watchdog: if no task completes for d while work
// remains, RunCtx gives up and returns ErrStalled with the stuck frontier.
// Zero disables the timer (provable deadlocks are still detected instantly).
func (e *Engine) SetStallTimeout(d time.Duration) { e.stallTimeout = d }

// SetLogger attaches a structured logger for scheduler health events —
// stall-watchdog fires and provable deadlocks at Error, chaos-injected
// retry redeliveries at Warn. Pass nil to detach; nothing is logged while
// no logger is set. Safe to call concurrently with a Run.
func (e *Engine) SetLogger(l *slog.Logger) { e.logger.Store(l) }

// Retries returns the number of failed task attempts redelivered during the
// last Run.
func (e *Engine) Retries() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.retries
}

// Trace returns the events of the last Run.
func (e *Engine) Trace() []Event { return e.trace }

// Workers returns the pool size.
func (e *Engine) Workers() int { return len(e.specs) }

// Run executes every task of g respecting dependencies, blocking until all
// finish. A Graph can only be run once (its dependency counters are
// consumed). Run is the legacy uncancellable entry point; it panics on the
// errors RunCtx would return (invalid graph, unrecovered task failure) —
// prefer RunCtx.
func (e *Engine) Run(g *Graph) {
	if err := e.RunCtx(context.Background(), g); err != nil {
		panic(err)
	}
}

// RunCtx executes every task of g respecting dependencies, blocking until
// all finish, the context is cancelled, or execution fails. Worker panics
// are recovered into *resilience.PanicError; injected task failures are
// redelivered up to the retry budget and surface as ErrTaskFailed when it
// is exhausted; a DAG that can make no progress (dependency cycle) is
// detected immediately and a hung task body is caught by the stall-timeout
// watchdog, both reported as ErrStalled with the stuck frontier. On
// cancellation, queued tasks are abandoned and running bodies are allowed
// to finish. A Graph can only be run once (its dependency counters are
// consumed).
func (e *Engine) RunCtx(ctx context.Context, g *Graph) error {
	if g.err != nil {
		return g.err
	}
	nq := len(e.specs)
	if e.policy == FIFO {
		nq = 1
	}
	e.mu.Lock()
	e.queues = make([][]*Task, nq)
	e.backlog = make([]float64, nq)
	e.pending = len(g.tasks)
	e.curGraph = g
	e.running = 0
	e.completions = 0
	e.retries = 0
	e.cancelled = false
	e.runErr = nil
	e.trace = nil
	e.clock = 0
	e.runStart = time.Now()
	e.runWall = 0
	e.maxDepth = 0
	// Seed the queues with the initially-ready tasks.
	for _, t := range g.tasks {
		if atomic.LoadInt32(&t.nprec) == 0 {
			e.dispatchLocked(t)
		}
	}
	e.mu.Unlock()
	if len(g.tasks) == 0 {
		return nil
	}
	var wg sync.WaitGroup
	wg.Add(len(e.specs))
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	stop := make(chan struct{})
	defer close(stop)
	// Cancellation watcher: flips the cancelled flag so sleeping workers
	// wake up and drain.
	go func() {
		select {
		case <-ctx.Done():
			e.abort(resilience.FromContext(ctx))
		case <-stop:
		}
	}()
	// Stall watchdog: fires when no task completes for stallTimeout while
	// work remains (a hung task body — running workers cannot be interrupted,
	// so RunCtx abandons them and reports the stuck frontier).
	var stalled chan struct{}
	if e.stallTimeout > 0 {
		stalled = make(chan struct{})
		go e.watchdog(stalled, stop)
	}
	// Workers spawn last so they are first in line for the scheduler (on a
	// single P the last-spawned goroutine runs next — keep that a worker,
	// not a watcher, so heterogeneous pools start the way they always have).
	for w := range e.specs {
		go func(w int) {
			defer wg.Done()
			e.worker(w)
		}(w)
	}
	if stalled != nil {
		select {
		case <-done:
		case <-stalled:
		}
	} else {
		<-done
	}
	e.mu.Lock()
	e.runWall = time.Since(e.runStart)
	err := e.runErr
	e.mu.Unlock()
	return err
}

// abort records the first fatal error, stops dispatch and wakes the pool.
func (e *Engine) abort(err error) {
	e.mu.Lock()
	if e.runErr == nil {
		e.runErr = err
	}
	e.cancelled = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// watchdog monitors completion progress and closes fired when the Run makes
// none for stallTimeout while tasks remain.
func (e *Engine) watchdog(fired, stop chan struct{}) {
	period := e.stallTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	lastSeen := int64(-1)
	lastProgress := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		e.mu.Lock()
		comp, pending := e.completions, e.pending
		if pending == 0 || e.cancelled {
			e.mu.Unlock()
			return
		}
		if comp != lastSeen {
			lastSeen = comp
			lastProgress = time.Now()
			e.mu.Unlock()
			continue
		}
		if time.Since(lastProgress) < e.stallTimeout {
			e.mu.Unlock()
			continue
		}
		frontier := e.frontierLocked()
		if e.runErr == nil {
			e.runErr = fmt.Errorf("%w: no task completed in %v; stuck frontier: %s",
				resilience.ErrStalled, e.stallTimeout, frontier)
		}
		e.cancelled = true
		e.cond.Broadcast()
		e.mu.Unlock()
		if l := e.logger.Load(); l != nil {
			l.Error("sched stall watchdog fired",
				"timeout", e.stallTimeout.String(), "frontier", frontier)
		}
		close(fired)
		return
	}
}

// frontierLocked describes the unfinished tasks blocking progress: running
// and ready tasks first, then blocked ones with their open-predecessor
// counts.
// called with e.mu held.
func (e *Engine) frontierLocked() string {
	if e.curGraph == nil {
		return "(unknown)"
	}
	var active, blocked []string
	for _, t := range e.curGraph.tasks {
		if t.done {
			continue
		}
		if n := atomic.LoadInt32(&t.nprec); n > 0 {
			blocked = append(blocked, fmt.Sprintf("%s(+%d deps)", t.Label, n))
		} else {
			active = append(active, t.Label)
		}
	}
	sort.Strings(active)
	sort.Strings(blocked)
	const maxShown = 8
	out := append(active, blocked...)
	suffix := ""
	if len(out) > maxShown {
		suffix = fmt.Sprintf(" … and %d more", len(out)-maxShown)
		out = out[:maxShown]
	}
	return strings.Join(out, ", ") + suffix
}

// dispatchLocked places a ready task on a queue according to the policy.
// called with e.mu held.
func (e *Engine) dispatchLocked(t *Task) {
	if e.traceOn {
		t.readyAt = time.Now()
	}
	q := 0
	if e.policy == HEFT && t.Affinity >= 0 && t.Affinity < len(e.queues) {
		q = t.Affinity
		e.enqueueLocked(q, t)
		return
	}
	if e.policy == HEFT {
		// Earliest estimated finish time: backlog divided by speed.
		best := e.backlog[0] / e.specs[0].Speed
		for w := 1; w < len(e.queues); w++ {
			if est := e.backlog[w] / e.specs[w].Speed; est < best {
				best, q = est, w
			}
		}
	}
	e.enqueueLocked(q, t)
}

// enqueueLocked appends t to queue q and wakes the pool.
// called with e.mu held.
func (e *Engine) enqueueLocked(q int, t *Task) {
	e.queues[q] = append(e.queues[q], t)
	e.backlog[q] += t.Cost
	if d := len(e.queues[q]); d > e.maxDepth {
		e.maxDepth = d
	}
	e.cond.Broadcast()
}

// worker is the main loop of worker w.
func (e *Engine) worker(w int) {
	spec := e.specs[w]
	own := w
	if e.policy == FIFO {
		own = 0
	}
	batch := make([]*Task, 0, spec.Batch)
	for {
		e.mu.Lock()
		for {
			if e.cancelled {
				e.mu.Unlock()
				return
			}
			if len(e.queues[own]) > 0 {
				n := min(spec.Batch, len(e.queues[own]))
				batch = append(batch[:0], e.queues[own][:n]...)
				e.queues[own] = e.queues[own][n:]
				for _, t := range batch {
					e.backlog[own] -= t.Cost
				}
				e.running += len(batch)
				break
			}
			if e.policy == HEFT && !spec.NoSteal {
				if t := e.stealLocked(own); t != nil {
					batch = append(batch[:0], t)
					e.running++
					break
				}
			}
			if e.pending == 0 {
				e.mu.Unlock()
				return
			}
			// Provable deadlock: nothing queued anywhere, nothing running,
			// yet tasks remain — their predecessors can never finish (a
			// dependency cycle or a corrupted counter). Report the frontier
			// instead of sleeping forever.
			if e.running == 0 && e.allQueuesEmptyLocked() {
				first := e.runErr == nil
				var frontier string
				pending := e.pending
				if first {
					frontier = e.frontierLocked()
					e.runErr = fmt.Errorf("%w: %d tasks can never become ready; stuck frontier: %s",
						resilience.ErrStalled, pending, frontier)
				}
				e.cancelled = true
				e.cond.Broadcast()
				e.mu.Unlock()
				if l := e.logger.Load(); first && l != nil {
					l.Error("sched provable deadlock",
						"pending", pending, "frontier", frontier)
				}
				return
			}
			e.cond.Wait()
		}
		e.mu.Unlock()
		for _, t := range batch {
			e.exec(w, spec, t)
		}
	}
}

// allQueuesEmptyLocked reports whether every ready queue is empty. Caller
// holds e.mu.
func (e *Engine) allQueuesEmptyLocked() bool {
	for _, q := range e.queues {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// stealLocked takes one task from the back of the most-loaded other queue.
// called with e.mu held.
func (e *Engine) stealLocked(self int) *Task {
	victim, best := -1, 0.0
	for w := range e.queues {
		if w == self || len(e.queues[w]) == 0 {
			continue
		}
		if e.backlog[w] > best {
			best, victim = e.backlog[w], w
		}
	}
	if victim < 0 {
		return nil
	}
	q := e.queues[victim]
	t := q[len(q)-1]
	if t.Affinity >= 0 {
		return nil // pinned tasks stay on their worker
	}
	e.queues[victim] = q[:len(q)-1]
	e.backlog[victim] -= t.Cost
	t.stolenFrom = victim
	return t
}

// exec runs one task and releases its successors. Injected failures are
// redelivered up to the retry budget; panics in the task body are recovered
// into a typed error that aborts the Run.
func (e *Engine) exec(w int, spec WorkerSpec, t *Task) {
	e.mu.Lock()
	if e.cancelled {
		e.running--
		e.mu.Unlock()
		return
	}
	// Fault injection (chaos hook): fail this attempt before the body runs,
	// so redelivery is clean.
	if e.failTask != nil && e.failTask(t.Label) {
		if t.attempts < e.maxTaskRetries {
			t.attempts++
			e.retries++
			attempt := t.attempts
			e.running--
			e.dispatchLocked(t)
			e.mu.Unlock()
			if l := e.logger.Load(); l != nil {
				l.Warn("task attempt failed; redelivered",
					"task", t.Label, "attempt", attempt, "max", e.maxTaskRetries)
			}
			return
		}
		attempts := t.attempts + 1
		if e.runErr == nil {
			e.runErr = fmt.Errorf("%w: task %q failed %d attempts",
				resilience.ErrTaskFailed, t.Label, attempts)
		}
		e.cancelled = true
		e.running--
		e.cond.Broadcast()
		e.mu.Unlock()
		if l := e.logger.Load(); l != nil {
			l.Error("task failed permanently; retry budget exhausted",
				"task", t.Label, "attempts", attempts)
		}
		return
	}
	e.mu.Unlock()

	var start int64
	var wall time.Time
	if e.traceOn {
		start = atomic.AddInt64(&e.clock, 1)
		wall = time.Now()
	}
	ctx := &Ctx{Worker: w, Spec: spec}
	perr := runRecovered(t, ctx)
	e.mu.Lock()
	e.running--
	if perr != nil {
		if e.runErr == nil {
			e.runErr = perr
		}
		e.cancelled = true
		e.cond.Broadcast()
		e.mu.Unlock()
		return
	}
	if e.traceOn {
		end := atomic.AddInt64(&e.clock, 1)
		e.trace = append(e.trace, Event{
			Task: t, Worker: w, Start: start, End: end, Dur: time.Since(wall),
			WallStart:  wall.Sub(e.runStart),
			QueueWait:  wall.Sub(t.readyAt),
			StolenFrom: t.stolenFrom,
		})
	}
	t.done = true
	e.completions++
	for _, s := range t.succ {
		if atomic.AddInt32(&s.nprec, -1) == 0 {
			e.dispatchLocked(s)
		}
	}
	e.pending--
	if e.pending == 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// runRecovered executes the task body, converting a panic into a typed
// *resilience.PanicError carrying the label and stack.
func runRecovered(t *Task, ctx *Ctx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &resilience.PanicError{Label: t.Label, Value: r, Stack: debug.Stack()}
		}
	}()
	t.Run(ctx)
	return nil
}

// Utilization summarizes the last traced Run: per-worker busy wall-clock
// time (the basis for the strong-scaling analysis of Figure 4).
func (e *Engine) Utilization() []time.Duration {
	busy := make([]time.Duration, len(e.specs))
	for _, ev := range e.trace {
		busy[ev.Worker] += ev.Dur
	}
	return busy
}

// Summary condenses the last traced Run into the scheduler health numbers
// the strong-scaling analysis needs: wall time, per-worker utilization,
// steal count, queue-wait totals and a critical-path estimate (the longest
// dependency chain weighted by measured body times — the lower bound no
// schedule can beat).
type Summary struct {
	Workers int
	Tasks   int
	// Wall is the wall-clock duration of the Run; Busy is per-worker time
	// spent inside task bodies.
	Wall time.Duration
	Busy []time.Duration
	// Utilization is sum(Busy) / (Wall × Workers) ∈ [0, 1].
	Utilization float64
	// Steals counts tasks executed by a worker other than the one HEFT
	// dispatched them to.
	Steals int
	// Retries counts failed task attempts that were redelivered (nonzero
	// only under fault injection).
	Retries int64
	// TotalQueueWait sums the ready-to-execution latency over all tasks.
	TotalQueueWait time.Duration
	// MaxQueueDepth is the deepest any ready queue got during the Run.
	MaxQueueDepth int
	// CriticalPath is the longest chain of dependent task body times.
	CriticalPath time.Duration
}

// Summary computes the summary of the last traced Run (zero-valued apart
// from Workers when tracing was off).
func (e *Engine) Summary() Summary {
	s := Summary{Workers: len(e.specs), Tasks: len(e.trace), Wall: e.runWall,
		Busy: e.Utilization(), MaxQueueDepth: e.maxDepth, Retries: e.retries}
	if len(e.trace) == 0 {
		return s
	}
	var busyTotal time.Duration
	for _, b := range s.Busy {
		busyTotal += b
	}
	if e.runWall > 0 {
		s.Utilization = float64(busyTotal) / (float64(e.runWall) * float64(len(e.specs)))
	}
	dur := make(map[*Task]time.Duration, len(e.trace))
	for _, ev := range e.trace {
		dur[ev.Task] = ev.Dur
		s.TotalQueueWait += ev.QueueWait
		if ev.StolenFrom >= 0 {
			s.Steals++
		}
	}
	// Longest path over the RAW edges, memoized (the graph is a DAG).
	memo := make(map[*Task]time.Duration, len(dur))
	var chain func(t *Task) time.Duration
	chain = func(t *Task) time.Duration {
		if d, ok := memo[t]; ok {
			return d
		}
		var best time.Duration
		for _, succ := range t.succ {
			if d := chain(succ); d > best {
				best = d
			}
		}
		d := dur[t] + best
		memo[t] = d
		return d
	}
	for t := range dur {
		if d := chain(t); d > s.CriticalPath {
			s.CriticalPath = d
		}
	}
	return s
}

// WriteTraceCSV dumps the last traced Run as CSV for offline timeline
// analysis. The leading comment line documents the units of every column.
func (e *Engine) WriteTraceCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# gofmm task trace: start/end are logical-clock ticks (dimensionless, ordered); wait_ns and exec_ns are wall-clock nanoseconds; stolen_from is the victim worker index or -1"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "task,worker,start,end,wait_ns,exec_ns,stolen_from"); err != nil {
		return err
	}
	for _, ev := range e.trace {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d\n",
			ev.Task.Label, ev.Worker, ev.Start, ev.End,
			ev.QueueWait.Nanoseconds(), ev.Dur.Nanoseconds(), ev.StolenFrom); err != nil {
			return err
		}
	}
	return nil
}

// RunLevels executes batches of independent closures with a barrier after
// each batch — the level-by-level traversal baseline. Within a batch the
// closures run on up to p goroutines (dynamic self-scheduling, like
// `omp parallel for schedule(dynamic)`).
func RunLevels(levels [][]func(), p int) {
	if err := RunLevelsCtx(context.Background(), levels, p); err != nil {
		panic(err)
	}
}

// RunLevelsCtx is RunLevels with cancellation and panic safety: the context
// is checked at each barrier and before each closure (pending closures of the
// current batch are abandoned on cancellation, running ones finish), and a
// closure panic is recovered into a *resilience.PanicError that aborts the
// traversal after the current batch drains.
func RunLevelsCtx(ctx context.Context, levels [][]func(), p int) error {
	if p < 1 {
		p = 1
	}
	for _, batch := range levels {
		if err := resilience.FromContext(ctx); err != nil {
			return err
		}
		if err := runBatch(ctx, batch, p); err != nil {
			return err
		}
	}
	return nil
}

func runBatch(ctx context.Context, batch []func(), p int) error {
	if len(batch) == 0 {
		return nil
	}
	if p == 1 || len(batch) == 1 {
		for i, f := range batch {
			if err := resilience.FromContext(ctx); err != nil {
				return err
			}
			if err := recovered(i, f); err != nil {
				return err
			}
		}
		return nil
	}
	var next int64 = -1
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	workers := min(p, len(batch))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				if err := resilience.FromContext(ctx); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(batch) {
					return
				}
				if err := recovered(i, batch[i]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// recovered runs one level closure, converting a panic into a typed error.
func recovered(i int, f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &resilience.PanicError{
				Label: fmt.Sprintf("level-closure(%d)", i),
				Value: r, Stack: debug.Stack(),
			}
		}
	}()
	f()
	return nil
}

// WriteDOT renders the dependency DAG in Graphviz DOT format — the
// Figure 3 picture of the paper, generated from the actual symbolic
// traversal rather than drawn by hand. Tasks are labeled and edges are the
// RAW dependencies.
func (g *Graph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph tasks {"); err != nil {
		return err
	}
	for _, t := range g.tasks {
		if _, err := fmt.Fprintf(w, "  t%d [label=%q];\n", t.ID, t.Label); err != nil {
			return err
		}
	}
	for _, t := range g.tasks {
		for _, s := range t.succ {
			if _, err := fmt.Fprintf(w, "  t%d -> t%d;\n", t.ID, s.ID); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
