package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/experiments"
	"gofmm/internal/linalg"
	"gofmm/internal/telemetry"
	"gofmm/internal/workspace"
)

// pr8Bench measures the PR 8 compiled evaluation plans: steady-state
// Matvec/Matmat through the flat replayable schedule versus the tree
// interpreter on the same compressed operator and configuration. The
// headline gate metrics are plan_x_speedup_r1 (compiled single-vector
// Matvec must deliver ≥2× the interpreter's throughput) and
// plan_allocs_per_op ≤ interp_allocs_per_op (replay must not allocate more
// than the tree walk it replaces). The record also reports how close the
// replay gets to raw GEMM throughput (gemm_fraction_r16). Best-of-R
// wall-clock, same rationale as pr3Bench.
func pr8Bench(w io.Writer, n int, seed int64, rec *telemetry.Recorder) *telemetry.RunRecord {
	rr := telemetry.NewRunRecord("pr8")
	rr.Params["n"] = n
	rr.Params["seed"] = seed

	p := experiments.GetProblem("K02", n, seed)
	// Leaf 64 with single-precision cached blocks is the serving-shaped
	// regime: the operator's working set at n=8192 (~35 MB of blocks in
	// f64) no longer fits cache, so the replay's advantage is decided by
	// bytes moved and per-block dispatch — exactly what the compiled plan
	// (f32 blocks + fused 8-column GEMV kernels + no tree walk) optimizes.
	cfg := core.Config{
		LeafSize: 64, MaxRank: 64, Tol: 1e-5, Kappa: 32, Budget: 0.03,
		Distance: core.Angle, Exec: core.Dynamic, NumWorkers: 4, Seed: seed,
		CacheBlocks: true, CacheSingle: true, Workspace: workspace.New(), Telemetry: rec,
	}
	h, err := core.Compress(p.K, cfg)
	if err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	dim := p.K.Dim()
	rng := rand.New(rand.NewSource(seed))

	pl, err := h.CompilePlan()
	if err != nil {
		fmt.Fprintln(w, err)
		return rr
	}
	rr.Metrics["compile_ms"] = h.Stats.PlanTime * 1e3
	rr.Metrics["plan_ops"] = float64(pl.NumOps())
	rr.Metrics["plan_stages"] = float64(pl.NumStages())
	rr.Metrics["plan_tasks"] = float64(pl.NumTasks())
	rr.Metrics["plan_batched_gemms"] = float64(pl.BatchedGemms())
	rr.Metrics["plan_gemm_batches"] = float64(pl.GemmBatches())
	fmt.Fprintf(w, "compiled %s in %.1f ms\n", pl, h.Stats.PlanTime*1e3)

	best := func(reps int, f func()) time.Duration {
		f() // warm up caches, workspace pool and replay state
		b := time.Duration(1 << 62)
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); d < b {
				b = d
			}
		}
		return b
	}
	allocsPer := func(loops int, f func()) float64 {
		f() // warm pools outside the window
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < loops; i++ {
			f()
		}
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs-m0.Mallocs) / float64(loops)
	}
	mustEval := func(f func() (*linalg.Matrix, error)) {
		if _, err := f(); err != nil {
			panic(err)
		}
	}

	fmt.Fprintf(w, "%-4s %12s %12s %9s\n", "r", "interp ms", "plan ms", "speedup")
	for _, r := range []int{1, 16} {
		W := linalg.GaussianMatrix(rng, dim, r)
		interp := best(5, func() {
			mustEval(func() (*linalg.Matrix, error) { return h.InterpMatmatCtx(context.Background(), W) })
		})
		plan := best(5, func() {
			mustEval(func() (*linalg.Matrix, error) { return h.MatmatCtx(context.Background(), W) })
		})
		speedup := interp.Seconds() / plan.Seconds()
		rr.Metrics[fmt.Sprintf("interp_ms_r%d", r)] = interp.Seconds() * 1e3
		rr.Metrics[fmt.Sprintf("plan_ms_r%d", r)] = plan.Seconds() * 1e3
		rr.Metrics[fmt.Sprintf("plan_x_speedup_r%d", r)] = speedup
		fmt.Fprintf(w, "%-4d %12.2f %12.2f %8.2fx\n", r, interp.Seconds()*1e3, plan.Seconds()*1e3, speedup)
		if r == 16 {
			gflops := pl.FlopsPerCol() * 16 / plan.Seconds() / 1e9
			rr.Metrics["plan_gflops_r16"] = gflops
			fmt.Fprintf(w, "replay throughput at r=16: %.1f GFLOPS\n", gflops)
		}
	}

	// Allocation discipline: a steady-state replay may allocate the output
	// matrix and little else; the gate requires it never exceeds the
	// interpreter it replaces.
	W1 := linalg.GaussianMatrix(rng, dim, 1)
	interpAllocs := allocsPer(32, func() {
		mustEval(func() (*linalg.Matrix, error) { return h.InterpMatvecCtx(context.Background(), W1) })
	})
	planAllocs := allocsPer(32, func() {
		mustEval(func() (*linalg.Matrix, error) { return h.MatvecCtx(context.Background(), W1) })
	})
	rr.Metrics["interp_allocs_per_op"] = interpAllocs
	rr.Metrics["plan_allocs_per_op"] = planAllocs
	fmt.Fprintf(w, "allocs/op at r=1: interpreter %.1f, plan %.1f\n", interpAllocs, planAllocs)

	// Raw GEMM yardstick: one plan-op-shaped dense multiply (64×64
	// constant against a 64×16 operand, the modal near/far block shape at
	// leaf 64) at the same per-call granularity the replay dispatches.
	A := linalg.GaussianMatrix(rng, 64, 64)
	B := linalg.GaussianMatrix(rng, 64, 16)
	C := linalg.NewMatrix(64, 16)
	const gemmLoop = 2048
	gemmBest := best(5, func() {
		for i := 0; i < gemmLoop; i++ {
			linalg.Gemm(false, false, 1, A, B, 0, C)
		}
	})
	gemmGflops := gemmLoop * 2.0 * 64 * 64 * 16 / gemmBest.Seconds() / 1e9
	rr.Metrics["gemm_gflops"] = gemmGflops
	if g, ok := rr.Metrics["plan_gflops_r16"]; ok && gemmGflops > 0 {
		rr.Metrics["gemm_fraction_r16"] = g / gemmGflops
		fmt.Fprintf(w, "raw GEMM %.1f GFLOPS; replay reaches %.0f%% of it\n",
			gemmGflops, 100*g/gemmGflops)
	}
	return rr
}
