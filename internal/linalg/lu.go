package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when LU factorization meets an (exactly) zero
// pivot column.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU is an LU factorization with partial pivoting: P·A = L·U. It backs the
// small dense solves of the hierarchical (ULV-style) solver, whose reduced
// systems are square but not symmetric.
type LU struct {
	// Fact stores L below the diagonal (unit diagonal implied) and U on and
	// above it.
	Fact *Matrix
	// Piv[k] records the row swapped into position k at step k.
	Piv []int
}

// LUFactor computes the factorization of a square matrix (A is not
// modified).
func LUFactor(A *Matrix) (*LU, error) {
	n := A.Rows
	if A.Cols != n {
		panic("linalg: LUFactor of non-square matrix")
	}
	f := &LU{Fact: A.Clone(), Piv: make([]int, n)}
	w := f.Fact
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at or below row k.
		ck := w.Col(k)
		p, best := k, math.Abs(ck[k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(ck[i]); a > best {
				best, p = a, i
			}
		}
		f.Piv[k] = p
		if best == 0 {
			return nil, fmt.Errorf("%w (column %d)", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				cj := w.Col(j)
				cj[k], cj[p] = cj[p], cj[k]
			}
		}
		pivot := ck[k]
		Scal(1/pivot, ck[k+1:])
		// Trailing update: A[k+1:, j] -= L[k+1:, k] * U[k, j].
		lcol := ck[k+1:]
		for j := k + 1; j < n; j++ {
			cj := w.Col(j)
			Axpy(-cj[k], lcol, cj[k+1:])
		}
	}
	return f, nil
}

// Solve overwrites B with A⁻¹·B.
func (f *LU) Solve(B *Matrix) {
	n := f.Fact.Rows
	if B.Rows != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	// Apply the row permutation.
	for k := 0; k < n; k++ {
		if p := f.Piv[k]; p != k {
			for j := 0; j < B.Cols; j++ {
				cj := B.Col(j)
				cj[k], cj[p] = cj[p], cj[k]
			}
		}
	}
	// Forward substitution with unit lower triangle, then back substitution.
	for j := 0; j < B.Cols; j++ {
		x := B.Col(j)
		for k := 0; k < n; k++ {
			lk := f.Fact.Col(k)
			Axpy(-x[k], lk[k+1:n], x[k+1:n])
		}
		for k := n - 1; k >= 0; k-- {
			uk := f.Fact.Col(k)
			x[k] /= uk[k]
			Axpy(-x[k], uk[:k], x[:k])
		}
	}
}

// LogAbsDet returns log|det(A)| and the sign of the determinant, from the
// triangular factor and the pivot parity.
func (f *LU) LogAbsDet() (logAbs float64, sign float64) {
	n := f.Fact.Rows
	sign = 1
	for k := 0; k < n; k++ {
		if f.Piv[k] != k {
			sign = -sign
		}
		d := f.Fact.At(k, k)
		if d < 0 {
			sign = -sign
			d = -d
		}
		logAbs += math.Log(d)
	}
	return logAbs, sign
}
