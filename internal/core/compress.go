package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sync/atomic"
	"time"

	"gofmm/internal/ann"
	"gofmm/internal/metric"
	"gofmm/internal/resilience"
	"gofmm/internal/sched"
	"gofmm/internal/telemetry"
	"gofmm/internal/tree"
)

// ErrNeedPoints is returned when the geometric distance is requested without
// coordinates.
var ErrNeedPoints = errors.New("core: geometric distance requires Config.Points")

// ErrBadOracle is returned when spot checks of the entry oracle find
// non-finite values or gross asymmetry — failure modes that would otherwise
// surface as silent garbage deep inside the factorizations.
var ErrBadOracle = errors.New("core: entry oracle returned non-finite or asymmetric values")

// validateOracle spot-checks a handful of entries for NaN/Inf and symmetry.
func validateOracle(K SPD, seed int64) error {
	n := K.Dim()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 16; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		a, b := K.At(i, j), K.At(j, i)
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("%w: K[%d,%d] = %v", ErrBadOracle, i, j, a)
		}
		if diff := math.Abs(a - b); diff > 1e-8*(1+math.Abs(a)) {
			return fmt.Errorf("%w: K[%d,%d]=%g vs K[%d,%d]=%g", ErrBadOracle, i, j, a, j, i, b)
		}
		d := K.At(i, i)
		if math.IsNaN(d) || d < 0 {
			return fmt.Errorf("%w: diagonal K[%d,%d] = %v", ErrBadOracle, i, i, d)
		}
	}
	return nil
}

// poisonedSPD injects oracle faults: with probability OraclePoison a given
// entry reads as NaN. The decision is a pure hash of (seed, i, j), so a
// poisoned entry is poisoned on every read — the model is a corrupted value
// in the backing store, not a flaky wire. It deliberately does not implement
// Bulk so every gathered entry passes through the fault check.
type poisonedSPD struct {
	K     SPD
	chaos *resilience.Chaos
}

func (p *poisonedSPD) Dim() int { return p.K.Dim() }

func (p *poisonedSPD) At(i, j int) float64 {
	if v, ok := p.chaos.PoisonOracle(fmt.Sprintf("K[%d,%d]", i, j)); ok {
		return v
	}
	return p.K.At(i, j)
}

// Compress builds the hierarchical approximation K̃ of K following
// Algorithm 2.2. The returned Hierarchical supports fast matvecs via
// Matvec/Evaluate.
func Compress(K SPD, cfg Config) (*Hierarchical, error) {
	return CompressCtx(context.Background(), K, cfg)
}

// CompressCtx is Compress with cancellation: the context is checked between
// pipeline phases, the Dynamic/TaskDepend executors abort mid-phase, and all
// failures — including worker panics, injected task-failure exhaustion and
// strict-mode tolerance misses — surface as typed errors rather than panics.
func CompressCtx(ctx context.Context, K SPD, cfg Config) (h *Hierarchical, err error) {
	// Backstop: no panic escapes the public entry point.
	defer func() {
		if r := recover(); r != nil {
			h, err = nil, &resilience.PanicError{Label: "compress", Value: r, Stack: debug.Stack()}
		}
	}()
	if K == nil {
		return nil, fmt.Errorf("%w: core: nil matrix", resilience.ErrInvalidInput)
	}
	n := K.Dim()
	if n == 0 {
		return nil, fmt.Errorf("%w: core: empty matrix", resilience.ErrInvalidInput)
	}
	cfg = cfg.withDefaults(n)
	if cfg.Distance == Geometric {
		if cfg.Points == nil {
			return nil, ErrNeedPoints
		}
		if cfg.Points.Cols != n {
			return nil, fmt.Errorf("%w: core: %d points for a %d-dim matrix",
				resilience.ErrInvalidInput, cfg.Points.Cols, n)
		}
	}
	if cfg.Chaos != nil && cfg.Chaos.Config().OraclePoison > 0 {
		K = &poisonedSPD{K: K, chaos: cfg.Chaos}
	}
	if err := validateOracle(K, cfg.Seed); err != nil {
		return nil, err
	}
	if err := resilience.FromContext(ctx); err != nil {
		return nil, err
	}
	rec := cfg.Telemetry
	// With a recorder attached, every oracle access from here on (ANN
	// distances, tree splits, sampling, caching) is counted.
	K = newTracedSPD(K, rec)
	h = &Hierarchical{K: K, Cfg: cfg}
	start := time.Now()
	root := rec.StartSpan("compress")

	// Steps 1–3: iterative randomized-tree neighbor search.
	var space metric.Space
	switch cfg.Distance {
	case Angle:
		space = metric.AngleSpace{K: K}
	case Kernel:
		space = metric.KernelSpace{K: K}
	case Geometric:
		space = metric.GeometricSpace{X: cfg.Points}
	}
	if cfg.Distance.HasNeighbors() {
		p := startPhase(root, "ann")
		h.Neighbors = ann.Search(n, cfg.Kappa, space, ann.Options{
			LeafSize:     cfg.LeafSize,
			MaxIters:     cfg.ANNIters,
			Seed:         cfg.Seed,
			RecallTarget: cfg.ANNRecall,
			Workers:      cfg.workerCount(),
		})
		h.Stats.ANNTime = p.End()
	}

	if err := resilience.FromContext(ctx); err != nil {
		root.End()
		return nil, err
	}

	// Step 4: metric ball tree (SPLI tasks in a preorder traversal).
	p := startPhase(root, "tree")
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var split tree.Splitter
	switch cfg.Distance {
	case Lexicographic:
		split = tree.EvenSplit{}
	case RandomPerm:
		split = metric.RandomSplit{Rng: rng}
	default:
		split = &metric.BallSplit{Space: space, Rng: rng}
	}
	h.Tree = tree.Build(n, cfg.LeafSize, split)
	h.nodes = make([]node, len(h.Tree.Nodes))
	h.Stats.TreeTime = p.End()

	// Steps 5–7: near and far interaction lists.
	p = startPhase(root, "lists")
	h.buildNearLists()
	h.buildFarLists()
	h.Stats.ListsTime = p.End()

	if err := resilience.FromContext(ctx); err != nil {
		root.End()
		return nil, err
	}

	// Steps 8–9 (and optionally 10–11): skeletonization, coefficients,
	// caching — per the configured executor.
	p = startPhase(root, "skel")
	skelErr := h.skeletonize(ctx, p.sp)
	h.Stats.SkelTime = p.End()
	if skelErr == nil {
		skelErr = h.toleranceErr()
	}
	if skelErr != nil {
		root.End()
		return nil, skelErr
	}
	if cfg.CacheBlocks {
		p = startPhase(root, "cache")
		cacheErr := h.runCaching(ctx)
		h.Stats.CacheTime = p.End()
		if cacheErr != nil {
			root.End()
			return nil, cacheErr
		}
	}
	if cfg.CompilePlan {
		if _, perr := h.CompilePlanCtx(ctx); perr != nil {
			root.End()
			return nil, perr
		}
	}

	if d := root.End(); d > 0 {
		h.Stats.CompressTime = d.Seconds()
	} else {
		h.Stats.CompressTime = time.Since(start).Seconds()
	}
	h.Stats.CompressFlops = float64(atomic.LoadInt64(&h.compressFlops))
	h.finishStats()
	return h, nil
}

// compressFlops / evalFlops are atomic flop counters (units: flops).
func (h *Hierarchical) addCompressFlops(f float64) {
	atomic.AddInt64(&h.compressFlops, int64(f))
}

func (h *Hierarchical) addEvalFlops(f float64) {
	atomic.AddInt64(&h.evalFlops, int64(f))
}

// nodeRng returns a deterministic per-node RNG so results do not depend on
// task execution order.
func (h *Hierarchical) nodeRng(id int) *rand.Rand {
	return rand.New(rand.NewSource(h.Cfg.Seed ^ (0x9e3779b9 * int64(id+7))))
}

// skeletonize dispatches SKEL/COEF over all non-root nodes with the
// configured executor. sp is the enclosing "skel" phase span (nil when
// telemetry is off); the executors hang per-level or per-task-kind child
// spans off it. Every executor propagates cancellation and recovers task
// panics into typed errors.
func (h *Hierarchical) skeletonize(ctx context.Context, sp *telemetry.Span) error {
	t := h.Tree
	if len(t.Nodes) == 1 {
		return nil // single leaf: K̃ = K, no off-diagonal blocks
	}
	works := make([]*skelWork, len(t.Nodes))
	switch h.Cfg.Exec {
	case Sequential:
		var serr error
		t.PostOrder(func(nd *tree.Node) {
			if serr != nil || nd.ID == 0 {
				return
			}
			if serr = resilience.FromContext(ctx); serr != nil {
				return
			}
			works[nd.ID] = h.skelNode(nd.ID, h.nodeRng(nd.ID))
			h.coefNode(nd.ID, works[nd.ID])
		})
		return serr

	case LevelByLevel:
		p := h.Cfg.workerCount()
		levels := t.LevelNodes()
		// SKEL bottom-up with barriers; running one RunLevels call per level
		// is equivalent (RunLevels already barriers after each batch) and
		// lets each level carry its own span.
		for l := t.Depth; l >= 1; l-- {
			batch := make([]func(), 0, len(levels[l]))
			for _, id := range levels[l] {
				id := id
				batch = append(batch, func() { works[id] = h.skelNode(id, h.nodeRng(id)) })
			}
			lp := sp.StartSpan(fmt.Sprintf("SKEL.level.%02d", l))
			err := sched.RunLevelsCtx(ctx, [][]func(){batch}, p)
			lp.End()
			if err != nil {
				return err
			}
		}
		// COEF is an "any order" task: one big dynamic batch.
		coefBatch := make([]func(), 0, len(t.Nodes)-1)
		for id := 1; id < len(t.Nodes); id++ {
			id := id
			coefBatch = append(coefBatch, func() { h.coefNode(id, works[id]) })
		}
		cp := sp.StartSpan("COEF")
		err := sched.RunLevelsCtx(ctx, [][]func(){coefBatch}, p)
		cp.End()
		return err

	case Dynamic, TaskDepend:
		g := sched.NewGraph()
		skelTasks := make([]*sched.Task, len(t.Nodes))
		m := float64(h.Cfg.LeafSize)
		s := float64(h.Cfg.MaxRank)
		for id := len(t.Nodes) - 1; id >= 1; id-- {
			id := id
			skelTasks[id] = g.Add(fmt.Sprintf("SKEL(%d)", id), 2*s*s*s+2*m*m*m, func(*sched.Ctx) {
				works[id] = h.skelNode(id, h.nodeRng(id))
			})
			coef := g.Add(fmt.Sprintf("COEF(%d)", id), s*s*s, func(*sched.Ctx) {
				h.coefNode(id, works[id])
			})
			g.AddDep(skelTasks[id], coef)
		}
		// SKEL(α) needs the children's skeletons.
		for id := 1; id < len(t.Nodes); id++ {
			if !t.IsLeaf(id) {
				g.AddDep(skelTasks[t.Left(id)], skelTasks[id])
				g.AddDep(skelTasks[t.Right(id)], skelTasks[id])
			}
		}
		if err := g.Err(); err != nil {
			return err
		}
		policy := sched.HEFT
		if h.Cfg.Exec == TaskDepend {
			policy = sched.FIFO
		}
		eng := h.Cfg.engine(policy)
		rec := h.Cfg.Telemetry
		if h.Cfg.CaptureTrace || rec != nil {
			eng.EnableTrace()
		}
		if c := h.Cfg.Chaos; c != nil && c.Config().TaskFail > 0 {
			eng.SetFaultInjector(c.TaskFail)
		}
		if h.Cfg.StallTimeout > 0 {
			eng.SetStallTimeout(h.Cfg.StallTimeout)
		}
		runStart := rec.Since()
		err := eng.RunCtx(ctx, g)
		if n := eng.Retries(); n > 0 && rec != nil {
			rec.Counter("sched.task_retries").Add(n)
		}
		if h.Cfg.CaptureTrace || rec != nil {
			h.LastTrace = eng.Trace()
		}
		exportEngineTrace(rec, sp, "sched.compress", eng, runStart)
		return err
	}
	return nil
}

// runCaching executes the Kba and SKba tasks (any order).
func (h *Hierarchical) runCaching(ctx context.Context) error {
	t := h.Tree
	var batch []func()
	for _, beta := range t.Leaves() {
		beta := beta
		batch = append(batch, func() { h.cacheNearBlock(beta) })
	}
	for id := 1; id < len(t.Nodes); id++ {
		id := id
		if len(h.nodes[id].far) > 0 {
			batch = append(batch, func() { h.cacheFarBlock(id) })
		}
	}
	return sched.RunLevelsCtx(ctx, [][]func(){batch}, h.Cfg.workerCount())
}

// finishStats derives the summary statistics.
func (h *Hierarchical) finishStats() {
	t := h.Tree
	totalRank, cnt := 0, 0
	for id := 1; id < len(t.Nodes); id++ {
		totalRank += len(h.nodes[id].skel)
		cnt++
		if h.nodes[id].denseFallback {
			h.Stats.DenseFallbacks++
		}
	}
	if cnt > 0 {
		h.Stats.AvgRank = float64(totalRank) / float64(cnt)
	}
	var direct float64
	n := float64(h.K.Dim())
	for _, beta := range t.Leaves() {
		bs := float64(t.Nodes[beta].Size())
		for _, alpha := range h.nodes[beta].near {
			direct += bs * float64(t.Nodes[alpha].Size())
		}
	}
	h.Stats.DirectFrac = direct / (n * n)
	if rec := h.Cfg.Telemetry; rec != nil {
		rec.Counter("compress.flops").Add(int64(h.Stats.CompressFlops))
		rec.Gauge("compress.avg_rank").Set(h.Stats.AvgRank)
		rec.Gauge("compress.direct_frac").Set(h.Stats.DirectFrac)
		rec.Gauge("compress.max_near").Set(float64(h.Stats.MaxNear))
		rec.Gauge("compress.dense_fallbacks").Set(float64(h.Stats.DenseFallbacks))
	}
}
