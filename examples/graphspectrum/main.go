// Graph spectrum estimation through geometry-oblivious compression: G03 is
// the inverse of a (shifted) graph Laplacian — a dense SPD matrix with *no
// point coordinates*, the case that motivates GOFMM. Subspace (block power)
// iteration over the compressed matvec recovers the dominant eigenvalues of
// (L+σI)⁻¹, i.e. the smallest eigenvalues of the Laplacian, which govern
// diffusion and clustering on the graph.
//
//	go run ./examples/graphspectrum [-n 1024]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"gofmm"
	"gofmm/testmat"
)

// blockPower runs subspace iteration with the given matvec and returns the
// top-k Ritz values.
func blockPower(apply func(*gofmm.Matrix) *gofmm.Matrix, n, k, iters int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	Q := gofmm.NewMatrix(n, k)
	for j := 0; j < k; j++ {
		col := Q.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	orthonormalize(Q)
	for it := 0; it < iters; it++ {
		Q = apply(Q)
		orthonormalize(Q)
	}
	// Ritz values: diag(Qᵀ A Q).
	AQ := apply(Q)
	vals := make([]float64, k)
	for j := 0; j < k; j++ {
		vals[j] = dot(Q.Col(j), AQ.Col(j))
	}
	// Sort descending.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if vals[j] > vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	return vals
}

// orthonormalize performs modified Gram-Schmidt on the columns of Q.
func orthonormalize(Q *gofmm.Matrix) {
	for j := 0; j < Q.Cols; j++ {
		cj := Q.Col(j)
		for k := 0; k < j; k++ {
			ck := Q.Col(k)
			proj := dot(ck, cj)
			for i := range cj {
				cj[i] -= proj * ck[i]
			}
		}
		norm := math.Sqrt(dot(cj, cj))
		if norm > 0 {
			for i := range cj {
				cj[i] /= norm
			}
		}
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func main() {
	n := flag.Int("n", 1024, "graph size")
	k := flag.Int("k", 6, "eigenvalues to estimate")
	flag.Parse()
	log.SetFlags(0)

	p, err := testmat.Generate("G03", *n, 3)
	if err != nil {
		log.Fatal(err)
	}
	dim := p.K.Dim()
	fmt.Printf("problem: %s (N = %d) — no coordinates available\n", p.Desc, dim)

	t0 := time.Now()
	H, err := gofmm.Compress(p.K, gofmm.Config{
		LeafSize: 64, MaxRank: 128, Tol: 1e-7, Budget: 0.03,
		Distance: gofmm.Angle, Exec: gofmm.Dynamic, NumWorkers: 4,
		CacheBlocks: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed in %.3fs, avg rank %.1f\n", time.Since(t0).Seconds(), H.Stats.AvgRank)

	t0 = time.Now()
	fast := blockPower(H.Matvec, dim, *k, 30, 7)
	fastTime := time.Since(t0).Seconds()

	t0 = time.Now()
	exact := blockPower(func(W *gofmm.Matrix) *gofmm.Matrix {
		return gofmm.ExactMatvec(p.K, W)
	}, dim, *k, 30, 7)
	exactTime := time.Since(t0).Seconds()

	fmt.Printf("top-%d eigenvalues of (L+σI)⁻¹ (compressed, %.3fs vs dense %.3fs):\n", *k, fastTime, exactTime)
	fmt.Printf("  %-12s %-12s %-10s\n", "compressed", "dense", "rel.diff")
	for i := range fast {
		fmt.Printf("  %-12.6f %-12.6f %-10.1e\n", fast[i], exact[i], math.Abs(fast[i]-exact[i])/exact[i])
	}
	fmt.Printf("smallest Laplacian eigenvalues (1/λ − σ): first three: %.4f %.4f %.4f\n",
		1/fast[0]-0.1, 1/fast[1]-0.1, 1/fast[2]-0.1)
}
