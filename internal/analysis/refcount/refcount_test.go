package refcount_test

import (
	"testing"

	"gofmm/internal/analysis/analyzertest"
	"gofmm/internal/analysis/refcount"
)

func TestRefCount(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), refcount.Analyzer, "refcount")
}
