package hodlr

import (
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
)

type denseOracle struct{ M *linalg.Matrix }

func (d denseOracle) Dim() int            { return d.M.Rows }
func (d denseOracle) At(i, j int) float64 { return d.M.At(i, j) }

// kern1D builds a smooth kernel matrix over sorted 1-D points: the
// lexicographic order is cluster-friendly, which is the regime HODLR is
// designed for.
func kern1D(n int, h float64) *linalg.Matrix {
	K := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d := float64(i-j) / float64(n)
			K.Set(i, j, math.Exp(-d*d/(2*h*h)))
		}
	}
	for i := 0; i < n; i++ {
		K.Add(i, i, 1e-8)
	}
	return K
}

func TestACAExactOnLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	U0 := linalg.GaussianMatrix(rng, 40, 5)
	V0 := linalg.GaussianMatrix(rng, 30, 5)
	M := linalg.MatMul(false, true, U0, V0)
	// Wrap as a 70×70 matrix whose (0:40, 40:70) block is M.
	big := linalg.NewMatrix(70, 70)
	big.View(0, 40, 40, 30).CopyFrom(M)
	U, V := ACA(denseOracle{big}, 0, 40, 40, 70, 1e-12, 40)
	if U.Cols > 7 {
		t.Fatalf("ACA rank %d on a rank-5 block", U.Cols)
	}
	rec := linalg.MatMul(false, true, U, V)
	if d := linalg.RelFrobDiff(rec, M); d > 1e-9 {
		t.Fatalf("ACA reconstruction error %g", d)
	}
}

func TestACAZeroBlock(t *testing.T) {
	big := linalg.NewMatrix(20, 20)
	U, V := ACA(denseOracle{big}, 0, 10, 10, 20, 1e-10, 10)
	if U.Cols != 0 || V.Cols != 0 {
		t.Fatalf("ACA of zero block returned rank %d", U.Cols)
	}
}

func TestACARespectsMaxRank(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	big := linalg.GaussianMatrix(rng, 40, 40)
	U, _ := ACA(denseOracle{big}, 0, 20, 20, 40, 1e-15, 3)
	if U.Cols != 3 {
		t.Fatalf("maxRank ignored: rank %d", U.Cols)
	}
}

func TestHODLRMatvecAccuracy(t *testing.T) {
	n := 600
	K := kern1D(n, 0.05)
	h := Compress(denseOracle{K}, Config{LeafSize: 64, Tol: 1e-9, MaxRank: 64})
	rng := rand.New(rand.NewSource(62))
	W := linalg.GaussianMatrix(rng, n, 4)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-6 {
		t.Fatalf("HODLR matvec error %g (avg rank %.1f)", d, h.AvgRank())
	}
}

func TestHODLRSingleLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	K := linalg.RandomSPD(rng, 30, 10)
	h := Compress(denseOracle{K}, Config{LeafSize: 64})
	W := linalg.GaussianMatrix(rng, 30, 2)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-12 {
		t.Fatalf("single-leaf HODLR error %g", d)
	}
}

func TestHODLRToleranceMonotone(t *testing.T) {
	n := 400
	K := kern1D(n, 0.08)
	rng := rand.New(rand.NewSource(64))
	W := linalg.GaussianMatrix(rng, n, 2)
	exact := linalg.MatMul(false, false, K, W)
	var prev float64 = -1
	for _, tol := range []float64{1e-2, 1e-6, 1e-10} {
		h := Compress(denseOracle{K}, Config{LeafSize: 50, Tol: tol, MaxRank: 200})
		err := linalg.RelFrobDiff(h.Matvec(W), exact)
		if prev >= 0 && err > prev*10 {
			t.Fatalf("tightening tol made error much worse: %g -> %g", prev, err)
		}
		prev = err
	}
	if prev > 1e-7 {
		t.Fatalf("tightest tolerance error %g", prev)
	}
}

func TestHODLRStatsRecorded(t *testing.T) {
	K := kern1D(200, 0.05)
	h := Compress(denseOracle{K}, Config{LeafSize: 32, Tol: 1e-6})
	rng := rand.New(rand.NewSource(65))
	h.Matvec(linalg.GaussianMatrix(rng, 200, 1))
	if h.CompressTime <= 0 || h.EvalTime <= 0 {
		t.Fatal("times not recorded")
	}
	if h.AvgRank() <= 0 || h.MaxRankSeen <= 0 {
		t.Fatal("rank stats not recorded")
	}
}
