package hodlr

import (
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
)

func TestHODLRFactorSolve(t *testing.T) {
	n := 500
	K := kern1D(n, 0.05)
	for i := 0; i < n; i++ {
		K.Add(i, i, 0.3) // keep diagonal blocks comfortably SPD
	}
	h := Compress(denseOracle{K}, Config{LeafSize: 64, Tol: 1e-10, MaxRank: 128})
	s, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(120))
	X := linalg.GaussianMatrix(rng, n, 3)
	B := linalg.MatMul(false, false, K, X)
	got := s.Solve(B)
	if d := linalg.RelFrobDiff(got, X); d > 1e-6 {
		t.Fatalf("HODLR solve error %g", d)
	}
	// Consistency: the solver inverts the compressed operator exactly.
	back := h.Matvec(got)
	if d := linalg.RelFrobDiff(back, B); d > 1e-9 {
		t.Fatalf("K̃·(K̃⁻¹b) deviates by %g", d)
	}
}

func TestHODLRFactorSolveSingleLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	K := linalg.RandomSPD(rng, 40, 100)
	h := Compress(denseOracle{K}, Config{LeafSize: 64})
	s, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	X := linalg.GaussianMatrix(rng, 40, 2)
	B := linalg.MatMul(false, false, K, X)
	got := s.Solve(B)
	if d := linalg.RelFrobDiff(got, X); d > 1e-9 {
		t.Fatalf("single-leaf solve error %g", d)
	}
}

func TestHODLRFactorDeepRecursion(t *testing.T) {
	// Many levels (leaf 16 over 512): Woodbury corrections compose through
	// ~5 recursion levels.
	n := 512
	K := kern1D(n, 0.03)
	for i := 0; i < n; i++ {
		K.Add(i, i, 0.5)
	}
	h := Compress(denseOracle{K}, Config{LeafSize: 16, Tol: 1e-11, MaxRank: 64})
	s, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(122))
	X := linalg.GaussianMatrix(rng, n, 2)
	B := linalg.MatMul(false, false, K, X)
	got := s.Solve(B)
	if d := linalg.RelFrobDiff(got, X); d > 1e-5 {
		t.Fatalf("deep solve error %g", d)
	}
}

func TestHODLRFactorZeroRankBlocks(t *testing.T) {
	// A block-diagonal matrix: off-diagonal ACA finds rank 0; the solver
	// must degrade to independent diagonal solves.
	rng := rand.New(rand.NewSource(123))
	n := 64
	K := linalg.NewMatrix(n, n)
	half := n / 2
	A := linalg.RandomSPD(rng, half, 10)
	B := linalg.RandomSPD(rng, half, 10)
	K.View(0, 0, half, half).CopyFrom(A)
	K.View(half, half, half, half).CopyFrom(B)
	h := Compress(denseOracle{K}, Config{LeafSize: 32, Tol: 1e-8})
	s, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	X := linalg.GaussianMatrix(rng, n, 2)
	Bv := linalg.MatMul(false, false, K, X)
	got := s.Solve(Bv)
	if d := linalg.RelFrobDiff(got, X); d > 1e-9 {
		t.Fatalf("block-diagonal solve error %g", d)
	}
}

func TestHODLRLogDetMatchesDense(t *testing.T) {
	n := 300
	K := kern1D(n, 0.05)
	for i := 0; i < n; i++ {
		K.Add(i, i, 0.5)
	}
	h := Compress(denseOracle{K}, Config{LeafSize: 32, Tol: 1e-11, MaxRank: 128})
	s, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	got := s.LogDet()
	L, err := linalg.Cholesky(K)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.LogDetFromCholesky(L)
	if d := got - want; d > 1e-4 || d < -1e-4 {
		t.Fatalf("LogDet = %g, dense = %g", got, want)
	}
}
