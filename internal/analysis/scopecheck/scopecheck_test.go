package scopecheck_test

import (
	"testing"

	"gofmm/internal/analysis/analyzertest"
	"gofmm/internal/analysis/scopecheck"
)

func TestScopeCheck(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), scopecheck.Analyzer, "scopecheck")
}
