package spancheck

import "telemetry"

// NeverEnded gets the mechanical fix: defer sp.End() after the binding.
func NeverEnded(rec *telemetry.Recorder) {
	sp := rec.StartSpan("forgotten") // want `span sp is never ended in its live segment`
	work()
	_ = sp
}
