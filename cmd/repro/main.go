// Command repro regenerates the tables and figures of the GOFMM paper
// (Yu, Levitt, Reiz & Biros, SC'17) at laptop scale.
//
// Usage:
//
//	repro fig1|fig4|fig5|fig6|fig7|table3|table4|table5|all [flags]
//
// Flags:
//
//	-n int              base problem size (default per experiment)
//	-quick              reduced sizes for a fast smoke run
//	-seed int           RNG seed (default 1)
//	-debug-addr addr    serve live introspection (/metrics, /debug/pprof, ...)
//	-debug-linger dur   keep the debug server up after the run finishes
//
// Each subcommand prints rows mirroring the corresponding paper artifact;
// absolute numbers differ from the paper's hardware, the comparative shapes
// are the reproduction target (see EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/experiments"
	"gofmm/internal/telemetry"
	"gofmm/internal/telemetry/live"
)

func main() {
	if err := cli(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		usage()
		os.Exit(2)
	}
}

// cli dispatches a subcommand (separated from main for testability).
func cli(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("missing subcommand")
	}
	sub := args[0]
	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	n := fs.Int("n", 0, "base problem size (0 = per-experiment default)")
	quick := fs.Bool("quick", false, "reduced sizes for a fast smoke run")
	seed := fs.Int64("seed", 1, "RNG seed")
	benchDir := fs.String("benchjson", "", "also write each experiment's rows as a BENCH_<name>.json run record into this directory")
	debugAddr := fs.String("debug-addr", "", "serve the live introspection endpoints (/metrics, /healthz, /readyz, /debug/vars, /debug/spans, /debug/pprof/*, /debug/flightrecord) on this address for the duration of the run")
	debugLinger := fs.Duration("debug-linger", 0, "keep the -debug-addr server up this long after the run finishes (Ctrl-C ends the linger early)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	// The pr3/pr4 benchmark paths thread this recorder into their core.Config
	// so the debug server has live counters and histograms to expose; the
	// other subcommands still get /healthz, /debug/pprof and the flight
	// recorder's manual-dump endpoint.
	var rec *telemetry.Recorder
	if *debugAddr != "" {
		rec = telemetry.New()
		flight := telemetry.NewFlightRecorder(rec, 512)
		srv := live.New(rec, live.WithFlightRecorder(flight))
		if err := srv.Start(*debugAddr); err != nil {
			return err
		}
		fmt.Fprintf(w, "live introspection on http://%s/\n", srv.Addr())
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stopSignals()
		defer func() {
			if *debugLinger > 0 {
				fmt.Fprintf(w, "debug server lingering %s (Ctrl-C to stop)\n", *debugLinger)
				select {
				case <-time.After(*debugLinger):
				case <-ctx.Done():
				}
			}
			shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(shutCtx); err != nil {
				fmt.Fprintf(os.Stderr, "debug server shutdown: %v\n", err)
			}
		}()
		srv.SetReady(true)
	}

	size := func(def, quickDef int) int {
		if *n > 0 {
			return *n
		}
		if *quick {
			return quickDef
		}
		return def
	}

	known := map[string]bool{"fig1": true, "fig2": true, "fig3": true, "fig4": true,
		"fig5": true, "fig6": true, "fig7": true,
		"table3": true, "table4": true, "table5": true, "scaling": true,
		"pr3": true, "pr4": true, "pr8": true, "pr9": true}
	run := func(name string) error {
		fmt.Fprintf(w, "\n== %s ==\n", name)
		var rows []experiments.Result
		switch name {
		case "fig1":
			sizes := []int{1024, 2048, 4096}
			ranks := []int{128, 256, 512}
			if *quick {
				sizes = []int{512, 1024}
				ranks = []int{64, 128}
			}
			if *n > 0 {
				sizes = []int{*n / 4, *n / 2, *n}
			}
			rows = experiments.Fig1(w, sizes, ranks, *seed)
		case "fig2":
			// Figure 2: the partitioning tree's block structure, regenerated
			// from an actual compression (near blocks '#', far blocks by
			// level) rather than drawn by hand.
			p := experiments.GetProblem("G03", size(512, 256), *seed)
			h, err := core.Compress(p.K, core.Config{
				LeafSize: size(512, 256) / 8, MaxRank: 64, Tol: 1e-5, Kappa: 16,
				Budget: 0.25, Distance: core.Angle, Exec: core.Sequential, Seed: *seed,
			})
			if err != nil {
				fmt.Fprintln(w, err)
				return nil
			}
			fmt.Fprintln(w, "leaf-level block structure ('#' near/dense, letters far by level):")
			fmt.Fprint(w, h.StructureString())
		case "fig3":
			// Figure 3: the evaluation-phase dependency DAG in DOT format,
			// produced by the same symbolic traversal the runtime uses.
			p := experiments.GetProblem("K02", size(256, 128), *seed)
			h, err := core.Compress(p.K, core.Config{
				LeafSize: 64, MaxRank: 32, Tol: 1e-4, Kappa: 8,
				Budget: 0, Distance: core.Angle, Exec: core.Sequential, Seed: *seed,
			})
			if err != nil {
				fmt.Fprintln(w, err)
				return nil
			}
			if err := h.EvalGraphDOT(w); err != nil {
				fmt.Fprintln(w, err)
			}
		case "fig4":
			workers := []int{1, 2, 4, 8}
			if *quick {
				workers = []int{1, 4}
			}
			rows = experiments.Fig4(w, workers, size(4096, 1024), *seed)
		case "fig5":
			rows = experiments.Fig5(w, size(1024, 400), *seed)
		case "fig6":
			rows = experiments.Fig6(w, size(2048, 800), *seed)
		case "fig7":
			rows = experiments.Fig7(w, size(1024, 400), *seed)
		case "table3":
			rows = experiments.Table3(w, size(1024, 400), *seed)
		case "table4":
			sizes := []int{1024, 2048}
			if *quick {
				sizes = []int{512}
			}
			if *n > 0 {
				sizes = []int{*n / 2, *n}
			}
			rows = experiments.Table4(w, sizes, *seed)
		case "table5":
			rows = experiments.Table5(w, size(2048, 512), *seed)
		case "pr3":
			// Hot-path kernel microbenchmarks (register-tiled GEMM, pooled
			// matvec) — the record feeds the CI performance-regression gate.
			rr := pr3Bench(w, size(4096, 1024), *seed, rec)
			if *benchDir != "" {
				path, err := rr.WriteBenchFile(*benchDir)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote run record to %s\n", path)
			}
			return nil
		case "pr4":
			// Batched multi-RHS evaluation: Matmat vs looped Matvec throughput
			// across block widths, and BatchEvaluator coalescing — feeds the
			// CI gate requiring ≥3× matvecs/sec at r=16.
			rr := pr4Bench(w, size(4096, 1024), *seed, rec)
			if *benchDir != "" {
				path, err := rr.WriteBenchFile(*benchDir)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote run record to %s\n", path)
			}
			return nil
		case "pr8":
			// Compiled evaluation plans: flat replayable schedules vs the tree
			// interpreter — feeds the CI gate requiring ≥2× steady-state
			// Matvec and no allocation regression.
			rr := pr8Bench(w, size(8192, 1024), *seed, rec)
			if *benchDir != "" {
				path, err := rr.WriteBenchFile(*benchDir)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote run record to %s\n", path)
			}
			return nil
		case "pr9":
			// On-disk operator store: cold-start-to-first-matvec via mmap
			// load vs compress-from-oracle — feeds the CI gate requiring a
			// ≥10× faster first served matvec with zero arena copies.
			rr := pr9Bench(w, size(8192, 1024), *seed, rec)
			if *benchDir != "" {
				path, err := rr.WriteBenchFile(*benchDir)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote run record to %s\n", path)
			}
			return nil
		case "scaling":
			sizes := []int{512, 1024, 2048, 4096}
			if *quick {
				sizes = []int{256, 512, 1024}
			}
			if *n > 0 {
				sizes = []int{*n / 8, *n / 4, *n / 2, *n}
			}
			rows = experiments.Scaling(w, sizes, *seed)
		}
		if *benchDir == "" || len(rows) == 0 {
			return nil
		}
		rr := telemetry.NewRunRecord("repro_" + name)
		rr.Params["n"] = *n
		rr.Params["quick"] = *quick
		rr.Params["seed"] = *seed
		for _, res := range rows {
			rr.Rows = append(rr.Rows, res.Row())
		}
		path, err := rr.WriteBenchFile(*benchDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote run record to %s\n", path)
		return nil
	}

	if sub == "all" {
		for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table3", "table4", "table5"} {
			if err := run(name); err != nil {
				return err
			}
		}
		return nil
	}
	if !known[sub] {
		return fmt.Errorf("unknown subcommand %q", sub)
	}
	return run(sub)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: repro <fig1|fig2|fig3|fig4|fig5|fig6|fig7|table3|table4|table5|scaling|pr3|pr4|pr8|pr9|all> [-n N] [-quick] [-seed S] [-debug-addr HOST:PORT] [-debug-linger D]`)
}
