package ann

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gofmm/internal/linalg"
	"gofmm/internal/metric"
)

func clusteredPoints(rng *rand.Rand, d, n, clusters int, sep float64) *linalg.Matrix {
	X := linalg.NewMatrix(d, n)
	for i := 0; i < n; i++ {
		c := i % clusters
		col := X.Col(i)
		for q := range col {
			col[q] = rng.NormFloat64()
		}
		col[0] += sep * float64(c)
	}
	return X
}

func TestNewListSelfNeighbor(t *testing.T) {
	l := NewList(5, 3)
	for i := 0; i < 5; i++ {
		of := l.Of(i)
		if len(of) != 1 || of[0] != int32(i) {
			t.Fatalf("index %d not seeded with self: %v", i, of)
		}
		if l.DistOf(i, 0) != 0 {
			t.Fatal("self distance nonzero")
		}
	}
}

func TestMergeKeepsSortedUniqueK(t *testing.T) {
	l := NewList(1, 4)
	l.merge(0, []int32{5, 3, 5, 9}, []float64{0.5, 0.3, 0.5, 0.9})
	of := l.Of(0)
	want := []int32{0, 3, 5, 9}
	if len(of) != 4 {
		t.Fatalf("list = %v", of)
	}
	for k := range want {
		if of[k] != want[k] {
			t.Fatalf("slot %d = %d, want %d", k, of[k], want[k])
		}
	}
	// Distances sorted ascending.
	for k := 1; k < 4; k++ {
		if l.DistOf(0, k) < l.DistOf(0, k-1) {
			t.Fatal("distances not sorted")
		}
	}
	// A better candidate must displace the worst one.
	ch := l.merge(0, []int32{7}, []float64{0.1})
	if ch == 0 {
		t.Fatal("merge reported no change")
	}
	of = l.Of(0)
	if of[1] != 7 {
		t.Fatalf("best candidate not inserted: %v", of)
	}
	for _, id := range of {
		if id == 9 {
			t.Fatal("worst neighbor not evicted")
		}
	}
}

func TestMergeIdempotent(t *testing.T) {
	l := NewList(1, 3)
	l.merge(0, []int32{1, 2}, []float64{0.1, 0.2})
	if ch := l.merge(0, []int32{1, 2}, []float64{0.1, 0.2}); ch != 0 {
		t.Fatalf("re-merging identical candidates changed %d slots", ch)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	n := 60
	X := linalg.GaussianMatrix(rng, 3, n)
	sp := metric.GeometricSpace{X: X}
	l := Exact(n, 5, sp)
	for i := 0; i < n; i++ {
		// Brute force reference.
		type cd struct {
			j int
			d float64
		}
		all := make([]cd, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				all = append(all, cd{j, sp.Dist(i, j)})
			}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		of := l.Of(i)
		if of[0] != int32(i) {
			t.Fatalf("first neighbor of %d is not self", i)
		}
		for k := 1; k < len(of); k++ {
			if math.Abs(l.DistOf(i, k)-all[k-1].d) > 1e-12 {
				t.Fatalf("index %d slot %d: dist %g, want %g", i, k, l.DistOf(i, k), all[k-1].d)
			}
		}
	}
}

func TestSearchRecallHighOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n := 512
	X := clusteredPoints(rng, 4, n, 8, 30)
	sp := metric.GeometricSpace{X: X}
	approx := Search(n, 8, sp, Options{LeafSize: 64, MaxIters: 10, Seed: 9})
	exact := Exact(n, 8, sp)
	if rec := Recall(approx, exact); rec < 0.8 {
		t.Fatalf("recall = %.3f, want ≥ 0.8", rec)
	}
}

func TestSearchKernelSpaceMatchesGeometric(t *testing.T) {
	// Kernel distance on a Gram matrix must find the same neighbors as the
	// geometric distance on the generating points.
	rng := rand.New(rand.NewSource(52))
	n := 256
	X := clusteredPoints(rng, 3, n, 4, 20)
	K := linalg.MatMul(true, false, X, X)
	kg := metric.KernelSpace{K: gram{K}}
	gg := metric.GeometricSpace{X: X}
	ak := Search(n, 6, kg, Options{LeafSize: 32, Seed: 1})
	eg := Exact(n, 6, gg)
	if rec := Recall(ak, eg); rec < 0.75 {
		t.Fatalf("kernel-space recall vs geometric truth = %.3f", rec)
	}
}

type gram struct{ M *linalg.Matrix }

func (g gram) Dim() int            { return g.M.Rows }
func (g gram) At(i, j int) float64 { return g.M.At(i, j) }

func TestSearchPropertyValidLists(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		k := 1 + rng.Intn(8)
		X := linalg.GaussianMatrix(rng, 2, n)
		l := Search(n, k, metric.GeometricSpace{X: X}, Options{LeafSize: 16, MaxIters: 3, Seed: seed})
		for i := 0; i < n; i++ {
			of := l.Of(i)
			if len(of) == 0 || of[0] != int32(i) {
				return false
			}
			seen := map[int32]bool{}
			prev := -1.0
			for kk, id := range of {
				if id < 0 || int(id) >= n || seen[id] {
					return false
				}
				seen[id] = true
				d := l.DistOf(i, kk)
				if d < prev {
					return false
				}
				prev = d
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestKappaClampedToN(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	X := linalg.GaussianMatrix(rng, 2, 5)
	l := Search(5, 32, metric.GeometricSpace{X: X}, Options{LeafSize: 4, Seed: 2})
	if l.K != 5 {
		t.Fatalf("kappa not clamped: %d", l.K)
	}
	e := Exact(5, 32, metric.GeometricSpace{X: X})
	if e.K != 5 {
		t.Fatalf("exact kappa not clamped: %d", e.K)
	}
}

func TestRecallBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	X := linalg.GaussianMatrix(rng, 2, 40)
	sp := metric.GeometricSpace{X: X}
	e := Exact(40, 4, sp)
	if r := Recall(e, e); r != 1 {
		t.Fatalf("self recall = %g", r)
	}
	fresh := NewList(40, 4)
	r := Recall(fresh, e)
	if r != 1 { // only self-neighbors present, all of which are correct
		t.Fatalf("seed recall = %g, want 1 (self neighbors always correct)", r)
	}
}

func TestSampleRecallExactListIsPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	X := linalg.GaussianMatrix(rng, 2, 80)
	sp := metric.GeometricSpace{X: X}
	e := Exact(80, 5, sp)
	if r := SampleRecall(e, sp, 20, 1); r < 0.999 {
		t.Fatalf("exact list recall = %g", r)
	}
	fresh := NewList(80, 5)
	// Self-neighbors only: recall = 1/5 of slots filled, all correct but
	// only one of five slots present per index.
	if r := SampleRecall(fresh, sp, 20, 1); r != 1 {
		t.Fatalf("self-only recall = %g (all present entries are correct)", r)
	}
}

func TestSearchRecallTargetStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	X := clusteredPoints(rng, 3, 400, 8, 40)
	sp := metric.GeometricSpace{X: X}
	l := Search(400, 6, sp, Options{
		LeafSize: 64, MaxIters: 10, Seed: 3, RecallTarget: 0.8, RecallSample: 32,
	})
	exact := Exact(400, 6, sp)
	if rec := Recall(l, exact); rec < 0.7 {
		t.Fatalf("recall-target search recall = %.3f", rec)
	}
}

func TestSearchParallelWorkersMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	X := clusteredPoints(rng, 3, 300, 4, 20)
	sp := metric.GeometricSpace{X: X}
	a := Search(300, 5, sp, Options{LeafSize: 32, MaxIters: 4, Seed: 7, Workers: 1})
	b := Search(300, 5, sp, Options{LeafSize: 32, MaxIters: 4, Seed: 7, Workers: 4})
	for i := 0; i < 300; i++ {
		oa, ob := a.Of(i), b.Of(i)
		if len(oa) != len(ob) {
			t.Fatalf("index %d list lengths differ", i)
		}
		for k := range oa {
			if oa[k] != ob[k] {
				t.Fatalf("index %d slot %d: %d vs %d", i, k, oa[k], ob[k])
			}
		}
	}
}
