package experiments

import (
	"io"

	"gofmm/internal/core"
)

// Fig6 reproduces Figure 6 (#6–#8): the HSS-versus-FMM trade-off. For each
// of K02, K15 and a COVTYPE-like kernel, HSS runs (budget 0) sweep the rank
// upward while FMM runs keep a small rank and add direct evaluations
// (budget). The paper's claim, preserved here, is that FMM reaches a better
// accuracy/time point than rank-inflated HSS whenever the off-diagonal
// blocks are not uniformly low-rank.
func Fig6(w io.Writer, n int, seed int64) []Result {
	cases := []struct {
		prob string
		m    int
	}{
		{"K02", 64},
		{"K15", 64},
		{"COVTYPE", 64},
	}
	type setting struct {
		label  string
		rank   int
		budget float64
	}
	settings := []setting{
		{"HSS s=32", 32, 0},
		{"HSS s=64", 64, 0},
		{"HSS s=128", 128, 0},
		{"FMM s=32 3%", 32, 0.03},
		{"FMM s=32 10%", 32, 0.10},
		{"FMM s=64 3%", 64, 0.03},
	}
	header(w, "case", "setting", "eps2", "total(s)", "eval(s)", "avg-rank", "direct%")
	var out []Result
	for _, c := range cases {
		p := GetProblem(c.prob, n, seed)
		for _, st := range settings {
			cfg := core.Config{
				LeafSize: c.m, MaxRank: st.rank, Tol: 1e-12, Kappa: 32,
				Budget: st.budget, Distance: core.Angle, Exec: core.Dynamic,
				NumWorkers: 2, CacheBlocks: true, Seed: seed,
			}
			res := Run(p, cfg, 64, seed)
			res.Experiment = "fig6"
			res.Scheme = st.label
			out = append(out, res)
			cell(w, "%s", c.prob)
			cell(w, "%s", st.label)
			cell(w, "%.1e", res.Eps)
			cell(w, "%.3f", res.CompressS+res.EvalS)
			cell(w, "%.4f", res.EvalS)
			cell(w, "%.1f", res.AvgRank)
			cell(w, "%.1f", 100*res.DirectFrac)
			endRow(w)
		}
	}
	return out
}
