package serve

// The chaos suite: adversarial traffic against the full serving stack.
// Every scenario here runs under -race in CI and asserts the robustness
// headline of the serving layer — overload sheds instead of queueing,
// panics trip the breaker instead of killing the process, slow clients
// cannot starve fast ones, and drain answers what it admitted. Each test
// also asserts zero goroutine leaks.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"context"
	"gofmm/internal/linalg"
	"gofmm/internal/telemetry"
)

// checkGoroutines fails the test if the goroutine count has not returned
// to its baseline (with slack for runtime helpers) once cleanup ran.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// gateOperator is an operator whose evaluations block on a gate until
// released, so tests control exactly how many requests are in flight.
type gateOperator struct {
	executing atomic.Int64
	peak      atomic.Int64
	release   chan struct{}
	panicArm  atomic.Bool
}

func newGateOperator() *gateOperator {
	return &gateOperator{release: make(chan struct{})}
}

func (g *gateOperator) spec(dim int) OperatorSpec {
	return OperatorSpec{
		Name: "gate", Dim: dim,
		Matvec: func(ctx context.Context, W *linalg.Matrix) (*linalg.Matrix, error) {
			if g.panicArm.Load() {
				panic("poisoned oracle")
			}
			cur := g.executing.Add(1)
			defer g.executing.Add(-1)
			for {
				old := g.peak.Load()
				if cur <= old || g.peak.CompareAndSwap(old, cur) {
					break
				}
			}
			select {
			case <-g.release:
			case <-ctx.Done():
			}
			U := linalg.NewMatrix(dim, W.Cols)
			for j := 0; j < W.Cols; j++ {
				copy(U.Col(j), W.Col(j))
			}
			return U, nil
		},
	}
}

func chaosServer(t *testing.T, lim Limits, spec OperatorSpec) (*Server, *httptest.Server, *telemetry.Recorder) {
	t.Helper()
	// Registered first so it runs last (cleanups are LIFO): the leak check
	// must see the world after the test server and registry shut down.
	before := runtime.NumGoroutine()
	t.Cleanup(func() { checkGoroutines(t, before) })
	rec := telemetry.New()
	reg := NewRegistry(rec)
	if _, err := reg.Register(spec, lim); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{Registry: reg, Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(reg.Close)
	return s, ts, rec
}

func fireMatvec(ts *httptest.Server, dim int, hdr map[string]string) (int, string, http.Header, error) {
	vec := make([]float64, dim)
	raw, _ := json.Marshal(map[string]any{"vector": vec})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/operators/gate/matvec", bytes.NewReader(raw))
	if err != nil {
		return 0, "", nil, err
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	var doc struct {
		Kind string `json:"kind"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	return resp.StatusCode, doc.Kind, resp.Header, nil
}

// A 4× overload flood must shed with typed 503s, never queue unboundedly,
// and never exceed the configured concurrency.
func TestChaosFloodShedsBounded(t *testing.T) {
	const dim, slots, queue = 8, 2, 2
	gate := newGateOperator()
	_, ts, rec := chaosServer(t,
		Limits{Admission: AdmissionConfig{MaxConcurrent: slots, MaxQueue: queue, RetryAfter: 3 * time.Second}},
		gate.spec(dim))

	const flood = 4 * (slots + queue) // 4× the total capacity
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	var sawRetryAfter atomic.Bool
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, kind, hdr, err := fireMatvec(ts, dim, nil)
			switch {
			case err != nil:
				t.Errorf("flood request failed at transport level: %v", err)
			case code == http.StatusOK:
				ok.Add(1)
			case code == http.StatusServiceUnavailable && kind == "overloaded":
				if hdr.Get("Retry-After") == "3" {
					sawRetryAfter.Store(true)
				}
				shed.Add(1)
			default:
				other.Add(1)
				t.Errorf("untyped flood response: %d kind=%q", code, kind)
			}
		}()
	}
	// Wait until the gate saturates (slots full, queue full, rest shed),
	// then release the survivors.
	deadline := time.Now().Add(5 * time.Second)
	for shed.Load() < flood-(slots+queue) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate.release)
	wg.Wait()

	if got := ok.Load(); got != slots+queue {
		t.Errorf("admitted %d, want exactly capacity %d", got, slots+queue)
	}
	if got := shed.Load(); got != flood-(slots+queue) {
		t.Errorf("shed %d, want %d", got, flood-(slots+queue))
	}
	if !sawRetryAfter.Load() {
		t.Errorf("no shed response carried the configured Retry-After")
	}
	if peak := gate.peak.Load(); peak > slots {
		t.Errorf("observed concurrency %d exceeded the %d-slot bound", peak, slots)
	}
	if admitted := rec.Counter("serve.admitted").Value(); admitted != slots+queue {
		t.Errorf("serve.admitted = %d, want %d", admitted, slots+queue)
	}
	if counted := rec.Counter("serve.shed").Value(); counted != flood-(slots+queue) {
		t.Errorf("serve.shed = %d, want %d", counted, flood-(slots+queue))
	}
}

// A slowloris client trickling its body must be cut off by the read
// timeout while concurrent fast requests keep being served.
func TestChaosSlowlorisDoesNotStarve(t *testing.T) {
	before := runtime.NumGoroutine()
	t.Cleanup(func() { checkGoroutines(t, before) })
	const dim = 8
	gate := newGateOperator()
	close(gate.release) // evaluations complete immediately
	rec := telemetry.New()
	reg := NewRegistry(rec)
	if _, err := reg.Register(gate.spec(dim), Limits{}); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{Registry: reg, Telemetry: rec, ReadTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		reg.Close()
	}()
	addr := s.Addr()

	// The slow client: valid headers, then one byte of body every 100ms.
	// The 300ms ReadTimeout must kill the connection long before the
	// declared body arrives.
	slowDone := make(chan error, 1)
	go func() {
		conn, derr := net.Dial("tcp", addr)
		if derr != nil {
			slowDone <- derr
			return
		}
		defer conn.Close()
		body := fmt.Sprintf(`{"vector":[%s]}`, strings.Repeat("0,", dim-1)+"0")
		fmt.Fprintf(conn, "POST /v1/operators/gate/matvec HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", addr, len(body))
		for i := 0; i < len(body); i++ {
			if _, werr := conn.Write([]byte{body[i]}); werr != nil {
				slowDone <- nil // connection reset by the server: the defense worked
				return
			}
			time.Sleep(100 * time.Millisecond)
		}
		// Writes can succeed into the kernel buffer even after the server
		// stopped reading; the authoritative signal is the response read.
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		resp, rerr := http.ReadResponse(bufio.NewReader(conn), nil)
		if rerr != nil {
			slowDone <- nil // reset/EOF: terminated, good
			return
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			slowDone <- fmt.Errorf("slowloris request was served (200) despite ReadTimeout")
			return
		}
		slowDone <- nil // 4xx/timeout response also means it was not served normally
	}()

	// Meanwhile fast clients are unaffected.
	client := &http.Client{Timeout: 2 * time.Second}
	vec, _ := json.Marshal(map[string]any{"vector": make([]float64, dim)})
	for i := 0; i < 10; i++ {
		resp, perr := client.Post("http://"+addr+"/v1/operators/gate/matvec", "application/json", bytes.NewReader(vec))
		if perr != nil {
			t.Fatalf("fast request %d failed beside a slowloris: %v", i, perr)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fast request %d: status %d", i, resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
	select {
	case err := <-slowDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slowloris connection was never terminated")
	}
}

// A mid-flight panicking operator must cost only its own requests: the
// panic comes back as a typed 500, repeated panics trip the breaker to
// typed 503s, and after the fault heals a half-open probe restores
// service.
func TestChaosPanicTripsBreakerThenRecovers(t *testing.T) {
	const dim = 8
	gate := newGateOperator()
	close(gate.release)
	_, ts, rec := chaosServer(t,
		Limits{Breaker: BreakerConfig{Threshold: 2, Cooldown: 100 * time.Millisecond}},
		gate.spec(dim))
	flight := telemetry.NewFlightRecorder(rec, 16)

	// Healthy baseline.
	if code, kind, _, err := fireMatvec(ts, dim, nil); err != nil || code != http.StatusOK {
		t.Fatalf("baseline request: %d %q %v", code, kind, err)
	}
	// Poison the operator: two panics are contained as typed 500s.
	gate.panicArm.Store(true)
	for i := 0; i < 2; i++ {
		code, kind, _, err := fireMatvec(ts, dim, nil)
		if err != nil {
			t.Fatalf("panicking request %d died at transport level (panic escaped?): %v", i, err)
		}
		if code != http.StatusInternalServerError || kind != "panic" {
			t.Fatalf("panicking request %d: %d kind=%q, want 500 panic", i, code, kind)
		}
	}
	// Threshold reached: the breaker is open, requests are rejected
	// without touching the operator.
	code, kind, hdr, err := fireMatvec(ts, dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable || kind != "breaker_open" {
		t.Fatalf("tripped breaker: %d kind=%q, want 503 breaker_open", code, kind)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("breaker rejection without Retry-After")
	}
	if rec.Counter("serve.breaker_rejects").Value() == 0 {
		t.Fatalf("serve.breaker_rejects not incremented")
	}
	if got := rec.Gauge("serve.breaker_state").Value(); got != float64(BreakerOpen) {
		t.Fatalf("serve.breaker_state = %v, want open (%d)", got, BreakerOpen)
	}
	// The crash funnel saw both contained panics.
	if got := len(flight.Errors()); got < 2 {
		t.Fatalf("flight recorder captured %d crash reports, want ≥ 2", got)
	}

	// Heal the fault and wait out the cooldown: the half-open probe must
	// restore service.
	gate.panicArm.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, kind, _, err = fireMatvec(ts, dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		if code == http.StatusOK {
			break
		}
		if kind != "breaker_open" {
			t.Fatalf("during recovery: %d kind=%q", code, kind)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after the fault healed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := rec.Gauge("serve.breaker_state").Value(); got != float64(BreakerClosed) {
		t.Fatalf("serve.breaker_state = %v after recovery, want closed", got)
	}
}

// Drain under load: requests in flight when drain begins are all
// answered, new arrivals get typed draining 503s, and drain completes
// once the stragglers finish.
func TestChaosDrainUnderLoad(t *testing.T) {
	const dim, inflight = 8, 3
	gate := newGateOperator()
	s, ts, rec := chaosServer(t,
		Limits{Admission: AdmissionConfig{MaxConcurrent: inflight, MaxQueue: 1}},
		gate.spec(dim))

	// Park requests mid-evaluation.
	results := make(chan int, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, _, err := fireMatvec(ts, dim, nil)
			if err != nil {
				t.Errorf("in-flight request failed: %v", err)
				code = -1
			}
			results <- code
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for gate.executing.Load() < inflight && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if gate.executing.Load() != inflight {
		t.Fatalf("only %d requests in flight, want %d", gate.executing.Load(), inflight)
	}

	// Begin drain while they are parked.
	drainDone := make(chan error, 1)
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	go func() { drainDone <- s.Drain(dctx) }()

	// New arrivals are refused with the draining taxonomy.
	refusedDeadline := time.Now().Add(5 * time.Second)
	for {
		code, kind, _, err := fireMatvec(ts, dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		if code == http.StatusServiceUnavailable && kind == "draining" {
			break
		}
		if time.Now().After(refusedDeadline) {
			t.Fatalf("drain never refused new work: last %d kind=%q", code, kind)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-drainDone:
		t.Fatal("drain completed with requests still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	// Release the stragglers: every parked request is answered 200 and
	// drain completes.
	close(gate.release)
	wg.Wait()
	for i := 0; i < inflight; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("in-flight request %d answered %d during drain, want 200", i, code)
		}
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not complete after in-flight requests finished")
	}
	if ms := rec.Gauge("serve.drain_ms").Value(); ms <= 0 {
		t.Errorf("serve.drain_ms = %v, want > 0", ms)
	}
	// Drain is idempotent: a second call returns immediately.
	if err := s.Drain(dctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}
