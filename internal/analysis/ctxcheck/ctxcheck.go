// Package ctxcheck enforces context discipline inside the internal/
// packages: a function that accepts a ctx must thread it (or a context
// derived from it) into every context-aware callee, and fresh roots
// (context.Background / context.TODO) are confined to the documented legacy
// bridges — `func X(...)` forwarding to `func XCtx(ctx, ...)`. A dropped
// ctx turns cancellation and phase timeouts into dead code on that path,
// which the resilience runtime suite only catches for the call chains it
// exercises.
package ctxcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"gofmm/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "ctxcheck",
	Doc: "flag context.Background()/TODO() outside legacy bridges and ctx-aware calls " +
		"that do not receive the caller's ctx",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	sig, _ := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
	ctxParam, hasCtx := framework.HasContextParam(sig)
	parents := framework.BuildParents(fd)

	if !hasCtx {
		// Rule 1: fresh context roots only in the legacy bridge position —
		// passed directly to the function's own Ctx variant.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFreshRoot(pass, call) {
				return true
			}
			if outer, ok := parents[call].(*ast.CallExpr); ok {
				if callee := framework.CalleeFunc(pass.TypesInfo, outer); callee != nil &&
					callee.Name() == fd.Name.Name+"Ctx" {
					return true // documented legacy bridge: X forwards to XCtx
				}
			}
			pass.Reportf(call.Pos(),
				"%s in internal package: accept a ctx parameter or forward through the Ctx variant",
				types.ExprString(call.Fun)+"()")
			return true
		})
		return
	}

	// Rule 2a: a function that was handed a ctx must not mint fresh roots.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isFreshRoot(pass, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s drops the caller's ctx %q; derive from it instead (context.WithTimeout, ...)",
			types.ExprString(call.Fun)+"()", ctxParam.Name())
		return true
	})

	// Rule 2b: every context-aware callee gets the ctx param or a context
	// derived from it.
	derived := derivedSet(pass, fd, ctxParam)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		callee := framework.CalleeFunc(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		calleeSig, _ := callee.Type().(*types.Signature)
		if _, aware := framework.HasContextParam(calleeSig); !aware {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if argCall, ok := arg.(*ast.CallExpr); ok && isFreshRoot(pass, argCall) {
			return true // already reported by rule 2a
		}
		if id, ok := arg.(*ast.Ident); ok {
			obj := framework.ObjectOf(pass.TypesInfo, id)
			if obj != nil && !derived[obj] {
				pass.Reportf(call.Pos(),
					"call to ctx-aware %s passes %q, which does not derive from the caller's ctx %q",
					callee.Name(), id.Name, ctxParam.Name())
			}
		}
		return true
	})

	// Rule 2c: an exported ...Ctx function must actually use its ctx.
	if fd.Name.IsExported() && strings.HasSuffix(fd.Name.Name, "Ctx") && ctxParam.Name() != "_" {
		used := false
		for id, obj := range pass.TypesInfo.Uses {
			if obj == ctxParam && id.Pos() > fd.Body.Pos() && id.Pos() < fd.Body.End() {
				used = true
				break
			}
		}
		if !used {
			pass.Reportf(fd.Name.Pos(),
				"exported %s never uses its ctx parameter %q: cancellation is dead code on this path",
				fd.Name.Name, ctxParam.Name())
		}
	}
}

// isFreshRoot reports context.Background() / context.TODO().
func isFreshRoot(pass *framework.Pass, call *ast.CallExpr) bool {
	return framework.IsPkgFunc(pass.TypesInfo, call, "context", "Background") ||
		framework.IsPkgFunc(pass.TypesInfo, call, "context", "TODO")
}

// derivedSet computes, to a fixpoint, the set of variables in fd holding
// the ctx param or a context derived from it: any variable assigned from a
// call or expression that mentions a derived variable (covers
// context.WithTimeout(ctx, d) and m.phaseCtx(ctx) multi-assignment alike).
// Context-typed closure parameters are also admitted: the value they carry
// is the caller's at each call site, which rule 2b checks there.
func derivedSet(pass *framework.Pass, fd *ast.FuncDecl, ctxParam *types.Var) map[types.Object]bool {
	derived := map[types.Object]bool{ctxParam: true}
	for {
		grew := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.AssignStmt:
				mentions := false
				for _, rhs := range nn.Rhs {
					ast.Inspect(rhs, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if obj := framework.ObjectOf(pass.TypesInfo, id); obj != nil && derived[obj] {
								mentions = true
							}
						}
						return true
					})
				}
				if !mentions {
					return true
				}
				for _, lhs := range nn.Lhs {
					obj := framework.ObjectOf(pass.TypesInfo, lhs)
					if obj != nil && !derived[obj] && framework.IsContextType(obj.Type()) {
						derived[obj] = true
						grew = true
					}
				}
			case *ast.FuncLit:
				if sig, ok := pass.TypesInfo.Types[nn].Type.(*types.Signature); ok {
					if p, ok := framework.HasContextParam(sig); ok && !derived[p] {
						derived[p] = true
						grew = true
					}
				}
			}
			return true
		})
		if !grew {
			return derived
		}
	}
}
