// Package linalg provides the dense linear-algebra substrate used by the
// GOFMM reproduction: a column-major matrix type, blocked parallel GEMM,
// Householder QR with column pivoting (the GEQP3 equivalent used for
// interpolative decompositions), triangular solves, dense and banded
// Cholesky factorizations, and norm/utility kernels.
//
// Everything is implemented from scratch on top of the standard library so
// the repository has no external dependencies. The design mirrors classic
// BLAS/LAPACK conventions (column-major storage with a leading dimension)
// because the rank-revealing factorizations at the heart of GOFMM are
// column-oriented algorithms.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense column-major matrix. Element (i, j) lives at
// Data[j*Stride+i]. A Matrix may be a view into a larger matrix, in which
// case Stride exceeds Rows and mutations are visible to the parent.
type Matrix struct {
	Rows, Cols int
	Stride     int // distance between the starts of consecutive columns
	Data       []float64
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: max(r, 1), Data: make([]float64, max(r, 1)*c)}
}

// FromColumnMajor wraps existing column-major data (no copy). The slice must
// hold at least r*c elements.
func FromColumnMajor(r, c int, data []float64) *Matrix {
	if len(data) < r*c {
		panic(fmt.Sprintf("linalg: data length %d < %d×%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: max(r, 1), Data: data}
}

// FromRows builds a matrix from row slices (copying), mostly for tests.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[j*m.Stride+i] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[j*m.Stride+i] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[j*m.Stride+i] += v }

// Col returns column j as a slice view of length Rows.
func (m *Matrix) Col(j int) []float64 {
	off := j * m.Stride
	return m.Data[off : off+m.Rows : off+m.Rows]
}

// View returns an r×c sub-matrix view rooted at (i0, j0). The view shares
// storage with m.
func (m *Matrix) View(i0, j0, r, c int) *Matrix {
	if i0 < 0 || j0 < 0 || i0+r > m.Rows || j0+c > m.Cols {
		panic(fmt.Sprintf("linalg: view [%d:%d, %d:%d] out of %d×%d", i0, i0+r, j0, j0+c, m.Rows, m.Cols))
	}
	off := j0*m.Stride + i0
	end := len(m.Data)
	if r > 0 && c > 0 {
		end = off + (c-1)*m.Stride + r
	}
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[off:end]}
}

// Clone returns a compact deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src into m; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("linalg: copy %d×%d <- %d×%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Col(j), src.Col(j))
	}
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = v
		}
	}
}

// Scale multiplies every element by alpha.
func (m *Matrix) Scale(alpha float64) {
	for j := 0; j < m.Cols; j++ {
		Scal(alpha, m.Col(j))
	}
}

// AddScaled performs m += alpha*b elementwise; dimensions must match.
func (m *Matrix) AddScaled(alpha float64, b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: AddScaled dimension mismatch")
	}
	for j := 0; j < m.Cols; j++ {
		Axpy(alpha, b.Col(j), m.Col(j))
	}
}

// Transposed returns a new compact matrix equal to mᵀ.
func (m *Matrix) Transposed() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	const blk = 32
	for jj := 0; jj < m.Cols; jj += blk {
		jmax := min(jj+blk, m.Cols)
		for ii := 0; ii < m.Rows; ii += blk {
			imax := min(ii+blk, m.Rows)
			for j := jj; j < jmax; j++ {
				col := m.Col(j)
				for i := ii; i < imax; i++ {
					t.Data[i*t.Stride+j] = col[i]
				}
			}
		}
	}
	return t
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	m := NewMatrix(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// RowsGather copies rows given by idx into a new len(idx)×Cols matrix.
func (m *Matrix) RowsGather(idx []int) *Matrix {
	out := NewMatrix(len(idx), m.Cols)
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		dst := out.Col(j)
		for k, i := range idx {
			dst[k] = src[i]
		}
	}
	return out
}

// RowsGatherInto copies rows given by idx into dst, which must be
// len(idx)×Cols. It is the allocation-free form of RowsGather.
func (m *Matrix) RowsGatherInto(idx []int, dst *Matrix) {
	if dst.Rows != len(idx) || dst.Cols != m.Cols {
		panic("linalg: RowsGatherInto dimension mismatch")
	}
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		d := dst.Col(j)
		for k, i := range idx {
			d[k] = src[i]
		}
	}
}

// ColsGather copies columns given by idx into a new Rows×len(idx) matrix.
func (m *Matrix) ColsGather(idx []int) *Matrix {
	out := NewMatrix(m.Rows, len(idx))
	for k, j := range idx {
		copy(out.Col(k), m.Col(j))
	}
	return out
}

// RowsScatterAdd adds the rows of src into rows idx of m: m[idx[k],:] += src[k,:].
func (m *Matrix) RowsScatterAdd(idx []int, src *Matrix) {
	if len(idx) != src.Rows || m.Cols != src.Cols {
		panic("linalg: RowsScatterAdd dimension mismatch")
	}
	for j := 0; j < m.Cols; j++ {
		dst := m.Col(j)
		s := src.Col(j)
		for k, i := range idx {
			dst[i] += s[k]
		}
	}
}

// FrobeniusNorm returns ‖m‖_F.
func (m *Matrix) FrobeniusNorm() float64 {
	// Two-pass scaling avoids overflow for large entries.
	var scale, ssq float64 = 0, 1
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if v == 0 {
				continue
			}
			av := math.Abs(v)
			if scale < av {
				r := scale / av
				ssq = 1 + ssq*r*r
				scale = av
			} else {
				r := av / scale
				ssq += r * r
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns max_ij |m_ij|.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// RelFrobDiff returns ‖a-b‖_F / ‖b‖_F (or the absolute norm when b is zero).
func RelFrobDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: RelFrobDiff dimension mismatch")
	}
	d := a.Clone()
	d.AddScaled(-1, b)
	nb := b.FrobeniusNorm()
	nd := d.FrobeniusNorm()
	if nb == 0 {
		return nd
	}
	return nd / nb
}

// EqualApprox reports whether all entries agree within tol.
func EqualApprox(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			if math.Abs(ca[i]-cb[i]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging; large ones are summarized.
func (m *Matrix) String() string {
	if m.Rows > 12 || m.Cols > 12 {
		return fmt.Sprintf("Matrix{%d×%d, ‖·‖F=%.4g}", m.Rows, m.Cols, m.FrobeniusNorm())
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Matrix %d×%d\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "% 10.4g ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
