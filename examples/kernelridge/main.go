// Kernel ridge regression with a GOFMM-accelerated conjugate-gradient
// solver: fit α in (K + λI)α = y where K is a Gaussian kernel matrix over a
// synthetic dataset, using the compressed matvec inside CG — the kernel-
// methods workload that motivates the paper (§1: "kernel methods for
// statistical learning", block Krylov solvers).
//
//	go run ./examples/kernelridge [-n 2048]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"gofmm"
	"gofmm/testmat"
)

// cg solves (H + λI)x = y with conjugate gradients, using the compressed
// matvec. Returns the solution and the iteration count.
func cg(H *gofmm.Hierarchical, lambda float64, y []float64, tol float64, maxIter int) ([]float64, int) {
	n := len(y)
	apply := func(x []float64) []float64 {
		X := gofmm.NewMatrix(n, 1)
		copy(X.Col(0), x)
		out := H.Matvec(X).Col(0)
		for i := range out {
			out[i] += lambda * x[i]
		}
		return out
	}
	x := make([]float64, n)
	r := append([]float64(nil), y...)
	p := append([]float64(nil), y...)
	rs := dot(r, r)
	norm0 := math.Sqrt(rs)
	for it := 0; it < maxIter; it++ {
		Ap := apply(p)
		alpha := rs / dot(p, Ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * Ap[i]
		}
		rsNew := dot(r, r)
		if math.Sqrt(rsNew) < tol*norm0 {
			return x, it + 1
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x, maxIter
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func main() {
	n := flag.Int("n", 2048, "training points")
	lambda := flag.Float64("lambda", 1e-1, "ridge parameter")
	flag.Parse()
	log.SetFlags(0)

	// 6-D Gaussian kernel with moderate bandwidth: substantial off-diagonal
	// coupling, so the CG solve is non-trivial.
	p, err := testmat.Generate("K05", *n, 5)
	if err != nil {
		log.Fatal(err)
	}
	dim := p.K.Dim()
	fmt.Printf("kernel ridge regression: %s, N = %d, λ = %g\n", p.Desc, dim, *lambda)

	// Synthetic targets: a smooth function of the first data coordinate
	// plus noise.
	rng := rand.New(rand.NewSource(11))
	y := make([]float64, dim)
	for i := range y {
		y[i] = math.Sin(3*p.Points.At(0, i)) + 0.1*rng.NormFloat64()
	}

	t0 := time.Now()
	H, err := gofmm.Compress(p.K, gofmm.Config{
		LeafSize: 128, MaxRank: 128, Tol: 1e-6, Budget: 0.05,
		Distance: gofmm.Angle, Exec: gofmm.Dynamic, NumWorkers: 4,
		CacheBlocks: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed in %.3fs (ε₂ of the operator ≈ %.1e per sampled check)\n",
		time.Since(t0).Seconds(), operatorErr(H, dim))

	t0 = time.Now()
	alpha, iters := cg(H, *lambda, y, 1e-8, 200)
	solveTime := time.Since(t0).Seconds()

	// Residual check against the *exact* kernel: ‖(K+λI)α − y‖/‖y‖.
	A := gofmm.NewMatrix(dim, 1)
	copy(A.Col(0), alpha)
	exact := gofmm.ExactMatvec(p.K, A).Col(0)
	var res, ynorm float64
	for i := range y {
		d := exact[i] + *lambda*alpha[i] - y[i]
		res += d * d
		ynorm += y[i] * y[i]
	}
	fmt.Printf("CG converged in %d iterations (%.3fs); true residual ‖(K+λI)α−y‖/‖y‖ = %.2e\n",
		iters, solveTime, math.Sqrt(res/ynorm))

	// Training error of the fitted model f = Kα.
	var mse float64
	for i := range y {
		d := exact[i] - y[i]
		mse += d * d
	}
	fmt.Printf("training MSE of f = Kα: %.4f (noise variance 0.01)\n", mse/float64(dim))
}

func operatorErr(H *gofmm.Hierarchical, n int) float64 {
	rng := rand.New(rand.NewSource(99))
	W := gofmm.NewMatrix(n, 2)
	for j := 0; j < 2; j++ {
		col := W.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	U := H.Matvec(W)
	return H.SampleRelErr(W, U, 50, 7)
}
