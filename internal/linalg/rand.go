package linalg

import (
	"math"
	"math/rand"
)

// GaussianMatrix returns an r×c matrix with i.i.d. N(0,1) entries drawn from
// rng. Used by the randomized-HSS baseline (global sketch Y = K·Ω) and by
// workload generators.
func GaussianMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for j := 0; j < c; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	return m
}

// UniformMatrix returns an r×c matrix with i.i.d. U(-1,1) entries.
func UniformMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for j := 0; j < c; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*rng.Float64() - 1
		}
	}
	return m
}

// RandomSPD returns a random n×n SPD matrix A = Q·diag(d)·Qᵀ with Q a random
// orthogonal matrix and d log-spaced in [1/cond, 1]; handy for tests.
func RandomSPD(rng *rand.Rand, n int, cond float64) *Matrix {
	G := GaussianMatrix(rng, n, n)
	Q := QRColumnPivot(G, 0, n).FormQ()
	QD := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		t := float64(j) / float64(max(1, n-1))
		copy(QD.Col(j), Q.Col(j))
		Scal(math.Pow(cond, -t), QD.Col(j))
	}
	return MatMul(false, true, QD, Q)
}
