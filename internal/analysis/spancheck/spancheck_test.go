package spancheck_test

import (
	"testing"

	"gofmm/internal/analysis/analyzertest"
	"gofmm/internal/analysis/spancheck"
)

func TestSpanCheck(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), spancheck.Analyzer, "spancheck")
}
