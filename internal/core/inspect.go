package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"gofmm/internal/linalg"
)

// CountingSPD wraps an SPD oracle and counts entry evaluations — the
// currency of GOFMM's complexity claims (compression must touch only
// O(N log N) entries, versus the O(N²) that global low-rank methods need).
type CountingSPD struct {
	K     SPD
	count int64
}

// NewCounting wraps K.
func NewCounting(K SPD) *CountingSPD { return &CountingSPD{K: K} }

// Dim returns the dimension.
func (c *CountingSPD) Dim() int { return c.K.Dim() }

// At counts one evaluation and forwards.
func (c *CountingSPD) At(i, j int) float64 {
	atomic.AddInt64(&c.count, 1)
	return c.K.At(i, j)
}

// Submatrix counts len(I)·len(J) evaluations and forwards (using the
// wrapped oracle's bulk path when available).
func (c *CountingSPD) Submatrix(I, J []int, dst *linalg.Matrix) {
	atomic.AddInt64(&c.count, int64(len(I)*len(J)))
	if b, ok := c.K.(Bulk); ok {
		b.Submatrix(I, J, dst)
		return
	}
	for col, j := range J {
		d := dst.Col(col)
		for row, i := range I {
			d[row] = c.K.At(i, j)
		}
	}
}

// Count returns the number of entries evaluated so far.
func (c *CountingSPD) Count() int64 { return atomic.LoadInt64(&c.count) }

// Reset zeroes the counter.
func (c *CountingSPD) Reset() { atomic.StoreInt64(&c.count, 0) }

// CompressedBytes returns the memory footprint of the compressed
// representation in bytes (interpolation matrices, skeleton index lists,
// interaction lists, cached blocks, permutation). The paper's storage claim
// is O(N log N) versus the dense 8·N² — see Stats and the compression-ratio
// tests.
func (h *Hierarchical) CompressedBytes() int64 {
	var b int64
	matBytes := func(m *linalg.Matrix) int64 {
		if m == nil {
			return 0
		}
		return int64(m.Rows) * int64(m.Cols) * 8
	}
	for id := range h.nodes {
		nd := &h.nodes[id]
		b += int64(len(nd.skel)+len(nd.near)+len(nd.far)) * 8
		b += matBytes(nd.proj)
		for _, m := range nd.cacheNear {
			b += matBytes(m)
		}
		for _, m := range nd.cacheFar {
			b += matBytes(m)
		}
		for _, m := range nd.cacheNear32 {
			if m != nil {
				b += m.Bytes()
			}
		}
		for _, m := range nd.cacheFar32 {
			if m != nil {
				b += m.Bytes()
			}
		}
	}
	b += int64(len(h.Tree.Perm)) * 16 // perm + iperm
	return b
}

// CompressionRatio returns CompressedBytes / (8·N²), the fraction of dense
// storage the compressed form needs.
func (h *Hierarchical) CompressionRatio() float64 {
	n := float64(h.K.Dim())
	return float64(h.CompressedBytes()) / (8 * n * n)
}

// StructureString renders the leaf-level block structure of the compressed
// matrix as ASCII art, mirroring Figure 2 of the paper: '#' marks near
// (dense) leaf blocks, letters mark far (low-rank) blocks at the tree level
// where the interaction is expressed ('a' = level 1, 'b' = level 2, …).
// Intended for small trees (≤ 64 leaves).
func (h *Hierarchical) StructureString() string {
	t := h.Tree
	nl := t.NumLeaves()
	grid := make([][]byte, nl)
	for i := range grid {
		grid[i] = fillRow('.', nl)
	}
	leafOrdinal := func(id int) int { return id - (nl - 1) }
	// Near blocks.
	for _, beta := range t.Leaves() {
		for _, alpha := range h.nodes[beta].near {
			grid[leafOrdinal(beta)][leafOrdinal(alpha)] = '#'
		}
	}
	// Far blocks: mark every leaf pair covered by the node pair.
	for id := range h.nodes {
		rb0, rb1 := leafRange(t, id)
		level := t.Nodes[id].Level
		for _, alpha := range h.nodes[id].far {
			cb0, cb1 := leafRange(t, alpha)
			mark := byte('a' + level - 1)
			if level == 0 {
				mark = '@' // root-level far block (should not occur)
			}
			for r := rb0; r < rb1; r++ {
				for c := cb0; c < cb1; c++ {
					grid[r][c] = mark
				}
			}
		}
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	if fb := h.DenseFallbacks(); len(fb) > 0 {
		sb.WriteString("dense-fallback nodes:")
		for _, id := range fb {
			fmt.Fprintf(&sb, " %d", id)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func fillRow(fill byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

// RankProfile returns the average skeleton rank per tree level (index =
// level; the root entry is 0 since the root is never skeletonized). Useful
// for diagnosing whether a matrix has bounded off-diagonal ranks (FMM/H²
// behaviour) or ranks that grow toward the root (the HODLR/HSS failure mode
// discussed in the paper's related-work section).
func (h *Hierarchical) RankProfile() []float64 {
	t := h.Tree
	sum := make([]float64, t.Depth+1)
	cnt := make([]float64, t.Depth+1)
	for id := 1; id < len(t.Nodes); id++ {
		l := t.Nodes[id].Level
		sum[l] += float64(len(h.nodes[id].skel))
		cnt[l]++
	}
	for l := range sum {
		if cnt[l] > 0 {
			sum[l] /= cnt[l]
		}
	}
	return sum
}
