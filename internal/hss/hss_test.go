package hss

import (
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
)

type denseOracle struct{ M *linalg.Matrix }

func (d denseOracle) Dim() int            { return d.M.Rows }
func (d denseOracle) At(i, j int) float64 { return d.M.At(i, j) }
func (d denseOracle) Submatrix(I, J []int, dst *linalg.Matrix) {
	for c, j := range J {
		col := dst.Col(c)
		src := d.M.Col(j)
		for r, i := range I {
			col[r] = src[i]
		}
	}
}

func kern1D(n int, h float64) *linalg.Matrix {
	K := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d := float64(i-j) / float64(n)
			K.Set(i, j, math.Exp(-d*d/(2*h*h)))
		}
	}
	for i := 0; i < n; i++ {
		K.Add(i, i, 1e-8)
	}
	return K
}

func TestHSSMatvecAccuracy(t *testing.T) {
	n := 600
	K := kern1D(n, 0.05)
	h := Compress(denseOracle{K}, Config{LeafSize: 64, Rank: 64, Tol: 1e-10, Seed: 1})
	rng := rand.New(rand.NewSource(70))
	W := linalg.GaussianMatrix(rng, n, 4)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-5 {
		t.Fatalf("HSS matvec error %g (avg rank %.1f)", d, h.AvgRank())
	}
}

func TestHSSExactOnGloballyLowRankPlusDiag(t *testing.T) {
	// K = G·Gᵀ + I with G of rank 6: every off-diagonal block has rank ≤ 6,
	// so HSS with rank ≥ 6 must be essentially exact.
	rng := rand.New(rand.NewSource(71))
	n := 300
	G := linalg.GaussianMatrix(rng, n, 6)
	K := linalg.MatMul(false, true, G, G)
	for i := 0; i < n; i++ {
		K.Add(i, i, 1)
	}
	h := Compress(denseOracle{K}, Config{LeafSize: 32, Rank: 16, Tol: 1e-12, Seed: 2})
	W := linalg.GaussianMatrix(rng, n, 3)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-8 {
		t.Fatalf("HSS on exact low-rank structure: error %g", d)
	}
	if h.MaxRankSeen > 16 {
		t.Fatalf("rank %d on rank-6 structure", h.MaxRankSeen)
	}
}

func TestHSSSingleLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	K := linalg.RandomSPD(rng, 40, 10)
	h := Compress(denseOracle{K}, Config{LeafSize: 64, Rank: 8, Seed: 3})
	W := linalg.GaussianMatrix(rng, 40, 2)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-12 {
		t.Fatalf("single-leaf HSS error %g", d)
	}
}

func TestHSSMultiRHS(t *testing.T) {
	n := 256
	K := kern1D(n, 0.1)
	h := Compress(denseOracle{K}, Config{LeafSize: 32, Rank: 40, Tol: 1e-10, Seed: 4})
	rng := rand.New(rand.NewSource(73))
	W := linalg.GaussianMatrix(rng, n, 5)
	U := h.Matvec(W)
	for j := 0; j < 5; j++ {
		Wj := linalg.NewMatrix(n, 1)
		copy(Wj.Col(0), W.Col(j))
		Uj := h.Matvec(Wj)
		for i := 0; i < n; i++ {
			if math.Abs(Uj.At(i, 0)-U.At(i, j)) > 1e-10*math.Max(1, U.MaxAbs()) {
				t.Fatalf("multi-RHS column %d mismatch at %d", j, i)
			}
		}
	}
}

func TestHSSOperatorSymmetric(t *testing.T) {
	n := 200
	K := kern1D(n, 0.08)
	h := Compress(denseOracle{K}, Config{LeafSize: 32, Rank: 48, Tol: 1e-10, Seed: 5})
	Kt := h.Matvec(linalg.Eye(n))
	if d := linalg.RelFrobDiff(Kt.Transposed(), Kt); d > 1e-12 {
		t.Fatalf("HSS operator not symmetric: %g", d)
	}
}

func TestHSSStats(t *testing.T) {
	K := kern1D(256, 0.1)
	h := Compress(denseOracle{K}, Config{LeafSize: 32, Rank: 32, Seed: 6})
	if h.SketchTime <= 0 || h.CompressTime < h.SketchTime {
		t.Fatalf("sketch/compress times wrong: %g %g", h.SketchTime, h.CompressTime)
	}
	rng := rand.New(rand.NewSource(74))
	h.Matvec(linalg.GaussianMatrix(rng, 256, 1))
	if h.EvalTime <= 0 {
		t.Fatal("eval time not recorded")
	}
}
