package testmat

import (
	"math"
	"testing"
)

func TestGeneratePassthrough(t *testing.T) {
	if len(Names()) != 24 {
		t.Fatalf("Names() = %d entries", len(Names()))
	}
	p, err := Generate("K10", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.K.Dim() != 100 {
		t.Fatalf("dim = %d", p.K.Dim())
	}
	if _, err := Generate("NOPE", 100, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestNewGaussKernel(t *testing.T) {
	p, err := Generate("K05", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	k := NewGaussKernel(p.Points, 0.7, 1e-6)
	if k.Dim() != 64 {
		t.Fatalf("dim = %d", k.Dim())
	}
	// Diagonal: exp(0) + ridge.
	if d := k.At(5, 5); math.Abs(d-1-1e-6) > 1e-12 {
		t.Fatalf("diagonal = %g", d)
	}
	// Symmetry.
	if k.At(3, 9) != k.At(9, 3) {
		t.Fatal("kernel not symmetric")
	}
	// Off-diagonal within (0, 1].
	if v := k.At(0, 1); v <= 0 || v > 1 {
		t.Fatalf("off-diagonal = %g", v)
	}
}
