package linalg

import (
	"math"
	"runtime"
	"sync"
)

// Level-1 kernels. These are the inner loops of everything else, so they are
// written for the compiler's bounds-check elimination: equal-length slices
// re-sliced up front.

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2 returns ‖x‖₂ with scaling for robustness.
func Nrm2(x []float64) float64 {
	var scale float64
	ssq := 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// IdxMax returns the index of the largest value in x (first on ties), or -1
// for an empty slice.
func IdxMax(x []float64) int {
	best, bi := math.Inf(-1), -1
	for i, v := range x {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// workers is the degree of parallelism used by blocked kernels.
func workers() int { return runtime.GOMAXPROCS(0) }

// parallelFor runs fn(lo, hi) over a partition of [0, n) across at most
// workers() goroutines. Grain is the minimum chunk size; small problems run
// inline to avoid goroutine overhead.
func parallelFor(n, grain int, fn func(lo, hi int)) {
	w := workers()
	if w <= 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > w {
		chunks = w
	}
	per := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += per {
		hi := min(lo+per, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Gemm computes C = alpha*op(A)*op(B) + beta*C where op is identity or
// transpose. It is the workhorse behind both the dense baseline ("SGEMM" in
// the paper's Figure 1) and all block operations inside GOFMM. The kernel is
// a column-major jki/axpy formulation with 4×4 register blocking, and the
// columns of C are processed in parallel panels.
func Gemm(transA, transB bool, alpha float64, A, B *Matrix, beta float64, C *Matrix) {
	m, k := A.Rows, A.Cols
	if transA {
		m, k = A.Cols, A.Rows
	}
	kb, n := B.Rows, B.Cols
	if transB {
		kb, n = B.Cols, B.Rows
	}
	if k != kb || C.Rows != m || C.Cols != n {
		panic("linalg: Gemm dimension mismatch")
	}
	if beta != 1 {
		if beta == 0 {
			C.Zero()
		} else {
			C.Scale(beta)
		}
	}
	if alpha == 0 || m == 0 || n == 0 || k == 0 {
		return
	}
	// The kernel walks columns of op(A); a transposed A would make that a
	// strided walk, so materialize Aᵀ once instead.
	if transA {
		A = A.Transposed()
	}
	bAt := func(kk, j int) float64 { return B.At(kk, j) }
	if transB {
		bAt = func(kk, j int) float64 { return B.At(j, kk) }
	}
	grain := max(1, 64*64*64/max(1, m*k)) // aim for ≥ ~256k flops per task
	parallelFor(n, grain, func(jlo, jhi int) {
		gemmPanel(alpha, A, bAt, C, k, jlo, jhi)
	})
}

// gemmPanel computes C[:, jlo:jhi] += alpha * A * B[:, jlo:jhi] with A
// column-major and B accessed through bAt.
func gemmPanel(alpha float64, A *Matrix, bAt func(k, j int) float64, C *Matrix, k, jlo, jhi int) {
	m := A.Rows
	j := jlo
	for ; j+4 <= jhi; j += 4 {
		c0, c1, c2, c3 := C.Col(j), C.Col(j+1), C.Col(j+2), C.Col(j+3)
		kk := 0
		// 4×4 register block: 16 multiply-adds per iteration over four A
		// columns (measured ~8% faster than the 4×2 variant on this kernel).
		for ; kk+4 <= k; kk += 4 {
			a0, a1, a2, a3 := A.Col(kk), A.Col(kk+1), A.Col(kk+2), A.Col(kk+3)
			var b [4][4]float64
			for p := 0; p < 4; p++ {
				b[p][0] = alpha * bAt(kk+p, j)
				b[p][1] = alpha * bAt(kk+p, j+1)
				b[p][2] = alpha * bAt(kk+p, j+2)
				b[p][3] = alpha * bAt(kk+p, j+3)
			}
			for i := 0; i < m; i++ {
				av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
				c0[i] += av0*b[0][0] + av1*b[1][0] + av2*b[2][0] + av3*b[3][0]
				c1[i] += av0*b[0][1] + av1*b[1][1] + av2*b[2][1] + av3*b[3][1]
				c2[i] += av0*b[0][2] + av1*b[1][2] + av2*b[2][2] + av3*b[3][2]
				c3[i] += av0*b[0][3] + av1*b[1][3] + av2*b[2][3] + av3*b[3][3]
			}
		}
		for ; kk+2 <= k; kk += 2 {
			a0 := A.Col(kk)
			a1 := A.Col(kk + 1)
			b00, b01, b02, b03 := alpha*bAt(kk, j), alpha*bAt(kk, j+1), alpha*bAt(kk, j+2), alpha*bAt(kk, j+3)
			b10, b11, b12, b13 := alpha*bAt(kk+1, j), alpha*bAt(kk+1, j+1), alpha*bAt(kk+1, j+2), alpha*bAt(kk+1, j+3)
			for i := 0; i < m; i++ {
				av0, av1 := a0[i], a1[i]
				c0[i] += av0*b00 + av1*b10
				c1[i] += av0*b01 + av1*b11
				c2[i] += av0*b02 + av1*b12
				c3[i] += av0*b03 + av1*b13
			}
		}
		for ; kk < k; kk++ {
			a0 := A.Col(kk)
			b0, b1, b2, b3 := alpha*bAt(kk, j), alpha*bAt(kk, j+1), alpha*bAt(kk, j+2), alpha*bAt(kk, j+3)
			for i := 0; i < m; i++ {
				av := a0[i]
				c0[i] += av * b0
				c1[i] += av * b1
				c2[i] += av * b2
				c3[i] += av * b3
			}
		}
	}
	for ; j < jhi; j++ {
		cj := C.Col(j)
		for kk := 0; kk < k; kk++ {
			Axpy(alpha*bAt(kk, j), A.Col(kk), cj)
		}
	}
}

// MatMul returns op(A)*op(B) as a new matrix.
func MatMul(transA, transB bool, A, B *Matrix) *Matrix {
	m := A.Rows
	if transA {
		m = A.Cols
	}
	n := B.Cols
	if transB {
		n = B.Rows
	}
	C := NewMatrix(m, n)
	Gemm(transA, transB, 1, A, B, 0, C)
	return C
}

// Gemv computes y = alpha*op(A)*x + beta*y for a single vector.
func Gemv(trans bool, alpha float64, A *Matrix, x []float64, beta float64, y []float64) {
	m, n := A.Rows, A.Cols
	if trans {
		if len(x) != m || len(y) != n {
			panic("linalg: Gemv dimension mismatch")
		}
		for j := 0; j < n; j++ {
			y[j] = beta*y[j] + alpha*Dot(A.Col(j), x)
		}
		return
	}
	if len(x) != n || len(y) != m {
		panic("linalg: Gemv dimension mismatch")
	}
	if beta != 1 {
		for i := range y {
			y[i] *= beta
		}
	}
	for j := 0; j < n; j++ {
		Axpy(alpha*x[j], A.Col(j), y)
	}
}

// TrsmLeftUpper solves op(R)·X = B in place (B becomes X) for an upper
// triangular R, with op = identity or transpose. Only the leading n×n
// triangle of R is referenced where n = B.Rows.
func TrsmLeftUpper(transR bool, R, B *Matrix) {
	n := B.Rows
	if R.Rows < n || R.Cols < n {
		panic("linalg: TrsmLeftUpper triangle too small")
	}
	parallelFor(B.Cols, 8, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			x := B.Col(j)
			if !transR {
				// Back substitution: R x = b.
				for i := n - 1; i >= 0; i-- {
					s := x[i]
					ri := R.Data[i:] // row i via strided access
					for kk := i + 1; kk < n; kk++ {
						s -= ri[kk*R.Stride] * x[kk]
					}
					x[i] = s / R.At(i, i)
				}
			} else {
				// Forward substitution: Rᵀ x = b, where Rᵀ is lower
				// triangular with column i equal to row i of R.
				for i := 0; i < n; i++ {
					x[i] /= R.At(i, i)
					xi := x[i]
					for kk := i + 1; kk < n; kk++ {
						x[kk] -= R.At(i, kk) * xi
					}
				}
			}
		}
	})
}

// TrsmLeftLower solves op(L)·X = B in place for a lower triangular L.
func TrsmLeftLower(transL bool, L, B *Matrix) {
	n := B.Rows
	if L.Rows < n || L.Cols < n {
		panic("linalg: TrsmLeftLower triangle too small")
	}
	parallelFor(B.Cols, 8, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			x := B.Col(j)
			if !transL {
				// Forward substitution with contiguous column access:
				// after computing x[i], subtract x[i]*L[i+1:,i].
				for i := 0; i < n; i++ {
					x[i] /= L.At(i, i)
					xi := x[i]
					col := L.Col(i)
					for kk := i + 1; kk < n; kk++ {
						x[kk] -= col[kk] * xi
					}
				}
			} else {
				// Back substitution on Lᵀ (upper): x[i] = (b[i] - L[i+1:,i]ᵀ x[i+1:]) / L[i,i].
				for i := n - 1; i >= 0; i-- {
					col := L.Col(i)
					s := x[i]
					for kk := i + 1; kk < n; kk++ {
						s -= col[kk] * x[kk]
					}
					x[i] = s / L.At(i, i)
				}
			}
		}
	})
}
