package linalg

import (
	"math/rand"
	"testing"
)

// Gemv is the hot kernel of width-1 compiled-plan replays; these benchmarks
// track it at the modal block shape (128×128) in both orientations against
// the general Gemm entry point on a one-column operand.
func benchGemvSetup(b *testing.B) (*Matrix, []float64, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	A := GaussianMatrix(rng, 128, 128)
	x := make([]float64, 128)
	y := make([]float64, 128)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return A, x, y
}

func BenchmarkGemvNoTrans(b *testing.B) {
	A, x, y := benchGemvSetup(b)
	b.SetBytes(128 * 128 * 8)
	for i := 0; i < b.N; i++ {
		Gemv(false, 1, A, x, 0, y)
	}
}

func BenchmarkGemvTrans(b *testing.B) {
	A, x, y := benchGemvSetup(b)
	b.SetBytes(128 * 128 * 8)
	for i := 0; i < b.N; i++ {
		Gemv(true, 1, A, x, 0, y)
	}
}

func BenchmarkGemmWidth1(b *testing.B) {
	A, x, y := benchGemvSetup(b)
	X := FromColumnMajor(128, 1, x)
	Y := FromColumnMajor(128, 1, y)
	b.SetBytes(128 * 128 * 8)
	for i := 0; i < b.N; i++ {
		Gemm(false, false, 1, A, X, 0, Y)
	}
}

func BenchmarkGemvMixed(b *testing.B) {
	A, x, y := benchGemvSetup(b)
	A32 := ToMatrix32(A)
	b.SetBytes(128 * 128 * 4)
	for i := 0; i < b.N; i++ {
		GemvMixed(1, A32, x, 0, y)
	}
}
