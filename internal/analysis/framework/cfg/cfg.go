// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward dataflow problems over them. It is the
// flow-sensitive layer of the gofmmlint framework: the PR 5 analyzers are
// syntactic (one ast.Inspect walk answers them), but lifetime and locking
// disciplines — "is the mutex held *here*", "is the reference released on
// *every* exit" — are path properties, and path properties need a graph.
//
// The graph is deliberately modest: basic blocks of statements, edges for
// branches, loops (including labeled break/continue), goto, switch/select
// dispatch and fallthrough, with `return` and explicit `panic(...)` both
// terminating into one synthetic Exit block. Two deliberate modeling
// choices keep the client analyses simple:
//
//   - defer is NOT edge-expanded. A *ast.DeferStmt appears in the block
//     where it executes (where the call is *registered*), and a forward
//     analysis treats it as "scheduled from here to every exit" — which is
//     exactly defer's semantics on the paths that pass the statement.
//   - implicit panics (any call may unwind) are NOT edges either. The
//     solver records the fact before every node, so an analyzer that cares
//     about unwinding (refcount does) checks call-carrying nodes directly
//     instead of paying for an exploded graph.
//
// Function literals are not descended into: a closure body is its own
// function with its own graph.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of statements. Nodes holds the
// statements (and, for branching blocks, the condition as the final node)
// in execution order. When Cond is non-nil the block ends on that
// condition and Succs[0] is the true edge, Succs[1] the false edge;
// otherwise every successor is an unconditional alternative (switch and
// select dispatch produce several).
type Block struct {
	Index int
	Nodes []ast.Node
	Cond  ast.Expr
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body. Entry starts the
// body; Exit is the single synthetic sink every return, explicit panic and
// normal fall-off reaches. Blocks unreachable from Entry (code after an
// unconditional return) remain in Blocks but are never visited by Solve.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// New builds the graph of body. A nil body (declaration without a body,
// e.g. an assembly shim) yields a graph whose Entry flows straight to Exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.g.Exit)
	return b.g
}

// builder carries the under-construction graph plus the lexical targets
// break/continue/goto resolve against.
type builder struct {
	g   *Graph
	cur *Block

	// loops is the stack of enclosing breakable/continuable constructs.
	loops []loopCtx
	// labels maps a label name to the block a goto (or labeled
	// break/continue via loops) jumps to. Forward gotos allocate the block
	// at first mention.
	labels map[string]*Block
	// pendingLabel is the label attached to the statement being built, so
	// for/switch/select can register labeled break/continue targets.
	pendingLabel string
}

type loopCtx struct {
	label     string
	breakTo   *Block
	continue_ *Block // nil for switch/select (no continue target)
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge links b.cur → to.
func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an unconditional edge to `to` and makes
// a fresh (initially unreachable) block current — the builder's way of
// expressing "control left; anything textually next is a new block".
func (b *builder) jump(to *Block) {
	b.edge(b.cur, to)
	b.cur = b.newBlock()
}

// branch ends the current block on cond with true edge → t, false → f.
func (b *builder) branch(cond ast.Expr, t, f *Block) {
	b.cur.Nodes = append(b.cur.Nodes, cond)
	b.cur.Cond = cond
	b.edge(b.cur, t)
	b.edge(b.cur, f)
	b.cur = b.newBlock()
}

func (b *builder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = map[string]*Block{}
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the label attached to the construct being entered.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findLoop resolves a break/continue target; label "" means innermost.
// wantContinue restricts to constructs that accept continue.
func (b *builder) findLoop(label string, wantContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if wantContinue && lc.continue_ == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is a join point (goto may target it); route control
		// through its block, then build the labeled statement with the
		// label pending so loops/switches register break targets under it.
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if lc := b.findLoop(label, false); lc != nil {
				b.jump(lc.breakTo)
			}
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if lc := b.findLoop(label, true); lc != nil {
				b.jump(lc.continue_)
			}
		case token.GOTO:
			b.jump(b.labelBlock(s.Label.Name))
		case token.FALLTHROUGH:
			// Handled by the switch builder (the next clause body follows);
			// nothing to record here.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		then := b.newBlock()
		els := b.newBlock()
		join := b.newBlock()
		b.branch(s.Cond, then, els)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		b.cur = els
		if s.Else != nil {
			b.stmt(s.Else)
		}
		b.edge(b.cur, join)
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.branch(s.Cond, body, exit)
		} else {
			b.edge(b.cur, body)
			b.cur = b.newBlock()
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: exit, continue_: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Post)
		}
		b.edge(b.cur, head)
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(b.cur, head)
		// The RangeStmt node itself stands for the per-iteration key/value
		// binding; it lives in the head so a forward analysis sees it before
		// every iteration.
		head.Nodes = append(head.Nodes, s)
		b.edge(head, body)
		b.edge(head, exit)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: exit, continue_: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, head)
		b.cur = exit

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchClauses(label, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchClauses(label, s.Body.List, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.switchClauses(label, s.Body.List, func(clause ast.Stmt) ast.Stmt {
			return clause.(*ast.CommClause).Comm
		})

	case *ast.DeferStmt, *ast.GoStmt, *ast.ExprStmt, *ast.AssignStmt,
		*ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isPanicStmt(s) {
			b.jump(b.g.Exit)
		}

	case *ast.EmptyStmt:
		// nothing
	default:
		// Unknown statement kinds flow through as opaque nodes.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchClauses builds the shared dispatch shape of switch, type switch and
// select: the head fans out to every clause body (and to the join when no
// default exists); fallthrough chains a clause into the next. comm extracts
// the clause's communication statement for select (nil otherwise).
func (b *builder) switchClauses(label string, clauses []ast.Stmt, comm func(ast.Stmt) ast.Stmt) {
	head := b.cur
	join := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, breakTo: join})

	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, c := range clauses {
		var list []ast.Stmt
		isDefault := false
		switch cl := c.(type) {
		case *ast.CaseClause:
			list = cl.Body
			isDefault = cl.List == nil
			for _, e := range cl.List {
				head.Nodes = append(head.Nodes, e)
			}
		case *ast.CommClause:
			list = cl.Body
			isDefault = cl.Comm == nil
		}
		hasDefault = hasDefault || isDefault
		b.edge(head, bodies[i])
		b.cur = bodies[i]
		if comm != nil {
			if cs := comm(c); cs != nil {
				b.cur.Nodes = append(b.cur.Nodes, cs)
			}
		}
		b.stmtList(list)
		if fallsThrough(list) && i+1 < len(clauses) {
			b.edge(b.cur, bodies[i+1])
			b.cur = b.newBlock()
		}
		b.edge(b.cur, join)
	}
	if !hasDefault && comm == nil {
		// A switch without a default may match no case: the head skips
		// straight to the join. A select without a default, by contrast,
		// blocks until some clause runs — no skip edge, so a fact
		// established in every clause survives the join.
		b.edge(head, join)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = join
}

// fallsThrough reports whether a case body ends in a fallthrough statement.
func fallsThrough(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	br, ok := list[len(list)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isPanicStmt reports whether s is a bare `panic(...)` call statement.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// Walk visits the parts of a graph node that execute when the node does,
// in ast.Inspect order. It differs from ast.Inspect in one place: a
// *ast.RangeStmt carried in a loop-head block stands only for its range
// expression and per-iteration key/value binding — its Body belongs to the
// loop's own blocks — so Walk does not descend into it. Analyses whose
// Transfer inspects node subtrees should use Walk, or they will attribute
// loop-body effects to the loop head.
func Walk(n ast.Node, f func(ast.Node) bool) {
	rs, _ := n.(*ast.RangeStmt)
	ast.Inspect(n, func(x ast.Node) bool {
		if rs != nil && x == ast.Node(rs.Body) {
			return false
		}
		return f(x)
	})
}
