package gofmm

import (
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/internal/spdmat"
)

// TestPublicAPIQuickstart exercises the README quickstart end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X := linalg.GaussianMatrix(rng, 3, 512)
	n := X.Cols
	M := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d2 := 0.0
			for q := 0; q < 3; q++ {
				d := X.At(q, i) - X.At(q, j)
				d2 += d * d
			}
			M.Set(i, j, math.Exp(-d2/2))
		}
	}
	K := NewDense(M)
	H, err := Compress(K, Config{
		LeafSize: 64, MaxRank: 64, Tol: 1e-7, Budget: 0.05,
		Distance: Angle, Seed: 1, CacheBlocks: true, Exec: Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	W := linalg.GaussianMatrix(rng, n, 8)
	U := H.Matvec(W)
	exact := ExactMatvec(K, W)
	d := linalg.RelFrobDiff(U, exact)
	if d > 5e-3 {
		t.Fatalf("quickstart error %g", d)
	}
	eps := H.SampleRelErr(W, U, 100, 2)
	if eps > 1e-2 {
		t.Fatalf("sampled ε₂ = %g", eps)
	}
}

// TestSPDMatProblemsCompress runs GOFMM over a representative subset of the
// paper's 22 matrices through the public API — an integration test of
// spdmat + core + linalg together.
func TestSPDMatProblemsCompress(t *testing.T) {
	cases := []struct {
		name   string
		maxEps float64
	}{
		{"K02", 1e-3},  // smooth inverse operator: compresses well
		{"K05", 1e-2},  // 6-D Gaussian kernel, moderate bandwidth
		{"K08", 1e-4},  // 6-D wide Gaussian kernel: very low rank
		{"K09", 1e-4},  // 6-D polynomial kernel: globally low rank
		{"K10", 1e-10}, // cosine similarity: exact low rank
		{"G03", 1e-2},  // geometric graph Laplacian inverse
		{"K12", 1e-2},  // variable-coefficient diffusion inverse
	}
	for _, tc := range cases {
		p, err := spdmat.Generate(tc.name, 400, 7)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		H, err := Compress(p.K, Config{
			LeafSize: 64, MaxRank: 64, Tol: 1e-7, Kappa: 16, Budget: 0.1,
			Distance: Angle, Seed: 3, CacheBlocks: true, Exec: Sequential,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rng := rand.New(rand.NewSource(4))
		W := linalg.GaussianMatrix(rng, p.K.Dim(), 4)
		U := H.Matvec(W)
		if eps := H.SampleRelErr(W, U, 100, 5); eps > tc.maxEps {
			t.Errorf("%s: ε₂ = %g > %g (avg rank %.1f)", tc.name, eps, tc.maxEps, H.Stats.AvgRank)
		}
	}
}

// TestHardMatricesHaveHighRank reproduces the qualitative Figure 5 claim:
// pseudo-spectral operators (K15–K17) resist compression at modest ranks.
func TestHardMatricesHaveHighRank(t *testing.T) {
	p, err := spdmat.Generate("K15", 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	H, err := Compress(p.K, Config{
		LeafSize: 64, MaxRank: 64, Tol: 1e-7, Kappa: 16, Budget: 0.05,
		Distance: Angle, Seed: 3, CacheBlocks: true, Exec: Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	W := linalg.GaussianMatrix(rng, p.K.Dim(), 2)
	U := H.Matvec(W)
	epsHard := H.SampleRelErr(W, U, 100, 7)

	q, err := spdmat.Generate("K02", 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	H2, err := Compress(q.K, Config{
		LeafSize: 64, MaxRank: 64, Tol: 1e-7, Kappa: 16, Budget: 0.05,
		Distance: Angle, Seed: 3, CacheBlocks: true, Exec: Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	W2 := linalg.GaussianMatrix(rng, q.K.Dim(), 2)
	U2 := H2.Matvec(W2)
	epsEasy := H2.SampleRelErr(W2, U2, 100, 8)
	if epsHard < epsEasy {
		t.Fatalf("expected K15 (ε=%g) to be harder than K02 (ε=%g)", epsHard, epsEasy)
	}
}

func TestHelpers(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("FromRows layout wrong")
	}
	if Eye(3).At(2, 2) != 1 {
		t.Fatal("Eye wrong")
	}
	d := NewDense(m)
	if d.Dim() != 2 || d.At(0, 1) != 2 {
		t.Fatal("NewDense wrong")
	}
}
