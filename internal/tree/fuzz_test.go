package tree

import "testing"

// FuzzMortonRoundTrip checks that arbitrary (path, level) pairs survive the
// encode/decode cycle and that parent-of is consistent with ancestry.
func FuzzMortonRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(5), uint8(3))
	f.Add(uint64(1)<<40, uint8(41))
	f.Fuzz(func(t *testing.T, path uint64, level uint8) {
		lvl := int(level % 50)
		path &= (uint64(1) << uint(lvl)) - 1 // keep the path within the level
		m := Morton(path<<mortonLevelBits | uint64(lvl))
		if m.Level() != lvl || m.Path() != path {
			t.Fatalf("round trip failed: %v", m)
		}
		if m.NodeID() < 0 {
			t.Fatal("negative node id")
		}
		// Every node is its own ancestor.
		if !m.IsAncestorOf(m) {
			t.Fatal("not self-ancestor")
		}
		// The ancestor at level 0 is the root.
		if root := m.AncestorAt(0); root.NodeID() != 0 {
			t.Fatalf("root ancestor = %v", root)
		}
	})
}

// FuzzBuildBalanced builds trees of arbitrary size/leaf parameters and
// checks the permutation and balance invariants.
func FuzzBuildBalanced(f *testing.F) {
	f.Add(17, 4)
	f.Add(1, 1)
	f.Add(1000, 7)
	f.Fuzz(func(t *testing.T, n, leaf int) {
		n = 1 + abs(n)%2000
		leaf = 1 + abs(leaf)%256
		tr := Build(n, leaf, nil)
		seen := make([]bool, n)
		for _, v := range tr.Perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("perm not a bijection at %d", v)
			}
			seen[v] = true
		}
		for _, id := range tr.Leaves() {
			if tr.Nodes[id].Size() > leaf {
				t.Fatalf("leaf %d larger than leafSize", id)
			}
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // MinInt
			return 0
		}
		return -x
	}
	return x
}
