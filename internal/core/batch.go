package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
)

// ErrEvaluatorClosed is the typed error every BatchEvaluator.Matvec
// submission receives once Close has begun: submissions after Close never
// hang, panic, or silently drop — they fail fast with this sentinel
// (dispatch with errors.Is). Requests accepted before Close are still
// served by the closing drain.
var ErrEvaluatorClosed = errors.New("core: batch evaluator closed")

// BatchOptions configures a BatchEvaluator's coalescing window. The zero
// value picks serving-oriented defaults.
type BatchOptions struct {
	// MaxBatch is the column budget per Matmat call: a flush happens as soon
	// as the pending requests reach this many right-hand sides (default 32 —
	// past the kernels' saturation width, so waiting longer buys nothing).
	MaxBatch int
	// MaxDelay bounds how long the oldest pending request waits for peers to
	// coalesce with before the batch is flushed anyway (default 250µs).
	MaxDelay time.Duration
	// QueueCap is the submission queue capacity; submitters block (honouring
	// their context) when it is full (default 4·MaxBatch).
	QueueCap int
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 250 * time.Microsecond
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 4 * o.MaxBatch
	}
	return o
}

// BatchStats is a snapshot of a BatchEvaluator's coalescing counters.
type BatchStats struct {
	// Requests is the number of accepted Matvec submissions; Columns the
	// total right-hand sides they carried.
	Requests, Columns int64
	// Flushes is the number of Matmat calls issued; Requests/Flushes is the
	// achieved coalescing factor.
	Flushes int64
}

type batchRes struct {
	U   *linalg.Matrix
	err error
}

type batchReq struct {
	W       *linalg.Matrix
	ctx     context.Context
	enq     time.Time
	traceID string        // caller's trace ID, "" when the ctx carried none
	out     chan batchRes // buffered(1): the flusher never blocks on delivery
}

// BatchEvaluator coalesces concurrent Matvec requests from many goroutines
// into Matmat calls — the serving-side counterpart of the batched kernels:
// individually submitted vectors would each run a GEMV-shaped four-pass
// sweep, while the coalesced block runs one GEMM-shaped sweep for everyone.
// Requests are gathered until MaxBatch columns are pending or the oldest
// request has waited MaxDelay, whichever comes first.
//
// Each submission gets exactly its own columns of the batched result (there
// is no cross-request data sharing), or a typed error: ErrCancelled /
// ErrTimeout when its context fires while queued, a *resilience.PanicError
// when a kernel panics, ErrEvaluatorClosed after Close. A panic in one
// batch is delivered to that batch's members and the evaluator keeps
// serving.
//
// With a telemetry Recorder attached to the operator's Config, the
// evaluator publishes batch.queue_depth, the batch.size and batch.wait_ms
// histograms, and batch.requests/batch.flushes counters.
type BatchEvaluator struct {
	h    *Hierarchical
	opts BatchOptions
	ctx  context.Context // bounds every flush; set at construction

	reqs   chan *batchReq
	quit   chan struct{} // closed by Close: stop coalescing, final drain
	done   chan struct{} // closed when the flusher has exited
	closed atomic.Bool

	requests atomic.Int64
	columns  atomic.Int64
	flushes  atomic.Int64
}

// NewBatchEvaluator starts a coalescing evaluator over h with an unbounded
// lifetime context. Close it to stop the background flusher.
func (h *Hierarchical) NewBatchEvaluator(opts BatchOptions) *BatchEvaluator {
	return h.NewBatchEvaluatorCtx(context.Background(), opts)
}

// NewBatchEvaluatorCtx starts a coalescing evaluator over h whose flushes
// run under ctx: cancelling it aborts in-flight Matmat work for every
// coalesced request at once. Close it to stop the background flusher.
func (h *Hierarchical) NewBatchEvaluatorCtx(ctx context.Context, opts BatchOptions) *BatchEvaluator {
	e := &BatchEvaluator{
		h:    h,
		opts: opts.withDefaults(),
		ctx:  ctx,
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	e.reqs = make(chan *batchReq, e.opts.QueueCap)
	go e.loop()
	return e
}

// Matvec submits W (n×k, usually k = 1) and blocks until the coalesced
// result arrives, the context fires, or the evaluator closes. The returned
// matrix is freshly allocated and owned by the caller; W is only read.
// Safe for concurrent use by any number of goroutines.
func (e *BatchEvaluator) Matvec(ctx context.Context, W *linalg.Matrix) (*linalg.Matrix, error) {
	if W == nil {
		return nil, fmt.Errorf("%w: core: batch Matvec weights are nil", resilience.ErrInvalidInput)
	}
	if n := e.h.K.Dim(); W.Rows != n {
		return nil, fmt.Errorf("%w: core: batch Matvec with %d rows, matrix dim %d",
			resilience.ErrInvalidInput, W.Rows, n)
	}
	if W.Cols == 0 {
		return linalg.NewMatrix(W.Rows, 0), nil
	}
	if e.closed.Load() {
		return nil, ErrEvaluatorClosed
	}
	req := &batchReq{W: W, ctx: ctx, enq: time.Now(), out: make(chan batchRes, 1)}
	req.traceID, _ = telemetry.TraceIDFrom(ctx)
	select {
	case e.reqs <- req:
	case <-ctx.Done():
		return nil, resilience.FromContext(ctx)
	case <-e.quit:
		return nil, ErrEvaluatorClosed
	}
	select {
	case res := <-req.out:
		return e.finish(req, res)
	case <-ctx.Done():
		// The batch may still compute this request's columns; the buffered
		// out channel lets the flusher deliver into the void.
		return nil, resilience.FromContext(ctx)
	case <-e.done:
		// Flusher exited; a final non-blocking check catches the race where
		// the result was delivered as part of the closing drain.
		select {
		case res := <-req.out:
			return e.finish(req, res)
		default:
			return nil, ErrEvaluatorClosed
		}
	}
}

// finish unwraps a delivered result, recording the caller-observed request
// latency (enqueue to delivery, the number a serving SLO is written
// against) on success.
func (e *BatchEvaluator) finish(req *batchReq, res batchRes) (*linalg.Matrix, error) {
	if res.err == nil {
		e.h.Cfg.Telemetry.Histogram("matvec.latency_ms").
			Observe(time.Since(req.enq).Seconds() * 1e3)
	}
	return res.U, res.err
}

// Close stops the flusher after a final drain of already-accepted requests
// and waits for it to exit. Subsequent Matvec calls return
// ErrEvaluatorClosed. Close is idempotent and safe to call from any number
// of goroutines concurrently with Matvec: every call blocks until the
// drain completes, and no accepted request is lost.
func (e *BatchEvaluator) Close() {
	if e.closed.CompareAndSwap(false, true) {
		close(e.quit)
	}
	<-e.done
}

// Closed reports whether Close has been initiated. Serving layers consult
// it to distinguish "evaluator draining" from transient errors without
// issuing a probe request.
func (e *BatchEvaluator) Closed() bool { return e.closed.Load() }

// Stats returns a snapshot of the coalescing counters.
func (e *BatchEvaluator) Stats() BatchStats {
	return BatchStats{
		Requests: e.requests.Load(),
		Columns:  e.columns.Load(),
		Flushes:  e.flushes.Load(),
	}
}

// loop is the single flusher goroutine: gather a window, flush it as one
// Matmat, repeat. It survives kernel panics (flush recovers and delivers
// the error to the batch) and exits only on Close.
func (e *BatchEvaluator) loop() {
	defer close(e.done)
	for {
		var first *batchReq
		select {
		case first = <-e.reqs:
		case <-e.quit:
			e.drain()
			return
		}
		batch := []*batchReq{first}
		cols := first.W.Cols
		timer := time.NewTimer(e.opts.MaxDelay)
	gather:
		for cols < e.opts.MaxBatch {
			select {
			case r := <-e.reqs:
				batch = append(batch, r)
				cols += r.W.Cols
			case <-timer.C:
				break gather
			case <-e.quit:
				break gather
			}
		}
		timer.Stop()
		e.flush(batch)
	}
}

// drain serves every request still sitting in the queue at Close time as
// one final batch (they were accepted before Close and must not be lost).
func (e *BatchEvaluator) drain() {
	var batch []*batchReq
	for {
		select {
		case r := <-e.reqs:
			batch = append(batch, r)
		default:
			if len(batch) > 0 {
				e.flush(batch)
			}
			return
		}
	}
}

// flush assembles the pending requests into one n×cols block, evaluates it
// with a single Matmat, and scatters per-request results. All assembly
// scratch comes from the configured workspace pool.
//
// Each flush mints its own trace ID: the flush span carries it, every
// member request gets a zero-length "batch.request" child span linking the
// caller's trace ID to it, and the Matmat runs under a context tagged with
// it — so a slow or crashed batch is attributable to the exact requests it
// coalesced, and each request's span feed entry names the flush that
// served it.
func (e *BatchEvaluator) flush(batch []*batchReq) {
	rec := e.h.Cfg.Telemetry
	flushID := telemetry.NewTraceID()
	// A panic anywhere below must not kill the flusher: convert it to a
	// typed error for this batch's members and keep serving. (MatmatCtx has
	// its own recover; this backstop covers the assembly/scatter code.)
	defer func() {
		if r := recover(); r != nil {
			err := &resilience.PanicError{Label: "batch.flush", Value: r, Stack: debug.Stack()}
			rec.ReportCrash("batch.flush", flushID, err)
			for _, req := range batch {
				select {
				case req.out <- batchRes{err: err}:
				default:
				}
			}
		}
	}()
	now := time.Now()
	// Drop members whose context fired while they were queued: they already
	// gave up, and shrinking the block is free at this point.
	live := batch[:0]
	for _, req := range batch {
		if err := resilience.FromContext(req.ctx); err != nil {
			req.out <- batchRes{err: err}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	cols := 0
	for _, req := range live {
		cols += req.W.Cols
	}
	e.requests.Add(int64(len(live)))
	e.columns.Add(int64(cols))
	e.flushes.Add(1)
	fsp := rec.StartSpan("batch.flush")
	defer fsp.End()
	fsp.SetAttr(telemetry.AttrTraceID, flushID)
	fsp.SetAttr("batch.cols", fmt.Sprintf("%d", cols))
	for _, req := range live {
		rs := fsp.StartSpan("batch.request")
		rs.SetAttr(telemetry.AttrTraceID, req.traceID)
		rs.SetAttr("flush_trace_id", flushID)
		rs.End()
	}
	if rec != nil {
		rec.Gauge("batch.queue_depth").Set(float64(len(e.reqs)))
		rec.Histogram("batch.size").Observe(float64(cols))
		for _, req := range live {
			rec.Histogram("batch.wait_ms").Observe(now.Sub(req.enq).Seconds() * 1e3)
		}
		rec.Counter("batch.requests").Add(int64(len(live)))
		rec.Counter("batch.flushes").Add(1)
	}
	n := e.h.K.Dim()
	pool := e.h.Cfg.Workspace
	X := pool.GetMatrix(n, cols)
	at := 0
	for _, req := range live {
		X.View(0, at, n, req.W.Cols).CopyFrom(req.W)
		at += req.W.Cols
	}
	U, err := e.h.MatmatCtx(telemetry.ContextWithTraceID(e.ctx, flushID), X)
	pool.PutMatrix(X)
	if err != nil {
		fsp.SetAttr("error", err.Error())
		for _, req := range live {
			req.out <- batchRes{err: err}
		}
		return
	}
	at = 0
	for _, req := range live {
		k := req.W.Cols
		out := linalg.NewMatrix(n, k)
		out.CopyFrom(U.View(0, at, n, k))
		at += k
		req.out <- batchRes{U: out}
	}
	// U was freshly allocated by MatmatCtx; file it in the pool for the
	// next assembly of a similar size.
	pool.PutMatrix(U)
}
