package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveGemm is the reference triple loop.
func naiveGemm(transA, transB bool, alpha float64, A, B *Matrix, beta float64, C *Matrix) {
	aAt := A.At
	if transA {
		aAt = func(i, j int) float64 { return A.At(j, i) }
	}
	bAt := B.At
	if transB {
		bAt = func(i, j int) float64 { return B.At(j, i) }
	}
	k := A.Cols
	if transA {
		k = A.Rows
	}
	for i := 0; i < C.Rows; i++ {
		for j := 0; j < C.Cols; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += aAt(i, kk) * bAt(kk, j)
			}
			C.Set(i, j, alpha*s+beta*C.At(i, j))
		}
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := []struct {
		m, k, n        int
		transA, transB bool
		alpha, beta    float64
	}{
		{5, 7, 9, false, false, 1, 0},
		{5, 7, 9, true, false, 2, 0.5},
		{5, 7, 9, false, true, -1, 1},
		{5, 7, 9, true, true, 0.3, -2},
		{1, 1, 1, false, false, 1, 0},
		{64, 33, 17, false, false, 1, 0},
		{17, 64, 33, true, true, 1.5, 0.25},
		{3, 100, 4, false, true, 1, 0},
	}
	for ci, tc := range cases {
		ar, ac := tc.m, tc.k
		if tc.transA {
			ar, ac = tc.k, tc.m
		}
		br, bc := tc.k, tc.n
		if tc.transB {
			br, bc = tc.n, tc.k
		}
		A := GaussianMatrix(rng, ar, ac)
		B := GaussianMatrix(rng, br, bc)
		C := GaussianMatrix(rng, tc.m, tc.n)
		want := C.Clone()
		naiveGemm(tc.transA, tc.transB, tc.alpha, A, B, tc.beta, want)
		Gemm(tc.transA, tc.transB, tc.alpha, A, B, tc.beta, C)
		if !EqualApprox(C, want, 1e-10*float64(tc.k+1)) {
			t.Fatalf("case %d: Gemm mismatch (max |Δ| = %g)", ci, maxDiff(C, want))
		}
	}
}

func maxDiff(a, b *Matrix) float64 {
	d := a.Clone()
	d.AddScaled(-1, b)
	return d.MaxAbs()
}

func TestGemmPropertyRandomShapes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(24), 1+rng.Intn(24), 1+rng.Intn(24)
		A := GaussianMatrix(rng, m, k)
		B := GaussianMatrix(rng, k, n)
		C := NewMatrix(m, n)
		Gemm(false, false, 1, A, B, 0, C)
		want := NewMatrix(m, n)
		naiveGemm(false, false, 1, A, B, 0, want)
		return EqualApprox(C, want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	Gemm(false, false, 1, NewMatrix(2, 3), NewMatrix(4, 5), 0, NewMatrix(2, 5))
}

func TestGemv(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	A := GaussianMatrix(rng, 9, 6)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 9)
	Gemv(false, 1, A, x, 0, y)
	X := FromColumnMajor(6, 1, x)
	want := MatMul(false, false, A, X)
	for i := range y {
		if math.Abs(y[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("Gemv mismatch at %d", i)
		}
	}
	// Transposed.
	yt := make([]float64, 6)
	Gemv(true, 1, A, want.Col(0), 0, yt)
	wt := MatMul(true, false, A, want)
	for i := range yt {
		if math.Abs(yt[i]-wt.At(i, 0)) > 1e-10 {
			t.Fatalf("Gemvᵀ mismatch at %d", i)
		}
	}
}

func TestDotAxpyNrm2(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 4, 3, 2, 1}
	if got := Dot(x, y); got != 35 {
		t.Fatalf("Dot = %g", got)
	}
	z := append([]float64(nil), y...)
	Axpy(2, x, z)
	want := []float64{7, 8, 9, 10, 11}
	for i := range z {
		if z[i] != want[i] {
			t.Fatalf("Axpy[%d] = %g", i, z[i])
		}
	}
	if got := Nrm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Nrm2 = %g", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Fatalf("Nrm2(nil) = %g", got)
	}
}

func TestTrsmUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 20
	R := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		R.Set(i, i, 1+rng.Float64())
		for j := i + 1; j < n; j++ {
			R.Set(i, j, rng.NormFloat64())
		}
	}
	X := GaussianMatrix(rng, n, 5)
	B := MatMul(false, false, R, X)
	TrsmLeftUpper(false, R, B)
	if !EqualApprox(B, X, 1e-8) {
		t.Fatalf("TrsmLeftUpper failed, max diff %g", maxDiff(B, X))
	}
	Bt := MatMul(true, false, R, X)
	TrsmLeftUpper(true, R, Bt)
	if !EqualApprox(Bt, X, 1e-8) {
		t.Fatalf("TrsmLeftUpperᵀ failed, max diff %g", maxDiff(Bt, X))
	}
}

func TestTrsmLower(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 20
	L := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		L.Set(j, j, 1+rng.Float64())
		for i := j + 1; i < n; i++ {
			L.Set(i, j, rng.NormFloat64())
		}
	}
	X := GaussianMatrix(rng, n, 3)
	B := MatMul(false, false, L, X)
	TrsmLeftLower(false, L, B)
	if !EqualApprox(B, X, 1e-8) {
		t.Fatalf("TrsmLeftLower failed, max diff %g", maxDiff(B, X))
	}
	Bt := MatMul(true, false, L, X)
	TrsmLeftLower(true, L, Bt)
	if !EqualApprox(Bt, X, 1e-8) {
		t.Fatalf("TrsmLeftLowerᵀ failed, max diff %g", maxDiff(Bt, X))
	}
}

func TestIdxMax(t *testing.T) {
	if IdxMax([]float64{1, 5, 3, 5}) != 1 {
		t.Fatal("IdxMax ties should pick first")
	}
	if IdxMax(nil) != -1 {
		t.Fatal("IdxMax(nil) != -1")
	}
}
