package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) rendered from a metrics
// snapshot. Internal dotted names are sanitized into the Prometheus charset
// and namespaced under "gofmm_": the counter "batch.flushes" becomes
// gofmm_batch_flushes_total, the histogram "matvec.latency_ms" becomes a
// summary gofmm_matvec_latency_ms{quantile="0.5"|"0.95"|"0.99"} plus
// _sum/_count. Output is sorted by metric name so scrapes are
// byte-deterministic for a fixed snapshot (golden-testable).

// promQuantiles are the summary quantiles exported for every histogram.
var promQuantiles = []float64{0.5, 0.95, 0.99}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. The caller owns Content-Type (the live server sets
// "text/plain; version=0.0.4").
func WritePrometheus(w io.Writer, snap Snapshot) error {
	for _, name := range sortedKeys(snap.Counters) {
		pn := "gofmm_" + SanitizeMetricName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			pn, pn, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := "gofmm_" + SanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
			pn, pn, promFloat(snap.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		pn := "gofmm_" + SanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		for _, q := range promQuantiles {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n",
				pn, strconv.FormatFloat(q, 'g', -1, 64),
				promFloat(h.Quantile(q))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promFloat formats a float the way the exposition format expects,
// including the special spellings of infinities and NaN.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
