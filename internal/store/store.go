// Package store implements gofmm.store/v1: a versioned on-disk container
// for compressed operators with a flat, pointer-free layout. A store file
// is a 64-byte header, a sha256-protected section table, and a sequence of
// 64-byte-aligned sections. The numeric payload (every skeleton basis,
// projection and cached near/far block, packed column-major) lives in one
// contiguous arena section per precision, so a loaded operator's matrices
// are views into a single byte range — the MatRox storage thesis: loading
// is mapping, not parsing.
//
// Two load paths share one validator:
//
//   - Open reads the whole file into memory through the hardened
//     untrusted-stream discipline (every length bounded by the actual file
//     size before any allocation, every section checksummed).
//   - OpenMmap (unix) maps the file read-only and serves straight out of
//     the mapping; on unsupported platforms it returns ErrMmapUnsupported
//     and callers fall back to Open.
//
// The package knows nothing about trees or plans: it stores opaque
// sections keyed by kind. internal/core owns the section payloads.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"gofmm/internal/resilience"
)

// Format constants of gofmm.store/v1.
const (
	// Magic opens every store file: "GOFMSTOR".
	Magic = 0x524F54534D464F47 // little-endian "GOFMSTOR"
	// Version is the current container version.
	Version = 1
	// Align is the section alignment: every section offset is a multiple
	// of 64 bytes, so a page-aligned mapping yields cache-line-aligned
	// (and a fortiori 8-byte-aligned) float arenas.
	Align = 64

	headerSize = 64
	entrySize  = 56
	// maxSections bounds the section count a header may declare; v1 writes
	// five sections, so 64 leaves ample room for future kinds while keeping
	// the table allocation trivially bounded.
	maxSections = 64
)

// SectionKind identifies a section's payload. Kinds unknown to a reader are
// rejected: v1 is a closed format, and a kind this build cannot interpret
// means the file is from a different (or corrupted) world.
type SectionKind uint32

const (
	// SecMeta holds the operator's scalar metadata (dimensions, the
	// compression configuration snapshot).
	SecMeta SectionKind = 1
	// SecTopo holds the tree topology: permutation, per-node skeleton and
	// interaction lists, and the matrix table mapping every stored matrix
	// to its arena range.
	SecTopo SectionKind = 2
	// SecPlan holds the compiled evaluation plan's op stream and stage
	// schedule (may be absent when the operator was saved without a plan).
	SecPlan SectionKind = 3
	// SecArena64 is the packed float64 arena (column-major matrix data,
	// each matrix starting at a 64-byte-aligned offset).
	SecArena64 SectionKind = 4
	// SecArena32 is the packed float32 arena.
	SecArena32 SectionKind = 5
)

func (k SectionKind) String() string {
	switch k {
	case SecMeta:
		return "meta"
	case SecTopo:
		return "topo"
	case SecPlan:
		return "plan"
	case SecArena64:
		return "arena64"
	case SecArena32:
		return "arena32"
	}
	return fmt.Sprintf("SectionKind(%d)", uint32(k))
}

// The store error taxonomy. Malformed input wraps resilience.ErrInvalidInput
// so callers dispatching on the repo-wide taxonomy classify store corruption
// as bad input, never as an internal failure.
var (
	// ErrBadStore is returned when the input is not a well-formed
	// gofmm.store/v1 file: bad magic, impossible lengths, overlapping or
	// misaligned sections, truncation.
	ErrBadStore = fmt.Errorf("%w: store: malformed operator store", resilience.ErrInvalidInput)
	// ErrChecksum is returned when a section's payload does not match its
	// recorded sha256 (bit rot, torn writes, tampering).
	ErrChecksum = fmt.Errorf("%w: store: section checksum mismatch", resilience.ErrInvalidInput)
	// ErrMmapUnsupported is returned by OpenMmap on platforms without mmap
	// support; callers fall back to the copying Open path.
	ErrMmapUnsupported = errors.New("store: mmap not supported on this platform")
)

// Section is one payload handed to Write, or one parsed range inside an
// opened File.
type Section struct {
	Kind SectionKind
	Data []byte
}

// section is the parsed table entry of an opened file.
type section struct {
	kind     SectionKind
	off, len int64
}

// File is an opened, fully validated store file. The section payloads are
// views into one backing buffer — a private heap copy (Open) or a shared
// read-only mapping (OpenMmap). A File is immutable after open and safe for
// concurrent use; Close releases the mapping, after which no section slice
// may be touched.
type File struct {
	data     []byte
	sections []section
	mapped   bool
	closed   bool
}

// Mapped reports whether the file is served from an mmap (true) or a heap
// copy (false).
func (f *File) Mapped() bool { return f.mapped }

// Size returns the total file size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Section returns the payload of the first section of the given kind, or
// (nil, false) when the file has none. The returned slice aliases the
// backing buffer: it is valid until Close and must not be mutated.
func (f *File) Section(kind SectionKind) ([]byte, bool) {
	for _, s := range f.sections {
		if s.kind == kind {
			return f.data[s.off : s.off+s.len : s.off+s.len], true
		}
	}
	return nil, false
}

// Kinds lists the file's section kinds in file order.
func (f *File) Kinds() []SectionKind {
	out := make([]SectionKind, len(f.sections))
	for i, s := range f.sections {
		out[i] = s.kind
	}
	return out
}

// Close releases the backing buffer (unmapping it when mmap'd). Idempotent.
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	if f.mapped {
		return f.unmap()
	}
	f.data = nil
	return nil
}

// Decode validates data as a complete gofmm.store/v1 image and returns a
// File whose sections alias it. It is the single validator behind Open and
// OpenMmap and the fuzz target's entry point: arbitrary input must produce a
// typed error, never a panic, and never an allocation sized by an
// unvalidated field (the only length-driven allocation is the section
// table, bounded by maxSections).
func Decode(data []byte) (*File, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header",
			ErrBadStore, len(data), headerSize)
	}
	le := binary.LittleEndian
	if le.Uint64(data[0:8]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadStore)
	}
	if v := le.Uint32(data[8:12]); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadStore, v)
	}
	count := int64(le.Uint32(data[12:16]))
	fileSize := le.Uint64(data[16:24])
	tableOff := le.Uint64(data[24:32])
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("%w: header declares %d bytes, file has %d",
			ErrBadStore, fileSize, len(data))
	}
	if count < 1 || count > maxSections {
		return nil, fmt.Errorf("%w: section count %d outside [1,%d]", ErrBadStore, count, maxSections)
	}
	if tableOff != headerSize {
		return nil, fmt.Errorf("%w: section table at %d, want %d", ErrBadStore, tableOff, headerSize)
	}
	tableLen := count * entrySize
	if int64(headerSize)+tableLen > int64(len(data)) {
		return nil, fmt.Errorf("%w: section table overruns the file", ErrBadStore)
	}
	table := data[headerSize : headerSize+tableLen]
	if sha256.Sum256(table) != [sha256.Size]byte(data[32:64]) {
		return nil, fmt.Errorf("%w: section table", ErrChecksum)
	}
	f := &File{data: data, sections: make([]section, 0, count)}
	prevEnd := int64(headerSize) + tableLen
	seen := make(map[SectionKind]bool, count)
	for i := int64(0); i < count; i++ {
		e := table[i*entrySize : (i+1)*entrySize]
		kind := SectionKind(le.Uint32(e[0:4]))
		off := le.Uint64(e[8:16])
		sz := le.Uint64(e[16:24])
		switch kind {
		case SecMeta, SecTopo, SecPlan, SecArena64, SecArena32:
		default:
			return nil, fmt.Errorf("%w: unknown section kind %d", ErrBadStore, uint32(kind))
		}
		if seen[kind] {
			return nil, fmt.Errorf("%w: duplicate section %s", ErrBadStore, kind)
		}
		seen[kind] = true
		if off%Align != 0 {
			return nil, fmt.Errorf("%w: section %s at offset %d breaks %d-byte alignment",
				ErrBadStore, kind, off, Align)
		}
		if off > uint64(len(data)) || sz > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %s range [%d,+%d) overruns %d-byte file",
				ErrBadStore, kind, off, sz, len(data))
		}
		if int64(off) < prevEnd {
			return nil, fmt.Errorf("%w: section %s at %d overlaps the previous section",
				ErrBadStore, kind, off)
		}
		prevEnd = int64(off) + int64(sz)
		payload := data[off : off+sz]
		if sha256.Sum256(payload) != [sha256.Size]byte(e[24:56]) {
			return nil, fmt.Errorf("%w: section %s", ErrChecksum, kind)
		}
		f.sections = append(f.sections, section{kind: kind, off: int64(off), len: int64(sz)})
	}
	return f, nil
}
