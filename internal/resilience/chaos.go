package resilience

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"time"

	"gofmm/internal/telemetry"
)

// ChaosConfig selects which faults to inject and how often. Zero values
// disable each fault class; a fully-zero config injects nothing.
type ChaosConfig struct {
	// Seed makes every injection decision deterministic.
	Seed int64
	// TaskFail is the probability that a scheduler task execution is failed
	// (the engine retries it, so execution still completes unless the retry
	// budget is exhausted).
	TaskFail float64
	// MsgDrop is the probability that a simulated-MPI message delivery is
	// dropped (the router retransmits with backoff).
	MsgDrop float64
	// MsgCorrupt is the probability that a delivery arrives corrupted; the
	// router's (simulated) checksum detects it and retransmits, so the
	// observable effect is the same as a drop but counted separately.
	MsgCorrupt float64
	// MsgDelayProb is the probability that a delivery is delayed by MsgDelay.
	MsgDelayProb float64
	// MsgDelay is the injected per-message latency (default 200µs when
	// MsgDelayProb > 0).
	MsgDelay time.Duration
	// OraclePoison is the probability that an entry-oracle read returns a
	// poisoned (NaN) value — exercising the oracle-validation rejection path.
	OraclePoison float64
}

// Chaos is a deterministic fault-injection harness. A nil *Chaos is valid
// and injects nothing (every method no-ops), so instrumented code carries no
// conditionals. Decisions are drawn from per-site RNG streams keyed by
// (Seed, site): the k-th decision at a site is reproducible run-to-run, no
// matter how goroutines interleave across sites.
type Chaos struct {
	cfg ChaosConfig
	rec *telemetry.Recorder

	mu       sync.Mutex
	streams  map[string]*rand.Rand // guarded by mu
	injected map[string]int64      // guarded by mu
}

// NewChaos builds a harness. rec may be nil; when attached, every injection
// also bumps a "chaos.<kind>.injected" telemetry counter so chaos runs emit
// auditable counts.
func NewChaos(cfg ChaosConfig, rec *telemetry.Recorder) *Chaos {
	if cfg.MsgDelay <= 0 {
		cfg.MsgDelay = 200 * time.Microsecond
	}
	return &Chaos{
		cfg:      cfg,
		rec:      rec,
		streams:  map[string]*rand.Rand{},
		injected: map[string]int64{},
	}
}

// Enabled reports whether any fault class has a positive rate.
func (c *Chaos) Enabled() bool {
	if c == nil {
		return false
	}
	return c.cfg.TaskFail > 0 || c.cfg.MsgDrop > 0 || c.cfg.MsgCorrupt > 0 ||
		c.cfg.MsgDelayProb > 0 || c.cfg.OraclePoison > 0
}

// Config returns the harness configuration (zero on nil).
func (c *Chaos) Config() ChaosConfig {
	if c == nil {
		return ChaosConfig{}
	}
	return c.cfg
}

// roll draws the next decision for site with probability p, recording the
// injection under kind when it fires.
func (c *Chaos) roll(kind, site string, p float64) bool {
	if c == nil || p <= 0 {
		return false
	}
	c.mu.Lock()
	rng := c.streams[site]
	if rng == nil {
		h := fnv.New64a()
		h.Write([]byte(site))
		rng = rand.New(rand.NewSource(c.cfg.Seed ^ int64(h.Sum64())))
		c.streams[site] = rng
	}
	hit := rng.Float64() < p
	if hit {
		c.injected[kind]++
	}
	c.mu.Unlock()
	if hit && c.rec != nil {
		c.rec.Counter("chaos." + kind + ".injected").Add(1)
		if l := c.rec.Logger(); l != nil {
			l.Warn("chaos injection", "kind", kind, "site", site)
		}
	}
	return hit
}

// TaskFail decides whether the next execution attempt of the labelled task
// is failed.
func (c *Chaos) TaskFail(label string) bool {
	if c == nil {
		return false
	}
	return c.roll("task_fail", "task."+label, c.cfg.TaskFail)
}

// MsgDrop decides whether the next message delivery at site is dropped.
func (c *Chaos) MsgDrop(site string) bool {
	if c == nil {
		return false
	}
	return c.roll("msg_drop", "drop."+site, c.cfg.MsgDrop)
}

// MsgCorrupt decides whether the next delivery at site arrives corrupted.
func (c *Chaos) MsgCorrupt(site string) bool {
	if c == nil {
		return false
	}
	return c.roll("msg_corrupt", "corrupt."+site, c.cfg.MsgCorrupt)
}

// MsgDelay returns the injected latency for the next delivery at site
// (zero when the delay fault does not fire).
func (c *Chaos) MsgDelay(site string) time.Duration {
	if c == nil {
		return 0
	}
	if c.roll("msg_delay", "delay."+site, c.cfg.MsgDelayProb) {
		return c.cfg.MsgDelay
	}
	return 0
}

// PoisonOracle decides whether an entry-oracle read at site is poisoned,
// returning the poisoned value when it fires. Unlike the message/task hooks
// this decision is a pure hash of (seed, site) with no per-site stream: the
// same site is poisoned on every read (the model is a corrupted value in the
// backing store), and the per-entry site space can be huge without growing
// any state.
func (c *Chaos) PoisonOracle(site string) (float64, bool) {
	if c == nil || c.cfg.OraclePoison <= 0 {
		return 0, false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", c.cfg.Seed, site)
	if float64(h.Sum64()>>11)/float64(1<<53) >= c.cfg.OraclePoison {
		return 0, false
	}
	c.mu.Lock()
	c.injected["oracle_poison"]++
	c.mu.Unlock()
	if c.rec != nil {
		c.rec.Counter("chaos.oracle_poison.injected").Add(1)
		if l := c.rec.Logger(); l != nil {
			l.Warn("chaos injection", "kind", "oracle_poison", "site", site)
		}
	}
	return math.NaN(), true
}

// Injected returns a copy of the per-kind injection counts so far — the
// ground truth CI compares telemetry counters against.
func (c *Chaos) Injected() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.injected))
	for k, v := range c.injected {
		out[k] = v
	}
	return out
}
