package telemetry

import (
	"strings"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every reading, making span durations
// deterministic for tests.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.t = c.Add(c.step)
	return c.t
}

func (c *fakeClock) Add(d time.Duration) time.Time { return c.t.Add(d) }

func testRecorder(step time.Duration) *Recorder {
	clk := &fakeClock{t: time.Unix(1700000000, 0), step: step}
	return newRecorder(clk.Now)
}

func TestSpanNesting(t *testing.T) {
	r := testRecorder(time.Millisecond)
	root := r.StartSpan("compress")
	ann := root.StartSpan("ann")
	if d := ann.End(); d <= 0 {
		t.Fatalf("child span duration %v", d)
	}
	skel := root.StartSpan("skel")
	skel.End()
	root.End()

	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "compress" {
		t.Fatalf("roots = %+v", snap.Spans)
	}
	kids := snap.Spans[0].Children
	if len(kids) != 2 || kids[0].Name != "ann" || kids[1].Name != "skel" {
		t.Fatalf("children = %+v", kids)
	}
	if kids[0].Seconds <= 0 || snap.Spans[0].Seconds < kids[0].Seconds {
		t.Fatalf("durations: root %v ann %v", snap.Spans[0].Seconds, kids[0].Seconds)
	}
	if got := r.PhaseSeconds("compress", "ann"); got != kids[0].Seconds {
		t.Fatalf("PhaseSeconds = %v, want %v", got, kids[0].Seconds)
	}
	if got := r.PhaseSeconds("compress", "nope"); got != 0 {
		t.Fatalf("PhaseSeconds for missing phase = %v", got)
	}
}

func TestSpanEndTwiceKeepsFirst(t *testing.T) {
	r := testRecorder(time.Millisecond)
	sp := r.StartSpan("x")
	d1 := sp.End()
	d2 := sp.End()
	if d1 != d2 {
		t.Fatalf("second End changed duration: %v vs %v", d1, d2)
	}
}

func TestAddChildExplicitInterval(t *testing.T) {
	r := testRecorder(time.Millisecond)
	root := r.StartSpan("matvec")
	root.AddChild("n2s", 10*time.Millisecond, 25*time.Millisecond)
	root.AddChild("bad", 30*time.Millisecond, 20*time.Millisecond) // clamped
	root.End()
	snap := r.Snapshot()
	kids := snap.Spans[0].Children
	if kids[0].Seconds != 0.015 {
		t.Fatalf("explicit child duration = %v", kids[0].Seconds)
	}
	if kids[1].Seconds != 0 {
		t.Fatalf("inverted interval not clamped: %v", kids[1].Seconds)
	}
}

func TestMetricsRegistry(t *testing.T) {
	r := testRecorder(time.Millisecond)
	r.Counter("oracle.at").Add(3)
	r.Counter("oracle.at").Add(4)
	r.Gauge("util").Set(0.5)
	r.Gauge("util").Set(0.75)
	for _, v := range []float64{1, 2, 3, 100} {
		r.Histogram("rank").Observe(v)
	}
	snap := r.Snapshot()
	if snap.Counters["oracle.at"] != 7 {
		t.Fatalf("counter = %d", snap.Counters["oracle.at"])
	}
	if snap.Gauges["util"] != 0.75 {
		t.Fatalf("gauge = %v", snap.Gauges["util"])
	}
	h := snap.Histograms["rank"]
	if h.Count != 4 || h.Min != 1 || h.Max != 100 || h.Mean != 26.5 {
		t.Fatalf("histogram = %+v", h)
	}
	if len(h.Buckets) == 0 {
		t.Fatalf("histogram has no buckets: %+v", h)
	}
	var n int64
	for _, c := range h.Buckets {
		n += c
	}
	if n != h.Count {
		t.Fatalf("bucket counts %d != count %d", n, h.Count)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	sp := r.StartSpan("x")
	if sp != nil {
		t.Fatal("nil recorder produced a span")
	}
	child := sp.StartSpan("y")
	if child != nil || sp.End() != 0 || sp.Name() != "" {
		t.Fatal("nil span not inert")
	}
	sp.AddChild("z", 0, 1)
	r.Counter("c").Add(1)
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(1)
	r.AddTaskEvents([]TaskEvent{{Name: "t"}})
	if r.TaskEvents() != nil || r.Since() != 0 {
		t.Fatal("nil recorder retained state")
	}
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value %d", got)
	}
	snap := r.Snapshot()
	if snap.Schema != SnapshotSchema || len(snap.Counters) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	if !strings.Contains(r.Report(), "disabled") {
		t.Fatal("nil Report should say disabled")
	}
}

func TestUnendedSpanExtendsToNow(t *testing.T) {
	r := testRecorder(time.Millisecond)
	r.StartSpan("open")
	snap := r.Snapshot()
	if snap.Spans[0].Seconds <= 0 {
		t.Fatalf("unended span duration %v", snap.Spans[0].Seconds)
	}
}

func TestReportTree(t *testing.T) {
	r := testRecorder(time.Millisecond)
	root := r.StartSpan("compress")
	root.StartSpan("ann").End()
	root.End()
	r.Counter("oracle.at").Add(42)
	r.Histogram("skel.rank").Observe(17)
	rep := r.Report()
	for _, want := range []string{"compress", "ann", "%", "oracle.at", "42", "skel.rank"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestTaskEvents(t *testing.T) {
	r := testRecorder(time.Millisecond)
	r.AddTaskEvents([]TaskEvent{
		{Name: "N2S(1)", Worker: 0, Start: time.Millisecond, Dur: time.Millisecond, StolenFrom: -1},
		{Name: "L2L(2)", Worker: 1, Start: 2 * time.Millisecond, Dur: time.Millisecond, StolenFrom: 0},
	})
	if got := len(r.TaskEvents()); got != 2 {
		t.Fatalf("task events = %d", got)
	}
	if r.Snapshot().TaskEvents != 2 {
		t.Fatal("snapshot task-event count wrong")
	}
}

func TestValidateRunRecord(t *testing.T) {
	rr := NewRunRecord("compress_n1024")
	rr.Metrics["eps2"] = 1e-6
	var b strings.Builder
	if err := rr.Write(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateRunRecord([]byte(b.String())); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	for name, bad := range map[string]string{
		"not json":     "{",
		"wrong schema": `{"schema":"other","name":"x","metrics":{"a":1}}`,
		"no name":      `{"schema":"` + RunRecordSchema + `","metrics":{"a":1}}`,
		"empty":        `{"schema":"` + RunRecordSchema + `","name":"x"}`,
	} {
		if err := ValidateRunRecord([]byte(bad)); err == nil {
			t.Fatalf("%s: accepted %q", name, bad)
		}
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[float64]int{-1: 0, 0: 0, 1: 0, 1.5: 1, 2: 1, 3: 2, 4: 2, 1e300: histBuckets - 1}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Fatalf("bucketOf(%g) = %d, want %d", v, got, want)
		}
	}
}
