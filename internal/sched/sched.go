// Package sched is the self-contained shared-memory task runtime of §2.3:
// algorithm phases are expressed as DAGs of tasks whose dependencies are
// discovered at runtime by symbolic traversals (built by the callers), and
// executed by one of three engines:
//
//   - Dynamic: the paper's in-house runtime — a HEFT (Heterogeneous Earliest
//     Finish Time) dispatcher that assigns each newly-ready task to the
//     worker queue with the smallest estimated finish time, plus work
//     stealing for when the cost model mispredicts.
//   - TaskDepend: emulates OpenMP's `omp task depend` — the same DAG but a
//     single FIFO ready queue, no cost model, no stealing.
//   - Level-by-level: the classic traversal with a barrier per tree level
//     (RunLevels), the baseline the paper improves upon.
//
// Workers are goroutines. A WorkerSpec carries a relative Speed (used only
// by the HEFT estimate), a Slots count for nested parallelism (the paper's
// "each worker can use more than one physical core ... or employ a device"),
// a Batch size (accelerators consume up to 8 tasks per dispatch), and a
// NoSteal flag (stealing is disabled for accelerator workers so the device
// never idles waiting on stolen scraps).
package sched

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Ctx is passed to every task body; it identifies the executing worker so
// compute kernels can exploit nested parallelism on fat workers.
type Ctx struct {
	Worker int
	Spec   WorkerSpec
}

// Task is one schedulable unit. Create tasks through Graph.Add.
type Task struct {
	ID    int
	Label string
	Cost  float64 // estimated work, arbitrary units consistent across tasks
	Run   func(ctx *Ctx)
	// Affinity pins the task to a specific worker index (HEFT policy only;
	// -1 means any worker). Pinned tasks are never stolen — this is the
	// paper's "enforce our scheduler to schedule L2L tasks to the GPU".
	Affinity int

	succ  []*Task
	nprec int32 // remaining unfinished predecessors
}

// Graph is a DAG of tasks built by symbolic execution of an algorithm phase.
type Graph struct {
	tasks []*Task
	edges int
}

// NewGraph returns an empty DAG.
func NewGraph() *Graph { return &Graph{} }

// Add registers a task with an estimated cost and body and returns it.
func (g *Graph) Add(label string, cost float64, run func(ctx *Ctx)) *Task {
	t := &Task{ID: len(g.tasks), Label: label, Cost: cost, Run: run, Affinity: -1}
	g.tasks = append(g.tasks, t)
	return t
}

// AddDep records that after cannot start until before finishes (a RAW edge
// in the paper's data-flow analysis). Duplicate edges are permitted and
// counted; self-edges are rejected.
func (g *Graph) AddDep(before, after *Task) {
	if before == after {
		panic("sched: self dependency")
	}
	before.succ = append(before.succ, after)
	atomic.AddInt32(&after.nprec, 1)
	g.edges++
}

// Size returns the number of tasks; Edges the number of dependency edges.
func (g *Graph) Size() int  { return len(g.tasks) }
func (g *Graph) Edges() int { return g.edges }

// WorkerSpec describes one worker of a (possibly heterogeneous) pool.
type WorkerSpec struct {
	// Speed is the relative throughput used by the HEFT finish-time
	// estimate; 1 is a baseline CPU core.
	Speed float64
	// Slots is the nested parallelism available to task bodies (≥ 1).
	Slots int
	// Batch is how many ready tasks the worker consumes per dispatch
	// (accelerators use up to 8 to amortize launch latency).
	Batch int
	// NoSteal disables work stealing for this worker.
	NoSteal bool
	// Accelerator marks the worker as a throughput device; callers use it
	// to pin GEMM-heavy tasks (see Task.Affinity).
	Accelerator bool
}

// DefaultWorker is a plain CPU worker.
var DefaultWorker = WorkerSpec{Speed: 1, Slots: 1, Batch: 1}

// Homogeneous returns p identical CPU workers.
func Homogeneous(p int) []WorkerSpec {
	specs := make([]WorkerSpec, p)
	for i := range specs {
		specs[i] = DefaultWorker
	}
	return specs
}

// Policy selects the dispatch strategy of Engine.
type Policy int

const (
	// HEFT assigns ready tasks to the worker with the earliest estimated
	// finish time and enables work stealing (the paper's dynamic runtime).
	HEFT Policy = iota
	// FIFO uses a single shared ready queue with no cost model and no
	// stealing (the `omp task depend` emulation).
	FIFO
)

func (p Policy) String() string {
	switch p {
	case HEFT:
		return "heft"
	case FIFO:
		return "fifo"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Engine executes task graphs over a worker pool.
type Engine struct {
	specs  []WorkerSpec
	policy Policy

	mu      sync.Mutex
	cond    *sync.Cond
	queues  [][]*Task // per-worker for HEFT; queues[0] shared for FIFO
	backlog []float64 // estimated queued work per worker (HEFT)
	pending int       // tasks not yet finished

	// trace support
	traceOn bool
	clock   int64
	trace   []Event
}

// Event records one task execution for tests and the tracing tools.
type Event struct {
	Task   *Task
	Worker int
	Start  int64         // logical clock at dequeue
	End    int64         // logical clock at completion
	Dur    time.Duration // wall-clock execution time of the task body
}

// NewEngine builds an engine over the given worker pool.
func NewEngine(policy Policy, specs []WorkerSpec) *Engine {
	if len(specs) == 0 {
		specs = Homogeneous(1)
	}
	for i := range specs {
		if specs[i].Speed <= 0 {
			specs[i].Speed = 1
		}
		if specs[i].Slots < 1 {
			specs[i].Slots = 1
		}
		if specs[i].Batch < 1 {
			specs[i].Batch = 1
		}
	}
	e := &Engine{specs: specs, policy: policy}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// EnableTrace turns on event recording (Run resets the trace).
func (e *Engine) EnableTrace() { e.traceOn = true }

// Trace returns the events of the last Run.
func (e *Engine) Trace() []Event { return e.trace }

// Workers returns the pool size.
func (e *Engine) Workers() int { return len(e.specs) }

// Run executes every task of g respecting dependencies, blocking until all
// finish. A Graph can only be run once (its dependency counters are
// consumed).
func (e *Engine) Run(g *Graph) {
	nq := len(e.specs)
	if e.policy == FIFO {
		nq = 1
	}
	e.mu.Lock()
	e.queues = make([][]*Task, nq)
	e.backlog = make([]float64, nq)
	e.pending = len(g.tasks)
	e.trace = nil
	e.clock = 0
	// Seed the queues with the initially-ready tasks.
	for _, t := range g.tasks {
		if atomic.LoadInt32(&t.nprec) == 0 {
			e.dispatchLocked(t)
		}
	}
	e.mu.Unlock()
	if len(g.tasks) == 0 {
		return
	}
	var wg sync.WaitGroup
	for w := range e.specs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.worker(w)
		}(w)
	}
	wg.Wait()
}

// dispatchLocked places a ready task on a queue according to the policy.
// Caller holds e.mu.
func (e *Engine) dispatchLocked(t *Task) {
	q := 0
	if e.policy == HEFT && t.Affinity >= 0 && t.Affinity < len(e.queues) {
		q = t.Affinity
		e.queues[q] = append(e.queues[q], t)
		e.backlog[q] += t.Cost
		e.cond.Broadcast()
		return
	}
	if e.policy == HEFT {
		// Earliest estimated finish time: backlog divided by speed.
		best := e.backlog[0] / e.specs[0].Speed
		for w := 1; w < len(e.queues); w++ {
			if est := e.backlog[w] / e.specs[w].Speed; est < best {
				best, q = est, w
			}
		}
	}
	e.queues[q] = append(e.queues[q], t)
	e.backlog[q] += t.Cost
	e.cond.Broadcast()
}

// worker is the main loop of worker w.
func (e *Engine) worker(w int) {
	spec := e.specs[w]
	own := w
	if e.policy == FIFO {
		own = 0
	}
	batch := make([]*Task, 0, spec.Batch)
	for {
		e.mu.Lock()
		for {
			if len(e.queues[own]) > 0 {
				n := min(spec.Batch, len(e.queues[own]))
				batch = append(batch[:0], e.queues[own][:n]...)
				e.queues[own] = e.queues[own][n:]
				for _, t := range batch {
					e.backlog[own] -= t.Cost
				}
				break
			}
			if e.policy == HEFT && !spec.NoSteal {
				if t := e.stealLocked(own); t != nil {
					batch = append(batch[:0], t)
					break
				}
			}
			if e.pending == 0 {
				e.mu.Unlock()
				return
			}
			e.cond.Wait()
		}
		e.mu.Unlock()
		for _, t := range batch {
			e.exec(w, spec, t)
		}
	}
}

// stealLocked takes one task from the back of the most-loaded other queue.
func (e *Engine) stealLocked(self int) *Task {
	victim, best := -1, 0.0
	for w := range e.queues {
		if w == self || len(e.queues[w]) == 0 {
			continue
		}
		if e.backlog[w] > best {
			best, victim = e.backlog[w], w
		}
	}
	if victim < 0 {
		return nil
	}
	q := e.queues[victim]
	t := q[len(q)-1]
	if t.Affinity >= 0 {
		return nil // pinned tasks stay on their worker
	}
	e.queues[victim] = q[:len(q)-1]
	e.backlog[victim] -= t.Cost
	return t
}

// exec runs one task and releases its successors.
func (e *Engine) exec(w int, spec WorkerSpec, t *Task) {
	var start int64
	var wall time.Time
	if e.traceOn {
		start = atomic.AddInt64(&e.clock, 1)
		wall = time.Now()
	}
	ctx := &Ctx{Worker: w, Spec: spec}
	t.Run(ctx)
	e.mu.Lock()
	if e.traceOn {
		end := atomic.AddInt64(&e.clock, 1)
		e.trace = append(e.trace, Event{Task: t, Worker: w, Start: start, End: end, Dur: time.Since(wall)})
	}
	for _, s := range t.succ {
		if atomic.AddInt32(&s.nprec, -1) == 0 {
			e.dispatchLocked(s)
		}
	}
	e.pending--
	if e.pending == 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// Utilization summarizes the last traced Run: per-worker busy wall-clock
// time (the basis for the strong-scaling analysis of Figure 4).
func (e *Engine) Utilization() []time.Duration {
	busy := make([]time.Duration, len(e.specs))
	for _, ev := range e.trace {
		busy[ev.Worker] += ev.Dur
	}
	return busy
}

// WriteTraceCSV dumps the last traced Run as CSV (label, worker, logical
// start/end, wall-clock ns) for offline timeline analysis.
func (e *Engine) WriteTraceCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "task,worker,start,end,ns"); err != nil {
		return err
	}
	for _, ev := range e.trace {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d\n",
			ev.Task.Label, ev.Worker, ev.Start, ev.End, ev.Dur.Nanoseconds()); err != nil {
			return err
		}
	}
	return nil
}

// RunLevels executes batches of independent closures with a barrier after
// each batch — the level-by-level traversal baseline. Within a batch the
// closures run on up to p goroutines (dynamic self-scheduling, like
// `omp parallel for schedule(dynamic)`).
func RunLevels(levels [][]func(), p int) {
	if p < 1 {
		p = 1
	}
	for _, batch := range levels {
		runBatch(batch, p)
	}
}

func runBatch(batch []func(), p int) {
	if len(batch) == 0 {
		return
	}
	if p == 1 || len(batch) == 1 {
		for _, f := range batch {
			f()
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	workers := min(p, len(batch))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(batch) {
					return
				}
				batch[i]()
			}
		}()
	}
	wg.Wait()
}

// WriteDOT renders the dependency DAG in Graphviz DOT format — the
// Figure 3 picture of the paper, generated from the actual symbolic
// traversal rather than drawn by hand. Tasks are labeled and edges are the
// RAW dependencies.
func (g *Graph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph tasks {"); err != nil {
		return err
	}
	for _, t := range g.tasks {
		if _, err := fmt.Fprintf(w, "  t%d [label=%q];\n", t.ID, t.Label); err != nil {
			return err
		}
	}
	for _, t := range g.tasks {
		for _, s := range t.succ {
			if _, err := fmt.Fprintf(w, "  t%d -> t%d;\n", t.ID, s.ID); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
