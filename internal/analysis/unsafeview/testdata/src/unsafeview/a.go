// Package unsafeview is NOT allowlisted: importing unsafe at all is the
// finding, regardless of how carefully it is then used.
package unsafeview

import "unsafe" // want `import of unsafe outside the view-layer allowlist`

// Size is careful, correct — and still not allowed here.
func Size(x int) uintptr {
	return unsafe.Sizeof(x)
}
