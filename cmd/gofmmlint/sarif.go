package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"

	"gofmm/internal/analysis/suite"
)

// Minimal SARIF 2.1.0 writer: one run, one rule per analyzer, one result
// per finding, file paths relative to the working directory so CI viewers
// anchor annotations inside the checkout. Only the fields GitHub's SARIF
// ingestion requires are emitted.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"semanticVersion,omitempty"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	Desc struct {
		Text string `json:"text"`
	} `json:"shortDescription"`
}

type sarifResult struct {
	RuleID  string `json:"ruleId"`
	Level   string `json:"level"`
	Message struct {
		Text string `json:"text"`
	} `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation struct {
		ArtifactLocation struct {
			URI string `json:"uri"`
		} `json:"artifactLocation"`
		Region struct {
			StartLine   int `json:"startLine"`
			StartColumn int `json:"startColumn,omitempty"`
		} `json:"region"`
	} `json:"physicalLocation"`
}

// writeSARIF renders findings to path. The rule table always carries the
// full registered suite, findings or not, so the artifact doubles as a
// manifest of what ran.
func writeSARIF(path string, findings []suite.Finding) error {
	wd, _ := os.Getwd()
	run := sarifRun{
		Tool:    sarifTool{Driver: sarifDriver{Name: "gofmmlint", Version: version}},
		Results: []sarifResult{},
	}
	for _, e := range suite.All() {
		var r sarifRule
		r.ID = e.Analyzer.Name
		r.Name = e.Analyzer.Name
		r.Desc.Text = e.Analyzer.Doc
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, r)
	}
	// The synthetic "suppression" analyzer (reasonless ignore directives)
	// needs a rule entry too, or its results dangle.
	var supp sarifRule
	supp.ID = "suppression"
	supp.Name = "suppression"
	supp.Desc.Text = "gofmmlint:ignore directives must carry a non-empty reason"
	run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, supp)
	sort.Slice(run.Tool.Driver.Rules, func(i, j int) bool {
		return run.Tool.Driver.Rules[i].ID < run.Tool.Driver.Rules[j].ID
	})

	for _, f := range findings {
		var res sarifResult
		res.RuleID = f.Analyzer
		res.Level = "error"
		res.Message.Text = f.Diagnostic.Message
		var loc sarifLocation
		uri := f.Position.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, uri); err == nil && !filepath.IsAbs(rel) {
				uri = filepath.ToSlash(rel)
			}
		}
		loc.PhysicalLocation.ArtifactLocation.URI = uri
		loc.PhysicalLocation.Region.StartLine = f.Position.Line
		loc.PhysicalLocation.Region.StartColumn = f.Position.Column
		res.Locations = []sarifLocation{loc}
		run.Results = append(run.Results, res)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}
