package hss

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
)

func TestFactorSolveMatchesDense(t *testing.T) {
	n := 400
	K := kern1D(n, 0.05)
	// Shift the diagonal so K̃ stays comfortably positive definite.
	for i := 0; i < n; i++ {
		K.Add(i, i, 0.5)
	}
	h := Compress(denseOracle{K}, Config{LeafSize: 64, Rank: 48, Tol: 1e-12, Seed: 9})
	f, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	X := linalg.GaussianMatrix(rng, n, 3)
	B := linalg.MatMul(false, false, K, X)
	got := f.Solve(B)
	// The factorization solves K̃x = b; with tight compression K̃ ≈ K, so x
	// should match the dense solution.
	if d := linalg.RelFrobDiff(got, X); d > 1e-4 {
		t.Fatalf("factor-solve error vs dense solution: %g", d)
	}
	// And it must be an *exact* inverse of the compressed operator.
	back := h.Matvec(got)
	if d := linalg.RelFrobDiff(back, B); d > 1e-8 {
		t.Fatalf("K̃·(K̃⁻¹b) deviates from b by %g", d)
	}
}

func TestFactorSolveSingleLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	K := linalg.RandomSPD(rng, 30, 10)
	h := Compress(denseOracle{K}, Config{LeafSize: 64, Rank: 8, Seed: 10})
	f, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	X := linalg.GaussianMatrix(rng, 30, 2)
	B := linalg.MatMul(false, false, K, X)
	got := f.Solve(B)
	if d := linalg.RelFrobDiff(got, X); d > 1e-10 {
		t.Fatalf("single-leaf solve error %g", d)
	}
}

func TestFactorSolveMultiLevel(t *testing.T) {
	// Deep tree (leaf 16 over n=256 → 4 levels) with exact low-rank
	// structure: solve must be near machine precision.
	rng := rand.New(rand.NewSource(93))
	n := 256
	G := linalg.GaussianMatrix(rng, n, 5)
	K := linalg.MatMul(false, true, G, G)
	for i := 0; i < n; i++ {
		K.Add(i, i, 2)
	}
	h := Compress(denseOracle{K}, Config{LeafSize: 16, Rank: 12, Tol: 1e-13, Seed: 11})
	f, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	X := linalg.GaussianMatrix(rng, n, 4)
	B := linalg.MatMul(false, false, K, X)
	got := f.Solve(B)
	if d := linalg.RelFrobDiff(got, X); d > 1e-8 {
		t.Fatalf("multi-level solve error %g", d)
	}
}

func TestFactorAsPreconditioner(t *testing.T) {
	// A loose HSS factorization of K should still reduce the residual by a
	// large factor in one application (the preconditioner use case for
	// which factorizations of H-matrices are built).
	n := 300
	K := kern1D(n, 0.08)
	for i := 0; i < n; i++ {
		K.Add(i, i, 0.1)
	}
	h := Compress(denseOracle{K}, Config{LeafSize: 32, Rank: 12, Tol: 1e-3, Seed: 12})
	f, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(94))
	B := linalg.GaussianMatrix(rng, n, 1)
	X := f.Solve(B)
	R := linalg.MatMul(false, false, K, X)
	R.AddScaled(-1, B)
	if ratio := R.FrobeniusNorm() / B.FrobeniusNorm(); ratio > 0.5 {
		t.Fatalf("preconditioner residual reduction only %g", ratio)
	}
}

func TestLogDetMatchesDense(t *testing.T) {
	n := 300
	K := kern1D(n, 0.05)
	for i := 0; i < n; i++ {
		K.Add(i, i, 0.5)
	}
	h := Compress(denseOracle{K}, Config{LeafSize: 32, Rank: 64, Tol: 1e-12, Seed: 20})
	f, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	got := f.LogDet()
	L, err := linalg.Cholesky(K)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.LogDetFromCholesky(L)
	if d := got - want; d > 1e-4 || d < -1e-4 {
		t.Fatalf("LogDet = %g, dense = %g (Δ %g)", got, want, d)
	}
}

func TestLogDetSingleLeaf(t *testing.T) {
	rngl := rand.New(rand.NewSource(21))
	K := linalg.RandomSPD(rngl, 30, 10)
	h := Compress(denseOracle{K}, Config{LeafSize: 64, Rank: 8, Seed: 22})
	f, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	L, _ := linalg.Cholesky(K)
	want := linalg.LogDetFromCholesky(L)
	if d := f.LogDet() - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("single-leaf LogDet off by %g", d)
	}
}

func TestCholJitteredRescuesIndefinite(t *testing.T) {
	// diag(1, -1e-9) is indefinite by an amount far below the last-resort
	// jitter, so the escalation must find a λ that factors it.
	D := linalg.NewMatrix(2, 2)
	D.Set(0, 0, 1)
	D.Set(1, 1, -1e-9)
	if _, err := linalg.Cholesky(D); err == nil {
		t.Fatal("sanity: plain Cholesky should reject an indefinite matrix")
	}
	L, lam, err := cholJittered(D)
	if err != nil {
		t.Fatalf("cholJittered failed: %v", err)
	}
	if L == nil || lam <= 1e-9 || lam > 1e-2 {
		t.Fatalf("unexpected jitter λ=%g", lam)
	}
	// An SPD input must not be perturbed at all.
	rng := rand.New(rand.NewSource(96))
	S := linalg.RandomSPD(rng, 16, 8)
	if _, lam, err := cholJittered(S); err != nil || lam != 0 {
		t.Fatalf("SPD input: λ=%g err=%v, want λ=0 err=nil", lam, err)
	}
}

func TestLUJitteredRescuesSingular(t *testing.T) {
	// The all-ones matrix is exactly singular; jitter makes it factorable.
	n := 8
	M := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			M.Set(i, j, 1)
		}
	}
	if _, err := linalg.LUFactor(M); err == nil {
		t.Fatal("sanity: plain LU should reject a singular matrix")
	}
	lu, lam, err := luJittered(M)
	if err != nil {
		t.Fatalf("luJittered failed: %v", err)
	}
	if lu == nil || lam <= 0 {
		t.Fatalf("expected a positive jitter, got λ=%g", lam)
	}
}

func TestFactorRegularizesIndefiniteLeaf(t *testing.T) {
	// Build a matrix with clean low-rank off-diagonal structure whose first
	// leaf block is indefinite by exactly 1e-8: C·Cᵀ with a 4-dim null space
	// shifted down by 1e-8. Plain Factor used to fail here; now it must
	// recover with a diagonal jitter, report it, and still produce a finite
	// solve.
	rng := rand.New(rand.NewSource(95))
	n, m := 128, 64
	G := linalg.GaussianMatrix(rng, n, 3)
	K := linalg.MatMul(false, true, G, G)
	for i := 0; i < n; i++ {
		K.Add(i, i, 2)
	}
	C := linalg.GaussianMatrix(rng, m, m-4)
	B0 := linalg.MatMul(false, true, C, C)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			K.Set(i, j, B0.At(i, j))
		}
		K.Add(i, i, -1e-8)
	}
	h := Compress(denseOracle{K}, Config{LeafSize: 64, Rank: 16, Tol: 1e-12, Seed: 13})
	rec := telemetry.New()
	h.Telemetry = rec
	f, err := h.Factor()
	if err != nil {
		t.Fatalf("Factor should degrade gracefully, got %v", err)
	}
	if f.RegularizedNodes < 1 {
		t.Fatal("no node reported as regularized")
	}
	if f.Jitter <= 0 || f.Jitter > 1 {
		t.Fatalf("implausible recorded jitter %g", f.Jitter)
	}
	if got := rec.Counter("hss.factor.regularized_nodes").Value(); got < 1 {
		t.Fatalf("telemetry counter hss.factor.regularized_nodes = %d", got)
	}
	if got := rec.Gauge("hss.factor.jitter").Value(); got != f.Jitter {
		t.Fatalf("telemetry gauge %g != recorded jitter %g", got, f.Jitter)
	}
	B := linalg.GaussianMatrix(rng, n, 2)
	X := f.Solve(B)
	for j := 0; j < X.Cols; j++ {
		for _, v := range X.Col(j) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("regularized solve produced non-finite entries")
			}
		}
	}
}

func TestFactorCleanRunReportsNoJitter(t *testing.T) {
	n := 256
	K := kern1D(n, 0.05)
	for i := 0; i < n; i++ {
		K.Add(i, i, 0.5)
	}
	h := Compress(denseOracle{K}, Config{LeafSize: 32, Rank: 48, Tol: 1e-12, Seed: 14})
	f, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	if f.RegularizedNodes != 0 || f.Jitter != 0 {
		t.Fatalf("clean factorization reported regularization: nodes=%d λ=%g",
			f.RegularizedNodes, f.Jitter)
	}
}

func TestFactorCtxCancellation(t *testing.T) {
	n := 256
	K := kern1D(n, 0.05)
	for i := 0; i < n; i++ {
		K.Add(i, i, 0.5)
	}
	h := Compress(denseOracle{K}, Config{LeafSize: 32, Rank: 32, Tol: 1e-10, Seed: 15})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.FactorCtx(ctx); !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("expected ErrCancelled, got %v", err)
	}
}

func TestFactorSolvePropertyLowRankPlusDiag(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(200)
		r := 1 + rng.Intn(6)
		G := linalg.GaussianMatrix(rng, n, r)
		K := linalg.MatMul(false, true, G, G)
		for i := 0; i < n; i++ {
			K.Add(i, i, 1+rng.Float64())
		}
		h := Compress(denseOracle{K}, Config{LeafSize: 32, Rank: 16, Tol: 1e-13, Seed: seed})
		fac, err := h.Factor()
		if err != nil {
			return false
		}
		X := linalg.GaussianMatrix(rng, n, 2)
		B := linalg.MatMul(false, false, K, X)
		got := fac.Solve(B)
		return linalg.RelFrobDiff(got, X) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
