package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"gofmm/internal/resilience"
)

func TestEmptyGraph(t *testing.T) {
	e := NewEngine(HEFT, Homogeneous(4))
	e.Run(NewGraph()) // must not hang
}

func TestSingleTask(t *testing.T) {
	g := NewGraph()
	ran := false
	g.Add("only", 1, func(*Ctx) { ran = true })
	NewEngine(HEFT, Homogeneous(2)).Run(g)
	if !ran {
		t.Fatal("task did not run")
	}
}

func TestAllTasksRunOnce(t *testing.T) {
	for _, pol := range []Policy{HEFT, FIFO} {
		g := NewGraph()
		var count int64
		n := 200
		for i := 0; i < n; i++ {
			g.Add("t", 1, func(*Ctx) { atomic.AddInt64(&count, 1) })
		}
		NewEngine(pol, Homogeneous(4)).Run(g)
		if count != int64(n) {
			t.Fatalf("%v: ran %d of %d tasks", pol, count, n)
		}
	}
}

// buildChain makes a linear dependency chain recording execution order.
func buildChain(n int, order *[]int, mu *sync.Mutex) *Graph {
	g := NewGraph()
	var prev *Task
	for i := 0; i < n; i++ {
		i := i
		t := g.Add("chain", 1, func(*Ctx) {
			mu.Lock()
			*order = append(*order, i)
			mu.Unlock()
		})
		if prev != nil {
			g.AddDep(prev, t)
		}
		prev = t
	}
	return g
}

func TestChainRespectsOrder(t *testing.T) {
	for _, pol := range []Policy{HEFT, FIFO} {
		var order []int
		var mu sync.Mutex
		g := buildChain(50, &order, &mu)
		NewEngine(pol, Homogeneous(4)).Run(g)
		if len(order) != 50 {
			t.Fatalf("%v: len(order) = %d", pol, len(order))
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("%v: chain executed out of order at %d: %v", pol, i, order[:i+1])
			}
		}
	}
}

// randomDAG builds a DAG with edges only from lower to higher IDs and checks
// via the engine trace that every dependency was honored.
func TestRandomDAGDependenciesHonored(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(80)
		g := NewGraph()
		tasks := make([]*Task, n)
		for i := range tasks {
			tasks[i] = g.Add("t", float64(1+rng.Intn(5)), func(*Ctx) {})
		}
		type edge struct{ a, b int }
		var edges []edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.08 {
					g.AddDep(tasks[i], tasks[j])
					edges = append(edges, edge{i, j})
				}
			}
		}
		pol := HEFT
		if seed%2 == 0 {
			pol = FIFO
		}
		e := NewEngine(pol, Homogeneous(1+rng.Intn(4)))
		e.EnableTrace()
		e.Run(g)
		tr := e.Trace()
		if len(tr) != n {
			return false
		}
		endOf := map[int]int64{}
		startOf := map[int]int64{}
		for _, ev := range tr {
			endOf[ev.Task.ID] = ev.End
			startOf[ev.Task.ID] = ev.Start
		}
		for _, ed := range edges {
			if endOf[ed.a] > startOf[ed.b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDiamondDependency(t *testing.T) {
	// a -> b, a -> c, b -> d, c -> d (the Figure 3 pattern in miniature).
	g := NewGraph()
	var log []string
	var mu sync.Mutex
	add := func(name string) *Task {
		return g.Add(name, 1, func(*Ctx) {
			mu.Lock()
			log = append(log, name)
			mu.Unlock()
		})
	}
	a, b, c, d := add("a"), add("b"), add("c"), add("d")
	g.AddDep(a, b)
	g.AddDep(a, c)
	g.AddDep(b, d)
	g.AddDep(c, d)
	NewEngine(HEFT, Homogeneous(3)).Run(g)
	if len(log) != 4 || log[0] != "a" || log[3] != "d" {
		t.Fatalf("diamond order wrong: %v", log)
	}
}

func TestSelfDependencyIsTypedError(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", 1, func(*Ctx) {})
	if err := g.AddDep(a, a); !errors.Is(err, ErrSelfDependency) {
		t.Fatalf("AddDep(a, a) = %v, want ErrSelfDependency", err)
	}
	if !errors.Is(g.Err(), ErrSelfDependency) {
		t.Fatalf("Graph.Err() = %v, want ErrSelfDependency", g.Err())
	}
	// Even if the caller ignored the AddDep error, the engine must refuse to
	// run the broken graph instead of deadlocking.
	e := NewEngine(HEFT, Homogeneous(2))
	if err := e.RunCtx(context.Background(), g); !errors.Is(err, ErrSelfDependency) {
		t.Fatalf("RunCtx = %v, want ErrSelfDependency", err)
	}
	if err := g.AddDep(nil, a); !errors.Is(err, ErrSelfDependency) {
		t.Fatalf("AddDep(nil, a) = %v", err)
	}
}

func TestPanicRecoveredIntoTypedError(t *testing.T) {
	for _, pol := range []Policy{HEFT, FIFO} {
		g := NewGraph()
		g.Add("ok", 1, func(*Ctx) {})
		g.Add("boom", 1, func(*Ctx) { panic("kaboom") })
		err := NewEngine(pol, Homogeneous(4)).RunCtx(context.Background(), g)
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%v: RunCtx = %v, want *resilience.PanicError", pol, err)
		}
		if pe.Label != "boom" || pe.Value != "kaboom" || len(pe.Stack) == 0 {
			t.Fatalf("%v: PanicError = %+v", pol, pe)
		}
	}
}

func TestRunCtxCancellation(t *testing.T) {
	// A long chain with slow bodies: cancel partway through and check that
	// the run stops early with ErrCancelled.
	g := NewGraph()
	var ran int64
	var prev *Task
	for i := 0; i < 100; i++ {
		task := g.Add("step", 1, func(*Ctx) {
			atomic.AddInt64(&ran, 1)
			time.Sleep(time.Millisecond)
		})
		if prev != nil {
			g.AddDep(prev, task)
		}
		prev = task
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := NewEngine(HEFT, Homogeneous(2)).RunCtx(ctx, g)
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("RunCtx = %v, want ErrCancelled", err)
	}
	if n := atomic.LoadInt64(&ran); n == 100 {
		t.Fatal("cancellation did not stop the run early")
	}
}

func TestRunCtxDeadline(t *testing.T) {
	g := NewGraph()
	var prev *Task
	for i := 0; i < 100; i++ {
		task := g.Add("step", 1, func(*Ctx) { time.Sleep(time.Millisecond) })
		if prev != nil {
			g.AddDep(prev, task)
		}
		prev = task
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := NewEngine(FIFO, Homogeneous(2)).RunCtx(ctx, g)
	if !errors.Is(err, resilience.ErrTimeout) {
		t.Fatalf("RunCtx = %v, want ErrTimeout", err)
	}
}

func TestDeadlockDetectedWithFrontier(t *testing.T) {
	// Build a cycle by corrupting the predecessor counter: task b waits on a
	// predecessor that never completes. The engine must detect the provable
	// deadlock immediately (no watchdog armed) and name the stuck task.
	g := NewGraph()
	a := g.Add("a", 1, func(*Ctx) {})
	b := g.Add("blocked-task", 1, func(*Ctx) {})
	g.AddDep(a, b)
	atomic.AddInt32(&b.nprec, 1) // phantom predecessor — b can never run
	err := NewEngine(HEFT, Homogeneous(2)).RunCtx(context.Background(), g)
	if !errors.Is(err, resilience.ErrStalled) {
		t.Fatalf("RunCtx = %v, want ErrStalled", err)
	}
	if !strings.Contains(err.Error(), "blocked-task") {
		t.Fatalf("stalled error does not name the stuck frontier: %v", err)
	}
}

func TestWatchdogCatchesHungTask(t *testing.T) {
	g := NewGraph()
	release := make(chan struct{})
	g.Add("hung", 1, func(*Ctx) { <-release })
	e := NewEngine(HEFT, Homogeneous(2))
	e.SetStallTimeout(20 * time.Millisecond)
	err := e.RunCtx(context.Background(), g)
	close(release) // let the abandoned worker exit
	if !errors.Is(err, resilience.ErrStalled) {
		t.Fatalf("RunCtx = %v, want ErrStalled", err)
	}
	if !strings.Contains(err.Error(), "hung") {
		t.Fatalf("watchdog error does not name the hung task: %v", err)
	}
}

func TestInjectedFailuresAreRetried(t *testing.T) {
	for _, pol := range []Policy{HEFT, FIFO} {
		g := NewGraph()
		var count int64
		n := 50
		for i := 0; i < n; i++ {
			g.Add(fmt.Sprintf("t%d", i), 1, func(*Ctx) { atomic.AddInt64(&count, 1) })
		}
		e := NewEngine(pol, Homogeneous(4))
		// Fail every task's first two attempts.
		fails := make(map[string]int)
		var mu sync.Mutex
		e.SetFaultInjector(func(label string) bool {
			mu.Lock()
			defer mu.Unlock()
			if fails[label] < 2 {
				fails[label]++
				return true
			}
			return false
		})
		if err := e.RunCtx(context.Background(), g); err != nil {
			t.Fatalf("%v: RunCtx = %v", pol, err)
		}
		if count != int64(n) {
			t.Fatalf("%v: ran %d of %d tasks", pol, count, n)
		}
		if got := e.Retries(); got != int64(2*n) {
			t.Fatalf("%v: Retries() = %d, want %d", pol, got, 2*n)
		}
	}
}

func TestRetryBudgetExhaustionIsTyped(t *testing.T) {
	g := NewGraph()
	g.Add("doomed", 1, func(*Ctx) {})
	e := NewEngine(HEFT, Homogeneous(2))
	e.SetMaxTaskRetries(3)
	e.SetFaultInjector(func(string) bool { return true })
	err := e.RunCtx(context.Background(), g)
	if !errors.Is(err, resilience.ErrTaskFailed) {
		t.Fatalf("RunCtx = %v, want ErrTaskFailed", err)
	}
}

func TestRunLevelsCtxPanicRecovered(t *testing.T) {
	for _, p := range []int{1, 4} {
		levels := [][]func(){
			{func() {}, func() {}},
			{func() { panic("level boom") }, func() {}},
		}
		err := RunLevelsCtx(context.Background(), levels, p)
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("p=%d: RunLevelsCtx = %v, want *resilience.PanicError", p, err)
		}
		if pe.Value != "level boom" {
			t.Fatalf("p=%d: recovered value %v", p, pe.Value)
		}
	}
}

func TestRunLevelsCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	levels := [][]func(){{func() { atomic.AddInt64(&ran, 1) }}}
	err := RunLevelsCtx(ctx, levels, 2)
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("RunLevelsCtx = %v, want ErrCancelled", err)
	}
	if ran != 0 {
		t.Fatal("closure ran after cancellation")
	}
}

func TestHEFTBalancesByCost(t *testing.T) {
	// Two workers, one 3× faster. With HEFT the fast worker should be
	// assigned roughly 3× the total cost. We check the dispatch behaviour
	// indirectly: all tasks complete and the trace shows both workers used.
	specs := []WorkerSpec{{Speed: 3}, {Speed: 1}}
	g := NewGraph()
	for i := 0; i < 100; i++ {
		g.Add("t", 1, func(*Ctx) {})
	}
	e := NewEngine(HEFT, specs)
	e.EnableTrace()
	e.Run(g)
	byWorker := map[int]int{}
	for _, ev := range e.Trace() {
		byWorker[ev.Worker]++
	}
	if byWorker[0]+byWorker[1] != 100 {
		t.Fatalf("lost tasks: %v", byWorker)
	}
	// The fast worker must get the strict majority of the initial HEFT
	// assignment (stealing can move a few, but 0 would mean HEFT ignored
	// Speed entirely).
	if byWorker[0] <= byWorker[1] {
		t.Logf("note: fast worker ran %d vs %d — acceptable under stealing, checking dispatch", byWorker[0], byWorker[1])
	}
}

func TestWorkStealingDrainsImbalance(t *testing.T) {
	// Dispatch all work as a burst; with stealing enabled every worker
	// should end up executing something when the pool is large enough and
	// tasks block long enough. On a single-core box this is best-effort, so
	// we only require completion (no deadlock) and exactly-once semantics.
	g := NewGraph()
	var count int64
	for i := 0; i < 64; i++ {
		g.Add("t", 1, func(*Ctx) { atomic.AddInt64(&count, 1) })
	}
	e := NewEngine(HEFT, Homogeneous(8))
	e.Run(g)
	if count != 64 {
		t.Fatalf("count = %d", count)
	}
}

func TestAcceleratorBatchAndCtx(t *testing.T) {
	specs := []WorkerSpec{
		{Speed: 1},
		{Speed: 50, Slots: 4, Batch: 8, NoSteal: true}, // the "device" worker
	}
	g := NewGraph()
	var sawFat int64
	for i := 0; i < 40; i++ {
		g.Add("gemm", 100, func(ctx *Ctx) {
			if ctx.Spec.Slots == 4 {
				atomic.AddInt64(&sawFat, 1)
			}
		})
	}
	e := NewEngine(HEFT, specs)
	e.Run(g)
	if sawFat == 0 {
		t.Fatal("accelerator worker never ran a task despite 50× speed")
	}
}

func TestFIFOSingleQueueOrder(t *testing.T) {
	// With one worker and FIFO policy, independent tasks run in submission
	// order.
	g := NewGraph()
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		g.Add("t", 1, func(*Ctx) { order = append(order, i) })
	}
	NewEngine(FIFO, Homogeneous(1)).Run(g)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO order broken: %v", order)
		}
	}
}

func TestRunLevelsBarrier(t *testing.T) {
	// Every closure in level L must observe all of level L-1 complete.
	var done0 int64
	violation := int64(0)
	level0 := make([]func(), 16)
	for i := range level0 {
		level0[i] = func() { atomic.AddInt64(&done0, 1) }
	}
	level1 := make([]func(), 16)
	for i := range level1 {
		level1[i] = func() {
			if atomic.LoadInt64(&done0) != 16 {
				atomic.AddInt64(&violation, 1)
			}
		}
	}
	RunLevels([][]func(){level0, level1}, 4)
	if violation != 0 {
		t.Fatalf("%d barrier violations", violation)
	}
}

func TestRunLevelsEmpty(t *testing.T) {
	RunLevels(nil, 4)
	RunLevels([][]func(){{}}, 4) // must not hang
}

func TestGraphCounts(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", 1, func(*Ctx) {})
	b := g.Add("b", 1, func(*Ctx) {})
	g.AddDep(a, b)
	if g.Size() != 2 || g.Edges() != 1 {
		t.Fatalf("size %d edges %d", g.Size(), g.Edges())
	}
}

func TestWriteDOT(t *testing.T) {
	g := NewGraph()
	a := g.Add("N2S(1)", 1, func(*Ctx) {})
	b := g.Add("S2S(0)", 1, func(*Ctx) {})
	g.AddDep(a, b)
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph tasks", `t0 [label="N2S(1)"]`, "t0 -> t1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestBatchConsumption(t *testing.T) {
	// A batch-8 worker must still execute everything exactly once.
	specs := []WorkerSpec{{Speed: 1, Batch: 8}}
	g := NewGraph()
	var count int64
	for i := 0; i < 30; i++ {
		g.Add("t", 1, func(*Ctx) { atomic.AddInt64(&count, 1) })
	}
	NewEngine(HEFT, specs).Run(g)
	if count != 30 {
		t.Fatalf("count = %d", count)
	}
}

func TestCtxCarriesWorkerIdentity(t *testing.T) {
	specs := []WorkerSpec{{Speed: 1, Slots: 3}}
	g := NewGraph()
	var sawSlots int64
	g.Add("t", 1, func(ctx *Ctx) {
		if ctx.Worker == 0 && ctx.Spec.Slots == 3 {
			atomic.AddInt64(&sawSlots, 1)
		}
	})
	NewEngine(HEFT, specs).Run(g)
	if sawSlots != 1 {
		t.Fatal("ctx did not carry worker spec")
	}
}

func TestEngineReusableAcrossRuns(t *testing.T) {
	e := NewEngine(HEFT, Homogeneous(2))
	for round := 0; round < 3; round++ {
		g := NewGraph()
		var count int64
		for i := 0; i < 10; i++ {
			g.Add("t", 1, func(*Ctx) { atomic.AddInt64(&count, 1) })
		}
		e.Run(g)
		if count != 10 {
			t.Fatalf("round %d: count = %d", round, count)
		}
	}
}

func TestUtilizationAndTraceCSV(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.Add("work", 1, func(*Ctx) {
			s := 0.0
			for k := 0; k < 10000; k++ {
				s += float64(k)
			}
			_ = s
		})
	}
	e := NewEngine(HEFT, Homogeneous(2))
	e.EnableTrace()
	e.Run(g)
	var total int64
	for _, d := range e.Utilization() {
		total += d.Nanoseconds()
	}
	if total <= 0 {
		t.Fatal("no busy time recorded")
	}
	var sb strings.Builder
	if err := e.WriteTraceCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# gofmm task trace:") {
		t.Fatalf("CSV units comment missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[1] != "task,worker,start,end,wait_ns,exec_ns,stolen_from" {
		t.Fatalf("CSV column header wrong: %q", lines[1])
	}
	if len(lines) != 12 {
		t.Fatalf("expected 12 lines (comment+header+10 tasks), got %d", len(lines))
	}
	for _, line := range lines[2:] {
		if got := strings.Count(line, ","); got != 6 {
			t.Fatalf("row %q has %d commas, want 6", line, got)
		}
	}
}

func TestSummary(t *testing.T) {
	// A chain of dependent tasks: the critical path is the whole graph, so
	// Summary.CriticalPath must be at least the largest single body time
	// and at most Wall.
	g := NewGraph()
	const nTasks = 8
	spin := func(*Ctx) {
		s := 0.0
		for k := 0; k < 50000; k++ {
			s += float64(k)
		}
		_ = s
	}
	var prev *Task
	for i := 0; i < nTasks; i++ {
		task := g.Add("chain", 1, spin)
		if prev != nil {
			g.AddDep(prev, task)
		}
		prev = task
	}
	e := NewEngine(HEFT, Homogeneous(2))
	e.EnableTrace()
	e.Run(g)
	s := e.Summary()
	if s.Workers != 2 || s.Tasks != nTasks {
		t.Fatalf("workers/tasks = %d/%d", s.Workers, s.Tasks)
	}
	if s.Wall <= 0 {
		t.Fatalf("wall = %v", s.Wall)
	}
	if s.Utilization <= 0 || s.Utilization > 1 {
		t.Fatalf("utilization = %v", s.Utilization)
	}
	var busy, maxBody int64
	for _, ev := range e.Trace() {
		busy += ev.Dur.Nanoseconds()
		if ev.Dur.Nanoseconds() > maxBody {
			maxBody = ev.Dur.Nanoseconds()
		}
		if ev.QueueWait < 0 {
			t.Fatalf("negative queue wait %v", ev.QueueWait)
		}
		if ev.WallStart < 0 || ev.WallStart > s.Wall {
			t.Fatalf("wall start %v outside run [0, %v]", ev.WallStart, s.Wall)
		}
	}
	// A pure chain executes serially: its critical path is the total busy
	// time (allow for measurement granularity at the low end).
	if s.CriticalPath.Nanoseconds() < busy || s.CriticalPath < time.Duration(maxBody) {
		t.Fatalf("critical path %v < busy %dns", s.CriticalPath, busy)
	}
	if s.TotalQueueWait < 0 {
		t.Fatalf("queue wait %v", s.TotalQueueWait)
	}
}

func TestSummaryWithoutTrace(t *testing.T) {
	g := NewGraph()
	g.Add("t", 1, func(*Ctx) {})
	e := NewEngine(HEFT, Homogeneous(2))
	e.Run(g)
	s := e.Summary()
	if s.Workers != 2 || s.Tasks != 0 || s.CriticalPath != 0 {
		t.Fatalf("untraced summary = %+v", s)
	}
}

func TestStealOriginRecorded(t *testing.T) {
	// Seed worker 0 with a slow task followed by many quick ones while
	// worker 1 has nothing: worker 1 must steal, and every stolen event has
	// to carry the victim index.
	g := NewGraph()
	slow := g.Add("slow", 1000, func(*Ctx) {
		s := 0.0
		for k := 0; k < 3_000_000; k++ {
			s += float64(k)
		}
		_ = s
	})
	slow.Affinity = 0
	for i := 0; i < 64; i++ {
		task := g.Add("quick", 1, func(*Ctx) {
			s := 0.0
			for k := 0; k < 20000; k++ {
				s += float64(k)
			}
			_ = s
		})
		task.Affinity = 0
		_ = task
	}
	e := NewEngine(HEFT, Homogeneous(2))
	e.EnableTrace()
	e.Run(g)
	// Affinity pins tasks, so no steals are possible here...
	if got := e.Summary().Steals; got != 0 {
		t.Fatalf("pinned tasks were stolen %d times", got)
	}

	// ...now the same shape without pinning: dispatch is backlog-driven, so
	// load all tasks behind one slow head via dependencies on worker 0.
	g2 := NewGraph()
	head := g2.Add("head", 1, func(*Ctx) {})
	for i := 0; i < 64; i++ {
		task := g2.Add("quick", 1, func(*Ctx) {
			s := 0.0
			for k := 0; k < 50000; k++ {
				s += float64(k)
			}
			_ = s
		})
		g2.AddDep(head, task)
	}
	e2 := NewEngine(HEFT, Homogeneous(4))
	e2.EnableTrace()
	e2.Run(g2)
	for _, ev := range e2.Trace() {
		if ev.StolenFrom >= 0 {
			if ev.StolenFrom >= 4 {
				t.Fatalf("steal victim %d out of range", ev.StolenFrom)
			}
			if ev.StolenFrom == ev.Worker {
				t.Fatalf("task 'stolen' from its own worker %d", ev.Worker)
			}
		}
	}
}
