package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gofmm/internal/linalg"
	"gofmm/internal/tree"
)

// gramFromPoints builds the Gram matrix K = XᵀX of columns of X so kernel
// distances are verifiable against true point distances.
func gramFromPoints(X *linalg.Matrix) *linalg.Matrix {
	return linalg.MatMul(true, false, X, X)
}

type denseGram struct{ M *linalg.Matrix }

func (d denseGram) Dim() int            { return d.M.Rows }
func (d denseGram) At(i, j int) float64 { return d.M.At(i, j) }

func randPoints(rng *rand.Rand, d, n int) *linalg.Matrix {
	return linalg.GaussianMatrix(rng, d, n)
}

func TestKernelDistMatchesEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	X := randPoints(rng, 5, 30)
	K := gramFromPoints(X)
	ks := KernelSpace{K: denseGram{K}}
	gs := GeometricSpace{X: X}
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if math.Abs(ks.Dist(i, j)-gs.Dist(i, j)) > 1e-9 {
				t.Fatalf("kernel distance ≠ ‖xi−xj‖² at (%d,%d): %g vs %g",
					i, j, ks.Dist(i, j), gs.Dist(i, j))
			}
		}
	}
}

func TestAngleDistMatchesCosine(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	X := randPoints(rng, 4, 20)
	K := gramFromPoints(X)
	as := AngleSpace{K: denseGram{K}}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			xi, xj := X.Col(i), X.Col(j)
			cos := linalg.Dot(xi, xj) / (linalg.Nrm2(xi) * linalg.Nrm2(xj))
			want := 1 - cos*cos
			if math.Abs(as.Dist(i, j)-want) > 1e-9 {
				t.Fatalf("angle distance mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestDistancePropertiesOnRandomSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		K := linalg.RandomSPD(rng, n, 100)
		for _, sp := range []Space{KernelSpace{denseGram{K}}, AngleSpace{denseGram{K}}} {
			for trial := 0; trial < 20; trial++ {
				i, j := rng.Intn(n), rng.Intn(n)
				dij, dji := sp.Dist(i, j), sp.Dist(j, i)
				if math.Abs(dij-dji) > 1e-9 {
					return false // symmetry
				}
				if dij < -1e-9 {
					return false // nonnegativity
				}
				if i == j && math.Abs(dij) > 1e-9 {
					return false // identity
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDistsToMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	K := linalg.RandomSPD(rng, 25, 10)
	idx := []int{3, 17, 0, 24, 9}
	for _, sp := range []Space{KernelSpace{denseGram{K}}, AngleSpace{denseGram{K}}} {
		out := make([]float64, len(idx))
		sp.DistsTo(idx, 7, out)
		for k, i := range idx {
			if math.Abs(out[k]-sp.Dist(i, 7)) > 1e-12 {
				t.Fatalf("%s DistsTo mismatch at %d", sp.Name(), i)
			}
		}
	}
}

func TestKernelCentroidDistsOrderLikeTrueCentroid(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	X := randPoints(rng, 3, 40)
	K := gramFromPoints(X)
	ks := KernelSpace{K: denseGram{K}}
	idx := make([]int, 40)
	for i := range idx {
		idx[i] = i
	}
	sample := idx // full sample -> exact centroid
	got := make([]float64, len(idx))
	ks.DistsToCentroid(idx, sample, got)
	// True squared distances to the mean point.
	c := make([]float64, 3)
	for i := 0; i < 40; i++ {
		linalg.Axpy(1.0/40, X.Col(i), c)
	}
	want := make([]float64, len(idx))
	for k, i := range idx {
		xi := X.Col(i)
		for q := range xi {
			d := xi[q] - c[q]
			want[k] += d * d
		}
	}
	// The kernel version drops an additive constant, so compare orderings via
	// the argmax (all we use it for).
	if linalg.IdxMax(got) != linalg.IdxMax(want) {
		t.Fatalf("centroid argmax disagrees: kernel %d vs geometric %d",
			linalg.IdxMax(got), linalg.IdxMax(want))
	}
	// And differences must agree up to the constant.
	off := got[0] - want[0]
	for k := range got {
		if math.Abs(got[k]-want[k]-off) > 1e-9 {
			t.Fatalf("kernel centroid distance not a shifted copy at %d", k)
		}
	}
}

func TestBallSplitSeparatesClusters(t *testing.T) {
	// Two well-separated clusters must be split apart by the ball split for
	// every distance definition.
	rng := rand.New(rand.NewSource(44))
	n := 64
	X := linalg.NewMatrix(2, n)
	for i := 0; i < n; i++ {
		off := 0.0
		if i%2 == 1 {
			off = 100
		}
		X.Set(0, i, off+rng.NormFloat64())
		X.Set(1, i, rng.NormFloat64())
	}
	K := gramFromPoints(X)
	// Shift to keep K SPD-ish and entries positive for the angle metric.
	for i := 0; i < n; i++ {
		K.Add(i, i, 1)
	}
	spaces := []Space{
		GeometricSpace{X: X},
		KernelSpace{denseGram{K}},
	}
	for _, sp := range spaces {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		bs := &BallSplit{Space: sp, Rng: rand.New(rand.NewSource(7))}
		nl := bs.Split(idx, 0)
		if nl != n/2 {
			t.Fatalf("%s: nl = %d", sp.Name(), nl)
		}
		// All even (cluster A) indices on one side.
		left := map[bool]int{}
		for _, i := range idx[:nl] {
			left[i%2 == 0]++
		}
		if left[true] != 0 && left[false] != 0 {
			t.Fatalf("%s: ball split mixed clusters: %v", sp.Name(), left)
		}
	}
}

func TestBallSplitBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		K := linalg.RandomSPD(rng, n, 50)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		bs := &BallSplit{Space: AngleSpace{denseGram{K}}, Rng: rng}
		nl := bs.Split(idx, 0)
		if nl != (n+1)/2 {
			return false
		}
		// idx must remain a permutation.
		seen := make([]bool, n)
		for _, v := range idx {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBallSplitUsableInTree(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	K := linalg.RandomSPD(rng, 100, 10)
	bs := &BallSplit{Space: KernelSpace{denseGram{K}}, Rng: rng, Random: true}
	tr := tree.Build(100, 16, bs)
	if tr.NumLeaves() != 8 {
		t.Fatalf("leaves = %d", tr.NumLeaves())
	}
}

func TestRandomSplitPermutes(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	tr := tree.Build(64, 8, RandomSplit{Rng: rng})
	identity := true
	for pos, v := range tr.Perm {
		if pos != v {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("random split produced the identity permutation")
	}
}

func TestAngleSpaceDegenerateDiagonal(t *testing.T) {
	// Zero diagonal entries must not produce NaN distances.
	K := linalg.NewMatrix(2, 2)
	as := AngleSpace{denseGram{K}}
	if d := as.Dist(0, 1); d != 1 || math.IsNaN(d) {
		t.Fatalf("degenerate angle distance = %v", d)
	}
}

func TestBallSplitAllIdenticalPoints(t *testing.T) {
	// Degenerate input: every point identical → all distances zero. The
	// split must stay balanced and terminate.
	n := 64
	X := linalg.NewMatrix(2, n)
	X.Fill(3)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	bs := &BallSplit{Space: GeometricSpace{X: X}, Rng: rand.New(rand.NewSource(1))}
	if nl := bs.Split(idx, 0); nl != n/2 {
		t.Fatalf("degenerate split nl = %d", nl)
	}
}

func TestBallSplitTwoElements(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	K := linalg.RandomSPD(rng, 2, 10)
	idx := []int{0, 1}
	bs := &BallSplit{Space: KernelSpace{denseGram{K}}, Rng: rng}
	if nl := bs.Split(idx, 0); nl != 1 {
		t.Fatalf("2-element split nl = %d", nl)
	}
}

func TestAngleCentroidDegenerate(t *testing.T) {
	// Zero Gram matrix: centroid distances must be defined (no NaN).
	K := linalg.NewMatrix(4, 4)
	as := AngleSpace{denseGram{K}}
	out := make([]float64, 4)
	as.DistsToCentroid([]int{0, 1, 2, 3}, []int{0, 1}, out)
	for _, v := range out {
		if math.IsNaN(v) {
			t.Fatal("NaN centroid distance")
		}
	}
}
