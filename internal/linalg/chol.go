package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot, i.e. the input matrix is not (numerically) positive
// definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive definite A (only the lower triangle of A is read).
// It returns ErrNotSPD for indefinite input.
func Cholesky(A *Matrix) (*Matrix, error) {
	n := A.Rows
	if A.Cols != n {
		panic("linalg: Cholesky of non-square matrix")
	}
	L := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		src := A.Col(j)
		dst := L.Col(j)
		copy(dst[j:], src[j:])
	}
	for j := 0; j < n; j++ {
		cj := L.Col(j)
		// Subtract contributions of previous columns: cj[j:] -= L[j:,k]*L[j,k].
		for k := 0; k < j; k++ {
			ck := L.Col(k)
			Axpy(-ck[j], ck[j:], cj[j:])
		}
		d := cj[j]
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d = %g)", ErrNotSPD, j, d)
		}
		d = math.Sqrt(d)
		cj[j] = d
		Scal(1/d, cj[j+1:])
	}
	return L, nil
}

// CholSolve solves A·X = B given the Cholesky factor L of A, overwriting B
// with X.
func CholSolve(L, B *Matrix) {
	TrsmLeftLower(false, L, B)
	TrsmLeftLower(true, L, B)
}

// InvertSPD returns A⁻¹ via Cholesky factorization and n triangular solves.
func InvertSPD(A *Matrix) (*Matrix, error) {
	L, err := Cholesky(A)
	if err != nil {
		return nil, err
	}
	X := Eye(A.Rows)
	CholSolve(L, X)
	return X, nil
}

// BandedSPD is a symmetric positive definite banded matrix in lower band
// storage: element (j+d, j) for d in [0, Bandwidth] lives at Band[d][j].
// It is the substrate for the paper's stencil matrices (K02, K03, K12–K14,
// K18), whose dense inverses are built by banded Cholesky + N solves.
type BandedSPD struct {
	N         int
	Bandwidth int
	Band      [][]float64 // Band[d][j] = A[j+d, j], len(Band[d]) == N
	factored  bool
}

// NewBandedSPD allocates a zero banded matrix.
func NewBandedSPD(n, bw int) *BandedSPD {
	b := &BandedSPD{N: n, Bandwidth: bw, Band: make([][]float64, bw+1)}
	for d := range b.Band {
		b.Band[d] = make([]float64, n)
	}
	return b
}

// At returns element (i, j), exploiting symmetry; entries outside the band
// are zero.
func (b *BandedSPD) At(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	d := i - j
	if d > b.Bandwidth {
		return 0
	}
	return b.Band[d][j]
}

// Set assigns element (i, j) (and by symmetry (j, i)).
func (b *BandedSPD) Set(i, j int, v float64) {
	if i < j {
		i, j = j, i
	}
	d := i - j
	if d > b.Bandwidth {
		panic("linalg: BandedSPD.Set outside bandwidth")
	}
	b.Band[d][j] = v
}

// AddAt increments element (i, j).
func (b *BandedSPD) AddAt(i, j int, v float64) { b.Set(i, j, b.At(i, j)+v) }

// CholeskyInPlace overwrites the band with the lower Cholesky factor.
// Cost is O(N·bw²), which makes building dense inverses of 2-D/3-D stencil
// operators feasible at laptop scale.
func (b *BandedSPD) CholeskyInPlace() error {
	if b.factored {
		return nil
	}
	n, bw := b.N, b.Bandwidth
	for j := 0; j < n; j++ {
		d := b.Band[0][j]
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w (banded pivot %d = %g)", ErrNotSPD, j, d)
		}
		d = math.Sqrt(d)
		b.Band[0][j] = d
		lim := min(bw, n-1-j)
		for k := 1; k <= lim; k++ {
			b.Band[k][j] /= d
		}
		// Rank-1 downdate of the trailing band columns touched by column j.
		for c := 1; c <= lim; c++ {
			ljc := b.Band[c][j] // L[j+c, j]
			for r := c; r <= lim; r++ {
				b.Band[r-c][j+c] -= b.Band[r][j] * ljc
			}
		}
	}
	b.factored = true
	return nil
}

// Solve solves A·x = rhs in place given a factored band (call
// CholeskyInPlace first).
func (b *BandedSPD) Solve(x []float64) {
	if !b.factored {
		panic("linalg: BandedSPD.Solve before CholeskyInPlace")
	}
	n, bw := b.N, b.Bandwidth
	// Forward: L y = x.
	for j := 0; j < n; j++ {
		x[j] /= b.Band[0][j]
		lim := min(bw, n-1-j)
		xj := x[j]
		for k := 1; k <= lim; k++ {
			x[j+k] -= b.Band[k][j] * xj
		}
	}
	// Backward: Lᵀ x = y.
	for j := n - 1; j >= 0; j-- {
		lim := min(bw, n-1-j)
		s := x[j]
		for k := 1; k <= lim; k++ {
			s -= b.Band[k][j] * x[j+k]
		}
		x[j] = s / b.Band[0][j]
	}
}

// SolveMatrix solves A·X = B column by column in place.
func (b *BandedSPD) SolveMatrix(B *Matrix) {
	if B.Rows != b.N {
		panic("linalg: BandedSPD.SolveMatrix dimension mismatch")
	}
	parallelFor(B.Cols, 4, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			b.Solve(B.Col(j))
		}
	})
}

// DenseInverse returns A⁻¹ as a dense matrix (factoring if needed).
func (b *BandedSPD) DenseInverse() (*Matrix, error) {
	if err := b.CholeskyInPlace(); err != nil {
		return nil, err
	}
	X := Eye(b.N)
	b.SolveMatrix(X)
	return X, nil
}

// LogDetFromCholesky returns log det(A) = 2·Σ log L_ii given the Cholesky
// factor of A.
func LogDetFromCholesky(L *Matrix) float64 {
	var s float64
	for i := 0; i < L.Rows; i++ {
		s += math.Log(L.At(i, i))
	}
	return 2 * s
}
