package tree

import "fmt"

// Morton encodes the path from the root to a tree node as bits (left = 0,
// right = 1, most significant first) together with the node's level. This is
// the paper's "Morton ID": a bit array coding the path from the root to a
// tree node or index. It supports the two queries GOFMM needs — ancestor
// tests during FindFar (Algorithm 2.4) and membership checks for near lists.
//
// Layout: bits 6.. hold the path, bits 0..5 hold the level (≤ 63 levels,
// i.e. trees with up to 2^63 leaves).
type Morton uint64

const mortonLevelBits = 6

func mortonOf(id, level int) Morton {
	// In heap order, node id at level l has path = id - (2^l - 1).
	path := uint64(id) - (uint64(1)<<uint(level) - 1)
	return Morton(path<<mortonLevelBits | uint64(level))
}

// Level returns the node level encoded in m.
func (m Morton) Level() int { return int(m & (1<<mortonLevelBits - 1)) }

// Path returns the root-to-node path bits.
func (m Morton) Path() uint64 { return uint64(m) >> mortonLevelBits }

// NodeID returns the heap-order node index corresponding to m.
func (m Morton) NodeID() int {
	return int(m.Path() + (uint64(1)<<uint(m.Level()) - 1))
}

// IsAncestorOf reports whether m's node is an ancestor of (or equal to) o's
// node: m's path must be a prefix of o's path.
func (m Morton) IsAncestorOf(o Morton) bool {
	lm, lo := m.Level(), o.Level()
	if lm > lo {
		return false
	}
	return o.Path()>>(uint(lo-lm)) == m.Path()
}

// AncestorAt returns the Morton ID of m's ancestor at the given level
// (level ≤ m.Level()).
func (m Morton) AncestorAt(level int) Morton {
	lm := m.Level()
	if level > lm {
		panic("tree: AncestorAt below node level")
	}
	return Morton(m.Path()>>uint(lm-level)<<mortonLevelBits | uint64(level))
}

// String renders the path as a binary string, e.g. "0b101@3".
func (m Morton) String() string {
	l := m.Level()
	if l == 0 {
		return "root"
	}
	return fmt.Sprintf("0b%0*b@%d", l, m.Path(), l)
}
