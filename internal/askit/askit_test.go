package askit

import (
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
)

type denseOracle struct{ M *linalg.Matrix }

func (d denseOracle) Dim() int            { return d.M.Rows }
func (d denseOracle) At(i, j int) float64 { return d.M.At(i, j) }
func (d denseOracle) Submatrix(I, J []int, dst *linalg.Matrix) {
	for c, j := range J {
		col := dst.Col(c)
		src := d.M.Col(j)
		for r, i := range I {
			col[r] = src[i]
		}
	}
}

func gaussMatrix(rng *rand.Rand, n int, h float64) (*linalg.Matrix, *linalg.Matrix) {
	X := linalg.GaussianMatrix(rng, 3, n)
	K := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d2 := 0.0
			for q := 0; q < 3; q++ {
				t := X.At(q, i) - X.At(q, j)
				d2 += t * t
			}
			K.Set(i, j, math.Exp(-d2/(2*h*h)))
		}
	}
	for i := 0; i < n; i++ {
		K.Add(i, i, 1e-8)
	}
	return K, X
}

func TestRequiresPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	K, _ := gaussMatrix(rng, 64, 1)
	if _, err := Compress(denseOracle{K}, nil, Config{}); err == nil {
		t.Fatal("expected error without points")
	}
}

func TestMatvecAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	K, X := gaussMatrix(rng, 500, 0.9)
	tc, err := Compress(denseOracle{K}, X, Config{
		LeafSize: 50, MaxRank: 50, Tol: 1e-8, Kappa: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	W := linalg.GaussianMatrix(rng, 500, 2)
	U := tc.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-2 {
		t.Fatalf("ASKIT matvec error %g", d)
	}
	if tc.Stats().CompressTime <= 0 || tc.Stats().EvalTime <= 0 {
		t.Fatal("stats missing")
	}
	if e := tc.SampleRelErr(W, U, 50, 2); e > 1e-2 {
		t.Fatalf("sampled error %g", e)
	}
}

func TestKappaControlsDirectEvaluations(t *testing.T) {
	// ASKIT's direct-evaluation volume is decided by κ: a larger κ must not
	// shrink the near lists (more neighbors → more near leaves).
	rng := rand.New(rand.NewSource(82))
	K, X := gaussMatrix(rng, 400, 0.5)
	var fracs []float64
	for _, kappa := range []int{2, 32} {
		tc, err := Compress(denseOracle{K}, X, Config{
			LeafSize: 32, MaxRank: 32, Tol: 1e-6, Kappa: kappa, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		fracs = append(fracs, tc.Stats().DirectFrac)
	}
	if fracs[1] < fracs[0] {
		t.Fatalf("κ=32 produced fewer direct evaluations than κ=2: %v", fracs)
	}
}
