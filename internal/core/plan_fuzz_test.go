package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
)

// TestPlanReplayInjectedPanicBecomesTypedError pins the crash funnel of the
// compiled path: a chaos-injected replay panic must surface from the public
// entry point as a typed *resilience.PanicError — never escape as a raw
// panic, and never poison the installed plan for later callers.
func TestPlanReplayInjectedPanicBecomesTypedError(t *testing.T) {
	cfg := planConfig()
	chaos := resilience.NewChaos(resilience.ChaosConfig{Seed: 5, TaskFail: 1}, nil)
	cfg.Chaos = chaos
	h, _ := compressGauss(t, 256, cfg)
	if _, err := h.CompilePlan(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	W := linalg.GaussianMatrix(rng, 256, 1)
	_, err := h.MatvecCtx(context.Background(), W)
	var perr *resilience.PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("injected replay fault surfaced as %v, want *resilience.PanicError", err)
	}
	if perr.Label != "matvec" {
		t.Fatalf("panic label %q, want matvec", perr.Label)
	}
	if h.Plan() == nil {
		t.Fatal("injected fault uninstalled the plan")
	}
	// With the injector gone the same plan serves the same request.
	h.Cfg.Chaos = nil
	if _, err := h.MatvecCtx(context.Background(), W); err != nil {
		t.Fatalf("plan poisoned by injected fault: %v", err)
	}
}

// FuzzPlanReplay cross-checks compile-and-replay against the tree
// interpreter over fuzzed tree shapes (problem size, leaf size, skeleton
// rank, budget, caching precision) and fuzzed inputs, including NaN/Inf
// poisoning of the weight matrix. Three properties must survive anything
// the fuzzer finds:
//
//  1. replaying twice is bit-identical (Float64bits — NaN-safe);
//  2. plan and interpreter agree entrywise on finiteness (both paths
//     multiply the same block entries by the same weights, so a NaN or Inf
//     contaminates the same output rows regardless of accumulation order);
//  3. where both are finite they agree to near-machine precision relative
//     to the column scale.
func FuzzPlanReplay(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(0), uint16(0))
	f.Add(int64(7), uint8(3), uint8(2), uint8(9), uint16(0xBEEF))
	f.Add(int64(42), uint8(1), uint8(5), uint8(4), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, shape, rank, knobs uint8, poison uint16) {
		n := 48 + int(shape%5)*24      // 48..144: varied tree shapes
		leaf := 8 << (shape % 3)       // 8, 16, 32: varied depths
		maxRank := 6 + int(rank%4)*6   // 6..24: varied skeleton ranks
		bud := float64(knobs%5) * 0.02 // 0 (HSS) .. 0.08
		tol := 1e-5
		if rank%2 == 1 {
			tol = 1e-2
		}
		rng := rand.New(rand.NewSource(seed))
		K, X := gaussKernelMatrix(rng, n, 0.8)
		cfg := Config{
			LeafSize: leaf, MaxRank: maxRank, Tol: tol, Kappa: 8, Budget: bud,
			Distance: Angle, Exec: Sequential, Seed: seed,
			CacheBlocks: true, CacheSingle: knobs%2 == 1, Points: X,
		}
		h, err := Compress(denseSPD{K}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.CompilePlanCtx(context.Background()); err != nil {
			t.Fatal(err)
		}
		r := 1 + int(shape%2) // width 1 (GEMV kernels) and 2 (GEMM kernels)
		W := linalg.GaussianMatrix(rng, n, r)
		for b := 0; b < 16; b++ {
			if poison&(1<<b) == 0 {
				continue
			}
			i := (b*131 + int(uint64(seed)%97)) % n
			v := math.NaN()
			switch b % 3 {
			case 1:
				v = math.Inf(1)
			case 2:
				v = math.Inf(-1)
			}
			W.Set(i, b%r, v)
		}
		ref, err := h.InterpMatmatCtx(context.Background(), W)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.MatmatCtx(context.Background(), W)
		if err != nil {
			t.Fatal(err)
		}
		again, err := h.MatmatCtx(context.Background(), W)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < r; j++ {
			g, a, rf := got.Col(j), again.Col(j), ref.Col(j)
			scale := 1.0
			for i := range rf {
				if v := math.Abs(rf[i]); !math.IsInf(v, 0) && !math.IsNaN(v) && v > scale {
					scale = v
				}
			}
			for i := range g {
				if math.Float64bits(g[i]) != math.Float64bits(a[i]) {
					t.Fatalf("replay not bit-identical at (%d,%d): %x vs %x",
						i, j, math.Float64bits(g[i]), math.Float64bits(a[i]))
				}
				gFin := !math.IsNaN(g[i]) && !math.IsInf(g[i], 0)
				rFin := !math.IsNaN(rf[i]) && !math.IsInf(rf[i], 0)
				if gFin != rFin {
					t.Fatalf("finiteness differs at (%d,%d): plan %v, interpreter %v", i, j, g[i], rf[i])
				}
				if gFin && math.Abs(g[i]-rf[i]) > 1e-12*scale {
					t.Fatalf("plan vs interpreter differ at (%d,%d): %v vs %v (scale %g)",
						i, j, g[i], rf[i], scale)
				}
			}
		}
	})
}
