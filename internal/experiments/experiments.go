// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) at laptop scale. Each Fig*/Table* function runs the
// workloads, prints rows in the shape the paper reports (who wins, by what
// factor, where the crossovers are) and returns the structured results so
// the benchmark harness and EXPERIMENTS.md generation can consume them.
//
// Scaling note: problem sizes default to a few thousand (vs 36K–500K in the
// paper) and the worker counts are goroutine pools on whatever cores exist;
// absolute times differ from the paper's Haswell/KNL/P100 numbers but the
// comparisons are preserved. See DESIGN.md for the substitution table.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
	"gofmm/internal/spdmat"
)

// Result is one measured row of an experiment.
type Result struct {
	Experiment string
	Case       string
	Scheme     string
	N, Workers int
	Rank       int // configured max rank s
	Budget     float64
	Eps        float64
	CompressS  float64
	EvalS      float64
	CompressGF float64
	EvalGF     float64
	AvgRank    float64
	DirectFrac float64
}

// Row flattens the result into the generic row shape telemetry.RunRecord
// stores. The keys are stable: the CI artifact validation and any offline
// tooling key on them.
func (r Result) Row() map[string]any {
	row := map[string]any{
		"case": r.Case, "n": r.N, "workers": r.Workers,
		"rank": r.Rank, "budget": r.Budget, "eps2": r.Eps,
		"compress_seconds": r.CompressS, "eval_seconds": r.EvalS,
		"compress_gflops": r.CompressGF, "eval_gflops": r.EvalGF,
		"avg_rank": r.AvgRank, "direct_frac": r.DirectFrac,
	}
	if r.Experiment != "" {
		row["experiment"] = r.Experiment
	}
	if r.Scheme != "" {
		row["scheme"] = r.Scheme
	}
	return row
}

// Problem wraps a generated SPD problem plus its dense form when available.
type Problem struct {
	*spdmat.Problem
}

// GetProblem generates a named spdmat problem (panicking on unknown names —
// the callers enumerate the registry).
func GetProblem(name string, n int, seed int64) Problem {
	p, err := spdmat.Generate(name, n, seed)
	if err != nil {
		panic(err)
	}
	return Problem{p}
}

// Run compresses the problem with cfg, evaluates r right-hand sides, and
// returns the Result row (ε₂ from 100 sampled rows, per Eq. 11).
func Run(p Problem, cfg core.Config, r int, seed int64) Result {
	if cfg.Points == nil {
		cfg.Points = p.Points
	}
	h, err := core.Compress(p.K, cfg)
	if err != nil {
		panic(fmt.Sprintf("%s: %v", p.Name, err))
	}
	rng := rand.New(rand.NewSource(seed))
	W := linalg.GaussianMatrix(rng, p.K.Dim(), r)
	U := h.Matvec(W)
	eps := h.SampleRelErr(W, U, 100, seed+1)
	evalS, evalFlops := h.LastEval()
	res := Result{
		Case:       p.Name,
		N:          p.K.Dim(),
		Workers:    cfg.NumWorkers,
		Rank:       cfg.MaxRank,
		Budget:     cfg.Budget,
		Eps:        eps,
		CompressS:  h.Stats.CompressTime,
		EvalS:      evalS,
		AvgRank:    h.Stats.AvgRank,
		DirectFrac: h.Stats.DirectFrac,
	}
	if h.Stats.CompressTime > 0 {
		res.CompressGF = h.Stats.CompressFlops / h.Stats.CompressTime / 1e9
	}
	if evalS > 0 {
		res.EvalGF = evalFlops / evalS / 1e9
	}
	return res
}

// DenseKernel materializes an on-the-fly kernel problem as a dense matrix
// (for the SGEMM baseline of Figure 1 and exact-error checks).
func DenseKernel(p Problem) *linalg.Matrix {
	n := p.K.Dim()
	M := linalg.NewMatrix(n, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if b, ok := p.K.(interface {
		Submatrix(I, J []int, dst *linalg.Matrix)
	}); ok {
		b.Submatrix(idx, idx, M)
		return M
	}
	for j := 0; j < n; j++ {
		col := M.Col(j)
		for i := 0; i < n; i++ {
			col[i] = p.K.At(i, j)
		}
	}
	return M
}

// header prints an aligned column header.
func header(w io.Writer, cols ...string) {
	for _, c := range cols {
		fmt.Fprintf(w, "%-17s", c)
	}
	fmt.Fprintln(w)
}

func cell(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, "%-17s", fmt.Sprintf(format, args...))
}

func endRow(w io.Writer) { fmt.Fprintln(w) }

// randNew returns a seeded RNG (helper for the traced runs).
func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
