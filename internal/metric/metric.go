// Package metric implements the three index-to-index distances of GOFMM §2.1
// (geometric ℓ₂ when points are available, Gram/kernel ℓ₂, and Gram angle)
// and the splitters built on them: the metric ball-tree split of
// Algorithm 2.1, the random-projection split used by the randomized
// neighbor-search trees, and the lexicographic/random pseudo-splits used for
// the permutation study (Figure 7).
//
// The crucial observation reproduced here is that an SPD matrix K is the
// Gram matrix of unknown vectors φᵢ, so
//
//	d²(i,j) = Kᵢᵢ + Kⱼⱼ − 2Kᵢⱼ      (kernel distance)
//	d(i,j)  = 1 − K²ᵢⱼ/(KᵢᵢKⱼⱼ)     (angle distance)
//
// are proper distances computable from three matrix entries each — no
// coordinates needed.
package metric

import (
	"math/rand"
	"sort"

	"gofmm/internal/linalg"
)

// Gram provides sampled access to an SPD matrix. It is the minimal contract
// GOFMM demands from its input (the "routine that returns K_IJ").
type Gram interface {
	Dim() int
	At(i, j int) float64
}

// Space defines a distance between matrix indices together with the two bulk
// queries the ball-tree split needs. Implementations must only *order*
// consistently; any monotone transform of a true metric is acceptable
// (the paper: "we only compare values for the purpose of ordering").
type Space interface {
	// Name identifies the space ("geometric", "kernel", "angle").
	Name() string
	// Dist returns the distance (or a monotone equivalent) between i and j.
	Dist(i, j int) float64
	// DistsTo fills out[k] = Dist(idx[k], j).
	DistsTo(idx []int, j int, out []float64)
	// DistsToCentroid fills out[k] with a monotone equivalent of the
	// distance from idx[k] to the centroid of the Gram vectors (or points)
	// listed in sample.
	DistsToCentroid(idx []int, sample []int, out []float64)
}

// KernelSpace is the Gram-ℓ₂ ("kernel") distance, Eq. (3) of the paper.
type KernelSpace struct{ K Gram }

// Name implements Space.
func (KernelSpace) Name() string { return "kernel" }

// Dist returns d²(i,j) = Kii + Kjj − 2Kij (squared distances order
// identically to distances).
func (s KernelSpace) Dist(i, j int) float64 {
	return s.K.At(i, i) + s.K.At(j, j) - 2*s.K.At(i, j)
}

// DistsTo implements Space.
func (s KernelSpace) DistsTo(idx []int, j int, out []float64) {
	kjj := s.K.At(j, j)
	for k, i := range idx {
		out[k] = s.K.At(i, i) + kjj - 2*s.K.At(i, j)
	}
}

// DistsToCentroid uses ‖φᵢ − c‖² = Kᵢᵢ − (2/nc)Σ_s Kᵢs + const, dropping the
// i-independent constant.
func (s KernelSpace) DistsToCentroid(idx []int, sample []int, out []float64) {
	inv := 2 / float64(len(sample))
	for k, i := range idx {
		sum := 0.0
		for _, sj := range sample {
			sum += s.K.At(i, sj)
		}
		out[k] = s.K.At(i, i) - inv*sum
	}
}

// AngleSpace is the Gram angle distance, Eq. (4) of the paper:
// d(i,j) = 1 − K²ᵢⱼ/(KᵢᵢKⱼⱼ) = sin²∠(φᵢ, φⱼ).
type AngleSpace struct{ K Gram }

// Name implements Space.
func (AngleSpace) Name() string { return "angle" }

// Dist implements Space.
func (s AngleSpace) Dist(i, j int) float64 {
	kij := s.K.At(i, j)
	den := s.K.At(i, i) * s.K.At(j, j)
	if den <= 0 {
		return 1
	}
	return 1 - kij*kij/den
}

// DistsTo implements Space.
func (s AngleSpace) DistsTo(idx []int, j int, out []float64) {
	kjj := s.K.At(j, j)
	for k, i := range idx {
		kij := s.K.At(i, j)
		den := s.K.At(i, i) * kjj
		if den <= 0 {
			out[k] = 1
			continue
		}
		out[k] = 1 - kij*kij/den
	}
}

// DistsToCentroid uses (φᵢ, c) = (1/nc)Σ_s Kᵢs and
// ‖c‖² = (1/nc²)Σ_{s,t} K_st.
func (s AngleSpace) DistsToCentroid(idx []int, sample []int, out []float64) {
	nc := float64(len(sample))
	var cnorm2 float64
	for _, a := range sample {
		for _, b := range sample {
			cnorm2 += s.K.At(a, b)
		}
	}
	cnorm2 /= nc * nc
	for k, i := range idx {
		dot := 0.0
		for _, sj := range sample {
			dot += s.K.At(i, sj)
		}
		dot /= nc
		den := s.K.At(i, i) * cnorm2
		if den <= 0 {
			out[k] = 1
			continue
		}
		out[k] = 1 - dot*dot/den
	}
}

// GeometricSpace is the point-based Euclidean distance, the geometry-aware
// reference used when coordinates are available. Points are stored as the
// columns of a d×N matrix.
type GeometricSpace struct{ X *linalg.Matrix }

// Name implements Space.
func (GeometricSpace) Name() string { return "geometric" }

// Dist returns ‖xᵢ − xⱼ‖² (squared; monotone equivalent).
func (s GeometricSpace) Dist(i, j int) float64 {
	xi, xj := s.X.Col(i), s.X.Col(j)
	var d float64
	for k := range xi {
		t := xi[k] - xj[k]
		d += t * t
	}
	return d
}

// DistsTo implements Space.
func (s GeometricSpace) DistsTo(idx []int, j int, out []float64) {
	for k, i := range idx {
		out[k] = s.Dist(i, j)
	}
}

// DistsToCentroid computes squared distances to the arithmetic mean of the
// sampled points.
func (s GeometricSpace) DistsToCentroid(idx []int, sample []int, out []float64) {
	d := s.X.Rows
	c := make([]float64, d)
	for _, sj := range sample {
		linalg.Axpy(1, s.X.Col(sj), c)
	}
	linalg.Scal(1/float64(len(sample)), c)
	for k, i := range idx {
		xi := s.X.Col(i)
		var dd float64
		for q := range xi {
			t := xi[q] - c[q]
			dd += t * t
		}
		out[k] = dd
	}
}

// BallSplit is the metric ball-tree splitter of Algorithm 2.1: pick the point
// p farthest from a sampled centroid, then q farthest from p, and cut at the
// median of d(i,p) − d(i,q). With Random set, p and q are chosen uniformly at
// random instead — that is exactly how the randomized projection trees for
// neighbor search are built ("constructed in exactly the same way ... except
// that p and q are chosen randomly").
type BallSplit struct {
	Space          Space
	Rng            *rand.Rand
	CentroidSample int  // nc; 0 means 32
	Random         bool // random p, q (ANN projection trees)
}

// Split implements tree.Splitter.
func (b *BallSplit) Split(idx []int, _ int) int {
	n := len(idx)
	nl := (n + 1) / 2
	if n < 2 {
		return nl
	}
	var p, q int
	if b.Random {
		p = idx[b.Rng.Intn(n)]
		q = idx[b.Rng.Intn(n)]
		for q == p && n > 1 {
			q = idx[b.Rng.Intn(n)]
		}
	} else {
		nc := b.CentroidSample
		if nc <= 0 {
			nc = 32
		}
		if nc > n {
			nc = n
		}
		sample := make([]int, nc)
		for k := range sample {
			sample[k] = idx[b.Rng.Intn(n)]
		}
		dist := make([]float64, n)
		b.Space.DistsToCentroid(idx, sample, dist)
		p = idx[linalg.IdxMax(dist)]
		b.Space.DistsTo(idx, p, dist)
		q = idx[linalg.IdxMax(dist)]
	}
	// proj[i] = d(i,p) − d(i,q): negative means closer to p (left side).
	dp := make([]float64, n)
	dq := make([]float64, n)
	b.Space.DistsTo(idx, p, dp)
	b.Space.DistsTo(idx, q, dq)
	proj := dp
	for k := range proj {
		proj[k] -= dq[k]
	}
	medianSplit(idx, proj, nl)
	return nl
}

// medianSplit reorders idx so the nl smallest projections come first.
// Sorting keeps ties deterministic; the O(n log n) cost matches the paper's
// per-level bound.
func medianSplit(idx []int, proj []float64, nl int) {
	ord := make([]int, len(idx))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, c int) bool { return proj[ord[a]] < proj[ord[c]] })
	tmp := make([]int, len(idx))
	for k, o := range ord {
		tmp[k] = idx[o]
	}
	copy(idx, tmp)
	_ = nl
}

// RandomSplit shuffles each node's indices before an even cut — the "Random"
// permutation baseline of Figure 7.
type RandomSplit struct{ Rng *rand.Rand }

// Split implements tree.Splitter.
func (r RandomSplit) Split(idx []int, _ int) int {
	r.Rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
	return (len(idx) + 1) / 2
}
