package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gofmm/internal/linalg"
)

func TestMatvecNearExactWithTightTolerance(t *testing.T) {
	// With the full complement sampled and an uncapped rank, the adaptive
	// ID is limited only by τ, so the matvec must be near machine accurate.
	h, K := compressGauss(t, 400, Config{
		LeafSize: 32, MaxRank: 400, Tol: 1e-12, Kappa: 8,
		Budget: 0.1, Distance: Kernel, Exec: Sequential, Seed: 1,
		CacheBlocks: true, SampleRows: 400,
	})
	rng := rand.New(rand.NewSource(2))
	W := linalg.GaussianMatrix(rng, 400, 5)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-8 {
		t.Fatalf("tight-tolerance matvec error %g (avg rank %.1f)", d, h.Stats.AvgRank)
	}
}

func TestMatvecHSSMode(t *testing.T) {
	h, K := compressGauss(t, 400, Config{
		LeafSize: 32, MaxRank: 32, Tol: 1e-12, Kappa: 8,
		Budget: 0, Distance: Kernel, Exec: Sequential, Seed: 1,
		CacheBlocks: true,
	})
	rng := rand.New(rand.NewSource(3))
	W := linalg.GaussianMatrix(rng, 400, 3)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-4 {
		t.Fatalf("HSS matvec error %g", d)
	}
}

func TestMatvecLexicographicOrderStillWorks(t *testing.T) {
	// Without neighbors or permutation (the HODLR/STRUMPACK regime), the
	// Gaussian kernel on *sorted* 1-D points compresses fine; GOFMM must
	// handle the no-neighbor path (uniform sampling, HSS structure).
	n := 300
	X := linalg.NewMatrix(1, n)
	for i := 0; i < n; i++ {
		X.Set(0, i, float64(i)/float64(n))
	}
	K := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d := X.At(0, i) - X.At(0, j)
			K.Set(i, j, math.Exp(-d*d/0.02))
		}
	}
	for i := 0; i < n; i++ {
		K.Add(i, i, 1e-8)
	}
	h, err := Compress(denseSPD{K}, Config{
		LeafSize: 32, MaxRank: 32, Tol: 1e-10, Distance: Lexicographic,
		Exec: Sequential, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	W := linalg.GaussianMatrix(rng, n, 2)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-5 {
		t.Fatalf("lexicographic matvec error %g", d)
	}
}

func TestAllExecutorsAgreeBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	Kd, X := gaussKernelMatrix(rng, 350, 0.8)
	W := linalg.GaussianMatrix(rng, 350, 4)
	var ref *linalg.Matrix
	for _, mode := range []ExecMode{Sequential, LevelByLevel, Dynamic, TaskDepend} {
		h, err := Compress(denseSPD{Kd}, Config{
			LeafSize: 32, MaxRank: 24, Tol: 1e-7, Kappa: 8, Budget: 0.1,
			Distance: Geometric, Points: X, Exec: mode, Seed: 42,
			NumWorkers: 3, CacheBlocks: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		U := h.Matvec(W)
		if ref == nil {
			ref = U
			continue
		}
		if !linalg.EqualApprox(U, ref, 0) {
			t.Fatalf("executor %v result differs from sequential (max |Δ| = %g)",
				mode, maxAbsDiff(U, ref))
		}
	}
}

func maxAbsDiff(a, b *linalg.Matrix) float64 {
	d := a.Clone()
	d.AddScaled(-1, b)
	return d.MaxAbs()
}

func TestCachingDoesNotChangeResult(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	Kd, _ := gaussKernelMatrix(rng, 300, 0.8)
	W := linalg.GaussianMatrix(rng, 300, 3)
	var ref *linalg.Matrix
	for _, cache := range []bool{false, true} {
		h, err := Compress(denseSPD{Kd}, Config{
			LeafSize: 32, MaxRank: 24, Tol: 1e-7, Kappa: 8, Budget: 0.1,
			Distance: Angle, Exec: Sequential, Seed: 21, CacheBlocks: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		U := h.Matvec(W)
		if ref == nil {
			ref = U
		} else if !linalg.EqualApprox(U, ref, 0) {
			t.Fatal("caching changed the matvec result")
		}
	}
}

func TestMultiRHSMatchesSingle(t *testing.T) {
	h, _ := compressGauss(t, 300, Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-7, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 6, CacheBlocks: true,
	})
	rng := rand.New(rand.NewSource(7))
	W := linalg.GaussianMatrix(rng, 300, 4)
	U := h.Matvec(W)
	scale := U.MaxAbs()
	for j := 0; j < 4; j++ {
		Wj := linalg.NewMatrix(300, 1)
		copy(Wj.Col(0), W.Col(j))
		Uj := h.Matvec(Wj)
		for i := 0; i < 300; i++ {
			// Identical operator, but the GEMM panel kernel sums in a
			// different order for 1- vs 4-column blocks: allow rounding.
			if math.Abs(Uj.At(i, 0)-U.At(i, j)) > 1e-12*scale {
				t.Fatalf("column %d differs from single-RHS result at row %d: %g vs %g",
					j, i, Uj.At(i, 0), U.At(i, j))
			}
		}
	}
}

func TestCompressedOperatorIsSymmetric(t *testing.T) {
	// GOFMM guarantees a symmetric K̃: apply to the identity and compare.
	n := 200
	h, _ := compressGauss(t, n, Config{
		LeafSize: 16, MaxRank: 16, Tol: 1e-4, Kappa: 8, Budget: 0.2,
		Distance: Angle, Exec: Sequential, Seed: 8, CacheBlocks: true,
	})
	Kt := h.Matvec(linalg.Eye(n))
	if d := linalg.RelFrobDiff(Kt.Transposed(), Kt); d > 1e-12 {
		t.Fatalf("K̃ not symmetric: %g", d)
	}
}

func TestAsymmetricModeStillExactCoverage(t *testing.T) {
	// ASKIT-style lists do not guarantee symmetry but must stay accurate.
	h, K := compressGauss(t, 300, Config{
		LeafSize: 32, MaxRank: 300, Tol: 1e-12, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 9, NoSymmetrize: true,
		SampleRows: 300,
	})
	rng := rand.New(rand.NewSource(10))
	W := linalg.GaussianMatrix(rng, 300, 2)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-8 {
		t.Fatalf("asymmetric-mode matvec error %g", d)
	}
}

func TestBudgetImprovesAccuracy(t *testing.T) {
	// The FMM-vs-HSS claim of Figure 6: with a small fixed rank, adding
	// direct evaluations (budget) improves accuracy.
	rng := rand.New(rand.NewSource(14))
	Kd, _ := gaussKernelMatrix(rng, 512, 0.25) // narrow bandwidth: high off-diag rank
	W := linalg.GaussianMatrix(rng, 512, 2)
	exact := linalg.MatMul(false, false, Kd, W)
	var errs []float64
	for _, budget := range []float64{0, 0.25} {
		h, err := Compress(denseSPD{Kd}, Config{
			LeafSize: 32, MaxRank: 8, Tol: 1e-12, Kappa: 16, Budget: budget,
			Distance: Kernel, Exec: Sequential, Seed: 15, CacheBlocks: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		U := h.Matvec(W)
		errs = append(errs, linalg.RelFrobDiff(U, exact))
	}
	if errs[1] >= errs[0] {
		t.Fatalf("budget did not improve accuracy: %v", errs)
	}
}

func TestSampleRelErrTracksTrueError(t *testing.T) {
	h, K := compressGauss(t, 400, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-3, Kappa: 8, Budget: 0.05,
		Distance: Kernel, Exec: Sequential, Seed: 16, CacheBlocks: true,
	})
	rng := rand.New(rand.NewSource(17))
	W := linalg.GaussianMatrix(rng, 400, 3)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	trueErr := linalg.RelFrobDiff(U, exact)
	est := h.SampleRelErr(W, U, 100, 18)
	if trueErr > 1e-14 && (est > trueErr*10 || est < trueErr/10) {
		t.Fatalf("sampled ε₂ %g vs true %g", est, trueErr)
	}
}

func TestEntryErrors(t *testing.T) {
	h, _ := compressGauss(t, 200, Config{
		LeafSize: 16, MaxRank: 16, Tol: 1e-8, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 19, CacheBlocks: true,
	})
	rng := rand.New(rand.NewSource(20))
	W := linalg.GaussianMatrix(rng, 200, 1)
	U := h.Matvec(W)
	errs := h.EntryErrors(W, U, 10)
	if len(errs) != 10 {
		t.Fatalf("EntryErrors returned %d entries", len(errs))
	}
	// Relative per-entry errors can blow up where the exact entry is near
	// zero, so check the median rather than the max.
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	if med := sorted[len(sorted)/2]; math.IsNaN(med) || med > 1e-2 {
		t.Fatalf("median entry error %g (all: %v)", med, errs)
	}
}

func TestStatsPopulated(t *testing.T) {
	h, _ := compressGauss(t, 300, Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-6, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 22, CacheBlocks: true,
	})
	rng := rand.New(rand.NewSource(23))
	h.Matvec(linalg.GaussianMatrix(rng, 300, 2))
	s := h.Stats
	if s.AvgRank <= 0 || s.CompressFlops <= 0 || s.EvalFlops <= 0 {
		t.Fatalf("stats not populated: %+v", s)
	}
	if s.DirectFrac <= 0 || s.DirectFrac > 1 {
		t.Fatalf("DirectFrac = %g", s.DirectFrac)
	}
	if s.CompressTime <= 0 || s.EvalTime <= 0 {
		t.Fatalf("times not recorded: %+v", s)
	}
	if s.MaxNear < 1 {
		t.Fatalf("MaxNear = %d", s.MaxNear)
	}
}

func TestExactMatvecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	K := linalg.RandomSPD(rng, 70, 10)
	W := linalg.GaussianMatrix(rng, 70, 3)
	got := ExactMatvec(denseSPD{K}, W)
	want := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(got, want); d > 1e-12 {
		t.Fatalf("ExactMatvec error %g", d)
	}
}

func TestCompressErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	K := linalg.RandomSPD(rng, 10, 10)
	if _, err := Compress(denseSPD{K}, Config{Distance: Geometric}); err == nil {
		t.Fatal("expected ErrNeedPoints")
	}
	bad := linalg.GaussianMatrix(rng, 2, 5)
	if _, err := Compress(denseSPD{K}, Config{Distance: Geometric, Points: bad}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestSingleLeafDegenerateTree(t *testing.T) {
	// n ≤ leafSize: the tree is one leaf; K̃ must equal K exactly.
	rng := rand.New(rand.NewSource(26))
	K := linalg.RandomSPD(rng, 20, 10)
	h, err := Compress(denseSPD{K}, Config{
		LeafSize: 64, Distance: Kernel, Exec: Sequential, Seed: 27, CacheBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	W := linalg.GaussianMatrix(rng, 20, 2)
	U := h.Matvec(W)
	want := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, want); d > 1e-13 {
		t.Fatalf("single-leaf matvec error %g", d)
	}
}

func TestMatvecPropertyLinear(t *testing.T) {
	// K̃ is a fixed linear operator: K̃(aW1 + bW2) = a·K̃W1 + b·K̃W2.
	h, _ := compressGauss(t, 256, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-5, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 28, CacheBlocks: true,
	})
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			a = 1.5
		}
		if math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e6 {
			b = -0.5
		}
		rng := rand.New(rand.NewSource(seed))
		W1 := linalg.GaussianMatrix(rng, 256, 2)
		W2 := linalg.GaussianMatrix(rng, 256, 2)
		comb := W1.Clone()
		comb.Scale(a)
		comb.AddScaled(b, W2)
		U := h.Matvec(comb)
		U1 := h.Matvec(W1)
		U2 := h.Matvec(W2)
		U1.Scale(a)
		U1.AddScaled(b, U2)
		scale := math.Max(U.FrobeniusNorm(), 1)
		diff := U.Clone()
		diff.AddScaled(-1, U1)
		return diff.FrobeniusNorm()/scale < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
