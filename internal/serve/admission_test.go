package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gofmm/internal/resilience"
)

// The admission gate must be bounded by construction: with 2 slots and a
// 2-deep queue, a burst of 16 claims admits at most 4 and sheds the other
// 12 immediately with a typed, hinted ErrOverloaded.
func TestAdmissionShedsBeyondBound(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 2, MaxQueue: 2, RetryAfter: 7 * time.Second})
	ctx := context.Background()

	var admitted, shed atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := a.acquire(ctx)
			if err == nil {
				admitted.Add(1)
				<-release
				a.release()
				return
			}
			if !errors.Is(err, ErrOverloaded) {
				t.Errorf("shed with wrong type: %v", err)
			}
			if hint, ok := resilience.RetryAfterHint(err); !ok || hint != 7*time.Second {
				t.Errorf("shed without the configured hint: %v %v", hint, ok)
			}
			shed.Add(1)
		}()
	}
	// Wait until the gate is saturated: everyone has either been shed or
	// holds a slot/queue position.
	deadline := time.Now().Add(2 * time.Second)
	for admitted.Load()+shed.Load() < 12 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := admitted.Load(); got != 4 {
		t.Fatalf("admitted %d, want exactly slots+queue = 4", got)
	}
	if got := shed.Load(); got != 12 {
		t.Fatalf("shed %d, want 12", got)
	}
}

// A queued waiter whose context fires must leave with a typed cancellation
// and give its queue position back.
func TestAdmissionQueuedCancellation(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1})
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- a.acquire(ctx) }()
	// Let the waiter join the queue, then abandon it.
	for {
		if _, queued := a.depth(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("queued cancel: want ErrCancelled, got %v", err)
	}
	// The abandoned queue slot must be reusable.
	if _, queued := a.depth(); queued != 0 {
		t.Fatalf("queue slot leaked after cancellation")
	}
	a.release()
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("slot not reusable after release: %v", err)
	}
	a.release()
}
