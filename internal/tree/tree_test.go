package tree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDepthFor(t *testing.T) {
	cases := []struct{ n, m, want int }{
		{1, 1, 0},
		{8, 8, 0},
		{9, 8, 1},
		{16, 8, 1},
		{17, 8, 2},
		{1000, 64, 4},
		{65536, 512, 7},
	}
	for _, c := range cases {
		if got := DepthFor(c.n, c.m); got != c.want {
			t.Errorf("DepthFor(%d,%d) = %d, want %d", c.n, c.m, got, c.want)
		}
	}
}

func TestBuildPermutationIsBijection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		m := 1 + rng.Intn(64)
		tr := Build(n, m, nil)
		seen := make([]bool, n)
		for _, v := range tr.Perm {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		for orig, pos := range tr.IPerm {
			if tr.Perm[pos] != orig {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildBalancedLeafSizes(t *testing.T) {
	tr := Build(1000, 64, nil)
	minSz, maxSz := 1<<30, 0
	for _, id := range tr.Leaves() {
		sz := tr.Nodes[id].Size()
		if sz < minSz {
			minSz = sz
		}
		if sz > maxSz {
			maxSz = sz
		}
	}
	if maxSz > 64 {
		t.Fatalf("leaf larger than leafSize: %d", maxSz)
	}
	if maxSz-minSz > 1 {
		t.Fatalf("unbalanced leaves: min %d max %d", minSz, maxSz)
	}
}

func TestNodeRangesNest(t *testing.T) {
	tr := Build(333, 16, nil)
	for id := range tr.Nodes {
		nd := &tr.Nodes[id]
		if tr.IsLeaf(id) {
			continue
		}
		l, r := &tr.Nodes[tr.Left(id)], &tr.Nodes[tr.Right(id)]
		if l.Lo != nd.Lo || r.Hi != nd.Hi || l.Hi != r.Lo {
			t.Fatalf("node %d: children ranges [%d,%d)+[%d,%d) don't tile [%d,%d)",
				id, l.Lo, l.Hi, r.Lo, r.Hi, nd.Lo, nd.Hi)
		}
	}
}

func TestParentSiblingRelations(t *testing.T) {
	tr := Build(100, 10, nil)
	if tr.Parent(0) != -1 || tr.Sibling(0) != -1 {
		t.Fatal("root should have no parent/sibling")
	}
	for id := 1; id < len(tr.Nodes); id++ {
		p := tr.Parent(id)
		if tr.Left(p) != id && tr.Right(p) != id {
			t.Fatalf("parent of %d is %d but children are %d,%d", id, p, tr.Left(p), tr.Right(p))
		}
		sib := tr.Sibling(id)
		if tr.Parent(sib) != p || sib == id {
			t.Fatalf("sibling relation broken at %d", id)
		}
	}
}

func TestTraversalOrders(t *testing.T) {
	tr := Build(64, 8, nil)
	var post, pre []int
	tr.PostOrder(func(n *Node) { post = append(post, n.ID) })
	tr.PreOrder(func(n *Node) { pre = append(pre, n.ID) })
	if len(post) != len(tr.Nodes) || len(pre) != len(tr.Nodes) {
		t.Fatalf("traversal lengths: post %d pre %d nodes %d", len(post), len(pre), len(tr.Nodes))
	}
	seenPost := map[int]bool{}
	for _, id := range post {
		if !tr.IsLeaf(id) {
			if !seenPost[tr.Left(id)] || !seenPost[tr.Right(id)] {
				t.Fatalf("postorder visited %d before its children", id)
			}
		}
		seenPost[id] = true
	}
	seenPre := map[int]bool{}
	for _, id := range pre {
		if id != 0 && !seenPre[tr.Parent(id)] {
			t.Fatalf("preorder visited %d before its parent", id)
		}
		seenPre[id] = true
	}
}

func TestLevelNodes(t *testing.T) {
	tr := Build(128, 16, nil)
	lv := tr.LevelNodes()
	if len(lv) != tr.Depth+1 {
		t.Fatalf("levels = %d, want %d", len(lv), tr.Depth+1)
	}
	total := 0
	for l, ids := range lv {
		if len(ids) != 1<<l {
			t.Fatalf("level %d has %d nodes", l, len(ids))
		}
		for _, id := range ids {
			if tr.Nodes[id].Level != l {
				t.Fatalf("node %d in wrong level bucket", id)
			}
		}
		total += len(ids)
	}
	if total != len(tr.Nodes) {
		t.Fatal("levels don't cover all nodes")
	}
}

func TestLeafOfIndexConsistent(t *testing.T) {
	tr := Build(200, 16, nil)
	for i := 0; i < 200; i++ {
		leaf := tr.LeafOfIndex(i)
		found := false
		for _, idx := range tr.Indices(leaf) {
			if idx == i {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("index %d not inside its leaf %d", i, leaf)
		}
	}
}

func TestLexicographicOrderWithEvenSplit(t *testing.T) {
	tr := Build(100, 8, EvenSplit{})
	if !sort.IntsAreSorted(tr.Perm) {
		t.Fatal("EvenSplit should preserve identity order")
	}
}

type reverseSplit struct{}

func (reverseSplit) Split(idx []int, _ int) int {
	sort.Sort(sort.Reverse(sort.IntSlice(idx)))
	return (len(idx) + 1) / 2
}

func TestCustomSplitterIsRespected(t *testing.T) {
	tr := Build(16, 2, reverseSplit{})
	// Left-most leaf should own the largest indices.
	first := tr.Indices(tr.Leaves()[0])
	if first[0] != 15 {
		t.Fatalf("custom splitter ignored: leftmost leaf = %v", first)
	}
}

type badSplit struct{}

func (badSplit) Split(idx []int, _ int) int { return 0 }

func TestUnbalancedSplitterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbalanced splitter")
		}
	}()
	Build(16, 2, badSplit{})
}

func TestMortonBasics(t *testing.T) {
	tr := Build(64, 8, nil)
	root := tr.Nodes[0].Morton
	if root.Level() != 0 || root.Path() != 0 {
		t.Fatal("root morton wrong")
	}
	for id := range tr.Nodes {
		m := tr.Nodes[id].Morton
		if m.NodeID() != id {
			t.Fatalf("morton round trip: node %d -> %d", id, m.NodeID())
		}
		if m.Level() != tr.Nodes[id].Level {
			t.Fatalf("morton level mismatch at %d", id)
		}
	}
}

func TestMortonAncestor(t *testing.T) {
	tr := Build(256, 8, nil)
	for id := range tr.Nodes {
		m := tr.Nodes[id].Morton
		// Every ancestor along the parent chain must report IsAncestorOf.
		for p := id; p != -1; p = tr.Parent(p) {
			if !tr.Nodes[p].Morton.IsAncestorOf(m) {
				t.Fatalf("node %d should be ancestor of %d", p, id)
			}
		}
		// The sibling must not be an ancestor.
		if sib := tr.Sibling(id); sib >= 0 {
			if tr.Nodes[sib].Morton.IsAncestorOf(m) {
				t.Fatalf("sibling %d claims ancestry of %d", sib, id)
			}
		}
		// AncestorAt agrees with the parent chain.
		for l := tr.Nodes[id].Level; l >= 0; l-- {
			anc := m.AncestorAt(l)
			p := id
			for tr.Nodes[p].Level > l {
				p = tr.Parent(p)
			}
			if anc.NodeID() != p {
				t.Fatalf("AncestorAt(%d) of node %d = %d, want %d", l, id, anc.NodeID(), p)
			}
		}
	}
}

func TestMortonOfIndexMatchesLeaf(t *testing.T) {
	tr := Build(100, 8, nil)
	for i := 0; i < 100; i++ {
		if tr.MortonOfIndex(i) != tr.Nodes[tr.LeafOfIndex(i)].Morton {
			t.Fatalf("MortonOfIndex mismatch at %d", i)
		}
	}
}

func TestMortonStringer(t *testing.T) {
	tr := Build(16, 2, nil)
	if s := tr.Nodes[0].Morton.String(); s != "root" {
		t.Fatalf("root string = %q", s)
	}
	// Node 2 = right child of root: path 1, level 1.
	if s := tr.Nodes[2].Morton.String(); s != "0b1@1" {
		t.Fatalf("node 2 string = %q", s)
	}
}

func TestFromPermutationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	orig := Build(333, 16, reverseSplit{})
	_ = rng
	rebuilt := FromPermutation(orig.Perm, 16)
	if rebuilt.Depth != orig.Depth {
		t.Fatalf("depth %d vs %d", rebuilt.Depth, orig.Depth)
	}
	for pos := range orig.Perm {
		if rebuilt.Perm[pos] != orig.Perm[pos] {
			t.Fatalf("perm mismatch at %d", pos)
		}
	}
	for i := 0; i < 333; i++ {
		if rebuilt.LeafOfIndex(i) != orig.LeafOfIndex(i) {
			t.Fatalf("leaf assignment differs for index %d", i)
		}
	}
	for id := range orig.Nodes {
		if rebuilt.Nodes[id].Lo != orig.Nodes[id].Lo || rebuilt.Nodes[id].Hi != orig.Nodes[id].Hi {
			t.Fatalf("node %d range differs", id)
		}
	}
}
