// Package analyzertest runs a framework.Analyzer over golden packages under
// a testdata directory and checks its diagnostics against `// want "regexp"`
// annotations, in the style of x/tools' analysistest. Golden packages live
// in testdata/src/<pkg>/*.go; imports between golden packages resolve from
// the same tree (so a stub `workspace` package can mimic the real API), and
// standard-library imports resolve through export data from the local
// toolchain. When a file has an associated <file>.golden, the suggested
// fixes reported for that file are applied and the result must match.
package analyzertest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"gofmm/internal/analysis/framework"
	"gofmm/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// stdExports caches stdlib export data lookups across all tests in the
// process ("go list -export" per distinct import path).
var stdExports = struct {
	sync.Mutex
	m map[string]string
}{m: map[string]string{}}

func stdExportFile(path string) (string, bool) {
	stdExports.Lock()
	defer stdExports.Unlock()
	if f, ok := stdExports.m[path]; ok {
		return f, f != ""
	}
	m, err := load.StdExports([]string{path})
	if err != nil {
		stdExports.m[path] = ""
		return "", false
	}
	for p, f := range m {
		stdExports.m[p] = f
	}
	f := stdExports.m[path]
	return f, f != ""
}

// testImporter resolves golden-tree packages from source and everything
// else from toolchain export data.
type testImporter struct {
	srcRoot string
	fset    *token.FileSet
	cache   map[string]*load.Package
	std     types.Importer
	loading map[string]bool
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ti.cache[path]; ok {
		return pkg.Types, nil
	}
	dir := filepath.Join(ti.srcRoot, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := ti.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ti.std.Import(path)
}

func (ti *testImporter) load(path string) (*load.Package, error) {
	if pkg, ok := ti.cache[path]; ok {
		return pkg, nil
	}
	if ti.loading[path] {
		return nil, fmt.Errorf("import cycle through %q in golden tree", path)
	}
	ti.loading[path] = true
	defer delete(ti.loading, path)
	dir := filepath.Join(ti.srcRoot, path)
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		return nil, fmt.Errorf("no Go files in golden package %q", path)
	}
	sort.Strings(matches)
	pkg, err := load.Check(ti.fset, ti, path, matches, "")
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	ti.cache[path] = pkg
	return pkg, nil
}

// Run loads each golden package and checks analyzer's diagnostics against
// its want annotations (and .golden files, when present).
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ti := &testImporter{
		srcRoot: filepath.Join(testdata, "src"),
		fset:    fset,
		cache:   map[string]*load.Package{},
		std:     load.NewImporter(fset, stdExportFile),
		loading: map[string]bool{},
	}
	for _, path := range pkgs {
		pkg, err := ti.load(path)
		if err != nil {
			t.Errorf("loading golden package %q: %v", path, err)
			continue
		}
		var diags []framework.Diagnostic
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      fset,
			Syntax:    pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer %s: %v", path, a.Name, err)
			continue
		}
		checkDiagnostics(t, fset, pkg, diags)
		checkGoldenFixes(t, fset, pkg, diags)
	}
}

// want is one expected-diagnostic annotation.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// parseWants extracts `// want "re" "re"...` annotations from every file.
func parseWants(t *testing.T, fset *token.FileSet, pkg *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, raw := range splitQuoted(text) {
					pat, err := strconv.Unquote(raw)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", posn, raw, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, pat, err)
						continue
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// splitQuoted splits a want payload into its Go-quoted segments.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" || (s[0] != '"' && s[0] != '`') {
			return out
		}
		q := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == q && (q == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, pkg *load.Package, diags []framework.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, pkg)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		var found bool
		for _, w := range wants {
			if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %s", w.file, w.line, w.raw)
		}
	}
}

// checkGoldenFixes applies every suggested fix to each file that has a
// sibling <name>.golden and compares the result.
func checkGoldenFixes(t *testing.T, fset *token.FileSet, pkg *load.Package, diags []framework.Diagnostic) {
	t.Helper()
	byFile := map[string][]framework.TextEdit{}
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.TextEdits {
				name := fset.Position(e.Pos).Filename
				byFile[name] = append(byFile[name], e)
			}
		}
	}
	for _, name := range pkg.GoFiles {
		golden := name + ".golden"
		wantSrc, err := os.ReadFile(golden)
		if err != nil {
			continue // no golden: fixes (if any) are not checked for this file
		}
		src, err := os.ReadFile(name)
		if err != nil {
			t.Errorf("reading %s: %v", name, err)
			continue
		}
		got, err := applyEdits(fset, src, byFile[name])
		if err != nil {
			t.Errorf("%s: applying fixes: %v", name, err)
			continue
		}
		if string(got) != string(wantSrc) {
			t.Errorf("%s: fixed output does not match %s:\n--- got ---\n%s\n--- want ---\n%s",
				name, filepath.Base(golden), got, wantSrc)
		}
	}
}

// applyEdits applies non-overlapping edits (sorted descending so offsets
// stay valid).
func applyEdits(fset *token.FileSet, src []byte, edits []framework.TextEdit) ([]byte, error) {
	sorted := make([]framework.TextEdit, len(edits))
	copy(sorted, edits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pos > sorted[j].Pos })
	out := src
	last := len(src) + 1
	for _, e := range sorted {
		start := fset.Position(e.Pos).Offset
		end := start
		if e.End.IsValid() {
			end = fset.Position(e.End).Offset
		}
		if start < 0 || end < start || end > len(src) || end > last {
			return nil, fmt.Errorf("edit [%d,%d) out of range or overlapping", start, end)
		}
		last = start
		out = append(out[:start], append([]byte(string(e.NewText)), out[end:]...)...)
	}
	return out, nil
}
