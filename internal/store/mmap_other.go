//go:build !unix

package store

// OpenMmap is unavailable on this platform; it returns ErrMmapUnsupported
// and callers fall back to the copying Open path.
func OpenMmap(path string) (*File, error) {
	return nil, ErrMmapUnsupported
}

// unmap is unreachable on this platform (no File is ever mapped), kept so
// Close compiles everywhere.
func (f *File) unmap() error {
	f.data = nil
	f.sections = nil
	return nil
}
