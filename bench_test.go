package gofmm

// Benchmark harness: one testing.B benchmark per paper table/figure (at
// reduced sizes — run `go run ./cmd/repro <id>` for the full paper-style
// row dumps) plus ablation benchmarks for the design choices called out in
// DESIGN.md (budget, distance metric, scheduler, caching, importance
// sampling) and micro-benchmarks of the linalg substrate.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"gofmm/internal/core"
	"gofmm/internal/experiments"
	"gofmm/internal/linalg"
	"gofmm/internal/telemetry"
)

// emitBenchRecord writes a machine-readable BENCH_<name>.json run record
// next to the usual testing.B output, so benchmark results can be archived
// and diffed without scraping text. The directory comes from GOFMM_BENCH_DIR
// (default: current directory).
func emitBenchRecord(b *testing.B, name string, rows []experiments.Result, metrics map[string]float64) {
	b.Helper()
	dir := os.Getenv("GOFMM_BENCH_DIR")
	if dir == "" {
		dir = "."
	}
	rr := telemetry.NewRunRecord(name)
	rr.Params["iterations"] = b.N
	rr.Metrics["ns_per_op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	for k, v := range metrics {
		rr.Metrics[k] = v
	}
	for _, res := range rows {
		rr.Rows = append(rr.Rows, res.Row())
	}
	if _, err := rr.WriteBenchFile(dir); err != nil {
		b.Fatalf("writing bench record: %v", err)
	}
}

// --- Figure/Table benchmarks -------------------------------------------

func BenchmarkFig1DenseVsGOFMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig1(io.Discard, []int{512, 1024}, []int{64}, 1)
	}
}

func BenchmarkFig4Scheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(io.Discard, []int{1, 4}, 1024, 1)
	}
}

func BenchmarkFig5AllMatrices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(io.Discard, 400, 1)
	}
}

func BenchmarkFig6HSSvsFMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(io.Discard, 800, 1)
	}
}

func BenchmarkFig7Permutations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(io.Discard, 400, 1)
	}
}

func BenchmarkTable3Codes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(io.Discard, 400, 1)
	}
}

func BenchmarkTable4ASKIT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4(io.Discard, []int{512}, 1)
	}
}

func BenchmarkTable5Architectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table5(io.Discard, 512, 1)
	}
}

// --- Compression / evaluation scaling ----------------------------------

func benchCompress(b *testing.B, n int, cfg core.Config) {
	p := experiments.GetProblem("K05", n, 1)
	b.ResetTimer()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		last = experiments.Run(p, cfg, 16, 1)
	}
	b.StopTimer()
	emitBenchRecord(b, b.Name(), []experiments.Result{last}, map[string]float64{
		"eps2": last.Eps, "compress_seconds": last.CompressS, "eval_seconds": last.EvalS,
	})
}

func BenchmarkCompressN1024(b *testing.B) {
	benchCompress(b, 1024, core.Config{
		LeafSize: 128, MaxRank: 128, Tol: 1e-5, Budget: 0.03,
		Distance: core.Angle, Exec: core.Dynamic, NumWorkers: 2,
		CacheBlocks: true, Seed: 1,
	})
}

func BenchmarkCompressN4096(b *testing.B) {
	benchCompress(b, 4096, core.Config{
		LeafSize: 128, MaxRank: 128, Tol: 1e-5, Budget: 0.03,
		Distance: core.Angle, Exec: core.Dynamic, NumWorkers: 2,
		CacheBlocks: true, Seed: 1,
	})
}

func BenchmarkMatvecOnly(b *testing.B) {
	p := experiments.GetProblem("K05", 2048, 1)
	h, err := core.Compress(p.K, core.Config{
		LeafSize: 128, MaxRank: 128, Tol: 1e-5, Budget: 0.03,
		Distance: core.Angle, Exec: core.Dynamic, NumWorkers: 2,
		CacheBlocks: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	W := linalg.GaussianMatrix(rng, p.K.Dim(), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Matvec(W)
	}
	b.StopTimer()
	emitBenchRecord(b, b.Name(), nil, map[string]float64{
		"eval_seconds": h.Stats.EvalTime, "eval_gflops": h.Stats.EvalFlops / h.Stats.EvalTime / 1e9,
	})
}

// BenchmarkMatmatWidths sweeps the batched-evaluation block width on one
// compressed operator: matvecs/sec should climb with r as the GEMM-shaped
// passes amortize the traversal (repro pr4 gates the r=16 ratio in CI).
func BenchmarkMatmatWidths(b *testing.B) {
	p := experiments.GetProblem("K05", 2048, 1)
	h, err := core.Compress(p.K, core.Config{
		LeafSize: 128, MaxRank: 128, Tol: 1e-5, Budget: 0.03,
		Distance: core.Angle, Exec: core.Sequential,
		CacheBlocks: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, r := range []int{1, 4, 16, 64} {
		W := linalg.GaussianMatrix(rng, p.K.Dim(), r)
		b.Run(fmt.Sprintf("r%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h.Matmat(W)
			}
			b.StopTimer()
			rate := float64(r) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "matvecs/s")
			emitBenchRecord(b, b.Name(), nil, map[string]float64{"matvecs_per_sec": rate})
		})
	}
}

// --- Ablations ----------------------------------------------------------

func ablate(b *testing.B, cfg core.Config) {
	p := experiments.GetProblem("COVTYPE", 1024, 1)
	b.ResetTimer()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		last = experiments.Run(p, cfg, 16, 1)
		b.ReportMetric(last.Eps, "eps2")
	}
	b.StopTimer()
	emitBenchRecord(b, b.Name(), []experiments.Result{last}, map[string]float64{"eps2": last.Eps})
}

func baseCfg() core.Config {
	return core.Config{
		LeafSize: 128, MaxRank: 128, Tol: 1e-5, Kappa: 32, Budget: 0.03,
		Distance: core.Angle, Exec: core.Dynamic, NumWorkers: 2,
		CacheBlocks: true, Seed: 1,
	}
}

func BenchmarkAblateBudget0(b *testing.B)  { c := baseCfg(); c.Budget = 0; ablate(b, c) }
func BenchmarkAblateBudget3(b *testing.B)  { ablate(b, baseCfg()) }
func BenchmarkAblateBudget12(b *testing.B) { c := baseCfg(); c.Budget = 0.12; ablate(b, c) }

func BenchmarkAblateAngle(b *testing.B)  { ablate(b, baseCfg()) }
func BenchmarkAblateKernel(b *testing.B) { c := baseCfg(); c.Distance = core.Kernel; ablate(b, c) }
func BenchmarkAblateLexico(b *testing.B) {
	c := baseCfg()
	c.Distance = core.Lexicographic
	c.Budget = 0
	ablate(b, c)
}

func BenchmarkAblateDynamic(b *testing.B) { ablate(b, baseCfg()) }
func BenchmarkAblateLevel(b *testing.B)   { c := baseCfg(); c.Exec = core.LevelByLevel; ablate(b, c) }
func BenchmarkAblateTaskDep(b *testing.B) { c := baseCfg(); c.Exec = core.TaskDepend; ablate(b, c) }

func BenchmarkAblateCacheOn(b *testing.B)  { ablate(b, baseCfg()) }
func BenchmarkAblateCacheOff(b *testing.B) { c := baseCfg(); c.CacheBlocks = false; ablate(b, c) }

func BenchmarkAblateSample2x(b *testing.B) {
	c := baseCfg()
	c.SampleRows = 2 * c.MaxRank
	ablate(b, c)
}

// --- linalg micro-benchmarks --------------------------------------------

func BenchmarkGemm512(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	A := linalg.GaussianMatrix(rng, 512, 512)
	B := linalg.GaussianMatrix(rng, 512, 512)
	C := linalg.NewMatrix(512, 512)
	b.SetBytes(3 * 512 * 512 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.Gemm(false, false, 1, A, B, 0, C)
	}
	b.ReportMetric(2*512*512*512/1e9/b.Elapsed().Seconds()*float64(b.N), "GFLOPS")
}

func BenchmarkQRCP256(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	A := linalg.GaussianMatrix(rng, 512, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.QRColumnPivot(A, 0, 0)
	}
}

func BenchmarkInterpDecomp(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	U := linalg.GaussianMatrix(rng, 512, 32)
	V := linalg.GaussianMatrix(rng, 32, 256)
	A := linalg.MatMul(false, false, U, V)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.InterpDecomp(A, 1e-10, 64)
	}
}

func BenchmarkBandedCholesky(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nx := 32
		n := nx * nx
		bd := linalg.NewBandedSPD(n, nx)
		for j := 0; j < n; j++ {
			bd.Set(j, j, 4.1)
			if (j+1)%nx != 0 {
				bd.Set(j+1, j, -1)
			}
			if j+nx < n {
				bd.Set(j+nx, j, -1)
			}
		}
		b.StartTimer()
		if err := bd.CholeskyInPlace(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateCacheSingle(b *testing.B) {
	c := baseCfg()
	c.CacheSingle = true
	ablate(b, c)
}

// matvecBenchSetup is the shared fixture of the fresh-vs-pooled matvec
// benchmarks: identical operator, identical weights (fixed RNG seed), so the
// timings differ only in buffer management. When pooled is set the operator
// gets a workspace pool and the evaluation runs sequentially — the
// configuration the allocs/op acceptance target is stated for.
func matvecBenchSetup(b *testing.B, pooled bool) (*core.Hierarchical, *linalg.Matrix) {
	b.Helper()
	p := experiments.GetProblem("K05", 1024, 1)
	cfg := baseCfg()
	if pooled {
		cfg.Exec = core.Sequential
		cfg.Workspace = NewWorkspacePool()
	}
	h, err := core.Compress(p.K, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	return h, linalg.GaussianMatrix(rng, p.K.Dim(), 4)
}

func BenchmarkEvaluatorReuse(b *testing.B) {
	h, W := matvecBenchSetup(b, false)
	ev := h.NewEvaluator(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Matvec(W)
	}
}

func BenchmarkMatvecFreshBuffers(b *testing.B) {
	h, W := matvecBenchSetup(b, false)
	h.Cfg.Exec = core.Sequential
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Matvec(W)
	}
}

// BenchmarkMatvecPooled is the steady-state zero-allocation path: a pooled
// evaluator writing into a caller-owned output. The allocs/op report is the
// PR 3 acceptance metric (target: ≤10 in steady state).
func BenchmarkMatvecPooled(b *testing.B) {
	h, W := matvecBenchSetup(b, true)
	ev := h.NewEvaluator(4)
	defer ev.Close()
	U := linalg.NewMatrix(W.Rows, 4)
	ev.MatvecInto(W, U)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.MatvecInto(W, U)
	}
}

func BenchmarkGemmMixed(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	A := linalg.ToMatrix32(linalg.GaussianMatrix(rng, 256, 256))
	B := linalg.GaussianMatrix(rng, 256, 64)
	C := linalg.NewMatrix(256, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.GemmMixed(1, A, B, 0, C)
	}
}

func BenchmarkDistributedMatvec8Ranks(b *testing.B) {
	p := experiments.GetProblem("K05", 1024, 1)
	h, err := core.Compress(p.K, baseCfg())
	if err != nil {
		b.Fatal(err)
	}
	m, err := Distribute(h, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	W := linalg.GaussianMatrix(rng, p.K.Dim(), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Matvec(W); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Stats.Bytes), "commBytes")
}
