package spdmat

import (
	"fmt"
	"math"
	"math/rand"

	"gofmm/internal/linalg"
)

// Graph-Laplacian inverse problems G01–G05. The paper uses five UF
// collection graphs (powersim, poli_large, rgg_n_2_16, denormal,
// conf6_0-8x8) that are not available offline; each generator below builds a
// synthetic graph of the same structural family, forms the Laplacian
// L = D − A, and returns K = (L + σI)⁻¹. These are the "no coordinates
// exist" problems that motivate geometry-oblivious compression.

// graph is a simple undirected weighted edge list builder.
type graph struct {
	n   int
	adj []map[int]float64
}

func newGraph(n int) *graph {
	g := &graph{n: n, adj: make([]map[int]float64, n)}
	for i := range g.adj {
		g.adj[i] = map[int]float64{}
	}
	return g
}

func (g *graph) addEdge(u, v int, w float64) {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
}

// laplacianInverse returns (L + σI)⁻¹ as a dense SPD matrix.
func (g *graph) laplacianInverse(sigma float64) (*linalg.Matrix, error) {
	L := linalg.NewMatrix(g.n, g.n)
	for u := 0; u < g.n; u++ {
		var deg float64
		for v, w := range g.adj[u] {
			L.Set(u, v, -w)
			deg += w
		}
		L.Set(u, u, deg+sigma)
	}
	return linalg.InvertSPD(L)
}

// G01 resembles powersim: a power-grid-like network — a ring backbone with
// sparse long-range ties and local buses.
func G01(n int, seed int64) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	g := newGraph(n)
	for i := 0; i < n; i++ {
		g.addEdge(i, (i+1)%n, 1)
		if rng.Float64() < 0.3 {
			g.addEdge(i, (i+2)%n, 1)
		}
		if rng.Float64() < 0.05 {
			g.addEdge(i, rng.Intn(n), 1)
		}
	}
	inv, err := g.laplacianInverse(0.1)
	if err != nil {
		return nil, fmt.Errorf("G01: %w", err)
	}
	return &Problem{Name: "G01", Desc: "power-grid-like graph Laplacian inverse", K: &Dense{inv}}, nil
}

// G02 resembles poli_large: a power-law (preferential attachment) graph.
func G02(n int, seed int64) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	g := newGraph(n)
	deg := make([]int, n)
	total := 0
	attach := func(v int) int {
		if total == 0 {
			return rng.Intn(v)
		}
		// Preferential attachment: pick an endpoint weighted by degree.
		t := rng.Intn(total)
		for u := 0; u < v; u++ {
			t -= deg[u]
			if t < 0 {
				return u
			}
		}
		return rng.Intn(v)
	}
	for v := 1; v < n; v++ {
		m := 1 + rng.Intn(2)
		for e := 0; e < m; e++ {
			u := attach(v)
			g.addEdge(u, v, 1)
			deg[u]++
			deg[v]++
			total += 2
		}
	}
	inv, err := g.laplacianInverse(0.1)
	if err != nil {
		return nil, fmt.Errorf("G02: %w", err)
	}
	return &Problem{Name: "G02", Desc: "power-law (preferential attachment) graph Laplacian inverse", K: &Dense{inv}}, nil
}

// G03 resembles rgg_n_2_16: a 2-D random geometric graph. The coordinates
// used to *build* the graph are deliberately discarded — the paper's point
// is that GOFMM compresses it without them.
func G03(n int, seed int64) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	// Connect points within the percolation-scale radius via a cell grid.
	r := 1.5 * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
	cells := int(1 / r)
	if cells < 1 {
		cells = 1
	}
	grid := map[[2]int][]int{}
	for i := range xs {
		c := [2]int{int(xs[i] * float64(cells)), int(ys[i] * float64(cells))}
		grid[c] = append(grid[c], i)
	}
	g := newGraph(n)
	for i := range xs {
		ci, cj := int(xs[i]*float64(cells)), int(ys[i]*float64(cells))
		for di := -1; di <= 1; di++ {
			for dj := -1; dj <= 1; dj++ {
				for _, j := range grid[[2]int{ci + di, cj + dj}] {
					if j <= i {
						continue
					}
					dx, dy := xs[i]-xs[j], ys[i]-ys[j]
					if dx*dx+dy*dy < r*r {
						g.addEdge(i, j, 1)
					}
				}
			}
		}
	}
	inv, err := g.laplacianInverse(0.1)
	if err != nil {
		return nil, fmt.Errorf("G03: %w", err)
	}
	return &Problem{Name: "G03", Desc: "2-D random geometric graph Laplacian inverse (coordinates discarded)", K: &Dense{inv}}, nil
}

// G04 resembles denormal: a mesh-like banded structure with random weights.
func G04(n int, seed int64) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	nx := gridSide(n, 2)
	n = nx * nx
	g := newGraph(n)
	idx := func(i, j int) int { return j*nx + i }
	for j := 0; j < nx; j++ {
		for i := 0; i < nx; i++ {
			w := 0.5 + rng.Float64()
			if i+1 < nx {
				g.addEdge(idx(i, j), idx(i+1, j), w)
			}
			if j+1 < nx {
				g.addEdge(idx(i, j), idx(i, j+1), 0.5+rng.Float64())
			}
			if i+1 < nx && j+1 < nx && rng.Float64() < 0.3 {
				g.addEdge(idx(i, j), idx(i+1, j+1), 0.25)
			}
		}
	}
	inv, err := g.laplacianInverse(0.1)
	if err != nil {
		return nil, fmt.Errorf("G04: %w", err)
	}
	return &Problem{Name: "G04", Desc: "mesh-like weighted graph Laplacian inverse", K: &Dense{inv}}, nil
}

// G05 resembles conf6_0-8x8 (QCD): a 4-D periodic lattice with random
// positive weights.
func G05(n int, seed int64) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	side := gridSide(n, 4)
	n = pow(side, 4)
	g := newGraph(n)
	idx := func(c [4]int) int {
		v := 0
		for _, x := range c {
			v = v*side + x
		}
		return v
	}
	var c [4]int
	var rec func(d int)
	rec = func(d int) {
		if d == 4 {
			for dim := 0; dim < 4; dim++ {
				nb := c
				nb[dim] = (nb[dim] + 1) % side
				g.addEdge(idx(c), idx(nb), 0.5+rng.Float64())
			}
			return
		}
		for x := 0; x < side; x++ {
			c[d] = x
			rec(d + 1)
		}
	}
	rec(0)
	inv, err := g.laplacianInverse(0.2)
	if err != nil {
		return nil, fmt.Errorf("G05: %w", err)
	}
	return &Problem{Name: "G05", Desc: "4-D periodic lattice (QCD-like) graph Laplacian inverse", K: &Dense{inv}}, nil
}
