// Package live is the embeddable HTTP introspection server for a running
// gofmm process: Prometheus metrics, health/readiness probes, pprof, a
// live NDJSON span feed, and on-demand flight-recorder dumps. Both CLIs
// mount it behind -debug-addr, and the planned gofmmd serving daemon
// (ROADMAP item 1) mounts the same Handler on its admin port.
package live

import (
	"sync"

	"gofmm/internal/telemetry"
)

// spanFeed fans completed spans out to any number of live /debug/spans
// subscribers. Publishing never blocks: each subscriber owns a buffered
// channel and a slow reader drops events (counted per subscriber) rather
// than stalling the instrumented goroutine that ended the span — the same
// contract Recorder.OnSpanEnd demands of its observers.
type spanFeed struct {
	mu     sync.Mutex
	subs   map[int]*feedSub // guarded by mu
	nextID int              // guarded by mu
	closed bool             // guarded by mu
}

type feedSub struct {
	ch      chan telemetry.SpanEvent
	dropped int64
}

func newSpanFeed() *spanFeed {
	return &spanFeed{subs: map[int]*feedSub{}}
}

// publish delivers ev to every subscriber, dropping on full buffers.
// Safe to call after close (no-op): the recorder's observer list cannot be
// unregistered, so the feed outlives the server's HTTP lifecycle.
func (f *spanFeed) publish(ev telemetry.SpanEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	for _, s := range f.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped++
		}
	}
}

// subscribe registers a new subscriber with the given buffer size and
// returns its id and receive channel. On a closed feed the channel is
// returned already closed, so readers terminate immediately.
func (f *spanFeed) subscribe(buf int) (int, <-chan telemetry.SpanEvent) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan telemetry.SpanEvent, buf)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		close(ch)
		return -1, ch
	}
	id := f.nextID
	f.nextID++
	f.subs[id] = &feedSub{ch: ch}
	return id, ch
}

// unsubscribe removes a subscriber; its channel is closed so a reader
// blocked on it wakes up. Unknown ids are ignored.
func (f *spanFeed) unsubscribe(id int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.subs[id]
	if !ok {
		return
	}
	delete(f.subs, id)
	close(s.ch)
}

// close terminates the feed: all subscriber channels close, and future
// publishes and subscribes are no-ops.
func (f *spanFeed) close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for id, s := range f.subs {
		delete(f.subs, id)
		close(s.ch)
	}
}
