// Package store mirrors the real view layer: this file is allowlisted
// (suffix store/view.go), so unsafe may appear but must follow the idiom.
package store

import (
	"errors"
	"unsafe"
)

var errBad = errors.New("bad buffer")

// viewable is the blessed checker: alignment test on a slice parameter.
func viewable(b []byte, elemSize uintptr) error {
	if uintptr(len(b))%elemSize != 0 {
		return errBad
	}
	if len(b) > 0 && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%elemSize != 0 {
		return errBad
	}
	return nil
}

// Float64s is the correct idiom: checker call dominates the cast.
func Float64s(b []byte) ([]float64, error) {
	if err := viewable(b, 8); err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8), nil
}

// inlineCheck performs the alignment test without a helper; also fine.
func inlineCheck(b []byte) []uint32 {
	if uintptr(unsafe.Pointer(unsafe.SliceData(b)))%4 != 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}

// uncheckedCast never tests alignment.
func uncheckedCast(b []byte) []float64 {
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8) // want `reinterpreting b without an alignment check on every path`
}

// checkOnOneBranch only validates b on one path to the cast.
func checkOnOneBranch(b []byte, trust bool) []float64 {
	if !trust {
		if err := viewable(b, 8); err != nil {
			return nil
		}
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8) // want `reinterpreting b without an alignment check on every path`
}

// byteView needs no alignment check: byte has none.
func byteView(p unsafe.Pointer, n int) []byte {
	return unsafe.Slice((*byte)(p), n) // ok, though not the SliceData idiom
}

var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1 // ok: *byte casts are exempt
}()

// roundTrip smuggles a pointer through an integer.
func roundTrip(b []byte) unsafe.Pointer {
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	return unsafe.Pointer(addr) // want `uintptr-to-unsafe.Pointer round-trip`
}

// strayCast reinterprets without the unsafe.Slice idiom.
func strayCast(b []byte) *float64 {
	return (*float64)(unsafe.Pointer(unsafe.SliceData(b))) // want `unsafe.Pointer cast to \*float64 outside the view idiom`
}

// notTheIdiom builds the slice from a raw pointer parameter.
func notTheIdiom(p unsafe.Pointer, n int) []float64 {
	return unsafe.Slice((*float64)(p), n) // want `unsafe.Slice operand is not the view idiom`
}
