package linalg

import "math"

// QRCP holds a Householder QR factorization with column pivoting of an m×n
// matrix A: A·P = Q·R. It is the pure-Go analogue of LAPACK's GEQP3, with
// an adaptive early exit that stops as soon as the trailing residual block
// is small — exactly the rank-revealing behaviour GOFMM's skeletonization
// needs (§2.2: "the rank s is chosen adaptively such that σ_{s+1} < τ").
type QRCP struct {
	// QR stores R in the upper triangle of the first Rank rows and the
	// Householder vectors below the diagonal of the first Rank columns.
	QR  *Matrix
	Tau []float64 // Householder scalars, len Rank
	// Piv[k] is the original column index that ended up in position k after
	// pivoting, for all n columns.
	Piv  []int
	Rank int
	// ResidNorm is the largest remaining column norm when the factorization
	// stopped — an estimate of σ_{Rank+1}.
	ResidNorm float64
	// Sigma1 estimates σ₁ (the first pivot column norm).
	Sigma1 float64
}

// QRColumnPivot factors A (which is not modified) with column pivoting.
// The factorization stops at rank s when either s == maxRank (maxRank ≤ 0
// means min(m,n)) or the largest remaining column norm drops below
// tol·σ₁ (tol ≤ 0 disables the adaptive stop).
func QRColumnPivot(A *Matrix, tol float64, maxRank int) *QRCP {
	m, n := A.Rows, A.Cols
	work := A.Clone()
	kmax := min(m, n)
	if maxRank > 0 && maxRank < kmax {
		kmax = maxRank
	}
	f := &QRCP{QR: work, Piv: make([]int, n), Tau: make([]float64, 0, kmax)}
	for j := range f.Piv {
		f.Piv[j] = j
	}
	// Running (downdated) column norms plus the exact norms for the
	// recompute safeguard (LAPACK's dnrm2 drift test).
	norms := make([]float64, n)
	exact := make([]float64, n)
	for j := 0; j < n; j++ {
		norms[j] = Nrm2(work.Col(j))
		exact[j] = norms[j]
	}
	for k := 0; k < kmax; k++ {
		// Pivot: largest residual column norm among k..n-1.
		p, best := k, norms[k]
		for j := k + 1; j < n; j++ {
			if norms[j] > best {
				best, p = norms[j], j
			}
		}
		if k == 0 {
			f.Sigma1 = best
		}
		f.ResidNorm = best
		if best == 0 || (tol > 0 && best <= tol*f.Sigma1) {
			break
		}
		if p != k {
			ck, cp := work.Col(k), work.Col(p)
			for i := range ck {
				ck[i], cp[i] = cp[i], ck[i]
			}
			norms[k], norms[p] = norms[p], norms[k]
			exact[k], exact[p] = exact[p], exact[k]
			f.Piv[k], f.Piv[p] = f.Piv[p], f.Piv[k]
		}
		// Householder vector for column k, rows k..m-1.
		col := work.Col(k)
		alpha := col[k]
		xnorm := Nrm2(col[k+1:])
		if xnorm == 0 {
			// Column already triangular; tau=0 reflector is the identity.
			f.Tau = append(f.Tau, 0)
			f.Rank = k + 1
			updateNorms(work, norms, exact, k, n, m)
			continue
		}
		beta := -math.Copysign(math.Hypot(alpha, xnorm), alpha)
		tau := (beta - alpha) / beta
		scale := 1 / (alpha - beta)
		Scal(scale, col[k+1:])
		col[k] = beta
		f.Tau = append(f.Tau, tau)
		// Apply (I - tau v vᵀ) to the trailing columns; v = [1; col[k+1:]].
		vtail := col[k+1 : m]
		parallelFor(n-(k+1), 16, func(lo, hi int) {
			for jj := k + 1 + lo; jj < k+1+hi; jj++ {
				cj := work.Col(jj)
				w := cj[k] + Dot(vtail, cj[k+1:m])
				w *= tau
				cj[k] -= w
				Axpy(-w, vtail, cj[k+1:m])
			}
		})
		f.Rank = k + 1
		updateNorms(work, norms, exact, k, n, m)
	}
	if f.Rank == kmax {
		// Residual estimate when we ran to completion.
		if kmax < n {
			best := 0.0
			for j := kmax; j < n; j++ {
				if norms[j] > best {
					best = norms[j]
				}
			}
			f.ResidNorm = best
		} else {
			f.ResidNorm = 0
		}
	}
	return f
}

// updateNorms downdates the running column norms after eliminating row k and
// recomputes them when cancellation makes the downdate unreliable.
func updateNorms(work *Matrix, norms, exact []float64, k, n, m int) {
	for j := k + 1; j < n; j++ {
		if norms[j] == 0 {
			continue
		}
		t := math.Abs(work.At(k, j)) / norms[j]
		t = (1 + t) * (1 - t)
		if t < 0 {
			t = 0
		}
		t2 := norms[j] / exact[j]
		t2 = t * t2 * t2
		if t2 <= 1e-14 {
			// Recompute from scratch: the downdated value has lost accuracy.
			norms[j] = Nrm2(work.Col(j)[k+1 : m])
			exact[j] = norms[j]
		} else {
			norms[j] *= math.Sqrt(t)
		}
	}
}

// R returns a compact copy of the rank×n upper-trapezoidal factor.
func (f *QRCP) R() *Matrix {
	n := f.QR.Cols
	r := NewMatrix(f.Rank, n)
	for j := 0; j < n; j++ {
		src := f.QR.Col(j)
		dst := r.Col(j)
		for i := 0; i <= min(j, f.Rank-1); i++ {
			dst[i] = src[i]
		}
	}
	return r
}

// FormQ forms the thin m×Rank orthonormal factor explicitly (test and
// baseline use; GOFMM itself never materializes Q).
func (f *QRCP) FormQ() *Matrix {
	m := f.QR.Rows
	Q := NewMatrix(m, f.Rank)
	for j := 0; j < f.Rank; j++ {
		Q.Set(j, j, 1)
	}
	// Apply H_{rank-1}···H_0 to the identity columns.
	for k := f.Rank - 1; k >= 0; k-- {
		tau := f.Tau[k]
		if tau == 0 {
			continue
		}
		v := f.QR.Col(k)[k+1 : m]
		for j := 0; j < f.Rank; j++ {
			cj := Q.Col(j)
			w := cj[k] + Dot(v, cj[k+1:m])
			w *= tau
			cj[k] -= w
			Axpy(-w, v, cj[k+1:m])
		}
	}
	return Q
}

// ID is an interpolative decomposition A ≈ A[:, Skel] · Coef where Skel
// lists s column indices of A and Coef is s×n with Coef[:, Skel] = I.
// This is exactly the structure GOFMM stores per tree node: the skeleton
// indices α̃ and the interpolation matrix P_{α̃α} (Eq. 7).
type ID struct {
	Skel []int
	Coef *Matrix
	// ResidNorm estimates σ_{s+1} of A; Sigma1 estimates σ₁.
	ResidNorm, Sigma1 float64
}

// InterpDecomp computes a rank-adaptive interpolative decomposition of A
// using pivoted QR: with A·P = Q·[R11 R12], the skeleton is the first s
// pivot columns and Coef = [I, R11⁻¹R12]·Pᵀ.
func InterpDecomp(A *Matrix, tol float64, maxRank int) *ID {
	f := QRColumnPivot(A, tol, maxRank)
	s, n := f.Rank, A.Cols
	id := &ID{Skel: make([]int, s), ResidNorm: f.ResidNorm, Sigma1: f.Sigma1}
	copy(id.Skel, f.Piv[:s])
	// T = R11⁻¹ R12 (s×(n-s)).
	T := NewMatrix(s, n-s)
	for j := 0; j < n-s; j++ {
		src := f.QR.Col(s + j)
		copy(T.Col(j), src[:s])
	}
	if n > s {
		TrsmLeftUpper(false, f.QR, T)
	}
	// Assemble Coef in original column order.
	coef := NewMatrix(s, n)
	for k := 0; k < s; k++ {
		coef.Set(k, f.Piv[k], 1)
	}
	for j := 0; j < n-s; j++ {
		copy(coef.Col(f.Piv[s+j]), T.Col(j))
	}
	id.Coef = coef
	return id
}
