package core

import (
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/internal/tree"
)

// denseSPD wraps a dense symmetric matrix as an SPD oracle with the Bulk
// fast path.
type denseSPD struct{ M *linalg.Matrix }

func (d denseSPD) Dim() int            { return d.M.Rows }
func (d denseSPD) At(i, j int) float64 { return d.M.At(i, j) }
func (d denseSPD) Submatrix(I, J []int, dst *linalg.Matrix) {
	for c, j := range J {
		col := dst.Col(c)
		src := d.M.Col(j)
		for r, i := range I {
			col[r] = src[i]
		}
	}
}

// gaussKernelMatrix builds a dense Gaussian kernel matrix from 2-D points —
// the canonical compressible SPD test case.
func gaussKernelMatrix(rng *rand.Rand, n int, h float64) (*linalg.Matrix, *linalg.Matrix) {
	X := linalg.GaussianMatrix(rng, 2, n)
	K := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		xj := X.Col(j)
		col := K.Col(j)
		for i := 0; i < n; i++ {
			xi := X.Col(i)
			d2 := 0.0
			for q := range xi {
				t := xi[q] - xj[q]
				d2 += t * t
			}
			col[i] = math.Exp(-d2 / (2 * h * h))
		}
	}
	// A small ridge keeps the matrix numerically SPD.
	for i := 0; i < n; i++ {
		K.Add(i, i, 1e-8)
	}
	return K, X
}

func compressGauss(t *testing.T, n int, cfg Config) (*Hierarchical, *linalg.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	K, X := gaussKernelMatrix(rng, n, 0.8)
	cfg.Points = X
	h, err := Compress(denseSPD{K}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, K
}

// checkCoverage asserts the fundamental tiling invariant: for every leaf β
// and every original column index j, the pair is covered exactly once by
// either a near leaf or a far ancestor block.
func checkCoverage(t *testing.T, h *Hierarchical) {
	t.Helper()
	tr := h.Tree
	n := h.K.Dim()
	for _, beta := range tr.Leaves() {
		cover := make([]int, n)
		for _, alpha := range h.nodes[beta].near {
			for _, j := range tr.Indices(alpha) {
				cover[j]++
			}
		}
		for b := beta; b != -1; b = tr.Parent(b) {
			for _, alpha := range h.nodes[b].far {
				for _, j := range tr.Indices(alpha) {
					cover[j]++
				}
			}
		}
		for j := 0; j < n; j++ {
			if cover[j] != 1 {
				t.Fatalf("leaf %d, column %d covered %d times", beta, j, cover[j])
			}
		}
	}
}

func TestCoverageSymmetricMode(t *testing.T) {
	for _, budget := range []float64{0, 0.05, 0.25, 1.0} {
		h, _ := compressGauss(t, 300, Config{
			LeafSize: 32, MaxRank: 32, Tol: 1e-6, Kappa: 8,
			Budget: budget, Distance: Kernel, Exec: Sequential, Seed: 3,
		})
		checkCoverage(t, h)
	}
}

func TestCoverageLeafwiseMode(t *testing.T) {
	for _, budget := range []float64{0, 0.1, 0.5} {
		h, _ := compressGauss(t, 300, Config{
			LeafSize: 32, MaxRank: 32, Tol: 1e-6, Kappa: 8,
			Budget: budget, Distance: Kernel, Exec: Sequential, Seed: 3,
			NoSymmetrize: true,
		})
		checkCoverage(t, h)
	}
}

func TestFarListsSymmetric(t *testing.T) {
	h, _ := compressGauss(t, 400, Config{
		LeafSize: 32, MaxRank: 32, Tol: 1e-6, Kappa: 8,
		Budget: 0.15, Distance: Angle, Exec: Sequential, Seed: 5,
	})
	inFar := map[[2]int]bool{}
	for id := range h.nodes {
		for _, a := range h.nodes[id].far {
			inFar[[2]int{id, a}] = true
		}
	}
	for p := range inFar {
		if !inFar[[2]int{p[1], p[0]}] {
			t.Fatalf("far pair (%d,%d) lacks its transpose", p[0], p[1])
		}
		// Equal level (the H² structure).
		if h.Tree.Nodes[p[0]].Level != h.Tree.Nodes[p[1]].Level {
			t.Fatalf("far pair (%d,%d) spans levels %d and %d",
				p[0], p[1], h.Tree.Nodes[p[0]].Level, h.Tree.Nodes[p[1]].Level)
		}
	}
}

func TestNearListsSymmetricAndSelfContaining(t *testing.T) {
	h, _ := compressGauss(t, 300, Config{
		LeafSize: 32, Kappa: 8, Budget: 0.2, Distance: Kernel,
		Exec: Sequential, Seed: 7, Tol: 1e-5,
	})
	for _, beta := range h.Tree.Leaves() {
		foundSelf := false
		for _, a := range h.nodes[beta].near {
			if a == beta {
				foundSelf = true
			}
			sym := false
			for _, b := range h.nodes[a].near {
				if b == beta {
					sym = true
					break
				}
			}
			if !sym {
				t.Fatalf("near relation not symmetric: %d ∈ Near(%d)", a, beta)
			}
		}
		if !foundSelf {
			t.Fatalf("leaf %d not near itself", beta)
		}
	}
}

func TestHSSModeNearIsSelfOnly(t *testing.T) {
	h, _ := compressGauss(t, 300, Config{
		LeafSize: 32, Kappa: 8, Budget: 0, Distance: Kernel,
		Exec: Sequential, Seed: 7, Tol: 1e-5,
	})
	for _, beta := range h.Tree.Leaves() {
		near := h.nodes[beta].near
		if len(near) != 1 || near[0] != beta {
			t.Fatalf("budget 0 leaf %d has near list %v", beta, near)
		}
	}
	// HSS far lists are exactly the sibling at every level.
	for id := 1; id < len(h.nodes); id++ {
		far := h.nodes[id].far
		if len(far) != 1 || far[0] != h.Tree.Sibling(id) {
			t.Fatalf("HSS far list of %d = %v, want sibling %d", id, far, h.Tree.Sibling(id))
		}
	}
}

// TestFigure2Example reproduces the worked example of Figure 2: a depth-3
// tree whose only non-trivial neighbor interaction is between leaves β and μ.
func TestFigure2Example(t *testing.T) {
	// 8 leaves of size 1. Build the structure by hand: tree over 8 indices.
	h := &Hierarchical{
		K:   denseSPD{linalg.Eye(8)},
		Cfg: Config{LeafSize: 1, NoSymmetrize: true}.withDefaults(8),
	}
	h.Cfg.LeafSize = 1
	h.Tree = tree.Build(8, 1, nil)
	h.nodes = make([]node, len(h.Tree.Nodes))
	// Leaves are node IDs 7..14; Figure 2 names: l=7, r=8, β=9, μ=13.
	const l, r, beta, mu = 7, 8, 9, 13
	for _, leaf := range h.Tree.Leaves() {
		h.nodes[leaf].near = []int{leaf}
	}
	h.nodes[beta].near = []int{beta, mu}
	h.nodes[mu].near = []int{mu, beta}
	h.buildFarLists() // NoSymmetrize → leafwise FindFar + MergeFar, sorted
	// Check the figure's stated results precisely (lists are sorted by ID).
	assertList := func(id int, want []int) {
		got := append([]int(nil), h.nodes[id].far...)
		if len(got) != len(want) {
			t.Fatalf("Far(%d) = %v, want %v", id, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("Far(%d) = %v, want %v", id, got, want)
			}
		}
	}
	// MergeFar lifts {4,2} (sorted: {2,4}) to node 3 = α, leaving the
	// siblings in the children lists.
	assertList(3, []int{2, 4})
	assertList(l, []int{r})
	assertList(r, []int{l})
	checkCoverage(t, h)
}

func TestBudgetCapsNearListSize(t *testing.T) {
	// Paper Eq. (6): |Near(β)| ≤ budget·(N/m) before symmetrization. With a
	// clustered matrix and a tight budget, the near lists must stay small.
	budget := 0.1
	h, _ := compressGauss(t, 512, Config{
		LeafSize: 32, Kappa: 16, Budget: budget, Distance: Kernel,
		Exec: Sequential, Seed: 11, Tol: 1e-4, NoSymmetrize: true,
	})
	cap := int(budget*float64(h.Tree.NumLeaves())) + 1 // +1 for self
	for _, beta := range h.Tree.Leaves() {
		if len(h.nodes[beta].near) > cap {
			t.Fatalf("leaf %d near list %d exceeds cap %d", beta, len(h.nodes[beta].near), cap)
		}
	}
}

func TestMergeSorted(t *testing.T) {
	got := mergeSorted([]int32{1, 3, 5}, []int32{1, 2, 5, 9})
	want := []int32{1, 2, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("mergeSorted = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeSorted = %v", got)
		}
	}
	if out := mergeSorted(nil, nil); len(out) != 0 {
		t.Fatalf("mergeSorted(nil,nil) = %v", out)
	}
}

func TestLeafRange(t *testing.T) {
	tr := tree.Build(64, 8, nil)
	lo, hi := leafRange(tr, 0)
	if lo != 0 || hi != tr.NumLeaves() {
		t.Fatalf("root leaf range [%d,%d)", lo, hi)
	}
	for k, leaf := range tr.Leaves() {
		lo, hi = leafRange(tr, leaf)
		if lo != k || hi != k+1 {
			t.Fatalf("leaf %d range [%d,%d), want [%d,%d)", leaf, lo, hi, k, k+1)
		}
	}
}
