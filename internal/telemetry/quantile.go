package telemetry

import (
	"math"
	"strings"
)

// Shared helpers for every exporter that summarizes a histogram or embeds a
// metric/span name in a format with a restricted charset: the Prometheus
// exposition (prometheus.go), the text report (report.go), and the Chrome
// trace (chrometrace.go). Keeping them here stops each exporter growing its
// own slightly-different copy.

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the histogram from its
// power-of-two buckets, using log-linear interpolation inside the target
// bucket and clamping to the observed [Min, Max]. It returns Min for q ≤ 0,
// Max for q ≥ 1, and 0 when the histogram is empty. With only bucket data
// the estimate is coarse (buckets double in width) but monotone in q and
// always inside the observed range — good enough for p50/p95/p99 latency
// panels, which is what it exists for.
func (h HistogramStat) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			// Interpolate within bucket i: (lo, hi] = (2^(i-1), 2^i],
			// bucket 0 is (-inf, 1]. Work in log2 space so the estimate
			// respects the exponential bucket widths.
			frac := (rank - cum) / float64(c)
			var v float64
			if i == 0 {
				v = 1 // bucket 0 has no lower edge; clamp below via Min
			} else {
				lo := float64(i - 1)
				v = math.Exp2(lo + frac)
			}
			return clamp(v, h.Min, h.Max)
		}
		cum = next
	}
	return h.Max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SanitizeMetricName rewrites an internal metric name (dotted, e.g.
// "matvec.latency_ms") into the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*: every illegal rune becomes '_', and a leading
// digit gains a '_' prefix. Already-clean names pass through unchanged.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	clean := true
	for i, r := range name {
		if !isMetricRune(r, i == 0) {
			clean = false
			break
		}
	}
	if clean {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		if isMetricRune(r, i == 0) {
			b.WriteRune(r)
		} else if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func isMetricRune(r rune, first bool) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		return true
	case r >= '0' && r <= '9':
		return !first
	}
	return false
}

// SanitizeLabel makes a span/task name safe to embed in JSON- or
// line-oriented exports: control characters (including newlines and tabs)
// become spaces. Printable text — the overwhelmingly common case — passes
// through unchanged, so golden traces are unaffected.
func SanitizeLabel(name string) string {
	clean := true
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			clean = false
			break
		}
	}
	if clean {
		return name
	}
	return strings.Map(func(r rune) rune {
		if r < 0x20 || r == 0x7f {
			return ' '
		}
		return r
	}, name)
}
