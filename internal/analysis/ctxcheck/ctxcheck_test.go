package ctxcheck_test

import (
	"testing"

	"gofmm/internal/analysis/analyzertest"
	"gofmm/internal/analysis/ctxcheck"
)

func TestCtxCheck(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), ctxcheck.Analyzer, "ctxcheck")
}
