// Package resilience is the cross-cutting fault-tolerance layer of the
// repository: a typed error taxonomy shared by every public entry point, a
// deterministic seedable fault-injection harness (chaos hooks) that makes
// recovery paths testable in CI, and a bounded exponential-backoff retry
// policy used by the simulated-MPI message router.
//
// The paper's runtime (§2.3) assumes every task and every message completes;
// a production GOFMM service cannot. The two seams where hierarchical
// pipelines are brittle — rank-revealing factorization that misses tolerance
// and cross-rank communication — each get an explicit recovery path, and the
// chaos harness exists so those paths run on every CI build rather than only
// on the bad day.
//
// All injection decisions are drawn from per-site deterministic RNG streams
// keyed by (seed, site), so a chaos run is reproducible regardless of
// goroutine interleaving: the k-th decision at a given site is the same in
// every run with the same seed.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// The error taxonomy of the resilience layer. Every recovery path that gives
// up resolves to one of these sentinels (wrapped with context), so callers
// can dispatch with errors.Is instead of string matching.
var (
	// ErrCancelled is returned when a context is cancelled mid-operation.
	ErrCancelled = errors.New("resilience: operation cancelled")
	// ErrTimeout is returned when a context deadline expires mid-operation.
	ErrTimeout = errors.New("resilience: operation timed out")
	// ErrStalled is returned by the scheduler watchdog when DAG execution
	// makes no progress: either a dependency cycle left tasks that can never
	// become ready, or a task body hung past the stall timeout.
	ErrStalled = errors.New("resilience: execution stalled")
	// ErrTaskFailed is returned when a task keeps failing after exhausting
	// its retry budget.
	ErrTaskFailed = errors.New("resilience: task failed after retries")
	// ErrMessageLost is returned when a simulated message is dropped or
	// corrupted on every delivery attempt.
	ErrMessageLost = errors.New("resilience: message lost after retries")
	// ErrTolerance is returned (in strict mode) when an interpolative
	// decomposition cannot reach the requested tolerance at MaxRank.
	ErrTolerance = errors.New("resilience: tolerance not reached at maximum rank")
	// ErrInvalidInput is returned for dimension mismatches and other caller
	// errors that previously panicked.
	ErrInvalidInput = errors.New("resilience: invalid input")
)

// retryAfterError decorates an error with a server-provided "try again in
// d" hint. It stays in the taxonomy: errors.Is/As see through it to the
// wrapped sentinel.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.err, e.after)
}

func (e *retryAfterError) Unwrap() error { return e.err }

// WithRetryAfter attaches a retry hint to err: the serving layer maps it to
// an HTTP Retry-After header, and Retry uses it as a delay floor in place
// of blind exponential guessing. A nil err or non-positive hint returns err
// unchanged.
func WithRetryAfter(err error, after time.Duration) error {
	if err == nil || after <= 0 {
		return err
	}
	return &retryAfterError{err: err, after: after}
}

// RetryAfterHint extracts the innermost retry hint attached with
// WithRetryAfter anywhere in err's chain (0, false when there is none).
func RetryAfterHint(err error) (time.Duration, bool) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.after, true
	}
	return 0, false
}

// PanicError is a worker panic recovered into a typed error: the task label,
// the recovered value and the goroutine stack at the recovery point.
type PanicError struct {
	Label string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("resilience: panic in task %q: %v", e.Label, e.Value)
}

// FromContext translates a context's state into the taxonomy: nil when the
// context is live, ErrCancelled/ErrTimeout (wrapping the cause) otherwise.
func FromContext(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	switch err := ctx.Err(); err {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	default:
		return fmt.Errorf("%w: %v", ErrCancelled, err)
	}
}
