package core

import (
	"fmt"
	"sort"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/sched"
	"gofmm/internal/telemetry"
)

// This file is the bridge between the algorithm code and the telemetry
// layer: phase timers that keep the legacy Stats fields and the telemetry
// span tree in agreement, an entry-oracle wrapper that counts At/Submatrix
// traffic, and the exporter that ships a traced scheduler run into the
// recorder (worker task events, scheduler-health metrics, per-phase
// aggregate spans).

// phaseTimer times one algorithm phase. When a recorder is attached the
// span is the single source of truth — End returns the span's duration, and
// the same number appears in the telemetry snapshot — otherwise it degrades
// to a plain stopwatch so the Stats fields keep working with telemetry off.
type phaseTimer struct {
	sp *telemetry.Span
	t0 time.Time
}

// startPhase opens a child span under parent (nil-safe) and starts the
// fallback stopwatch.
func startPhase(parent *telemetry.Span, name string) phaseTimer {
	return phaseTimer{sp: parent.StartSpan(name), t0: time.Now()}
}

// End closes the phase and returns its duration in seconds.
func (p phaseTimer) End() float64 {
	if d := p.sp.End(); d > 0 {
		return d.Seconds()
	}
	return time.Since(p.t0).Seconds()
}

// tracedSPD wraps an entry oracle with telemetry counters: the number of
// At and Submatrix calls and the total entries gathered — the currency of
// the O(N log N) compression claim, now visible per run.
type tracedSPD struct {
	K       SPD
	at      *telemetry.Counter
	sub     *telemetry.Counter
	entries *telemetry.Counter
}

// newTracedSPD wraps K; with a nil recorder it returns K unchanged.
func newTracedSPD(K SPD, rec *telemetry.Recorder) SPD {
	if rec == nil {
		return K
	}
	return &tracedSPD{
		K:       K,
		at:      rec.Counter("oracle.at.calls"),
		sub:     rec.Counter("oracle.submatrix.calls"),
		entries: rec.Counter("oracle.entries"),
	}
}

func (t *tracedSPD) Dim() int { return t.K.Dim() }

func (t *tracedSPD) At(i, j int) float64 {
	t.at.Add(1)
	t.entries.Add(1)
	return t.K.At(i, j)
}

// Submatrix implements Bulk, delegating to the wrapped oracle's fast path
// when it has one and falling back to the same per-entry loop Gather uses.
func (t *tracedSPD) Submatrix(I, J []int, dst *linalg.Matrix) {
	t.sub.Add(1)
	t.entries.Add(int64(len(I)) * int64(len(J)))
	if b, ok := t.K.(Bulk); ok {
		b.Submatrix(I, J, dst)
		return
	}
	for c, j := range J {
		col := dst.Col(c)
		for r, i := range I {
			col[r] = t.K.At(i, j)
		}
	}
}

// exportEngineTrace ships a traced engine run into the recorder: one task
// event per execution (worker tracks in the Chrome trace), scheduler-health
// metrics under the given prefix, and per-phase aggregate spans (min start
// to max end per task-label prefix, e.g. all N2S(·) tasks) attached under
// parent. runOffset is the recorder time at which the engine run started.
func exportEngineTrace(rec *telemetry.Recorder, parent *telemetry.Span,
	prefix string, eng *sched.Engine, runOffset time.Duration) {
	if rec == nil {
		return
	}
	evs := eng.Trace()
	if len(evs) == 0 {
		return
	}
	type window struct {
		lo, hi time.Duration
		seen   bool
	}
	phases := map[string]*window{}
	tevs := make([]telemetry.TaskEvent, len(evs))
	waitHist := rec.Histogram(prefix + ".queue_wait_us")
	for i, ev := range evs {
		start := runOffset + ev.WallStart
		tevs[i] = telemetry.TaskEvent{
			Name:       ev.Task.Label,
			Worker:     ev.Worker,
			Start:      start,
			Dur:        ev.Dur,
			Wait:       ev.QueueWait,
			StolenFrom: ev.StolenFrom,
		}
		waitHist.Observe(float64(ev.QueueWait.Microseconds()))
		name := taskPhase(ev.Task.Label)
		w := phases[name]
		if w == nil {
			w = &window{}
			phases[name] = w
		}
		if !w.seen || start < w.lo {
			w.lo = start
		}
		if end := start + ev.Dur; !w.seen || end > w.hi {
			w.hi = end
		}
		w.seen = true
	}
	rec.AddTaskEvents(tevs)
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		parent.AddChild(name, phases[name].lo, phases[name].hi)
	}
	sum := eng.Summary()
	rec.Counter(prefix + ".tasks").Add(int64(sum.Tasks))
	rec.Counter(prefix + ".steals").Add(int64(sum.Steals))
	rec.Gauge(prefix + ".utilization").Set(sum.Utilization)
	rec.Gauge(prefix + ".max_queue_depth").Set(float64(sum.MaxQueueDepth))
	rec.Gauge(prefix + ".critical_path_seconds").Set(sum.CriticalPath.Seconds())
}

// taskPhase maps a task label like "N2S(12)" to its phase name "N2S".
func taskPhase(label string) string {
	for i := 0; i < len(label); i++ {
		if label[i] == '(' {
			return label[:i]
		}
	}
	return label
}

// recordSkelNode logs per-node skeletonization telemetry: the rank
// distribution and per-tree-level time accounting (how the SKEL work is
// spread across levels, whatever order the executor ran them in).
func (h *Hierarchical) recordSkelNode(id int, t0 time.Time) {
	rec := h.Cfg.Telemetry
	if rec == nil {
		return
	}
	rec.Histogram("skel.rank").Observe(float64(len(h.nodes[id].skel)))
	level := h.Tree.Nodes[id].Level
	rec.Counter(fmt.Sprintf("skel.level.%02d.ns", level)).Add(time.Since(t0).Nanoseconds())
}

// TelemetryReport returns the attached recorder's human-readable report
// ("telemetry disabled" when Config.Telemetry is nil).
func (h *Hierarchical) TelemetryReport() string {
	return h.Cfg.Telemetry.Report()
}
