package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gofmm/internal/telemetry"
)

func TestCLIUnknownSubcommand(t *testing.T) {
	var sb strings.Builder
	if err := cli([]string{"nope"}, &sb); err == nil {
		t.Fatal("expected error")
	}
	if err := cli(nil, &sb); err == nil {
		t.Fatal("expected error for missing subcommand")
	}
}

func TestCLIFig7Smoke(t *testing.T) {
	var sb strings.Builder
	if err := cli([]string{"fig7", "-n", "200"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "== fig7 ==") || !strings.Contains(out, "lexicographic") {
		t.Fatalf("fig7 output malformed:\n%s", out)
	}
	// G03 must show the impossible-geometric marker.
	if !strings.Contains(out, "n/a (no coordinates)") {
		t.Fatal("G03 geometric n/a row missing")
	}
}

func TestCLITable3Smoke(t *testing.T) {
	var sb strings.Builder
	if err := cli([]string{"table3", "-n", "200"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, code := range []string{"HODLR", "STRUMPACK", "GOFMM"} {
		if strings.Count(out, code) < 6 {
			t.Fatalf("table3 missing %s rows:\n%s", code, out)
		}
	}
}

func TestCLIFlagError(t *testing.T) {
	var sb strings.Builder
	if err := cli([]string{"fig7", "-bogus"}, &sb); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestCLIFig2Fig3Smoke(t *testing.T) {
	var sb strings.Builder
	if err := cli([]string{"fig2", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#") {
		t.Fatalf("fig2 missing block structure:\n%s", sb.String())
	}
	sb.Reset()
	if err := cli([]string{"fig3", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph tasks") {
		t.Fatalf("fig3 missing DOT output:\n%s", sb.String())
	}
}

func TestCLIBenchJSON(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := cli([]string{"fig7", "-n", "200", "-benchjson", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_repro_fig7.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("expected run record at %s: %v", path, err)
	}
	if err := telemetry.ValidateRunRecord(data); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote run record") {
		t.Fatal("missing run-record confirmation line")
	}
}
