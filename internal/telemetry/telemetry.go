// Package telemetry is the observability layer of the repository: a
// dependency-free hierarchical span tracer, a registry of named metrics
// (counters, gauges, histograms), and exporters for the three consumers the
// paper's evaluation implies —
//
//   - a Chrome trace-event JSON file (loadable in Perfetto / about:tracing)
//     with one track per scheduler worker plus a "phases" track for the
//     algorithm-level spans, the Figure 4 worker-timeline picture;
//   - a human-readable Report() tree with per-phase percentages, the §4
//     "where does the time go" breakdown (ANN vs tree vs skeletonization vs
//     the four matvec passes);
//   - a stable machine-readable RunRecord for benchmark trajectories
//     (BENCH_*.json).
//
// Everything hangs off a *Recorder. A nil *Recorder is a valid no-op: every
// method on a nil Recorder, Span, Counter, Gauge or Histogram returns
// immediately, so instrumented code needs no conditionals and pays only a
// nil check when telemetry is disabled.
package telemetry

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder collects spans, task events and metrics for one run. All methods
// are safe for concurrent use and safe on a nil receiver (no-ops).
type Recorder struct {
	now   func() time.Time
	epoch time.Time

	mu     sync.Mutex
	roots  []*Span     // guarded by mu
	events []TaskEvent // guarded by mu

	metricsMu sync.Mutex
	counters  map[string]*Counter   // guarded by metricsMu
	gauges    map[string]*Gauge     // guarded by metricsMu
	hists     map[string]*Histogram // guarded by metricsMu

	// Live-introspection hooks (see OnSpanEnd, SetLogger, ReportCrash).
	obsMu     sync.RWMutex
	observers []func(SpanEvent) // guarded by obsMu
	logger    atomic.Pointer[slog.Logger]
	flight    atomic.Pointer[FlightRecorder]
}

// New returns an empty Recorder whose clock starts now.
func New() *Recorder { return newRecorder(time.Now) }

// newRecorder allows tests to inject a deterministic clock.
func newRecorder(now func() time.Time) *Recorder {
	return &Recorder{
		now:      now,
		epoch:    now(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Since returns the time elapsed since the recorder was created (its trace
// epoch). Zero on a nil recorder.
func (r *Recorder) Since() time.Duration {
	if r == nil {
		return 0
	}
	return r.now().Sub(r.epoch)
}

// Span is one timed interval of the run, nestable into a tree. Spans are
// created with StartSpan and closed with End; a Span may parent concurrent
// child spans from multiple goroutines. String key/value attributes (trace
// IDs, error summaries, batch shapes) attach with SetAttr and ride along in
// every export.
type Span struct {
	rec      *Recorder
	parent   *Span // nil for roots
	name     string
	start    time.Duration // offset from the recorder epoch
	dur      time.Duration
	ended    bool
	children []*Span
	attrs    map[string]string
}

// StartSpan opens a root-level span. Returns nil on a nil recorder.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{rec: r, name: name, start: r.Since()}
	r.mu.Lock()
	r.roots = append(r.roots, s)
	r.mu.Unlock()
	return s
}

// StartSpan opens a child span under s. Returns nil on a nil span.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{rec: s.rec, parent: s, name: name, start: s.rec.Since()}
	s.rec.mu.Lock()
	s.children = append(s.children, c)
	s.rec.mu.Unlock()
	return c
}

// AddChild records an already-measured interval [start, end] (offsets from
// the recorder epoch) as a completed child span — used to attach phase
// aggregates reconstructed from out-of-order task traces.
func (s *Span) AddChild(name string, start, end time.Duration) *Span {
	if s == nil {
		return nil
	}
	if end < start {
		end = start
	}
	c := &Span{rec: s.rec, parent: s, name: name, start: start, dur: end - start, ended: true}
	s.rec.mu.Lock()
	s.children = append(s.children, c)
	s.rec.mu.Unlock()
	s.rec.emitSpanEnd(c.eventLocked())
	return c
}

// SetAttr attaches (or overwrites) a string attribute on the span. Setting
// an attribute with an empty value is a no-op, so call sites can pass
// possibly-absent trace IDs without a conditional. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil || value == "" {
		return
	}
	s.rec.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 2)
	}
	s.attrs[key] = value
	s.rec.mu.Unlock()
}

// Attr returns the named attribute ("" when absent or on a nil span).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	return s.attrs[key]
}

// SetTraceIDFromContext copies the context's trace ID (if any) onto the
// span as the "trace_id" attribute. Nil-safe on both ends.
func (s *Span) SetTraceIDFromContext(ctx context.Context) {
	if s == nil {
		return
	}
	if id, ok := TraceIDFrom(ctx); ok {
		s.SetAttr(AttrTraceID, id)
	}
}

// End closes the span and returns its duration. Ending a span twice keeps
// the first measurement (and only the first End notifies span observers);
// End on a nil span returns 0.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := s.rec.Since() - s.start
	s.rec.mu.Lock()
	first := !s.ended
	if first {
		s.ended = true
		s.dur = d
	}
	d = s.dur
	var ev SpanEvent
	if first {
		ev = s.eventLocked()
	}
	s.rec.mu.Unlock()
	if first {
		s.rec.emitSpanEnd(ev)
	}
	return d
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SpanEvent is the flat record of one completed span, as delivered to
// OnSpanEnd observers, streamed by the live debug server's /debug/spans
// endpoint, and retained by the flight recorder.
type SpanEvent struct {
	Name string `json:"name"`
	// Parent is the name of the enclosing span ("" for roots).
	Parent string `json:"parent,omitempty"`
	// TraceID mirrors the "trace_id" attribute when present.
	TraceID      string            `json:"trace_id,omitempty"`
	StartSeconds float64           `json:"start_seconds"`
	Seconds      float64           `json:"seconds"`
	Attrs        map[string]string `json:"attrs,omitempty"`
}

// eventLocked builds the completion event for s. Caller holds s.rec.mu.
func (s *Span) eventLocked() SpanEvent {
	ev := SpanEvent{
		Name:         s.name,
		TraceID:      s.attrs[AttrTraceID],
		StartSeconds: s.start.Seconds(),
		Seconds:      s.dur.Seconds(),
	}
	if s.parent != nil {
		ev.Parent = s.parent.name
	}
	if len(s.attrs) > 0 {
		ev.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			ev.Attrs[k] = v
		}
	}
	return ev
}

// OnSpanEnd registers an observer called once for every span completion
// (first End or AddChild). Observers run synchronously on the ending
// goroutine and must be fast and non-blocking — fan out through a buffered
// channel for anything heavier (the live server's span feed does exactly
// that). Observers cannot be removed; they live as long as the recorder.
// No-op on a nil recorder.
func (r *Recorder) OnSpanEnd(fn func(SpanEvent)) {
	if r == nil || fn == nil {
		return
	}
	r.obsMu.Lock()
	r.observers = append(r.observers, fn)
	r.obsMu.Unlock()
}

// emitSpanEnd delivers a completion event to every observer and, when a
// logger is attached, emits a debug-level structured log record.
func (r *Recorder) emitSpanEnd(ev SpanEvent) {
	if r == nil {
		return
	}
	r.obsMu.RLock()
	obs := r.observers
	r.obsMu.RUnlock()
	for _, fn := range obs {
		fn(ev)
	}
	if l := r.Logger(); l != nil {
		l.Debug("span end",
			"span", ev.Name, "parent", ev.Parent, "trace_id", ev.TraceID,
			"start_s", ev.StartSeconds, "dur_s", ev.Seconds)
	}
}

// TaskEvent is one task execution on a scheduler worker, as exported by the
// task runtime. Times are offsets from the recorder epoch.
type TaskEvent struct {
	// Name is the task label (e.g. "N2S(12)").
	Name string
	// Worker is the executing worker index (one Chrome-trace track each).
	Worker int
	// Start/Dur bound the task body's execution.
	Start, Dur time.Duration
	// Wait is the time the task spent on a ready queue before executing.
	Wait time.Duration
	// StolenFrom is the worker whose queue the task was stolen from, or -1.
	StolenFrom int
}

// AddTaskEvents appends worker-level task events (no-op on nil).
func (r *Recorder) AddTaskEvents(evs []TaskEvent) {
	if r == nil || len(evs) == 0 {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, evs...)
	r.mu.Unlock()
}

// TaskEvents returns a copy of the recorded task events.
func (r *Recorder) TaskEvents() []TaskEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TaskEvent(nil), r.events...)
}
