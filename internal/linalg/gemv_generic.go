//go:build !amd64 || purego

package linalg

// Portable builds never reach the GEMV micro-kernels: every call site is
// gated on haveFMAKernel, which is constant false here (see gemm_generic.go).

func gemvCols8F64(m int, a *float64, lda int, coef *float64, y *float64) {
	panic("linalg: assembly micro-kernel unavailable in this build")
}

func gemvCols8F32(m int, a *float32, lda int, coef *float64, y *float64) {
	panic("linalg: assembly micro-kernel unavailable in this build")
}

func gemvDots4F64(m int, a *float64, lda int, x *float64, dst *float64) {
	panic("linalg: assembly micro-kernel unavailable in this build")
}
