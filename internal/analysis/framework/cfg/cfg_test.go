package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The test analyses track which mark("...") calls a path has executed: the
// "may" variant merges by union (some path reached it), the "must" variant
// by intersection (every path reached it). Between them they pin down the
// edge structure of each construct: a missing edge inflates "must", a
// spurious edge deflates it.

type markSet map[string]bool

func (m markSet) clone() markSet {
	out := markSet{}
	for k := range m {
		out[k] = true
	}
	return out
}

func (m markSet) names() string {
	var ns []string
	for k := range m {
		ns = append(ns, k)
	}
	sort.Strings(ns)
	return strings.Join(ns, ",")
}

type markAnalysis struct {
	must bool // intersection merge when true, union otherwise
}

func (markAnalysis) EntryFact() Fact { return markSet{} }

func (markAnalysis) Transfer(f Fact, n ast.Node) Fact {
	set := f.(markSet)
	var found []string
	Walk(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" && len(call.Args) == 1 {
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				s, err := strconv.Unquote(lit.Value)
				if err == nil {
					found = append(found, s)
				}
			}
		}
		return true
	})
	if len(found) == 0 {
		return set
	}
	out := set.clone()
	for _, s := range found {
		out[s] = true
	}
	return out
}

func (a markAnalysis) Merge(x, y Fact) Fact {
	xs, ys := x.(markSet), y.(markSet)
	out := markSet{}
	for k := range xs {
		if !a.must || ys[k] {
			out[k] = true
		}
	}
	if !a.must {
		for k := range ys {
			out[k] = true
		}
	}
	return out
}

func (markAnalysis) Equal(x, y Fact) bool {
	xs, ys := x.(markSet), y.(markSet)
	if len(xs) != len(ys) {
		return false
	}
	for k := range xs {
		if !ys[k] {
			return false
		}
	}
	return true
}

// branchMarks additionally records "T"/"F" along the edges of every `c`
// condition, exercising TransferBranch.
type branchMarks struct{ markAnalysis }

func (b branchMarks) TransferBranch(f Fact, cond ast.Expr, branch bool) Fact {
	if id, ok := cond.(*ast.Ident); !ok || id.Name != "c" {
		return f
	}
	out := f.(markSet).clone()
	if branch {
		out["T"] = true
	} else {
		out["F"] = true
	}
	return out
}

const testSrc = `package p

func ifelse(c bool) {
	if c {
		mark("then")
	} else {
		mark("else")
	}
	mark("after")
}

func labeledBreak(xs []int) {
outer:
	for i := 0; i < 3; i++ {
		for {
			mark("inner")
			break outer
		}
	}
	mark("done")
}

func labeledContinue() {
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			mark("body")
			continue outer
		}
		mark("unreached")
	}
	mark("done")
}

func rangeLoop(xs []int) {
	for _, x := range xs {
		_ = x
		mark("body")
	}
	mark("after")
}

func selectBoth(c bool, ch chan int) {
	select {
	case <-ch:
		mark("m")
		mark("recv")
	case ch <- 1:
		mark("m")
		mark("send")
	}
	mark("after")
}

func selectDefault(ch chan int) {
	select {
	case <-ch:
		mark("recv")
	default:
	}
	mark("after")
}

func gotoLoop() {
	i := 0
loop:
	mark("top")
	i++
	if i < 3 {
		goto loop
	}
	mark("done")
}

func fallth(x int) {
	switch x {
	case 1:
		mark("one")
		fallthrough
	case 2:
		mark("two")
	default:
		mark("def")
	}
	mark("after")
}

func switchNoDefault(x int) {
	switch x {
	case 1:
		mark("one")
	}
	mark("after")
}

func panics(bad bool) {
	if bad {
		mark("pre")
		panic("boom")
	}
	mark("main")
}

func deadCode() {
	mark("live")
	panic("boom")
	mark("dead")
}

func deferred(c bool) {
	if c {
		defer mark("d")
	}
	mark("after")
}

func branchRefine(c bool) {
	if c {
		mark("then")
	}
	mark("after")
}

func closureOpaque() {
	f := func() { mark("inside") }
	f()
	mark("after")
}

func mark(string) {}
`

func parseFuncs(t *testing.T) map[string]*ast.FuncDecl {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", testSrc, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*ast.FuncDecl{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			out[fd.Name.Name] = fd
		}
	}
	return out
}

// exitMarks solves fn under the may/must mark analyses and returns the two
// exit sets rendered as comma-joined sorted names.
func exitMarks(t *testing.T, fn *ast.FuncDecl) (may, must string) {
	t.Helper()
	g := New(fn.Body)
	for _, mode := range []bool{false, true} {
		res := Solve(g, markAnalysis{must: mode})
		f, ok := res.Exit(g)
		if !ok {
			t.Fatalf("%s: exit unreachable", fn.Name.Name)
		}
		if mode {
			must = f.(markSet).names()
		} else {
			may = f.(markSet).names()
		}
	}
	return may, must
}

func TestControlFlow(t *testing.T) {
	funcs := parseFuncs(t)
	cases := []struct {
		fn        string
		may, must string
	}{
		// Both arms execute their mark; the join keeps only the common part.
		{"ifelse", "after,else,then", "after"},
		// break outer leaves both loops: "inner" runs only if the outer
		// condition admits an iteration, "done" runs always.
		{"labeledBreak", "done,inner", "done"},
		// continue outer re-enters the outer post. The inner tail stays
		// may-reachable through the inner head's exit edge — the CFG cannot
		// prove j<3 holds on entry — but is never a must.
		{"labeledContinue", "body,done,unreached", "done"},
		// A range body may run zero times.
		{"rangeLoop", "after,body", "after"},
		// A select without default always runs some clause: the shared mark
		// is a must, the per-clause ones are not.
		{"selectBoth", "after,m,recv,send", "after,m"},
		// With a default, the recv clause may be skipped entirely.
		{"selectDefault", "after,recv", "after"},
		// goto loop: top executes at least once on the fall-in path.
		{"gotoLoop", "done,top", "done,top"},
		// fallthrough chains case 1 into case 2; no single mark is common
		// to all three dispatch paths.
		{"fallth", "after,def,one,two", "after"},
		// A tagless-match switch may skip every case.
		{"switchNoDefault", "after,one", "after"},
		// The panic path and the normal path merge at exit.
		{"panics", "main,pre", ""},
		// Statements after an unconditional panic never execute.
		{"deadCode", "live", "live"},
		// A conditionally registered defer is not a must.
		{"deferred", "after,d", "after"},
		// Function literal bodies are opaque: "inside" never surfaces.
		{"closureOpaque", "after", "after"},
	}
	for _, tc := range cases {
		fn, ok := funcs[tc.fn]
		if !ok {
			t.Fatalf("no function %s in test source", tc.fn)
		}
		may, must := exitMarks(t, fn)
		if may != tc.may {
			t.Errorf("%s: may-reach at exit = %q, want %q", tc.fn, may, tc.may)
		}
		if must != tc.must {
			t.Errorf("%s: must-reach at exit = %q, want %q", tc.fn, must, tc.must)
		}
	}
}

// TestTransferBranch pins the edge refinement: inside the then-branch the
// true fact "T" holds, and the join after the if discards it.
func TestTransferBranch(t *testing.T) {
	fn := parseFuncs(t)["branchRefine"]
	g := New(fn.Body)
	res := Solve(g, branchMarks{markAnalysis{must: true}})

	var thenStmt, afterStmt ast.Node
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			set := markAnalysis{}.Transfer(markSet{}, n).(markSet)
			if set["then"] {
				thenStmt = n
			} else if set["after"] {
				afterStmt = n
			}
		}
	}
	if thenStmt == nil || afterStmt == nil {
		t.Fatal("mark statements not found in graph")
	}
	f, ok := res.Before(thenStmt)
	if !ok || !f.(markSet)["T"] {
		t.Errorf("before mark(then): fact %v, want T held", f)
	}
	f, ok = res.Before(afterStmt)
	if !ok {
		t.Fatal("after-statement unreachable")
	}
	if set := f.(markSet); set["T"] || set["F"] {
		t.Errorf("after the if-join: branch facts %v survived, want neither", set)
	}
}

// TestNilBody covers bodiless declarations (assembly shims).
func TestNilBody(t *testing.T) {
	g := New(nil)
	res := Solve(g, markAnalysis{must: true})
	if f, ok := res.Exit(g); !ok || f.(markSet).names() != "" {
		t.Errorf("nil body: exit fact %v, want empty reachable set", f)
	}
}
