package linalg

import "math"

// SymEig computes all eigenvalues (ascending) and, optionally, the
// orthonormal eigenvectors of a symmetric matrix using the cyclic Jacobi
// method. Intended for the moderate sizes where it is used here —
// diagnostics (condition numbers, definiteness margins of K̃) and test
// oracles — not as a large-scale eigensolver.
func SymEig(A *Matrix, wantVectors bool) ([]float64, *Matrix) {
	n := A.Rows
	if A.Cols != n {
		panic("linalg: SymEig of non-square matrix")
	}
	W := A.Clone()
	var V *Matrix
	if wantVectors {
		V = Eye(n)
	}
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius mass.
		var off float64
		for j := 0; j < n; j++ {
			col := W.Col(j)
			for i := 0; i < n; i++ {
				if i != j {
					off += col[i] * col[i]
				}
			}
		}
		if off < 1e-24*(1+W.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := W.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := W.At(p, p), W.At(q, q)
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(W, p, q, c, s)
				if V != nil {
					rotateCols(V, p, q, c, s)
				}
			}
		}
	}
	evs := make([]float64, n)
	for i := range evs {
		evs[i] = W.At(i, i)
	}
	// Sort ascending, permuting vectors along.
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if evs[ord[j]] < evs[ord[i]] {
				ord[i], ord[j] = ord[j], ord[i]
			}
		}
	}
	sorted := make([]float64, n)
	for k, o := range ord {
		sorted[k] = evs[o]
	}
	if V != nil {
		V = V.ColsGather(ord)
	}
	return sorted, V
}

// rotate applies the two-sided Jacobi rotation J(p,q,θ)ᵀ·W·J(p,q,θ).
func rotate(W *Matrix, p, q int, c, s float64) {
	n := W.Rows
	cp, cq := W.Col(p), W.Col(q)
	for i := 0; i < n; i++ {
		wip, wiq := cp[i], cq[i]
		cp[i] = c*wip - s*wiq
		cq[i] = s*wip + c*wiq
	}
	for j := 0; j < n; j++ {
		cj := W.Col(j)
		wpj, wqj := cj[p], cj[q]
		cj[p] = c*wpj - s*wqj
		cj[q] = s*wpj + c*wqj
	}
}

// rotateCols applies the rotation to columns p, q of V (right-multiply).
func rotateCols(V *Matrix, p, q int, c, s float64) {
	cp, cq := V.Col(p), V.Col(q)
	for i := range cp {
		vip, viq := cp[i], cq[i]
		cp[i] = c*vip - s*viq
		cq[i] = s*vip + c*viq
	}
}

// Cond2 returns the 2-norm condition number λmax/λmin of a symmetric
// positive definite matrix (+Inf when λmin ≤ 0).
func Cond2(A *Matrix) float64 {
	evs, _ := SymEig(A, false)
	if len(evs) == 0 {
		return 0
	}
	lmin, lmax := evs[0], evs[len(evs)-1]
	if lmin <= 0 {
		return math.Inf(1)
	}
	return lmax / lmin
}
