package spdmat

import (
	"fmt"
	"math"
	"math/rand"

	"gofmm/internal/linalg"
)

// This file builds the stencil-operator problems: K02/K03 (regularized
// inverse [Helmholtz] Laplacian squared on a 2-D grid), K12–K14 (2-D
// variable-coefficient diffusion inverses) and K18 (3-D inverse squared
// Laplacian with variable coefficients). All are dense SPD matrices obtained
// by factoring a banded stencil operator and solving against the identity —
// which is how Hessians of PDE-constrained optimization problems and inverse
// covariance operators arise (§3 of the paper).

// grid2D builds the 5-point stencil operator
// A = −∇·(a(x)∇u) + c(x)·u on an nx×ny grid with Dirichlet boundaries,
// using harmonic averaging of the variable coefficient a at cell faces so
// the matrix stays SPD. shift is added to the diagonal (regularization, or
// a negative Helmholtz shift — the caller must keep the final operator
// squared or shifted back to SPD).
func grid2D(nx, ny int, a, c func(x, y float64) float64, shift float64) *linalg.BandedSPD {
	n := nx * ny
	b := linalg.NewBandedSPD(n, nx)
	hx := 1.0 / float64(nx+1)
	idx := func(i, j int) int { return j*nx + i }
	harm := func(a1, a2 float64) float64 { return 2 * a1 * a2 / (a1 + a2) }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			x, y := float64(i+1)*hx, float64(j+1)*hx
			ac := a(x, y)
			// Face coefficients (harmonic mean with the neighbor cell).
			ae := harm(ac, a(x+hx, y))
			aw := harm(ac, a(x-hx, y))
			an := harm(ac, a(x, y+hx))
			as := harm(ac, a(x, y-hx))
			d := (ae + aw + an + as) + c(x, y)*hx*hx + shift*hx*hx
			b.Set(idx(i, j), idx(i, j), d)
			if i+1 < nx {
				b.Set(idx(i+1, j), idx(i, j), -ae)
			}
			if j+1 < ny {
				b.Set(idx(i, j+1), idx(i, j), -an)
			}
		}
	}
	return b
}

// grid3D builds the 7-point variable-coefficient Laplacian on an nx³ grid.
func grid3D(nx int, a func(x, y, z float64) float64, shift float64) *linalg.BandedSPD {
	n := nx * nx * nx
	b := linalg.NewBandedSPD(n, nx*nx)
	h := 1.0 / float64(nx+1)
	idx := func(i, j, k int) int { return (k*nx+j)*nx + i }
	harm := func(a1, a2 float64) float64 { return 2 * a1 * a2 / (a1 + a2) }
	for k := 0; k < nx; k++ {
		for j := 0; j < nx; j++ {
			for i := 0; i < nx; i++ {
				x, y, z := float64(i+1)*h, float64(j+1)*h, float64(k+1)*h
				ac := a(x, y, z)
				fe := harm(ac, a(x+h, y, z))
				fw := harm(ac, a(x-h, y, z))
				fn := harm(ac, a(x, y+h, z))
				fs := harm(ac, a(x, y-h, z))
				fu := harm(ac, a(x, y, z+h))
				fd := harm(ac, a(x, y, z-h))
				b.Set(idx(i, j, k), idx(i, j, k), fe+fw+fn+fs+fu+fd+shift*h*h)
				if i+1 < nx {
					b.Set(idx(i+1, j, k), idx(i, j, k), -fe)
				}
				if j+1 < nx {
					b.Set(idx(i, j+1, k), idx(i, j, k), -fn)
				}
				if k+1 < nx {
					b.Set(idx(i, j, k+1), idx(i, j, k), -fu)
				}
			}
		}
	}
	return b
}

// bandedToDense expands a banded operator.
func bandedToDense(b *linalg.BandedSPD) *linalg.Matrix {
	A := linalg.NewMatrix(b.N, b.N)
	for j := 0; j < b.N; j++ {
		for d := 0; d <= b.Bandwidth; d++ {
			if j+d < b.N {
				v := b.Band[d][j]
				A.Set(j+d, j, v)
				A.Set(j, j+d, v)
			}
		}
	}
	return A
}

// inverseSquared returns (AᵀA + δI)⁻¹ for the symmetric operator A given in
// band form — the "regularized inverse ... squared" construction of K02/K03.
// A² is formed densely (the band squared would still be banded, but dense
// keeps the code simple at laptop scale), then factored with Cholesky.
func inverseSquared(b *linalg.BandedSPD, delta float64) (*linalg.Matrix, error) {
	A := bandedToDense(b)
	A2 := linalg.MatMul(false, false, A, A)
	for i := 0; i < A2.Rows; i++ {
		A2.Add(i, i, delta)
	}
	return linalg.InvertSPD(A2)
}

// gridSide returns the per-dimension grid size for a requested N (rounded
// down to a perfect square/cube).
func gridSide(n, dims int) int {
	s := int(math.Round(math.Pow(float64(n), 1/float64(dims))))
	for s > 1 && pow(s, dims) > n {
		s--
	}
	if s < 2 {
		s = 2
	}
	return s
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// K02 is the 2-D regularized inverse Laplacian squared — the Hessian of a
// PDE-constrained optimization problem (5-point stencil, Dirichlet BCs).
func K02(n int) (*Problem, error) {
	nx := gridSide(n, 2)
	one := func(x, y float64) float64 { return 1 }
	zero := func(x, y float64) float64 { return 0 }
	b := grid2D(nx, nx, one, zero, 1.0)
	inv, err := inverseSquared(b, 1e-4)
	if err != nil {
		return nil, fmt.Errorf("K02: %w", err)
	}
	return &Problem{
		Name: "K02",
		Desc: fmt.Sprintf("2-D regularized inverse Laplacian squared, %d×%d grid", nx, nx),
		K:    &Dense{inv},
	}, nil
}

// K03 is the same construction with an oscillatory Helmholtz operator
// (≈10 points per wavelength, so k·h ≈ 2π/10).
func K03(n int) (*Problem, error) {
	nx := gridSide(n, 2)
	h := 1.0 / float64(nx+1)
	kh := 2 * math.Pi / 10
	ksq := (kh / h) * (kh / h)
	one := func(x, y float64) float64 { return 1 }
	zero := func(x, y float64) float64 { return 0 }
	// Helmholtz L − k²I is indefinite; its square is SPD.
	b := grid2D(nx, nx, one, zero, -ksq)
	inv, err := inverseSquared(b, 1e-4)
	if err != nil {
		return nil, fmt.Errorf("K03: %w", err)
	}
	return &Problem{
		Name: "K03",
		Desc: fmt.Sprintf("2-D inverse squared Helmholtz (10 pts/wavelength), %d×%d grid", nx, nx),
		K:    &Dense{inv},
	}, nil
}

// variableCoefficient returns a rough, highly variable positive field
// (lognormal-style bumps) for the K12–K14/K18 operators.
func variableCoefficient(rng *rand.Rand, contrast float64) func(x, y float64) float64 {
	const nb = 12
	cx := make([]float64, nb)
	cy := make([]float64, nb)
	am := make([]float64, nb)
	for i := range cx {
		cx[i], cy[i] = rng.Float64(), rng.Float64()
		am[i] = rng.NormFloat64()
	}
	return func(x, y float64) float64 {
		s := 0.0
		for i := range cx {
			dx, dy := x-cx[i], y-cy[i]
			s += am[i] * math.Exp(-(dx*dx+dy*dy)/0.02)
		}
		return math.Exp(s * math.Log(contrast) / 4)
	}
}

// K12, K13, K14 are 2-D variable-coefficient diffusion operators with
// increasingly rough coefficients (contrast 10, 1e3, 1e5); the matrices are
// the inverses (covariance-like).
func kDiffusion(name string, n int, contrast float64, seed int64) (*Problem, error) {
	nx := gridSide(n, 2)
	rng := rand.New(rand.NewSource(seed))
	a := variableCoefficient(rng, contrast)
	c := func(x, y float64) float64 { return 1 }
	b := grid2D(nx, nx, a, c, 0)
	if err := b.CholeskyInPlace(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	inv, err := b.DenseInverse()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &Problem{
		Name: name,
		Desc: fmt.Sprintf("2-D variable-coefficient diffusion inverse (contrast %.0e), %d×%d grid", contrast, nx, nx),
		K:    &Dense{inv},
	}, nil
}

// K18 is the 3-D inverse squared Laplacian with variable coefficients.
func K18(n int, seed int64) (*Problem, error) {
	nx := gridSide(n, 3)
	rng := rand.New(rand.NewSource(seed))
	a2d := variableCoefficient(rng, 100)
	a := func(x, y, z float64) float64 { return a2d(x, y) * (1 + 0.5*math.Sin(2*math.Pi*z)) }
	b := grid3D(nx, a, 1.0)
	inv, err := inverseSquared(b, 1e-4)
	if err != nil {
		return nil, fmt.Errorf("K18: %w", err)
	}
	return &Problem{
		Name: "K18",
		Desc: fmt.Sprintf("3-D variable-coefficient inverse squared Laplacian, %d³ grid", nx),
		K:    &Dense{inv},
	}, nil
}
