package core

import (
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
)

func TestSinglePrecisionCacheAccuracyAndMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	n := 400
	Kd, _ := gaussKernelMatrix(rng, n, 0.8)
	W := linalg.GaussianMatrix(rng, n, 3)
	exact := linalg.MatMul(false, false, Kd, W)
	base := Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-8, Kappa: 8, Budget: 0.15,
		Distance: Kernel, Exec: Sequential, Seed: 161, CacheBlocks: true,
	}
	h64, err := Compress(denseSPD{Kd}, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg32 := base
	cfg32.CacheSingle = true
	h32, err := Compress(denseSPD{Kd}, cfg32)
	if err != nil {
		t.Fatal(err)
	}
	U64 := h64.Matvec(W)
	U32 := h32.Matvec(W)
	e64 := linalg.RelFrobDiff(U64, exact)
	e32 := linalg.RelFrobDiff(U32, exact)
	// fp32 storage adds at most a ~1e-7 floor.
	if e32 > e64+1e-6 {
		t.Fatalf("fp32 cache degraded accuracy too much: %g vs %g", e32, e64)
	}
	if e32 < 1e-12 && e64 < 1e-12 {
		t.Log("both errors at machine floor; memory check still applies")
	}
	// The cached blocks dominate memory, so fp32 storage must shrink the
	// footprint substantially.
	b64, b32 := h64.CompressedBytes(), h32.CompressedBytes()
	if float64(b32) > 0.75*float64(b64) {
		t.Fatalf("fp32 cache saved too little: %d vs %d bytes", b32, b64)
	}
	// Evaluator path must honor the fp32 cache too.
	ev := h32.NewEvaluator(3)
	Uev := ev.Matvec(W)
	if !linalg.EqualApprox(Uev, U32, 0) {
		t.Fatal("evaluator fp32 path differs from Matvec")
	}
}

func TestGemmMixedMatchesWidened(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	A := linalg.GaussianMatrix(rng, 20, 15)
	A32 := linalg.ToMatrix32(A)
	B := linalg.GaussianMatrix(rng, 15, 4)
	C1 := linalg.GaussianMatrix(rng, 20, 4)
	C2 := C1.Clone()
	linalg.GemmMixed(2, A32, B, 0.5, C1)
	linalg.Gemm(false, false, 2, A32.ToMatrix(), B, 0.5, C2)
	if !linalg.EqualApprox(C1, C2, 1e-12) {
		t.Fatal("GemmMixed differs from widened Gemm")
	}
}
