package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/plan"
	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
)

// CompilePlan lowers the four-pass traversal into a flat execution plan
// (see CompilePlanCtx). It is the legacy uncancellable entry point.
func (h *Hierarchical) CompilePlan() (*plan.Plan, error) {
	return h.CompilePlanCtx(context.Background())
}

// CompilePlanCtx compiles the N2S/S2S/S2N/L2L traversal into a flat,
// replayable schedule and installs it: subsequent MatvecCtx/MatmatCtx calls
// (and Evaluator/BatchEvaluator traffic) replay the plan instead of
// re-walking the tree. Compilation is idempotent — the first call builds,
// later calls return the installed plan. The tree interpreter remains
// available as the reference path through InterpMatvecCtx/InterpMatmatCtx
// (and again after DropPlan).
//
// When the compression did not cache its near/far blocks, compilation
// gathers them now and the plan owns them — compiling implies caching, at
// the same memory cost CacheBlocks would have paid.
func (h *Hierarchical) CompilePlanCtx(ctx context.Context) (*plan.Plan, error) {
	if p := h.evalPlan.Load(); p != nil {
		return p, nil
	}
	if err := resilience.FromContext(ctx); err != nil {
		return nil, err
	}
	h.planMu.Lock()
	defer h.planMu.Unlock()
	if p := h.evalPlan.Load(); p != nil {
		return p, nil
	}
	// Compiling implies caching: lowering gathers every uncached block, so
	// an oracle-free operator can only compile when nothing needs gathering.
	if !h.HasOracle() && h.interpNeedsOracle() {
		return nil, fmt.Errorf("core: plan compilation needs uncached blocks: %w", ErrNoOracle)
	}
	rec := h.Cfg.Telemetry
	sp := rec.StartSpan("plan.compile")
	defer sp.End()
	t0 := time.Now()
	p, err := h.lowerPlan()
	if err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}
	sp.SetAttr("plan.digest", p.DigestHex())
	sp.SetAttr("plan.ops", fmt.Sprintf("%d", p.NumOps()))
	if d := sp.End(); d > 0 {
		h.Stats.PlanTime = d.Seconds()
	} else {
		h.Stats.PlanTime = time.Since(t0).Seconds()
	}
	if rec != nil {
		rec.Counter("plan.compiles").Add(1)
		rec.Gauge("plan.ops").Set(float64(p.NumOps()))
		rec.Gauge("plan.batched_gemms").Set(float64(p.BatchedGemms()))
		rec.Gauge("plan.stages").Set(float64(p.NumStages()))
		rec.Gauge("plan.arena_rows").Set(float64(p.ArenaRows()))
	}
	h.evalPlan.Store(p)
	return p, nil
}

// Plan returns the installed compiled plan, or nil when evaluation still
// runs through the tree interpreter.
func (h *Hierarchical) Plan() *plan.Plan { return h.evalPlan.Load() }

// DropPlan uninstalls the compiled plan, returning evaluation to the tree
// interpreter (used by tests and by benchmarks that compare the paths).
func (h *Hierarchical) DropPlan() { h.evalPlan.Store(nil) }

// lowerPlan performs the symbolic traversal once and emits the flat
// schedule. The emitted op sequence reproduces the interpreter's kernel
// calls exactly: the same GEMMs against the same operands in the same
// accumulation order, so compiled results agree with the reference path to
// rounding (and replay-to-replay is bit-identical; see internal/plan).
//
// Arena layout: Wt, Unear, Ufar (n rows each, tree order), then per
// interior node one stacked region [w̃l; w̃r] whose halves ARE the
// children's skeleton-weight buffers (no copy op needed), then skeleton
// potentials ũ and hand-down buffers Pᵀũ for exactly the nodes the
// reachability pass proves live. Every region has a unique writing task
// per stage, and every region is written before it is read, so replays
// never zero the arena.
func (h *Hierarchical) lowerPlan() (*plan.Plan, error) {
	t := h.Tree
	n := h.K.Dim()
	nn := len(t.Nodes)
	b := plan.NewBuilder(n)

	// Reachability mirrors the interpreter's dynamic nil checks: hasS2S —
	// s2s allocates ũ; hasU — ũ exists (own far interactions or a parent
	// hand-down); hasDown — the node hands Pᵀũ to its children. Parents
	// precede children in heap order, so one forward sweep settles it.
	hasS2S := make([]bool, nn)
	hasU := make([]bool, nn)
	hasDown := make([]bool, nn)
	for id := 0; id < nn; id++ {
		nd := &h.nodes[id]
		s := len(nd.skel)
		hasS2S[id] = len(nd.far) > 0 && s > 0
		hasU[id] = hasS2S[id]
		if p := t.Parent(id); p >= 0 && hasDown[p] && s > 0 {
			hasU[id] = true
		}
		hasDown[id] = !t.IsLeaf(id) && nd.proj != nil && hasU[id] && s > 0
	}

	// Region allocation. Sibling skeleton-weight buffers are laid out as
	// the two halves of the parent's stacked N2S input, which removes the
	// interpreter's stacking copies entirely.
	wt := b.Region(n)
	unear := b.Region(n)
	ufar := b.Region(n)
	skelW := make([]plan.Ref, nn)   // w̃ per node (zero Rows = absent)
	stacked := make([]plan.Ref, nn) // [w̃l; w̃r] per interior node with a basis
	skelU := make([]plan.Ref, nn)   // ũ per node with hasU
	down := make([]plan.Ref, nn)    // Pᵀũ per node with hasDown
	projRows := func(id int) int {
		if h.nodes[id].proj == nil {
			return 0
		}
		return h.nodes[id].proj.Rows
	}
	for id := 0; id < nn; id++ {
		if t.IsLeaf(id) {
			continue
		}
		l, r := t.Left(id), t.Right(id)
		ra, rb := projRows(l), projRows(r)
		if h.nodes[id].proj != nil {
			base := b.Alloc(ra + rb)
			stacked[id] = plan.Ref{Base: base, Sub: 0, Rows: ra + rb, Span: ra + rb}
			if ra > 0 {
				skelW[l] = plan.Ref{Base: base, Sub: 0, Rows: ra, Span: ra + rb}
			}
			if rb > 0 {
				skelW[r] = plan.Ref{Base: base, Sub: ra, Rows: rb, Span: ra + rb}
			}
		} else {
			if ra > 0 {
				skelW[l] = b.Region(ra)
			}
			if rb > 0 {
				skelW[r] = b.Region(rb)
			}
		}
	}
	for id := 0; id < nn; id++ {
		if hasU[id] {
			skelU[id] = b.Region(len(h.nodes[id].skel))
		}
		if hasDown[id] {
			down[id] = b.Region(h.nodes[id].proj.Cols)
		}
	}
	// Sub-views of the three tree-order blocks (stride n).
	rows := func(region plan.Ref, lo, size int) plan.Ref {
		return plan.Ref{Base: region.Base, Sub: lo, Rows: size, Span: n}
	}

	// Stage 0: permute the external input into tree order.
	b.BeginStage("gather", false)
	b.BeginTask()
	b.Gather(t.Perm, wt)

	// N2S bottom-up, one barrier per level; a node's GEMM writes its w̃
	// half of the parent's stacked region.
	levels := t.LevelNodes()
	for l := t.Depth; l >= 0; l-- {
		opened := false
		for _, id := range levels[l] {
			nd := &h.nodes[id]
			if nd.proj == nil {
				continue
			}
			if !opened {
				b.BeginStage(fmt.Sprintf("n2s.L%02d", l), true)
				opened = true
			}
			b.BeginTask()
			if t.IsLeaf(id) {
				tn := &t.Nodes[id]
				b.Gemm(false, nd.proj, rows(wt, tn.Lo, tn.Size()), skelW[id], 0)
			} else {
				b.Gemm(false, nd.proj, stacked[id], skelW[id], 0)
			}
		}
	}

	// S2S: one parallel stage; each node's far accumulation keeps the
	// interpreter's list order, with the first emitted GEMM overwriting
	// (beta 0) in place of the interpreter's zeroed scratch.
	b.BeginStage("s2s", true)
	for id := 0; id < nn; id++ {
		if !hasS2S[id] {
			continue
		}
		nd := &h.nodes[id]
		b.BeginTask()
		emitted := false
		for k, alpha := range nd.far {
			if skelW[alpha].Rows == 0 {
				continue // the interpreter's nil/empty w̃α skip, decided statically
			}
			var beta float64
			if emitted {
				beta = 1
			}
			switch {
			case nd.cacheFar32 != nil:
				b.GemmMixed(nd.cacheFar32[k], skelW[alpha], skelU[id], beta)
			case nd.cacheFar != nil:
				b.Gemm(false, nd.cacheFar[k], skelW[alpha], skelU[id], beta)
			default:
				block := NewGathered(h.K, nd.skel, h.nodes[alpha].skel)
				b.Gemm(false, block, skelW[alpha], skelU[id], beta)
			}
			emitted = true
		}
		if !emitted {
			b.Zero(skelU[id]) // ũ exists but every source was skipped
		}
	}

	// S2N top-down, one barrier per level: fold the parent's hand-down
	// slice into ũ, then either hand Pᵀũ further down (interior) or emit
	// the far-field output rows (leaf).
	for l := 0; l <= t.Depth; l++ {
		opened := false
		for _, id := range levels[l] {
			nd := &h.nodes[id]
			s := len(nd.skel)
			var fold plan.Ref
			if p := t.Parent(id); p >= 0 && hasDown[p] {
				ls := len(h.nodes[t.Left(p)].skel)
				if id == t.Left(p) {
					fold = plan.Ref{Base: down[p].Base, Sub: 0, Rows: ls, Span: down[p].Rows}
				} else {
					fold = plan.Ref{Base: down[p].Base, Sub: ls, Rows: down[p].Rows - ls, Span: down[p].Rows}
				}
			}
			hasFold := fold.Rows > 0
			hasOut := hasU[id] && s > 0 && nd.proj != nil
			// A leaf whose far field is empty still owns its Ufar rows;
			// they must be cleared exactly once per replay.
			zeroUfar := t.IsLeaf(id) && !hasOut
			if !hasFold && !hasOut && !zeroUfar {
				continue
			}
			if !opened {
				b.BeginStage(fmt.Sprintf("s2n.L%02d", l), true)
				opened = true
			}
			b.BeginTask()
			if hasFold {
				if hasS2S[id] {
					b.Add(fold, skelU[id])
				} else {
					b.Copy(fold, skelU[id])
				}
			}
			if hasOut {
				if t.IsLeaf(id) {
					tn := &t.Nodes[id]
					b.Gemm(true, nd.proj, skelU[id], rows(ufar, tn.Lo, tn.Size()), 0)
				} else {
					b.Gemm(true, nd.proj, skelU[id], down[id], 0)
				}
			}
			if zeroUfar {
				tn := &t.Nodes[id]
				b.Zero(rows(ufar, tn.Lo, tn.Size()))
			}
		}
	}

	// L2L: one parallel stage; each leaf's near accumulation keeps list
	// order, first GEMM overwriting its Unear rows.
	b.BeginStage("l2l", true)
	for _, beta := range t.Leaves() {
		nd := &h.nodes[beta]
		tb := &t.Nodes[beta]
		uref := rows(unear, tb.Lo, tb.Size())
		b.BeginTask()
		if len(nd.near) == 0 {
			b.Zero(uref)
			continue
		}
		for k, alpha := range nd.near {
			ta := &t.Nodes[alpha]
			wref := rows(wt, ta.Lo, ta.Size())
			var bk float64
			if k > 0 {
				bk = 1
			}
			switch {
			case nd.cacheNear32 != nil:
				b.GemmMixed(nd.cacheNear32[k], wref, uref, bk)
			case nd.cacheNear != nil:
				b.Gemm(false, nd.cacheNear[k], wref, uref, bk)
			default:
				block := NewGathered(h.K, t.Indices(beta), t.Indices(alpha))
				b.Gemm(false, block, wref, uref, bk)
			}
		}
	}

	// Finish: fold the near field into the far field and permute out.
	b.BeginStage("finish", false)
	b.BeginTask()
	b.Add(unear, ufar)
	b.Scatter(ufar, t.IPerm)

	return b.Build()
}

// replayBlock is the compiled counterpart of evalBlock: it validates,
// spans and accounts identically, but evaluates by replaying the installed
// plan instead of walking the tree.
func (h *Hierarchical) replayBlock(ctx context.Context, p *plan.Plan, W *linalg.Matrix, op string) (U *linalg.Matrix, err error) {
	rec := h.Cfg.Telemetry
	tid, _ := telemetry.TraceIDFrom(ctx)
	// Backstop: no panic escapes the public entry points (kernel bugs and
	// injected replay faults alike become typed errors).
	defer func() {
		if r := recover(); r != nil {
			perr := &resilience.PanicError{Label: op, Value: r, Stack: debug.Stack()}
			rec.ReportCrash(op, tid, perr)
			U, err = nil, perr
		}
	}()
	n := h.K.Dim()
	if W == nil {
		return nil, fmt.Errorf("%w: core: %s weights are nil", resilience.ErrInvalidInput, op)
	}
	if W.Rows != n {
		return nil, fmt.Errorf("%w: core: %s with %d rows, matrix dim %d",
			resilience.ErrInvalidInput, op, W.Rows, n)
	}
	if err := resilience.FromContext(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	root := rec.StartSpan(op)
	defer root.End()
	root.SetAttr(telemetry.AttrTraceID, tid)
	root.SetAttr("plan.digest", p.DigestHex()[:12])
	workers := 1
	if h.Cfg.Exec != Sequential {
		workers = h.Cfg.workerCount()
	}
	opts := plan.ExecOptions{
		Workers:   workers,
		Pool:      h.Cfg.Workspace,
		Telemetry: rec,
	}
	if c := h.Cfg.Chaos; c != nil && c.Config().TaskFail > 0 {
		opts.Inject = c.TaskFail
	}
	U = linalg.NewMatrix(n, W.Cols)
	if err = p.Execute(ctx, W, U, opts); err != nil {
		root.SetAttr("error", err.Error())
		root.End()
		var perr *resilience.PanicError
		if errors.As(err, &perr) || errors.Is(err, resilience.ErrStalled) {
			rec.ReportCrash(op, tid, err)
		}
		return nil, err
	}
	flops := p.FlopsPerCol() * float64(W.Cols)
	atomic.StoreInt64(&h.evalFlops, int64(flops))
	secs := time.Since(start).Seconds()
	if d := root.End(); d > 0 {
		secs = d.Seconds()
	}
	h.noteEval(secs, flops)
	if rec != nil {
		rec.Counter(op + ".calls").Add(1)
		rec.Counter(op + ".flops").Add(int64(flops))
		rec.Gauge(op + ".rhs").Set(float64(W.Cols))
		rec.Histogram(op + ".latency_ms").Observe(time.Since(start).Seconds() * 1e3)
	}
	return U, nil
}
