package telemetry

import (
	"log/slog"
)

// Structured-logging bridge. A Recorder can carry one *slog.Logger; every
// subsystem that already holds the recorder (core, sched via SetLogger,
// resilience, the live debug server) emits leveled JSON records through it
// instead of inventing its own sink. Nothing is logged until SetLogger is
// called, so the default remains silent exactly like the nil-Recorder
// telemetry contract.

// SetLogger attaches a structured logger to the recorder. Subsequent span
// completions log at Debug; chaos injections and retries at Warn; crashes,
// stalls and deadlocks at Error. Passing nil detaches. No-op on a nil
// recorder.
func (r *Recorder) SetLogger(l *slog.Logger) {
	if r == nil {
		return
	}
	r.logger.Store(l)
}

// Logger returns the attached logger, or nil when none (or on a nil
// recorder). Callers must nil-check: the zero state is "no logging".
func (r *Recorder) Logger() *slog.Logger {
	if r == nil {
		return nil
	}
	return r.logger.Load()
}

// attachFlight wires a flight recorder so crash reports reach its ring.
func (r *Recorder) attachFlight(f *FlightRecorder) {
	if r == nil {
		return
	}
	r.flight.Store(f)
}

// Flight returns the attached flight recorder, or nil.
func (r *Recorder) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.flight.Load()
}

// ReportCrash is the single funnel for "this run just went badly wrong":
// recovered panics, stall-watchdog fires and provable deadlocks all land
// here. It logs at Error through the attached logger and forwards to the
// attached flight recorder, which records the error and — when a dump
// directory is configured — writes a post-mortem dump to disk. Nil-safe in
// every position (nil recorder, nil error, no logger, no flight recorder).
func (r *Recorder) ReportCrash(label, traceID string, err error) {
	if r == nil || err == nil {
		return
	}
	if l := r.Logger(); l != nil {
		l.Error("crash", "label", label, "trace_id", traceID, "err", err.Error())
	}
	if f := r.Flight(); f != nil {
		f.RecordError(label, traceID, err)
		f.autoDump(label)
	}
}
