package experiments

import (
	"io"

	"gofmm/internal/core"
	"gofmm/internal/spdmat"
)

// Fig5 reproduces Figure 5 (#5): relative error ε₂ on all 22 matrices (plus
// the ML kernels) with the angle distance, under two settings — τ=1e-2 with
// 1% budget (blue bars) and τ=1e-5 with 3% budget (green bars). Following
// the paper's annotations, K13/K14 are additionally run at τ=1e-10 (the
// adaptive ID underestimates their rank at looser tolerances — yellow) and
// G01–G03 are additionally run with leaf size 64 (orange). Matrices that do
// not compress at these ranks (K06, K15–K17 in the paper) simply show large
// ε₂, as in the figure's red labels.
func Fig5(w io.Writer, n int, seed int64) []Result {
	header(w, "matrix", "setting", "eps2", "avg-rank", "compress(s)", "eval(s)")
	var out []Result
	type setting struct {
		label  string
		tol    float64
		budget float64
		m      int
	}
	base := []setting{
		{"tol=1e-2 1%", 1e-2, 0.01, 128},
		{"tol=1e-5 3%", 1e-5, 0.03, 128},
	}
	run := func(name string, st setting) {
		p := GetProblem(name, n, seed)
		res := Run(p, core.Config{
			LeafSize: st.m, MaxRank: st.m, Tol: st.tol, Kappa: 32,
			Budget: st.budget, Distance: core.Angle, Exec: core.Dynamic,
			NumWorkers: 2, CacheBlocks: true, Seed: seed,
		}, 16, seed)
		res.Experiment = "fig5"
		res.Scheme = st.label
		out = append(out, res)
		cell(w, "%s", name)
		cell(w, "%s", st.label)
		cell(w, "%.1e", res.Eps)
		cell(w, "%.1f", res.AvgRank)
		cell(w, "%.3f", res.CompressS)
		cell(w, "%.4f", res.EvalS)
		endRow(w)
	}
	for _, name := range spdmat.Names() {
		for _, st := range base {
			run(name, st)
		}
		switch name {
		case "K13", "K14":
			run(name, setting{"tol=1e-10 3%", 1e-10, 0.03, 128})
		case "G01", "G02", "G03":
			run(name, setting{"tol=1e-5 3% m64", 1e-5, 0.03, 64})
		}
	}
	return out
}
