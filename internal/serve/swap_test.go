package serve

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
	"gofmm/internal/telemetry"
)

// The hot-swap contract under fire: 64 goroutines hammer Matvec through the
// registry while the main goroutine cycles Swap and Deregister over
// mmap-loaded operators. Every request must either succeed with the correct
// result or — only once deregistration begins — fail with the typed
// ErrUnknownOperator; each retired generation's store mapping is released
// only after its last in-flight evaluation; and the serving goroutines all
// drain. Run it under -race.
func TestHotSwapRaceUnderLoad(t *testing.T) {
	h := compressedOperator(t)
	path := filepath.Join(t.TempDir(), "hot.store")
	if _, err := h.SaveTo(path); err != nil {
		t.Fatal(err)
	}

	baseGoroutines := runtime.NumGoroutine()
	rec := telemetry.New()
	reg := NewRegistry(rec)
	ctx := context.Background()

	// Admission sized for the storm: 64 hammering goroutines must never be
	// shed — this test is about swap correctness, not load shedding.
	lim := Limits{Admission: AdmissionConfig{MaxConcurrent: 64, MaxQueue: 256}}

	var genMu sync.Mutex
	var generations []*core.Hierarchical
	swapIn := func() {
		t.Helper()
		h2, _, err := core.LoadFrom(path, core.LoadOptions{Mmap: true})
		if err != nil {
			t.Fatal(err)
		}
		genMu.Lock()
		generations = append(generations, h2)
		genMu.Unlock()
		if _, err := reg.SwapHierarchical(ctx, "hot", h2,
			core.BatchOptions{MaxBatch: 8, MaxDelay: 50 * time.Microsecond}, lim); err != nil {
			t.Fatal(err)
		}
	}
	swapIn()

	rng := rand.New(rand.NewSource(5))
	W := linalg.GaussianMatrix(rng, h.N(), 1)
	want := h.Matvec(W)

	const workers = 64
	stop := make(chan struct{})
	var deregPhase atomic.Bool
	var served, unknown atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				op, err := reg.Get("hot")
				if err == nil {
					_, err = op.Matvec(context.Background(), W)
					if err == nil {
						served.Add(1)
						continue
					}
				}
				if errors.Is(err, ErrUnknownOperator) {
					if !deregPhase.Load() {
						t.Errorf("ErrUnknownOperator before any deregistration: %v", err)
						return
					}
					unknown.Add(1)
					continue
				}
				t.Errorf("request failed: %v", err)
				return
			}
		}()
	}

	// Phase 1: pure swaps. No request may fail for any reason.
	for i := 0; i < 20; i++ {
		swapIn()
		time.Sleep(time.Millisecond)
	}
	// Phase 2: deregister/reinstall cycles. ErrUnknownOperator is now legal.
	deregPhase.Store(true)
	for i := 0; i < 10; i++ {
		if err := reg.Deregister("hot"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
		swapIn()
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no requests served during the swap storm")
	}
	// Only true replacements count as swaps: the 20 phase-1 cycles. The
	// initial install and the phase-2 reinstalls land on an empty name.
	if got := rec.Counter("store.swaps").Value(); got != 20 {
		t.Fatalf("store.swaps = %d, want 20", got)
	}

	// One correctness probe on the final generation, then shut down.
	op, err := reg.Get("hot")
	if err != nil {
		t.Fatal(err)
	}
	U, err := op.Matvec(ctx, W)
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.EqualApprox(want, U, 0) {
		t.Fatal("post-storm matvec differs from the in-memory operator")
	}
	reg.Close()

	// Every retired generation must have released its mapping (the live one
	// was just retired by Close with zero in-flight evaluations, so it too).
	genMu.Lock()
	for i, g := range generations {
		if g.StoreMapped() {
			t.Errorf("generation %d still holds its store mapping after retirement", i)
		}
	}
	genMu.Unlock()

	// And the evaluator goroutines must drain.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseGoroutines+2 {
		t.Errorf("goroutine leak: %d running, started with %d", got, baseGoroutines)
	}
}

// A stale handle resolved before a swap forwards to the replacement; one
// resolved before a deregistration surfaces the typed error.
func TestStaleHandleForwarding(t *testing.T) {
	h := compressedOperator(t)
	rec := telemetry.New()
	reg := NewRegistry(rec)
	ctx := context.Background()
	stale, err := reg.RegisterHierarchical(ctx, "fwd", h, core.BatchOptions{}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SwapHierarchical(ctx, "fwd", h, core.BatchOptions{}, Limits{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	W := linalg.GaussianMatrix(rng, h.N(), 1)
	U, err := stale.Matvec(ctx, W)
	if err != nil {
		t.Fatalf("stale handle after swap: %v", err)
	}
	if !linalg.EqualApprox(h.Matvec(W), U, 0) {
		t.Fatal("forwarded matvec differs")
	}
	if err := reg.Deregister("fwd"); err != nil {
		t.Fatal(err)
	}
	if _, err := stale.Matvec(ctx, W); !errors.Is(err, ErrUnknownOperator) {
		t.Fatalf("stale handle after deregister: got %v, want ErrUnknownOperator", err)
	}
	reg.Close()
}
