// Package errtaxonomy flags error values that would cross the internal/ →
// public gofmm boundary without carrying the resilience error taxonomy:
// a `return errors.New(...)` or a `return fmt.Errorf(...)` whose format
// wraps nothing (`%w` absent) inside an exported function of an internal
// package. Callers of the public API dispatch on the taxonomy with
// errors.Is (ErrInvalidInput, ErrTolerance, ...); an untyped error at the
// boundary silently breaks that dispatch, which the resilience runtime
// tests only notice for the paths they happen to exercise. Package-level
// sentinel declarations (the taxonomy itself) are untouched: only returns
// are checked.
//
// When the format already renders an error with %v, the fix is mechanical
// (%v → %w) and is attached as a suggested fix.
package errtaxonomy

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"gofmm/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "errtaxonomy",
	Doc: "flag untyped errors returned from exported functions of internal packages; " +
		"boundary errors must wrap a resilience sentinel with %w",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if pass.InTestFile(fd.Pos()) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc flags untyped error constructions that reach a return statement
// of fd, either directly (`return errors.New(...)`) or through a local
// variable assigned exactly once.
func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	// singleAssign[v] = the flaggable call assigned to local v, when v has
	// exactly one assignment in the function.
	assignCount := map[types.Object]int{}
	singleAssign := map[types.Object]*ast.CallExpr{}
	reported := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			obj := framework.ObjectOf(pass.TypesInfo, lhs)
			if obj == nil {
				continue
			}
			assignCount[obj]++
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && classify(pass, call) != "" {
				singleAssign[obj] = call
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl != nil {
			// Closures often feed errgroup-style machinery, not the public
			// boundary; returns inside them are out of scope.
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			var call *ast.CallExpr
			switch e := ast.Unparen(res).(type) {
			case *ast.CallExpr:
				call = e
			case *ast.Ident:
				if obj := framework.ObjectOf(pass.TypesInfo, e); obj != nil && assignCount[obj] == 1 {
					call = singleAssign[obj]
				}
			}
			if call != nil && !reported[call] {
				reported[call] = true
				report(pass, fd, call)
			}
		}
		return true
	})
}

// classify returns a non-empty kind when call constructs an untyped error:
// "errors.New" or "fmt.Errorf" (without %w).
func classify(pass *framework.Pass, call *ast.CallExpr) string {
	if framework.IsPkgFunc(pass.TypesInfo, call, "errors", "New") {
		return "errors.New"
	}
	if framework.IsPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") {
		if format, ok := formatLiteral(call); ok && !strings.Contains(format, "%w") {
			return "fmt.Errorf"
		}
	}
	return ""
}

func formatLiteral(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func report(pass *framework.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	kind := classify(pass, call)
	if kind == "" {
		return
	}
	d := framework.Diagnostic{
		Pos: call.Pos(),
		End: call.End(),
		Message: kind + " returned from exported " + fd.Name.Name +
			" crosses the internal/ boundary untyped; wrap a resilience sentinel with %w",
	}
	if fix, ok := vToWFix(pass, call); ok {
		d.SuggestedFixes = []framework.SuggestedFix{fix}
	}
	pass.Report(d)
}

// vToWFix upgrades fmt.Errorf("... %v ...", err) to %w when the format has
// exactly one %v and exactly one argument of type error — the only case
// where the rewrite is unambiguous.
func vToWFix(pass *framework.Pass, call *ast.CallExpr) (framework.SuggestedFix, bool) {
	if !framework.IsPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") {
		return framework.SuggestedFix{}, false
	}
	format, ok := formatLiteral(call)
	if !ok || strings.Count(format, "%v") != 1 {
		return framework.SuggestedFix{}, false
	}
	errArgs := 0
	for _, a := range call.Args[1:] {
		if tv, ok := pass.TypesInfo.Types[a]; ok && isErrorType(tv.Type) {
			errArgs++
		}
	}
	if errArgs != 1 {
		return framework.SuggestedFix{}, false
	}
	lit := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	fixed := strings.Replace(lit.Value, "%v", "%w", 1)
	return framework.SuggestedFix{
		Message: "wrap the error operand with %w instead of flattening it with %v",
		TextEdits: []framework.TextEdit{{
			Pos:     lit.Pos(),
			End:     lit.End(),
			NewText: []byte(fixed),
		}},
	}, true
}

func isErrorType(t types.Type) bool {
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}
