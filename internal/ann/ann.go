// Package ann implements the iterative randomized-tree all-nearest-neighbor
// search used as GOFMM's preprocessing step (Algorithm 2.2, steps 1–3):
// in each iteration a random projection tree is built with the same metric
// ball split as the partition tree — except that the pivot points p and q
// are chosen at random — and neighbors are searched exhaustively inside each
// leaf. Iterations stop when the neighbor lists stop improving (the paper
// stops at 80% accuracy or 10 iterations; without ground truth we use the
// update rate of the lists, a standard surrogate).
package ann

import (
	"math/rand"
	"sort"
	"sync/atomic"

	"gofmm/internal/metric"
	"gofmm/internal/sched"
	"gofmm/internal/tree"
)

// List stores the κ approximate nearest neighbors of every index, sorted by
// ascending distance. Entry (i, k) lives at position i*K+k of ID and D.
// Every index is its own first neighbor (distance 0), matching the pruning
// semantics of the paper where a leaf is always near itself.
type List struct {
	N, K int
	ID   []int32
	D    []float64
}

// NewList allocates a list seeded with self-neighbors only (all other slots
// hold sentinel +inf distances and ID -1).
func NewList(n, k int) *List {
	l := &List{N: n, K: k, ID: make([]int32, n*k), D: make([]float64, n*k)}
	for i := 0; i < n; i++ {
		base := i * k
		l.ID[base] = int32(i)
		for s := 1; s < k; s++ {
			l.ID[base+s] = -1
			l.D[base+s] = inf
		}
	}
	return l
}

const inf = 1e300

// Of returns the neighbor IDs of index i (valid entries only).
func (l *List) Of(i int) []int32 {
	base := i * l.K
	ids := l.ID[base : base+l.K]
	for k, id := range ids {
		if id < 0 {
			return ids[:k]
		}
	}
	return ids
}

// DistOf returns the distance of neighbor slot k of index i.
func (l *List) DistOf(i, k int) float64 { return l.D[i*l.K+k] }

// merge folds a batch of unique candidate (id, dist) pairs into index i's
// sorted list, returning how many of the K slots changed.
func (l *List) merge(i int, candID []int32, candD []float64) int {
	base := i * l.K
	curID := l.ID[base : base+l.K]
	curD := l.D[base : base+l.K]
	// Sort candidates ascending by distance.
	ord := make([]int, len(candID))
	for k := range ord {
		ord[k] = k
	}
	sort.Slice(ord, func(a, b int) bool { return candD[ord[a]] < candD[ord[b]] })
	// Sweep-merge the two sorted streams, skipping duplicates by ID.
	newID := make([]int32, 0, l.K)
	newD := make([]float64, 0, l.K)
	taken := make(map[int32]bool, l.K)
	ci, oi := 0, 0
	for len(newID) < l.K && (ci < l.K || oi < len(ord)) {
		var id int32
		var d float64
		if oi >= len(ord) || (ci < l.K && curD[ci] <= candD[ord[oi]]) {
			id, d = curID[ci], curD[ci]
			ci++
		} else {
			id, d = candID[ord[oi]], candD[ord[oi]]
			oi++
		}
		if id < 0 || taken[id] {
			continue
		}
		taken[id] = true
		newID = append(newID, id)
		newD = append(newD, d)
	}
	changed := 0
	for k := range newID {
		if curID[k] != newID[k] {
			changed++
		}
		curID[k], curD[k] = newID[k], newD[k]
	}
	for k := len(newID); k < l.K; k++ {
		curID[k], curD[k] = -1, inf
	}
	return changed
}

// Options configures the iterative search.
type Options struct {
	LeafSize int     // random tree leaf size (paper: same m as the ball tree)
	MaxIters int     // default 10
	MinGain  float64 // stop when the fraction of updated slots falls below this (default 0.2)
	Seed     int64
	// RecallTarget, when positive, enables the paper's stopping rule: after
	// each iteration the recall of RecallSample random indices is estimated
	// against exact neighbors (O(sample·N) per iteration) and the search
	// stops once it reaches the target (the paper uses 0.8).
	RecallTarget float64
	RecallSample int // default 32
	// Workers parallelizes the per-leaf exhaustive searches (leaves touch
	// disjoint index sets, so updates are race-free). Default 1.
	Workers int
}

// Search runs the iterative randomized-tree ANN search over n indices with
// the given distance space, returning κ neighbors per index.
func Search(n, kappa int, space metric.Space, opt Options) *List {
	if opt.LeafSize <= 0 {
		opt.LeafSize = 128
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 10
	}
	if opt.MinGain <= 0 {
		opt.MinGain = 0.2
	}
	if kappa > n {
		kappa = n
	}
	if opt.RecallSample <= 0 {
		opt.RecallSample = 32
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	l := NewList(n, kappa)
	rng := rand.New(rand.NewSource(opt.Seed))
	for iter := 0; iter < opt.MaxIters; iter++ {
		split := &metric.BallSplit{Space: space, Rng: rng, Random: true}
		rt := tree.Build(n, opt.LeafSize, split)
		var changed int64
		batch := make([]func(), 0, rt.NumLeaves())
		for _, leaf := range rt.Leaves() {
			idx := rt.Indices(leaf)
			batch = append(batch, func() {
				atomic.AddInt64(&changed, int64(exhaustiveLeaf(l, space, idx)))
			})
		}
		sched.RunLevels([][]func(){batch}, opt.Workers)
		if opt.RecallTarget > 0 {
			if SampleRecall(l, space, opt.RecallSample, opt.Seed+int64(iter)) >= opt.RecallTarget {
				break
			}
			continue
		}
		if float64(changed) < opt.MinGain*float64(n*kappa) {
			break
		}
	}
	return l
}

// SampleRecall estimates the recall of the current neighbor lists against
// exact neighbors computed for `sample` random indices (O(sample·N) work) —
// the accuracy the paper's ANN iteration reports per round.
func SampleRecall(l *List, space metric.Space, sample int, seed int64) float64 {
	n := l.N
	if sample > n {
		sample = n
	}
	rng := rand.New(rand.NewSource(seed))
	idxAll := make([]int, n)
	for i := range idxAll {
		idxAll[i] = i
	}
	dcol := make([]float64, n)
	hits, total := 0, 0
	for _, i := range rng.Perm(n)[:sample] {
		space.DistsTo(idxAll, i, dcol)
		// Exact κ nearest (excluding self) by selection of the k smallest.
		type cd struct {
			j int
			d float64
		}
		cands := make([]cd, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				cands = append(cands, cd{j, dcol[j]})
			}
		}
		k := min(l.K-1, len(cands))
		sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
		truth := map[int32]bool{int32(i): true}
		for _, c := range cands[:k] {
			truth[int32(c.j)] = true
		}
		for _, id := range l.Of(i) {
			total++
			if truth[id] {
				hits++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// exhaustiveLeaf updates neighbor lists of every index in idx against every
// other index in idx, the KNN(K_αα) task of Table 2 (cost m²).
func exhaustiveLeaf(l *List, space metric.Space, idx []int) int {
	m := len(idx)
	dcol := make([]float64, m)
	candID := make([]int32, 0, m)
	candD := make([]float64, 0, m)
	// Compute the leaf's distance matrix column by column and merge rows.
	dm := make([]float64, m*m)
	for c, j := range idx {
		space.DistsTo(idx, j, dcol)
		copy(dm[c*m:(c+1)*m], dcol)
	}
	changed := 0
	for r, i := range idx {
		candID = candID[:0]
		candD = candD[:0]
		for c, j := range idx {
			if j == i {
				continue
			}
			candID = append(candID, int32(j))
			candD = append(candD, dm[c*m+r])
		}
		changed += l.merge(i, candID, candD)
	}
	return changed
}

// Exact computes the true κ-nearest-neighbor lists by brute force (O(n²)),
// used for accuracy verification in tests and small problems.
func Exact(n, kappa int, space metric.Space) *List {
	if kappa > n {
		kappa = n
	}
	l := NewList(n, kappa)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	dcol := make([]float64, n)
	candID := make([]int32, 0, n)
	candD := make([]float64, 0, n)
	for _, i := range idx {
		space.DistsTo(idx, i, dcol)
		candID = candID[:0]
		candD = candD[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			candID = append(candID, int32(j))
			candD = append(candD, dcol[j])
		}
		l.merge(i, candID, candD)
	}
	return l
}

// Recall returns the fraction of entries of approx that appear in the exact
// list of the same index — the accuracy measure the paper's ANN iteration
// reports.
func Recall(approx, exact *List) float64 {
	if approx.N != exact.N {
		panic("ann: Recall on mismatched lists")
	}
	hits, total := 0, 0
	for i := 0; i < approx.N; i++ {
		truth := map[int32]bool{}
		for _, id := range exact.Of(i) {
			truth[id] = true
		}
		for _, id := range approx.Of(i) {
			total++
			if truth[id] {
				hits++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
