// Package krylov provides the iterative methods the paper names as the
// consumers of fast SPD matvecs (§1: "matvecs with multiple vectors, which
// is useful for Monte-Carlo sampling, optimization, and block Krylov
// methods"): conjugate gradients (optionally preconditioned), Lanczos
// spectrum estimation, block power iteration for dominant eigenpairs, and
// Hutchinson's randomized trace estimator. Every method consumes an
// Operator — anything with a fast Matvec, such as a GOFMM-compressed
// matrix — and never touches matrix entries.
package krylov

import (
	"errors"
	"math"
	"math/rand"

	"gofmm/internal/linalg"
)

// Matrix re-exports the dense matrix type used for blocks of vectors.
type Matrix = linalg.Matrix

// Operator is a linear operator with a (block) matvec. A GOFMM
// *Hierarchical satisfies it directly.
type Operator interface {
	N() int
	Matvec(W *Matrix) *Matrix
}

// Preconditioner approximately solves M·X = B. An hss.Factorization
// satisfies it directly.
type Preconditioner interface {
	Solve(B *Matrix) *Matrix
}

// Dense adapts an explicit matrix into an Operator (tests, baselines).
type Dense struct{ M *Matrix }

// N returns the dimension.
func (d Dense) N() int { return d.M.Rows }

// Matvec multiplies densely.
func (d Dense) Matvec(W *Matrix) *Matrix { return linalg.MatMul(false, false, d.M, W) }

// Shifted wraps A as A + σI.
type Shifted struct {
	A     Operator
	Sigma float64
}

// N returns the dimension.
func (s Shifted) N() int { return s.A.N() }

// Matvec applies (A + σI)·W.
func (s Shifted) Matvec(W *Matrix) *Matrix {
	U := s.A.Matvec(W)
	U.AddScaled(s.Sigma, W)
	return U
}

// ErrNotConverged reports that an iteration hit its cap before reaching the
// requested tolerance.
var ErrNotConverged = errors.New("krylov: not converged")

// CGResult reports the outcome of a CG solve.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual ‖r‖/‖b‖
}

// CG solves A·x = b for SPD A to relative tolerance tol (at most maxIter
// iterations), optionally preconditioned. x is returned even on
// ErrNotConverged.
func CG(A Operator, pre Preconditioner, b []float64, tol float64, maxIter int) ([]float64, CGResult, error) {
	n := A.N()
	if len(b) != n {
		panic("krylov: CG right-hand side dimension mismatch")
	}
	apply := func(v []float64) []float64 {
		V := linalg.NewMatrix(n, 1)
		copy(V.Col(0), v)
		return A.Matvec(V).Col(0)
	}
	prec := func(r []float64) []float64 {
		if pre == nil {
			return append([]float64(nil), r...)
		}
		R := linalg.NewMatrix(n, 1)
		copy(R.Col(0), r)
		return pre.Solve(R).Col(0)
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := prec(r)
	p := append([]float64(nil), z...)
	rz := linalg.Dot(r, z)
	norm0 := linalg.Nrm2(b)
	if norm0 == 0 {
		return x, CGResult{}, nil
	}
	res := CGResult{}
	for it := 0; it < maxIter; it++ {
		Ap := apply(p)
		pAp := linalg.Dot(p, Ap)
		if pAp <= 0 {
			return x, res, errors.New("krylov: operator not positive definite in CG")
		}
		alpha := rz / pAp
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, Ap, r)
		res.Iterations = it + 1
		res.Residual = linalg.Nrm2(r) / norm0
		if res.Residual < tol {
			return x, res, nil
		}
		z = prec(r)
		rzNew := linalg.Dot(r, z)
		beta := rzNew / rz
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		rz = rzNew
	}
	return x, res, ErrNotConverged
}

// Lanczos runs k steps of the symmetric Lanczos iteration (with full
// reorthogonalization, which is fine at the small k used for spectrum
// estimation) and returns the Ritz values in descending order.
func Lanczos(A Operator, k int, seed int64) []float64 {
	n := A.N()
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	q := make([]float64, n)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	linalg.Scal(1/linalg.Nrm2(q), q)
	Q := make([][]float64, 0, k)
	alpha := make([]float64, 0, k)
	beta := make([]float64, 0, k) // beta[j] links q_j and q_{j+1}
	apply := func(v []float64) []float64 {
		V := linalg.NewMatrix(n, 1)
		copy(V.Col(0), v)
		return A.Matvec(V).Col(0)
	}
	for j := 0; j < k; j++ {
		Q = append(Q, append([]float64(nil), q...))
		w := apply(q)
		a := linalg.Dot(q, w)
		alpha = append(alpha, a)
		linalg.Axpy(-a, q, w)
		if j > 0 {
			linalg.Axpy(-beta[j-1], Q[j-1], w)
		}
		// Full reorthogonalization against all previous vectors.
		for _, qi := range Q {
			linalg.Axpy(-linalg.Dot(qi, w), qi, w)
		}
		bnorm := linalg.Nrm2(w)
		if bnorm == 0 {
			break
		}
		beta = append(beta, bnorm)
		linalg.Scal(1/bnorm, w)
		q = w
	}
	m := len(alpha)
	evs := TridiagEigenvalues(alpha[:m], beta[:min(len(beta), m-1)])
	// Descending.
	for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
		evs[i], evs[j] = evs[j], evs[i]
	}
	return evs
}

// TridiagEigenvalues returns all eigenvalues (ascending) of the symmetric
// tridiagonal matrix with diagonal a and off-diagonal b, computed by
// bisection with Sturm sequences — entirely adequate for the small Lanczos
// systems used here.
func TridiagEigenvalues(a, b []float64) []float64 {
	n := len(a)
	if n == 0 {
		return nil
	}
	// Gershgorin bounds.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(b[i-1])
		}
		if i < n-1 {
			r += math.Abs(b[i])
		}
		lo = math.Min(lo, a[i]-r)
		hi = math.Max(hi, a[i]+r)
	}
	// count(x) = number of eigenvalues < x (Sturm sequence).
	count := func(x float64) int {
		cnt := 0
		d := 1.0
		const tiny = 1e-300
		for i := 0; i < n; i++ {
			off := 0.0
			if i > 0 {
				off = b[i-1] * b[i-1]
			}
			d = a[i] - x - off/d
			if d == 0 {
				d = tiny
			}
			if d < 0 {
				cnt++
			}
		}
		return cnt
	}
	evs := make([]float64, n)
	for k := 0; k < n; k++ {
		l, h := lo, hi
		for iter := 0; iter < 100 && h-l > 1e-13*(1+math.Abs(l)+math.Abs(h)); iter++ {
			mid := 0.5 * (l + h)
			if count(mid) <= k {
				l = mid
			} else {
				h = mid
			}
		}
		evs[k] = 0.5 * (l + h)
	}
	return evs
}

// BlockPower runs subspace iteration and returns the top-k Ritz values
// (descending) and the final orthonormal basis.
func BlockPower(A Operator, k, iters int, seed int64) ([]float64, *Matrix) {
	n := A.N()
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	Q := linalg.GaussianMatrix(rng, n, k)
	orthonormalize(Q)
	for it := 0; it < iters; it++ {
		Q = A.Matvec(Q)
		orthonormalize(Q)
	}
	AQ := A.Matvec(Q)
	vals := make([]float64, k)
	for j := 0; j < k; j++ {
		vals[j] = linalg.Dot(Q.Col(j), AQ.Col(j))
	}
	// Sort descending (selection sort: k is small).
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if vals[j] > vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	return vals, Q
}

func orthonormalize(Q *Matrix) {
	for j := 0; j < Q.Cols; j++ {
		cj := Q.Col(j)
		for k := 0; k < j; k++ {
			ck := Q.Col(k)
			linalg.Axpy(-linalg.Dot(ck, cj), ck, cj)
		}
		norm := linalg.Nrm2(cj)
		if norm > 0 {
			linalg.Scal(1/norm, cj)
		}
	}
}

// Trace estimates tr(A) with Hutchinson's estimator using the given number
// of Rademacher probes, all evaluated in one block matvec.
func Trace(A Operator, probes int, seed int64) float64 {
	n := A.N()
	rng := rand.New(rand.NewSource(seed))
	Z := linalg.NewMatrix(n, probes)
	for j := 0; j < probes; j++ {
		col := Z.Col(j)
		for i := range col {
			if rng.Intn(2) == 0 {
				col[i] = 1
			} else {
				col[i] = -1
			}
		}
	}
	AZ := A.Matvec(Z)
	var est float64
	for j := 0; j < probes; j++ {
		est += linalg.Dot(Z.Col(j), AZ.Col(j))
	}
	return est / float64(probes)
}
