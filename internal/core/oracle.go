package core

import (
	"errors"
	"fmt"
)

// The nil-oracle contract. An operator loaded from the store (or from a v2
// stream with a nil oracle) serves evaluations from its persisted blocks
// alone: the compiled plan and the fully-cached interpreter never touch
// K's entries. Paths that must sample fresh entries — interpreting with
// uncached blocks, compiling a plan that would gather, building an HSS
// factorization — fail fast with ErrNoOracle instead of computing garbage.

// ErrNoOracle is returned by oracle-requiring paths of an operator that was
// loaded without its entry oracle. Recompressing against a live SPD (or
// attaching one with AttachOracle) restores those paths.
var ErrNoOracle = errors.New("core: operation requires the entry oracle, operator was loaded without one")

// noOracle is the Dim-only SPD stand-in attached to loaded operators.
type noOracle struct{ n int }

func (o noOracle) Dim() int { return o.n }

// At is unreachable through the public API: every oracle-requiring path
// checks HasOracle first and returns ErrNoOracle. The panic is the backstop
// for code that bypasses those guards, and the eval entry points' recover
// would surface it as a typed *resilience.PanicError rather than crash.
func (o noOracle) At(i, j int) float64 {
	panic(fmt.Sprintf("core: entry oracle unavailable for K[%d,%d] (operator loaded from store)", i, j))
}

// HasOracle reports whether the operator carries a live entry oracle.
// Operators built by Compress always do; operators loaded by LoadFrom (or
// ReadFrom with a nil K) do not, until AttachOracle provides one.
func (h *Hierarchical) HasOracle() bool {
	_, bare := h.K.(noOracle)
	return !bare
}

// AttachOracle installs a live entry oracle on a loaded operator, restoring
// the oracle-requiring paths (uncached interpretation, plan compilation
// with gathering, HSS factorization). The oracle's dimension must match.
func (h *Hierarchical) AttachOracle(K SPD) error {
	if K == nil {
		return fmt.Errorf("%w: nil oracle", ErrNoOracle)
	}
	if K.Dim() != h.N() {
		return fmt.Errorf("core: oracle dimension %d does not match operator %d: %w",
			K.Dim(), h.N(), ErrNoOracle)
	}
	h.K = K
	return nil
}

// interpNeedsOracle reports whether the tree interpreter would have to
// gather fresh entries for this operator: any contributing far block or
// near block without a cached copy (in either precision) forces a gather.
func (h *Hierarchical) interpNeedsOracle() bool {
	for id := range h.nodes {
		nd := &h.nodes[id]
		if len(nd.far) > 0 && len(nd.skel) > 0 && nd.cacheFar == nil && nd.cacheFar32 == nil {
			return true
		}
		if h.Tree.IsLeaf(id) && len(nd.near) > 0 && nd.cacheNear == nil && nd.cacheNear32 == nil {
			return true
		}
	}
	return false
}

// requireEvalOracle is the typed-error guard on the evaluation entry
// points: oracle-free operators may only be interpreted when fully cached.
func (h *Hierarchical) requireEvalOracle(op string) error {
	if !h.HasOracle() && h.interpNeedsOracle() {
		return fmt.Errorf("core: %s needs uncached blocks: %w", op, ErrNoOracle)
	}
	return nil
}
