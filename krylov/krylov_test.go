package krylov

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gofmm/internal/linalg"
)

func spd(rng *rand.Rand, n int, cond float64) *Matrix {
	return linalg.RandomSPD(rng, n, cond)
}

func TestCGSolvesSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	A := spd(rng, 60, 100)
	xTrue := make([]float64, 60)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, 60)
	linalg.Gemv(false, 1, A, xTrue, 0, b)
	x, res, err := CG(Dense{A}, nil, b, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g (res %.2e after %d iters)", i, x[i], xTrue[i], res.Residual, res.Iterations)
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	A := spd(rng, 10, 10)
	x, res, err := CG(Dense{A}, nil, make([]float64, 10), 1e-10, 10)
	if err != nil || res.Iterations != 0 {
		t.Fatalf("zero rhs: %v %+v", err, res)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
}

func TestCGNotConverged(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	A := spd(rng, 50, 1e8) // very ill-conditioned
	b := make([]float64, 50)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, res, err := CG(Dense{A}, nil, b, 1e-14, 3)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("expected ErrNotConverged, got %v (res %+v)", err, res)
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	A := linalg.FromRows([][]float64{{1, 0}, {0, -1}})
	b := []float64{1, 1}
	_, _, err := CG(Dense{A}, nil, b, 1e-10, 10)
	if err == nil {
		t.Fatal("expected error for indefinite operator")
	}
}

// identityPrec is a trivial preconditioner for plumbing tests.
type identityPrec struct{}

func (identityPrec) Solve(B *Matrix) *Matrix { return B.Clone() }

// exactPrec solves with the true inverse: CG must converge in one step.
type exactPrec struct{ inv *Matrix }

func (p exactPrec) Solve(B *Matrix) *Matrix { return linalg.MatMul(false, false, p.inv, B) }

func TestPCGExactPreconditionerOneIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	A := spd(rng, 40, 1e6)
	inv, err := linalg.InvertSPD(A)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, res, err := CG(Dense{A}, exactPrec{inv}, b, 1e-10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("exact preconditioner took %d iterations", res.Iterations)
	}
	// Identity preconditioner must match plain CG's iteration count.
	_, plain, _ := CG(Dense{A}, nil, b, 1e-10, 500)
	_, ident, _ := CG(Dense{A}, identityPrec{}, b, 1e-10, 500)
	if plain.Iterations != ident.Iterations {
		t.Fatalf("identity preconditioner changed iterations: %d vs %d", ident.Iterations, plain.Iterations)
	}
}

func TestLanczosFindsSpectrumEdges(t *testing.T) {

	// Diagonal matrix with known spectrum.
	d := make([]float64, 80)
	for i := range d {
		d[i] = float64(i + 1)
	}
	A := linalg.Diag(d)
	evs := Lanczos(Dense{A}, 40, 6)
	if math.Abs(evs[0]-80) > 1e-6 {
		t.Fatalf("largest eigenvalue estimate %g, want 80", evs[0])
	}
	if math.Abs(evs[len(evs)-1]-1) > 1e-6 {
		t.Fatalf("smallest eigenvalue estimate %g, want 1", evs[len(evs)-1])
	}
}

func TestTridiagEigenvalues(t *testing.T) {
	// 1-D Laplacian tridiag(-1, 2, -1) of size n has eigenvalues
	// 2 − 2cos(kπ/(n+1)).
	n := 12
	a := make([]float64, n)
	b := make([]float64, n-1)
	for i := range a {
		a[i] = 2
	}
	for i := range b {
		b[i] = -1
	}
	evs := TridiagEigenvalues(a, b)
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(evs[k-1]-want) > 1e-9 {
			t.Fatalf("eigenvalue %d = %.12f, want %.12f", k, evs[k-1], want)
		}
	}
}

func TestTridiagEigenvaluesEdge(t *testing.T) {
	if out := TridiagEigenvalues(nil, nil); out != nil {
		t.Fatal("empty input should return nil")
	}
	out := TridiagEigenvalues([]float64{7}, nil)
	if len(out) != 1 || math.Abs(out[0]-7) > 1e-12 {
		t.Fatalf("1×1 case: %v", out)
	}
}

func TestBlockPower(t *testing.T) {
	d := make([]float64, 50)
	for i := range d {
		d[i] = float64(i + 1)
	}
	A := linalg.Diag(d)
	vals, Q := BlockPower(Dense{A}, 3, 400, 8)
	want := []float64{50, 49, 48}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-2 {
			t.Fatalf("Ritz value %d = %g, want %g", i, vals[i], want[i])
		}
	}
	// Basis orthonormal.
	QtQ := linalg.MatMul(true, false, Q, Q)
	if d := linalg.RelFrobDiff(QtQ, linalg.Eye(3)); d > 1e-10 {
		t.Fatalf("basis not orthonormal: %g", d)
	}
}

func TestTraceUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	A := spd(rng, 60, 10)
	var exact float64
	for i := 0; i < 60; i++ {
		exact += A.At(i, i)
	}
	est := Trace(Dense{A}, 500, 10)
	if math.Abs(est-exact)/math.Abs(exact) > 0.1 {
		t.Fatalf("trace estimate %g vs exact %g", est, exact)
	}
}

func TestShiftedOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	A := spd(rng, 20, 10)
	s := Shifted{A: Dense{A}, Sigma: 2.5}
	W := linalg.GaussianMatrix(rng, 20, 2)
	got := s.Matvec(W)
	want := linalg.MatMul(false, false, A, W)
	want.AddScaled(2.5, W)
	if d := linalg.RelFrobDiff(got, want); d > 1e-14 {
		t.Fatalf("shifted matvec error %g", d)
	}
	if s.N() != 20 {
		t.Fatal("shifted dim wrong")
	}
}

func TestCGPropertyRandomSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		A := spd(rng, n, 100)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, _, err := CG(Dense{A}, nil, b, 1e-10, 10*n)
		if err != nil {
			return false
		}
		r := make([]float64, n)
		linalg.Gemv(false, 1, A, x, 0, r)
		linalg.Axpy(-1, b, r)
		return linalg.Nrm2(r) < 1e-7*linalg.Nrm2(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
