// Package unsafeview confines unsafe to the zero-copy view layer and
// checks that the code there follows the one blessed idiom.
//
// Rule 1 — allowlist. Only internal/store/view.go and the linalg
// accelerator shims may import unsafe; an import anywhere else is a
// diagnostic. Growing the allowlist is a deliberate review decision, not a
// side effect of a convenient cast.
//
// Rule 2 — no uintptr round-trips. Converting a uintptr back to
// unsafe.Pointer is forbidden everywhere, allowlist included: the GC may
// move or free the object between the two conversions. (The forward
// direction — uintptr(unsafe.Pointer(p)) for an alignment comparison — is
// fine; the integer never comes back.)
//
// Rule 3 — alignment check before cast. Inside the allowlist, a
// reinterpreting cast must be the view idiom:
//
//	unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/size)
//
// where every path to the cast passes b through an alignment check — an
// inline `uintptr(unsafe.Pointer(unsafe.SliceData(b))) % size` test or a
// call to a same-package checker function built around one (store's
// `viewable`). The must-reach condition is solved on the control-flow
// graph, so a branch that skips the check is caught even when another
// path performs it. Casts to *byte are exempt (byte has no alignment),
// and any unsafe.Pointer cast outside the idiom is a diagnostic.
package unsafeview

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gofmm/internal/analysis/framework"
	"gofmm/internal/analysis/framework/cfg"
)

// Analyzer is the unsafeview analyzer.
var Analyzer = &framework.Analyzer{
	Name: "unsafeview",
	Doc: "confine unsafe to the view-layer allowlist (store/view.go, linalg " +
		"shims); inside it require the alignment-check-before-cast idiom and " +
		"forbid uintptr-to-pointer round-trips",
	Run: run,
}

// allowlisted reports whether filename may import unsafe.
func allowlisted(filename string) bool {
	return strings.HasSuffix(filename, "store/view.go") ||
		strings.Contains(filename, "/linalg/")
}

func run(pass *framework.Pass) error {
	c := &checker{pass: pass, checkers: collectCheckers(pass)}
	for _, file := range pass.Syntax {
		filename := pass.Fset.File(file.Pos()).Name()
		usesUnsafe := false
		for _, imp := range file.Imports {
			if imp.Path.Value == `"unsafe"` {
				usesUnsafe = true
				if !allowlisted(filename) && !pass.InTestFile(imp.Pos()) {
					pass.Reportf(imp.Pos(),
						"import of unsafe outside the view-layer allowlist (store/view.go, linalg shims); copy data through safe APIs or extend the allowlist deliberately")
				}
			}
		}
		if !usesUnsafe {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					c.checkFunc(d.Body)
				}
			case *ast.GenDecl:
				// Package-level var initializers (hostLittleEndian).
				ast.Inspect(d, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						c.checkFunc(fl.Body)
						return false
					}
					return true
				})
			}
		}
	}
	return nil
}

type checker struct {
	pass *framework.Pass
	// checkers are same-package functions that alignment-check a slice
	// parameter, mapped to the index of that parameter.
	checkers map[*types.Func]int
}

// collectCheckers finds functions whose body applies the alignment test to
// one of their slice parameters.
func collectCheckers(pass *framework.Pass) map[*types.Func]int {
	out := map[*types.Func]int{}
	for _, file := range pass.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			params := fn.Type().(*types.Signature).Params()
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				obj := alignmentCheckedObj(pass.TypesInfo, n)
				if obj == nil {
					return true
				}
				for i := 0; i < params.Len(); i++ {
					if params.At(i) == obj {
						out[fn] = i
					}
				}
				return true
			})
		}
	}
	return out
}

// alignmentCheckedObj matches the inline alignment test
// `uintptr(unsafe.Pointer(unsafe.SliceData(x))) % k` and returns x's
// object.
func alignmentCheckedObj(info *types.Info, n ast.Node) types.Object {
	be, ok := n.(*ast.BinaryExpr)
	if !ok || be.Op != token.REM {
		return nil
	}
	conv, ok := ast.Unparen(be.X).(*ast.CallExpr)
	if !ok || len(conv.Args) != 1 {
		return nil
	}
	if tv, ok := info.Types[conv.Fun]; !ok || !tv.IsType() || !types.Identical(tv.Type, types.Typ[types.Uintptr]) {
		return nil
	}
	ptr, ok := ast.Unparen(conv.Args[0]).(*ast.CallExpr)
	if !ok || !isUnsafeCall(info, ptr, "Pointer") || len(ptr.Args) != 1 {
		return nil
	}
	sd, ok := ast.Unparen(ptr.Args[0]).(*ast.CallExpr)
	if !ok || !isUnsafeCall(info, sd, "SliceData") || len(sd.Args) != 1 {
		return nil
	}
	return framework.ObjectOf(info, sd.Args[0])
}

// isUnsafeCall matches unsafe.<name>(...): both the builtin-like members
// (Pointer is a type, Slice/SliceData are builtins) resolve through the
// unsafe package selector.
func isUnsafeCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "unsafe"
}

// checkedFact is the must-alignment-checked object set.
type checkedFact map[types.Object]bool

func (f checkedFact) clone() checkedFact {
	out := make(checkedFact, len(f)+1)
	for k := range f {
		out[k] = true
	}
	return out
}

type checkedAnalysis struct{ c *checker }

func (a checkedAnalysis) EntryFact() cfg.Fact { return checkedFact{} }

func (a checkedAnalysis) Transfer(f cfg.Fact, n ast.Node) cfg.Fact {
	in := f.(checkedFact)
	out := in
	cfg.Walk(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if obj := alignmentCheckedObj(a.c.pass.TypesInfo, x); obj != nil {
			out = out.clone()
			out[obj] = true
			return true
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if fn := framework.CalleeFunc(a.c.pass.TypesInfo, call); fn != nil {
				if idx, ok := a.c.checkers[fn]; ok && idx < len(call.Args) {
					if obj := framework.ObjectOf(a.c.pass.TypesInfo, call.Args[idx]); obj != nil {
						out = out.clone()
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}

func (a checkedAnalysis) Merge(x, y cfg.Fact) cfg.Fact {
	xs, ys := x.(checkedFact), y.(checkedFact)
	out := checkedFact{}
	for k := range xs {
		if ys[k] {
			out[k] = true
		}
	}
	return out
}

func (a checkedAnalysis) Equal(x, y cfg.Fact) bool {
	xs, ys := x.(checkedFact), y.(checkedFact)
	if len(xs) != len(ys) {
		return false
	}
	for k := range xs {
		if !ys[k] {
			return false
		}
	}
	return true
}

// checkFunc validates every unsafe use in body under the must-checked
// facts.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	g := cfg.New(body)
	res := cfg.Solve(g, checkedAnalysis{c: c})
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			before, ok := res.Before(n)
			if !ok {
				continue
			}
			c.checkNode(n, before.(checkedFact))
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.checkFunc(fl.Body)
			return false
		}
		return true
	})
}

func (c *checker) checkNode(n ast.Node, checked checkedFact) {
	info := c.pass.TypesInfo
	// Conversions consumed by a validated unsafe.Slice are not re-reported.
	blessed := map[ast.Expr]bool{}
	cfg.Walk(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 2: uintptr → unsafe.Pointer.
		if isUnsafeCall(info, call, "Pointer") && len(call.Args) == 1 {
			if t := info.TypeOf(call.Args[0]); t != nil && types.Identical(t.Underlying(), types.Typ[types.Uintptr]) {
				c.pass.Reportf(call.Pos(),
					"uintptr-to-unsafe.Pointer round-trip: the object may move or be freed between the conversions; keep the unsafe.Pointer form throughout")
			}
			return true
		}
		// Rule 3: unsafe.Slice over the blessed idiom.
		if isUnsafeCall(info, call, "Slice") && len(call.Args) == 2 {
			c.checkSliceCast(call, checked, blessed)
			return true
		}
		// Stray reinterpreting casts: (*T)(p) for unsafe.Pointer p.
		if conv, elem := pointerConversion(info, call); conv != nil && !blessed[conv] {
			if !types.Identical(elem, types.Typ[types.Byte]) {
				c.pass.Reportf(call.Pos(),
					"unsafe.Pointer cast to %s outside the view idiom; use unsafe.Slice over an alignment-checked buffer (or copy)", "*"+elem.String())
			}
		}
		return true
	})
}

// checkSliceCast validates `unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(b))), n)`.
func (c *checker) checkSliceCast(call *ast.CallExpr, checked checkedFact, blessed map[ast.Expr]bool) {
	info := c.pass.TypesInfo
	arg := ast.Unparen(call.Args[0])
	conv, ok := arg.(*ast.CallExpr)
	var elem types.Type
	if ok {
		var cexpr *ast.CallExpr
		cexpr, elem = pointerConversion(info, conv)
		if cexpr == nil {
			ok = false
		}
	}
	if !ok {
		c.pass.Reportf(call.Pos(),
			"unsafe.Slice operand is not the view idiom (*T)(unsafe.Pointer(unsafe.SliceData(buf)))")
		return
	}
	blessed[ast.Expr(conv)] = true
	if types.Identical(elem, types.Typ[types.Byte]) {
		return // byte views need no alignment, whatever the pointer's origin
	}
	ptr, pok := ast.Unparen(conv.Args[0]).(*ast.CallExpr)
	if !pok || !isUnsafeCall(info, ptr, "Pointer") || len(ptr.Args) != 1 {
		c.pass.Reportf(call.Pos(),
			"unsafe.Slice operand is not the view idiom (*T)(unsafe.Pointer(unsafe.SliceData(buf)))")
		return
	}
	sd, sok := ast.Unparen(ptr.Args[0]).(*ast.CallExpr)
	if !sok || !isUnsafeCall(info, sd, "SliceData") || len(sd.Args) != 1 {
		c.pass.Reportf(call.Pos(),
			"unsafe.Slice operand is not the view idiom (*T)(unsafe.Pointer(unsafe.SliceData(buf)))")
		return
	}
	obj := framework.ObjectOf(info, sd.Args[0])
	if obj == nil || !checked[obj] {
		name := "the buffer"
		if obj != nil {
			name = obj.Name()
		}
		c.pass.Reportf(call.Pos(),
			"reinterpreting %s without an alignment check on every path to this cast; test uintptr(unsafe.Pointer(unsafe.SliceData(%s))) %% elemSize first (store.viewable style)",
			name, name)
	}
}

// pointerConversion matches a conversion call `(*T)(x)` returning the call
// and T; nil when call is not a pointer-type conversion of an
// unsafe.Pointer-typed operand.
func pointerConversion(info *types.Info, call *ast.CallExpr) (*ast.CallExpr, types.Type) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return nil, nil
	}
	pt, ok := tv.Type.Underlying().(*types.Pointer)
	if !ok {
		return nil, nil
	}
	at := info.TypeOf(call.Args[0])
	if at == nil || !types.Identical(at.Underlying(), types.Typ[types.UnsafePointer]) {
		return nil, nil
	}
	return call, pt.Elem()
}
