package krylov

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
)

// blockTestSPD builds a well-conditioned random SPD matrix G·Gᵀ + n·I.
func blockTestSPD(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	G := linalg.GaussianMatrix(rng, n, n)
	K := linalg.MatMul(false, true, G, G)
	for i := 0; i < n; i++ {
		K.Add(i, i, float64(n))
	}
	return K
}

func TestBlockCGSolvesAllColumns(t *testing.T) {
	const n, r = 96, 5
	A := blockTestSPD(n, 11)
	rng := rand.New(rand.NewSource(12))
	B := linalg.GaussianMatrix(rng, n, r)

	X, res, err := BlockCG(Dense{A}, nil, B, 1e-10, 400)
	if err != nil {
		t.Fatalf("BlockCG: %v (after %d iterations, max residual %.3e)", err, res.Iterations, res.MaxResidual)
	}
	// Verify against the true residual, not the recursively updated one.
	R := B.Clone()
	R.AddScaled(-1, linalg.MatMul(false, false, A, X))
	for j := 0; j < r; j++ {
		rel := linalg.Nrm2(R.Col(j)) / linalg.Nrm2(B.Col(j))
		if rel > 1e-8 {
			t.Errorf("column %d: true relative residual %.3e", j, rel)
		}
	}
	if len(res.Residuals) != r {
		t.Errorf("got %d per-column residuals, want %d", len(res.Residuals), r)
	}
}

// TestBlockCGMatchesColumnwiseCG checks the block solve agrees with r
// independent single-vector CG solves, and that the shared Krylov subspace
// needs no more iterations than the worst single solve.
func TestBlockCGMatchesColumnwiseCG(t *testing.T) {
	const n, r = 96, 4
	A := blockTestSPD(n, 21)
	rng := rand.New(rand.NewSource(22))
	B := linalg.GaussianMatrix(rng, n, r)

	X, res, err := BlockCG(Dense{A}, nil, B, 1e-10, 400)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0
	for j := 0; j < r; j++ {
		xj, cgRes, err := CG(Dense{A}, nil, B.Col(j), 1e-10, 400)
		if err != nil {
			t.Fatal(err)
		}
		if cgRes.Iterations > worst {
			worst = cgRes.Iterations
		}
		for i := 0; i < n; i++ {
			if d := math.Abs(X.At(i, j) - xj[i]); d > 1e-7 {
				t.Fatalf("column %d row %d: block vs single CG differ by %.3e", j, i, d)
			}
		}
	}
	t.Logf("block CG: %d iterations for %d systems; worst single CG: %d", res.Iterations, r, worst)
	if res.Iterations > worst+5 {
		t.Errorf("block CG took %d iterations, notably more than worst single solve (%d)", res.Iterations, worst)
	}
}

func TestBlockCGPreconditioned(t *testing.T) {
	const n, r = 96, 3
	A := blockTestSPD(n, 31)
	rng := rand.New(rand.NewSource(32))
	B := linalg.GaussianMatrix(rng, n, r)

	_, plain, err := BlockCG(Dense{A}, nil, B, 1e-10, 400)
	if err != nil {
		t.Fatal(err)
	}
	X, pre, err := BlockCG(Dense{A}, jacobi{A}, B, 1e-10, 400)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Iterations > plain.Iterations {
		t.Errorf("Jacobi-preconditioned block CG took %d iterations vs %d unpreconditioned", pre.Iterations, plain.Iterations)
	}
	R := B.Clone()
	R.AddScaled(-1, linalg.MatMul(false, false, A, X))
	for j := 0; j < r; j++ {
		if rel := linalg.Nrm2(R.Col(j)) / linalg.Nrm2(B.Col(j)); rel > 1e-8 {
			t.Errorf("preconditioned column %d: true relative residual %.3e", j, rel)
		}
	}
}

// jacobi is a diagonal preconditioner over a dense matrix.
type jacobi struct{ M *Matrix }

func (p jacobi) Solve(R *Matrix) *Matrix {
	Z := R.Clone()
	for j := 0; j < Z.Cols; j++ {
		c := Z.Col(j)
		for i := range c {
			c[i] /= p.M.At(i, i)
		}
	}
	return Z
}

func TestBlockCGEdgeCases(t *testing.T) {
	const n = 64
	A := blockTestSPD(n, 41)

	// Zero right-hand side block: exact zero solution, zero iterations.
	X, res, err := BlockCG(Dense{A}, nil, linalg.NewMatrix(n, 2), 1e-10, 100)
	if err != nil || res.Iterations != 0 {
		t.Fatalf("all-zero B: err=%v iterations=%d", err, res.Iterations)
	}
	for j := 0; j < 2; j++ {
		if nrm := linalg.Nrm2(X.Col(j)); nrm != 0 {
			t.Errorf("all-zero B column %d: ‖x‖ = %g", j, nrm)
		}
	}

	// Zero-column block width.
	if X, _, err := BlockCG(Dense{A}, nil, linalg.NewMatrix(n, 0), 1e-10, 100); err != nil || X.Cols != 0 {
		t.Fatalf("r=0: err=%v cols=%d", err, X.Cols)
	}

	// Dimension mismatch is an error, not a panic.
	if _, _, err := BlockCG(Dense{A}, nil, linalg.NewMatrix(n+1, 1), 1e-10, 100); err == nil {
		t.Fatal("dimension mismatch accepted")
	}

	// Duplicated right-hand sides make ZᵀR singular: expect a typed
	// breakdown (or convergence before the dependency bites, which the
	// rank-1 duplication here makes impossible in one step).
	rng := rand.New(rand.NewSource(42))
	b := linalg.GaussianMatrix(rng, n, 1)
	dup := linalg.NewMatrix(n, 2)
	copy(dup.Col(0), b.Col(0))
	copy(dup.Col(1), b.Col(0))
	_, _, err = BlockCG(Dense{A}, nil, dup, 1e-12, 100)
	if err != nil && !errors.Is(err, ErrBreakdown) && !errors.Is(err, ErrNotConverged) {
		t.Fatalf("duplicated columns: want ErrBreakdown/ErrNotConverged/nil, got %v", err)
	}
}
