package core

import (
	"bytes"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
)

// Serialization intentionally skips fp32 caches (the loaded form re-gathers
// blocks in fp64 on demand); the reloaded operator is therefore at least as
// accurate as the saved one and must agree to the fp32 storage error.
func TestSerializeWithSingleCache(t *testing.T) {
	rng := rand.New(rand.NewSource(210))
	Kd, _ := gaussKernelMatrix(rng, 300, 0.8)
	h, err := Compress(denseSPD{Kd}, Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-7, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 211, CacheBlocks: true,
		CacheSingle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadFrom(&buf, denseSPD{Kd})
	if err != nil {
		t.Fatal(err)
	}
	W := linalg.GaussianMatrix(rng, 300, 2)
	U1 := h.Matvec(W)
	U2 := h2.Matvec(W)
	if d := linalg.RelFrobDiff(U1, U2); d > 1e-6 {
		t.Fatalf("fp32-cached vs reloaded differ by %g", d)
	}
}
