package linalg

// Single-precision storage support. The paper runs its K02–K18 and G01–G05
// experiments in fp32; this reproduction computes in float64 but can store
// the cached near/far blocks — the dominant memory consumer — in float32,
// halving their footprint at a ~1e-7 relative accuracy floor (which is also
// what the paper's single-precision runs see).

// Matrix32 is a dense column-major float32 matrix used for block storage.
type Matrix32 struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// NewMatrix32 allocates a zeroed r×c single-precision matrix.
func NewMatrix32(r, c int) *Matrix32 {
	return &Matrix32{Rows: r, Cols: c, Stride: max(r, 1), Data: make([]float32, max(r, 1)*c)}
}

// ToMatrix32 converts (rounds) a float64 matrix to float32 storage.
func ToMatrix32(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		dst := out.Col(j)
		for i, v := range src {
			dst[i] = float32(v)
		}
	}
	return out
}

// Col returns column j as a slice view.
func (m *Matrix32) Col(j int) []float32 {
	off := j * m.Stride
	return m.Data[off : off+m.Rows : off+m.Rows]
}

// At returns element (i, j) widened to float64.
func (m *Matrix32) At(i, j int) float64 { return float64(m.Data[j*m.Stride+i]) }

// ToMatrix widens back to float64 (exact).
func (m *Matrix32) ToMatrix() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		dst := out.Col(j)
		for i, v := range src {
			dst[i] = float64(v)
		}
	}
	return out
}

// Bytes returns the storage footprint.
func (m *Matrix32) Bytes() int64 { return int64(m.Rows) * int64(m.Cols) * 4 }

// GemmMixed computes C = alpha·A·B + beta·C where A is stored in float32 and
// the accumulation is in float64 — the mixed-precision product used when
// cached blocks are kept in single precision.
func GemmMixed(alpha float64, A *Matrix32, B *Matrix, beta float64, C *Matrix) {
	m, k := A.Rows, A.Cols
	if B.Rows != k || C.Rows != m || C.Cols != B.Cols {
		panic("linalg: GemmMixed dimension mismatch")
	}
	if beta != 1 {
		if beta == 0 {
			C.Zero()
		} else {
			C.Scale(beta)
		}
	}
	if alpha == 0 || m == 0 || k == 0 {
		return
	}
	parallelFor(B.Cols, 8, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			cj := C.Col(j)
			bj := B.Col(j)
			for kk := 0; kk < k; kk++ {
				ak := A.Col(kk)
				s := alpha * bj[kk]
				if s == 0 {
					continue
				}
				for i := 0; i < m; i++ {
					cj[i] += s * float64(ak[i])
				}
			}
		}
	})
}
