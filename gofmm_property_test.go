package gofmm

// Metamorphic property-test harness for the batched evaluation path. The
// compressed operator K̃ is a fixed linear map once Compress returns, so
// three algebraic identities must hold regardless of tolerance or distance:
//
//	(a) batching is invisible: column j of Matmat(K̃, X) equals
//	    Matvec(K̃, x_j) to near-machine precision (the passes visit nodes in
//	    the same order and each GEMM column accumulates independently);
//	(b) linearity: K̃(a·x + b·y) = a·K̃x + b·K̃y;
//	(c) symmetry: ⟨K̃x, y⟩ = ⟨x, K̃y⟩ (K̃ = D + S + UV is symmetric by
//	    construction, so this holds to rounding — far below the compression
//	    tolerance).
//
// The harness sweeps {angle, kernel} × {adaptive, fixed-rank} over
// randomized SPD matrices, so a regression in any pass kernel, the
// workspace threading, or the batched entry point trips at least one
// identity.

import (
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
)

// randomSPD builds a well-conditioned random SPD matrix G·Gᵀ + n·I.
func randomSPD(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	G := linalg.GaussianMatrix(rng, n, n)
	K := linalg.MatMul(false, true, G, G)
	for i := 0; i < n; i++ {
		K.Add(i, i, float64(n))
	}
	return K
}

// propertyCases is the {distance} × {skeletonization mode} grid shared by
// all three metamorphic properties.
func propertyCases() []struct {
	name     string
	dist     core.Distance
	adaptive bool
} {
	return []struct {
		name     string
		dist     core.Distance
		adaptive bool
	}{
		{"angle/adaptive", core.Angle, true},
		{"angle/fixedrank", core.Angle, false},
		{"kernel/adaptive", core.Kernel, true},
		{"kernel/fixedrank", core.Kernel, false},
	}
}

func propertyCompress(t *testing.T, K *Matrix, dist core.Distance, adaptive bool) *Hierarchical {
	t.Helper()
	cfg := Config{
		LeafSize: 32, MaxRank: 48, Kappa: 8, Budget: 0.05,
		Distance: dist, Exec: core.Sequential, Seed: 3, CacheBlocks: true,
		Workspace: NewWorkspacePool(),
	}
	if adaptive {
		cfg.Tol = 1e-5
	} else {
		// Fixed-rank mode: an unreachable tolerance saturates every node at
		// MaxRank.
		cfg.Tol = 1e-12
		cfg.MaxRank = 24
	}
	h, err := Compress(NewDense(K), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// maxAbsDiff returns max_i |a_i − b_i|.
func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestPropertyMatmatMatchesMatvecColumns is property (a): batching must be
// invisible. Each column of a batched evaluation agrees with the
// single-vector evaluation of that column to 1e-13 (relative to the
// column's scale).
func TestPropertyMatmatMatchesMatvecColumns(t *testing.T) {
	const n, r = 256, 7
	K := randomSPD(n, 101)
	rng := rand.New(rand.NewSource(5))
	X := linalg.GaussianMatrix(rng, n, r)
	for _, tc := range propertyCases() {
		t.Run(tc.name, func(t *testing.T) {
			h := propertyCompress(t, K, tc.dist, tc.adaptive)
			U := h.Matmat(X)
			for j := 0; j < r; j++ {
				xj := linalg.NewMatrix(n, 1)
				copy(xj.Col(0), X.Col(j))
				uj := h.Matvec(xj)
				scale := linalg.Nrm2(uj.Col(0)) + 1
				if d := maxAbsDiff(U.Col(j), uj.Col(0)); d > 1e-13*scale {
					t.Errorf("column %d: batched vs single-vector differ by %.3e (scale %.3e)", j, d, scale)
				}
			}
		})
	}
}

// TestPropertyLinearity is property (b): K̃(a·x + b·y) = a·K̃x + b·K̃y.
// The two sides run the same kernels on different inputs, so they agree to
// rounding, far below the compression tolerance.
func TestPropertyLinearity(t *testing.T) {
	const n = 256
	K := randomSPD(n, 202)
	rng := rand.New(rand.NewSource(6))
	x := linalg.GaussianMatrix(rng, n, 1)
	y := linalg.GaussianMatrix(rng, n, 1)
	const a, b = 1.75, -0.3125 // exactly representable scalars
	for _, tc := range propertyCases() {
		t.Run(tc.name, func(t *testing.T) {
			h := propertyCompress(t, K, tc.dist, tc.adaptive)
			axby := linalg.NewMatrix(n, 1)
			for i := 0; i < n; i++ {
				axby.Set(i, 0, a*x.At(i, 0)+b*y.At(i, 0))
			}
			lhs := h.Matvec(axby)
			ux, uy := h.Matvec(x), h.Matvec(y)
			rhs := linalg.NewMatrix(n, 1)
			for i := 0; i < n; i++ {
				rhs.Set(i, 0, a*ux.At(i, 0)+b*uy.At(i, 0))
			}
			scale := lhs.FrobeniusNorm() + 1
			if d := maxAbsDiff(lhs.Col(0), rhs.Col(0)); d > 1e-11*scale {
				t.Errorf("linearity violated by %.3e (scale %.3e)", d, scale)
			}
		})
	}
}

// TestPropertySymmetry is property (c): ⟨K̃x, y⟩ = ⟨x, K̃y⟩. The compressed
// operator is symmetric by construction (the near list is symmetrized and
// far blocks come in transposed pairs), so the two inner products agree
// well within the compression tolerance.
func TestPropertySymmetry(t *testing.T) {
	const n = 256
	K := randomSPD(n, 303)
	rng := rand.New(rand.NewSource(7))
	x := linalg.GaussianMatrix(rng, n, 1)
	y := linalg.GaussianMatrix(rng, n, 1)
	for _, tc := range propertyCases() {
		t.Run(tc.name, func(t *testing.T) {
			h := propertyCompress(t, K, tc.dist, tc.adaptive)
			kx, ky := h.Matvec(x), h.Matvec(y)
			kxy := linalg.Dot(kx.Col(0), y.Col(0))
			xky := linalg.Dot(x.Col(0), ky.Col(0))
			// Compare against the magnitude of the inner products; the
			// compression tolerance (1e-5 adaptive, looser fixed-rank) is the
			// natural yardstick, with rounding far beneath it.
			scale := math.Max(math.Abs(kxy), math.Abs(xky)) + 1
			tol := 1e-5
			if !tc.adaptive {
				tol = 1e-3
			}
			if d := math.Abs(kxy - xky); d > tol*scale {
				t.Errorf("symmetry violated: <Kx,y>=%.12e vs <x,Ky>=%.12e (diff %.3e)", kxy, xky, d)
			}
		})
	}
}
