package experiments

import (
	"io"
	"math/rand"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
)

// Fig1 reproduces Figure 1: dense GEMM's O(N²) matvec versus GOFMM's
// O(N log N) compression + O(N) evaluation across problem sizes N and
// right-hand-side counts r. The paper uses K02 at N up to 147 456 with MKL
// SGEMM; here a smooth dense kernel matrix stands in (same rank structure)
// and the dense baseline is this repo's blocked GEMM, so the crossover
// moves but the scaling shapes and the existence of a crossover are
// preserved.
func Fig1(w io.Writer, sizes, ranks []int, seed int64) []Result {
	header(w, "N", "r", "dense-GEMM(s)", "compress(s)", "eval(s)", "eps2", "speedup")
	var out []Result
	for _, n := range sizes {
		p := GetProblem("K05", n, seed) // smooth 6-D Gaussian kernel
		M := DenseKernel(p)
		for _, r := range ranks {
			rng := rand.New(rand.NewSource(seed + int64(r)))
			W := linalg.GaussianMatrix(rng, n, r)
			// Dense baseline: one GEMM.
			t0 := time.Now()
			U := linalg.MatMul(false, false, M, W)
			denseSec := time.Since(t0).Seconds()
			_ = U
			// GOFMM: compress once per (N, r) to keep rows independent.
			res := Run(p, core.Config{
				LeafSize: 128, MaxRank: 128, Tol: 1e-4, Kappa: 32,
				Budget: 0.03, Distance: core.Angle, Exec: core.Dynamic,
				NumWorkers: 2, CacheBlocks: true, Seed: seed,
			}, r, seed)
			res.Experiment = "fig1"
			res.Scheme = "gofmm"
			out = append(out, res)
			speedup := denseSec / res.EvalS
			cell(w, "%d", n)
			cell(w, "%d", r)
			cell(w, "%.3f", denseSec)
			cell(w, "%.3f", res.CompressS)
			cell(w, "%.4f", res.EvalS)
			cell(w, "%.1e", res.Eps)
			cell(w, "%.1fx", speedup)
			endRow(w)
		}
	}
	return out
}
