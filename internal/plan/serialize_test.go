package plan

import (
	"errors"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
)

// buildTestPlan lowers a small schedule with every op kind and a batchable
// GEMM run.
func buildTestPlan(t *testing.T) *Plan {
	t.Helper()
	n := 8
	b := NewBuilder(n)
	in := b.Region(n)
	mid := b.Region(n)
	out := b.Region(n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = n - 1 - i
	}
	A := linalg.Eye(4)
	A32 := linalg.ToMatrix32(linalg.Eye(4))
	half := func(r Ref, lo int) Ref { return Ref{Base: r.Base, Sub: lo, Rows: 4, Span: n} }
	b.BeginStage("gather", false)
	b.BeginTask()
	b.Gather(idx, in)
	b.BeginStage("work", true)
	// Two same-shape single-GEMM tasks: the batcher merges them.
	b.BeginTask()
	b.Gemm(false, A, half(in, 0), half(mid, 0), 0)
	b.BeginTask()
	b.Gemm(false, A, half(in, 4), half(mid, 4), 0)
	b.BeginStage("mixed", true)
	b.BeginTask()
	b.GemmMixed(A32, half(mid, 0), half(out, 0), 0)
	b.BeginTask()
	b.Zero(half(out, 4))
	b.BeginTask()
	b.Add(half(mid, 4), half(out, 4))
	b.BeginStage("finish", false)
	b.BeginTask()
	b.Copy(out, mid)
	b.Scatter(mid, idx)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestReassembleRoundTrip(t *testing.T) {
	p := buildTestPlan(t)
	q, err := Reassemble(p.N(), p.ArenaRows(), p.Ops(), p.StageSpecs())
	if err != nil {
		t.Fatalf("Reassemble: %v", err)
	}
	if q.Digest() != p.Digest() {
		t.Fatalf("digest changed across reassembly:\n  %s\n  %s", p.DigestHex(), q.DigestHex())
	}
	if q.NumOps() != p.NumOps() || q.NumStages() != p.NumStages() || q.NumTasks() != p.NumTasks() {
		t.Errorf("structure changed: ops %d/%d stages %d/%d tasks %d/%d",
			q.NumOps(), p.NumOps(), q.NumStages(), p.NumStages(), q.NumTasks(), p.NumTasks())
	}
	if q.BatchedGemms() != p.BatchedGemms() || q.GemmBatches() != p.GemmBatches() {
		t.Errorf("batching stats changed: %d/%d batched, %d/%d batches",
			q.BatchedGemms(), p.BatchedGemms(), q.GemmBatches(), p.GemmBatches())
	}
	if q.FlopsPerCol() != p.FlopsPerCol() {
		t.Errorf("flops changed: %g vs %g", q.FlopsPerCol(), p.FlopsPerCol())
	}
}

func TestReassembleRejectsMalformedStructure(t *testing.T) {
	p := buildTestPlan(t)
	ops := p.Ops()
	specs := p.StageSpecs()
	check := func(name string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !errors.Is(err, resilience.ErrInvalidInput) {
			t.Fatalf("%s: untyped error %v", name, err)
		}
	}
	// Ref outside the arena.
	bad := append([]Op(nil), ops...)
	bad[1].C.Base = 1 << 40
	_, err := Reassemble(p.N(), p.ArenaRows(), bad, specs)
	check("oversized ref", err)
	// Gather index out of range.
	bad = append([]Op(nil), ops...)
	bad[0].Idx = append([]int(nil), bad[0].Idx...)
	bad[0].Idx[0] = p.N()
	_, err = Reassemble(p.N(), p.ArenaRows(), bad, specs)
	check("gather index", err)
	// GEMM with both operands.
	bad = append([]Op(nil), ops...)
	for i := range bad {
		if bad[i].Kind == OpGemm && bad[i].A != nil {
			bad[i].A32 = linalg.NewMatrix32(4, 4)
			break
		}
	}
	_, err = Reassemble(p.N(), p.ArenaRows(), bad, specs)
	check("double operand", err)
	// Task ranges with a gap.
	badSpecs := append([]StageSpec(nil), specs...)
	badSpecs[0] = StageSpec{Name: "gather", Tasks: [][2]int{}}
	_, err = Reassemble(p.N(), p.ArenaRows(), ops, badSpecs)
	check("gapped tasks", err)
	// Overlapping ranges.
	badSpecs = append([]StageSpec(nil), specs...)
	tasks := append([][2]int(nil), badSpecs[0].Tasks...)
	tasks = append(tasks, tasks[len(tasks)-1])
	badSpecs[0].Tasks = tasks
	_, err = Reassemble(p.N(), p.ArenaRows(), ops, badSpecs)
	check("overlap", err)
	// Unknown op kind.
	bad = append([]Op(nil), ops...)
	bad[0].Kind = OpKind(42)
	_, err = Reassemble(p.N(), p.ArenaRows(), bad, specs)
	check("unknown kind", err)
}
