package core

import (
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/internal/sched"
)

// TestSkeletonsAreNested verifies the nesting property of Algorithm 2.6:
// every interior node's skeleton is a subset of its children's skeletons
// (α̃ ⊂ l̃ ∪ r̃), which is what makes the telescoping evaluation valid.
func TestSkeletonsAreNested(t *testing.T) {
	h, _ := compressGauss(t, 400, Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-5, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 170, CacheBlocks: true,
	})
	tr := h.Tree
	for id := 1; id < len(tr.Nodes); id++ {
		if tr.IsLeaf(id) {
			// Leaf skeletons must be subsets of the leaf's own indices.
			own := map[int]bool{}
			for _, i := range tr.Indices(id) {
				own[i] = true
			}
			for _, s := range h.Skeleton(id) {
				if !own[s] {
					t.Fatalf("leaf %d skeleton contains foreign index %d", id, s)
				}
			}
			continue
		}
		child := map[int]bool{}
		for _, s := range h.Skeleton(tr.Left(id)) {
			child[s] = true
		}
		for _, s := range h.Skeleton(tr.Right(id)) {
			child[s] = true
		}
		for _, s := range h.Skeleton(id) {
			if !child[s] {
				t.Fatalf("node %d skeleton not nested: index %d not in children", id, s)
			}
		}
	}
}

// TestSkeletonRanksShrinkTowardRoot: under a fixed tolerance the skeleton of
// a parent cannot exceed the combined size of its children's skeletons.
func TestSkeletonRanksBounded(t *testing.T) {
	h, _ := compressGauss(t, 400, Config{
		LeafSize: 32, MaxRank: 64, Tol: 1e-4, Kappa: 8, Budget: 0.05,
		Distance: Kernel, Exec: Sequential, Seed: 171, CacheBlocks: true,
	})
	tr := h.Tree
	for id := 1; id < len(tr.Nodes); id++ {
		if tr.IsLeaf(id) {
			continue
		}
		sum := h.Rank(tr.Left(id)) + h.Rank(tr.Right(id))
		if h.Rank(id) > sum {
			t.Fatalf("node %d rank %d exceeds children total %d", id, h.Rank(id), sum)
		}
	}
}

// TestBudgetOneIsExact: with budget 1 every leaf pair is near, so K̃ = K
// exactly (all blocks direct, no low-rank anywhere).
func TestBudgetOneIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	n := 200
	Kd, _ := gaussKernelMatrix(rng, n, 0.3) // narrow: low-rank would fail badly
	h, err := Compress(denseSPD{Kd}, Config{
		LeafSize: 16, MaxRank: 4, Tol: 1e-1, Kappa: n, Budget: 1.0,
		Distance: Kernel, Exec: Sequential, Seed: 173, CacheBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every leaf must be near every other leaf.
	for _, beta := range h.Tree.Leaves() {
		if len(h.NearList(beta)) != h.Tree.NumLeaves() {
			t.Skipf("budget 1 with κ=%d left %d/%d near leaves (vote-limited)",
				n, len(h.NearList(beta)), h.Tree.NumLeaves())
		}
	}
	W := linalg.GaussianMatrix(rng, n, 2)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, Kd, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-13 {
		t.Fatalf("budget-1 matvec not exact: %g", d)
	}
}

// TestIdentityMatrixCompresses: K = I has zero off-diagonal blocks — every
// skeleton collapses to rank 0 and the matvec is exact.
func TestIdentityMatrixCompresses(t *testing.T) {
	n := 256
	h, err := Compress(denseSPD{linalg.Eye(n)}, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-10, Kappa: 4, Budget: 0,
		Distance: Kernel, Exec: Sequential, Seed: 174, CacheBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Stats.AvgRank > 0.01 {
		t.Fatalf("identity matrix produced avg rank %g", h.Stats.AvgRank)
	}
	rng := rand.New(rand.NewSource(175))
	W := linalg.GaussianMatrix(rng, n, 2)
	U := h.Matvec(W)
	if d := linalg.RelFrobDiff(U, W); d > 1e-14 {
		t.Fatalf("I·W ≠ W: %g", d)
	}
}

// TestDuplicatedPointsDegenerate: identical Gram vectors give all-zero
// distances; the split must stay balanced and compression must not hang.
func TestDuplicatedPointsDegenerate(t *testing.T) {
	n := 128
	K := linalg.NewMatrix(n, n)
	K.Fill(1)
	for i := 0; i < n; i++ {
		K.Add(i, i, 1) // rank-1 ones + I: SPD, all points identical in Gram space
	}
	h, err := Compress(denseSPD{K}, Config{
		LeafSize: 16, MaxRank: 8, Tol: 1e-10, Kappa: 4, Budget: 0.1,
		Distance: Angle, Exec: Sequential, Seed: 176, CacheBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(177))
	W := linalg.GaussianMatrix(rng, n, 2)
	U := h.Matvec(W)
	exact := linalg.MatMul(false, false, K, W)
	if d := linalg.RelFrobDiff(U, exact); d > 1e-10 {
		t.Fatalf("degenerate matrix error %g (rank-1 structure should be trivial)", d)
	}
}

// TestRankProfile sanity-checks the per-level rank report.
func TestRankProfile(t *testing.T) {
	h, _ := compressGauss(t, 400, Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-5, Kappa: 8, Budget: 0.05,
		Distance: Kernel, Exec: Sequential, Seed: 178, CacheBlocks: true,
	})
	prof := h.RankProfile()
	if len(prof) != h.Tree.Depth+1 {
		t.Fatalf("profile has %d levels, want %d", len(prof), h.Tree.Depth+1)
	}
	if prof[0] != 0 {
		t.Fatalf("root level avg rank = %g, want 0 (root is never skeletonized)", prof[0])
	}
	for l := 1; l < len(prof); l++ {
		if prof[l] <= 0 {
			t.Fatalf("level %d avg rank %g", l, prof[l])
		}
	}
}

// TestL2LPinnedToAccelerator reproduces the §2.3 placement policy: with an
// accelerator in the pool, every L2L task must execute on it.
func TestL2LPinnedToAccelerator(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	Kd, _ := gaussKernelMatrix(rng, 300, 0.8)
	h, err := Compress(denseSPD{Kd}, Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-5, Kappa: 8, Budget: 0.15,
		Distance: Kernel, Exec: Dynamic, Seed: 181, CacheBlocks: true,
		CaptureTrace: true,
		WorkerSpecs: []sched.WorkerSpec{
			{Speed: 1},
			{Speed: 1},
			{Speed: 8, Slots: 4, Batch: 8, NoSteal: true, Accelerator: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	W := linalg.GaussianMatrix(rng, 300, 4)
	h.Matvec(W)
	if len(h.LastTrace) == 0 {
		t.Fatal("no trace captured")
	}
	l2l, onAcc := 0, 0
	for _, ev := range h.LastTrace {
		if len(ev.Task.Label) >= 3 && ev.Task.Label[:3] == "L2L" {
			l2l++
			if ev.Worker == 2 {
				onAcc++
			}
		}
	}
	if l2l == 0 {
		t.Fatal("no L2L tasks in trace")
	}
	if onAcc != l2l {
		t.Fatalf("only %d of %d L2L tasks ran on the accelerator", onAcc, l2l)
	}
}

type nanOracle struct{ n int }

func (o nanOracle) Dim() int { return o.n }
func (o nanOracle) At(i, j int) float64 {
	if i == j {
		return 1
	}
	return math.NaN()
}

type asymOracle struct{ n int }

func (o asymOracle) Dim() int            { return o.n }
func (o asymOracle) At(i, j int) float64 { return float64(i - j) }

func TestCompressRejectsBadOracles(t *testing.T) {
	if _, err := Compress(nanOracle{64}, Config{LeafSize: 16, Seed: 1}); err == nil {
		t.Fatal("expected error for NaN oracle")
	}
	if _, err := Compress(asymOracle{64}, Config{LeafSize: 16, Seed: 1}); err == nil {
		t.Fatal("expected error for asymmetric oracle")
	}
}
