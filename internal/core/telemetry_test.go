package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/internal/telemetry"
)

// instrumentedRun compresses a small Gaussian kernel with a recorder
// attached and runs one matvec, returning the recorder.
func instrumentedRun(t *testing.T, exec ExecMode) (*telemetry.Recorder, *Hierarchical) {
	t.Helper()
	rec := telemetry.New()
	h, _ := compressGauss(t, 300, Config{
		LeafSize: 32, MaxRank: 32, Tol: 1e-7, Kappa: 8,
		Budget: 0.05, Distance: Kernel, Exec: exec, Seed: 5,
		NumWorkers: 2, Telemetry: rec,
	})
	rng := rand.New(rand.NewSource(7))
	h.Matvec(linalg.GaussianMatrix(rng, 300, 2))
	return rec, h
}

func TestTelemetryCompressSpans(t *testing.T) {
	rec, h := instrumentedRun(t, Dynamic)
	snap := rec.Snapshot()

	// Compression phases must appear as children of the "compress" span and
	// agree with the legacy Stats fields (same clock, same numbers).
	for phase, want := range map[string]float64{
		"ann":   h.Stats.ANNTime,
		"tree":  h.Stats.TreeTime,
		"lists": h.Stats.ListsTime,
		"skel":  h.Stats.SkelTime,
	} {
		got := rec.PhaseSeconds("compress", phase)
		if got <= 0 {
			t.Fatalf("missing compress/%s span", phase)
		}
		if got != want {
			t.Fatalf("compress/%s: span %gs vs Stats %gs", phase, got, want)
		}
	}
	if got := rec.PhaseSeconds("compress"); got != h.Stats.CompressTime {
		t.Fatalf("compress span %g vs Stats.CompressTime %g", got, h.Stats.CompressTime)
	}

	// The oracle wrapper must have counted entry traffic.
	if snap.Counters["oracle.entries"] == 0 {
		t.Fatal("oracle.entries counter is zero")
	}
	// Skeletonization must have filled the rank histogram.
	hs, ok := snap.Histograms["skel.rank"]
	if !ok || hs.Count == 0 {
		t.Fatal("skel.rank histogram missing or empty")
	}
	if hs.Max > float64(h.Cfg.MaxRank) {
		t.Fatalf("skel.rank max %g exceeds MaxRank %d", hs.Max, h.Cfg.MaxRank)
	}
}

// hasSpan reports whether the snapshot's span forest contains the path.
func hasSpan(spans []telemetry.SpanStat, path ...string) bool {
	for _, name := range path {
		var found *telemetry.SpanStat
		for i := range spans {
			if spans[i].Name == name {
				found = &spans[i]
				break
			}
		}
		if found == nil {
			return false
		}
		spans = found.Children
	}
	return true
}

func TestTelemetryMatvecPassesAllExecutors(t *testing.T) {
	for _, exec := range []ExecMode{Sequential, LevelByLevel, Dynamic, TaskDepend} {
		rec, _ := instrumentedRun(t, exec)
		spans := rec.Snapshot().Spans
		for _, pass := range []string{"N2S", "S2S", "S2N", "L2L"} {
			if !hasSpan(spans, "matvec", pass) {
				t.Fatalf("%v: missing matvec/%s span", exec, pass)
			}
		}
		snap := rec.Snapshot()
		if snap.Counters["matvec.calls"] != 1 {
			t.Fatalf("%v: matvec.calls = %d", exec, snap.Counters["matvec.calls"])
		}
		if snap.Counters["matvec.flops"] == 0 {
			t.Fatalf("%v: matvec.flops is zero", exec)
		}
	}
}

func TestTelemetryTaskEventsAndLastTrace(t *testing.T) {
	// A recorder alone (no CaptureTrace) must populate both the recorder's
	// task events and the legacy LastTrace field.
	rec, h := instrumentedRun(t, Dynamic)
	if len(h.LastTrace) == 0 {
		t.Fatal("LastTrace empty despite attached recorder")
	}
	evs := rec.TaskEvents()
	if len(evs) == 0 {
		t.Fatal("no task events recorded")
	}
	kinds := map[string]bool{}
	for _, ev := range evs {
		if ev.Worker < 0 || ev.Worker >= 2 {
			t.Fatalf("task event worker %d out of range", ev.Worker)
		}
		kinds[taskPhase(ev.Name)] = true
	}
	for _, want := range []string{"SKEL", "COEF", "N2S", "S2S", "S2N", "L2L"} {
		if !kinds[want] {
			t.Fatalf("no task events of kind %s (have %v)", want, kinds)
		}
	}
	snap := rec.Snapshot()
	if snap.Counters["sched.compress.tasks"] == 0 || snap.Counters["sched.matvec.tasks"] == 0 {
		t.Fatal("scheduler task counters missing")
	}
}

func TestTelemetryChromeTraceFromRealRun(t *testing.T) {
	rec, _ := instrumentedRun(t, Dynamic)
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("empty chrome trace")
	}
	report := rec.Report()
	for _, want := range []string{"compress", "matvec", "skel.rank"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestTelemetryNilRecorderIsInert(t *testing.T) {
	// The zero-config path must behave exactly as before: no trace, no
	// panic, Stats still populated.
	h, _ := compressGauss(t, 200, Config{
		LeafSize: 32, MaxRank: 32, Tol: 1e-7, Kappa: 8,
		Budget: 0.05, Distance: Kernel, Exec: Dynamic, Seed: 5,
		NumWorkers: 2,
	})
	rng := rand.New(rand.NewSource(7))
	h.Matvec(linalg.GaussianMatrix(rng, 200, 2))
	if h.Stats.CompressTime <= 0 || h.Stats.EvalTime <= 0 {
		t.Fatal("Stats not populated on the nil-recorder path")
	}
	if h.TelemetryReport() != "telemetry disabled\n" {
		t.Fatalf("unexpected nil report: %q", h.TelemetryReport())
	}
}
