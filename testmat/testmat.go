// Package testmat exposes the paper's SPD test problems (K02–K18 stencil
// and spectral operators, G01–G05 graph-Laplacian inverses, and the
// COVTYPE/HIGGS/MNIST-like machine-learning kernels) through the public
// API, so example programs and downstream users can generate realistic
// workloads without touching internal packages.
package testmat

import (
	"gofmm/internal/linalg"
	"gofmm/internal/spdmat"
)

// Problem bundles an SPD oracle with optional point coordinates.
type Problem = spdmat.Problem

// Names lists every registered problem in the paper's order.
func Names() []string { return spdmat.Names() }

// Generate builds the named problem at dimension ≈ n (grid problems round
// down to a perfect square/cube); deterministic in seed.
func Generate(name string, n int, seed int64) (*Problem, error) {
	return spdmat.Generate(name, n, seed)
}

// NewGaussKernel wraps points (columns of the d×N matrix X) as an
// on-the-fly Gaussian-kernel SPD oracle exp(−r²/2h²) + ridge·I, evaluated
// entry by entry with the bulk 2-norm-expansion fast path.
func NewGaussKernel(X *linalg.Matrix, h, ridge float64) *spdmat.Kernel {
	return spdmat.NewKernel(X, spdmat.Gauss, h, ridge)
}
