// Package linalg carries just the Matrix shape the scopecheck golden tests
// need.
package linalg

// Matrix is a dense row-major matrix over a pooled backing array.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}
