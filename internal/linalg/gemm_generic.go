//go:build !amd64

package linalg

// Non-amd64 platforms always take the portable micro-kernel.
const haveFMAKernel = false

func gemmKernel8x6(kc int, a, b []float64, c *float64, ldc int) {
	panic("linalg: assembly micro-kernel unavailable on this platform")
}
