// Package spdmat generates the test problems of the paper's §3 at laptop
// scale: the 22 SPD matrices K02–K18 and G01–G05 (stencil-operator inverses,
// high-dimensional kernel matrices, pseudo-spectral operators, and
// graph-Laplacian inverses) plus the machine-learning kernel matrices
// (COVTYPE-, HIGGS- and MNIST-like Gaussian kernels over synthetic point
// clouds — the real datasets are not available offline; see DESIGN.md for
// the substitution rationale).
//
// Every problem satisfies the entry-oracle contract of internal/core (Dim,
// At, and the optional bulk Submatrix fast path) and carries optional point
// coordinates so the geometric-distance reference mode can be exercised.
package spdmat

import (
	"math"

	"gofmm/internal/linalg"
)

// Problem bundles an SPD matrix with optional coordinates and metadata.
type Problem struct {
	// Name is the paper's identifier (e.g. "K02", "G03", "COVTYPE").
	Name string
	// Desc describes the construction.
	Desc string
	// K is the SPD entry oracle (a *Dense or a *Kernel).
	K SPD
	// Points holds coordinates as columns of a d×N matrix when the problem
	// has geometry (kernel matrices); nil otherwise (graphs, operators).
	Points *linalg.Matrix
}

// SPD mirrors core.SPD structurally so spdmat does not import core.
type SPD interface {
	Dim() int
	At(i, j int) float64
}

// Dense is a dense symmetric matrix oracle with a bulk gather fast path.
type Dense struct{ M *linalg.Matrix }

// Dim returns the matrix dimension.
func (d *Dense) Dim() int { return d.M.Rows }

// At returns K[i,j].
func (d *Dense) At(i, j int) float64 { return d.M.At(i, j) }

// Submatrix gathers K[I,J] into dst (the core.Bulk fast path).
func (d *Dense) Submatrix(I, J []int, dst *linalg.Matrix) {
	for c, j := range J {
		col := dst.Col(c)
		src := d.M.Col(j)
		for r, i := range I {
			col[r] = src[i]
		}
	}
}

// KernelType selects the kernel function of a Kernel matrix.
type KernelType int

const (
	// Gauss is exp(−r²/2h²).
	Gauss KernelType = iota
	// Laplace is the regularized 6-D Green's-function-like kernel
	// 1/(r² + h²)² — asymptotically r⁻⁴ like the 6-D Laplace Green's
	// function, and completely monotone in r² so it is positive definite
	// in every dimension (Schoenberg).
	Laplace
	// Poly is the polynomial kernel (xᵀy/d + 1)³.
	Poly
	// Cosine is the cosine-similarity kernel xᵀy/(‖x‖‖y‖).
	Cosine
)

// Kernel is an on-the-fly kernel matrix over points (columns of X): entries
// are computed on demand, exactly like the paper's memory-limited ARM runs
// ("we compute K_ij on the fly ... with a GEMM using the 2-norm expansion").
// A small diagonal ridge keeps the matrix numerically SPD.
type Kernel struct {
	X       *linalg.Matrix // d×N points
	Type    KernelType
	H       float64 // bandwidth / regularization
	Ridge   float64
	sqnorms []float64 // ‖xᵢ‖², precomputed
}

// NewKernel builds the kernel oracle and precomputes squared norms.
func NewKernel(X *linalg.Matrix, typ KernelType, h, ridge float64) *Kernel {
	k := &Kernel{X: X, Type: typ, H: h, Ridge: ridge, sqnorms: make([]float64, X.Cols)}
	for i := 0; i < X.Cols; i++ {
		xi := X.Col(i)
		k.sqnorms[i] = linalg.Dot(xi, xi)
	}
	return k
}

// Dim returns the number of points.
func (k *Kernel) Dim() int { return k.X.Cols }

// value maps an inner product (and the two squared norms) to a kernel entry.
func (k *Kernel) value(dot, ni, nj float64, diag bool) float64 {
	var v float64
	switch k.Type {
	case Gauss:
		r2 := ni + nj - 2*dot
		if r2 < 0 {
			r2 = 0
		}
		v = math.Exp(-r2 / (2 * k.H * k.H))
	case Laplace:
		r2 := ni + nj - 2*dot
		if r2 < 0 {
			r2 = 0
		}
		t := r2 + k.H*k.H
		v = 1 / (t * t)
	case Poly:
		v = dot/float64(k.X.Rows) + 1
		v = v * v * v
	case Cosine:
		den := math.Sqrt(ni * nj)
		if den == 0 {
			v = 0
		} else {
			v = dot / den
		}
	}
	if diag {
		v += k.Ridge
	}
	return v
}

// At returns K[i,j].
func (k *Kernel) At(i, j int) float64 {
	dot := linalg.Dot(k.X.Col(i), k.X.Col(j))
	return k.value(dot, k.sqnorms[i], k.sqnorms[j], i == j)
}

// Submatrix evaluates K[I,J] with one GEMM over the gathered point blocks
// (the 2-norm expansion fast path).
func (k *Kernel) Submatrix(I, J []int, dst *linalg.Matrix) {
	XI := k.X.ColsGather(I)
	XJ := k.X.ColsGather(J)
	linalg.Gemm(true, false, 1, XI, XJ, 0, dst)
	for c, j := range J {
		col := dst.Col(c)
		nj := k.sqnorms[j]
		for r, i := range I {
			col[r] = k.value(col[r], k.sqnorms[i], nj, i == j)
		}
	}
}

// ridgeFor returns a conservative diagonal ridge for kernels that are only
// positive semi-definite in exact arithmetic.
func ridgeFor(scale float64) float64 { return 1e-7 * scale }
