package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
	"gofmm/internal/telemetry"
)

// adminTestServer builds a Server with the admin endpoints enabled over a
// temp store directory holding one saved operator ("alpha").
func adminTestServer(t *testing.T) (*httptest.Server, *Registry, string) {
	t.Helper()
	h := compressedOperator(t)
	dir := t.TempDir()
	if _, err := h.SaveTo(filepath.Join(dir, "alpha.store")); err != nil {
		t.Fatal(err)
	}
	rec := telemetry.New()
	reg := NewRegistry(rec)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s, err := NewServer(Config{
		Registry:  reg,
		Telemetry: rec,
		Admin: &AdminConfig{
			StoreDir: dir,
			Mmap:     true,
			EvalCtx:  ctx,
			Batch:    core.BatchOptions{MaxBatch: 8, MaxDelay: 100 * time.Microsecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(reg.Close)
	return ts, reg, dir
}

func adminDo(t *testing.T, ts *httptest.Server, method, path string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	return resp, doc
}

func TestAdminLoadSwapDeregister(t *testing.T) {
	ts, reg, dir := adminTestServer(t)
	h := compressedOperator(t)

	// Load alpha from its store file and serve a matvec through it.
	resp, doc := adminDo(t, ts, http.MethodPost, "/admin/operators/alpha")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load status %d: %v", resp.StatusCode, doc)
	}
	var mapped bool
	if err := json.Unmarshal(doc["mapped"], &mapped); err != nil {
		t.Fatal(err)
	}
	op, err := reg.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	W := linalg.GaussianMatrix(rng, h.N(), 1)
	U, err := op.Matvec(context.Background(), W)
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.EqualApprox(h.Matvec(W), U, 0) {
		t.Fatal("admin-loaded matvec differs from the in-memory operator")
	}

	// A second POST hot-swaps the serving operator in place.
	if resp, doc = adminDo(t, ts, http.MethodPost, "/admin/operators/alpha"); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %v", resp.StatusCode, doc)
	}
	if op2, err := reg.Get("alpha"); err != nil {
		t.Fatal(err)
	} else if op2 == op {
		t.Fatal("reload did not install a fresh operator")
	}

	// DELETE removes it from service with the typed error surfaced after.
	if resp, _ = adminDo(t, ts, http.MethodDelete, "/admin/operators/alpha"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if _, err := reg.Get("alpha"); !errors.Is(err, ErrUnknownOperator) {
		t.Fatalf("after delete: got %v, want ErrUnknownOperator", err)
	}

	// Unknown store file: 404 with the unknown_operator kind.
	resp, doc = adminDo(t, ts, http.MethodPost, "/admin/operators/ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing store: status %d, want 404", resp.StatusCode)
	}
	var kind string
	if err := json.Unmarshal(doc["kind"], &kind); err != nil || kind != "unknown_operator" {
		t.Fatalf("missing store kind = %q (%v)", kind, err)
	}

	// A corrupt store file must produce a client error, not a crash.
	bad := filepath.Join(dir, "bad.store")
	if err := os.WriteFile(bad, []byte("not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if resp, _ = adminDo(t, ts, http.MethodPost, "/admin/operators/bad"); resp.StatusCode < 400 {
		t.Fatalf("corrupt store: status %d, want an error", resp.StatusCode)
	}
}

func TestAdminRejectsBadNames(t *testing.T) {
	ts, _, _ := adminTestServer(t)
	// Names with separators or dot prefixes never reach the filesystem.
	// Traversal names containing "/" are rejected by ServeMux routing (404
	// or 301); the ones that parse as a single segment hit our validator.
	for _, name := range []string{".hidden", "a..b", "%2e%2e%2fescape"} {
		resp, _ := adminDo(t, ts, http.MethodPost, "/admin/operators/"+name)
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Errorf("name %q: status %d, want 400 or 404", name, resp.StatusCode)
		}
	}
	if validOperatorName("ok-name_1.2") != true {
		t.Error("plain stem rejected")
	}
	for _, bad := range []string{"", ".x", "a/b", "a\\b", "a b", "a..b"} {
		if validOperatorName(bad) {
			t.Errorf("validOperatorName(%q) = true, want false", bad)
		}
	}
}
