package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// RunRecordSchema identifies the machine-readable benchmark-record layout.
// Consumers (CI validation, trend plots) key on this string; bump the
// version when the layout changes incompatibly.
const RunRecordSchema = "gofmm.bench/v1"

// RunRecord is one machine-readable benchmark/run result, the unit of the
// BENCH_*.json trajectory. Rows carry per-case measurements (one map per
// experiment row); Metrics carries scalar summaries; Telemetry optionally
// embeds the full metrics snapshot of an instrumented run.
type RunRecord struct {
	Schema      string             `json:"schema"`
	Name        string             `json:"name"`
	CreatedUnix int64              `json:"created_unix,omitempty"`
	Params      map[string]any     `json:"params,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Rows        []map[string]any   `json:"rows,omitempty"`
	Telemetry   *Snapshot          `json:"telemetry,omitempty"`
}

// NewRunRecord returns a schema-tagged record with the given name.
func NewRunRecord(name string) *RunRecord {
	return &RunRecord{
		Schema:  RunRecordSchema,
		Name:    name,
		Params:  map[string]any{},
		Metrics: map[string]float64{},
	}
}

// AttachSnapshot embeds the recorder's snapshot (no-op on nil recorder).
func (rr *RunRecord) AttachSnapshot(r *Recorder) {
	if r == nil {
		return
	}
	snap := r.Snapshot()
	rr.Telemetry = &snap
}

// Write encodes the record as indented JSON.
func (rr *RunRecord) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rr)
}

// WriteBenchFile writes the record to dir/BENCH_<name>.json (name sanitized
// to [A-Za-z0-9._-]) and returns the path.
func (rr *RunRecord) WriteBenchFile(dir string) (string, error) {
	name := sanitizeBenchName(rr.Name)
	if name == "" {
		return "", fmt.Errorf("telemetry: empty run-record name")
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := rr.Write(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// sanitizeBenchName maps a benchmark name to a safe filename fragment.
func sanitizeBenchName(name string) string {
	var b strings.Builder
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			b.WriteRune(c)
		case c == '/':
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ValidateRunRecord checks that data parses as a RunRecord with the current
// schema, a name, and at least one measurement (a metric, a row, or an
// embedded snapshot) — the invariant the CI artifact step enforces.
func ValidateRunRecord(data []byte) error {
	var rr RunRecord
	if err := json.Unmarshal(data, &rr); err != nil {
		return fmt.Errorf("telemetry: run record is not valid JSON: %w", err)
	}
	if rr.Schema != RunRecordSchema {
		return fmt.Errorf("telemetry: run record schema %q, want %q", rr.Schema, RunRecordSchema)
	}
	if rr.Name == "" {
		return fmt.Errorf("telemetry: run record has no name")
	}
	if len(rr.Metrics) == 0 && len(rr.Rows) == 0 && rr.Telemetry == nil {
		return fmt.Errorf("telemetry: run record %q carries no measurements", rr.Name)
	}
	return nil
}
