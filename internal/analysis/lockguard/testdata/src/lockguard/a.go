package lockguard

import (
	"sync"

	"lockdep"
)

type counter struct {
	mu sync.Mutex
	// guarded by mu
	n int

	rw sync.RWMutex
	// guarded by rw
	table map[string]int

	free int // guarded by mu (prose after the annotation is ignored)
}

func (c *counter) sharedLineForm() {
	c.mu.Lock()
	c.free++ // ok: annotation parses despite the trailing prose
	c.mu.Unlock()
	c.free-- // want `write of free without holding mu`
}

func (c *counter) lockedWrite() {
	c.mu.Lock()
	c.n++ // ok: write lock held
	c.mu.Unlock()
}

func (c *counter) deferredUnlock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n // ok: held to every exit
}

func (c *counter) unlockedRead() int {
	return c.n // want `read of n without holding mu`
}

func (c *counter) unlockedWrite() {
	c.n = 7 // want `write of n without holding mu`
}

func (c *counter) afterUnlock() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want `read of n without holding mu`
}

func (c *counter) oneBranchOnly(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want `write of n without holding mu`
	if b {
		c.mu.Unlock()
	}
}

func (c *counter) everyBranch(b bool) {
	if b {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++ // ok: held on both incoming paths
	c.mu.Unlock()
}

func (c *counter) readLockRead(k string) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.table[k] // ok: reads need only RLock
}

func (c *counter) readLockWrite(k string) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.table[k] = 1 // want `write of table without holding rw`
}

func (c *counter) mapStore(k string) {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.table[k] = 1 // ok: map store under the write lock
	delete(c.table, k)
}

func (c *counter) mapDeleteUnlocked(k string) {
	delete(c.table, k) // want `write of table without holding rw`
}

// bump is documented as called with c.mu held.
//
// called with c.mu held.
func (c *counter) bump() {
	c.n++ // ok: entry fact seeded by the annotation
}

func (c *counter) escapeInClosure() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `write of n without holding mu`
	}()
}

func newCounter() *counter {
	return &counter{table: map[string]int{}} // ok: composite literal construction
}

type stats struct {
	EvalTime  float64
	EvalFlops float64
	Ranks     int
}

type holder struct {
	statsMu sync.Mutex
	// guarded by statsMu for EvalTime, EvalFlops
	Stats stats
}

func (h *holder) noteEval(t, f float64) {
	h.statsMu.Lock()
	h.Stats.EvalTime = t // ok
	h.Stats.EvalFlops = f
	h.statsMu.Unlock()
}

func (h *holder) raceyRead() float64 {
	return h.Stats.EvalTime // want `read of EvalTime without holding statsMu`
}

func (h *holder) unguardedSibling() int {
	return h.Stats.Ranks // ok: Ranks is outside the `for` list
}

type outer struct {
	c *counter
}

func (o *outer) chained() {
	o.c.mu.Lock()
	o.c.n++ // ok: lock reached through the same chain
	o.c.mu.Unlock()
	o.c.n++ // want `write of n without holding mu`
}

func escapes(cs []*counter) int {
	return cs[0].n // want `guarded field n through an expression the analysis cannot tie to a lock`
}

// Cross-package enforcement: lockdep.Meter's annotations live in the
// imported package's source, not in this package's syntax.

func foreignSubfieldRace(m *lockdep.Meter) int {
	return m.Counts.Hits // want `read of Hits without holding mu`
}

func foreignSubfieldOK(m *lockdep.Meter) int {
	c := m.Snapshot()
	return c.Hits + len(m.Counts.Label) // ok: Label is outside the `for` list
}

func foreignPlainRace(m *lockdep.Meter) {
	m.Total++ // want `write of Total without holding Mu`
}

func foreignPlainOK(m *lockdep.Meter) int {
	m.Mu.Lock()
	defer m.Mu.Unlock()
	return m.Total // ok: exported mutex held by the caller
}
