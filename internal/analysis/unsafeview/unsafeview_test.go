package unsafeview_test

import (
	"testing"

	"gofmm/internal/analysis/analyzertest"
	"gofmm/internal/analysis/unsafeview"
)

func TestUnsafeView(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), unsafeview.Analyzer, "unsafeview", "store")
}
