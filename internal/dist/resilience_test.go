package dist

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
)

func TestMatvecDimensionMismatchIsTypedError(t *testing.T) {
	h, _ := compress(t, 256, 0.05)
	m, err := Distribute(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped Matvec: %v", r)
		}
	}()
	if _, err := m.Matvec(nil); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("nil W: expected ErrInvalidInput, got %v", err)
	}
	wrong := linalg.NewMatrix(255, 2)
	if _, err := m.Matvec(wrong); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("wrong rows: expected ErrInvalidInput, got %v", err)
	}
}

func TestDistributeCtxValidation(t *testing.T) {
	h, _ := compress(t, 256, 0.05)
	if _, err := Distribute(h, 3); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("non-power-of-two ranks: expected ErrInvalidInput, got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DistributeCtx(ctx, h, 4); !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("cancelled ctx: expected ErrCancelled, got %v", err)
	}
}

func TestRouterRetriesDroppedMessages(t *testing.T) {
	h, K := compress(t, 512, 0.05)
	rng := rand.New(rand.NewSource(200))
	W := linalg.GaussianMatrix(rng, 512, 2)

	clean, err := Distribute(h, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Matvec(W)
	if err != nil {
		t.Fatal(err)
	}

	rec := telemetry.New()
	chaos := resilience.NewChaos(resilience.ChaosConfig{Seed: 11, MsgDrop: 0.1, MsgCorrupt: 0.05}, rec)
	m, err := Distribute(h, 8)
	if err != nil {
		t.Fatal(err)
	}
	m.Chaos = chaos
	m.Telemetry = rec
	got, err := m.Matvec(W)
	if err != nil {
		t.Fatalf("matvec under 10%% drop + 5%% corruption should recover: %v", err)
	}
	// Drops are retransmitted, corruption is checksum-detected and
	// retransmitted: the numerics must be exactly those of the clean run.
	if !linalg.EqualApprox(got, want, 0) {
		t.Fatal("chaos matvec differs from clean run")
	}
	inj := chaos.Injected()
	dropped := inj["msg_drop"] + inj["msg_corrupt"]
	if dropped == 0 {
		t.Fatal("no message faults injected — chaos not wired into the router")
	}
	if int64(m.Stats.Retries) != dropped {
		t.Fatalf("%d faults injected but %d retries recorded", dropped, m.Stats.Retries)
	}
	if int64(m.Stats.Drops) != dropped {
		t.Fatalf("%d faults injected but %d drops recorded", dropped, m.Stats.Drops)
	}
	if m.Stats.RedeliveredBytes == 0 {
		t.Fatal("retries recorded but no redelivered bytes")
	}
	if got := rec.Counter("dist.msg.retries").Value(); got != dropped {
		t.Fatalf("telemetry dist.msg.retries=%d, want %d", got, dropped)
	}
	_ = K
}

func TestRouterRetryExhaustionIsTyped(t *testing.T) {
	h, _ := compress(t, 256, 0.05)
	m, err := Distribute(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every message dropped: the backoff budget must run out and surface a
	// typed error identifying both the retry exhaustion and the root cause.
	m.Chaos = resilience.NewChaos(resilience.ChaosConfig{Seed: 12, MsgDrop: 1.0}, nil)
	rng := rand.New(rand.NewSource(201))
	W := linalg.GaussianMatrix(rng, 256, 1)
	_, err = m.Matvec(W)
	if !errors.Is(err, resilience.ErrTaskFailed) {
		t.Fatalf("expected ErrTaskFailed wrap, got %v", err)
	}
	if !errors.Is(err, resilience.ErrMessageLost) {
		t.Fatalf("expected ErrMessageLost root cause, got %v", err)
	}
}

func TestRouterChaosDeterminism(t *testing.T) {
	h, _ := compress(t, 512, 0.05)
	rng := rand.New(rand.NewSource(202))
	W := linalg.GaussianMatrix(rng, 512, 2)
	run := func() (int, int64) {
		m, err := Distribute(h, 8)
		if err != nil {
			t.Fatal(err)
		}
		m.Chaos = resilience.NewChaos(resilience.ChaosConfig{Seed: 13, MsgDrop: 0.1}, nil)
		if _, err := m.Matvec(W); err != nil {
			t.Fatal(err)
		}
		return m.Stats.Retries, m.Stats.RedeliveredBytes
	}
	r1, b1 := run()
	r2, b2 := run()
	if r1 != r2 || b1 != b2 {
		t.Fatalf("same seed, different injection: (%d,%d) vs (%d,%d)", r1, b1, r2, b2)
	}
}

func TestMatvecCtxPhaseTimeout(t *testing.T) {
	h, _ := compress(t, 256, 0.05)
	m, err := Distribute(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.PhaseTimeout = 1 // 1ns: the first per-phase deadline check must fire
	rng := rand.New(rand.NewSource(203))
	W := linalg.GaussianMatrix(rng, 256, 1)
	if _, err := m.Matvec(W); !errors.Is(err, resilience.ErrTimeout) {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
}
