package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecorder builds a fully deterministic recorder: fake clock, fixed
// spans, task events and metrics — the fixture both golden tests share.
func goldenRecorder() *Recorder {
	clk := &fakeClock{t: time.Unix(1700000000, 0), step: 0}
	r := newRecorder(clk.Now)
	step := func(d time.Duration) { clk.t = clk.Add(d) }

	root := r.StartSpan("compress")
	step(2 * time.Millisecond)
	ann := root.StartSpan("ann")
	step(5 * time.Millisecond)
	ann.End()
	skel := root.StartSpan("skel")
	step(8 * time.Millisecond)
	skel.End()
	root.End()

	mv := r.StartSpan("matvec")
	mv.AddChild("n2s", 16*time.Millisecond, 18*time.Millisecond)
	mv.AddChild("l2l", 18*time.Millisecond, 21*time.Millisecond)
	step(6 * time.Millisecond)
	mv.End()

	r.AddTaskEvents([]TaskEvent{
		{Name: "SKEL(1)", Worker: 0, Start: 3 * time.Millisecond, Dur: 2 * time.Millisecond,
			Wait: 100 * time.Microsecond, StolenFrom: -1},
		{Name: "SKEL(2)", Worker: 1, Start: 3 * time.Millisecond, Dur: 3 * time.Millisecond,
			Wait: 50 * time.Microsecond, StolenFrom: 0},
		{Name: "COEF(1)", Worker: 0, Start: 6 * time.Millisecond, Dur: time.Millisecond,
			StolenFrom: -1},
	})

	r.Counter("oracle.at").Add(1234)
	r.Counter("sched.steals").Add(1)
	r.Gauge("sched.utilization").Set(0.875)
	for _, v := range []float64{8, 16, 16, 32} {
		r.Histogram("skel.rank").Observe(v)
	}
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update ./internal/telemetry`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenChromeTrace(t *testing.T) {
	r := goldenRecorder()
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// Structural checks first (these hold for any recorder, golden or not).
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	tids := map[float64]bool{}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		tids[ev["tid"].(float64)] = true
		names[ev["name"].(string)] = true
		if args, ok := ev["args"].(map[string]any); ok {
			if n, ok := args["name"].(string); ok {
				names[n] = true // track names live in metadata args
			}
		}
	}
	for _, want := range []string{"ann", "skel", "n2s", "l2l", "SKEL(1)", "worker 1"} {
		if !names[want] {
			t.Fatalf("trace missing event %q", want)
		}
	}
	if !tids[1] || !tids[2] {
		t.Fatalf("expected one track per worker, tids = %v", tids)
	}
	checkGolden(t, "chrometrace.golden.json", buf.Bytes())
}

func TestGoldenRunRecord(t *testing.T) {
	r := goldenRecorder()
	rr := NewRunRecord("golden")
	rr.Params["n"] = 1024
	rr.Params["matrix"] = "K02"
	rr.Metrics["eps2"] = 3.5e-6
	rr.Metrics["compress_seconds"] = 0.015
	rr.Rows = []map[string]any{{"case": "K02", "n": 1024, "eps": 3.5e-6}}
	rr.AttachSnapshot(r)

	var buf bytes.Buffer
	if err := rr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateRunRecord(buf.Bytes()); err != nil {
		t.Fatalf("golden record does not validate: %v", err)
	}
	checkGolden(t, "runrecord.golden.json", buf.Bytes())
}

func TestGoldenMetricsJSON(t *testing.T) {
	r := goldenRecorder()
	var buf bytes.Buffer
	if err := r.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if snap.Schema != SnapshotSchema {
		t.Fatalf("schema = %q", snap.Schema)
	}
	checkGolden(t, "metrics.golden.json", buf.Bytes())
}

func TestEmptyChromeTraceStillLoads(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("even an empty trace should carry metadata events")
	}
}
