package plan

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/workspace"
)

// buildDense lowers U = A·W for a constant n×n A as a three-stage plan
// (gather, one GEMM, scatter) — the smallest complete schedule.
func buildDense(t *testing.T, A *linalg.Matrix) *Plan {
	t.Helper()
	n := A.Rows
	b := NewBuilder(n)
	wt := b.Region(n)
	out := b.Region(n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	b.BeginStage("gather", false)
	b.BeginTask()
	b.Gather(perm, wt)
	b.BeginStage("compute", true)
	b.BeginTask()
	b.Gemm(false, A, wt, out, 0)
	b.BeginStage("finish", false)
	b.BeginTask()
	b.Scatter(out, perm)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecuteDensePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	A := linalg.GaussianMatrix(rng, 6, 6)
	p := buildDense(t, A)
	W := linalg.GaussianMatrix(rng, 6, 3)
	U := linalg.NewMatrix(6, 3)
	if err := p.Execute(context.Background(), W, U, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	want := linalg.MatMul(false, false, A, W)
	if d := linalg.RelFrobDiff(U, want); d > 1e-14 {
		t.Fatalf("dense plan replay off by %g", d)
	}
	if got := p.FlopsPerCol(); got != 2*6*6 {
		t.Fatalf("FlopsPerCol = %g, want 72", got)
	}
	if p.N() != 6 || p.NumOps() != 3 || p.NumStages() != 3 {
		t.Fatalf("unexpected structure: %s", p)
	}
}

// TestStackedRefAliasing exercises the Sub/Span view mechanism: two child
// GEMMs write the halves of one stacked region, a parent GEMM consumes the
// whole, replacing the interpreter's copy-based stacking.
func TestStackedRefAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// n = 4: children own rows [0,2) and [2,4); each maps its rows through a
	// 2×2 basis into its half of a 4-row stacked region; the parent applies
	// a 4×4 basis to the stack.
	Bl := linalg.GaussianMatrix(rng, 2, 2)
	Br := linalg.GaussianMatrix(rng, 2, 2)
	P := linalg.GaussianMatrix(rng, 4, 4)
	b := NewBuilder(4)
	wt := b.Region(4)
	base := b.Alloc(4)
	stacked := Ref{Base: base, Sub: 0, Rows: 4, Span: 4}
	top := Ref{Base: base, Sub: 0, Rows: 2, Span: 4}
	bot := Ref{Base: base, Sub: 2, Rows: 2, Span: 4}
	out := b.Region(4)
	perm := []int{0, 1, 2, 3}
	b.BeginStage("gather", false)
	b.BeginTask()
	b.Gather(perm, wt)
	b.BeginStage("children", true)
	b.BeginTask()
	b.Gemm(false, Bl, Ref{Base: wt.Base, Sub: 0, Rows: 2, Span: 4}, top, 0)
	b.BeginTask()
	b.Gemm(false, Br, Ref{Base: wt.Base, Sub: 2, Rows: 2, Span: 4}, bot, 0)
	b.BeginStage("parent", false)
	b.BeginTask()
	b.Gemm(false, P, stacked, out, 0)
	b.BeginStage("finish", false)
	b.BeginTask()
	b.Scatter(out, perm)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	W := linalg.GaussianMatrix(rng, 4, 2)
	U := linalg.NewMatrix(4, 2)
	U2 := linalg.NewMatrix(4, 2)
	for _, out := range []*linalg.Matrix{U, U2} {
		if err := p.Execute(context.Background(), W, out, ExecOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Reference: stack the two child products, apply P.
	ref := linalg.NewMatrix(4, 2)
	ref.View(0, 0, 2, 2).CopyFrom(linalg.MatMul(false, false, Bl, W.View(0, 0, 2, 2)))
	ref.View(2, 0, 2, 2).CopyFrom(linalg.MatMul(false, false, Br, W.View(2, 0, 2, 2)))
	want := linalg.MatMul(false, false, P, ref)
	if d := linalg.RelFrobDiff(U, want); d > 1e-14 {
		t.Fatalf("aliased stacking replay off by %g", d)
	}
	// Replays through the pooled state must be bit-identical.
	for j := 0; j < U.Cols; j++ {
		a, c := U.Col(j), U2.Col(j)
		for i := range a {
			if a[i] != c[i] {
				t.Fatal("replay not bit-identical")
			}
		}
	}
}

// buildBatchable lowers a parallel stage of `tasks` single-GEMM tasks with
// identical 2×2 shapes over disjoint regions.
func buildBatchable(t *testing.T, tasks int, A *linalg.Matrix) *Plan {
	t.Helper()
	n := 2 * tasks
	b := NewBuilder(n)
	wt := b.Region(n)
	out := b.Region(n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	b.BeginStage("gather", false)
	b.BeginTask()
	b.Gather(perm, wt)
	b.BeginStage("blocks", true)
	for k := 0; k < tasks; k++ {
		b.BeginTask()
		src := Ref{Base: wt.Base, Sub: 2 * k, Rows: 2, Span: n}
		dst := Ref{Base: out.Base, Sub: 2 * k, Rows: 2, Span: n}
		b.Gemm(false, A, src, dst, 0)
	}
	b.BeginStage("finish", false)
	b.BeginTask()
	b.Scatter(out, perm)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGemmBatching(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	A := linalg.GaussianMatrix(rng, 2, 2)
	// 11 same-shape tasks with batchLimit 8 → one batch of 8 and one of 3.
	p := buildBatchable(t, 11, A)
	if p.BatchedGemms() != 11 || p.GemmBatches() != 2 {
		t.Fatalf("batched %d GEMMs in %d batches, want 11 in 2", p.BatchedGemms(), p.GemmBatches())
	}
	// gather + 2 batched units + scatter.
	if p.NumTasks() != 4 {
		t.Fatalf("NumTasks = %d, want 4", p.NumTasks())
	}
	// Batching must not change results.
	W := linalg.GaussianMatrix(rng, 22, 2)
	U := linalg.NewMatrix(22, 2)
	if err := p.Execute(context.Background(), W, U, ExecOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 11; k++ {
		want := linalg.MatMul(false, false, A, W.View(2*k, 0, 2, 2))
		if d := linalg.RelFrobDiff(U.View(2*k, 0, 2, 2), want); d > 1e-14 {
			t.Fatalf("block %d off by %g after batching", k, d)
		}
	}
	// A single task never forms a batch.
	if p1 := buildBatchable(t, 1, A); p1.BatchedGemms() != 0 || p1.GemmBatches() != 0 {
		t.Fatal("singleton task was batched")
	}
}

func TestDigestStableAndStructureSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	A := linalg.GaussianMatrix(rng, 5, 5)
	p1 := buildDense(t, A)
	p2 := buildDense(t, A)
	if p1.Digest() != p2.Digest() {
		t.Fatal("same lowering produced different digests")
	}
	if len(p1.DigestHex()) != 64 {
		t.Fatalf("DigestHex length %d", len(p1.DigestHex()))
	}
	// The digest covers structure, not block values: a different constant
	// with the same shape hashes identically...
	B := linalg.GaussianMatrix(rng, 5, 5)
	if p3 := buildDense(t, B); p3.Digest() != p1.Digest() {
		t.Fatal("digest depends on constant-block values")
	}
	// ...but a different shape does not.
	C := linalg.GaussianMatrix(rng, 6, 6)
	if p4 := buildDense(t, C); p4.Digest() == p1.Digest() {
		t.Fatal("digest insensitive to operand shapes")
	}
	if !strings.Contains(p1.String(), "ops=3") {
		t.Fatalf("String() = %q", p1.String())
	}
}

func TestBuilderRejectsMalformedLowerings(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	A := linalg.GaussianMatrix(rng, 2, 3)
	cases := []struct {
		name  string
		drive func(b *Builder)
	}{
		{"task outside stage", func(b *Builder) { b.BeginTask() }},
		{"op outside task", func(b *Builder) {
			b.BeginStage("s", false)
			b.Zero(b.Region(2))
		}},
		{"nil gemm operand", func(b *Builder) {
			b.BeginStage("s", false)
			b.BeginTask()
			b.Gemm(false, nil, b.Region(3), b.Region(2), 0)
		}},
		{"gemm shape mismatch", func(b *Builder) {
			b.BeginStage("s", false)
			b.BeginTask()
			b.Gemm(false, A, b.Region(4), b.Region(2), 0)
		}},
		{"gemm bad beta", func(b *Builder) {
			b.BeginStage("s", false)
			b.BeginTask()
			b.Gemm(false, A, b.Region(3), b.Region(2), 0.5)
		}},
		{"mixed nil operand", func(b *Builder) {
			b.BeginStage("s", false)
			b.BeginTask()
			b.GemmMixed(nil, b.Region(3), b.Region(2), 0)
		}},
		{"gather arity", func(b *Builder) {
			b.BeginStage("s", false)
			b.BeginTask()
			b.Gather([]int{0, 1}, b.Region(3))
		}},
		{"scatter arity", func(b *Builder) {
			b.BeginStage("s", false)
			b.BeginTask()
			b.Scatter(b.Region(3), []int{0})
		}},
		{"copy mismatch", func(b *Builder) {
			b.BeginStage("s", false)
			b.BeginTask()
			b.Copy(b.Region(2), b.Region(3))
		}},
		{"add mismatch", func(b *Builder) {
			b.BeginStage("s", false)
			b.BeginTask()
			b.Add(b.Region(2), b.Region(3))
		}},
		{"negative alloc", func(b *Builder) { b.Alloc(-1) }},
		{"out of arena ref", func(b *Builder) {
			b.BeginStage("s", false)
			b.BeginTask()
			b.Zero(Ref{Base: 100, Sub: 0, Rows: 2, Span: 2})
		}},
		{"sub beyond span", func(b *Builder) {
			base := b.Alloc(4)
			b.BeginStage("s", false)
			b.BeginTask()
			b.Zero(Ref{Base: base, Sub: 3, Rows: 2, Span: 4})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(8)
			tc.drive(b)
			if _, err := b.Build(); !errors.Is(err, resilience.ErrInvalidInput) {
				t.Fatalf("Build() error = %v, want ErrInvalidInput", err)
			}
		})
	}
}

func TestExecuteValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := buildDense(t, linalg.GaussianMatrix(rng, 4, 4))
	W := linalg.NewMatrix(4, 1)
	U := linalg.NewMatrix(4, 1)
	if err := p.Execute(context.Background(), nil, U, ExecOptions{}); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("nil W: %v", err)
	}
	if err := p.Execute(context.Background(), W, nil, ExecOptions{}); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("nil U: %v", err)
	}
	bad := linalg.NewMatrix(5, 1)
	if err := p.Execute(context.Background(), bad, U, ExecOptions{}); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("wrong rows: %v", err)
	}
	if err := p.Execute(context.Background(), W, linalg.NewMatrix(4, 2), ExecOptions{}); !errors.Is(err, resilience.ErrInvalidInput) {
		t.Fatalf("mismatched cols: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Execute(ctx, W, U, ExecOptions{}); !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("cancelled ctx: %v", err)
	}
}

func TestInjectedReplayFaultPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := buildDense(t, linalg.GaussianMatrix(rng, 4, 4))
	W := linalg.NewMatrix(4, 1)
	U := linalg.NewMatrix(4, 1)
	var site string
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("injected fault did not panic")
		}
		if site != "plan.replay" {
			t.Fatalf("inject consulted site %q", site)
		}
	}()
	_ = p.Execute(context.Background(), W, U, ExecOptions{
		Inject: func(s string) bool { site = s; return true },
	})
}

// TestPooledStateReuse checks that repeated replays through a workspace
// pool reuse the arena binding (the steady-state zero-allocation path) and
// stay correct when widths interleave.
func TestPooledStateReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	A := linalg.GaussianMatrix(rng, 8, 8)
	p := buildDense(t, A)
	pool := workspace.New()
	for i := 0; i < 10; i++ {
		r := 1 + i%3
		W := linalg.GaussianMatrix(rng, 8, r)
		U := linalg.NewMatrix(8, r)
		if err := p.Execute(context.Background(), W, U, ExecOptions{Pool: pool, Workers: 2}); err != nil {
			t.Fatal(err)
		}
		want := linalg.MatMul(false, false, A, W)
		if d := linalg.RelFrobDiff(U, want); d > 1e-14 {
			t.Fatalf("replay %d off by %g", i, d)
		}
	}
}
