// Package telemetry mirrors the recorder/span surface of the real
// internal/telemetry package for the spancheck golden tests. The analyzer
// matches by package name and receiver type, so this stub stands in exactly.
package telemetry

// Recorder hands out root spans.
type Recorder struct{}

// StartSpan opens a root span.
func (r *Recorder) StartSpan(name string) *Span { return &Span{name: name} }

// Span is one timed region; child spans hang off it.
type Span struct{ name string }

// StartSpan opens a child span.
func (s *Span) StartSpan(name string) *Span { return &Span{name: name} }

// End closes the span.
func (s *Span) End() {}

// Annotate attaches a note and returns the span for chaining.
func (s *Span) Annotate(note string) *Span { return s }
