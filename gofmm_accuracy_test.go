package gofmm

// End-to-end accuracy regression: a golden table of matvec error across the
// two geometry-oblivious distances, two tolerances and the adaptive vs
// fixed-rank skeletonization modes. The bounds are upper bounds with ~10×
// headroom over measured values — they catch a kernel or compression
// regression that degrades accuracy, not run-to-run noise. The same table
// doubles as the pooled-correctness gate: attaching a workspace pool (and
// using the reusable Evaluator) must reproduce the unpooled result to 1e-14,
// because pooling only changes where buffers come from, never which kernels
// run or in what order.

import (
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/core"
	"gofmm/internal/experiments"
	"gofmm/internal/linalg"
)

// relFrobErr returns ‖U−V‖_F / ‖V‖_F.
func relFrobErr(U, V *linalg.Matrix) float64 {
	var num, den float64
	for c := 0; c < V.Cols; c++ {
		u, v := U.Col(c), V.Col(c)
		for i := range v {
			d := u[i] - v[i]
			num += d * d
			den += v[i] * v[i]
		}
	}
	return math.Sqrt(num / den)
}

func TestAccuracyGoldenTable(t *testing.T) {
	const n = 512
	cases := []struct {
		name     string
		dist     core.Distance
		tol      float64
		maxRank  int
		adaptive bool
		// maxErr is the golden bound on the relative Frobenius error of the
		// compressed matvec against the exact dense product.
		maxErr float64
	}{
		{"angle/tol1e-2/adaptive", core.Angle, 1e-2, 128, true, 3e-2},
		{"angle/tol1e-5/adaptive", core.Angle, 1e-5, 128, true, 1e-4},
		{"angle/tol1e-2/fixedrank", core.Angle, 1e-2, 16, false, 5e-2},
		{"angle/tol1e-5/fixedrank", core.Angle, 1e-5, 64, false, 1e-4},
		{"kernel/tol1e-2/adaptive", core.Kernel, 1e-2, 128, true, 3e-2},
		{"kernel/tol1e-5/adaptive", core.Kernel, 1e-5, 128, true, 1e-4},
		{"kernel/tol1e-2/fixedrank", core.Kernel, 1e-2, 16, false, 5e-2},
		{"kernel/tol1e-5/fixedrank", core.Kernel, 1e-5, 64, false, 1e-4},
	}
	p := experiments.GetProblem("K02", n, 1)
	rng := rand.New(rand.NewSource(11))
	W := linalg.GaussianMatrix(rng, p.K.Dim(), 8)
	exact := core.ExactMatvec(p.K, W)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.Config{
				LeafSize: 64, MaxRank: tc.maxRank, Kappa: 16, Budget: 0.03,
				Distance: tc.dist, Exec: core.Sequential, Seed: 1,
				CacheBlocks: true,
			}
			if tc.adaptive {
				cfg.Tol = tc.tol
			} else {
				// Fixed-rank mode: a tolerance far below what MaxRank can
				// deliver makes every node saturate at rank s.
				cfg.Tol = 1e-12
			}
			h, err := core.Compress(p.K, cfg)
			if err != nil {
				t.Fatal(err)
			}
			U := h.Matvec(W)
			eps := relFrobErr(U, exact)
			t.Logf("%s: rel err %.3e (bound %.0e, avg rank %.1f)", tc.name, eps, tc.maxErr, h.Stats.AvgRank)
			if eps > tc.maxErr {
				t.Errorf("relative error %.3e exceeds golden bound %.0e", eps, tc.maxErr)
			}
			if math.IsNaN(eps) || math.IsInf(eps, 0) {
				t.Fatalf("non-finite error %v", eps)
			}

			// Pooled paths must agree with the unpooled result to 1e-14
			// relative — same kernels, same order, different buffer source.
			h.Cfg.Workspace = NewWorkspacePool()
			scale := linalg.Nrm2(exact.Data)
			Up := h.Matvec(W)
			if d := maxAbsDiffMat(U, Up); d > 1e-14*scale {
				t.Errorf("pooled Matvec deviates from unpooled by %.3e (allow %.3e)", d, 1e-14*scale)
			}
			ev := h.NewEvaluator(W.Cols)
			defer ev.Close()
			Ue := ev.Matvec(W)
			if d := maxAbsDiffMat(U, Ue); d > 1e-14*scale {
				t.Errorf("pooled Evaluator deviates from unpooled by %.3e (allow %.3e)", d, 1e-14*scale)
			}
		})
	}
}

func maxAbsDiffMat(A, B *linalg.Matrix) float64 {
	var m float64
	for c := 0; c < A.Cols; c++ {
		a, b := A.Col(c), B.Col(c)
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > m {
				m = d
			}
		}
	}
	return m
}
