// Quickstart: compress a dense SPD kernel matrix with GOFMM and compare the
// fast matvec against the exact dense product.
//
//	go run ./examples/quickstart [-n 2048]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"gofmm"
	"gofmm/testmat"
)

func main() {
	n := flag.Int("n", 2048, "problem size")
	flag.Parse()
	log.SetFlags(0)

	// A 6-D Gaussian-kernel matrix — evaluated entry by entry, exactly the
	// access pattern GOFMM is designed around.
	p, err := testmat.Generate("K05", *n, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %s — %s (N = %d)\n", p.Name, p.Desc, p.K.Dim())

	// Compress. Only matrix entries are used: no coordinates, no kernel.
	// The attached Recorder collects phase spans and metrics as it runs.
	rec := gofmm.NewRecorder()
	t0 := time.Now()
	H, err := gofmm.Compress(p.K, gofmm.Config{
		LeafSize:    128,  // m
		MaxRank:     128,  // s
		Tol:         1e-5, // τ
		Budget:      0.03, // 3% direct evaluations (0 would give HSS)
		Distance:    gofmm.Angle,
		Exec:        gofmm.Dynamic,
		NumWorkers:  4,
		CacheBlocks: true,
		Seed:        1,
		Telemetry:   rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed in %.3fs (avg skeleton rank %.1f, %.1f%% of K evaluated directly)\n",
		time.Since(t0).Seconds(), H.Stats.AvgRank, 100*H.Stats.DirectFrac)

	// Fast matvec with 16 right-hand sides.
	rng := rand.New(rand.NewSource(2))
	W := gofmm.NewMatrix(p.K.Dim(), 16)
	for j := 0; j < W.Cols; j++ {
		col := W.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	t0 = time.Now()
	U := H.Matvec(W)
	fast := time.Since(t0).Seconds()

	// Exact product for reference (O(N²r) — this is what GOFMM replaces).
	t0 = time.Now()
	exact := gofmm.ExactMatvec(p.K, W)
	dense := time.Since(t0).Seconds()
	_ = exact

	eps := H.SampleRelErr(W, U, 100, 3)
	fmt.Printf("matvec: GOFMM %.4fs vs dense %.3fs (%.1f× speedup), ε₂ = %.2e\n",
		fast, dense, dense/fast, eps)

	// Where did the time go? The recorder saw every phase and counter.
	fmt.Print("\ntelemetry report:\n", rec.Report())
}
