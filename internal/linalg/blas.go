package linalg

import (
	"math"
	"runtime"
	"sync"
)

// Level-1 kernels. These are the inner loops of everything else, so they are
// written for the compiler's bounds-check elimination: equal-length slices
// re-sliced up front.

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2 returns ‖x‖₂ with scaling for robustness.
func Nrm2(x []float64) float64 {
	var scale float64
	ssq := 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// IdxMax returns the index of the largest value in x (first on ties), or -1
// for an empty slice.
func IdxMax(x []float64) int {
	best, bi := math.Inf(-1), -1
	for i, v := range x {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// workers is the degree of parallelism used by blocked kernels.
func workers() int { return runtime.GOMAXPROCS(0) }

// parallelFor runs fn(lo, hi) over a partition of [0, n) across at most
// workers() goroutines. Grain is the minimum chunk size; small problems run
// inline to avoid goroutine overhead.
func parallelFor(n, grain int, fn func(lo, hi int)) {
	w := workers()
	if w <= 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > w {
		chunks = w
	}
	per := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += per {
		hi := min(lo+per, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Gemm lives in gemm.go (packed blocked driver + register-tiled
// micro-kernels).

// MatMul returns op(A)*op(B) as a new matrix.
func MatMul(transA, transB bool, A, B *Matrix) *Matrix {
	m := A.Rows
	if transA {
		m = A.Cols
	}
	n := B.Cols
	if transB {
		n = B.Rows
	}
	C := NewMatrix(m, n)
	Gemm(transA, transB, 1, A, B, 0, C)
	return C
}

// Gemv computes y = alpha*op(A)*x + beta*y for a single vector. Both
// orientations process four columns of A per pass so the x (or y) vector is
// streamed once per tile instead of once per column, with four independent
// accumulator chains; beta = 0 overwrites y outright (mirroring Gemm's
// semantics) so stale or non-finite contents of y can never leak into the
// result. Compiled plan replays dispatch their width-1 GEMM records here.
func Gemv(trans bool, alpha float64, A *Matrix, x []float64, beta float64, y []float64) {
	m, n := A.Rows, A.Cols
	if trans {
		if len(x) != m || len(y) != n {
			panic("linalg: Gemv dimension mismatch")
		}
		j := 0
		if haveFMAKernel && m >= 4 {
			// AVX2 path: four column dots at a time over the aligned row
			// prefix, ragged rows and alpha/beta finished in Go.
			mm := m &^ 3
			var d [4]float64
			for ; j+4 <= n; j += 4 {
				gemvDots4F64(mm, &A.Data[j*A.Stride], A.Stride, &x[0], &d[0])
				for q := 0; q < 4; q++ {
					s := d[q]
					aq := A.Col(j + q)
					for i := mm; i < m; i++ {
						s += aq[i] * x[i]
					}
					if beta == 0 {
						y[j+q] = alpha * s
					} else {
						y[j+q] = beta*y[j+q] + alpha*s
					}
				}
			}
		}
		for ; j+4 <= n; j += 4 {
			a0, a1, a2, a3 := A.Col(j), A.Col(j+1), A.Col(j+2), A.Col(j+3)
			var s0, s1, s2, s3 float64
			for i, xi := range x {
				s0 += a0[i] * xi
				s1 += a1[i] * xi
				s2 += a2[i] * xi
				s3 += a3[i] * xi
			}
			if beta == 0 {
				y[j], y[j+1], y[j+2], y[j+3] = alpha*s0, alpha*s1, alpha*s2, alpha*s3
			} else {
				y[j] = beta*y[j] + alpha*s0
				y[j+1] = beta*y[j+1] + alpha*s1
				y[j+2] = beta*y[j+2] + alpha*s2
				y[j+3] = beta*y[j+3] + alpha*s3
			}
		}
		for ; j < n; j++ {
			if s := alpha * Dot(A.Col(j), x); beta == 0 {
				y[j] = s
			} else {
				y[j] = beta*y[j] + s
			}
		}
		return
	}
	if len(x) != n || len(y) != m {
		panic("linalg: Gemv dimension mismatch")
	}
	if beta == 0 {
		for i := range y {
			y[i] = 0
		}
	} else if beta != 1 {
		for i := range y {
			y[i] *= beta
		}
	}
	kk := 0
	if haveFMAKernel && m >= 4 {
		// AVX2 path: eight columns per kernel call over the aligned row
		// prefix; any ragged rows get the same coefficients scalar-wise.
		mm := m &^ 3
		var coef [8]float64
		for ; kk+8 <= n; kk += 8 {
			for j := range coef {
				coef[j] = alpha * x[kk+j]
			}
			gemvCols8F64(mm, &A.Data[kk*A.Stride], A.Stride, &coef[0], &y[0])
			for j := 0; mm < m && j < 8; j++ {
				aj := A.Col(kk + j)
				c := coef[j]
				for i := mm; i < m; i++ {
					y[i] += c * aj[i]
				}
			}
		}
	}
	for ; kk+8 <= n; kk += 8 {
		a0, a1, a2, a3 := A.Col(kk), A.Col(kk+1), A.Col(kk+2), A.Col(kk+3)
		a4, a5, a6, a7 := A.Col(kk+4), A.Col(kk+5), A.Col(kk+6), A.Col(kk+7)
		b0, b1, b2, b3 := alpha*x[kk], alpha*x[kk+1], alpha*x[kk+2], alpha*x[kk+3]
		b4, b5, b6, b7 := alpha*x[kk+4], alpha*x[kk+5], alpha*x[kk+6], alpha*x[kk+7]
		for i := range y {
			s0 := a0[i]*b0 + a1[i]*b1 + a2[i]*b2 + a3[i]*b3
			s1 := a4[i]*b4 + a5[i]*b5 + a6[i]*b6 + a7[i]*b7
			y[i] += s0 + s1
		}
	}
	for ; kk+4 <= n; kk += 4 {
		a0, a1, a2, a3 := A.Col(kk), A.Col(kk+1), A.Col(kk+2), A.Col(kk+3)
		b0, b1, b2, b3 := alpha*x[kk], alpha*x[kk+1], alpha*x[kk+2], alpha*x[kk+3]
		for i := range y {
			y[i] += a0[i]*b0 + a1[i]*b1 + a2[i]*b2 + a3[i]*b3
		}
	}
	for ; kk < n; kk++ {
		Axpy(alpha*x[kk], A.Col(kk), y)
	}
}

// TrsmLeftUpper solves op(R)·X = B in place (B becomes X) for an upper
// triangular R, with op = identity or transpose. Only the leading n×n
// triangle of R is referenced where n = B.Rows. Columns are solved in
// register tiles of four so every (strided) load of an R element is reused
// across four right-hand sides; small problems run serially with no
// goroutine or closure overhead.
func TrsmLeftUpper(transR bool, R, B *Matrix) {
	n := B.Rows
	if R.Rows < n || R.Cols < n {
		panic("linalg: TrsmLeftUpper triangle too small")
	}
	if B.Cols >= 16 && workers() > 1 {
		parallelFor(B.Cols, 8, func(jlo, jhi int) {
			trsmUpperPanel(transR, R, B, n, jlo, jhi)
		})
		return
	}
	trsmUpperPanel(transR, R, B, n, 0, B.Cols)
}

func trsmUpperPanel(transR bool, R, B *Matrix, n, jlo, jhi int) {
	rd, rs := R.Data, R.Stride
	j := jlo
	for ; j+4 <= jhi; j += 4 {
		x0, x1, x2, x3 := B.Col(j), B.Col(j+1), B.Col(j+2), B.Col(j+3)
		if !transR {
			// Back substitution: R x = b, row i of R loaded once per tile.
			for i := n - 1; i >= 0; i-- {
				s0, s1, s2, s3 := x0[i], x1[i], x2[i], x3[i]
				ri := rd[i:]
				for kk := i + 1; kk < n; kk++ {
					r := ri[kk*rs]
					s0 -= r * x0[kk]
					s1 -= r * x1[kk]
					s2 -= r * x2[kk]
					s3 -= r * x3[kk]
				}
				d := ri[i*rs]
				x0[i] = s0 / d
				x1[i] = s1 / d
				x2[i] = s2 / d
				x3[i] = s3 / d
			}
		} else {
			// Forward substitution: Rᵀ x = b, where Rᵀ is lower triangular
			// with column i equal to row i of R.
			for i := 0; i < n; i++ {
				ri := rd[i:]
				d := ri[i*rs]
				xi0 := x0[i] / d
				xi1 := x1[i] / d
				xi2 := x2[i] / d
				xi3 := x3[i] / d
				x0[i], x1[i], x2[i], x3[i] = xi0, xi1, xi2, xi3
				for kk := i + 1; kk < n; kk++ {
					r := ri[kk*rs]
					x0[kk] -= r * xi0
					x1[kk] -= r * xi1
					x2[kk] -= r * xi2
					x3[kk] -= r * xi3
				}
			}
		}
	}
	for ; j < jhi; j++ {
		x := B.Col(j)
		if !transR {
			for i := n - 1; i >= 0; i-- {
				s := x[i]
				ri := rd[i:]
				for kk := i + 1; kk < n; kk++ {
					s -= ri[kk*rs] * x[kk]
				}
				x[i] = s / ri[i*rs]
			}
		} else {
			for i := 0; i < n; i++ {
				ri := rd[i:]
				xi := x[i] / ri[i*rs]
				x[i] = xi
				for kk := i + 1; kk < n; kk++ {
					x[kk] -= ri[kk*rs] * xi
				}
			}
		}
	}
}

// TrsmLeftLower solves op(L)·X = B in place for a lower triangular L, with
// the same 4-column register tiling as TrsmLeftUpper (here the reused L
// loads are contiguous column slices).
func TrsmLeftLower(transL bool, L, B *Matrix) {
	n := B.Rows
	if L.Rows < n || L.Cols < n {
		panic("linalg: TrsmLeftLower triangle too small")
	}
	if B.Cols >= 16 && workers() > 1 {
		parallelFor(B.Cols, 8, func(jlo, jhi int) {
			trsmLowerPanel(transL, L, B, n, jlo, jhi)
		})
		return
	}
	trsmLowerPanel(transL, L, B, n, 0, B.Cols)
}

func trsmLowerPanel(transL bool, L, B *Matrix, n, jlo, jhi int) {
	j := jlo
	for ; j+4 <= jhi; j += 4 {
		x0, x1, x2, x3 := B.Col(j), B.Col(j+1), B.Col(j+2), B.Col(j+3)
		if !transL {
			// Forward substitution: after fixing x[i], subtract x[i]*L[i+1:, i].
			for i := 0; i < n; i++ {
				col := L.Col(i)
				d := col[i]
				xi0 := x0[i] / d
				xi1 := x1[i] / d
				xi2 := x2[i] / d
				xi3 := x3[i] / d
				x0[i], x1[i], x2[i], x3[i] = xi0, xi1, xi2, xi3
				for kk := i + 1; kk < n; kk++ {
					l := col[kk]
					x0[kk] -= l * xi0
					x1[kk] -= l * xi1
					x2[kk] -= l * xi2
					x3[kk] -= l * xi3
				}
			}
		} else {
			// Back substitution on Lᵀ (upper):
			// x[i] = (b[i] - L[i+1:, i]ᵀ x[i+1:]) / L[i, i].
			for i := n - 1; i >= 0; i-- {
				col := L.Col(i)
				s0, s1, s2, s3 := x0[i], x1[i], x2[i], x3[i]
				for kk := i + 1; kk < n; kk++ {
					l := col[kk]
					s0 -= l * x0[kk]
					s1 -= l * x1[kk]
					s2 -= l * x2[kk]
					s3 -= l * x3[kk]
				}
				d := col[i]
				x0[i] = s0 / d
				x1[i] = s1 / d
				x2[i] = s2 / d
				x3[i] = s3 / d
			}
		}
	}
	for ; j < jhi; j++ {
		x := B.Col(j)
		if !transL {
			for i := 0; i < n; i++ {
				col := L.Col(i)
				xi := x[i] / col[i]
				x[i] = xi
				for kk := i + 1; kk < n; kk++ {
					x[kk] -= col[kk] * xi
				}
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				col := L.Col(i)
				s := x[i]
				for kk := i + 1; kk < n; kk++ {
					s -= col[kk] * x[kk]
				}
				x[i] = s / col[i]
			}
		}
	}
}
