// Package refcount checks acquire/release pairing on the serving layer's
// reference-counted objects across every exit path, panic unwinds included.
//
// Pairs are discovered structurally, per package: a named type with methods
// `acquire` and `release` (the Operator/admission pin protocol) or `allow`
// and `record` (the breaker protocol) forms a pair. Three acquire shapes
// are understood:
//
//   - bool-returning: `if x.acquire() { ... }` — the reference exists only
//     on the true edge;
//   - error-returning: `if err := x.acquire(ctx); err != nil { return }` —
//     the reference exists only on the err == nil edge;
//   - unconditional: `x.acquire()` as a bare statement.
//
// Once live, a reference must be retired on every path by one of:
//
//   - a direct release call (`x.release()`, `x.record(err)`);
//   - a deferred release — `defer x.release()` or a deferred closure whose
//     body releases — which covers both normal exits and panics;
//   - passing the object to a releaser method: a same-package method of the
//     paired type whose body begins by deferring the release
//     (Operator.do's `defer o.release()`), i.e. an ownership transfer.
//
// A reference still live at function exit is reported at its acquire site.
// A reference live across a call that can panic (any non-builtin,
// non-conversion call that is not part of the pairing protocol) is also
// reported: the unwind would leak it, and the fix is `defer`. Stray
// releases are not flagged — callers releasing on behalf of a caller-side
// acquire are the protocol working as designed.
package refcount

import (
	"go/ast"
	"go/token"
	"go/types"

	"gofmm/internal/analysis/framework"
	"gofmm/internal/analysis/framework/cfg"
)

// Analyzer is the refcount analyzer.
var Analyzer = &framework.Analyzer{
	Name: "refcount",
	Doc: "check acquire/release (and allow/record) pairing on refcounted " +
		"serve objects across all exits: every acquired reference must be " +
		"released on every path, with defer covering panic unwinds",
	Run: run,
}

// pairNames lists the acquire→release method-name protocols.
var pairNames = [][2]string{
	{"acquire", "release"},
	{"allow", "record"},
}

// pairing describes the discovered protocol of one named type.
type pairing struct {
	acquire *types.Func
	release *types.Func
	// releasers are same-type methods that begin with `defer recv.release()`
	// — calling one transfers ownership of the reference.
	releasers map[*types.Func]bool
}

// refKey identifies a refcounted object: root object + selector path
// (`o.adm` → {o, "adm"}).
type refKey struct {
	root types.Object
	path string
}

// site is one live, unprotected acquisition.
type site struct {
	pos token.Pos
	key refKey
	p   *pairing
}

// refFact maps acquire position → live site. An entry means "on some path,
// this acquisition has neither a release nor a scheduled (deferred) one".
// Bindings track not-yet-branched acquire results: condition variables
// (bool or error) whose branch decides whether the reference exists.
type refFact struct {
	live map[token.Pos]site
	bind map[types.Object]site
}

func emptyFact() refFact {
	return refFact{live: map[token.Pos]site{}, bind: map[types.Object]site{}}
}

func (f refFact) clone() refFact {
	out := refFact{
		live: make(map[token.Pos]site, len(f.live)),
		bind: make(map[types.Object]site, len(f.bind)),
	}
	for k, v := range f.live {
		out.live[k] = v
	}
	for k, v := range f.bind {
		out.bind[k] = v
	}
	return out
}

func run(pass *framework.Pass) error {
	pairs := collectPairs(pass)
	if len(pairs) == 0 {
		return nil
	}
	c := &checker{pass: pass, pairs: pairs}
	for _, file := range pass.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			c.checkFunc(fd.Body)
		}
	}
	return nil
}

// collectPairs discovers the per-package pairing protocols and their
// releaser methods.
func collectPairs(pass *framework.Pass) map[*types.Func]*pairing {
	// Group methods by receiver base type.
	type typeMethods struct {
		byName map[string]*types.Func
		decls  map[*types.Func]*ast.FuncDecl
	}
	byType := map[types.Object]*typeMethods{}
	for _, file := range pass.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			recv := recvTypeObj(sig)
			if recv == nil {
				continue
			}
			tm := byType[recv]
			if tm == nil {
				tm = &typeMethods{byName: map[string]*types.Func{}, decls: map[*types.Func]*ast.FuncDecl{}}
				byType[recv] = tm
			}
			tm.byName[fn.Name()] = fn
			tm.decls[fn] = fd
		}
	}
	// Acquire method → pairing, for every type exposing a full protocol.
	pairs := map[*types.Func]*pairing{}
	for _, tm := range byType {
		for _, names := range pairNames {
			acq, rel := tm.byName[names[0]], tm.byName[names[1]]
			if acq == nil || rel == nil {
				continue
			}
			p := &pairing{acquire: acq, release: rel, releasers: map[*types.Func]bool{}}
			for fn, fd := range tm.decls {
				if fn != acq && fn != rel && startsWithDeferredRelease(pass, fd, rel) {
					p.releasers[fn] = true
				}
			}
			pairs[acq] = p
		}
	}
	return pairs
}

// recvTypeObj returns the defining object of the receiver's named base
// type.
func recvTypeObj(sig *types.Signature) types.Object {
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// startsWithDeferredRelease reports whether fd's body has a top-level
// `defer recv.release()` — first statement in practice, any top-level
// position accepted.
func startsWithDeferredRelease(pass *framework.Pass, fd *ast.FuncDecl, rel *types.Func) bool {
	if fd.Body == nil {
		return false
	}
	for _, stmt := range fd.Body.List {
		if ds, ok := stmt.(*ast.DeferStmt); ok &&
			framework.CalleeFunc(pass.TypesInfo, ds.Call) == rel {
			return true
		}
	}
	return false
}

// checker runs the reference analysis over one function body.
type checker struct {
	pass  *framework.Pass
	pairs map[*types.Func]*pairing
}

type refAnalysis struct{ c *checker }

func (a refAnalysis) EntryFact() cfg.Fact { return emptyFact() }

func (a refAnalysis) Merge(x, y cfg.Fact) cfg.Fact {
	xs, ys := x.(refFact), y.(refFact)
	out := xs.clone()
	for k, v := range ys.live {
		out.live[k] = v
	}
	for k, v := range ys.bind {
		out.bind[k] = v
	}
	return out
}

func (a refAnalysis) Equal(x, y cfg.Fact) bool {
	xs, ys := x.(refFact), y.(refFact)
	if len(xs.live) != len(ys.live) || len(xs.bind) != len(ys.bind) {
		return false
	}
	for k := range xs.live {
		if _, ok := ys.live[k]; !ok {
			return false
		}
	}
	for k := range xs.bind {
		if _, ok := ys.bind[k]; !ok {
			return false
		}
	}
	return true
}

func (a refAnalysis) Transfer(f cfg.Fact, n ast.Node) cfg.Fact {
	in := f.(refFact)
	out := in
	mutable := false
	mut := func() refFact {
		if !mutable {
			out = out.clone()
			mutable = true
		}
		return out
	}

	// Deferred releases cover their reference for good: normal exit and
	// panic unwind both run them.
	if ds, ok := n.(*ast.DeferStmt); ok {
		for _, key := range a.c.releasedKeys(ds.Call, true) {
			dropKey(mut(), key)
		}
		return out
	}

	// Binding form: `err := x.acquire(ctx)` / `ok := x.acquire()`.
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if s, ok := a.c.acquireSite(call); ok {
				if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					obj := a.c.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = a.c.pass.TypesInfo.Uses[id]
					}
					if obj != nil {
						mut().bind[obj] = s
						return out
					}
				}
				// Result discarded: treat as unconditionally acquired.
				mut().live[s.pos] = s
				return out
			}
		}
	}

	cfg.Walk(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if s, ok := a.c.acquireSite(call); ok {
			if !a.c.conditionCall(n, call) {
				mut().live[s.pos] = s
			}
			return true
		}
		for _, key := range a.c.releasedKeys(call, false) {
			dropKey(mut(), key)
		}
		return true
	})
	return out
}

// TransferBranch realizes conditional acquisition: on the edge where the
// acquire succeeded the reference becomes live, on the other it never
// existed.
func (a refAnalysis) TransferBranch(f cfg.Fact, cond ast.Expr, branch bool) cfg.Fact {
	in := f.(refFact)
	// `if x.acquire() { ... }` — the call is the condition.
	if call, ok := ast.Unparen(cond).(*ast.CallExpr); ok {
		if s, ok := a.c.acquireSite(call); ok && isBool(a.c.pass, call) {
			if branch {
				out := in.clone()
				out.live[s.pos] = s
				return out
			}
			return in
		}
	}
	// `if ok { ... }` over a bound bool.
	if id, ok := ast.Unparen(cond).(*ast.Ident); ok {
		if obj := a.c.pass.TypesInfo.Uses[id]; obj != nil {
			if s, bound := in.bind[obj]; bound && branch {
				out := in.clone()
				delete(out.bind, obj)
				out.live[s.pos] = s
				return out
			}
		}
	}
	// `if err != nil { return }` / `if err == nil { ... }` over a bound
	// error: the reference exists on the nil edge.
	if be, ok := ast.Unparen(cond).(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
		if id := errCompare(be); id != nil {
			if obj := a.c.pass.TypesInfo.Uses[id]; obj != nil {
				if s, bound := in.bind[obj]; bound {
					out := in.clone()
					delete(out.bind, obj)
					acquired := (be.Op == token.EQL && branch) || (be.Op == token.NEQ && !branch)
					if acquired {
						out.live[s.pos] = s
					}
					return out
				}
			}
		}
	}
	return in
}

// errCompare matches `ident op nil` / `nil op ident` and returns the
// non-nil side.
func errCompare(be *ast.BinaryExpr) *ast.Ident {
	xid, _ := ast.Unparen(be.X).(*ast.Ident)
	yid, _ := ast.Unparen(be.Y).(*ast.Ident)
	if xid != nil && yid != nil && yid.Name == "nil" {
		return xid
	}
	if xid != nil && yid != nil && xid.Name == "nil" {
		return yid
	}
	return nil
}

func isBool(pass *framework.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	return ok && tv.Type != nil && types.Identical(tv.Type, types.Typ[types.Bool])
}

// dropKey removes every live site and binding of key.
func dropKey(f refFact, key refKey) {
	for pos, s := range f.live {
		if s.key == key {
			delete(f.live, pos)
		}
	}
	for obj, s := range f.bind {
		if s.key == key {
			delete(f.bind, obj)
		}
	}
}

// acquireSite classifies call as an acquire of a known pairing on a
// flattenable receiver chain.
func (c *checker) acquireSite(call *ast.CallExpr) (site, bool) {
	fn := framework.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return site{}, false
	}
	p, ok := c.pairs[fn]
	if !ok {
		return site{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return site{}, false
	}
	root, path, ok := framework.Chain(c.pass.TypesInfo, sel.X)
	if !ok {
		return site{}, false
	}
	return site{pos: call.Pos(), key: refKey{root: root, path: path}, p: p}, true
}

// releasedKeys returns the refKeys that call retires: a direct release or
// releaser-method call on a chain receiver, or (when deferred) a closure
// whose body contains one.
func (c *checker) releasedKeys(call *ast.CallExpr, deferred bool) []refKey {
	var keys []refKey
	collect := func(call *ast.CallExpr) {
		fn := framework.CalleeFunc(c.pass.TypesInfo, call)
		if fn == nil {
			return
		}
		isRelease := false
		for _, p := range c.pairs {
			if fn == p.release || p.releasers[fn] {
				isRelease = true
				break
			}
		}
		if !isRelease {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if root, path, ok := framework.Chain(c.pass.TypesInfo, sel.X); ok {
			keys = append(keys, refKey{root: root, path: path})
		}
	}
	collect(call)
	if deferred {
		if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(x ast.Node) bool {
				if inner, ok := x.(*ast.CallExpr); ok {
					collect(inner)
				}
				return true
			})
		}
	}
	return keys
}

// conditionCall reports whether call is the branch condition of n (an
// IfStmt/ForStmt condition handled by TransferBranch, not by Transfer).
func (c *checker) conditionCall(n ast.Node, call *ast.CallExpr) bool {
	e, ok := n.(ast.Expr)
	return ok && ast.Unparen(e) == ast.Expr(call)
}

// checkFunc solves the analysis and reports leaks at exit and across
// panic-capable calls. Closures are checked as their own functions.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	g := cfg.New(body)
	res := cfg.Solve(g, refAnalysis{c: c})

	// One report per acquire site; the exit leak subsumes the panic window.
	reported := map[token.Pos]bool{}
	if exit, ok := res.Exit(g); ok {
		for _, s := range exit.(refFact).live {
			reported[s.pos] = true
			c.pass.Reportf(s.pos,
				"%s acquired here is not released on every path; pair it with %s (or defer it)",
				s.p.acquire.Name(), s.p.release.Name())
		}
	}

	// Panic windows: a live (non-deferred) reference crossing a call that
	// can unwind leaks on panic.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			before, ok := res.Before(n)
			if !ok {
				continue
			}
			live := before.(refFact).live
			if len(live) == 0 {
				continue
			}
			if !c.hasPanicCapableCall(n) {
				continue
			}
			for _, s := range live {
				if reported[s.pos] {
					continue
				}
				reported[s.pos] = true
				c.pass.Reportf(s.pos,
					"%s acquired here may leak if a later call panics; use `defer %s`",
					s.p.acquire.Name(), s.p.release.Name())
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.checkFunc(fl.Body)
			return false
		}
		return true
	})
}

// hasPanicCapableCall reports whether node n performs a call that can
// unwind: any resolved function call outside the pairing protocol, or a
// call through a function value. Conversions and builtins do not count.
func (c *checker) hasPanicCapableCall(n ast.Node) bool {
	if _, ok := n.(*ast.DeferStmt); ok {
		// The deferred call runs at exit, not here; by then the reference
		// is either released or reported by the exit check.
		return false
	}
	found := false
	cfg.Walk(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		if fn := framework.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
			for _, p := range c.pairs {
				if fn == p.acquire || fn == p.release || p.releasers[fn] {
					return true // protocol calls manage the reference themselves
				}
			}
		}
		found = true
		return false
	})
	return found
}
