package krylov

import (
	"errors"
	"fmt"

	"gofmm/internal/linalg"
)

// BlockCGResult reports the outcome of a block CG solve.
type BlockCGResult struct {
	Iterations int
	// Residuals holds the final relative residual ‖r_j‖/‖b_j‖ per column;
	// MaxResidual is their maximum (the convergence criterion).
	Residuals   []float64
	MaxResidual float64
}

// ErrBreakdown reports a rank-deficient block in block CG (two right-hand
// sides became linearly dependent mid-iteration). Re-solve with fewer
// columns per block or deflate the inputs.
var ErrBreakdown = errors.New("krylov: block CG breakdown")

// BlockCG solves A·X = B for SPD A and an n×r block of right-hand sides
// simultaneously (O'Leary's block conjugate gradient), optionally
// preconditioned. Every iteration costs one r-wide block matvec, so an
// operator with a batched evaluation path (GOFMM's Matmat) runs the
// GEMM-shaped passes once for all r systems instead of r GEMV-shaped
// sweeps — and the shared Krylov subspace typically converges in fewer
// iterations than r independent CG solves. Converged when every column's
// relative residual falls below tol; X is returned even on
// ErrNotConverged.
func BlockCG(A Operator, pre Preconditioner, B *Matrix, tol float64, maxIter int) (*Matrix, BlockCGResult, error) {
	n := A.N()
	if B == nil || B.Rows != n {
		return nil, BlockCGResult{}, fmt.Errorf("krylov: BlockCG right-hand side dimension mismatch")
	}
	r := B.Cols
	res := BlockCGResult{Residuals: make([]float64, r)}
	X := linalg.NewMatrix(n, r)
	if r == 0 {
		return X, res, nil
	}
	norm0 := make([]float64, r)
	allZero := true
	for j := 0; j < r; j++ {
		norm0[j] = linalg.Nrm2(B.Col(j))
		if norm0[j] == 0 {
			norm0[j] = 1 // zero column: absolute residual, solution stays 0
		} else {
			allZero = false
		}
	}
	if allZero {
		return X, res, nil
	}
	prec := func(R *Matrix) *Matrix {
		if pre == nil {
			return R.Clone()
		}
		return pre.Solve(R)
	}
	R := B.Clone()
	Z := prec(R)
	P := Z.Clone()
	rz := linalg.MatMul(true, false, Z, R) // r×r
	for it := 0; it < maxIter; it++ {
		Q := A.Matvec(P)
		pq := linalg.MatMul(true, false, P, Q)
		lu, err := linalg.LUFactor(pq)
		if err != nil {
			return X, res, fmt.Errorf("%w: iteration %d: %v", ErrBreakdown, it, err)
		}
		alpha := rz.Clone()
		lu.Solve(alpha) // alpha = (PᵀAP)⁻¹ ZᵀR
		X.AddScaled(1, linalg.MatMul(false, false, P, alpha))
		R.AddScaled(-1, linalg.MatMul(false, false, Q, alpha))
		res.Iterations = it + 1
		res.MaxResidual = 0
		for j := 0; j < r; j++ {
			res.Residuals[j] = linalg.Nrm2(R.Col(j)) / norm0[j]
			if res.Residuals[j] > res.MaxResidual {
				res.MaxResidual = res.Residuals[j]
			}
		}
		if res.MaxResidual < tol {
			return X, res, nil
		}
		Z = prec(R)
		rzNew := linalg.MatMul(true, false, Z, R)
		lu, err = linalg.LUFactor(rz)
		if err != nil {
			return X, res, fmt.Errorf("%w: iteration %d: %v", ErrBreakdown, it, err)
		}
		beta := rzNew.Clone()
		lu.Solve(beta) // beta = (ZᵀR)⁻¹ Z'ᵀR'
		Pnext := Z.Clone()
		Pnext.AddScaled(1, linalg.MatMul(false, false, P, beta))
		P = Pnext
		rz = rzNew
	}
	return X, res, ErrNotConverged
}
