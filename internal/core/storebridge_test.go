package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gofmm/internal/linalg"
	"gofmm/internal/store"
)

// The store round-trip property: across distances, tolerance regimes and
// cache precisions, SaveTo → LoadFrom (both the portable and the mmap path)
// reproduces the in-memory operator bit for bit — identical Matvec and
// Matmat results, identical reinstalled plan digest — with no oracle
// attached to the loaded side.
func TestStoreRoundTripProperty(t *testing.T) {
	type variant struct {
		name string
		cfg  Config
	}
	variants := []variant{
		{"angle-tol2-f64", Config{Distance: Angle, Tol: 1e-2, CacheBlocks: true}},
		{"angle-tol5-f64", Config{Distance: Angle, Tol: 1e-5, CacheBlocks: true}},
		{"kernel-tol2-f32", Config{Distance: Kernel, Tol: 1e-2, CacheBlocks: true, CacheSingle: true}},
		{"kernel-tol5-f32", Config{Distance: Kernel, Tol: 1e-5, CacheBlocks: true, CacheSingle: true}},
		// Fixed-rank regime: tolerance loose enough that MaxRank binds.
		{"angle-fixedrank-f64", Config{Distance: Angle, Tol: 1e-12, MaxRank: 12, CacheBlocks: true}},
		{"kernel-fixedrank-f32", Config{Distance: Kernel, Tol: 1e-12, MaxRank: 12, CacheBlocks: true, CacheSingle: true}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := v.cfg
			cfg.LeafSize = 32
			if cfg.MaxRank == 0 {
				cfg.MaxRank = 24
			}
			cfg.Kappa = 8
			cfg.Budget = 0.1
			cfg.Exec = Sequential
			cfg.Seed = 42
			cfg.CompilePlan = true
			h, _ := compressGauss(t, 300, cfg)
			if h.Plan() == nil {
				if _, err := h.CompilePlan(); err != nil {
					t.Fatal(err)
				}
			}

			path := filepath.Join(t.TempDir(), "op.store")
			sz, err := h.SaveTo(path)
			if err != nil {
				t.Fatal(err)
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != sz {
				t.Fatalf("SaveTo reported %d bytes, file has %d", sz, st.Size())
			}

			rng := rand.New(rand.NewSource(7))
			W1 := linalg.GaussianMatrix(rng, 300, 1)
			W4 := linalg.GaussianMatrix(rng, 300, 4)
			wantVec := h.Matvec(W1)
			wantMat := h.Matmat(W4)
			wantInterp, err := h.InterpMatvecCtx(context.Background(), W1)
			if err != nil {
				t.Fatal(err)
			}
			wantDigest := h.Plan().DigestHex()

			for _, mm := range []bool{false, true} {
				name := "open"
				if mm {
					name = "mmap"
				}
				h2, info, err := LoadFrom(path, LoadOptions{Mmap: mm})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if h2.HasOracle() {
					t.Fatalf("%s: loaded operator claims an oracle", name)
				}
				if !info.HasPlan || info.PlanDigest != wantDigest {
					t.Fatalf("%s: plan digest %q, want %q", name, info.PlanDigest, wantDigest)
				}
				if got := h2.Plan().DigestHex(); got != wantDigest {
					t.Fatalf("%s: reinstalled plan digest %q, want %q", name, got, wantDigest)
				}
				gotVec, err := h2.MatvecCtx(context.Background(), W1)
				if err != nil {
					t.Fatalf("%s matvec: %v", name, err)
				}
				if !linalg.EqualApprox(wantVec, gotVec, 0) {
					t.Fatalf("%s: matvec not bit-identical (max |Δ| = %g)", name, maxAbsDiff(wantVec, gotVec))
				}
				gotMat, err := h2.MatmatCtx(context.Background(), W4)
				if err != nil {
					t.Fatalf("%s matmat: %v", name, err)
				}
				if !linalg.EqualApprox(wantMat, gotMat, 0) {
					t.Fatalf("%s: matmat not bit-identical (max |Δ| = %g)", name, maxAbsDiff(wantMat, gotMat))
				}
				// The interpreter path must agree too: the loaded caches are
				// complete, so it runs oracle-free.
				gotInterp, err := h2.InterpMatvecCtx(context.Background(), W1)
				if err != nil {
					t.Fatalf("%s interpret: %v", name, err)
				}
				if !linalg.EqualApprox(wantInterp, gotInterp, 0) {
					t.Fatalf("%s: interpreted matvec differs", name)
				}
				if mm && !h2.StoreMapped() {
					t.Log("mmap load fell back to portable path on this platform")
				}
				if err := h2.ReleaseStore(); err != nil {
					t.Fatalf("%s release: %v", name, err)
				}
			}
		})
	}
}

// A loaded operator without caches for some blocks must refuse evaluation
// with ErrNoOracle rather than panic or fabricate entries.
func TestStoreLoadWithoutCachesNeedsOracle(t *testing.T) {
	h, K := compressGauss(t, 200, Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-5, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 9, CacheBlocks: false,
	})
	path := filepath.Join(t.TempDir(), "nocache.store")
	if _, err := h.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	h2, _, err := LoadFrom(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.ReleaseStore()
	if _, err := h2.MatvecCtx(context.Background(), linalg.NewMatrix(200, 1)); !errors.Is(err, ErrNoOracle) {
		t.Fatalf("uncached matvec: got %v, want ErrNoOracle", err)
	}
	if _, err := h2.CompilePlanCtx(context.Background()); !errors.Is(err, ErrNoOracle) {
		t.Fatalf("plan compile: got %v, want ErrNoOracle", err)
	}
	// Attaching the oracle restores evaluation.
	if err := h2.AttachOracle(denseSPD{K}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	W := linalg.GaussianMatrix(rng, 200, 2)
	got, err := h2.MatvecCtx(context.Background(), W)
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.EqualApprox(h.Matvec(W), got, 0) {
		t.Fatal("post-attach matvec differs")
	}
}

// ReadFrom with a nil oracle (the serving workflow) must evaluate from the
// cached blocks and type-fail the oracle-requiring paths.
func TestReadFromNilOracle(t *testing.T) {
	h, _ := compressGauss(t, 200, Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-5, Kappa: 8, Budget: 0.1,
		Distance: Angle, Exec: Sequential, Seed: 11, CacheBlocks: true,
	})
	path := filepath.Join(t.TempDir(), "v2.bin")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteTo(fh); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	h2, err := ReadFrom(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h2.HasOracle() {
		t.Fatal("nil-oracle load claims an oracle")
	}
	rng := rand.New(rand.NewSource(12))
	W := linalg.GaussianMatrix(rng, 200, 2)
	got, err := h2.MatvecCtx(context.Background(), W)
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.EqualApprox(h.Matvec(W), got, 0) {
		t.Fatal("oracle-free matvec differs")
	}
	if err := h2.AttachOracle(nil); !errors.Is(err, ErrNoOracle) {
		t.Fatalf("AttachOracle(nil): got %v", err)
	}
}

// Store files are untrusted input through the core bridge as well: payload
// corruption below the (checksummed) container layer must yield typed
// errors, never panics.
func TestStoreLoadRejectsCorruptPayload(t *testing.T) {
	h, _ := compressGauss(t, 200, Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-4, Kappa: 8, Budget: 0.1,
		Distance: Angle, Exec: Sequential, Seed: 13, CacheBlocks: true,
		CompilePlan: true,
	})
	if h.Plan() == nil {
		if _, err := h.CompilePlan(); err != nil {
			t.Fatal(err)
		}
	}
	sections, err := h.storeSections()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Mutate each payload section in turn and rewrite the container (with
	// fresh checksums, so only the core decoder can catch it).
	for _, target := range []store.SectionKind{store.SecMeta, store.SecTopo, store.SecPlan} {
		for _, cut := range []bool{false, true} {
			mutated := make([]store.Section, len(sections))
			copy(mutated, sections)
			for i, s := range mutated {
				if s.Kind != target {
					continue
				}
				data := append([]byte(nil), s.Data...)
				if cut {
					data = data[:len(data)/2]
				} else if len(data) > 16 {
					data[16] ^= 0xFF
				}
				mutated[i] = store.Section{Kind: s.Kind, Data: data}
			}
			path := filepath.Join(dir, "corrupt.store")
			if _, err := store.WriteFile(path, mutated); err != nil {
				t.Fatal(err)
			}
			if _, _, err := LoadFrom(path, LoadOptions{Mmap: true}); err == nil {
				t.Fatalf("corrupted %v (cut=%v) loaded successfully", target, cut)
			}
		}
	}
	// Dropping the arenas while the topo still references them must fail too.
	noArena := []store.Section{sections[0], sections[1], sections[2]}
	path := filepath.Join(dir, "noarena.store")
	if _, err := store.WriteFile(path, noArena); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFrom(path, LoadOptions{}); err == nil {
		t.Fatal("store without arenas loaded successfully")
	}
}

// Saving must refuse an uncompressed operator instead of writing an empty
// container.
func TestSaveToRejectsUncompressed(t *testing.T) {
	h := &Hierarchical{K: noOracle{n: 10}}
	if _, err := h.SaveTo(filepath.Join(t.TempDir(), "x.store")); err == nil {
		t.Fatal("expected error saving uncompressed operator")
	}
	if _, err := h.WriteStore(io.Discard); err == nil {
		t.Fatal("expected error streaming uncompressed operator")
	}
}

// WriteStore streams the same bytes SaveTo lands on disk: the container is
// deterministic for a given operator, so the two paths must agree exactly.
func TestWriteStoreMatchesSaveTo(t *testing.T) {
	cfg := Config{
		LeafSize: 32, MaxRank: 16, Tol: 1e-3, Kappa: 8, Budget: 0.1,
		Distance: Angle, Exec: Sequential, NumWorkers: 1, Seed: 7,
		CacheBlocks: true, CompilePlan: true,
	}
	h, _ := compressGauss(t, 200, cfg)
	path := filepath.Join(t.TempDir(), "w.store")
	if _, err := h.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := h.WriteStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteStore returned %d, wrote %d bytes", n, buf.Len())
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatal("WriteStore bytes differ from SaveTo file")
	}
}
