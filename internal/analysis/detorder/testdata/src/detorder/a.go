// Package detorder is the golden fixture for the detorder analyzer.
package detorder

import "sort"

// Appending map keys without sorting: flagged.
func CollectUnsorted(votes map[int]int) []int {
	var out []int
	for k := range votes {
		out = append(out, k) // want `append to out inside map iteration is nondeterministic`
	}
	return out
}

// The collect-then-sort idiom: clean.
func CollectSorted(votes map[int]int) []int {
	var out []int
	for k := range votes {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// sort.Slice with a comparator also counts: clean.
func CollectSortSlice(votes map[int]int) []int {
	cand := make([]int, 0, len(votes))
	for leaf := range votes {
		cand = append(cand, leaf)
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
	return cand
}

// Float accumulation over a map is order-sensitive (FP addition does not
// commute in rounding): flagged.
func SumWeights(w map[string]float64) float64 {
	var total float64
	for _, v := range w {
		total += v // want `floating-point accumulation into total inside map iteration`
	}
	return total
}

// Appending to state reached through a selector: flagged (the caller may
// never sort it).
type node struct{ far []int }

type tree struct{ nodes []node }

func (t *tree) MergeCommon(alpha int, common map[int]bool) {
	for a := range common {
		t.nodes[alpha].far = append(t.nodes[alpha].far, a) // want `append to t\.nodes\[alpha\]\.far inside map iteration`
	}
}

// Integer accumulation commutes exactly: clean.
func CountVotes(votes map[int]int) int {
	n := 0
	for _, v := range votes {
		n += v
	}
	return n
}

// A slice declared inside the loop body dies each iteration: clean.
func PerKeyScratch(m map[int][]float64) int {
	total := 0
	for _, vs := range m {
		var scratch []float64
		scratch = append(scratch, vs...)
		total += len(scratch)
	}
	return total
}

// Ranging over a slice is ordered: clean.
func SumSlice(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}
