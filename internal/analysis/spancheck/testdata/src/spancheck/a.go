// Package spancheck is the golden fixture for the spancheck analyzer.
package spancheck

import "telemetry"

// The chained one-liner: clean.
func Chained(rec *telemetry.Recorder) {
	defer rec.StartSpan("evaluate").End()
}

// Chaining through another method before End: clean.
func ChainedAnnotate(rec *telemetry.Recorder) {
	defer rec.StartSpan("evaluate").Annotate("leaf").End()
}

// Root span with a deferred End: clean.
func DeferredRoot(rec *telemetry.Recorder) {
	root := rec.StartSpan("matvec")
	defer root.End()
	work()
}

// Straight-line start/work/end: clean.
func PlainEnd(rec *telemetry.Recorder) {
	sp := rec.StartSpan("pack")
	work()
	sp.End()
}

// Segmented reuse of one variable, each segment ended: clean.
func Segmented(root *telemetry.Span) {
	sp := root.StartSpan("N2S")
	work()
	sp.End()
	sp = root.StartSpan("S2S")
	work()
	sp.End()
}

// The result escapes to the caller, which owns End: clean.
func Escapes(rec *telemetry.Recorder) *telemetry.Span {
	return rec.StartSpan("outer")
}

// Passed to a helper that owns it: clean.
func EscapesArg(rec *telemetry.Recorder) {
	finish(rec.StartSpan("helper"))
}

func finish(sp *telemetry.Span) { sp.End() }

// A closure may end the span it captures: clean.
func EndedInClosure(rec *telemetry.Recorder) {
	sp := rec.StartSpan("async")
	done := func() { sp.End() }
	work()
	done()
}

// Result dropped on the floor: flagged.
func Discarded(rec *telemetry.Recorder) {
	rec.StartSpan("oops") // want `result of StartSpan is discarded`
	work()
}

// Assigned to blank: flagged.
func Blank(rec *telemetry.Recorder) {
	_ = rec.StartSpan("oops") // want `result of StartSpan is assigned to _`
	work()
}

// Second segment never ended: flagged at its binding.
func SegmentLeak(root *telemetry.Span) {
	sp := root.StartSpan("N2S")
	work()
	sp.End()
	sp = root.StartSpan("S2S") // want `span sp is never ended in its live segment`
	work()
}

// Early return between binding and End: the End is unreachable on the error
// path, flagged at the return.
func EarlyReturn(rec *telemetry.Recorder, fail bool) error {
	sp := rec.StartSpan("guarded")
	if fail {
		return errFail // want `return leaks span sp`
	}
	work()
	sp.End()
	return nil
}

// Ending before the early return is the correct shape: clean.
func EndBeforeReturn(rec *telemetry.Recorder, fail bool) error {
	sp := rec.StartSpan("guarded")
	if fail {
		sp.End()
		return errFail
	}
	work()
	sp.End()
	return nil
}

// Deferred End covers every return: clean.
func DeferCoversReturns(rec *telemetry.Recorder, fail bool) error {
	sp := rec.StartSpan("guarded")
	defer sp.End()
	if fail {
		return errFail
	}
	work()
	return nil
}

// A return inside a nested closure does not exit this function: clean.
func ClosureReturnIsFine(rec *telemetry.Recorder) {
	sp := rec.StartSpan("outer")
	f := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	_ = f(3)
	sp.End()
}

var errFail = errorString("fail")

type errorString string

func (e errorString) Error() string { return string(e) }

func work() {}
