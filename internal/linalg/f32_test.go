package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrix32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	A := GaussianMatrix(rng, 17, 9)
	A32 := ToMatrix32(A)
	if A32.Rows != 17 || A32.Cols != 9 {
		t.Fatalf("dims %d×%d", A32.Rows, A32.Cols)
	}
	back := A32.ToMatrix()
	// Round trip through fp32 loses at most relative 2^-24 per entry.
	for j := 0; j < 9; j++ {
		for i := 0; i < 17; i++ {
			d := math.Abs(back.At(i, j) - A.At(i, j))
			if d > 1e-6*(1+math.Abs(A.At(i, j))) {
				t.Fatalf("fp32 round trip lost too much at (%d,%d): %g", i, j, d)
			}
			if A32.At(i, j) != back.At(i, j) {
				t.Fatal("At and ToMatrix disagree")
			}
		}
	}
	if A32.Bytes() != 17*9*4 {
		t.Fatalf("Bytes = %d", A32.Bytes())
	}
}

func TestGemmMixedEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	A := ToMatrix32(GaussianMatrix(rng, 5, 4))
	B := GaussianMatrix(rng, 4, 3)
	C := GaussianMatrix(rng, 5, 3)
	ref := C.Clone()
	// alpha = 0 with beta = 1 must leave C untouched.
	GemmMixed(0, A, B, 1, C)
	if !EqualApprox(C, ref, 0) {
		t.Fatal("alpha=0 modified C")
	}
	// beta = 0 must zero C first.
	GemmMixed(0, A, B, 0, C)
	if C.FrobeniusNorm() != 0 {
		t.Fatal("beta=0 did not clear C")
	}
	// Dimension mismatch panics.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GemmMixed(1, A, GaussianMatrix(rng, 5, 3), 0, C)
}

func TestGemvBetaPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	A := GaussianMatrix(rng, 6, 4)
	x := make([]float64, 4)
	y := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = 1
	}
	// y = 2*A*x + 3*y.
	want := make([]float64, 6)
	for i := 0; i < 6; i++ {
		s := 3.0
		for j := 0; j < 4; j++ {
			s += 2 * A.At(i, j) * x[j]
		}
		want[i] = s
	}
	Gemv(false, 2, A, x, 3, y)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("Gemv beta path wrong at %d", i)
		}
	}
}

func TestViewZeroSize(t *testing.T) {
	m := NewMatrix(4, 4)
	v := m.View(2, 2, 0, 0)
	if v.Rows != 0 || v.Cols != 0 {
		t.Fatal("zero view dims wrong")
	}
	v2 := m.View(0, 0, 4, 0)
	if v2.Cols != 0 {
		t.Fatal("zero-col view wrong")
	}
}

func TestTransposedEmptyAndSingle(t *testing.T) {
	m := NewMatrix(1, 1)
	m.Set(0, 0, 5)
	if m.Transposed().At(0, 0) != 5 {
		t.Fatal("1×1 transpose wrong")
	}
	e := NewMatrix(0, 3)
	et := e.Transposed()
	if et.Rows != 3 || et.Cols != 0 {
		t.Fatalf("empty transpose dims %d×%d", et.Rows, et.Cols)
	}
}

func TestScaleAndFillInteraction(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Fill(2)
	m.Scale(0.5)
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			if m.At(i, j) != 1 {
				t.Fatal("Fill+Scale wrong")
			}
		}
	}
}
