// Command gofmmd is the long-running GOFMM serving daemon: it compresses
// (or loads) one or more SPD operators at startup, registers them in an
// operator registry, and serves Matvec/Matmat/Solve over HTTP with the full
// overload-protection stack — bounded admission with load shedding (503 +
// Retry-After), per-tenant token-bucket quotas (429), per-operator circuit
// breakers, client deadline propagation, and graceful drain on
// SIGTERM/SIGINT (stop admitting, answer in-flight requests, flush the
// batch evaluators, flip /readyz, exit).
//
// Usage:
//
//	gofmmd -addr :8080 -op main=K02:2048 -op aux=K05:1024 \
//	       -quota-rps 64 -max-concurrent 4 -max-queue 32
//
// Then:
//
//	curl -s localhost:8080/v1/operators
//	curl -s -X POST -H 'X-Tenant: alice' -H 'X-Deadline-Ms: 2000' \
//	     -d '{"vector": [...]}' localhost:8080/v1/operators/main/matvec
//
// The live introspection endpoints (/metrics Prometheus exposition,
// /healthz, /readyz, /debug/*) are mounted on the same listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gofmm/internal/core"
	"gofmm/internal/serve"
	"gofmm/internal/spdmat"
	"gofmm/internal/telemetry"
	"gofmm/internal/telemetry/live"
	"gofmm/internal/workspace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gofmmd: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// opSpec is one -op flag: name=MATRIX:N.
type opSpec struct {
	name   string
	matrix string
	n      int
}

func parseOpSpec(raw string) (opSpec, error) {
	name, rest, ok := strings.Cut(raw, "=")
	if !ok {
		return opSpec{}, fmt.Errorf("bad -op %q: want name=MATRIX:N", raw)
	}
	matrix, dims, ok := strings.Cut(rest, ":")
	if !ok {
		return opSpec{}, fmt.Errorf("bad -op %q: want name=MATRIX:N", raw)
	}
	n, err := strconv.Atoi(dims)
	if err != nil || n <= 0 {
		return opSpec{}, fmt.Errorf("bad -op %q: dimension %q is not a positive integer", raw, dims)
	}
	return opSpec{name: name, matrix: matrix, n: n}, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gofmmd", flag.ContinueOnError)
	var ops []opSpec
	fs.Func("op", "operator to serve, as name=MATRIX:N (repeatable; default main=K02:1024)",
		func(raw string) error {
			spec, err := parseOpSpec(raw)
			if err != nil {
				return err
			}
			ops = append(ops, spec)
			return nil
		})
	var (
		addr    = fs.String("addr", "127.0.0.1:8080", "listen address")
		m       = fs.Int("m", 128, "leaf size")
		s       = fs.Int("s", 128, "maximum rank")
		tol     = fs.Float64("tol", 1e-5, "adaptive tolerance τ")
		kappa   = fs.Int("k", 32, "number of nearest neighbors κ")
		budget  = fs.Float64("budget", 0, "direct-evaluation budget (0 = HSS, enables /solve)")
		workers = fs.Int("workers", 4, "worker pool size")
		seed    = fs.Int64("seed", 1, "RNG seed")

		maxConc    = fs.Int("max-concurrent", 4, "concurrent evaluations per operator")
		maxQueue   = fs.Int("max-queue", 32, "admission queue depth per operator; beyond it requests are shed with 503")
		retryAfter = fs.Duration("retry-after", time.Second, "Retry-After hint attached to shed requests")

		quotaRPS   = fs.Float64("quota-rps", 0, "per-tenant sustained quota in columns/second (0 = unlimited)")
		quotaBurst = fs.Float64("quota-burst", 0, "per-tenant burst in columns (default max(quota-rps, 1))")

		brkThreshold = fs.Int("breaker-threshold", 5, "consecutive panics/stalls that open an operator's circuit breaker")
		brkCooldown  = fs.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before a half-open probe")

		deadline     = fs.Duration("deadline", 30*time.Second, "default evaluation deadline when the request has no X-Deadline-Ms")
		maxDeadline  = fs.Duration("deadline-max", 5*time.Minute, "cap on client-requested deadlines")
		maxBody      = fs.Int64("max-body", 64<<20, "request body size limit in bytes")
		readTimeout  = fs.Duration("read-timeout", 30*time.Second, "per-request body read timeout (slowloris bound)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM/SIGINT")

		batchMax    = fs.Int("batch-max", 32, "BatchEvaluator maximum columns per flush")
		batchWindow = fs.Duration("batch-window", 250*time.Microsecond, "BatchEvaluator coalescing window")

		flightDir = fs.String("flight-dir", "", "arm the flight recorder and write crash dumps into this directory")
		logDest   = fs.String("log", "", "write structured JSON logs to this file, or '-' for stderr")

		storeDir  = fs.String("store-dir", "", "serve operators from this directory of .store files (gofmm.store/v1, written by gofmm -store or SaveTo): every NAME.store is loaded at startup, and POST/DELETE /admin/operators/{name} hot-swap or remove operators from the same directory at runtime")
		storeMmap = fs.Bool("store-mmap", true, "load store files with mmap for zero-copy serving (falls back to a portable read when mapping fails)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(ops) == 0 && *storeDir == "" {
		ops = []opSpec{{name: "main", matrix: "K02", n: 1024}}
	}

	rec := telemetry.New()
	if *logDest != "" {
		lw := io.Writer(os.Stderr)
		if *logDest != "-" {
			f, err := os.Create(*logDest)
			if err != nil {
				return err
			}
			defer f.Close()
			lw = f
		}
		rec.SetLogger(slog.New(slog.NewJSONHandler(lw,
			&slog.HandlerOptions{Level: slog.LevelInfo})))
	}
	flight := telemetry.NewFlightRecorder(rec, 512)
	if *flightDir != "" {
		flight.SetDumpDir(*flightDir)
	}

	// The root context ends on SIGTERM/SIGINT; everything the daemon runs
	// (compression, batch flushers, drain) descends from it — but drain
	// itself runs on a detached timeout so a second signal cannot cut the
	// in-flight answers short.
	ctx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	// Evaluators live on a separate context NOT descended from the signal:
	// SIGTERM must stop admission, not abort the flushes that answer
	// in-flight requests. Drain closes the evaluators; this cancel is the
	// backstop for error exits before drain.
	evalCtx, evalCancel := context.WithCancel(context.Background())
	defer evalCancel()

	lv := live.New(rec, live.WithFlightRecorder(flight))
	lv.SetReady(false) // warming up: compressing operators

	reg := serve.NewRegistry(rec)
	pool := workspace.New()
	pool.AttachTelemetry(rec)
	lim := serve.Limits{
		Admission: serve.AdmissionConfig{
			MaxConcurrent: *maxConc, MaxQueue: *maxQueue, RetryAfter: *retryAfter,
		},
		Breaker: serve.BreakerConfig{Threshold: *brkThreshold, Cooldown: *brkCooldown},
	}
	batch := core.BatchOptions{MaxBatch: *batchMax, MaxDelay: *batchWindow}
	if *storeDir != "" {
		entries, err := os.ReadDir(*storeDir)
		if err != nil {
			return fmt.Errorf("reading -store-dir: %w", err)
		}
		loaded := 0
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".store") {
				continue
			}
			name := strings.TrimSuffix(e.Name(), ".store")
			t0 := time.Now()
			h, info, err := core.LoadFrom(filepath.Join(*storeDir, e.Name()), core.LoadOptions{
				Mmap: *storeMmap, NumWorkers: *workers, Workspace: pool, Telemetry: rec,
			})
			if err != nil {
				return fmt.Errorf("loading %s: %w", e.Name(), err)
			}
			op, err := reg.SwapHierarchical(evalCtx, name, h, batch, lim)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "operator %q: loaded %d-byte store in %.0fms (N=%d, mapped=%v, plan=%v, solve=%v)\n",
				name, info.Bytes, time.Since(t0).Seconds()*1e3, h.N(), info.Mapped, info.HasPlan, op.CanSolve())
			loaded++
		}
		if loaded == 0 && len(ops) == 0 {
			return fmt.Errorf("-store-dir %s holds no .store files and no -op was given", *storeDir)
		}
	}
	for _, spec := range ops {
		p, err := spdmat.Generate(spec.matrix, spec.n, *seed)
		if err != nil {
			return err
		}
		cfg := core.Config{
			LeafSize: *m, MaxRank: *s, Tol: *tol, Kappa: *kappa, Budget: *budget,
			NumWorkers: *workers, Seed: *seed, CacheBlocks: true,
			Points: p.Points, Telemetry: rec, Workspace: pool,
		}
		t0 := time.Now()
		h, err := core.CompressCtx(ctx, p.K, cfg)
		if err != nil {
			return err
		}
		op, err := reg.RegisterHierarchical(evalCtx, spec.name, h, batch, lim)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "operator %q: %s N=%d compressed in %.2fs (solve=%v)\n",
			spec.name, p.Name, h.N(), time.Since(t0).Seconds(), op.CanSolve())
	}

	scfg := serve.Config{
		Registry:        reg,
		Telemetry:       rec,
		Live:            lv,
		Quota:           serve.QuotaConfig{RatePerSec: *quotaRPS, Burst: *quotaBurst},
		MaxBodyBytes:    *maxBody,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		ReadTimeout:     *readTimeout,
	}
	if *storeDir != "" {
		scfg.Admin = &serve.AdminConfig{
			StoreDir:   *storeDir,
			Mmap:       *storeMmap,
			EvalCtx:    evalCtx,
			Batch:      batch,
			Limits:     lim,
			NumWorkers: *workers,
			Workspace:  pool,
		}
	}
	srv, err := serve.NewServer(scfg)
	if err != nil {
		return err
	}
	if err := srv.Start(*addr); err != nil {
		return err
	}
	lv.SetReady(true)
	fmt.Fprintf(out, "serving %d operator(s) on http://%s/ (POST /v1/operators/{name}/{matvec|matmat|solve}; metrics, healthz, readyz, debug/* mounted)\n",
		len(ops), srv.Addr())

	<-ctx.Done()
	fmt.Fprintf(out, "signal received: draining (budget %s)\n", *drainTimeout)
	// Drain on a fresh timeout, not the cancelled root: in-flight requests
	// get their full budget even though the signal context is done.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	start := time.Now()
	if derr := srv.Drain(dctx); derr != nil {
		fmt.Fprintf(out, "drain incomplete: %v\n", derr)
	}
	if serr := srv.Shutdown(dctx); serr != nil {
		fmt.Fprintf(out, "shutdown: %v\n", serr)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if lerr := lv.Shutdown(sctx); lerr != nil {
		fmt.Fprintf(out, "live shutdown: %v\n", lerr)
	}
	fmt.Fprintf(out, "drain complete in %.0fms, all in-flight requests answered\n",
		time.Since(start).Seconds()*1e3)
	return nil
}
