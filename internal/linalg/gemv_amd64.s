//go:build amd64 && !purego

#include "textflag.h"

// func gemvCols8F64(m int, a *float64, lda int, coef *float64, y *float64)
//
// y[0:m] += Σ_{j<8} coef[j]·col_j with col_j starting at a + j·lda. The
// eight coefficients live broadcast in Y8–Y15 for the whole call. The main
// loop covers 8 rows per iteration with two accumulator pairs (Y0/Y1 seeded
// from y, Y4/Y5 zeroed) so the eight FMAs per y vector split into two
// four-deep dependency chains. Columns are addressed through scaled modes
// off the stride: R9 = lda·8 bytes, R10 = 3·R9, R11 = 5·R9, R12 = 7·R9
// reach all eight columns without per-column pointers. m must be a multiple
// of 4 (callers pass m &^ 3 and finish ragged rows in Go).
TEXT ·gemvCols8F64(SB), NOSPLIT, $0-40
	MOVQ m+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ lda+16(FP), R9
	SHLQ $3, R9
	MOVQ coef+24(FP), DX
	MOVQ y+32(FP), DI

	VBROADCASTSD (DX), Y8
	VBROADCASTSD 8(DX), Y9
	VBROADCASTSD 16(DX), Y10
	VBROADCASTSD 24(DX), Y11
	VBROADCASTSD 32(DX), Y12
	VBROADCASTSD 40(DX), Y13
	VBROADCASTSD 48(DX), Y14
	VBROADCASTSD 56(DX), Y15

	LEAQ (R9)(R9*2), R10
	LEAQ (R9)(R9*4), R11
	LEAQ (R10)(R9*4), R12

	CMPQ CX, $8
	JLT  tail4

loop8:
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VXORPD  Y4, Y4, Y4
	VXORPD  Y5, Y5, Y5

	VMOVUPD     (SI), Y2
	VMOVUPD     32(SI), Y3
	VFMADD231PD Y2, Y8, Y0
	VFMADD231PD Y3, Y8, Y1
	VMOVUPD     (SI)(R9*1), Y6
	VMOVUPD     32(SI)(R9*1), Y7
	VFMADD231PD Y6, Y9, Y4
	VFMADD231PD Y7, Y9, Y5
	VMOVUPD     (SI)(R9*2), Y2
	VMOVUPD     32(SI)(R9*2), Y3
	VFMADD231PD Y2, Y10, Y0
	VFMADD231PD Y3, Y10, Y1
	VMOVUPD     (SI)(R10*1), Y6
	VMOVUPD     32(SI)(R10*1), Y7
	VFMADD231PD Y6, Y11, Y4
	VFMADD231PD Y7, Y11, Y5
	VMOVUPD     (SI)(R9*4), Y2
	VMOVUPD     32(SI)(R9*4), Y3
	VFMADD231PD Y2, Y12, Y0
	VFMADD231PD Y3, Y12, Y1
	VMOVUPD     (SI)(R11*1), Y6
	VMOVUPD     32(SI)(R11*1), Y7
	VFMADD231PD Y6, Y13, Y4
	VFMADD231PD Y7, Y13, Y5
	VMOVUPD     (SI)(R10*2), Y2
	VMOVUPD     32(SI)(R10*2), Y3
	VFMADD231PD Y2, Y14, Y0
	VFMADD231PD Y3, Y14, Y1
	VMOVUPD     (SI)(R12*1), Y6
	VMOVUPD     32(SI)(R12*1), Y7
	VFMADD231PD Y6, Y15, Y4
	VFMADD231PD Y7, Y15, Y5

	VADDPD  Y4, Y0, Y0
	VADDPD  Y5, Y1, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)

	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	CMPQ CX, $8
	JGE  loop8

tail4:
	CMPQ CX, $4
	JLT  done

	VMOVUPD     (DI), Y0
	VXORPD      Y4, Y4, Y4
	VMOVUPD     (SI), Y2
	VFMADD231PD Y2, Y8, Y0
	VMOVUPD     (SI)(R9*1), Y3
	VFMADD231PD Y3, Y9, Y4
	VMOVUPD     (SI)(R9*2), Y2
	VFMADD231PD Y2, Y10, Y0
	VMOVUPD     (SI)(R10*1), Y3
	VFMADD231PD Y3, Y11, Y4
	VMOVUPD     (SI)(R9*4), Y2
	VFMADD231PD Y2, Y12, Y0
	VMOVUPD     (SI)(R11*1), Y3
	VFMADD231PD Y3, Y13, Y4
	VMOVUPD     (SI)(R10*2), Y2
	VFMADD231PD Y2, Y14, Y0
	VMOVUPD     (SI)(R12*1), Y3
	VFMADD231PD Y3, Y15, Y4
	VADDPD      Y4, Y0, Y0
	VMOVUPD     Y0, (DI)

done:
	VZEROUPPER
	RET

// func gemvCols8F32(m int, a *float32, lda int, coef *float64, y *float64)
//
// Mixed-precision variant of gemvCols8F64: the columns hold float32, so
// every 4-lane load is a VCVTPS2PD widening straight into the float64 FMA.
// Structure and register roles are identical; the stride scale is 4 bytes
// and the A pointer advances 32 bytes per 8 rows.
TEXT ·gemvCols8F32(SB), NOSPLIT, $0-40
	MOVQ m+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ lda+16(FP), R9
	SHLQ $2, R9
	MOVQ coef+24(FP), DX
	MOVQ y+32(FP), DI

	VBROADCASTSD (DX), Y8
	VBROADCASTSD 8(DX), Y9
	VBROADCASTSD 16(DX), Y10
	VBROADCASTSD 24(DX), Y11
	VBROADCASTSD 32(DX), Y12
	VBROADCASTSD 40(DX), Y13
	VBROADCASTSD 48(DX), Y14
	VBROADCASTSD 56(DX), Y15

	LEAQ (R9)(R9*2), R10
	LEAQ (R9)(R9*4), R11
	LEAQ (R10)(R9*4), R12

	CMPQ CX, $8
	JLT  f32tail4

f32loop8:
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VXORPD  Y4, Y4, Y4
	VXORPD  Y5, Y5, Y5

	VCVTPS2PD   (SI), Y2
	VCVTPS2PD   16(SI), Y3
	VFMADD231PD Y2, Y8, Y0
	VFMADD231PD Y3, Y8, Y1
	VCVTPS2PD   (SI)(R9*1), Y6
	VCVTPS2PD   16(SI)(R9*1), Y7
	VFMADD231PD Y6, Y9, Y4
	VFMADD231PD Y7, Y9, Y5
	VCVTPS2PD   (SI)(R9*2), Y2
	VCVTPS2PD   16(SI)(R9*2), Y3
	VFMADD231PD Y2, Y10, Y0
	VFMADD231PD Y3, Y10, Y1
	VCVTPS2PD   (SI)(R10*1), Y6
	VCVTPS2PD   16(SI)(R10*1), Y7
	VFMADD231PD Y6, Y11, Y4
	VFMADD231PD Y7, Y11, Y5
	VCVTPS2PD   (SI)(R9*4), Y2
	VCVTPS2PD   16(SI)(R9*4), Y3
	VFMADD231PD Y2, Y12, Y0
	VFMADD231PD Y3, Y12, Y1
	VCVTPS2PD   (SI)(R11*1), Y6
	VCVTPS2PD   16(SI)(R11*1), Y7
	VFMADD231PD Y6, Y13, Y4
	VFMADD231PD Y7, Y13, Y5
	VCVTPS2PD   (SI)(R10*2), Y2
	VCVTPS2PD   16(SI)(R10*2), Y3
	VFMADD231PD Y2, Y14, Y0
	VFMADD231PD Y3, Y14, Y1
	VCVTPS2PD   (SI)(R12*1), Y6
	VCVTPS2PD   16(SI)(R12*1), Y7
	VFMADD231PD Y6, Y15, Y4
	VFMADD231PD Y7, Y15, Y5

	VADDPD  Y4, Y0, Y0
	VADDPD  Y5, Y1, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)

	ADDQ $32, SI
	ADDQ $64, DI
	SUBQ $8, CX
	CMPQ CX, $8
	JGE  f32loop8

f32tail4:
	CMPQ CX, $4
	JLT  f32done

	VMOVUPD     (DI), Y0
	VXORPD      Y4, Y4, Y4
	VCVTPS2PD   (SI), Y2
	VFMADD231PD Y2, Y8, Y0
	VCVTPS2PD   (SI)(R9*1), Y3
	VFMADD231PD Y3, Y9, Y4
	VCVTPS2PD   (SI)(R9*2), Y2
	VFMADD231PD Y2, Y10, Y0
	VCVTPS2PD   (SI)(R10*1), Y3
	VFMADD231PD Y3, Y11, Y4
	VCVTPS2PD   (SI)(R9*4), Y2
	VFMADD231PD Y2, Y12, Y0
	VCVTPS2PD   (SI)(R11*1), Y3
	VFMADD231PD Y3, Y13, Y4
	VCVTPS2PD   (SI)(R10*2), Y2
	VFMADD231PD Y2, Y14, Y0
	VCVTPS2PD   (SI)(R12*1), Y3
	VFMADD231PD Y3, Y15, Y4
	VADDPD      Y4, Y0, Y0
	VMOVUPD     Y0, (DI)

f32done:
	VZEROUPPER
	RET

// func gemvDots4F64(m int, a *float64, lda int, x *float64, dst *float64)
//
// dst[0:4] = [col_0·x, col_1·x, col_2·x, col_3·x] with col_j starting at
// a + j·lda — the transposed-GEMV building block. Eight accumulators
// (Y0–Y3 for even 4-row groups, Y4–Y7 for odd) keep four independent
// two-deep FMA chains per column pair; the epilogue folds the pairs and
// does the standard VHADDPD / VPERM2F128 cross reduction so dst gets all
// four sums in one store. m must be a multiple of 4.
TEXT ·gemvDots4F64(SB), NOSPLIT, $0-40
	MOVQ m+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ lda+16(FP), R9
	SHLQ $3, R9
	MOVQ x+24(FP), DX
	MOVQ dst+32(FP), DI
	LEAQ (R9)(R9*2), R10

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	CMPQ CX, $8
	JLT  dtail4

dloop8:
	VMOVUPD     (DX), Y8
	VMOVUPD     32(DX), Y9
	VMOVUPD     (SI), Y10
	VFMADD231PD Y8, Y10, Y0
	VMOVUPD     32(SI), Y11
	VFMADD231PD Y9, Y11, Y4
	VMOVUPD     (SI)(R9*1), Y12
	VFMADD231PD Y8, Y12, Y1
	VMOVUPD     32(SI)(R9*1), Y13
	VFMADD231PD Y9, Y13, Y5
	VMOVUPD     (SI)(R9*2), Y10
	VFMADD231PD Y8, Y10, Y2
	VMOVUPD     32(SI)(R9*2), Y11
	VFMADD231PD Y9, Y11, Y6
	VMOVUPD     (SI)(R10*1), Y12
	VFMADD231PD Y8, Y12, Y3
	VMOVUPD     32(SI)(R10*1), Y13
	VFMADD231PD Y9, Y13, Y7
	ADDQ        $64, SI
	ADDQ        $64, DX
	SUBQ        $8, CX
	CMPQ        CX, $8
	JGE         dloop8

dtail4:
	CMPQ CX, $4
	JLT  dreduce

	VMOVUPD     (DX), Y8
	VMOVUPD     (SI), Y10
	VFMADD231PD Y8, Y10, Y0
	VMOVUPD     (SI)(R9*1), Y11
	VFMADD231PD Y8, Y11, Y1
	VMOVUPD     (SI)(R9*2), Y12
	VFMADD231PD Y8, Y12, Y2
	VMOVUPD     (SI)(R10*1), Y13
	VFMADD231PD Y8, Y13, Y3

dreduce:
	VADDPD Y4, Y0, Y0
	VADDPD Y5, Y1, Y1
	VADDPD Y6, Y2, Y2
	VADDPD Y7, Y3, Y3

	// [s0l+s0h…] cross-lane reduction: after the two VHADDPD, Y0 holds
	// {c0 lo, c1 lo, c0 hi, c1 hi} and Y2 {c2 lo, c3 lo, c2 hi, c3 hi};
	// the two VPERM2F128 regroup low and high halves so one VADDPD yields
	// {dot0, dot1, dot2, dot3}.
	VHADDPD    Y1, Y0, Y0
	VHADDPD    Y3, Y2, Y2
	VPERM2F128 $0x20, Y2, Y0, Y4
	VPERM2F128 $0x31, Y2, Y0, Y5
	VADDPD     Y5, Y4, Y0
	VMOVUPD    Y0, (DI)

	VZEROUPPER
	RET
