package sched

import "testing"

func TestBatchEfficiencyMonotone(t *testing.T) {
	prev := 0.0
	for r := 1; r <= 64; r++ {
		e := BatchEfficiency(r)
		if e <= 0 || e > 1 {
			t.Fatalf("BatchEfficiency(%d) = %g, want in (0, 1]", r, e)
		}
		if e < prev {
			t.Fatalf("BatchEfficiency(%d) = %g < BatchEfficiency(%d) = %g, want monotone", r, e, r-1, prev)
		}
		prev = e
	}
	if BatchEfficiency(rhsSaturation) != 1 || BatchEfficiency(1000) != 1 {
		t.Fatalf("BatchEfficiency must saturate at 1 for r >= %d", rhsSaturation)
	}
	if BatchEfficiency(0) != BatchEfficiency(1) {
		t.Fatalf("degenerate widths must clamp to r = 1")
	}
}

func TestBatchedCostDiscountsFatBlocks(t *testing.T) {
	// Same flop volume: one r=16 task vs sixteen r=1 tasks. The batched task
	// must be predicted strictly cheaper — that prediction is why HEFT
	// prefers coalesced work.
	flops := 1e9
	batched := BatchedCost(16*flops, 16)
	looped := 16 * BatchedCost(flops, 1)
	if batched >= looped {
		t.Fatalf("batched cost %g should be below looped cost %g", batched, looped)
	}
	if got, want := BatchedCost(flops, 16), flops; got != want {
		t.Fatalf("saturated cost = %g, want raw flops %g", got, want)
	}
}
