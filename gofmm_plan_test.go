package gofmm

// Plan/tree equivalence wall. A compiled evaluation plan is a lowering of
// the four-pass traversal, not a reimplementation: for every fixture in the
// {angle, kernel} × {tol 1e-2, tol 1e-5, fixed-rank} grid the replayed
// result must agree with the tree interpreter to near-machine precision
// (1e-13 — far below any compression tolerance, because the two paths run
// the same block products and differ only in kernel accumulation order).
// Two metamorphic identities ride along through the compiled path:
// linearity (a plan is a fixed linear map) and column consistency (a width-r
// replay's columns equal width-1 replays, even though the two widths
// dispatch different kernels). The interpreter stays available after
// compilation — it is the test oracle here and everywhere.

import (
	"context"
	"math/rand"
	"testing"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
)

// planFixtures is the {distance} × {tolerance/mode} grid of the wall.
func planFixtures() []struct {
	name      string
	dist      core.Distance
	tol       float64
	fixedRank bool
} {
	return []struct {
		name      string
		dist      core.Distance
		tol       float64
		fixedRank bool
	}{
		{"angle/tol1e-2", core.Angle, 1e-2, false},
		{"angle/tol1e-5", core.Angle, 1e-5, false},
		{"angle/fixedrank", core.Angle, 0, true},
		{"kernel/tol1e-2", core.Kernel, 1e-2, false},
		{"kernel/tol1e-5", core.Kernel, 1e-5, false},
		{"kernel/fixedrank", core.Kernel, 0, true},
	}
}

// planCompress compresses with Config.CompilePlan set, so the test also
// covers the compile-during-Compress wiring, and verifies a plan installed.
func planCompress(t *testing.T, K *Matrix, dist core.Distance, tol float64, fixedRank bool) *Hierarchical {
	t.Helper()
	cfg := Config{
		LeafSize: 32, MaxRank: 48, Kappa: 8, Budget: 0.05,
		Distance: dist, Exec: core.Sequential, Seed: 3, CacheBlocks: true,
		Workspace: NewWorkspacePool(), CompilePlan: true,
	}
	if fixedRank {
		// An unreachable tolerance saturates every node at MaxRank.
		cfg.Tol = 1e-12
		cfg.MaxRank = 24
	} else {
		cfg.Tol = tol
	}
	h, err := Compress(NewDense(K), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Plan() == nil {
		t.Fatal("Config.CompilePlan did not install a plan")
	}
	return h
}

// TestPlanMatchesInterpreter is the equivalence property: compiled replay
// and tree interpretation agree to 1e-13 on every fixture, at widths 1 and
// 6 (exercising both the GEMV and the GEMM replay kernels).
func TestPlanMatchesInterpreter(t *testing.T) {
	const n = 256
	K := randomSPD(n, 404)
	rng := rand.New(rand.NewSource(9))
	ctx := context.Background()
	for _, tc := range planFixtures() {
		t.Run(tc.name, func(t *testing.T) {
			h := planCompress(t, K, tc.dist, tc.tol, tc.fixedRank)
			for _, r := range []int{1, 6} {
				X := linalg.GaussianMatrix(rng, n, r)
				ref, err := h.InterpMatmatCtx(ctx, X)
				if err != nil {
					t.Fatal(err)
				}
				got, err := h.MatmatCtx(ctx, X)
				if err != nil {
					t.Fatal(err)
				}
				if d := linalg.RelFrobDiff(got, ref); d > 1e-13 {
					t.Errorf("r=%d: plan vs interpreter differ by %.3e", r, d)
				}
			}
			// After DropPlan the public path IS the interpreter again.
			h.DropPlan()
			if h.Plan() != nil {
				t.Fatal("DropPlan left a plan installed")
			}
			X := linalg.GaussianMatrix(rng, n, 2)
			ref, err := h.InterpMatmatCtx(ctx, X)
			if err != nil {
				t.Fatal(err)
			}
			got, err := h.MatmatCtx(ctx, X)
			if err != nil {
				t.Fatal(err)
			}
			if !bitIdentical(got, ref) {
				t.Error("after DropPlan, Matmat is not the interpreter path")
			}
		})
	}
}

// TestPlanLinearity is the metamorphic linearity identity through the
// compiled path: replay(a·x + b·y) = a·replay(x) + b·replay(y) to rounding.
func TestPlanLinearity(t *testing.T) {
	const n = 256
	K := randomSPD(n, 505)
	rng := rand.New(rand.NewSource(10))
	x := linalg.GaussianMatrix(rng, n, 1)
	y := linalg.GaussianMatrix(rng, n, 1)
	const a, b = 2.25, -0.59375 // exactly representable scalars
	ctx := context.Background()
	for _, tc := range planFixtures() {
		t.Run(tc.name, func(t *testing.T) {
			h := planCompress(t, K, tc.dist, tc.tol, tc.fixedRank)
			axby := linalg.NewMatrix(n, 1)
			for i := 0; i < n; i++ {
				axby.Set(i, 0, a*x.At(i, 0)+b*y.At(i, 0))
			}
			lhs, err := h.MatvecCtx(ctx, axby)
			if err != nil {
				t.Fatal(err)
			}
			ux, err := h.MatvecCtx(ctx, x)
			if err != nil {
				t.Fatal(err)
			}
			uy, err := h.MatvecCtx(ctx, y)
			if err != nil {
				t.Fatal(err)
			}
			scale := lhs.FrobeniusNorm() + 1
			for i := 0; i < n; i++ {
				d := lhs.At(i, 0) - (a*ux.At(i, 0) + b*uy.At(i, 0))
				if d < 0 {
					d = -d
				}
				if d > 1e-11*scale {
					t.Fatalf("linearity violated at row %d by %.3e (scale %.3e)", i, d, scale)
				}
			}
		})
	}
}

// TestPlanColumnConsistency is the metamorphic batching identity through
// the compiled path: column j of a width-r replay equals the width-1 replay
// of that column to 1e-13, even though width 1 dispatches the fused GEMV
// kernels and width r the GEMM kernels.
func TestPlanColumnConsistency(t *testing.T) {
	const n, r = 256, 5
	K := randomSPD(n, 606)
	rng := rand.New(rand.NewSource(11))
	X := linalg.GaussianMatrix(rng, n, r)
	ctx := context.Background()
	for _, tc := range planFixtures() {
		t.Run(tc.name, func(t *testing.T) {
			h := planCompress(t, K, tc.dist, tc.tol, tc.fixedRank)
			U, err := h.MatmatCtx(ctx, X)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < r; j++ {
				xj := linalg.NewMatrix(n, 1)
				copy(xj.Col(0), X.Col(j))
				uj, err := h.MatvecCtx(ctx, xj)
				if err != nil {
					t.Fatal(err)
				}
				scale := linalg.Nrm2(uj.Col(0)) + 1
				if d := maxAbsDiff(U.Col(j), uj.Col(0)); d > 1e-13*scale {
					t.Errorf("column %d: batched vs single-vector replay differ by %.3e", j, d)
				}
			}
		})
	}
}
