package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Chrome trace-event export. The output is the Trace Event Format JSON
// object consumed by Perfetto (ui.perfetto.dev) and chrome://tracing:
// complete ("ph":"X") events with microsecond timestamps, one thread track
// per scheduler worker plus track 0 for the algorithm-phase spans.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// phasesTrack is the tid of the span track; worker w maps to tid w+1.
const phasesTrack = 0

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace exports the recorded spans and task events as Chrome
// trace-event JSON. A nil recorder writes an empty (still loadable) trace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: 0, Tid: phasesTrack,
			Args: map[string]any{"name": "gofmm"}},
		{Name: "thread_name", Ph: "M", Pid: 0, Tid: phasesTrack,
			Args: map[string]any{"name": "phases"}},
	}}
	if r != nil {
		now := r.Since()
		r.mu.Lock()
		var walk func(spans []*Span, depth int)
		walk = func(spans []*Span, depth int) {
			for _, s := range spans {
				d := s.dur
				if !s.ended {
					d = now - s.start
				}
				dur := micros(d)
				trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
					Name: SanitizeLabel(s.name), Ph: "X", Pid: 0, Tid: phasesTrack,
					Ts: micros(s.start), Dur: &dur,
					Args: map[string]any{"depth": depth},
				})
				walk(s.children, depth+1)
			}
		}
		walk(r.roots, 0)
		workers := map[int]bool{}
		for _, ev := range r.events {
			workers[ev.Worker] = true
			dur := micros(ev.Dur)
			args := map[string]any{"wait_us": micros(ev.Wait)}
			if ev.StolenFrom >= 0 {
				args["stolen_from"] = ev.StolenFrom
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: SanitizeLabel(ev.Name), Ph: "X", Pid: 0, Tid: ev.Worker + 1,
				Ts: micros(ev.Start), Dur: &dur, Args: args,
			})
		}
		r.mu.Unlock()
		for w := range workers {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: w + 1,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", w)},
			})
		}
		// Deterministic track order: metadata events sorted by tid.
		sortMetadataEvents(trace.TraceEvents)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(trace)
}

// sortMetadataEvents moves thread_name metadata into tid order so the
// encoder output is deterministic (map iteration above is not).
func sortMetadataEvents(evs []chromeEvent) {
	// Insertion sort over the (few) metadata events at the tail; stable for
	// the already-ordered body events.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Ph == "M" && evs[j-1].Ph == "M" &&
			lessMeta(evs[j], evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

func lessMeta(a, b chromeEvent) bool {
	if a.Tid != b.Tid {
		return a.Tid < b.Tid
	}
	return a.Name < b.Name
}
