package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
)

func TestSerializeRoundTrip(t *testing.T) {
	h, K := compressGauss(t, 300, Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-6, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 101, CacheBlocks: true,
	})
	var buf bytes.Buffer
	n, err := h.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	h2, err := ReadFrom(&buf, denseSPD{K})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(102))
	W := linalg.GaussianMatrix(rng, 300, 3)
	U1 := h.Matvec(W)
	U2 := h2.Matvec(W)
	if !linalg.EqualApprox(U1, U2, 0) {
		t.Fatalf("round-trip matvec differs (max |Δ| = %g)", maxAbsDiff(U1, U2))
	}
	// Structure restored.
	for id := range h.nodes {
		if h.Rank(id) != h2.Rank(id) {
			t.Fatalf("rank mismatch at node %d", id)
		}
		if len(h.NearList(id)) != len(h2.NearList(id)) || len(h.FarList(id)) != len(h2.FarList(id)) {
			t.Fatalf("lists mismatch at node %d", id)
		}
	}
}

func TestSerializeWithoutCaches(t *testing.T) {
	h, K := compressGauss(t, 200, Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-6, Kappa: 8, Budget: 0.1,
		Distance: Angle, Exec: Sequential, Seed: 103, CacheBlocks: false,
	})
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadFrom(&buf, denseSPD{K})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(104))
	W := linalg.GaussianMatrix(rng, 200, 2)
	if !linalg.EqualApprox(h.Matvec(W), h2.Matvec(W), 0) {
		t.Fatal("cache-less round trip differs")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	K := linalg.RandomSPD(rng, 10, 10)
	if _, err := ReadFrom(bytes.NewReader([]byte("not a gofmm file at all")), denseSPD{K}); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("expected ErrBadFormat, got %v", err)
	}
}

func TestReadFromRejectsWrongDimension(t *testing.T) {
	h, _ := compressGauss(t, 200, Config{
		LeafSize: 32, Kappa: 8, Budget: 0, Distance: Kernel,
		Exec: Sequential, Seed: 106, Tol: 1e-5,
	})
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(107))
	wrong := linalg.RandomSPD(rng, 50, 10)
	if _, err := ReadFrom(&buf, denseSPD{wrong}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestReadFromTruncated(t *testing.T) {
	h, K := compressGauss(t, 200, Config{
		LeafSize: 32, Kappa: 8, Budget: 0.1, Distance: Kernel,
		Exec: Sequential, Seed: 108, Tol: 1e-5,
	})
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadFrom(bytes.NewReader(trunc), denseSPD{K}); err == nil {
		t.Fatal("expected error on truncated input")
	}
}
