package hss

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
)

// gauss2D builds a dense Gaussian kernel over 2-D points.
func gauss2D(rng *rand.Rand, n int, h float64) *linalg.Matrix {
	X := linalg.GaussianMatrix(rng, 2, n)
	K := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d2 := 0.0
			for q := 0; q < 2; q++ {
				t := X.At(q, i) - X.At(q, j)
				d2 += t * t
			}
			K.Set(i, j, math.Exp(-d2/(2*h*h)))
		}
	}
	for i := 0; i < n; i++ {
		K.Add(i, i, 0.2)
	}
	return K
}

func TestFromGOFMMMatvecMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	K := gauss2D(rng, 400, 0.6)
	g, err := core.Compress(denseOracle{K}, core.Config{
		LeafSize: 64, MaxRank: 48, Tol: 1e-9, Kappa: 8, Budget: 0,
		Distance: core.Kernel, Exec: core.Sequential, Seed: 1, CacheBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := FromGOFMM(g)
	if err != nil {
		t.Fatal(err)
	}
	W := linalg.GaussianMatrix(rng, 400, 3)
	Ug := g.Matvec(W)
	Uh := h.Matvec(W)
	// Same compressed operator expressed two ways: results must agree to
	// rounding.
	if d := linalg.RelFrobDiff(Uh, Ug); d > 1e-11 {
		t.Fatalf("converted HSS matvec differs from GOFMM by %g", d)
	}
}

func TestFromGOFMMFactorSolve(t *testing.T) {
	// The headline combination: geometry-oblivious permutation + direct
	// solver. Compress with the kernel distance (permuted tree!), convert,
	// factor, and solve against the dense solution.
	rng := rand.New(rand.NewSource(141))
	n := 400
	K := gauss2D(rng, n, 0.6)
	g, err := core.Compress(denseOracle{K}, core.Config{
		LeafSize: 64, MaxRank: 64, Tol: 1e-11, Kappa: 8, Budget: 0,
		Distance: core.Kernel, Exec: core.Sequential, Seed: 2, CacheBlocks: true,
		SampleRows: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := FromGOFMM(g)
	if err != nil {
		t.Fatal(err)
	}
	f, err := h.Factor()
	if err != nil {
		t.Fatal(err)
	}
	X := linalg.GaussianMatrix(rng, n, 2)
	B := linalg.MatMul(false, false, K, X)
	got := f.Solve(B)
	// The error vs the dense solution is the compression error amplified by
	// cond(K).
	if d := linalg.RelFrobDiff(got, X); d > 1e-3 {
		t.Fatalf("solve error vs dense solution: %g", d)
	}
	// Exact inverse of the compressed operator.
	back := g.Matvec(got)
	if d := linalg.RelFrobDiff(back, B); d > 1e-8 {
		t.Fatalf("K̃·K̃⁻¹ b deviates by %g", d)
	}
}

func TestFromGOFMMRejectsFMMMode(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	K := gauss2D(rng, 300, 0.6)
	g, err := core.Compress(denseOracle{K}, core.Config{
		LeafSize: 64, MaxRank: 32, Tol: 1e-6, Kappa: 8, Budget: 0.3,
		Distance: core.Kernel, Exec: core.Sequential, Seed: 3, CacheBlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromGOFMM(g); !errors.Is(err, ErrNotHSS) {
		t.Fatalf("expected ErrNotHSS, got %v", err)
	}
}
