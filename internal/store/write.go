package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gofmm/internal/resilience"
)

// align64 rounds n up to the next multiple of Align.
func align64(n int64) int64 { return (n + Align - 1) &^ (Align - 1) }

// Write lays out sections in the given order and streams the complete store
// image: header, checksummed section table, then each payload at the next
// 64-byte-aligned offset. It returns the total bytes written.
func Write(w io.Writer, sections []Section) (int64, error) {
	if len(sections) < 1 || len(sections) > maxSections {
		return 0, fmt.Errorf("%w: store: %d sections outside [1,%d]",
			resilience.ErrInvalidInput, len(sections), maxSections)
	}
	seen := make(map[SectionKind]bool, len(sections))
	for _, s := range sections {
		if seen[s.Kind] {
			return 0, fmt.Errorf("%w: store: duplicate section %s",
				resilience.ErrInvalidInput, s.Kind)
		}
		seen[s.Kind] = true
	}
	le := binary.LittleEndian
	// Layout pass: table follows the header, payloads follow the table,
	// each at an aligned offset.
	tableLen := int64(len(sections)) * entrySize
	offs := make([]int64, len(sections))
	pos := align64(headerSize + tableLen)
	for i, s := range sections {
		offs[i] = pos
		pos = align64(pos + int64(len(s.Data)))
	}
	// The file ends at the last payload's true end, not its aligned end.
	fileSize := headerSize + tableLen
	if n := len(sections); n > 0 {
		fileSize = offs[n-1] + int64(len(sections[n-1].Data))
	}
	table := make([]byte, tableLen)
	for i, s := range sections {
		e := table[i*entrySize : (i+1)*entrySize]
		le.PutUint32(e[0:4], uint32(s.Kind))
		le.PutUint64(e[8:16], uint64(offs[i]))
		le.PutUint64(e[16:24], uint64(len(s.Data)))
		sum := sha256.Sum256(s.Data)
		copy(e[24:56], sum[:])
	}
	var hdr [headerSize]byte
	le.PutUint64(hdr[0:8], Magic)
	le.PutUint32(hdr[8:12], Version)
	le.PutUint32(hdr[12:16], uint32(len(sections)))
	le.PutUint64(hdr[16:24], uint64(fileSize))
	le.PutUint64(hdr[24:32], headerSize)
	tsum := sha256.Sum256(table)
	copy(hdr[32:64], tsum[:])

	bw := bufio.NewWriterSize(w, 1<<20)
	written := int64(0)
	emit := func(p []byte) error {
		n, err := bw.Write(p)
		written += int64(n)
		return err
	}
	pad := func(upto int64) error {
		var zeros [Align]byte
		for written < upto {
			chunk := upto - written
			if chunk > Align {
				chunk = Align
			}
			if err := emit(zeros[:chunk]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(hdr[:]); err != nil {
		return written, err
	}
	if err := emit(table); err != nil {
		return written, err
	}
	for i, s := range sections {
		if err := pad(offs[i]); err != nil {
			return written, err
		}
		if err := emit(s.Data); err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// WriteFile writes a store image to path atomically: the image lands in a
// temporary file in the same directory, is synced, and renamed over the
// destination, so a crash mid-write never leaves a torn store where a
// loadable one is expected.
func WriteFile(path string, sections []Section) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	n, err := Write(tmp, sections)
	if err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Close(); err != nil {
		return n, err
	}
	return n, os.Rename(tmp.Name(), path)
}

// Open reads and validates a store file through the hardened untrusted-file
// discipline: the header is read and bounds-checked against the actual file
// size before the payload allocation, so a corrupt size field can at most
// cost the file's true length, never an attacker-declared one. The returned
// File owns a private heap copy of the image.
func Open(path string) (*File, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, fmt.Errorf("%w: %d-byte file is shorter than the %d-byte header",
			ErrBadStore, size, headerSize)
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(fd, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	le := binary.LittleEndian
	if le.Uint64(hdr[0:8]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadStore)
	}
	if declared := le.Uint64(hdr[16:24]); declared != uint64(size) {
		return nil, fmt.Errorf("%w: header declares %d bytes, file has %d",
			ErrBadStore, declared, size)
	}
	data := make([]byte, size)
	copy(data, hdr[:])
	if _, err := io.ReadFull(fd, data[headerSize:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	return Decode(data)
}
