package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric (atomic; nil-safe).
type Counter struct{ v int64 }

// Add increments the counter (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is a last-value-wins float metric (atomic; nil-safe).
type Gauge struct{ bits uint64 }

// Set stores the value (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with 2^(i-1) < v ≤ 2^i (bucket 0 is v ≤ 1).
const histBuckets = 64

// Histogram accumulates a distribution: count/sum/min/max plus
// power-of-two buckets (enough to see a skeleton-rank or queue-wait
// distribution without storing every sample).
type Histogram struct {
	mu      sync.Mutex
	count   int64              // guarded by mu
	sum     float64            // guarded by mu
	min     float64            // guarded by mu
	max     float64            // guarded by mu
	buckets [histBuckets]int64 // guarded by mu
}

// Observe records one sample (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// bucketOf maps a sample to its power-of-two bucket index.
func bucketOf(v float64) int {
	if v <= 1 {
		return 0
	}
	b := int(math.Ceil(math.Log2(v)))
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Counter returns the named counter, creating it on first use (nil on a nil
// recorder).
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SnapshotSchema identifies the metrics-snapshot JSON layout.
const SnapshotSchema = "gofmm.telemetry/v1"

// HistogramStat is the exported summary of one histogram.
type HistogramStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// Buckets[i] counts samples v with 2^(i-1) < v ≤ 2^i (Buckets[0] is
	// v ≤ 1); trailing empty buckets are trimmed.
	Buckets []int64 `json:"buckets,omitempty"`
}

// SpanStat is the exported view of one span subtree.
type SpanStat struct {
	Name         string            `json:"name"`
	StartSeconds float64           `json:"start_seconds"`
	Seconds      float64           `json:"seconds"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Children     []SpanStat        `json:"children,omitempty"`
}

// Snapshot is a point-in-time copy of everything the recorder holds, in the
// stable layout the JSON exporters and run records embed.
type Snapshot struct {
	Schema      string                   `json:"schema"`
	WallSeconds float64                  `json:"wall_seconds"`
	Counters    map[string]int64         `json:"counters,omitempty"`
	Gauges      map[string]float64       `json:"gauges,omitempty"`
	Histograms  map[string]HistogramStat `json:"histograms,omitempty"`
	Spans       []SpanStat               `json:"spans,omitempty"`
	TaskEvents  int                      `json:"task_events,omitempty"`
}

// Snapshot captures the current state. On a nil recorder it returns an
// empty (but schema-tagged) snapshot.
func (r *Recorder) Snapshot() Snapshot {
	snap := Snapshot{Schema: SnapshotSchema}
	if r == nil {
		return snap
	}
	now := r.Since()
	snap.WallSeconds = now.Seconds()

	r.metricsMu.Lock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramStat, len(r.hists))
		for name, h := range r.hists {
			snap.Histograms[name] = h.stat()
		}
	}
	r.metricsMu.Unlock()

	r.mu.Lock()
	snap.Spans = spanStats(r.roots, now)
	snap.TaskEvents = len(r.events)
	r.mu.Unlock()
	return snap
}

// stat summarizes the histogram (caller does not hold h.mu).
func (h *Histogram) stat() HistogramStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistogramStat{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		st.Mean = h.sum / float64(h.count)
	}
	last := -1
	for i, c := range h.buckets {
		if c != 0 {
			last = i
		}
	}
	if last >= 0 {
		st.Buckets = append([]int64(nil), h.buckets[:last+1]...)
	}
	return st
}

// spanStats converts a span forest; unended spans extend to "now". Caller
// holds r.mu.
func spanStats(spans []*Span, now time.Duration) []SpanStat {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanStat, len(spans))
	for i, s := range spans {
		d := s.dur
		if !s.ended {
			d = now - s.start
		}
		out[i] = SpanStat{
			Name:         s.name,
			StartSeconds: s.start.Seconds(),
			Seconds:      d.Seconds(),
			Children:     spanStats(s.children, now),
		}
		if len(s.attrs) > 0 {
			attrs := make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				attrs[k] = v
			}
			out[i].Attrs = attrs
		}
	}
	return out
}

// WriteMetricsJSON writes the snapshot as indented JSON.
func (r *Recorder) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// PhaseSeconds returns the duration of the first span along the given name
// path (e.g. "compress", "ann"), or 0 when absent — the bridge that lets
// the legacy Stats view be derived from the span tree.
func (r *Recorder) PhaseSeconds(path ...string) float64 {
	if r == nil || len(path) == 0 {
		return 0
	}
	snap := r.Snapshot()
	stats := snap.Spans
	var found *SpanStat
	for _, name := range path {
		found = nil
		for i := range stats {
			if stats[i].Name == name {
				found = &stats[i]
				break
			}
		}
		if found == nil {
			return 0
		}
		stats = found.Children
	}
	return found.Seconds
}
