package spdmat

import (
	"fmt"
	"math/rand"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
)

// kernel6D builds one of the K04–K10 high-dimensional kernel matrices over
// uniform random points in [0,1]⁶.
func kernel6D(name string, n int, typ KernelType, h float64, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	X := linalg.NewMatrix(6, n)
	for j := 0; j < n; j++ {
		col := X.Col(j)
		for q := range col {
			col[q] = rng.Float64()
		}
	}
	var desc string
	switch typ {
	case Gauss:
		desc = fmt.Sprintf("6-D Gaussian kernel, h=%g", h)
	case Laplace:
		desc = "6-D Laplace-Green-like kernel 1/(r²+h²)²"
	case Poly:
		desc = "6-D polynomial kernel (xᵀy/d+1)³"
	case Cosine:
		desc = "6-D cosine-similarity kernel"
	}
	return &Problem{
		Name:   name,
		Desc:   desc,
		K:      NewKernel(X, typ, h, ridgeFor(1)),
		Points: X,
	}
}

// Names lists every registered problem in the paper's order.
func Names() []string {
	return []string{
		"K02", "K03",
		"K04", "K05", "K06", "K07", "K08", "K09", "K10",
		"K12", "K13", "K14",
		"K15", "K16", "K17", "K18",
		"G01", "G02", "G03", "G04", "G05",
		"COVTYPE", "HIGGS", "MNIST",
	}
}

// Generate builds the named problem at dimension ≈ n (grid problems round to
// a perfect square/cube). All generators are deterministic in seed.
func Generate(name string, n int, seed int64) (*Problem, error) {
	switch name {
	case "K02":
		return K02(n)
	case "K03":
		return K03(n)
	case "K04":
		return kernel6D("K04", n, Gauss, 0.35, seed), nil // narrow Gaussian
	case "K05":
		return kernel6D("K05", n, Gauss, 0.8, seed), nil
	case "K06":
		return kernel6D("K06", n, Gauss, 0.07, seed), nil // very narrow: high rank
	case "K07":
		return kernel6D("K07", n, Laplace, 0.5, seed), nil
	case "K08":
		return kernel6D("K08", n, Gauss, 2.0, seed), nil // wide Gaussian
	case "K09":
		return kernel6D("K09", n, Poly, 0, seed), nil
	case "K10":
		return kernel6D("K10", n, Cosine, 0, seed), nil
	case "K12":
		return kDiffusion("K12", n, 1e1, seed)
	case "K13":
		return kDiffusion("K13", n, 1e3, seed+1)
	case "K14":
		return kDiffusion("K14", n, 1e5, seed+2)
	case "K15":
		return K15(n, seed)
	case "K16":
		return K16(n, seed)
	case "K17":
		return K17(n, seed)
	case "K18":
		return K18(n, seed)
	case "G01":
		return G01(n, seed)
	case "G02":
		return G02(n, seed)
	case "G03":
		return G03(n, seed)
	case "G04":
		return G04(n, seed)
	case "G05":
		return G05(n, seed)
	case "COVTYPE":
		return Covtype(n, 0.1, seed), nil
	case "HIGGS":
		return Higgs(n, 0.9, seed), nil
	case "MNIST":
		return Mnist(n, 1.0, seed), nil
	}
	return nil, fmt.Errorf("%w: unknown problem %q (known: %v)",
		resilience.ErrInvalidInput, name, Names())
}
