package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// traceIDFallback numbers IDs when crypto/rand is unavailable.
var traceIDFallback atomic.Int64

// Trace IDs give every externally-initiated request (a Matvec call, a
// coalesced batch flush, a CLI run) a stable identity that survives
// coalescing, retries and goroutine hops. They travel in the context, are
// stamped onto spans as the "trace_id" attribute, and show up in slog
// records, /debug/spans NDJSON, and flight-recorder dumps — so a slow or
// crashed request can be traced from the caller's span to the flush span
// that actually executed it.

// AttrTraceID is the span-attribute key carrying the request trace ID.
const AttrTraceID = "trace_id"

// traceIDKey is the private context key type for trace IDs.
type traceIDKey struct{}

// ContextWithTraceID returns a context carrying the given trace ID. An
// empty id returns ctx unchanged, so call sites can propagate
// possibly-absent IDs without a conditional.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the trace ID from the context ("" , false when none
// was attached).
func TraceIDFrom(ctx context.Context) (string, bool) {
	if ctx == nil {
		return "", false
	}
	id, ok := ctx.Value(traceIDKey{}).(string)
	return id, ok && id != ""
}

// NewTraceID returns a fresh 16-hex-digit random trace ID. It never fails:
// if the system entropy source is unavailable it falls back to a counter so
// IDs stay unique within the process.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceIDFallback.Add(1)
		for i := 0; i < 8; i++ {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// EnsureTraceID returns ctx carrying a trace ID and the ID itself, minting
// a fresh one only when the context has none — the idiom for request entry
// points that must be traceable but accept untagged callers.
func EnsureTraceID(ctx context.Context) (context.Context, string) {
	if id, ok := TraceIDFrom(ctx); ok {
		return ctx, id
	}
	id := NewTraceID()
	return ContextWithTraceID(ctx, id), id
}
