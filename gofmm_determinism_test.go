package gofmm

// Determinism golden test: the same seed and config must reproduce the
// compression byte-for-byte and the batched evaluation bit-for-bit — across
// repeated runs and across worker-pool sizes. This catches the classic
// nondeterminism leaks of a task-parallel tree code: map-iteration order
// sneaking into a traversal, floating-point reduction order depending on
// which worker finishes first, or a pooled buffer carrying state between
// runs. Evaluation must be bit-identical even across 1-vs-N workers because
// every task writes a disjoint buffer slice and accumulates its own inputs
// in a fixed order; the DAG only constrains *when* a task runs, never what
// it computes.

import (
	"bytes"
	"math/rand"
	"testing"

	"gofmm/internal/core"
	"gofmm/internal/linalg"
)

func determinismConfig(workers int) Config {
	return Config{
		LeafSize: 32, MaxRank: 48, Tol: 1e-5, Kappa: 8, Budget: 0.05,
		Distance: core.Angle, Exec: core.Dynamic, NumWorkers: workers,
		Seed: 42, CacheBlocks: true, Workspace: NewWorkspacePool(),
	}
}

// serialize round-trips h through Save and returns the bytes.
func serialize(t *testing.T, h *Hierarchical) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(h, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// bitIdentical reports whether two matrices are equal under ==, i.e. the
// exact same bit patterns (no tolerance).
func bitIdentical(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			if ca[i] != cb[i] {
				return false
			}
		}
	}
	return true
}

func TestDeterminismGolden(t *testing.T) {
	const n, r = 384, 9
	K := randomSPD(n, 777)
	rng := rand.New(rand.NewSource(8))
	X := linalg.GaussianMatrix(rng, n, r)

	// Two independent compressions, same seed + config (4 workers each):
	// the serialized trees must be byte-identical.
	h1, err := Compress(NewDense(K), determinismConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Compress(NewDense(K), determinismConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := serialize(t, h1), serialize(t, h2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("serialized trees differ between two same-seed compressions (%d vs %d bytes)", len(b1), len(b2))
	}

	// Two batched evaluations on the same operator: bit-identical.
	U1 := h1.Matmat(X)
	U2 := h1.Matmat(X)
	if !bitIdentical(U1, U2) {
		t.Fatal("Matmat is not bit-identical across two runs on the same operator")
	}

	// The independently compressed operator must evaluate bit-identically
	// too (its structure is byte-identical, so any difference would come
	// from hidden state outside the serialized form).
	if U := h2.Matmat(X); !bitIdentical(U1, U) {
		t.Fatal("Matmat differs between two same-seed compressions")
	}

	// 1-vs-N workers: the task DAG constrains execution order, not results.
	// Evaluate the same compressed operator sequentially, with one worker,
	// and with eight workers; all must match bit-for-bit.
	for _, workers := range []int{1, 8} {
		hw, err := Compress(NewDense(K), determinismConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		if bw := serialize(t, hw); !bytes.Equal(b1, bw) {
			t.Fatalf("serialized tree differs between 4 and %d workers", workers)
		}
		if U := hw.Matmat(X); !bitIdentical(U1, U) {
			t.Fatalf("Matmat differs between 4 and %d workers", workers)
		}
	}
	seq := determinismConfig(1)
	seq.Exec = core.Sequential
	hs, err := Compress(NewDense(K), seq)
	if err != nil {
		t.Fatal(err)
	}
	if U := hs.Matmat(X); !bitIdentical(U1, U) {
		t.Fatal("Matmat differs between dynamic and sequential executors")
	}
}
