package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigDiagonal(t *testing.T) {
	A := Diag([]float64{3, -1, 5, 0})
	evs, V := SymEig(A, true)
	want := []float64{-1, 0, 3, 5}
	for i := range want {
		if math.Abs(evs[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalues = %v", evs)
		}
	}
	// Vectors orthonormal.
	if d := RelFrobDiff(MatMul(true, false, V, V), Eye(4)); d > 1e-12 {
		t.Fatalf("VᵀV deviates by %g", d)
	}
}

func TestSymEigReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	A := RandomSPD(rng, 25, 1e3)
	evs, V := SymEig(A, true)
	// A = V diag(evs) Vᵀ.
	VD := NewMatrix(25, 25)
	for j := 0; j < 25; j++ {
		copy(VD.Col(j), V.Col(j))
		Scal(evs[j], VD.Col(j))
	}
	rec := MatMul(false, true, VD, V)
	if d := RelFrobDiff(rec, A); d > 1e-10 {
		t.Fatalf("eigendecomposition reconstruction error %g", d)
	}
	// Ascending.
	for i := 1; i < len(evs); i++ {
		if evs[i] < evs[i-1] {
			t.Fatal("eigenvalues not sorted")
		}
	}
	// SPD: all positive.
	if evs[0] <= 0 {
		t.Fatalf("SPD matrix has eigenvalue %g", evs[0])
	}
}

func TestSymEigKnownSpectrum(t *testing.T) {
	// 1-D Laplacian: eigenvalues 2 − 2cos(kπ/(n+1)).
	n := 10
	A := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		A.Set(i, i, 2)
		if i+1 < n {
			A.Set(i+1, i, -1)
			A.Set(i, i+1, -1)
		}
	}
	evs, _ := SymEig(A, false)
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(evs[k-1]-want) > 1e-10 {
			t.Fatalf("eigenvalue %d = %.12f, want %.12f", k, evs[k-1], want)
		}
	}
}

func TestSymEigPropertyTraceAndOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		G := GaussianMatrix(rng, n, n)
		A := MatMul(true, false, G, G) // symmetric PSD
		evs, V := SymEig(A, true)
		var evSum, trace float64
		for i := 0; i < n; i++ {
			evSum += evs[i]
			trace += A.At(i, i)
		}
		if math.Abs(evSum-trace) > 1e-8*(1+math.Abs(trace)) {
			return false
		}
		return RelFrobDiff(MatMul(true, false, V, V), Eye(n)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCond2(t *testing.T) {
	A := Diag([]float64{1, 10, 100})
	if c := Cond2(A); math.Abs(c-100) > 1e-9 {
		t.Fatalf("Cond2 = %g", c)
	}
	B := Diag([]float64{-1, 1})
	if c := Cond2(B); !math.IsInf(c, 1) {
		t.Fatalf("indefinite Cond2 = %g", c)
	}
	rng := rand.New(rand.NewSource(131))
	C := RandomSPD(rng, 20, 1e4)
	c := Cond2(C)
	if c < 1e3 || c > 1e5 {
		t.Fatalf("RandomSPD(cond 1e4) measured cond %g", c)
	}
}
