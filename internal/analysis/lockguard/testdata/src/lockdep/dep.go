// Package lockdep is a dependency stub: its guarded fields must be
// enforced in importing packages too (cross-package annotation lookup).
package lockdep

import "sync"

// Meter exposes counters the way core.Hierarchical exposes Stats: an
// exported struct field whose hot subfields are guarded by an unexported
// mutex, plus a locked accessor.
type Meter struct {
	mu sync.Mutex
	// guarded by mu for Hits, Misses
	Counts Counts

	// Total is guarded in the plain form; Mu is exported so callers can
	// legitimately hold it themselves.
	Mu sync.Mutex
	// guarded by Mu
	Total int
}

// Counts is the payload struct (no annotations of its own).
type Counts struct {
	Hits, Misses int
	Label        string
}

// Snapshot returns the counters under the lock.
func (m *Meter) Snapshot() Counts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Counts
}
