// Package scopecheck is the golden fixture for the scopecheck analyzer.
package scopecheck

import (
	"linalg"
	"workspace"
)

// Deferred release right after the binding: clean.
func DeferRelease(p *workspace.Pool) {
	sc := p.NewScope()
	defer sc.Release()
	work(sc.Matrix(4, 4))
}

// Plain release at the end: clean.
func PlainRelease(p *workspace.Pool) {
	sc := p.NewScope()
	work(sc.Matrix(4, 4))
	sc.Release()
}

// The NewEvaluator pattern: the scope escapes into the returned struct,
// whose Close releases it later. Clean.
type evaluator struct {
	sc *workspace.Scope
}

func (e *evaluator) Close() { e.sc.Release() }

func NewEvaluator(p *workspace.Pool) *evaluator {
	sc := p.NewScope()
	return &evaluator{sc: sc}
}

// Passed to a helper that takes over: clean.
func HandsOff(p *workspace.Pool) {
	sc := p.NewScope()
	adopt(sc)
}

func adopt(sc *workspace.Scope) { defer sc.Release() }

// Never released, never escaping: flagged with the defer fix.
func Leaks(p *workspace.Pool) {
	sc := p.NewScope() // want `scope sc is never released`
	work(sc.Matrix(8, 8))
}

// A matrix kept out of the scope may escape: clean.
func KeepThenReturn(p *workspace.Pool) *linalg.Matrix {
	sc := p.NewScope()
	defer sc.Release()
	out := sc.Matrix(4, 4)
	sc.Keep(out)
	return out
}

// Returning a matrix whose scope is released here: flagged.
func ReturnFromReleased(p *workspace.Pool) *linalg.Matrix {
	sc := p.NewScope()
	defer sc.Release()
	out := sc.Matrix(4, 4)
	return out // want `matrix out from scope sc escapes via return`
}

// Returning the call result directly: flagged at the call.
func ReturnCallDirect(p *workspace.Pool) *linalg.Matrix {
	sc := p.NewScope()
	defer sc.Release()
	return sc.Matrix(4, 4) // want `matrix from scope sc is returned, but the scope is released`
}

// Storing into a field while the scope dies here: flagged.
type holder struct {
	m *linalg.Matrix
}

func (h *holder) Fill(p *workspace.Pool) {
	sc := p.NewScope()
	defer sc.Release()
	m := sc.Matrix(4, 4)
	h.m = m // want `matrix m from scope sc is stored into a field`
}

// Accumulating into a local slice element is the sanctioned idiom: clean.
func SkeletonWeights(p *workspace.Pool, ids []int) {
	sc := p.NewScope()
	defer sc.Release()
	skelW := make([]*linalg.Matrix, len(ids))
	for i := range ids {
		out := sc.Matrix(4, 4)
		skelW[i] = out
	}
	use(skelW)
}

// A helper that receives a scope it does not own: no Release required here,
// and its matrices are the caller's problem. Clean.
func fillBlock(sc *workspace.Scope) *linalg.Matrix {
	out := sc.Matrix(4, 4)
	work(out)
	return out
}

// Sending a matrix from a released scope on a channel: flagged.
func SendFromReleased(p *workspace.Pool, ch chan *linalg.Matrix) {
	sc := p.NewScope()
	defer sc.Release()
	m := sc.Matrix(4, 4)
	ch <- m // want `matrix m from scope sc is sent on a channel`
}

// Returning the same buffer twice: flagged at the second Put.
func DoublePut(p *workspace.Pool) {
	buf := p.Get(64)
	work2(buf)
	p.Put(buf)
	p.Put(buf) // want `buf is returned to the pool twice`
}

// Re-leasing between Puts resets ownership: clean.
func PutGetPut(p *workspace.Pool) {
	buf := p.Get(64)
	p.Put(buf)
	buf = p.Get(128)
	p.Put(buf)
}

// Distinct buffers: clean.
func TwoBuffers(p *workspace.Pool) {
	a := p.Get(64)
	b := p.Get(64)
	p.Put(a)
	p.Put(b)
}

func work(m *linalg.Matrix)   {}
func work2(buf []float64)     {}
func use(ms []*linalg.Matrix) {}
