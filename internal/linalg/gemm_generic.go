//go:build !amd64 || purego

package linalg

// Non-amd64 platforms — and any platform under the purego tag — always
// take the portable micro-kernel.
const haveFMAKernel = false

func gemmKernel8x6(kc int, a, b []float64, c *float64, ldc int) {
	panic("linalg: assembly micro-kernel unavailable in this build")
}
