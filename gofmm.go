// Package gofmm is a Go implementation of GOFMM — the geometry-oblivious
// fast multipole method of Yu, Levitt, Reiz & Biros (SC'17) — for
// compressing arbitrary dense symmetric positive definite (SPD) matrices
// into hierarchical (H-matrix) form and evaluating fast matrix-vector
// products.
//
// The only thing GOFMM needs from your matrix is an entry oracle:
//
//	type SPD interface {
//	    Dim() int
//	    At(i, j int) float64
//	}
//
// No point coordinates and no kernel function are required. Because an SPD
// matrix is the Gram matrix of some (unknown) set of vectors, distances
// between matrix indices can be defined purely algebraically
// (d²ij = Kii + Kjj − 2Kij, or the Gram angle 1 − K²ij/(KiiKjj)); those
// distances drive the hierarchical clustering, neighbor search, near–far
// pruning and importance sampling of a classical FMM.
//
// Quickstart:
//
//	K := gofmm.NewDense(myMatrix)              // or any SPD implementation
//	H, err := gofmm.Compress(K, gofmm.Config{
//	    LeafSize: 256, MaxRank: 256, Tol: 1e-5, Budget: 0.03,
//	})
//	U := H.Matvec(W)                           // ≈ K·W in O(N·r) time
//	eps := H.SampleRelErr(W, U, 100, 0)        // sampled relative error
//
// See the examples directory for runnable programs and DESIGN.md for the
// mapping between this library and the paper.
package gofmm

import (
	"context"
	"io"

	"gofmm/internal/core"
	"gofmm/internal/dist"
	"gofmm/internal/hss"
	"gofmm/internal/linalg"
	"gofmm/internal/plan"
	"gofmm/internal/resilience"
	"gofmm/internal/sched"
	"gofmm/internal/telemetry"
	"gofmm/internal/workspace"
)

// Matrix is a dense column-major matrix (element (i,j) at Data[j*Stride+i]).
type Matrix = linalg.Matrix

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return linalg.NewMatrix(r, c) }

// FromRows builds a matrix from row slices (copying).
func FromRows(rows [][]float64) *Matrix { return linalg.FromRows(rows) }

// Eye returns the n×n identity.
func Eye(n int) *Matrix { return linalg.Eye(n) }

// SPD is the entry oracle GOFMM compresses: a dimension and sampled entries.
// Implementations may additionally provide
//
//	Submatrix(I, J []int, dst *Matrix)
//
// (the Bulk interface) as a block-gather fast path.
type SPD = core.SPD

// Bulk is the optional block-gather fast path.
type Bulk = core.Bulk

// Config collects GOFMM's tuning parameters (§3 of the paper): leaf size m,
// maximum rank s, adaptive tolerance τ, neighbor count κ, the budget that
// bounds direct evaluations (0 ⇒ HSS), the distance definition, and the
// parallel execution strategy.
type Config = core.Config

// Hierarchical is a compressed SPD matrix K̃ = D + S + UV supporting fast
// Matvec, batched multi-RHS Matmat, error estimation, and structural
// inspection.
type Hierarchical = core.Hierarchical

// Stats aggregates per-phase times, flop counts, average skeleton rank and
// direct-evaluation volume.
type Stats = core.Stats

// Distance selects how index-to-index distances are defined.
type Distance = core.Distance

// Distance values.
const (
	// Angle is the Gram angle distance (geometry-oblivious, default).
	Angle = core.Angle
	// Kernel is the Gram ℓ₂ distance (geometry-oblivious).
	Kernel = core.Kernel
	// Geometric uses point coordinates (requires Config.Points).
	Geometric = core.Geometric
	// Lexicographic keeps the input order (no permutation).
	Lexicographic = core.Lexicographic
	// RandomPerm applies a random permutation.
	RandomPerm = core.RandomPerm
)

// ExecMode selects the shared-memory execution strategy.
type ExecMode = core.ExecMode

// ExecMode values.
const (
	// Dynamic is the task runtime with HEFT scheduling and work stealing.
	Dynamic = core.Dynamic
	// LevelByLevel synchronizes with a barrier per tree level.
	LevelByLevel = core.LevelByLevel
	// TaskDepend emulates `omp task depend` (DAG + FIFO queue).
	TaskDepend = core.TaskDepend
	// Sequential runs single-threaded (reference).
	Sequential = core.Sequential
)

// WorkerSpec describes one worker of a heterogeneous pool (speed factor,
// nested-parallelism slots, task batch size, stealing policy).
type WorkerSpec = sched.WorkerSpec

// Compress builds the hierarchical approximation of K (Algorithm 2.2:
// neighbor search, metric tree, near/far lists, nested skeletonization).
func Compress(K SPD, cfg Config) (*Hierarchical, error) { return core.Compress(K, cfg) }

// CompressCtx is Compress with cancellation and deadline support: the
// returned error wraps ErrCancelled or ErrTimeout when ctx fires mid-phase.
func CompressCtx(ctx context.Context, K SPD, cfg Config) (*Hierarchical, error) {
	return core.CompressCtx(ctx, K, cfg)
}

// ExactMatvec computes K·W exactly from entries in O(N²·r) — the dense
// baseline (use for verification on small problems).
func ExactMatvec(K SPD, W *Matrix) *Matrix { return core.ExactMatvec(K, W) }

// dense adapts a *Matrix into an SPD oracle with the bulk fast path.
type dense struct{ m *Matrix }

func (d dense) Dim() int            { return d.m.Rows }
func (d dense) At(i, j int) float64 { return d.m.At(i, j) }
func (d dense) Submatrix(I, J []int, dst *Matrix) {
	for c, j := range J {
		col := dst.Col(c)
		src := d.m.Col(j)
		for r, i := range I {
			col[r] = src[i]
		}
	}
}

// NewDense wraps an in-memory symmetric matrix as an SPD oracle.
func NewDense(m *Matrix) SPD { return dense{m} }

// Factorization is a hierarchical direct solver for a compressed operator
// (recursive Schur elimination through the skeleton hierarchy): Solve(B)
// returns K̃⁻¹·B in O(N·s²). This implements the paper's stated future work
// ("the hierarchical matrix factorization based on our method").
type Factorization = hss.Factorization

// ErrNotHSS is returned by Factor for compressions with a sparse correction.
var ErrNotHSS = hss.ErrNotHSS

// Factor builds a direct solver for an HSS-mode compression (Budget 0).
// Use it to solve K̃x = b directly, or as a preconditioner for CG on the
// exact matrix (see examples/fastsolve). A diagonal block that lost
// positive definiteness to compression error is rescued with escalating
// diagonal regularization; the perturbation is reported in
// Factorization.Jitter and Factorization.RegularizedNodes.
func Factor(h *Hierarchical) (*Factorization, error) {
	return FactorCtx(context.Background(), h)
}

// FactorCtx is Factor with cancellation and deadline support.
func FactorCtx(ctx context.Context, h *Hierarchical) (*Factorization, error) {
	hs, err := hss.FromGOFMM(h)
	if err != nil {
		return nil, err
	}
	return hs.FactorCtx(ctx)
}

// Machine is a simulated distributed-memory execution of the compressed
// operator: P virtual ranks own subtrees and exchange skeleton weights,
// potentials and near-field halos through a counted message router — the
// paper's stated future work on distributed algorithms, realized as a
// deterministic simulation (see internal/dist).
type Machine = dist.Machine

// CommStats reports the simulated network traffic of a distributed matvec.
type CommStats = dist.CommStats

// Distribute prepares a P-rank simulated distributed machine (P must be a
// power of two, at most the leaf count).
func Distribute(h *Hierarchical, ranks int) (*Machine, error) {
	return dist.Distribute(h, ranks)
}

// DistributeCtx is Distribute with cancellation support.
func DistributeCtx(ctx context.Context, h *Hierarchical, ranks int) (*Machine, error) {
	return dist.DistributeCtx(ctx, h, ranks)
}

// --- Resilience ---------------------------------------------------------

// Typed error taxonomy. Every failure surfaced by the ctx-aware API wraps
// one of these sentinels (test with errors.Is); legacy entry points keep
// their original panic/error behavior.
var (
	// ErrCancelled wraps failures caused by context cancellation.
	ErrCancelled = resilience.ErrCancelled
	// ErrTimeout wraps failures caused by a context deadline.
	ErrTimeout = resilience.ErrTimeout
	// ErrStalled is reported by the scheduler watchdog for deadlocked or
	// hung DAG execution, together with the stuck task frontier.
	ErrStalled = resilience.ErrStalled
	// ErrTaskFailed marks a task (or message) whose retry budget ran out.
	ErrTaskFailed = resilience.ErrTaskFailed
	// ErrMessageLost marks a simulated-MPI message lost in flight.
	ErrMessageLost = resilience.ErrMessageLost
	// ErrTolerance is returned under DegradeStrict when a node cannot reach
	// the requested tolerance at MaxRank.
	ErrTolerance = resilience.ErrTolerance
	// ErrInvalidInput marks rejected arguments (dimension mismatches, nil
	// operands) that previously panicked.
	ErrInvalidInput = resilience.ErrInvalidInput
	// ErrBadOracle is returned by Compress when oracle validation finds
	// NaN/Inf entries, asymmetry, or non-positive diagonals.
	ErrBadOracle = core.ErrBadOracle
	// ErrNotSPD is the root cause wrapped by factorization failures that
	// even escalating regularization could not rescue.
	ErrNotSPD = linalg.ErrNotSPD
)

// PanicError is the typed error a recovered worker panic is converted to;
// it carries the task label, the panic value, and the stack.
type PanicError = resilience.PanicError

// DegradeMode selects what happens when a node cannot reach Config.Tol at
// Config.MaxRank (see Config.Degrade).
type DegradeMode = core.DegradeMode

// DegradeMode values.
const (
	// DegradeTruncate accepts the rank-MaxRank truncation (default; the
	// paper's behavior — the sampled error estimate reports the damage).
	DegradeTruncate = core.DegradeTruncate
	// DegradeDense stores the node exactly (identity interpolation) instead
	// of a too-lossy skeleton; flagged in Inspect and counted in Stats.
	DegradeDense = core.DegradeDense
	// DegradeStrict fails the compression with ErrTolerance.
	DegradeStrict = core.DegradeStrict
)

// ChaosConfig configures the deterministic fault-injection harness:
// seedable probabilities for task failures, simulated-MPI message drops,
// corruption and delays, and oracle-entry poisoning.
type ChaosConfig = resilience.ChaosConfig

// Chaos is a deterministic fault injector; attach via Config.Chaos and
// Machine.Chaos. Nil is inert. Injection decisions are pure functions of
// (seed, site), independent of goroutine interleaving.
type Chaos = resilience.Chaos

// NewChaos builds a fault injector recording injection counts to rec
// (rec may be nil).
func NewChaos(cfg ChaosConfig, rec *Recorder) *Chaos { return resilience.NewChaos(cfg, rec) }

// Backoff is the bounded exponential backoff (with deterministic jitter)
// used by the distributed router's retry loop.
type Backoff = resilience.Backoff

// Recorder is the telemetry sink for compression, evaluation, solver and
// distributed runs: a hierarchical span tracer plus a registry of named
// counters, gauges and histograms. Attach one via Config.Telemetry (nil
// disables all recording at zero overhead), then export with
// WriteChromeTrace (Perfetto/chrome://tracing timeline), WriteMetricsJSON
// (structured snapshot) or Report (human-readable phase tree).
type Recorder = telemetry.Recorder

// NewRecorder returns an empty telemetry recorder.
func NewRecorder() *Recorder { return telemetry.New() }

// FlightRecorder is the bounded post-mortem ring over a Recorder: the last
// N completed spans, the recorded errors, and a metrics snapshot, dumped as
// JSON (schema gofmm.flight/v1) automatically from the panic/stall/deadlock
// crash paths (set a dump directory with SetDumpDir) or on demand. The live
// debug server serves the same dump at POST /debug/flightrecord.
type FlightRecorder = telemetry.FlightRecorder

// NewFlightRecorder attaches a flight recorder retaining the last n span
// completions to rec (nil rec returns a nil, inert recorder).
func NewFlightRecorder(rec *Recorder, n int) *FlightRecorder {
	return telemetry.NewFlightRecorder(rec, n)
}

// ContextWithTraceID returns ctx tagged with a request trace ID. The ID
// rides through MatvecCtx/MatmatCtx and the BatchEvaluator onto every span
// the request produces, linking coalesced requests to the batch flush that
// served them. An empty id returns ctx unchanged.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	return telemetry.ContextWithTraceID(ctx, id)
}

// TraceIDFrom extracts the trace ID from ctx ("" , false when untagged).
func TraceIDFrom(ctx context.Context) (string, bool) { return telemetry.TraceIDFrom(ctx) }

// NewTraceID mints a fresh random 16-hex-digit trace ID.
func NewTraceID() string { return telemetry.NewTraceID() }

// RunRecord is the stable machine-readable benchmark/run format
// (schema gofmm.bench/v1) shared by the benchmark harness, cmd/repro
// -benchjson and CI artifacts.
type RunRecord = telemetry.RunRecord

// NewRunRecord starts a named run record.
func NewRunRecord(name string) *RunRecord { return telemetry.NewRunRecord(name) }

// WorkspacePool is a size-classed buffer pool for the transient scratch of
// Matvec, Factor, Solve and the distributed machine. Attach one via
// Config.Workspace to make repeated evaluations allocation-free in steady
// state; nil keeps the historical allocate-per-call behavior. Safe for
// concurrent use. Pooling never changes results: pooled and unpooled paths
// run the same kernels in the same order. Call AttachTelemetry to publish
// hit/miss/bytes-reused counters ("workspace.*") to a Recorder.
type WorkspacePool = workspace.Pool

// WorkspaceStats is a point-in-time snapshot of a pool's counters.
type WorkspaceStats = workspace.Stats

// NewWorkspacePool returns an empty workspace pool.
func NewWorkspacePool() *WorkspacePool { return workspace.New() }

// Evaluator owns reusable evaluation workspaces for repeated matvecs with a
// fixed number of right-hand sides (the iterative-solver workload). Obtain
// one with Hierarchical.NewEvaluator(r); MatvecInto then performs no heap
// allocation in steady state. Close returns its buffers to the configured
// workspace pool.
type Evaluator = core.Evaluator

// --- Batched evaluation --------------------------------------------------

// BatchEvaluator coalesces concurrent single-vector Matvec requests from
// many goroutines into Matmat calls: requests gather until
// BatchOptions.MaxBatch right-hand sides are pending or the oldest request
// has waited BatchOptions.MaxDelay, then one batched four-pass sweep serves
// the whole window and each caller receives exactly its own columns (or a
// typed error). Obtain one with Hierarchical.NewBatchEvaluator; Close stops
// the background flusher after a final drain. See the README "Batched
// evaluation" section for the window semantics.
type BatchEvaluator = core.BatchEvaluator

// BatchOptions configures a BatchEvaluator's coalescing window (max batch
// width, max delay, queue capacity); the zero value picks serving-oriented
// defaults.
type BatchOptions = core.BatchOptions

// BatchStats is a snapshot of a BatchEvaluator's coalescing counters
// (requests, columns, flushes).
type BatchStats = core.BatchStats

// ErrEvaluatorClosed is the typed error BatchEvaluator.Matvec returns for
// submissions after Close: they fail fast instead of hanging or panicking.
// Close itself is idempotent and safe to call concurrently with Matvec —
// requests accepted before Close are served by the closing drain, and
// every later submission gets this sentinel (dispatch with errors.Is).
var ErrEvaluatorClosed = core.ErrEvaluatorClosed

// Plan is a compiled evaluation plan: the four-pass N2S/S2S/S2N/L2L
// traversal lowered once into a flat, replayable schedule of kernel calls
// with pre-resolved buffer offsets. Compile one with
// Hierarchical.CompilePlan (or set Config.CompilePlan to compile during
// Compress); subsequent Matvec/Matmat calls replay the plan instead of
// re-walking the tree. The tree interpreter remains available as the
// reference path through InterpMatvecCtx/InterpMatmatCtx.
type Plan = plan.Plan

// Counting wraps an SPD oracle with an entry-evaluation counter, the
// currency of GOFMM's O(N log N) compression claim.
type Counting = core.CountingSPD

// NewCounting wraps K with an entry counter.
func NewCounting(K SPD) *Counting { return core.NewCounting(K) }

// Save serializes a compressed representation (structure, skeletons,
// interpolation matrices, interaction lists, cached blocks — not the matrix
// oracle itself).
func Save(h *Hierarchical, w io.Writer) error {
	_, err := h.WriteTo(w)
	return err
}

// Load reconstructs a compressed representation written by Save, attaching
// it to the entry oracle K (the same matrix). Executor fields of the loaded
// Cfg default to sequential; adjust before calling Matvec if desired.
// Passing a nil oracle is allowed: the loaded operator evaluates from its
// cached blocks alone and returns a typed error from any path that would
// need fresh K(i,j) entries.
func Load(r io.Reader, K SPD) (*Hierarchical, error) { return core.ReadFrom(r, K) }

// LoadOptions configures LoadOperator. See core.LoadOptions.
type LoadOptions = core.LoadOptions

// StoreInfo reports how a store-backed operator was loaded.
type StoreInfo = core.StoreInfo

// LoadOperator opens a gofmm.store/v1 operator store written by
// (*Hierarchical).SaveTo and returns a ready-to-serve oracle-free operator.
// With opts.Mmap set the arena is mapped read-only and matvecs run zero-copy
// straight out of the page cache; otherwise (or when mapping is unsupported)
// the file is read and verified portably. Call ReleaseStore (or keep the
// operator for the process lifetime) to unmap.
func LoadOperator(path string, opts LoadOptions) (*Hierarchical, *StoreInfo, error) {
	return core.LoadFrom(path, opts)
}
