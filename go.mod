module gofmm

go 1.22
