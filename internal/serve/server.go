package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/telemetry"
	"gofmm/internal/telemetry/live"
)

// Config assembles a serving endpoint over a Registry.
type Config struct {
	// Registry is the operator set to serve (required).
	Registry *Registry
	// Telemetry receives serve.* metrics and per-request spans (nil
	// disables recording).
	Telemetry *telemetry.Recorder
	// Quota is the per-tenant admission policy (zero RatePerSec disables).
	Quota QuotaConfig
	// Live, when set, is mounted on the same mux: /metrics, /healthz,
	// /readyz, /debug/*. The server registers a "serving" ready check that
	// fails once drain begins, and flips the coarse ready flag on drain.
	Live *live.Server
	// MaxBodyBytes bounds request bodies (default 64 MiB). Oversized
	// bodies fail with 400, not unbounded buffering.
	MaxBodyBytes int64
	// DefaultDeadline applies when a request carries no X-Deadline-Ms
	// header (default 30s). Every evaluation runs under a deadline: a
	// stuck kernel cannot pin a serving slot forever.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (default 5m).
	MaxDeadline time.Duration
	// ReadTimeout bounds how long one request may spend trickling its body
	// (slowloris protection; default 30s). Applied by Start's listener;
	// Handler-mounted deployments configure their own http.Server.
	ReadTimeout time.Duration
	// Now is the quota clock (tests inject a fake; nil means time.Now).
	Now func() time.Time
	// Admin, when set, mounts the store-backed operator administration
	// endpoints (POST/DELETE /admin/operators/{name}) — see AdminConfig.
	Admin *AdminConfig
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	return c
}

// Server is the HTTP serving layer.
//
// Endpoints:
//
//	GET  /v1/operators                  registered operators (JSON)
//	POST /v1/operators/{name}/matvec    U = K·w
//	POST /v1/operators/{name}/matmat    U = K·X (multi-RHS)
//	POST /v1/operators/{name}/solve     U = K⁻¹·b (HSS operators)
//
// plus the live introspection set when Config.Live is mounted. Request
// bodies are JSON ({"vector": [...]} or {"columns": [[...], ...]}) or raw
// little-endian float64 columns (Content-Type: application/octet-stream);
// responses mirror the request's encoding. Headers: X-Tenant selects the
// quota bucket, X-Deadline-Ms propagates the client deadline into the
// evaluation context, X-Trace-Id threads the caller's trace through every
// span the request produces (minted and echoed back when absent).
type Server struct {
	cfg    Config
	reg    *Registry
	rec    *telemetry.Recorder
	quotas *quotas
	mux    *http.ServeMux

	mu       sync.Mutex
	draining bool          // guarded by mu
	inflight int           // guarded by mu
	idle     chan struct{} // closed when draining and inflight == 0

	lifeMu sync.Mutex
	srv    *http.Server  // guarded by lifeMu
	ln     net.Listener  // guarded by lifeMu
	done   chan struct{} // guarded by lifeMu
}

// NewServer builds the serving mux over cfg.Registry.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Registry == nil {
		return nil, fmt.Errorf("%w: serve: Config.Registry is required", resilience.ErrInvalidInput)
	}
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Registry,
		rec:    cfg.Telemetry,
		quotas: newQuotas(cfg.Quota, cfg.Now),
		idle:   make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/operators", s.handleList)
	mux.HandleFunc("POST /v1/operators/{name}/{op}", s.handleEval)
	if cfg.Admin != nil {
		if cfg.Admin.StoreDir == "" || cfg.Admin.EvalCtx == nil {
			return nil, fmt.Errorf("%w: serve: AdminConfig needs StoreDir and EvalCtx",
				resilience.ErrInvalidInput)
		}
		mux.HandleFunc("POST /admin/operators/{name}", s.handleAdminLoad)
		mux.HandleFunc("DELETE /admin/operators/{name}", s.handleAdminDelete)
	}
	if cfg.Live != nil {
		cfg.Live.AddReadyCheck("serving", s.ReadyCheck)
		mux.Handle("/metrics", cfg.Live.Handler())
		mux.Handle("/healthz", cfg.Live.Handler())
		mux.Handle("/readyz", cfg.Live.Handler())
		mux.Handle("/debug/", cfg.Live.Handler())
	}
	s.mux = mux
	return s, nil
}

// Handler returns the route set for mounting inside another server.
func (s *Server) Handler() http.Handler { return s.mux }

// ReadyCheck is a live.Check that fails once drain has begun — wire it
// into a load balancer's readiness probe so traffic stops before the
// listener does.
func (s *Server) ReadyCheck(context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	return nil
}

// Start serves on addr (port 0 picks a free port) with a hardened
// http.Server: header and body read timeouts bound slowloris clients, and
// idle keep-alive connections are reaped.
func (s *Server) Start(addr string) error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.ln != nil {
		return fmt.Errorf("%w: serve: already started on %s", resilience.ErrInvalidInput, s.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       s.cfg.ReadTimeout,
		IdleTimeout:       60 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	s.done = make(chan struct{})
	go func(srv *http.Server, ln net.Listener, done chan struct{}) {
		defer close(done)
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			if l := s.rec.Logger(); l != nil {
				l.Error("serve: listener exited", "err", serr.Error())
			}
		}
	}(s.srv, ln, s.done)
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Drain performs the graceful half of shutdown: stop admitting (new
// requests get 503 ErrDraining and /readyz flips via ReadyCheck), wait for
// every in-flight request to be answered, then close the registry so each
// BatchEvaluator runs its final flush. The elapsed time lands in the
// serve.drain_ms gauge. Bounded by ctx: on expiry it returns a typed
// timeout but still closes the registry — a drain deadline means "stop
// now", not "keep serving". Idempotent; concurrent calls all wait.
func (s *Server) Drain(ctx context.Context) error {
	start := time.Now()
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	if first && s.inflight == 0 {
		close(s.idle)
	}
	s.mu.Unlock()
	if s.cfg.Live != nil {
		s.cfg.Live.SetReady(false)
	}
	var err error
	select {
	case <-s.idle:
	case <-ctx.Done():
		err = fmt.Errorf("serve: drain interrupted with requests in flight: %w",
			resilience.FromContext(ctx))
	}
	if first {
		s.reg.Close()
		s.rec.Gauge("serve.drain_ms").Set(time.Since(start).Seconds() * 1e3)
	}
	return err
}

// Shutdown closes the listener after in-flight requests finish (call Drain
// first for the full graceful sequence). Safe without Start and safe to
// call twice.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lifeMu.Lock()
	srv, done := s.srv, s.done
	s.srv, s.ln = nil, nil
	s.lifeMu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Shutdown(ctx)
	<-done
	if err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}

// begin registers an in-flight request unless draining. It returns the
// matching end function, or a typed error when admission is closed.
func (s *Server) begin() (func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.inflight++
	return s.end, nil
}

func (s *Server) end() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 {
		close(s.idle)
	}
	s.mu.Unlock()
}

// handleList answers GET /v1/operators.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type opInfo struct {
		Name    string `json:"name"`
		Dim     int    `json:"dim"`
		Matmat  bool   `json:"matmat"`
		Solve   bool   `json:"solve"`
		Breaker string `json:"breaker"`
	}
	var out struct {
		Operators []opInfo `json:"operators"`
	}
	for _, name := range s.reg.Names() {
		op, err := s.reg.Get(name)
		if err != nil {
			continue
		}
		out.Operators = append(out.Operators, opInfo{
			Name: op.Name(), Dim: op.Dim(),
			Matmat: op.CanMatmat(), Solve: op.CanSolve(),
			Breaker: op.BreakerState().String(),
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		if l := s.rec.Logger(); l != nil {
			l.Warn("serve: list encode failed", "err", err.Error())
		}
	}
}

// handleEval serves POST /v1/operators/{name}/{op}. The full request path:
// drain gate → operator lookup → trace/deadline propagation → body decode
// (bounded) → tenant quota → operator protection stack → response in the
// request's encoding.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.rec.Counter("serve.requests").Add(1)
	end, err := s.begin()
	if err != nil {
		s.writeError(w, r, err, "")
		return
	}
	defer end()

	name, what := r.PathValue("name"), r.PathValue("op")
	tid := r.Header.Get("X-Trace-Id")
	if tid == "" {
		tid = telemetry.NewTraceID()
	}
	w.Header().Set("X-Trace-Id", tid)
	ctx := telemetry.ContextWithTraceID(r.Context(), tid)
	ctx, cancel, err := s.withDeadline(ctx, r)
	if err != nil {
		s.writeError(w, r, err, tid)
		return
	}
	defer cancel()

	sp := s.rec.StartSpan("serve.request")
	defer sp.End()
	sp.SetAttr(telemetry.AttrTraceID, tid)
	sp.SetAttr("operator", name)
	sp.SetAttr("op", what)

	op, err := s.reg.Get(name)
	if err != nil {
		s.writeError(w, r, err, tid)
		return
	}
	W, binaryIn, vectorIn, err := s.readBody(w, r, op.Dim())
	if err != nil {
		s.writeError(w, r, err, tid)
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "anonymous"
	}
	if err := s.quotas.allow(tenant, float64(W.Cols)); err != nil {
		if HTTPStatus(err) == http.StatusTooManyRequests {
			s.rec.Counter("serve.quota_rejects").Add(1)
		}
		s.writeError(w, r, err, tid)
		return
	}
	var U *linalg.Matrix
	switch what {
	case "matvec":
		U, err = op.Matvec(ctx, W)
	case "matmat":
		U, err = op.Matmat(ctx, W)
	case "solve":
		U, err = op.Solve(ctx, W)
	default:
		err = fmt.Errorf("%w: unknown operation %q (want matvec|matmat|solve)",
			resilience.ErrInvalidInput, what)
	}
	if err != nil {
		sp.SetAttr("error", ErrKind(err))
		s.writeError(w, r, err, tid)
		return
	}
	s.writeResult(w, U, binaryIn, vectorIn)
}

// withDeadline derives the evaluation context: the client's X-Deadline-Ms
// (clamped to MaxDeadline) or DefaultDeadline when absent.
func (s *Server) withDeadline(ctx context.Context, r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultDeadline
	if raw := r.Header.Get("X-Deadline-Ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("%w: bad X-Deadline-Ms %q: want positive integer",
				resilience.ErrInvalidInput, raw)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	return ctx, cancel, nil
}

// evalRequest is the JSON request/response body: exactly one of Vector
// (one column) or Columns (k columns, each of length dim) is set.
type evalRequest struct {
	Vector  []float64   `json:"vector,omitempty"`
	Columns [][]float64 `json:"columns,omitempty"`
}

// readBody decodes the request into an n×k matrix. JSON and raw
// little-endian float64 (application/octet-stream, k = size/8/dim columns)
// are accepted; the booleans report the encoding so the response mirrors
// it. The body is bounded by MaxBodyBytes before any decoding.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, dim int) (m *linalg.Matrix, binaryIn, vectorIn bool, err error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream") {
		raw, rerr := readAll(body)
		if rerr != nil {
			return nil, false, false, rerr
		}
		if len(raw) == 0 || len(raw)%8 != 0 || (len(raw)/8)%dim != 0 {
			return nil, false, false, fmt.Errorf(
				"%w: binary body of %d bytes is not a whole number of %d-row float64 columns",
				resilience.ErrInvalidInput, len(raw), dim)
		}
		cols := len(raw) / 8 / dim
		m := linalg.NewMatrix(dim, cols)
		for j := 0; j < cols; j++ {
			col := m.Col(j)
			for i := range col {
				col[i] = math.Float64frombits(
					binary.LittleEndian.Uint64(raw[8*(j*dim+i):]))
			}
		}
		return m, true, cols == 1, nil
	}
	var req evalRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if derr := dec.Decode(&req); derr != nil {
		return nil, false, false, fmt.Errorf("%w: bad JSON body: %v", resilience.ErrInvalidInput, derr)
	}
	switch {
	case req.Vector != nil && req.Columns != nil:
		return nil, false, false, fmt.Errorf(`%w: body sets both "vector" and "columns"`,
			resilience.ErrInvalidInput)
	case req.Vector != nil:
		if len(req.Vector) != dim {
			return nil, false, false, fmt.Errorf("%w: vector has %d entries, operator dim is %d",
				resilience.ErrInvalidInput, len(req.Vector), dim)
		}
		m := linalg.NewMatrix(dim, 1)
		copy(m.Col(0), req.Vector)
		return m, false, true, nil
	case len(req.Columns) > 0:
		m := linalg.NewMatrix(dim, len(req.Columns))
		for j, col := range req.Columns {
			if len(col) != dim {
				return nil, false, false, fmt.Errorf(
					"%w: column %d has %d entries, operator dim is %d",
					resilience.ErrInvalidInput, j, len(col), dim)
			}
			copy(m.Col(j), col)
		}
		return m, false, false, nil
	default:
		return nil, false, false, fmt.Errorf(`%w: body needs "vector" or "columns"`,
			resilience.ErrInvalidInput)
	}
}

// readAll drains r fully, translating the MaxBytesReader overrun into the
// taxonomy.
func readAll(r io.Reader) ([]byte, error) {
	out, err := io.ReadAll(r)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, fmt.Errorf("%w: request body exceeds %d bytes",
				resilience.ErrInvalidInput, tooLarge.Limit)
		}
		return nil, fmt.Errorf("%w: reading body: %v", resilience.ErrInvalidInput, err)
	}
	return out, nil
}

// writeResult encodes U in the request's encoding.
func (s *Server) writeResult(w http.ResponseWriter, U *linalg.Matrix, binaryIn, vectorIn bool) {
	w.Header().Set("X-Cols", strconv.Itoa(U.Cols))
	if binaryIn {
		w.Header().Set("Content-Type", "application/octet-stream")
		buf := make([]byte, 8*U.Rows*U.Cols)
		for j := 0; j < U.Cols; j++ {
			col := U.Col(j)
			for i, v := range col {
				binary.LittleEndian.PutUint64(buf[8*(j*U.Rows+i):], math.Float64bits(v))
			}
		}
		if _, err := w.Write(buf); err != nil {
			s.logWriteErr(err)
		}
		return
	}
	var resp evalRequest
	if vectorIn && U.Cols == 1 {
		resp.Vector = append([]float64(nil), U.Col(0)...)
	} else {
		resp.Columns = make([][]float64, U.Cols)
		for j := 0; j < U.Cols; j++ {
			resp.Columns[j] = append([]float64(nil), U.Col(j)...)
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logWriteErr(err)
	}
}

// writeError maps err through the status taxonomy, attaches the
// Retry-After hint when one rides the error, and emits a structured JSON
// body clients can dispatch on.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error, tid string) {
	status := HTTPStatus(err)
	if hint, ok := resilience.RetryAfterHint(err); ok {
		secs := int64(hint / time.Second)
		if hint%time.Second != 0 {
			secs++ // ceil: never tell a client to return early
		}
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	body := map[string]string{"error": err.Error(), "kind": ErrKind(err)}
	if tid != "" {
		body["trace_id"] = tid
	}
	if encErr := json.NewEncoder(w).Encode(body); encErr != nil {
		s.logWriteErr(encErr)
	}
}

func (s *Server) logWriteErr(err error) {
	if l := s.rec.Logger(); l != nil {
		l.Warn("serve: response write failed", "err", err.Error())
	}
}
