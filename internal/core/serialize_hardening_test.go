package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
)

// Serialization hardening: ReadFrom treats its input as untrusted. Every
// malformed stream — truncated, bit-flipped, or adversarially crafted —
// must come back as an error, never a panic and never an allocation sized
// by an attacker-controlled length field.

// Header layout (bytes): magic u32, version u32, then n, leaf, maxRank
// (int64), tol (float64), kappa (int64), budget (float64), dist (int64),
// cache (bool, 1 byte), sampleRows, seed (int64).
const (
	offVersion = 4
	offN       = 8
	offLeaf    = 16
	offTol     = 32
	offPermLen = 81 // 4 + 4 + 9*8 + 1
	offPerm0   = offPermLen + 8
)

// validStream compresses a small problem and returns its serialized bytes
// together with the oracle to reload against.
func validStream(t *testing.T) ([]byte, SPD) {
	t.Helper()
	h, K := compressGauss(t, 96, Config{
		LeafSize: 32, Kappa: 8, Budget: 0.1, Distance: Kernel,
		Exec: Sequential, Seed: 109, Tol: 1e-5,
	})
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), denseSPD{K}
}

// readMustErr runs ReadFrom on data and requires an error; a panic is
// converted into a test failure rather than crashing the suite.
func readMustErr(t *testing.T, name string, data []byte, K SPD) (err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s: ReadFrom panicked: %v", name, r)
			err = errors.New("panicked")
		}
	}()
	_, err = ReadFrom(bytes.NewReader(data), K)
	if err == nil {
		t.Errorf("%s: ReadFrom accepted a malformed stream", name)
	}
	return err
}

func patched(src []byte, off int, v any) []byte {
	out := append([]byte(nil), src...)
	var b bytes.Buffer
	if err := binary.Write(&b, binary.LittleEndian, v); err != nil {
		panic(err)
	}
	copy(out[off:], b.Bytes())
	return out
}

func TestReadFromTruncationAtEveryBoundary(t *testing.T) {
	data, K := validStream(t)
	// Every prefix through the whole header and node preamble, then a
	// stride through the bulk payload.
	for cut := 0; cut < len(data); {
		readMustErr(t, "truncated", data[:cut], K)
		if cut < 512 {
			cut++
		} else {
			cut += 137
		}
	}
}

func TestReadFromAdversarialHeaders(t *testing.T) {
	data, K := validStream(t)
	cases := []struct {
		name string
		data []byte
	}{
		{"bad magic", patched(data, 0, uint32(0xDEADBEEF))},
		{"version 0", patched(data, offVersion, uint32(0))},
		{"future version", patched(data, offVersion, uint32(99))},
		{"zero dimension", patched(data, offN, int64(0))},
		{"negative dimension", patched(data, offN, int64(-96))},
		{"huge dimension", patched(data, offN, int64(1)<<40)},
		{"zero leaf", patched(data, offLeaf, int64(0))},
		{"leaf exceeds n", patched(data, offLeaf, int64(97))},
		{"NaN tolerance", patched(data, offTol, math.NaN())},
		{"Inf tolerance", patched(data, offTol, math.Inf(1))},
		{"huge perm length", patched(data, offPermLen, int64(1)<<40)},
		{"negative perm length", patched(data, offPermLen, int64(-2))},
		{"short perm", patched(data, offPermLen, int64(3))},
		{"perm index out of range", patched(data, offPerm0, int64(96))},
		{"negative perm index", patched(data, offPerm0, int64(-1))},
	}
	for _, tc := range cases {
		err := readMustErr(t, tc.name, tc.data, K)
		if err != nil && !errors.Is(err, ErrBadFormat) {
			// Range violations must be classified, not bubble up as raw io
			// errors from a desynchronized parse.
			t.Logf("%s: error is %v (not ErrBadFormat — acceptable only for io errors)", tc.name, err)
		}
	}
}

func TestReadFromRejectsNonPermutation(t *testing.T) {
	data, K := validStream(t)
	// Overwrite perm[1] with perm[0]'s value: still in range, no longer a
	// permutation.
	var p0 int64
	if err := binary.Read(bytes.NewReader(data[offPerm0:]), binary.LittleEndian, &p0); err != nil {
		t.Fatal(err)
	}
	dup := patched(data, offPerm0+8, p0)
	if err := readMustErr(t, "duplicate perm entry", dup, K); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("expected ErrBadFormat, got %v", err)
	}
}

// TestReadFromHugeMatrixClaim hand-crafts a stream whose first node claims
// a matrix far larger than the problem: the parse must fail on the bound
// check instead of attempting the allocation.
func TestReadFromHugeMatrixClaim(t *testing.T) {
	n, leaf := 4, 2
	var buf bytes.Buffer
	w := func(vs ...any) {
		for _, v := range vs {
			if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	w(uint32(serialMagic), uint32(serialVersion),
		int64(n), int64(leaf), int64(8), float64(1e-5), int64(0), float64(0),
		int64(Lexicographic), false, int64(0), int64(1))
	w(int64(n), int64(0), int64(1), int64(2), int64(3)) // identity perm
	w(int64(3))                                         // node count for a 2-leaf tree
	w(int64(-1))                                        // node 0: nil skel
	w(int64(1<<30), int64(1<<30))                       // proj claims a 2^30×2^30 matrix
	rng := rand.New(rand.NewSource(110))
	K := linalg.RandomSPD(rng, n, 2)
	err := readMustErr(t, "huge matrix claim", buf.Bytes(), denseSPD{K})
	if err != nil && !errors.Is(err, ErrBadFormat) {
		t.Fatalf("expected ErrBadFormat, got %v", err)
	}
}

// TestReadFromRandomCorruption flips bytes all over valid streams: any
// outcome except panic/OOM is fine; a successful parse must at least keep
// index invariants (checked implicitly by finishStats not panicking).
func TestReadFromRandomCorruption(t *testing.T) {
	data, K := validStream(t)
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), data...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadFrom panicked on corrupted stream: %v", trial, r)
				}
			}()
			_, _ = ReadFrom(bytes.NewReader(mut), K)
		}()
	}
}

// TestSerializeVersion2RoundTripsDenseFallback checks the new per-node
// degradation flag survives a save/load cycle.
func TestSerializeVersion2RoundTripsDenseFallback(t *testing.T) {
	h, K := compressGauss(t, 128, Config{
		LeafSize: 32, Kappa: 8, Budget: 0.1, Distance: Kernel,
		Exec: Sequential, Seed: 112, Tol: 1e-5,
	})
	// Force a flag on one node to exercise the field independent of whether
	// this problem naturally degrades.
	h.nodes[1].denseFallback = true
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadFrom(&buf, denseSPD{K})
	if err != nil {
		t.Fatal(err)
	}
	for id := range h.nodes {
		if h.nodes[id].denseFallback != h2.nodes[id].denseFallback {
			t.Fatalf("denseFallback flag lost at node %d", id)
		}
	}
}
