package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gofmm/internal/resilience"
)

// BreakerConfig tunes one operator's circuit breaker. The breaker exists
// for the failure modes that poison every subsequent request — kernel
// panics (*resilience.PanicError) and scheduler stalls (ErrStalled) — not
// for per-request errors like cancellations or bad input, which say
// nothing about the operator's health.
type BreakerConfig struct {
	// Threshold is the number of consecutive trippable failures that opens
	// the breaker (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// ProbeSuccesses is the number of consecutive successful half-open
	// probes required to close again (default 1).
	ProbeSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 1
	}
	return c
}

// BreakerState is the coarse state exposed through the
// serve.breaker_state gauge.
type BreakerState int

const (
	// BreakerClosed: traffic flows normally.
	BreakerClosed BreakerState = 0
	// BreakerOpen: all traffic is rejected until the cooldown elapses.
	BreakerOpen BreakerState = 1
	// BreakerHalfOpen: one probe at a time is admitted; a success closes
	// the breaker, a trippable failure reopens it.
	BreakerHalfOpen BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-operator three-state circuit breaker. Callers pair every
// nil allow() with exactly one record(err) carrying the evaluation outcome;
// record with a non-evaluation error (shed, cancelled) is neutral in every
// state, so the pairing discipline is safe to apply unconditionally.
type breaker struct {
	cfg     BreakerConfig
	now     func() time.Time
	onState func(BreakerState) // telemetry hook, called outside mu

	mu          sync.Mutex
	state       BreakerState // guarded by mu
	consecFails int          // guarded by mu
	openedAt    time.Time    // guarded by mu
	probeBusy   bool         // guarded by mu
	probeOK     int          // guarded by mu
}

func newBreaker(cfg BreakerConfig, now func() time.Time, onState func(BreakerState)) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg.withDefaults(), now: now, onState: onState}
}

// trippable reports whether err indicates operator poisoning rather than a
// per-request problem.
func trippable(err error) bool {
	if err == nil {
		return false
	}
	var pe *resilience.PanicError
	return errors.As(err, &pe) || errors.Is(err, resilience.ErrStalled)
}

// allow gates one request. In the open state it rejects with the remaining
// cooldown as the Retry-After hint; at cooldown expiry it transitions to
// half-open and admits a single probe at a time.
func (b *breaker) allow() error {
	b.mu.Lock()
	var notify func(BreakerState)
	var newState BreakerState
	defer func() {
		b.mu.Unlock()
		if notify != nil {
			notify(newState)
		}
	}()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		remaining := b.cfg.Cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			return resilience.WithRetryAfter(
				fmt.Errorf("%w: cooling down", ErrBreakerOpen), remaining)
		}
		b.state = BreakerHalfOpen
		b.probeOK = 0
		b.probeBusy = false
		notify, newState = b.onState, b.state
		fallthrough
	default: // BreakerHalfOpen
		if b.probeBusy {
			return resilience.WithRetryAfter(
				fmt.Errorf("%w: half-open, probe in flight", ErrBreakerOpen),
				b.cfg.Cooldown)
		}
		b.probeBusy = true
		return nil
	}
}

// record reports the outcome of a request previously admitted by allow.
func (b *breaker) record(err error) {
	b.mu.Lock()
	var notify func(BreakerState)
	var newState BreakerState
	switch b.state {
	case BreakerClosed:
		switch {
		case trippable(err):
			b.consecFails++
			if b.consecFails >= b.cfg.Threshold {
				b.state = BreakerOpen
				b.openedAt = b.now()
				notify, newState = b.onState, b.state
			}
		case err == nil:
			b.consecFails = 0
		}
		// Non-trippable errors are neutral: a flood of client
		// cancellations must neither trip nor heal the breaker.
	case BreakerHalfOpen:
		if !b.probeBusy {
			// A straggler admitted before the trip finished late; its
			// verdict says nothing about the probe.
			break
		}
		b.probeBusy = false
		switch {
		case err == nil:
			b.probeOK++
			if b.probeOK >= b.cfg.ProbeSuccesses {
				b.state = BreakerClosed
				b.consecFails = 0
				notify, newState = b.onState, b.state
			}
		case trippable(err):
			b.state = BreakerOpen
			b.openedAt = b.now()
			notify, newState = b.onState, b.state
		}
		// Neutral outcomes leave the probe slot free for the next request.
	case BreakerOpen:
		// Stragglers from before the trip; the cooldown clock governs.
	}
	b.mu.Unlock()
	if notify != nil {
		notify(newState)
	}
}

// current returns the state for inspection/telemetry.
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
