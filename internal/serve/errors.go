// Package serve is the overload-hardened serving layer: it turns compressed
// operators into a long-running multi-tenant HTTP service (compress once,
// evaluate many times — the paper's economic argument, made to survive
// production traffic).
//
// The layer is built as a protection stack in front of the evaluation core:
//
//	quota (per-tenant token bucket)      → 429 Too Many Requests
//	circuit breaker (crash containment)  → 503 + Retry-After
//	admission (bounded queue + shedding) → 503 + Retry-After
//	panic-contained evaluation           → typed *resilience.PanicError
//
// Every rejection is a typed error from the taxonomy below, carrying a
// resilience.WithRetryAfter hint that the HTTP layer maps to a Retry-After
// header and resilience.Retry honors client-side. Nothing in the stack
// queues unboundedly: a 4× overload flood sheds, it does not accumulate.
package serve

import (
	"errors"
	"net/http"

	"gofmm/internal/resilience"
)

// The serving-layer error taxonomy. Handlers and clients dispatch with
// errors.Is; the HTTP boundary maps each sentinel to exactly one status
// code (see HTTPStatus), so the overload-response contract — 429 for "you
// specifically are over quota", 503 for "the server as a whole cannot take
// more right now" — is enforced in one place.
var (
	// ErrOverloaded is returned when an operator's admission queue is full:
	// the request is shed immediately rather than queued unboundedly.
	// Mapped to 503 with a Retry-After hint.
	ErrOverloaded = errors.New("serve: operator overloaded, request shed")
	// ErrQuotaExceeded is returned when a tenant's token bucket is empty.
	// Mapped to 429 with a Retry-After hint naming the refill time.
	ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")
	// ErrBreakerOpen is returned while an operator's circuit breaker is
	// open after repeated panics/stalls, and while a half-open probe is
	// already in flight. Mapped to 503 with the remaining cooldown as the
	// Retry-After hint.
	ErrBreakerOpen = errors.New("serve: circuit breaker open")
	// ErrDraining is returned for requests arriving after graceful drain
	// began: the server stops admitting but answers everything already in
	// flight. Mapped to 503 (the load balancer should already have seen
	// /readyz flip).
	ErrDraining = errors.New("serve: server draining")
	// ErrUnknownOperator is returned for requests naming an operator that
	// is not registered. Mapped to 404.
	ErrUnknownOperator = errors.New("serve: unknown operator")
	// ErrUnsupported is returned when the named operator does not support
	// the requested operation (e.g. Solve on a non-HSS compression).
	// Mapped to 501.
	ErrUnsupported = errors.New("serve: operation not supported by operator")
)

// HTTPStatus maps a serving-path error onto the response-status taxonomy.
// The split that matters operationally: 429 means "this tenant should slow
// down", 503 means "the service is saturated or recovering — anyone may
// retry after the hint", 4xx means "the request itself is wrong and
// retrying it verbatim cannot help".
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrBreakerOpen), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownOperator):
		return http.StatusNotFound
	case errors.Is(err, ErrUnsupported):
		return http.StatusNotImplemented
	case errors.Is(err, resilience.ErrInvalidInput):
		return http.StatusBadRequest
	case errors.Is(err, resilience.ErrTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, resilience.ErrCancelled):
		// The client went away mid-request; nobody is listening, but access
		// logs and tests see nginx's de-facto "client closed request".
		return 499
	default:
		// Panics, stalls, and anything else the stack contained.
		return http.StatusInternalServerError
	}
}

// ErrKind names the taxonomy sentinel err resolves to — the stable string
// carried in JSON error responses so clients dispatch without parsing
// prose.
func ErrKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrQuotaExceeded):
		return "quota_exceeded"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrBreakerOpen):
		return "breaker_open"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrUnknownOperator):
		return "unknown_operator"
	case errors.Is(err, ErrUnsupported):
		return "unsupported"
	case errors.Is(err, resilience.ErrInvalidInput):
		return "invalid_input"
	case errors.Is(err, resilience.ErrTimeout):
		return "timeout"
	case errors.Is(err, resilience.ErrCancelled):
		return "cancelled"
	case errors.Is(err, resilience.ErrStalled):
		return "stalled"
	default:
		var pe *resilience.PanicError
		if errors.As(err, &pe) {
			return "panic"
		}
		return "internal"
	}
}
