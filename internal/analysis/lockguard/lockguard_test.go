package lockguard_test

import (
	"testing"

	"gofmm/internal/analysis/analyzertest"
	"gofmm/internal/analysis/lockguard"
)

func TestLockGuard(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), lockguard.Analyzer, "lockguard")
}
