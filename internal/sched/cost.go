package sched

// Batched task costs for HEFT.
//
// The cost attached to a task is its *predicted wall-clock*, not its flop
// count. For the evaluation passes the flop count grows linearly in the
// number of right-hand sides r, but the achieved throughput does too (up to
// a point): at r = 1 every pass is a GEMV and runs at memory bandwidth,
// while a fat block turns the same pass into a GEMM that approaches the
// register-tiled kernel's peak. HEFT ranks tasks by cost, so feeding it raw
// flops would systematically over-prioritize batched tasks relative to how
// long they actually take and distort the schedule exactly when batching
// matters most.

// gemvEfficiency is the measured throughput of the r = 1 (GEMV-shaped) pass
// relative to saturated-GEMM throughput, and rhsSaturation is the block
// width at which the kernels stop gaining from extra columns (the macro
// kernel's full register-tile width is reached; see EXPERIMENTS.md,
// "Hot-path kernel parameters").
const (
	gemvEfficiency = 0.25
	rhsSaturation  = 16
)

// BatchEfficiency returns the relative throughput (0, 1] of a GEMM-shaped
// evaluation task with an n×r right-hand-side block: gemvEfficiency at
// r = 1, rising linearly until it saturates at 1 for r ≥ rhsSaturation.
func BatchEfficiency(r int) float64 {
	if r >= rhsSaturation {
		return 1
	}
	if r < 1 {
		r = 1
	}
	return gemvEfficiency + (1-gemvEfficiency)*float64(r-1)/float64(rhsSaturation-1)
}

// BatchedCost converts a task's flop count into a HEFT cost, discounting by
// the throughput the kernels actually reach at block width r.
func BatchedCost(flops float64, r int) float64 {
	return flops / BatchEfficiency(r)
}
