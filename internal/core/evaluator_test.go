package core

import (
	"math/rand"
	"testing"

	"gofmm/internal/linalg"
)

func TestEvaluatorMatchesMatvec(t *testing.T) {
	for _, budget := range []float64{0, 0.15} {
		h, _ := compressGauss(t, 400, Config{
			LeafSize: 32, MaxRank: 24, Tol: 1e-6, Kappa: 8, Budget: budget,
			Distance: Kernel, Exec: Sequential, Seed: 150, CacheBlocks: true,
		})
		ev := h.NewEvaluator(3)
		rng := rand.New(rand.NewSource(151))
		for trial := 0; trial < 3; trial++ {
			W := linalg.GaussianMatrix(rng, 400, 3)
			want := h.Matvec(W)
			got := ev.Matvec(W)
			if !linalg.EqualApprox(got, want, 0) {
				t.Fatalf("budget %g trial %d: evaluator differs (max |Δ| = %g)",
					budget, trial, maxAbsDiff(got, want))
			}
		}
	}
}

func TestEvaluatorRepeatedCallsIndependent(t *testing.T) {
	h, _ := compressGauss(t, 300, Config{
		LeafSize: 32, MaxRank: 24, Tol: 1e-6, Kappa: 8, Budget: 0.1,
		Distance: Kernel, Exec: Sequential, Seed: 152, CacheBlocks: true,
	})
	ev := h.NewEvaluator(2)
	rng := rand.New(rand.NewSource(153))
	W := linalg.GaussianMatrix(rng, 300, 2)
	first := ev.Matvec(W)
	// A different input in between must not contaminate a repeat call.
	ev.Matvec(linalg.GaussianMatrix(rng, 300, 2))
	second := ev.Matvec(W)
	if !linalg.EqualApprox(first, second, 0) {
		t.Fatal("evaluator state leaked between calls")
	}
}

func TestEvaluatorWrongShapePanics(t *testing.T) {
	h, _ := compressGauss(t, 200, Config{
		LeafSize: 32, Kappa: 8, Budget: 0, Distance: Kernel,
		Exec: Sequential, Seed: 154, Tol: 1e-4,
	})
	ev := h.NewEvaluator(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ev.Matvec(linalg.NewMatrix(200, 3))
}
