package errtaxonomy

import "fmt"

// Flattening an error with %v severs the Is/As chain; the fix upgrades the
// verb to %w mechanically.
func Flattened() error {
	if err := helper(); err != nil {
		return fmt.Errorf("flattened cause: %v", err) // want `fmt\.Errorf returned from exported Flattened`
	}
	return nil
}

// Two error operands make the rewrite ambiguous: flagged, but no fix.
func TwoCauses() error {
	e1, e2 := helper(), helper()
	if e1 != nil {
		return fmt.Errorf("both failed: %v and %s", e1, e2) // want `fmt\.Errorf returned from exported TwoCauses`
	}
	return nil
}
