package linalg

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	A := RandomSPD(rng, 25, 1e4)
	L, err := Cholesky(A)
	if err != nil {
		t.Fatal(err)
	}
	LLt := MatMul(false, true, L, L)
	if d := RelFrobDiff(LLt, A); d > 1e-10 {
		t.Fatalf("‖LLᵀ − A‖/‖A‖ = %g", d)
	}
	// Strict upper triangle of L must be zero.
	for j := 1; j < L.Cols; j++ {
		for i := 0; i < j; i++ {
			if L.At(i, j) != 0 {
				t.Fatalf("L not lower triangular at (%d,%d)", i, j)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	A := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(A); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
}

func TestCholSolveAndInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	A := RandomSPD(rng, 20, 100)
	X := GaussianMatrix(rng, 20, 4)
	B := MatMul(false, false, A, X)
	L, err := Cholesky(A)
	if err != nil {
		t.Fatal(err)
	}
	CholSolve(L, B)
	if d := RelFrobDiff(B, X); d > 1e-8 {
		t.Fatalf("CholSolve error %g", d)
	}
	Ainv, err := InvertSPD(A)
	if err != nil {
		t.Fatal(err)
	}
	AAinv := MatMul(false, false, A, Ainv)
	if d := RelFrobDiff(AAinv, Eye(20)); d > 1e-8 {
		t.Fatalf("A·A⁻¹ deviates from I by %g", d)
	}
}

func TestCholeskyPropertySPDAlwaysFactors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		// Gram matrices are SPD (a.s. full rank for m ≥ n Gaussians).
		G := GaussianMatrix(rng, n+5, n)
		A := MatMul(true, false, G, G)
		L, err := Cholesky(A)
		if err != nil {
			return false
		}
		return RelFrobDiff(MatMul(false, true, L, L), A) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// denseFromBanded expands band storage for verification.
func denseFromBanded(b *BandedSPD) *Matrix {
	A := NewMatrix(b.N, b.N)
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			A.Set(i, j, b.At(i, j))
		}
	}
	return A
}

// tridiagLaplacian returns the 1-D Dirichlet Laplacian plus shift as banded.
func tridiagLaplacian(n int, shift float64) *BandedSPD {
	b := NewBandedSPD(n, 1)
	for i := 0; i < n; i++ {
		b.Set(i, i, 2+shift)
		if i+1 < n {
			b.Set(i+1, i, -1)
		}
	}
	return b
}

func TestBandedAtSymmetry(t *testing.T) {
	b := NewBandedSPD(5, 2)
	b.Set(3, 1, 7)
	if b.At(1, 3) != 7 || b.At(3, 1) != 7 {
		t.Fatal("banded symmetry broken")
	}
	if b.At(0, 4) != 0 {
		t.Fatal("outside-band entry should read 0")
	}
}

func TestBandedCholeskySolveMatchesDense(t *testing.T) {
	n := 40
	b := tridiagLaplacian(n, 0.3)
	dense := denseFromBanded(b)
	rng := rand.New(rand.NewSource(32))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	rhs := make([]float64, n)
	Gemv(false, 1, dense, x, 0, rhs)
	if err := b.CholeskyInPlace(); err != nil {
		t.Fatal(err)
	}
	b.Solve(rhs)
	for i := range x {
		if diff := rhs[i] - x[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("banded solve mismatch at %d: %g", i, diff)
		}
	}
}

func TestBandedDenseInverse(t *testing.T) {
	n := 30
	b := tridiagLaplacian(n, 0.5)
	dense := denseFromBanded(b)
	inv, err := b.DenseInverse()
	if err != nil {
		t.Fatal(err)
	}
	prod := MatMul(false, false, dense, inv)
	if d := RelFrobDiff(prod, Eye(n)); d > 1e-10 {
		t.Fatalf("banded inverse error %g", d)
	}
}

func TestBandedWideBandwidth(t *testing.T) {
	// A banded matrix built like a 2-D grid Laplacian (bandwidth = nx).
	nx := 6
	n := nx * nx
	b := NewBandedSPD(n, nx)
	for i := 0; i < n; i++ {
		b.Set(i, i, 4.1)
		if (i+1)%nx != 0 {
			b.Set(i+1, i, -1)
		}
		if i+nx < n {
			b.Set(i+nx, i, -1)
		}
	}
	dense := denseFromBanded(b)
	inv, err := b.DenseInverse()
	if err != nil {
		t.Fatal(err)
	}
	if d := RelFrobDiff(MatMul(false, false, dense, inv), Eye(n)); d > 1e-9 {
		t.Fatalf("grid banded inverse error %g", d)
	}
}

func TestBandedRejectsIndefinite(t *testing.T) {
	b := NewBandedSPD(3, 1)
	b.Set(0, 0, 1)
	b.Set(1, 0, 5) // makes trailing block negative
	b.Set(1, 1, 1)
	b.Set(2, 2, 1)
	if err := b.CholeskyInPlace(); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
}

func TestRandomSPDIsSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	A := RandomSPD(rng, 15, 1e3)
	// Symmetry.
	if d := RelFrobDiff(A.Transposed(), A); d > 1e-12 {
		t.Fatalf("RandomSPD not symmetric: %g", d)
	}
	if _, err := Cholesky(A); err != nil {
		t.Fatalf("RandomSPD not positive definite: %v", err)
	}
}
