package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"gofmm/internal/resilience"
)

// FuzzStoreOpen feeds arbitrary bytes to the store validator. The contract
// under fuzzing: any input either decodes (and every accessor then works)
// or fails with a typed taxonomy error — never a panic, and never an
// allocation driven by an unvalidated length field (Decode's only sized
// allocation is the section table, capped at maxSections entries).
func FuzzStoreOpen(f *testing.F) {
	// Seed with a valid image and a few structured mutants so the fuzzer
	// starts past the magic check.
	var buf bytes.Buffer
	if _, err := Write(&buf, testSectionsF()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerSize])
	trunc := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(trunc)
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[12:16], 1<<31-1) // oversized section count
	f.Add(huge)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Decode(data)
		if err != nil {
			if !errors.Is(err, resilience.ErrInvalidInput) {
				t.Fatalf("untyped error from Decode: %v", err)
			}
			return
		}
		for _, kind := range file.Kinds() {
			payload, ok := file.Section(kind)
			if !ok {
				t.Fatalf("listed section %s not retrievable", kind)
			}
			// Views on arbitrary (but validated) payloads must fail typed
			// or succeed; either way, no panic.
			if kind == SecArena64 {
				_, _ = Float64s(payload)
			}
			if kind == SecArena32 {
				_, _ = Float32s(payload)
			}
		}
		if err := file.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// testSectionsF mirrors testSections for the fuzz seed without depending on
// *testing.T helpers.
func testSectionsF() []Section {
	return []Section{
		{Kind: SecMeta, Data: []byte("fuzz-meta")},
		{Kind: SecTopo, Data: bytes.Repeat([]byte{7}, 300)},
		{Kind: SecArena64, Data: make([]byte, 64)},
	}
}
