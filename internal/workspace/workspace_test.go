package workspace

import (
	"testing"

	"gofmm/internal/telemetry"
)

func TestGetZeroedAndSized(t *testing.T) {
	p := New()
	for _, n := range []int{1, 7, 255, 256, 257, 5000, 1 << 16} {
		buf := p.Get(n)
		if len(buf) != n {
			t.Fatalf("Get(%d) returned len %d", n, len(buf))
		}
		for i := range buf {
			buf[i] = 1 // dirty it
		}
		p.Put(buf)
	}
	// Second round must come back zeroed despite the dirtying above.
	for _, n := range []int{1, 7, 255, 256, 257, 5000, 1 << 16} {
		buf := p.Get(n)
		for i, v := range buf {
			if v != 0 {
				t.Fatalf("Get(%d) buffer not zeroed at %d", n, i)
			}
		}
	}
}

func TestPoolReusesBuffers(t *testing.T) {
	p := New()
	a := p.Get(1000)
	p.Put(a)
	b := p.Get(900) // same class (1024): must be the recycled buffer
	if &a[0] != &b[0] {
		t.Fatalf("expected buffer reuse within a size class")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Returns != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 return", st)
	}
	if st.BytesReused != 1024*8 {
		t.Fatalf("BytesReused = %d, want %d", st.BytesReused, 1024*8)
	}
}

func TestPutOddCapacityIsSafe(t *testing.T) {
	p := New()
	// A 1500-cap buffer files under the 1024 class; a later Get(1024) must
	// still have enough capacity.
	p.Put(make([]float64, 1500))
	buf := p.Get(1024)
	if len(buf) != 1024 {
		t.Fatalf("len = %d", len(buf))
	}
	// Tiny buffers are dropped, not filed.
	p.Put(make([]float64, 3))
	small := p.Get(3)
	if len(small) != 3 {
		t.Fatalf("len = %d", len(small))
	}
}

func TestNilPoolDegradesToAlloc(t *testing.T) {
	var p *Pool
	buf := p.Get(100)
	if len(buf) != 100 {
		t.Fatalf("nil pool Get broken")
	}
	p.Put(buf)
	M := p.GetMatrix(4, 5)
	if M.Rows != 4 || M.Cols != 5 {
		t.Fatalf("nil pool GetMatrix broken")
	}
	p.PutMatrix(M)
	if st := p.Stats(); st != (Stats{}) {
		t.Fatalf("nil pool stats = %+v", st)
	}
	s := p.NewScope()
	if N := s.Matrix(2, 2); N.Rows != 2 {
		t.Fatalf("nil pool scope broken")
	}
	s.Release()
}

func TestScopeReleaseAndKeep(t *testing.T) {
	p := New()
	s := p.NewScope()
	A := s.Matrix(40, 40)
	B := s.Matrix(40, 40)
	s.Keep(B)
	s.Release()
	// A went back to the pool; the next same-class request must reuse it.
	C := p.GetMatrix(40, 40)
	if &C.Data[0] != &A.Data[0] {
		t.Fatalf("scope release did not return matrix to pool")
	}
	// B was kept: its storage must be distinct from anything pooled.
	if &B.Data[0] == &C.Data[0] {
		t.Fatalf("kept matrix was recycled")
	}
}

func TestTelemetryCounters(t *testing.T) {
	p := New()
	pre := p.Get(600) // traffic before attach must be carried over
	p.Put(pre)
	rec := telemetry.New()
	p.AttachTelemetry(rec)
	buf := p.Get(600)
	p.Put(buf)
	if got := rec.Counter("workspace.hits").Value(); got != p.Stats().Hits {
		t.Fatalf("workspace.hits = %d, pool hits = %d", got, p.Stats().Hits)
	}
	if got := rec.Counter("workspace.misses").Value(); got != p.Stats().Misses {
		t.Fatalf("workspace.misses = %d, pool misses = %d", got, p.Stats().Misses)
	}
	if got := rec.Counter("workspace.returns").Value(); got != 2 {
		t.Fatalf("workspace.returns = %d, want 2", got)
	}
	if got := rec.Counter("workspace.bytes_reused").Value(); got != p.Stats().BytesReused {
		t.Fatalf("workspace.bytes_reused = %d, want %d", got, p.Stats().BytesReused)
	}
}
