package linalg

// Single-precision storage support. The paper runs its K02–K18 and G01–G05
// experiments in fp32; this reproduction computes in float64 but can store
// the cached near/far blocks — the dominant memory consumer — in float32,
// halving their footprint at a ~1e-7 relative accuracy floor (which is also
// what the paper's single-precision runs see).

// Matrix32 is a dense column-major float32 matrix used for block storage.
type Matrix32 struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// NewMatrix32 allocates a zeroed r×c single-precision matrix.
func NewMatrix32(r, c int) *Matrix32 {
	return &Matrix32{Rows: r, Cols: c, Stride: max(r, 1), Data: make([]float32, max(r, 1)*c)}
}

// FromColumnMajor32 wraps existing column-major float32 data (no copy) —
// the single-precision counterpart of FromColumnMajor, used by the operator
// store to serve cached blocks straight out of a file mapping.
func FromColumnMajor32(r, c int, data []float32) *Matrix32 {
	if len(data) < r*c {
		panic("linalg: float32 data shorter than matrix")
	}
	return &Matrix32{Rows: r, Cols: c, Stride: max(r, 1), Data: data}
}

// ToMatrix32 converts (rounds) a float64 matrix to float32 storage.
func ToMatrix32(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		dst := out.Col(j)
		for i, v := range src {
			dst[i] = float32(v)
		}
	}
	return out
}

// Col returns column j as a slice view.
func (m *Matrix32) Col(j int) []float32 {
	off := j * m.Stride
	return m.Data[off : off+m.Rows : off+m.Rows]
}

// At returns element (i, j) widened to float64.
func (m *Matrix32) At(i, j int) float64 { return float64(m.Data[j*m.Stride+i]) }

// ToMatrix widens back to float64 (exact).
func (m *Matrix32) ToMatrix() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		dst := out.Col(j)
		for i, v := range src {
			dst[i] = float64(v)
		}
	}
	return out
}

// Bytes returns the storage footprint.
func (m *Matrix32) Bytes() int64 { return int64(m.Rows) * int64(m.Cols) * 4 }

// GemmMixed computes C = alpha·A·B + beta·C where A is stored in float32 and
// the accumulation is in float64 — the mixed-precision product used when
// cached blocks are kept in single precision.
func GemmMixed(alpha float64, A *Matrix32, B *Matrix, beta float64, C *Matrix) {
	m, k := A.Rows, A.Cols
	if B.Rows != k || C.Rows != m || C.Cols != B.Cols {
		panic("linalg: GemmMixed dimension mismatch")
	}
	if beta != 1 {
		if beta == 0 {
			C.Zero()
		} else {
			C.Scale(beta)
		}
	}
	if alpha == 0 || m == 0 || k == 0 {
		return
	}
	parallelFor(B.Cols, 8, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			cj := C.Col(j)
			bj := B.Col(j)
			for kk := 0; kk < k; kk++ {
				ak := A.Col(kk)
				s := alpha * bj[kk]
				if s == 0 {
					continue
				}
				for i := 0; i < m; i++ {
					cj[i] += s * float64(ak[i])
				}
			}
		}
	})
}

// GemvMixed computes y = alpha·A·x + beta·y with A stored in float32 and
// float64 accumulation — the width-1 counterpart of GemmMixed. Like Gemv it
// blocks 8 columns per pass so y is streamed once per 8 columns instead of
// once per column; with the column-at-a-time form the y read-modify-write
// traffic (16 bytes per element) dwarfed the 4-byte block reads and capped
// DRAM-resident replays. The accumulation order therefore differs from
// GemmMixed by rounding (plan-vs-interpreter suites compare at 1e-13, not
// bits), but replay-vs-replay stays bit-identical since the kernel is
// deterministic. No zero-coefficient skip: A is always finite (the oracle
// validates cached blocks), so a zero coefficient contributes exact zeros
// either way. Compiled plan replays dispatch width-1 mixed-precision GEMM
// records here.
func GemvMixed(alpha float64, A *Matrix32, x []float64, beta float64, y []float64) {
	m, k := A.Rows, A.Cols
	if len(x) != k || len(y) != m {
		panic("linalg: GemvMixed dimension mismatch")
	}
	if beta == 0 {
		for i := range y {
			y[i] = 0
		}
	} else if beta != 1 {
		for i := range y {
			y[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	kk := 0
	if haveFMAKernel && m >= 4 {
		// AVX2 path: VCVTPS2PD widening feeds the float64 FMAs directly,
		// removing the scalar conversion that otherwise dominates (one
		// convert per element costs more than the multiply-add itself).
		mm := m &^ 3
		var coef [8]float64
		for ; kk+8 <= k; kk += 8 {
			for j := range coef {
				coef[j] = alpha * x[kk+j]
			}
			gemvCols8F32(mm, &A.Data[kk*A.Stride], A.Stride, &coef[0], &y[0])
			for j := 0; mm < m && j < 8; j++ {
				aj := A.Col(kk + j)
				c := coef[j]
				for i := mm; i < m; i++ {
					y[i] += c * float64(aj[i])
				}
			}
		}
	}
	for ; kk+8 <= k; kk += 8 {
		a0, a1, a2, a3 := A.Col(kk), A.Col(kk+1), A.Col(kk+2), A.Col(kk+3)
		a4, a5, a6, a7 := A.Col(kk+4), A.Col(kk+5), A.Col(kk+6), A.Col(kk+7)
		b0, b1, b2, b3 := alpha*x[kk], alpha*x[kk+1], alpha*x[kk+2], alpha*x[kk+3]
		b4, b5, b6, b7 := alpha*x[kk+4], alpha*x[kk+5], alpha*x[kk+6], alpha*x[kk+7]
		for i := range y {
			s0 := float64(a0[i])*b0 + float64(a1[i])*b1 + float64(a2[i])*b2 + float64(a3[i])*b3
			s1 := float64(a4[i])*b4 + float64(a5[i])*b5 + float64(a6[i])*b6 + float64(a7[i])*b7
			y[i] += s0 + s1
		}
	}
	for ; kk+4 <= k; kk += 4 {
		a0, a1, a2, a3 := A.Col(kk), A.Col(kk+1), A.Col(kk+2), A.Col(kk+3)
		b0, b1, b2, b3 := alpha*x[kk], alpha*x[kk+1], alpha*x[kk+2], alpha*x[kk+3]
		for i := range y {
			y[i] += float64(a0[i])*b0 + float64(a1[i])*b1 + float64(a2[i])*b2 + float64(a3[i])*b3
		}
	}
	for ; kk < k; kk++ {
		s := alpha * x[kk]
		ak := A.Col(kk)
		for i := range y {
			y[i] += s * float64(ak[i])
		}
	}
}
