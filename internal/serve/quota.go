package serve

import (
	"fmt"
	"sync"
	"time"

	"gofmm/internal/resilience"
)

// QuotaConfig is the per-tenant token-bucket policy. One bucket per tenant
// (the X-Tenant header at the HTTP layer); a request costs one token per
// right-hand-side column, so a 32-column Matmat spends 32× the budget of a
// single Matvec — quotas meter work, not requests.
type QuotaConfig struct {
	// RatePerSec is each tenant's sustained refill rate in columns/second.
	// Zero or negative disables quota enforcement entirely.
	RatePerSec float64
	// Burst is the bucket capacity (default max(RatePerSec, 1)): how many
	// columns a tenant may spend instantaneously after an idle period.
	Burst float64
	// MaxTenants bounds the bucket table (default 4096). At the bound, the
	// stalest bucket is evicted — a returning tenant restarts with a full
	// bucket, which errs toward admission, never toward unbounded memory.
	MaxTenants int
}

func (c QuotaConfig) withDefaults() QuotaConfig {
	if c.Burst <= 0 {
		c.Burst = c.RatePerSec
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 4096
	}
	return c
}

type bucket struct {
	tokens float64
	last   time.Time
}

// quotas is the token-bucket table. The clock is injected so tests are
// deterministic: refill is computed lazily from elapsed time, there is no
// background goroutine to leak or to flake.
type quotas struct {
	cfg QuotaConfig
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket // guarded by mu
}

func newQuotas(cfg QuotaConfig, now func() time.Time) *quotas {
	if now == nil {
		now = time.Now
	}
	return &quotas{cfg: cfg.withDefaults(), now: now, buckets: map[string]*bucket{}}
}

// allow charges tenant cost tokens, or returns ErrQuotaExceeded with a
// Retry-After hint naming when the bucket will hold cost tokens again.
// A nil receiver or a disabled policy admits everything.
func (q *quotas) allow(tenant string, cost float64) error {
	if q == nil || q.cfg.RatePerSec <= 0 || cost <= 0 {
		return nil
	}
	if cost > q.cfg.Burst {
		// The request can never fit any bucket: reject with a permanent
		// taxonomy error rather than a retry hint that would lie.
		return fmt.Errorf("%w: request costs %g columns, tenant burst is %g",
			resilience.ErrInvalidInput, cost, q.cfg.Burst)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.buckets[tenant]
	if b == nil {
		if len(q.buckets) >= q.cfg.MaxTenants {
			q.evictStalest()
		}
		b = &bucket{tokens: q.cfg.Burst, last: now}
		q.buckets[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * q.cfg.RatePerSec
		if b.tokens > q.cfg.Burst {
			b.tokens = q.cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= cost {
		b.tokens -= cost
		return nil
	}
	wait := time.Duration((cost - b.tokens) / q.cfg.RatePerSec * float64(time.Second))
	return resilience.WithRetryAfter(
		fmt.Errorf("%w: tenant %q needs %.3g more tokens", ErrQuotaExceeded,
			tenant, cost-b.tokens),
		wait)
}

// evictStalest removes the bucket with the oldest refill stamp. Linear
// scan: eviction only runs at the MaxTenants bound.
// called with q.mu held.
func (q *quotas) evictStalest() {
	var stalest string
	var when time.Time
	first := true
	for tenant, b := range q.buckets {
		if first || b.last.Before(when) {
			stalest, when, first = tenant, b.last, false
		}
	}
	delete(q.buckets, stalest)
}

// tenants reports the bucket-table size for telemetry.
func (q *quotas) tenants() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}
