package store

import (
	"fmt"
	"unsafe"
)

// Zero-copy numeric views. The arena sections hold little-endian IEEE-754
// data; on a little-endian host a []byte range can be reinterpreted as a
// float slice in place. The writer's 64-byte section alignment plus the
// page alignment of mappings (and Go's 8-byte heap alignment for the Open
// copy) guarantee the element alignment these views require, but the checks
// stay: a hand-built buffer with a stray offset must fail typed, not crash.

// hostLittleEndian reports the byte order of this machine, settled once at
// init. Big-endian hosts cannot reinterpret the little-endian file payload
// in place and must take the copying decode path.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// viewable returns a typed error when b cannot back an in-place view with
// elemSize-byte elements.
func viewable(b []byte, elemSize uintptr) error {
	if !hostLittleEndian {
		return fmt.Errorf("%w (big-endian host needs the copying decode)", ErrMmapUnsupported)
	}
	if uintptr(len(b))%elemSize != 0 {
		return fmt.Errorf("%w: %d bytes is not a whole number of %d-byte elements",
			ErrBadStore, len(b), elemSize)
	}
	if len(b) > 0 && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%elemSize != 0 {
		return fmt.Errorf("%w: buffer base breaks %d-byte element alignment", ErrBadStore, elemSize)
	}
	return nil
}

// Float64s reinterprets b as a []float64 without copying.
func Float64s(b []byte) ([]float64, error) {
	if err := viewable(b, 8); err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8), nil
}

// Float32s reinterprets b as a []float32 without copying.
func Float32s(b []byte) ([]float32, error) {
	if err := viewable(b, 4); err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4), nil
}
