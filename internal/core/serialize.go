package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"gofmm/internal/linalg"
	"gofmm/internal/tree"
)

// Serialization of the compressed representation. Compression is the
// expensive phase (O(N log N) with large constants), so persisting the
// result and reloading it next to a fresh entry oracle is a practical
// workflow: the stored form carries the permutation, per-node skeletons and
// interpolation matrices, the interaction lists, and (optionally) the
// cached near/far blocks — everything Matvec needs.

const (
	serialMagic   = 0x474F464D // "GOFM"
	serialVersion = 1
)

// ErrBadFormat is returned when the input is not a GOFMM serialization.
var ErrBadFormat = errors.New("core: bad serialization format")

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the compressed representation (not the matrix oracle).
func (h *Hierarchical) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	le := binary.LittleEndian
	wr := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(bw, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	writeInts := func(xs []int) error {
		if err := wr(int64(len(xs))); err != nil {
			return err
		}
		for _, x := range xs {
			if err := wr(int64(x)); err != nil {
				return err
			}
		}
		return nil
	}
	writeMat := func(m *linalg.Matrix) error {
		if m == nil {
			return wr(int64(-1))
		}
		if err := wr(int64(m.Rows), int64(m.Cols)); err != nil {
			return err
		}
		for j := 0; j < m.Cols; j++ {
			if err := wr(m.Col(j)); err != nil {
				return err
			}
		}
		return nil
	}
	c := h.Cfg
	if err := wr(uint32(serialMagic), uint32(serialVersion),
		int64(h.K.Dim()), int64(c.LeafSize), int64(c.MaxRank), c.Tol,
		int64(c.Kappa), c.Budget, int64(c.Distance), c.CacheBlocks,
		int64(c.SampleRows), c.Seed); err != nil {
		return cw.n, err
	}
	if err := writeInts(h.Tree.Perm); err != nil {
		return cw.n, err
	}
	if err := wr(int64(len(h.nodes))); err != nil {
		return cw.n, err
	}
	for id := range h.nodes {
		nd := &h.nodes[id]
		if err := writeInts(nd.skel); err != nil {
			return cw.n, err
		}
		if err := writeMat(nd.proj); err != nil {
			return cw.n, err
		}
		if err := writeInts(nd.near); err != nil {
			return cw.n, err
		}
		if err := writeInts(nd.far); err != nil {
			return cw.n, err
		}
		if err := wr(nd.cacheNear != nil); err != nil {
			return cw.n, err
		}
		for _, m := range nd.cacheNear {
			if err := writeMat(m); err != nil {
				return cw.n, err
			}
		}
		if err := wr(nd.cacheFar != nil); err != nil {
			return cw.n, err
		}
		for _, m := range nd.cacheFar {
			if err := writeMat(m); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom reconstructs a compressed representation previously written with
// WriteTo, attaching it to the entry oracle K (which must be the same
// matrix; only its dimension is validated). Executor-related fields of the
// returned Cfg (Exec, NumWorkers, WorkerSpecs) are zero — set them before
// calling Matvec if a parallel executor is wanted.
func ReadFrom(r io.Reader, K SPD) (*Hierarchical, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	rd := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(br, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	readInt := func() (int, error) {
		var v int64
		err := rd(&v)
		return int(v), err
	}
	readInts := func() ([]int, error) {
		n, err := readInt()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, nil
		}
		out := make([]int, n)
		for i := range out {
			if out[i], err = readInt(); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	readMat := func() (*linalg.Matrix, error) {
		rows, err := readInt()
		if err != nil {
			return nil, err
		}
		if rows < 0 {
			return nil, nil
		}
		cols, err := readInt()
		if err != nil {
			return nil, err
		}
		m := linalg.NewMatrix(rows, cols)
		for j := 0; j < cols; j++ {
			if err := rd(m.Col(j)); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	var magic, version uint32
	if err := rd(&magic, &version); err != nil {
		return nil, err
	}
	if magic != serialMagic {
		return nil, ErrBadFormat
	}
	if version != serialVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadFormat, version)
	}
	var n64, leaf, maxRank, kappa, dist, sampleRows, seed int64
	var tol, budget float64
	var cache bool
	if err := rd(&n64, &leaf, &maxRank, &tol, &kappa, &budget, &dist, &cache, &sampleRows, &seed); err != nil {
		return nil, err
	}
	if K.Dim() != int(n64) {
		return nil, fmt.Errorf("core: oracle dimension %d does not match stored %d", K.Dim(), n64)
	}
	h := &Hierarchical{K: K, Cfg: Config{
		LeafSize: int(leaf), MaxRank: int(maxRank), Tol: tol, Kappa: int(kappa),
		Budget: budget, Distance: Distance(dist), CacheBlocks: cache,
		SampleRows: int(sampleRows), Seed: seed, Exec: Sequential, NumWorkers: 1,
	}}
	perm, err := readInts()
	if err != nil {
		return nil, err
	}
	if len(perm) != int(n64) {
		return nil, fmt.Errorf("%w: permutation length %d", ErrBadFormat, len(perm))
	}
	h.Tree = tree.FromPermutation(perm, int(leaf))
	numNodes, err := readInt()
	if err != nil {
		return nil, err
	}
	if numNodes != len(h.Tree.Nodes) {
		return nil, fmt.Errorf("%w: %d nodes for tree of %d", ErrBadFormat, numNodes, len(h.Tree.Nodes))
	}
	h.nodes = make([]node, numNodes)
	for id := 0; id < numNodes; id++ {
		nd := &h.nodes[id]
		if nd.skel, err = readInts(); err != nil {
			return nil, err
		}
		if nd.proj, err = readMat(); err != nil {
			return nil, err
		}
		if nd.near, err = readInts(); err != nil {
			return nil, err
		}
		if nd.far, err = readInts(); err != nil {
			return nil, err
		}
		var hasNear, hasFar bool
		if err := rd(&hasNear); err != nil {
			return nil, err
		}
		if hasNear {
			nd.cacheNear = make([]*linalg.Matrix, len(nd.near))
			for k := range nd.cacheNear {
				if nd.cacheNear[k], err = readMat(); err != nil {
					return nil, err
				}
			}
		}
		if err := rd(&hasFar); err != nil {
			return nil, err
		}
		if hasFar {
			nd.cacheFar = make([]*linalg.Matrix, len(nd.far))
			for k := range nd.cacheFar {
				if nd.cacheFar[k], err = readMat(); err != nil {
					return nil, err
				}
			}
		}
	}
	h.finishStats()
	return h, nil
}
