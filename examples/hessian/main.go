// Hessian trace estimation: K02 is the Hessian operator of a PDE-
// constrained optimization problem (a regularized inverse Laplacian
// squared). Hutchinson's randomized trace estimator needs many matvecs with
// random probe vectors — exactly the multi-right-hand-side Monte-Carlo
// workload the paper lists as a target (§1: "Monte-Carlo sampling,
// optimization, and block Krylov methods"). GOFMM makes each probe batch
// O(N) instead of O(N²).
//
//	go run ./examples/hessian [-n 1024]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"gofmm"
	"gofmm/testmat"
)

func main() {
	n := flag.Int("n", 1024, "Hessian dimension (rounds to a grid)")
	probes := flag.Int("probes", 64, "Hutchinson probe vectors")
	flag.Parse()
	log.SetFlags(0)

	p, err := testmat.Generate("K02", *n, 1)
	if err != nil {
		log.Fatal(err)
	}
	dim := p.K.Dim()
	fmt.Printf("problem: %s (N = %d)\n", p.Desc, dim)

	t0 := time.Now()
	H, err := gofmm.Compress(p.K, gofmm.Config{
		LeafSize: 128, MaxRank: 128, Tol: 1e-7, Budget: 0.03,
		Distance: gofmm.Angle, Exec: gofmm.Dynamic, NumWorkers: 4,
		CacheBlocks: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed in %.3fs (avg rank %.1f)\n", time.Since(t0).Seconds(), H.Stats.AvgRank)

	// Hutchinson: tr(K) ≈ (1/m) Σ zᵢᵀ K zᵢ with Rademacher probes, all m
	// probes evaluated in ONE multi-RHS matvec.
	rng := rand.New(rand.NewSource(4))
	Z := gofmm.NewMatrix(dim, *probes)
	for j := 0; j < *probes; j++ {
		col := Z.Col(j)
		for i := range col {
			if rng.Intn(2) == 0 {
				col[i] = 1
			} else {
				col[i] = -1
			}
		}
	}
	t0 = time.Now()
	KZ := H.Matvec(Z)
	mv := time.Since(t0).Seconds()
	var est float64
	for j := 0; j < *probes; j++ {
		zj, kzj := Z.Col(j), KZ.Col(j)
		for i := range zj {
			est += zj[i] * kzj[i]
		}
	}
	est /= float64(*probes)

	// Exact trace from the diagonal (available since we can sample entries).
	var exact float64
	for i := 0; i < dim; i++ {
		exact += p.K.At(i, i)
	}
	fmt.Printf("Hutchinson trace (%d probes, one %.4fs multi-RHS matvec): %.6f\n", *probes, mv, est)
	fmt.Printf("exact trace: %.6f — relative error %.2e\n", exact, math.Abs(est-exact)/exact)

	// Curvature probe: largest eigenvalue estimate via a few power steps,
	// the quantity step-size selection needs in Newton-type methods.
	v := gofmm.NewMatrix(dim, 1)
	for i := 0; i < dim; i++ {
		v.Set(i, 0, rng.NormFloat64())
	}
	var lambda float64
	for it := 0; it < 20; it++ {
		w := H.Matvec(v)
		col := w.Col(0)
		norm := 0.0
		for _, x := range col {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		lambda = norm
		for i := range col {
			col[i] /= norm
		}
		v = w
	}
	fmt.Printf("dominant Hessian eigenvalue (power iteration on K̃): %.6f\n", lambda)
}
