package telemetry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRecorderConcurrentHammer drives one Recorder from many goroutines at
// once — spans, metrics, task events and snapshots all interleaved. Run
// with -race (the CI race step includes this package) to verify the
// goroutine-safety claims of the package documentation.
func TestRecorderConcurrentHammer(t *testing.T) {
	r := New()
	root := r.StartSpan("hammer")
	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					sp := root.StartSpan(fmt.Sprintf("g%d", g))
					sp.StartSpan("leaf").End()
					sp.End()
				case 1:
					r.Counter("c").Add(1)
					r.Counter(fmt.Sprintf("c%d", g%4)).Add(2)
				case 2:
					r.Gauge("g").Set(float64(i))
					r.Histogram("h").Observe(float64(i % 37))
				case 3:
					r.AddTaskEvents([]TaskEvent{{
						Name: "t", Worker: g % 4,
						Start: time.Duration(i), Dur: time.Microsecond, StolenFrom: -1,
					}})
				case 4:
					_ = r.Snapshot()
					_ = r.PhaseSeconds("hammer")
				}
			}
		}(g)
	}
	wg.Wait()
	root.End()

	snap := r.Snapshot()
	if got := snap.Counters["c"]; got != goroutines*iters/5 {
		t.Fatalf("counter c = %d, want %d", got, goroutines*iters/5)
	}
	if got := len(r.TaskEvents()); got != goroutines*iters/5 {
		t.Fatalf("task events = %d, want %d", got, goroutines*iters/5)
	}
	// The exporters must tolerate whatever the hammer produced.
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := r.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if len(r.Report()) == 0 {
		t.Fatal("empty report")
	}
}
