// Package scopecheck enforces the workspace pooling contract:
//
//  1. a *workspace.Scope created with NewScope must be released in the
//     creating function (plain or deferred Release) unless it escapes —
//     the NewEvaluator pattern stores the scope in the returned struct and
//     Close releases it later;
//  2. a matrix obtained from Scope.Matrix must not outlive its scope's
//     Release: returning it, storing it into a struct field, or sending it
//     on a channel requires Scope.Keep first, otherwise the pool will hand
//     the same backing array to the next caller while the escapee still
//     reads it — silent data corruption, not a crash;
//  3. the same buffer must not be returned to a Pool twice in one block
//     (double Put re-enters the free list twice, so two later Gets alias).
//
// Storing a scope matrix into a local slice element (skelW[id] = out) is
// the sanctioned accumulation idiom and is not flagged.
package scopecheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gofmm/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "scopecheck",
	Doc: "flag workspace scopes that are never released, scope matrices escaping a " +
		"released scope without Keep, and double pool Puts",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Syntax {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		parents := framework.BuildParents(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, parents, fd)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, parents framework.Parents, fd *ast.FuncDecl) {
	released := releasedScopes(pass, fd)
	kept := keptMatrices(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case framework.IsMethod(pass.TypesInfo, call, "workspace", "Pool", "NewScope"):
			checkNewScope(pass, parents, fd, call, released)
		case framework.IsMethod(pass.TypesInfo, call, "workspace", "Scope", "Matrix"):
			checkMatrix(pass, parents, fd, call, released, kept)
		}
		return true
	})

	checkDoublePut(pass, fd)
}

// releasedScopes collects every object on which .Release() is called
// (plain or deferred) anywhere in the function, closures included.
func releasedScopes(pass *framework.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !framework.IsMethod(pass.TypesInfo, call, "workspace", "Scope", "Release") {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr)
		if obj := framework.ObjectOf(pass.TypesInfo, sel.X); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// keptMatrices collects every object passed to Scope.Keep.
func keptMatrices(pass *framework.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !framework.IsMethod(pass.TypesInfo, call, "workspace", "Scope", "Keep") {
			return true
		}
		for _, arg := range call.Args {
			if obj := framework.ObjectOf(pass.TypesInfo, arg); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func checkNewScope(pass *framework.Pass, parents framework.Parents, fd *ast.FuncDecl, call *ast.CallExpr, released map[types.Object]bool) {
	as, ok := parents[call].(*ast.AssignStmt)
	if !ok {
		return // returned, passed along, or stored directly: ownership moves
	}
	var lhs ast.Expr
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) == call && i < len(as.Lhs) {
			lhs = as.Lhs[i]
		}
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return // stored through a selector/index: escapes
	}
	obj := framework.ObjectOf(pass.TypesInfo, id)
	if obj == nil || released[obj] || escapes(pass, parents, fd, obj) {
		return
	}
	d := framework.Diagnostic{
		Pos: as.Pos(),
		Message: fmt.Sprintf(
			"scope %s is never released: every buffer it hands out leaks from the pool", id.Name),
	}
	if as.Tok == token.DEFINE {
		pos := pass.Fset.Position(as.Pos())
		if pos.Column >= 1 {
			indent := strings.Repeat("\t", pos.Column-1)
			d.SuggestedFixes = []framework.SuggestedFix{{
				Message: fmt.Sprintf("defer %s.Release() after the binding", id.Name),
				TextEdits: []framework.TextEdit{{
					Pos:     as.End(),
					End:     as.End(),
					NewText: []byte("\n" + indent + "defer " + id.Name + ".Release()"),
				}},
			}}
		}
	}
	pass.Report(d)
}

// escapes reports whether obj leaves the function: passed as a call
// argument, returned, stored into a composite literal, aliased to another
// variable, address-taken, or sent on a channel. Method calls on obj do
// not count.
func escapes(pass *framework.Pass, parents framework.Parents, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found || framework.ObjectOf(pass.TypesInfo, id) != obj {
			return true
		}
		switch parent := parents[id].(type) {
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if arg == ast.Node(id) {
					found = true
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.UnaryExpr:
			found = true
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if ast.Unparen(rhs) == ast.Expr(id) {
					found = true // aliased; the alias may be released
				}
			}
		}
		return true
	})
	return found
}

func checkMatrix(pass *framework.Pass, parents framework.Parents, fd *ast.FuncDecl, call *ast.CallExpr, released, kept map[types.Object]bool) {
	sel := call.Fun.(*ast.SelectorExpr)
	scObj := framework.ObjectOf(pass.TypesInfo, sel.X)
	if scObj == nil || !released[scObj] {
		return // scope outlives this function; its matrices may too
	}

	// Direct escape: return sc.Matrix(...) with sc released here.
	if _, ok := parents[call].(*ast.ReturnStmt); ok {
		pass.Reportf(call.Pos(),
			"matrix from scope %s is returned, but the scope is released in this function; "+
				"the pool will recycle its backing array — call %s.Keep first",
			sel.X.(*ast.Ident).Name, sel.X.(*ast.Ident).Name)
		return
	}

	as, ok := parents[call].(*ast.AssignStmt)
	if !ok {
		return
	}
	var lhs ast.Expr
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) == call && i < len(as.Lhs) {
			lhs = as.Lhs[i]
		}
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel {
			pass.Reportf(as.Pos(),
				"matrix from released scope is stored into a field without Keep; "+
					"the pool will recycle its backing array")
		}
		return
	}
	mObj := framework.ObjectOf(pass.TypesInfo, id)
	if mObj == nil || kept[mObj] {
		return
	}

	// Track the bound matrix: returning it, storing it into a field, or
	// sending it on a channel outlives Release. Local slice-element stores
	// (skelW[i] = M) stay inside the function and are fine.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || use.Pos() <= as.End() || framework.ObjectOf(pass.TypesInfo, use) != mObj {
			return true
		}
		switch parent := parents[use].(type) {
		case *ast.ReturnStmt:
			pass.Reportf(use.Pos(),
				"matrix %s from scope %s escapes via return, but the scope is released in this "+
					"function; call %s.Keep(%s) first", use.Name, scObj.Name(), scObj.Name(), use.Name)
		case *ast.SendStmt:
			if parent.Value == ast.Expr(use) {
				pass.Reportf(use.Pos(),
					"matrix %s from scope %s is sent on a channel, but the scope is released in "+
						"this function; call %s.Keep(%s) first", use.Name, scObj.Name(), scObj.Name(), use.Name)
			}
		case *ast.AssignStmt:
			for i, rhs := range parent.Rhs {
				if ast.Unparen(rhs) != ast.Expr(use) || i >= len(parent.Lhs) {
					continue
				}
				if _, isSel := ast.Unparen(parent.Lhs[i]).(*ast.SelectorExpr); isSel {
					pass.Reportf(use.Pos(),
						"matrix %s from scope %s is stored into a field, but the scope is released "+
							"in this function; call %s.Keep(%s) first", use.Name, scObj.Name(), scObj.Name(), use.Name)
				}
			}
		}
		return true
	})
}

// checkDoublePut flags the second Put of the same value within one
// statement list with no intervening reassignment.
func checkDoublePut(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		seen := map[types.Object]token.Pos{}
		for _, st := range block.List {
			var call *ast.CallExpr
			switch s := st.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.AssignStmt:
				for _, l := range s.Lhs {
					if obj := framework.ObjectOf(pass.TypesInfo, l); obj != nil {
						delete(seen, obj) // reassigned: a fresh buffer now
					}
				}
				continue
			default:
				continue
			}
			if call == nil || len(call.Args) != 1 {
				continue
			}
			if !framework.IsMethod(pass.TypesInfo, call, "workspace", "Pool", "Put") &&
				!framework.IsMethod(pass.TypesInfo, call, "workspace", "Pool", "PutMatrix") {
				continue
			}
			obj := framework.ObjectOf(pass.TypesInfo, call.Args[0])
			if obj == nil {
				continue
			}
			if prev, dup := seen[obj]; dup {
				pass.Reportf(call.Pos(),
					"%s is returned to the pool twice (first at line %d); two later Gets will "+
						"alias the same backing array",
					obj.Name(), pass.Fset.Position(prev).Line)
				continue
			}
			seen[obj] = call.Pos()
		}
		return true
	})
}
