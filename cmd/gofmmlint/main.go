// Command gofmmlint runs the repo's analyzer suite (internal/analysis) in
// two modes:
//
//	gofmmlint ./...                      # standalone, over go list patterns
//	go vet -vettool=$(which gofmmlint) ./...   # unitchecker, driven by cmd/go
//
// The vettool protocol (see $GOROOT/src/cmd/go/internal/work/exec.go) is:
// `-V=full` prints an identity line cmd/go hashes into the build cache key,
// `-flags` prints the tool's flag schema as JSON, and a per-package
// invocation passes a *.cfg file describing the package; diagnostics go to
// stderr and a nonzero exit marks findings. The tool must write the
// VetxOutput facts file even when it has no facts, or cmd/go reports the
// tool as failed.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"gofmm/internal/analysis/load"
	"gofmm/internal/analysis/suite"
)

// version participates in cmd/go's content hash for vet results: bump it
// whenever analyzer behavior changes so stale cached verdicts are not
// reused. The -V=full reply must have ≥3 fields with f[1]=="version" and
// f[2] != "devel" (cmd/go/internal/work/buildid.go).
const version = "gofmm-pr10"

func main() {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Printf("%s version %s\n", filepath.Base(os.Args[0]), version)
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

// standalone loads patterns (default ./...) via `go list -export` and
// prints findings ourselves — no cmd/go driver required. A leading
// `-sarif <path>` additionally writes the findings as a SARIF 2.1.0 log
// so CI renders them as code annotations.
func standalone(args []string) int {
	sarifPath := ""
	if len(args) >= 2 && args[0] == "-sarif" {
		sarifPath, args = args[1], args[2:]
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gofmmlint:", err)
		return 1
	}
	found := 0
	var all []suite.Finding
	for _, pkg := range pkgs {
		findings, err := suite.Run(pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gofmmlint: %s: %v\n", pkg.ImportPath, err)
			return 1
		}
		all = append(all, findings...)
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Position, f.Diagnostic.Message, f.Analyzer)
			found++
		}
	}
	if sarifPath != "" {
		if err := writeSARIF(sarifPath, all); err != nil {
			fmt.Fprintln(os.Stderr, "gofmmlint: writing sarif:", err)
			return 1
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "gofmmlint: %d finding(s)\n", found)
		return 2
	}
	return 0
}

// vetConfig mirrors the JSON cmd/go writes next to each package it vets.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gofmmlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gofmmlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go demands the facts file exist afterwards, findings or not.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("gofmmlint has no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "gofmmlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: cmd/go only wants exported facts
	}
	fset := token.NewFileSet()
	imp := load.NewImporter(fset, func(path string) (string, bool) {
		canonical := path
		if c, ok := cfg.ImportMap[path]; ok {
			canonical = c
		}
		f, ok := cfg.PackageFile[canonical]
		return f, ok
	})
	files := make([]string, len(cfg.GoFiles))
	for i, gf := range cfg.GoFiles {
		if filepath.IsAbs(gf) {
			files[i] = gf
		} else {
			files[i] = filepath.Join(cfg.Dir, gf)
		}
	}
	pkg, err := load.Check(fset, imp, cfg.ImportPath, files, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "gofmmlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	pkg.Dir = cfg.Dir
	findings, err := suite.Run(pkg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gofmmlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Position, f.Diagnostic.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
