// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core: an Analyzer runs over one
// type-checked package (a Pass) and reports position-anchored Diagnostics,
// optionally carrying mechanical SuggestedFixes. The repository cannot
// vendor x/tools (the build is fully offline), so this package mirrors the
// subset of the upstream API the gofmmlint suite needs; if x/tools ever
// becomes available the analyzers port by changing one import line.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check: a name (used in diagnostics and ignore
// directives), one-paragraph documentation, and a Run function invoked once
// per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer. Syntax holds the
// parsed files (test files included when the driver was given them), and
// TypesInfo is fully populated (Types, Defs, Uses, Selections, Scopes).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Syntax    []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)
}

// A Diagnostic is one finding, anchored at Pos (End optional).
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is a mechanical rewrite that resolves the diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Reportf reports a formatted diagnostic at pos with no fix.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The gofmmlint
// invariants guard production code; tests deliberately violate several of
// them (open spans, context.Background, unreleased scopes) as fixtures.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Drivers pass it to types.Config.Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
