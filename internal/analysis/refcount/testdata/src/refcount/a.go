package refcount

import "context"

type operator struct {
	name string
}

// acquire pins the operator; false once retired.
func (o *operator) acquire() bool { return o.name != "" }

// release drops one pin.
func (o *operator) release() {}

// do is a releaser method: ownership of the pin transfers to it.
func (o *operator) do(ctx context.Context) error {
	defer o.release()
	return work(ctx)
}

type gate struct{ ch chan struct{} }

func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.ch <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) release() { <-g.ch }

type breaker struct{ open bool }

func (b *breaker) allow() error {
	if b.open {
		return errOpen
	}
	return nil
}

func (b *breaker) record(err error) {}

var errOpen = errorString("open")

type errorString string

func (e errorString) Error() string { return string(e) }

func work(ctx context.Context) error { return ctx.Err() }

// --- correct pairings ---

func deferPair(ctx context.Context, g *gate) error {
	if err := g.acquire(ctx); err != nil {
		return err
	}
	defer g.release()
	return work(ctx)
}

func directPair(ctx context.Context, g *gate) {
	if err := g.acquire(ctx); err != nil {
		return
	}
	g.release()
}

func transferOwnership(ctx context.Context, o *operator) error {
	if o.acquire() {
		return o.do(ctx)
	}
	return errOpen
}

func boundBool(ctx context.Context, o *operator) error {
	ok := o.acquire()
	if ok {
		return o.do(ctx)
	}
	return errOpen
}

func deferredClosure(ctx context.Context, b *breaker) (err error) {
	if err := b.allow(); err != nil {
		return err
	}
	defer func() { b.record(err) }()
	return work(ctx)
}

func failedAcquireNeedsNoRelease(ctx context.Context, g *gate) error {
	if err := g.acquire(ctx); err != nil {
		return err // ok: the reference never existed on this path
	}
	defer g.release()
	return nil
}

// --- violations ---

func leakOnEarlyReturn(ctx context.Context, g *gate) error {
	if err := g.acquire(ctx); err != nil { // want `acquire acquired here is not released on every path`
		return err
	}
	if ctx.Err() != nil {
		return ctx.Err() // leaks: no release on this exit
	}
	g.release()
	return nil
}

func leakEverywhere(o *operator) {
	if o.acquire() { // want `acquire acquired here is not released on every path`
		_ = o.name
	}
}

func panicWindow(ctx context.Context, g *gate) error {
	if err := g.acquire(ctx); err != nil { // want `acquire acquired here may leak if a later call panics; use .defer release.`
		return err
	}
	err := work(ctx) // a panic here unwinds past the manual release
	g.release()
	return err
}

func allowWithoutRecord(ctx context.Context, b *breaker) error {
	if err := b.allow(); err != nil { // want `allow acquired here is not released on every path`
		return err
	}
	return work(ctx)
}

func strayReleaseIsFine(g *gate) {
	g.release() // ok: releasing on behalf of a caller-side acquire
}
