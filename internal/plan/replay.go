package plan

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gofmm/internal/linalg"
	"gofmm/internal/resilience"
	"gofmm/internal/sched"
	"gofmm/internal/telemetry"
	"gofmm/internal/workspace"
)

// ExecOptions configures one replay.
type ExecOptions struct {
	// Workers > 1 replays parallel stages through the sched engine's
	// level runner (one barrier per stage); otherwise the whole schedule
	// runs in order on the calling goroutine.
	Workers int
	// Pool supplies the arena (one plan-sized reservation per replay
	// binding); nil falls back to plain allocation.
	Pool *workspace.Pool
	// Telemetry, when non-nil, records the plan.replay_ms histogram and the
	// plan.replays counter. Nil disables recording.
	Telemetry *telemetry.Recorder
	// Inject, when non-nil, is consulted once per replay at the named site;
	// returning true injects a panic (the chaos hook used by the fault
	// suites). The panic surfaces through the caller's backstop exactly
	// like a kernel bug would.
	Inject func(site string) bool
}

// replayState is one reusable arena binding for a fixed RHS width r: the
// arena storage plus a prebuilt matrix header for every op operand, so a
// steady-state replay performs no heap allocation. A state is used by one
// replay at a time; Plan.Execute checks states out of a per-width pool.
type replayState struct {
	r     int
	arena *workspace.Arena
	bview []*linalg.Matrix // per-op B operand header (nil where unused)
	cview []*linalg.Matrix // per-op C operand header (nil where unused)

	// levels holds the parallel replay closures, one level per stage,
	// built lazily on first parallel Execute and rebound through W/U below.
	levels [][]func()

	// External bindings of the current replay, set by Execute before the
	// ops run and cleared after. Gather reads W; Scatter writes U.
	W, U *linalg.Matrix
}

// bind returns a matrix header over ref's slice of the arena.
func (st *replayState) bind(ref Ref) *linalg.Matrix {
	region := linalg.FromColumnMajor(ref.Span, st.r, st.arena.Slice(ref.Base*st.r, ref.Span*st.r))
	return region.View(ref.Sub, 0, ref.Rows, st.r)
}

// newState builds an arena binding for width r.
func (p *Plan) newState(r int, pool *workspace.Pool) *replayState {
	st := &replayState{
		r:     r,
		arena: pool.GetArena(p.ArenaFloats(r)),
		bview: make([]*linalg.Matrix, len(p.ops)),
		cview: make([]*linalg.Matrix, len(p.ops)),
	}
	for i := range p.ops {
		op := &p.ops[i]
		switch op.Kind {
		case OpGemm, OpCopy, OpAdd:
			st.bview[i] = st.bind(op.B)
			st.cview[i] = st.bind(op.C)
		case OpGather, OpZero:
			st.cview[i] = st.bind(op.C)
		case OpScatter:
			st.bview[i] = st.bind(op.B)
		}
	}
	return st
}

// getState checks a binding for width r out of the per-width pool,
// building one on a miss.
func (p *Plan) getState(r int, pool *workspace.Pool) *replayState {
	p.statesMu.Lock()
	if p.states == nil {
		p.states = make(map[int]*sync.Pool)
	}
	sp := p.states[r]
	if sp == nil {
		sp = &sync.Pool{}
		p.states[r] = sp
	}
	p.statesMu.Unlock()
	if v := sp.Get(); v != nil {
		return v.(*replayState)
	}
	return p.newState(r, pool)
}

// putState returns a binding to its pool for the next replay of width r.
func (p *Plan) putState(st *replayState) {
	st.W, st.U = nil, nil
	p.statesMu.Lock()
	sp := p.states[st.r]
	p.statesMu.Unlock()
	if sp != nil {
		sp.Put(st)
	}
}

// Execute replays the plan: U = K̃·W for the n×r input W into the
// caller-provided n×r output U. It is safe for concurrent use — each call
// binds its own arena. The context is honoured at every stage barrier.
func (p *Plan) Execute(ctx context.Context, W, U *linalg.Matrix, opts ExecOptions) error {
	if W == nil || U == nil {
		return fmt.Errorf("%w: plan: Execute with nil input or output", resilience.ErrInvalidInput)
	}
	if W.Rows != p.n || U.Rows != p.n || U.Cols != W.Cols {
		return fmt.Errorf("%w: plan: Execute with %d×%d input and %d×%d output, plan dim %d",
			resilience.ErrInvalidInput, W.Rows, W.Cols, U.Rows, U.Cols, p.n)
	}
	if err := resilience.FromContext(ctx); err != nil {
		return err
	}
	if opts.Inject != nil && opts.Inject("plan.replay") {
		panic(fmt.Sprintf("chaos: injected replay failure (plan %s)", p.DigestHex()[:12]))
	}
	start := time.Now()
	st := p.getState(W.Cols, opts.Pool)
	defer p.putState(st)
	st.W, st.U = W, U
	var err error
	if opts.Workers > 1 {
		if st.levels == nil {
			st.buildLevels(p)
		}
		err = sched.RunLevelsCtx(ctx, st.levels, opts.Workers)
	} else {
		err = p.runSequential(ctx, st)
	}
	if err != nil {
		return err
	}
	if rec := opts.Telemetry; rec != nil {
		rec.Counter("plan.replays").Add(1)
		rec.Histogram("plan.replay_ms").Observe(time.Since(start).Seconds() * 1e3)
	}
	return nil
}

// runSequential replays every stage in order on the calling goroutine,
// honouring the context at stage boundaries (mirroring the interpreter's
// between-pass checks).
func (p *Plan) runSequential(ctx context.Context, st *replayState) error {
	for si := range p.stages {
		if err := resilience.FromContext(ctx); err != nil {
			return err
		}
		stage := &p.stages[si]
		for _, t := range stage.tasks {
			p.runTask(st, t.Lo, t.Hi)
		}
	}
	return nil
}

// buildLevels materializes the parallel replay closures: one level per
// stage (RunLevelsCtx barriers between levels), one closure per task.
// Tasks of a stage write disjoint regions and each region has a single
// writer with a fixed internal op order, so any interleaving produces
// bit-identical results.
func (st *replayState) buildLevels(p *Plan) {
	st.levels = make([][]func(), len(p.stages))
	for si := range p.stages {
		stage := &p.stages[si]
		batch := make([]func(), len(stage.tasks))
		for ti, t := range stage.tasks {
			lo, hi := t.Lo, t.Hi
			batch[ti] = func() { p.runTask(st, lo, hi) }
		}
		st.levels[si] = batch
	}
}

// runTask executes ops [lo, hi) in order.
func (p *Plan) runTask(st *replayState, lo, hi int) {
	for i := lo; i < hi; i++ {
		op := &p.ops[i]
		switch op.Kind {
		case OpGather:
			st.W.RowsGatherInto(op.Idx, st.cview[i])
		case OpGemm:
			// Kernel selection, resolved per record: the compiler fixed every
			// operand shape at build time, so width-1 replays dispatch straight
			// to the fused GEMV kernels instead of the general GEMM entry point
			// — a single-column specialization the interpreter's generic block
			// dispatch never gets. The choice depends only on the replay width,
			// so repeated replays stay bit-identical.
			switch {
			case st.r == 1 && op.A32 != nil:
				linalg.GemvMixed(1, op.A32, st.bview[i].Col(0), op.Beta, st.cview[i].Col(0))
			case st.r == 1:
				linalg.Gemv(op.TransA, 1, op.A, st.bview[i].Col(0), op.Beta, st.cview[i].Col(0))
			case op.A32 != nil:
				linalg.GemmMixed(1, op.A32, st.bview[i], op.Beta, st.cview[i])
			default:
				linalg.Gemm(op.TransA, false, 1, op.A, st.bview[i], op.Beta, st.cview[i])
			}
		case OpCopy:
			st.cview[i].CopyFrom(st.bview[i])
		case OpAdd:
			st.cview[i].AddScaled(1, st.bview[i])
		case OpZero:
			st.cview[i].Zero()
		case OpScatter:
			st.bview[i].RowsGatherInto(op.Idx, st.U)
		}
	}
}
