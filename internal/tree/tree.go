// Package tree implements the balanced binary partitioning tree that GOFMM
// uses to permute an SPD matrix (§2.1 of the paper), together with Morton
// IDs encoding root-to-node paths and the traversal orders (preorder,
// postorder, level-by-level, leaves-only) that drive every algorithm phase.
//
// The tree is "complete": every interior node has exactly two children and
// all leaves sit at the same depth L = ceil(log2(N/m)), so a node's children
// are found by array arithmetic (children of k are 2k+1 and 2k+2). A node
// owns a contiguous half-open range [Lo, Hi) of *tree positions*; the
// Perm/IPerm arrays map tree positions to original matrix indices and back,
// which is exactly the symmetric permutation the H-matrix is built in.
package tree

import "fmt"

// Splitter rearranges idx (a slice of original matrix indices owned by one
// node) so that the first nl entries belong to the left child, and returns
// nl. Implementations are the metric ball-tree split, the random projection
// split, and the trivial lexicographic/random splits. A balanced tree
// requires nl to be within ±1 of len(idx)/2; Build enforces this.
type Splitter interface {
	Split(idx []int, level int) int
}

// EvenSplit is the trivial splitter that keeps the current order and cuts in
// the middle: with pre-sorted input this is the lexicographic ordering used
// by the HODLR/HSS baselines.
type EvenSplit struct{}

// Split implements Splitter.
func (EvenSplit) Split(idx []int, _ int) int { return (len(idx) + 1) / 2 }

// Node is one vertex of the partition tree.
type Node struct {
	ID     int // position in Tree.Nodes (heap order)
	Level  int // root is level 0
	Lo, Hi int // tree positions owned: Perm[Lo:Hi]
	Morton Morton
}

// Size returns the number of indices the node owns.
func (n *Node) Size() int { return n.Hi - n.Lo }

// Tree is a complete balanced binary partition tree over n indices.
type Tree struct {
	N     int
	Depth int    // leaf level; 2^Depth leaves
	Nodes []Node // len 2^(Depth+1) - 1, heap order
	// Perm maps tree position -> original index; IPerm is its inverse.
	Perm, IPerm []int
	// leafOfPos maps tree position -> leaf node ID.
	leafOfPos []int
}

// DepthFor returns the leaf level such that leaves hold at most leafSize
// indices: ceil(log2(n/leafSize)).
func DepthFor(n, leafSize int) int {
	if leafSize <= 0 {
		panic("tree: leafSize must be positive")
	}
	d := 0
	for size := n; size > leafSize; size = (size + 1) / 2 {
		d++
	}
	return d
}

// Build constructs the tree by recursively splitting [0, n) with split.
// A nil split means EvenSplit. The identity permutation seeds the order, so
// with EvenSplit the result is the lexicographic partition.
func Build(n, leafSize int, split Splitter) *Tree {
	if n <= 0 {
		panic("tree: Build with n <= 0")
	}
	if split == nil {
		split = EvenSplit{}
	}
	depth := DepthFor(n, leafSize)
	t := &Tree{
		N:         n,
		Depth:     depth,
		Nodes:     make([]Node, (2<<depth)-1),
		Perm:      make([]int, n),
		IPerm:     make([]int, n),
		leafOfPos: make([]int, n),
	}
	for i := range t.Perm {
		t.Perm[i] = i
	}
	t.build(0, 0, 0, n, split)
	for pos, orig := range t.Perm {
		t.IPerm[orig] = pos
	}
	return t
}

func (t *Tree) build(id, level, lo, hi int, split Splitter) {
	t.Nodes[id] = Node{ID: id, Level: level, Lo: lo, Hi: hi, Morton: mortonOf(id, level)}
	if level == t.Depth {
		for pos := lo; pos < hi; pos++ {
			t.leafOfPos[pos] = id
		}
		return
	}
	seg := t.Perm[lo:hi]
	nl := split.Split(seg, level)
	half := len(seg) / 2
	if nl < half || nl > half+len(seg)%2 {
		panic(fmt.Sprintf("tree: splitter returned unbalanced cut %d of %d at level %d", nl, len(seg), level))
	}
	t.build(2*id+1, level+1, lo, lo+nl, split)
	t.build(2*id+2, level+1, lo+nl, hi, split)
}

// FromPermutation rebuilds a tree from a stored permutation: node ranges of
// a balanced tree are fully determined by n and leafSize (every splitter
// cuts at ceil(n/2)), so only the permutation needs to be persisted.
func FromPermutation(perm []int, leafSize int) *Tree {
	t := Build(len(perm), leafSize, EvenSplit{})
	copy(t.Perm, perm)
	for pos, orig := range t.Perm {
		t.IPerm[orig] = pos
	}
	return t
}

// Root returns the root node.
func (t *Tree) Root() *Node { return &t.Nodes[0] }

// IsLeaf reports whether node id is a leaf.
func (t *Tree) IsLeaf(id int) bool { return t.Nodes[id].Level == t.Depth }

// Left and Right return child IDs (only valid for interior nodes).
func (t *Tree) Left(id int) int  { return 2*id + 1 }
func (t *Tree) Right(id int) int { return 2*id + 2 }

// Parent returns the parent ID (or -1 for the root).
func (t *Tree) Parent(id int) int {
	if id == 0 {
		return -1
	}
	return (id - 1) / 2
}

// NumLeaves returns 2^Depth.
func (t *Tree) NumLeaves() int { return 1 << t.Depth }

// Leaves returns the IDs of all leaves, left to right.
func (t *Tree) Leaves() []int {
	first := (1 << t.Depth) - 1
	out := make([]int, t.NumLeaves())
	for i := range out {
		out[i] = first + i
	}
	return out
}

// LeafOfIndex returns the leaf node ID owning original matrix index i.
func (t *Tree) LeafOfIndex(i int) int { return t.leafOfPos[t.IPerm[i]] }

// MortonOfIndex returns the Morton ID of the leaf owning original index i —
// the paper's MortonID(i).
func (t *Tree) MortonOfIndex(i int) Morton { return t.Nodes[t.LeafOfIndex(i)].Morton }

// Indices returns the original matrix indices owned by node id, in tree
// order. The returned slice aliases the permutation; callers must not
// modify it.
func (t *Tree) Indices(id int) []int {
	nd := &t.Nodes[id]
	return t.Perm[nd.Lo:nd.Hi]
}

// Sibling returns the sibling ID (or -1 for the root).
func (t *Tree) Sibling(id int) int {
	if id == 0 {
		return -1
	}
	if id%2 == 1 {
		return id + 1
	}
	return id - 1
}

// PostOrder calls visit for every node, children before parents.
func (t *Tree) PostOrder(visit func(n *Node)) { t.postOrder(0, visit) }

func (t *Tree) postOrder(id int, visit func(n *Node)) {
	if !t.IsLeaf(id) {
		t.postOrder(t.Left(id), visit)
		t.postOrder(t.Right(id), visit)
	}
	visit(&t.Nodes[id])
}

// PreOrder calls visit for every node, parents before children.
func (t *Tree) PreOrder(visit func(n *Node)) { t.preOrder(0, visit) }

func (t *Tree) preOrder(id int, visit func(n *Node)) {
	visit(&t.Nodes[id])
	if !t.IsLeaf(id) {
		t.preOrder(t.Left(id), visit)
		t.preOrder(t.Right(id), visit)
	}
}

// LevelNodes returns node IDs grouped by level, root first.
func (t *Tree) LevelNodes() [][]int {
	out := make([][]int, t.Depth+1)
	for l := 0; l <= t.Depth; l++ {
		first := (1 << l) - 1
		ids := make([]int, 1<<l)
		for i := range ids {
			ids[i] = first + i
		}
		out[l] = ids
	}
	return out
}
