//go:build amd64 && !purego

#include "textflag.h"

// func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemmKernel8x6(kc int, a, b []float64, c *float64, ldc int)
//
// 8×6 micro-kernel over packed panels. The C tile lives in 12 YMM
// accumulators (two 4-wide vectors per column):
//
//	col j rows 0-3 → Y(4+2j), rows 4-7 → Y(5+2j)
//
// Per k step: two loads of the packed A 8-vector (Y0, Y1), six broadcasts
// of packed B entries (alternating Y2/Y3), twelve FMAs. A panel entries are
// 64 bytes apart per step, B panel entries 48 bytes.
TEXT ·gemmKernel8x6(SB), NOSPLIT, $0-72
	MOVQ kc+0(FP), CX
	MOVQ a_base+8(FP), SI
	MOVQ b_base+32(FP), DX
	MOVQ c+56(FP), DI
	MOVQ ldc+64(FP), R8
	SHLQ $3, R8              // column stride in bytes

	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11
	VXORPD Y12, Y12, Y12
	VXORPD Y13, Y13, Y13
	VXORPD Y14, Y14, Y14
	VXORPD Y15, Y15, Y15

	TESTQ CX, CX
	JZ    accum

kloop:
	VMOVUPD      (SI), Y0
	VMOVUPD      32(SI), Y1
	VBROADCASTSD (DX), Y2
	VFMADD231PD  Y0, Y2, Y4
	VFMADD231PD  Y1, Y2, Y5
	VBROADCASTSD 8(DX), Y3
	VFMADD231PD  Y0, Y3, Y6
	VFMADD231PD  Y1, Y3, Y7
	VBROADCASTSD 16(DX), Y2
	VFMADD231PD  Y0, Y2, Y8
	VFMADD231PD  Y1, Y2, Y9
	VBROADCASTSD 24(DX), Y3
	VFMADD231PD  Y0, Y3, Y10
	VFMADD231PD  Y1, Y3, Y11
	VBROADCASTSD 32(DX), Y2
	VFMADD231PD  Y0, Y2, Y12
	VFMADD231PD  Y1, Y2, Y13
	VBROADCASTSD 40(DX), Y3
	VFMADD231PD  Y0, Y3, Y14
	VFMADD231PD  Y1, Y3, Y15
	ADDQ         $64, SI
	ADDQ         $48, DX
	DECQ         CX
	JNZ          kloop

accum:
	// C[:, j] += accumulators, one column at a time.
	VMOVUPD (DI), Y0
	VADDPD  Y4, Y0, Y0
	VMOVUPD Y0, (DI)
	VMOVUPD 32(DI), Y1
	VADDPD  Y5, Y1, Y1
	VMOVUPD Y1, 32(DI)
	ADDQ    R8, DI

	VMOVUPD (DI), Y0
	VADDPD  Y6, Y0, Y0
	VMOVUPD Y0, (DI)
	VMOVUPD 32(DI), Y1
	VADDPD  Y7, Y1, Y1
	VMOVUPD Y1, 32(DI)
	ADDQ    R8, DI

	VMOVUPD (DI), Y0
	VADDPD  Y8, Y0, Y0
	VMOVUPD Y0, (DI)
	VMOVUPD 32(DI), Y1
	VADDPD  Y9, Y1, Y1
	VMOVUPD Y1, 32(DI)
	ADDQ    R8, DI

	VMOVUPD (DI), Y0
	VADDPD  Y10, Y0, Y0
	VMOVUPD Y0, (DI)
	VMOVUPD 32(DI), Y1
	VADDPD  Y11, Y1, Y1
	VMOVUPD Y1, 32(DI)
	ADDQ    R8, DI

	VMOVUPD (DI), Y0
	VADDPD  Y12, Y0, Y0
	VMOVUPD Y0, (DI)
	VMOVUPD 32(DI), Y1
	VADDPD  Y13, Y1, Y1
	VMOVUPD Y1, 32(DI)
	ADDQ    R8, DI

	VMOVUPD (DI), Y0
	VADDPD  Y14, Y0, Y0
	VMOVUPD Y0, (DI)
	VMOVUPD 32(DI), Y1
	VADDPD  Y15, Y1, Y1
	VMOVUPD Y1, 32(DI)

	VZEROUPPER
	RET
