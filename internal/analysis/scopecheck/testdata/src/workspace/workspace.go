// Package workspace mirrors the pool/scope surface of the real
// internal/workspace package for the scopecheck golden tests. The analyzer
// matches by package name and receiver type, so this stub stands in exactly.
package workspace

import "linalg"

// Pool recycles float64 buffers.
type Pool struct{}

// Get leases a buffer of at least n elements.
func (p *Pool) Get(n int) []float64 { return make([]float64, n) }

// Put returns a leased buffer.
func (p *Pool) Put(buf []float64) {}

// GetMatrix leases an r×c matrix.
func (p *Pool) GetMatrix(r, c int) *linalg.Matrix {
	return &linalg.Matrix{Rows: r, Cols: c, Data: p.Get(r * c)}
}

// PutMatrix returns a leased matrix.
func (p *Pool) PutMatrix(M *linalg.Matrix) {}

// NewScope opens a scope whose matrices are mass-released by Release.
func (p *Pool) NewScope() *Scope { return &Scope{pool: p} }

// Scope tracks leased matrices for bulk return.
type Scope struct {
	pool *Pool
	out  []*linalg.Matrix
}

// Matrix leases an r×c matrix tracked by the scope.
func (s *Scope) Matrix(r, c int) *linalg.Matrix {
	m := s.pool.GetMatrix(r, c)
	s.out = append(s.out, m)
	return m
}

// Keep detaches M from the scope so Release leaves it alone.
func (s *Scope) Keep(M *linalg.Matrix) {}

// Release returns every tracked matrix to the pool.
func (s *Scope) Release() {}
