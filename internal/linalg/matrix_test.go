package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims = %d×%d", m.Rows, m.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("nonzero at (%d,%d)", i, j)
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewMatrix(5, 7)
	rng := rand.New(rand.NewSource(1))
	want := make(map[[2]int]float64)
	for k := 0; k < 35; k++ {
		i, j := k%5, k/5
		v := rng.NormFloat64()
		m.Set(i, j, v)
		want[[2]int{i, j}] = v
	}
	for k, v := range want {
		if m.At(k[0], k[1]) != v {
			t.Fatalf("At(%d,%d) = %g, want %g", k[0], k[1], m.At(k[0], k[1]), v)
		}
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := NewMatrix(6, 6)
	v := m.View(2, 3, 3, 2)
	v.Set(0, 0, 42)
	if m.At(2, 3) != 42 {
		t.Fatal("view write not visible in parent")
	}
	if v.At(2, 1) != m.At(4, 4) {
		t.Fatal("view offset wrong")
	}
	v.Set(2, 1, -1)
	if m.At(4, 4) != -1 {
		t.Fatal("view corner write not visible")
	}
}

func TestViewBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range view")
		}
	}()
	NewMatrix(4, 4).View(2, 2, 3, 1)
}

func TestTransposed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := GaussianMatrix(rng, 37, 53)
	mt := m.Transposed()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	mtt := mt.Transposed()
	if !EqualApprox(m, mtt, 0) {
		t.Fatal("double transpose != identity")
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(20)
		c := 1 + rng.Intn(20)
		m := GaussianMatrix(rng, r, c)
		return EqualApprox(m, m.Transposed().Transposed(), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := GaussianMatrix(rng, 10, 4)
	idx := []int{7, 2, 2, 9}
	g := m.RowsGather(idx)
	for k, i := range idx {
		for j := 0; j < 4; j++ {
			if g.At(k, j) != m.At(i, j) {
				t.Fatalf("RowsGather mismatch row %d", k)
			}
		}
	}
	acc := NewMatrix(10, 4)
	acc.RowsScatterAdd(idx, g)
	// Row 2 was gathered twice so it accumulates 2×.
	if math.Abs(acc.At(2, 1)-2*m.At(2, 1)) > 1e-15 {
		t.Fatalf("scatter-add duplicate handling wrong: %g vs %g", acc.At(2, 1), 2*m.At(2, 1))
	}
	if acc.At(7, 0) != m.At(7, 0) {
		t.Fatal("scatter-add simple row wrong")
	}
	if acc.At(0, 0) != 0 {
		t.Fatal("scatter-add touched an unrelated row")
	}

	cg := m.ColsGather([]int{3, 0})
	if cg.At(5, 0) != m.At(5, 3) || cg.At(5, 1) != m.At(5, 0) {
		t.Fatal("ColsGather mismatch")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-14 {
		t.Fatalf("‖·‖F = %g, want 5", got)
	}
	// Overflow robustness.
	big := FromRows([][]float64{{1e200, 1e200}})
	if got := big.FrobeniusNorm(); math.IsInf(got, 0) || math.Abs(got-1e200*math.Sqrt2) > 1e187 {
		t.Fatalf("scaled norm failed: %g", got)
	}
}

func TestEyeDiag(t *testing.T) {
	e := Eye(3)
	d := Diag([]float64{1, 1, 1})
	if !EqualApprox(e, d, 0) {
		t.Fatal("Eye != Diag(ones)")
	}
}

func TestAddScaledAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := GaussianMatrix(rng, 8, 8)
	b := a.Clone()
	a.AddScaled(-1, b)
	if a.FrobeniusNorm() != 0 {
		t.Fatal("a - a != 0")
	}
	b.Scale(0)
	if b.FrobeniusNorm() != 0 {
		t.Fatal("0*b != 0")
	}
}

func TestRelFrobDiff(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 1}})
	b := FromRows([][]float64{{1, 0}, {0, 2}})
	got := RelFrobDiff(b, a)
	want := 1 / math.Sqrt2
	if math.Abs(got-want) > 1e-14 {
		t.Fatalf("RelFrobDiff = %g, want %g", got, want)
	}
}
