package hodlr

import (
	"fmt"

	"gofmm/internal/linalg"
)

// Solver is a recursive Sherman–Morrison–Woodbury direct solver for the
// HODLR form — the O(N log² N) fast direct solver of Ambikasaran & Darve
// that motivates the HODLR representation in the first place. Each level
// writes
//
//	K = blkdiag(K₁, K₂) + Ũ·C·Ũᵀ,  Ũ = blkdiag(U, V),  C = [0 I; I 0],
//
// and applies Woodbury with the children's solvers playing blkdiag⁻¹:
//
//	K⁻¹ = D̂⁻¹ − D̂⁻¹Ũ·(C + ŨᵀD̂⁻¹Ũ)⁻¹·ŨᵀD̂⁻¹.
type Solver struct {
	nd          *node
	left, right *Solver
	chol        *linalg.Matrix // leaf: Cholesky of the dense block
	x1, x2      *linalg.Matrix // K₁⁻¹U and K₂⁻¹V
	s           *linalg.LU     // LU of the 2r×2r reduced system
}

// Factor builds the direct solver (bottom-up; the low-rank blocks must have
// been compressed by Compress).
func (h *HODLR) Factor() (*Solver, error) {
	return factorNode(h.root)
}

func factorNode(nd *node) (*Solver, error) {
	s := &Solver{nd: nd}
	if nd.dense != nil {
		L, err := linalg.Cholesky(nd.dense)
		if err != nil {
			return nil, fmt.Errorf("hodlr: leaf [%d,%d): %w", nd.lo, nd.hi, err)
		}
		s.chol = L
		return s, nil
	}
	var err error
	if s.left, err = factorNode(nd.left); err != nil {
		return nil, err
	}
	if s.right, err = factorNode(nd.right); err != nil {
		return nil, err
	}
	r := nd.U.Cols
	if r == 0 {
		return s, nil
	}
	// X₁ = K₁⁻¹U, X₂ = K₂⁻¹V via the children's solvers.
	s.x1 = s.left.Solve(nd.U)
	s.x2 = s.right.Solve(nd.V)
	// S = C + blkdiag(UᵀX₁, VᵀX₂), C = [0 I; I 0].
	S := linalg.NewMatrix(2*r, 2*r)
	for i := 0; i < r; i++ {
		S.Set(i, r+i, 1)
		S.Set(r+i, i, 1)
	}
	tl := S.View(0, 0, r, r)
	linalg.Gemm(true, false, 1, nd.U, s.x1, 1, tl)
	br := S.View(r, r, r, r)
	linalg.Gemm(true, false, 1, nd.V, s.x2, 1, br)
	lu, err := linalg.LUFactor(S)
	if err != nil {
		return nil, fmt.Errorf("hodlr: node [%d,%d) reduced system: %w", nd.lo, nd.hi, err)
	}
	s.s = lu
	return s, nil
}

// Solve returns x with K̃·x = B for a block of right-hand sides.
func (s *Solver) Solve(B *linalg.Matrix) *linalg.Matrix {
	if s.chol != nil {
		X := B.Clone()
		linalg.CholSolve(s.chol, X)
		return X
	}
	nd := s.nd
	n1 := nd.mid - nd.lo
	y1 := s.left.Solve(B.View(0, 0, n1, B.Cols))
	y2 := s.right.Solve(B.View(n1, 0, B.Rows-n1, B.Cols))
	if s.s != nil {
		r := nd.U.Cols
		// z = S⁻¹ [Uᵀy₁; Vᵀy₂].
		z := linalg.NewMatrix(2*r, B.Cols)
		linalg.Gemm(true, false, 1, nd.U, y1, 0, z.View(0, 0, r, B.Cols))
		linalg.Gemm(true, false, 1, nd.V, y2, 0, z.View(r, 0, r, B.Cols))
		s.s.Solve(z)
		// x = y − blkdiag(X₁, X₂)·z.
		linalg.Gemm(false, false, -1, s.x1, z.View(0, 0, r, B.Cols), 1, y1)
		linalg.Gemm(false, false, -1, s.x2, z.View(r, 0, r, B.Cols), 1, y2)
	}
	out := linalg.NewMatrix(B.Rows, B.Cols)
	out.View(0, 0, n1, B.Cols).CopyFrom(y1)
	out.View(n1, 0, B.Rows-n1, B.Cols).CopyFrom(y2)
	return out
}

// LogDet returns log det(K̃) via the matrix determinant lemma at each level:
// det(K) = det(K₁)·det(K₂)·det(C)·det(S) with C = [0 I; I 0]
// (det(C) = (−1)^r), accumulated recursively.
func (s *Solver) LogDet() float64 {
	if s.chol != nil {
		return linalg.LogDetFromCholesky(s.chol)
	}
	logdet := s.left.LogDet() + s.right.LogDet()
	if s.s != nil {
		la, _ := s.s.LogAbsDet()
		logdet += la
		// det(C) contributes (−1)^r in magnitude 1: log|det| unchanged; for
		// an SPD K̃ the signs cancel against det(S)'s sign.
	}
	return logdet
}
